//go:build !race

package capsys_bench

const raceEnabled = false
