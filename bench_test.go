// Package capsys_bench regenerates every table and figure of the CAPSys
// paper as a Go benchmark: one benchmark per experiment, each reporting the
// wall-clock cost of regenerating the full table/figure plus
// experiment-specific metrics (plans explored, nodes expanded, decision
// times). Run with:
//
//	go test -bench=. -benchmem
//
// The per-row data itself is printed by `go run ./cmd/capbench -exp all`.
package capsys_bench

import (
	"context"
	"math"
	"testing"
	"time"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/experiments"
	"capsys/internal/nexmark"
	"capsys/internal/odrp"
	"capsys/internal/placement"
	"capsys/internal/simulator"
)

// skipIfRace skips a benchmark when built with the race detector (see
// raceEnabled); `go test -race -bench=.` then passes cleanly without burning
// minutes on instrumented searches.
func skipIfRace(b *testing.B) {
	b.Helper()
	if raceEnabled {
		b.Skip("benchmark skipped under -race")
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	skipIfRace(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(context.Background(), id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2ExhaustiveSearch regenerates Figure 2: the exhaustive
// 136-plan study of Q1-sliding with per-plan simulation.
func BenchmarkFig2ExhaustiveSearch(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3aComputeColocation regenerates Figure 3a (compute contention).
func BenchmarkFig3aComputeColocation(b *testing.B) { benchExperiment(b, "fig3a") }

// BenchmarkFig3bIOColocation regenerates Figure 3b (disk I/O contention).
func BenchmarkFig3bIOColocation(b *testing.B) { benchExperiment(b, "fig3b") }

// BenchmarkFig3cNetworkColocation regenerates Figure 3c (network contention).
func BenchmarkFig3cNetworkColocation(b *testing.B) { benchExperiment(b, "fig3c") }

// BenchmarkFig5CostVsThroughput regenerates Figure 5 (cost separability).
func BenchmarkFig5CostVsThroughput(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkTable2Pruning regenerates Table 2: search-space size across
// pruning thresholds, with and without reordering.
func BenchmarkTable2Pruning(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkFig7Strategies regenerates Figure 7: the six single-query
// strategy comparisons (CAPS + 10 seeded runs per baseline).
func BenchmarkFig7Strategies(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8MultiTenant regenerates Figure 8: the 144-slot multi-tenant
// deployment.
func BenchmarkFig8MultiTenant(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkTable3ODRP regenerates Table 3: the ODRP comparison (three exact
// branch-and-bound solves plus the CAPS decision).
func BenchmarkTable3ODRP(b *testing.B) { benchExperiment(b, "tab3") }

// BenchmarkTable4ScalingAccuracy regenerates Table 4: auto-scaling accuracy
// across four rate steps for three strategies.
func BenchmarkTable4ScalingAccuracy(b *testing.B) { benchExperiment(b, "tab4") }

// BenchmarkFig9Convergence regenerates Figure 9: the 40-tick variable
// workload timeline for three strategies.
func BenchmarkFig9Convergence(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10aSearchScalability regenerates Figure 10a: first-feasible
// search time from 16 to 256 tasks under three threshold vectors.
func BenchmarkFig10aSearchScalability(b *testing.B) { benchExperiment(b, "fig10a") }

// BenchmarkFig10bAutotune regenerates Figure 10b: threshold auto-tuning
// runtime across ten cluster shapes up to 1024 tasks.
func BenchmarkFig10bAutotune(b *testing.B) { benchExperiment(b, "fig10b") }

// --- Component micro-benchmarks --------------------------------------------

func q3Setup(b *testing.B) (*dataflow.PhysicalGraph, *cluster.Cluster, *costmodel.Usage) {
	b.Helper()
	spec := nexmark.Q3Inf()
	c, err := cluster.Homogeneous(8, 4, 4.0, 200e6, 1.25e9)
	if err != nil {
		b.Fatal(err)
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		b.Fatal(err)
	}
	rates, err := dataflow.PropagateRates(spec.Graph, spec.SourceRates)
	if err != nil {
		b.Fatal(err)
	}
	return phys, c, costmodel.FromRates(spec.Graph, rates)
}

// BenchmarkCAPSFirstFeasible measures one online placement decision: the
// first plan satisfying a tight threshold vector for Q3-inf on 32 slots.
func BenchmarkCAPSFirstFeasible(b *testing.B) {
	skipIfRace(b)
	phys, c, u := q3Setup(b)
	alpha := costmodel.Vector{CPU: 0.15, IO: math.Inf(1), Net: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := caps.Search(context.Background(), phys, c, u, caps.Options{
			Alpha: alpha, Mode: caps.FirstFeasible, Reorder: true,
		})
		if err != nil || !res.Feasible {
			b.Fatalf("infeasible: %v", err)
		}
	}
}

// BenchmarkCAPSExhaustive measures a full pruned exhaustive search.
func BenchmarkCAPSExhaustive(b *testing.B) {
	skipIfRace(b)
	phys, c, u := q3Setup(b)
	alpha := costmodel.Vector{CPU: 0.2, IO: math.Inf(1), Net: math.Inf(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caps.Search(context.Background(), phys, c, u, caps.Options{
			Alpha: alpha, Mode: caps.Exhaustive, Reorder: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoTune measures the threshold auto-tuning procedure on the
// reference single-query problem.
func BenchmarkAutoTune(b *testing.B) {
	skipIfRace(b)
	phys, c, u := q3Setup(b)
	opts := caps.DefaultAutoTuneOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caps.AutoTune(context.Background(), phys, c, u, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorEvaluate measures one steady-state evaluation of a
// six-query multi-tenant deployment.
func BenchmarkSimulatorEvaluate(b *testing.B) {
	skipIfRace(b)
	c := nexmark.MultiTenantCluster()
	var deps []simulator.QueryDeployment
	used := make([]int, c.NumWorkers())
	for _, spec := range nexmark.AllQueries() {
		spec = spec.Scaled(0.7)
		phys, err := dataflow.Expand(spec.Graph)
		if err != nil {
			b.Fatal(err)
		}
		pl := dataflow.NewPlan()
		for _, task := range phys.Tasks() {
			best := 0
			for w := 1; w < c.NumWorkers(); w++ {
				if used[w] < used[best] {
					best = w
				}
			}
			pl.Assign(task, best)
			used[best]++
		}
		deps = append(deps, simulator.QueryDeployment{
			Name: spec.Name, Phys: phys, Plan: pl, SourceRates: spec.SourceRates,
		})
	}
	cfg := simulator.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulator.Evaluate(deps, c, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCost measures one cost-vector computation for a 16-task plan.
func BenchmarkPlanCost(b *testing.B) {
	skipIfRace(b)
	phys, c, u := q3Setup(b)
	pl, err := placement.FlinkEvenly{}.Place(context.Background(), phys, c, u, 1)
	if err != nil {
		b.Fatal(err)
	}
	slots, _ := c.SlotsPerWorker()
	bounds := costmodel.ComputeBounds(phys, u, c.NumWorkers(), slots)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		costmodel.PlanCost(phys, pl, u, bounds, c.NumWorkers())
	}
}

// BenchmarkODRPSolve measures one exact ODRP solve at modest replication,
// the baseline's decision cost.
func BenchmarkODRPSolve(b *testing.B) {
	skipIfRace(b)
	spec := nexmark.Q3Inf()
	c, err := cluster.Homogeneous(4, 8, 8.0, 400e6, 1.25e9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := odrp.Solve(context.Background(), spec, c, odrp.Options{
			Weights:        odrp.DefaultWeights(),
			MaxParallelism: 4,
			Timeout:        time.Minute,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
