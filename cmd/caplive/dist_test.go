package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/telemetry"
)

// The process battery: build the caplive binary once, run a coordinator and
// three worker OS processes over loopback TCP, and require the distributed
// sink outcome — clean and with a SIGKILLed worker — to match an in-process
// reference run of the identical job.

var capliveBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "caplive-dist")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	capliveBin = filepath.Join(dir, "caplive")
	build := exec.Command("go", "build", "-o", capliveBin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "building caplive:", err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

const (
	battSeed    = 4
	battRecords = 800
	battCkpt    = 150
	battWorkers = 3
	battSlots   = 16
)

// battReference runs the identical job in-process (batched transport) and
// returns the expected sink/source counts. It reuses caplive's own
// makePlan, so the plan matches the coordinator's exactly: same strategy,
// same cluster, same seed.
func battReference(t *testing.T, query, strategy string) (sink, source int64) {
	t.Helper()
	spec, err := nexmark.ByName(query)
	if err != nil {
		t.Fatal(err)
	}
	// Mirrors the caplive flag defaults for cores/io-bps/net-bps.
	c, err := cluster.Homogeneous(battWorkers, battSlots, 2, 50e6, 500e6)
	if err != nil {
		t.Fatal(err)
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, _, err := makePlan(spec, c, phys, strategy, battSlots, battSeed)
	if err != nil {
		t.Fatal(err)
	}
	binding, err := nexmark.BindEngine(spec, battSeed)
	if err != nil {
		t.Fatal(err)
	}
	job, err := engine.NewJob(spec.Graph, plan, controller.EngineCluster(c), binding.Factories, engine.JobOptions{
		RecordsPerSource: battRecords,
		SnapshotInterval: battCkpt,
		Transport:        engine.TransportBatched,
		Stateful:         binding.Stateful,
		PerRecordCPU:     binding.PerRecordCPU,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := job.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res.SinkRecords, res.SourceRecords
}

// distLine is the parsed "dist: k=v ..." summary the coordinator prints.
type distLine map[string]int64

func (d distLine) get(t *testing.T, key string) int64 {
	t.Helper()
	v, ok := d[key]
	if !ok {
		t.Fatalf("dist summary missing %q: %v", key, d)
	}
	return v
}

func parseDistLine(line string) (distLine, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(line), "dist: ")
	if !ok {
		return nil, false
	}
	out := distLine{}
	for _, kv := range strings.Fields(rest) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, false
		}
		var n int64
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
			return nil, false
		}
		out[k] = n
	}
	return out, true
}

// procCluster supervises one coordinator process plus battWorkers joiner
// processes and streams the coordinator's stdout line by line.
type procCluster struct {
	t       *testing.T
	coord   *exec.Cmd
	joiners []*exec.Cmd
	lines   chan string
	done    chan error

	mu  sync.Mutex
	log []string
}

func startProcCluster(t *testing.T, query, strategy string, extraCoordArgs ...string) *procCluster {
	t.Helper()
	pc := &procCluster{
		t:     t,
		lines: make(chan string, 256),
		done:  make(chan error, 1),
	}
	args := []string{
		"-listen", "127.0.0.1:0",
		"-query", query,
		"-strategy", strategy,
		"-seed", fmt.Sprint(battSeed),
		"-records", fmt.Sprint(battRecords),
		"-checkpoint-every", fmt.Sprint(battCkpt),
		"-workers", fmt.Sprint(battWorkers),
		"-slots", fmt.Sprint(battSlots),
		"-timeout", "2m",
	}
	pc.coord = exec.Command(capliveBin, append(args, extraCoordArgs...)...)
	stdout, err := pc.coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	pc.coord.Stderr = os.Stderr
	if err := pc.coord.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			pc.mu.Lock()
			pc.log = append(pc.log, line)
			pc.mu.Unlock()
			select {
			case pc.lines <- line:
			default:
			}
		}
		pc.done <- pc.coord.Wait()
	}()
	t.Cleanup(func() {
		pc.coord.Process.Kill()
		for _, j := range pc.joiners {
			if j.Process != nil {
				j.Process.Kill()
			}
			j.Wait()
		}
	})

	// The coordinator binds :0; its first line reports the real address.
	addr := ""
	for addr == "" {
		line := pc.waitLine("control plane on ", time.Minute)
		rest := line[strings.Index(line, "control plane on ")+len("control plane on "):]
		addr = strings.Fields(rest)[0]
		addr = strings.TrimSuffix(addr, ",")
	}
	for i := 0; i < battWorkers; i++ {
		// The fast heartbeat paces metric/trace shipping so even the short
		// battery runs expose live telemetry before completing.
		j := exec.Command(capliveBin, "-join", addr, "-timeout", "2m", "-heartbeat-every", "50ms")
		j.Stdout = io.Discard
		j.Stderr = os.Stderr
		if err := j.Start(); err != nil {
			t.Fatal(err)
		}
		pc.joiners = append(pc.joiners, j)
	}
	return pc
}

// waitLine blocks until the coordinator prints a line containing substr.
func (pc *procCluster) waitLine(substr string, timeout time.Duration) string {
	pc.t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case line := <-pc.lines:
			if strings.Contains(line, substr) {
				return line
			}
		case err := <-pc.done:
			pc.t.Fatalf("coordinator exited (%v) before printing %q; log:\n  %s",
				err, substr, strings.Join(pc.snapshotLog(), "\n  "))
		case <-deadline:
			pc.t.Fatalf("timed out waiting for %q; coordinator log:\n  %s",
				substr, strings.Join(pc.snapshotLog(), "\n  "))
		}
	}
}

func (pc *procCluster) snapshotLog() []string {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return append([]string(nil), pc.log...)
}

// metricsURL scans the coordinator log for the cluster-telemetry banner
// (printed before the control-plane line, so it is already in the log once
// startProcCluster returns) and extracts the base URL.
func (pc *procCluster) metricsURL() string {
	pc.t.Helper()
	for _, line := range pc.snapshotLog() {
		if i := strings.Index(line, "cluster telemetry: serving http://"); i >= 0 {
			rest := line[i+len("cluster telemetry: serving "):]
			return strings.TrimSuffix(strings.Fields(rest)[0], "/metrics")
		}
	}
	pc.t.Fatalf("no cluster-telemetry banner in coordinator log:\n  %s",
		strings.Join(pc.snapshotLog(), "\n  "))
	return ""
}

// finished reports whether the coordinator has printed its dist summary,
// i.e. the run is over and a scrape is no longer "mid-run".
func (pc *procCluster) finished() bool {
	for _, line := range pc.snapshotLog() {
		if _, ok := parseDistLine(line); ok {
			return true
		}
	}
	return false
}

func httpGetBody(url string) (int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), err
}

// finish waits for the coordinator to exit cleanly and returns the parsed
// dist summary line.
func (pc *procCluster) finish(timeout time.Duration) distLine {
	pc.t.Helper()
	select {
	case err := <-pc.done:
		if err != nil {
			pc.t.Fatalf("coordinator failed: %v; log:\n  %s", err, strings.Join(pc.snapshotLog(), "\n  "))
		}
	case <-time.After(timeout):
		pc.t.Fatalf("coordinator did not finish; log:\n  %s", strings.Join(pc.snapshotLog(), "\n  "))
	}
	for _, line := range pc.snapshotLog() {
		if d, ok := parseDistLine(line); ok {
			return d
		}
	}
	pc.t.Fatalf("no dist summary in coordinator output:\n  %s", strings.Join(pc.snapshotLog(), "\n  "))
	return nil
}

// TestProcessClusterCleanRun: three worker OS processes, loopback TCP data
// plane, sink outcome identical to the in-process reference.
func TestProcessClusterCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process battery")
	}
	for _, query := range []string{"Q3-inf", "Q2-join"} {
		t.Run(query, func(t *testing.T) {
			wantSink, wantSource := battReference(t, query, "evenly")
			pc := startProcCluster(t, query, "evenly", "-metrics-addr", "127.0.0.1:0")

			// Mid-run scrape: the coordinator's /metrics must serve live
			// per-worker wire-level and saturation series while the job is
			// still running — not only after completion.
			base := pc.metricsURL()
			sawLive := false
			for deadline := time.Now().Add(90 * time.Second); time.Now().Before(deadline); {
				done := pc.finished()
				_, body, err := httpGetBody(base + "/metrics")
				if err == nil &&
					strings.Contains(body, `capsys_worker_net_frames_sent_total{worker="`) &&
					strings.Contains(body, `capsys_worker_saturation{`) &&
					strings.Contains(body, "capsys_cluster_net_frames_sent_total") {
					if !done {
						sawLive = true
					}
					break
				}
				if done {
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
			if !sawLive {
				t.Error("per-worker net.* and saturation series never appeared on /metrics before completion")
			}

			d := pc.finish(2 * time.Minute)
			if got := d.get(t, "sink_records"); got != wantSink {
				t.Errorf("sink_records = %d, in-process reference = %d", got, wantSink)
			}
			if got := d.get(t, "source_records"); got != wantSource {
				t.Errorf("source_records = %d, in-process reference = %d", got, wantSource)
			}
			if got := d.get(t, "recoveries"); got != 0 {
				t.Errorf("recoveries = %d on a clean run", got)
			}
			if got := d.get(t, "lost_records"); got != 0 {
				t.Errorf("lost_records = %d on a clean run", got)
			}
			// Net-plane totals ride on the summary line.
			if got := d.get(t, "net_frames"); got <= 0 {
				t.Errorf("net_frames = %d, want > 0", got)
			}
			if got := d.get(t, "net_bytes"); got <= 0 {
				t.Errorf("net_bytes = %d, want > 0", got)
			}
			if got := d.get(t, "unexpected_frames"); got != 0 {
				t.Errorf("unexpected_frames = %d on a clean run", got)
			}
			d.get(t, "credit_wait_p99_us") // present; value is workload-dependent
			for _, j := range pc.joiners {
				if err := j.Wait(); err != nil {
					t.Errorf("joiner exited nonzero: %v", err)
				}
			}
		})
	}
}

// TestProcessClusterSIGKILLRecovery: SIGKILL a worker process after the
// first complete checkpoint; the cluster must restart from that checkpoint
// and still land on the reference sink outcome. Along the way, /healthz
// must flip the victim to dead within one heartbeat timeout, and the
// coordinator's -trace-out timeline must span the checkpoint and the
// recovery with events from every worker process.
func TestProcessClusterSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process battery")
	}
	traceOut := filepath.Join(t.TempDir(), "cluster-trace.jsonl")
	wantSink, wantSource := battReference(t, "Q3-inf", "evenly")
	pc := startProcCluster(t, "Q3-inf", "evenly",
		"-metrics-addr", "127.0.0.1:0", "-trace-out", traceOut)
	base := pc.metricsURL()

	// Kill mid-epoch: after epoch 1 is durable but well before completion.
	pc.waitLine("checkpoint: epoch 1 complete", time.Minute)
	victim := pc.joiners[1]
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL worker: %v", err)
	}
	killAt := time.Now()

	// /healthz must report the cluster degraded within one heartbeat
	// timeout (5s default) of the SIGKILL; allow scheduling slack on top.
	var detected time.Duration
	for time.Now().Before(killAt.Add(10 * time.Second)) {
		code, body, err := httpGetBody(base + "/healthz")
		if err == nil && code == http.StatusServiceUnavailable {
			var rep struct {
				Healthy bool `json:"healthy"`
				Workers []struct {
					ID    string `json:"id"`
					Alive bool   `json:"alive"`
				} `json:"workers"`
			}
			if err := json.Unmarshal([]byte(body), &rep); err != nil {
				t.Fatalf("/healthz body: %v\n%s", err, body)
			}
			dead := 0
			for _, w := range rep.Workers {
				if !w.Alive {
					dead++
				}
			}
			if rep.Healthy || dead != 1 {
				t.Errorf("degraded /healthz report = %s, want healthy=false with exactly 1 dead worker", body)
			}
			detected = time.Since(killAt)
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if detected == 0 {
		t.Error("/healthz never reported the SIGKILLed worker dead")
	} else if detected > 7*time.Second {
		t.Errorf("/healthz took %v to reflect the SIGKILL, want within one heartbeat timeout (5s) plus slack", detected)
	}

	d := pc.finish(2 * time.Minute)
	if got := d.get(t, "recoveries"); got != 1 {
		t.Errorf("recoveries = %d, want 1", got)
	}
	if got := d.get(t, "restored_epoch"); got < 1 {
		t.Errorf("restored_epoch = %d, want >= 1 (restart must come from the checkpoint)", got)
	}
	if got := d.get(t, "sink_records"); got != wantSink {
		t.Errorf("sink_records after SIGKILL recovery = %d, in-process reference = %d", got, wantSink)
	}
	if got := d.get(t, "source_records"); got != wantSource {
		t.Errorf("source_records = %d, in-process reference = %d", got, wantSource)
	}
	if got := d.get(t, "lost_records"); got != 0 {
		t.Errorf("lost_records = %d after recovery", got)
	}

	// The merged timeline: causally ordered (dense cluster sequence),
	// provenance from every worker process plus the coordinator, and it
	// spans both a completed checkpoint epoch and the recovery.
	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatalf("read -trace-out: %v", err)
	}
	srcs := map[string]bool{}
	kinds := map[string]bool{}
	ckptEpoch := int64(0)
	prevSeq := int64(-1)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if ev.Schema != telemetry.TraceSchemaVersion {
			t.Fatalf("trace schema = %d, want %d: %s", ev.Schema, telemetry.TraceSchemaVersion, line)
		}
		if ev.Seq != prevSeq+1 {
			t.Fatalf("cluster seq jumped %d -> %d (timeline not causally ordered): %s", prevSeq, ev.Seq, line)
		}
		prevSeq = ev.Seq
		srcs[ev.Src] = true
		kinds[ev.Kind] = true
		if ev.Kind == telemetry.EventCheckpointComplete && ev.Epoch > ckptEpoch {
			ckptEpoch = ev.Epoch
		}
	}
	for _, src := range []string{"coord", "w0", "w1", "w2"} {
		if !srcs[src] {
			t.Errorf("merged timeline has no events from %q (sources: %v)", src, srcs)
		}
	}
	for _, kind := range []string{
		telemetry.EventCheckpointStart, telemetry.EventCheckpointComplete,
		telemetry.EventRecoveryStart, telemetry.EventRecoveryRestart,
		telemetry.EventWorkerAttemptStart,
	} {
		if !kinds[kind] {
			t.Errorf("merged timeline missing %q events (kinds: %v)", kind, kinds)
		}
	}
	if ckptEpoch < 1 {
		t.Errorf("merged timeline has no completed checkpoint epoch >= 1")
	}
}
