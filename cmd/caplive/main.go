// Command caplive executes a benchmark query on the live mini streaming
// engine under a chosen placement strategy, with real operators (windows,
// joins, sessions over generated Nexmark events), bounded channels and
// shared per-worker resource meters — so placement quality shows up as
// actual wall-clock throughput.
//
// Examples:
//
//	caplive -query Q1-sliding -strategy caps -records 5000
//	caplive -query Q1-sliding -strategy worst -records 5000   # pack the heavy operator
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
)

func main() {
	var (
		queryName = flag.String("query", "Q1-sliding", "built-in query name")
		strategy  = flag.String("strategy", "caps", "placement: caps|default|evenly|random|greedy|worst")
		seed      = flag.Int64("seed", 0, "seed for randomized strategies and event generation")
		records   = flag.Int64("records", 5000, "records per source task")
		workers   = flag.Int("workers", 4, "number of workers")
		slots     = flag.Int("slots", 4, "slots per worker")
		cores     = flag.Float64("cores", 2, "CPU cores per worker (engine meter)")
		ioBps     = flag.Float64("io-bps", 50e6, "disk bandwidth per worker (bytes/s)")
		netBps    = flag.Float64("net-bps", 500e6, "network bandwidth per worker (bytes/s)")
		costScale = flag.Float64("cost-scale", 1, "multiply profiled per-record CPU costs")
		timeout   = flag.Duration("timeout", 5*time.Minute, "run timeout")
	)
	flag.Parse()
	if err := run(*queryName, *strategy, *seed, *records, *workers, *slots, *cores, *ioBps, *netBps, *costScale, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "caplive:", err)
		os.Exit(1)
	}
}

func run(queryName, strategy string, seed, records int64, workers, slots int,
	cores, ioBps, netBps, costScale float64, timeout time.Duration) error {
	spec, err := nexmark.ByName(queryName)
	if err != nil {
		return err
	}
	c, err := cluster.Homogeneous(workers, slots, cores, ioBps, netBps)
	if err != nil {
		return err
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return err
	}

	var plan *dataflow.Plan
	if strategy == "worst" {
		plan = nexmark.FlinkWorstCase(phys, slots)
	} else {
		strat, err := placement.ByName(strategy)
		if err != nil {
			return err
		}
		rates, err := dataflow.PropagateRates(spec.Graph, spec.SourceRates)
		if err != nil {
			return err
		}
		u := costmodel.FromRates(spec.Graph, rates)
		plan, err = strat.Place(context.Background(), phys, c, u, seed)
		if err != nil {
			return err
		}
	}
	fmt.Printf("plan (%s):\n%s\n", strategy, plan)

	binding, err := nexmark.BindEngine(spec, seed)
	if err != nil {
		return err
	}
	if costScale != 1 {
		for op := range binding.PerRecordCPU {
			binding.PerRecordCPU[op] *= costScale
		}
	}
	espec := engine.ClusterSpec{}
	for i := 0; i < c.NumWorkers(); i++ {
		w := c.Worker(i)
		espec.Workers = append(espec.Workers, engine.WorkerSpec{
			ID: w.ID, Slots: w.Slots, Cores: w.CPU, IOBps: w.IOBandwidth, NetBps: w.NetBandwidth,
		})
	}
	job, err := engine.NewJob(spec.Graph, plan, espec, binding.Factories, engine.JobOptions{
		RecordsPerSource: records,
		Stateful:         binding.Stateful,
		PerRecordCPU:     binding.PerRecordCPU,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	res, err := job.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("finished in %v: %d source records (%.0f rec/s), %d sink records\n",
		res.Elapsed.Round(time.Millisecond), res.SourceRecords,
		float64(res.SourceRecords)/res.Elapsed.Seconds(), res.SinkRecords)

	// Per-operator summary, heaviest first.
	type opStat struct {
		id              string
		in              int64
		useful, maxBack float64
	}
	agg := map[string]*opStat{}
	for id, st := range res.Tasks {
		a := agg[string(id.Op)]
		if a == nil {
			a = &opStat{id: string(id.Op)}
			agg[string(id.Op)] = a
		}
		a.in += st.RecordsIn
		if st.UsefulFraction > a.useful {
			a.useful = st.UsefulFraction
		}
		if bp := st.BackpressureT.Seconds(); bp > a.maxBack {
			a.maxBack = bp
		}
	}
	var ops []*opStat
	for _, a := range agg {
		ops = append(ops, a)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].id < ops[j].id })
	fmt.Printf("\n%-14s %10s %14s %16s\n", "operator", "records", "peak useful", "peak bp (s)")
	for _, a := range ops {
		fmt.Printf("%-14s %10d %14.2f %16.2f\n", a.id, a.in, a.useful, a.maxBack)
	}
	_ = start
	return nil
}
