// Command caplive executes a benchmark query on the live mini streaming
// engine under a chosen placement strategy, with real operators (windows,
// joins, sessions over generated Nexmark events), bounded channels and
// shared per-worker resource meters — so placement quality shows up as
// actual wall-clock throughput.
//
// Examples:
//
//	caplive -query Q1-sliding -strategy caps -records 5000
//	caplive -query Q1-sliding -strategy worst -records 5000   # pack the heavy operator
//	caplive -query Q1-sliding -metrics-addr :9090             # curl :9090/metrics mid-run
//	caplive -query Q1-sliding -trace-out run.jsonl            # structured event trace
//	caplive -checkpoint-every 200 -kill-worker 1 -trace-out f.jsonl  # checkpoint + fault events
//	caplive -query Q1-sliding -transport batched -batch-size 64       # batched exchange layer
//
// Distributed mode runs the same job as one coordinator plus N worker OS
// processes, with the data plane on TCP (see DESIGN.md §12):
//
//	caplive -listen 127.0.0.1:7000 -query Q2-join -workers 3 -checkpoint-every 200
//	caplive -join 127.0.0.1:7000      # run one of these per worker, any host
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof-addr registers the /debug/pprof handlers
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/metrics"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/telemetry"
)

func main() {
	var (
		queryName    = flag.String("query", "Q1-sliding", "built-in query name")
		strategy     = flag.String("strategy", "caps", "placement: caps|default|evenly|random|greedy|worst")
		seed         = flag.Int64("seed", 0, "seed for randomized strategies and event generation")
		records      = flag.Int64("records", 5000, "records per source task")
		workers      = flag.Int("workers", 4, "number of workers")
		slots        = flag.Int("slots", 4, "slots per worker")
		cores        = flag.Float64("cores", 2, "CPU cores per worker (engine meter)")
		ioBps        = flag.Float64("io-bps", 50e6, "disk bandwidth per worker (bytes/s)")
		netBps       = flag.Float64("net-bps", 500e6, "network bandwidth per worker (bytes/s)")
		costScale    = flag.Float64("cost-scale", 1, "multiply profiled per-record CPU costs")
		timeout      = flag.Duration("timeout", 5*time.Minute, "run timeout")
		metricsAddr  = flag.String("metrics-addr", "", "serve live telemetry over HTTP (/metrics Prometheus, /events JSON) on this address")
		traceOut     = flag.String("trace-out", "", "append structured trace events as JSONL to this file")
		ckptEvery    = flag.Int64("checkpoint-every", 0, "inject a checkpoint barrier every N source records (0 disables)")
		killWorker   = flag.Int("kill-worker", -1, "kill this worker when it passes -kill-epoch (degraded run; -1 disables)")
		killEpoch    = flag.Int64("kill-epoch", 1, "checkpoint epoch at which -kill-worker fires")
		rescaleSpec  = flag.String("rescale", "", "live rescale: comma-separated op=parallelism changes applied at -rescale-epoch (requires -checkpoint-every; local and -listen modes)")
		rescaleEpoch = flag.Int64("rescale-epoch", 2, "checkpoint epoch at which -rescale fires")
		transport    = flag.String("transport", engine.TransportUnary, "data-plane exchange: unary|batched|network (forced to network in -listen/-join mode)")
		fuseFlag     = flag.String("fuse", "on", "operator fusion: run co-located Forward chains as one goroutine, bypassing the exchange (on|off)")
		batchSize    = flag.Int("batch-size", 0, "batched/network transport: records per batch (0 = engine default)")
		batchLinger  = flag.Duration("batch-linger", 0, "batched/network transport: max wait for a partial batch (0 = engine default, negative disables)")
		listenAddr   = flag.String("listen", "", "coordinator mode: run the control plane on this address and wait for -workers joiners")
		joinAddr     = flag.String("join", "", "worker mode: join the coordinator at this address and serve deploys until shutdown")
		hbEvery      = flag.Duration("heartbeat-every", 0, "worker mode: heartbeat interval, which also paces metric and trace shipping (0 = 500ms default)")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof (/debug/pprof) on this address, in any mode")
	)
	flag.Parse()
	noFuse, err := parseFuseFlag(*fuseFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caplive:", err)
		os.Exit(1)
	}
	rescales, err := parseRescalesFlag(*rescaleSpec, *rescaleEpoch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caplive:", err)
		os.Exit(1)
	}
	if *pprofAddr != "" {
		var stop func()
		stop, err = servePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "caplive:", err)
			os.Exit(1)
		}
		defer stop()
	}
	switch {
	case *listenAddr != "" && *joinAddr != "":
		err = fmt.Errorf("-listen and -join are mutually exclusive")
	case *joinAddr != "":
		err = runJoin(*joinAddr, *timeout, *metricsAddr, *traceOut, *hbEvery)
	case *listenAddr != "":
		err = runCoordinator(*listenAddr, *queryName, *strategy, *seed, *records, *workers, *slots, *cores, *ioBps, *netBps, *costScale, *timeout, *ckptEvery, *batchSize, *batchLinger, noFuse, *metricsAddr, *traceOut, rescales)
	default:
		err = run(*queryName, *strategy, *seed, *records, *workers, *slots, *cores, *ioBps, *netBps, *costScale, *timeout, *metricsAddr, *traceOut, *ckptEvery, *killWorker, *killEpoch, *transport, *batchSize, *batchLinger, noFuse, rescales)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "caplive:", err)
		os.Exit(1)
	}
}

// makePlan builds the initial placement. The strategy and usage model are
// returned so the coordinator can re-place after worker deaths ("worst" is
// plan-only: it has no live strategy, so deaths are fatal under it).
func makePlan(spec nexmark.QuerySpec, c *cluster.Cluster, phys *dataflow.PhysicalGraph,
	strategy string, slots int, seed int64) (*dataflow.Plan, placement.Strategy, *costmodel.Usage, error) {
	if strategy == "worst" {
		return nexmark.FlinkWorstCase(phys, slots), nil, nil, nil
	}
	strat, err := placement.ByName(strategy)
	if err != nil {
		return nil, nil, nil, err
	}
	rates, err := dataflow.PropagateRates(spec.Graph, spec.SourceRates)
	if err != nil {
		return nil, nil, nil, err
	}
	u := costmodel.FromRates(spec.Graph, rates)
	plan, err := strat.Place(context.Background(), phys, c, u, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	return plan, strat, u, nil
}

// servePprof exposes net/http/pprof's default-mux handlers on addr — live
// goroutine dumps, heap profiles and CPU profiles for any caplive role.
func servePprof(addr string) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("pprof: serving http://%s/debug/pprof/\n", ln.Addr())
	return func() { srv.Close() }, nil
}

// runJoin is worker mode: a long-lived process serving deploy/start/abort
// cycles from the coordinator. It exits 0 when the coordinator shuts the
// cluster down. The worker's telemetry hub feeds three consumers: the
// heartbeat piggyback to the coordinator, an optional local -metrics-addr
// scrape endpoint, and an optional local -trace-out JSONL file.
func runJoin(addr string, timeout time.Duration, metricsAddr, traceOut string, hbEvery time.Duration) error {
	tel := telemetry.New()
	tel.RegisterRuntimeGauges()
	if traceOut != "" {
		f, err := os.OpenFile(traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open -trace-out: %w", err)
		}
		defer f.Close()
		tel.Tracer().SetSink(f)
	}
	if metricsAddr != "" {
		srv, bound, err := tel.Serve(metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving http://%s/metrics and /events\n", bound)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return controller.JoinCluster(ctx, addr, controller.NexmarkBuilderWith(tel), controller.JoinOptions{
		Logf: func(format string, args ...any) {
			fmt.Printf("worker: "+format+"\n", args...)
		},
		Telemetry:      tel,
		HeartbeatEvery: hbEvery,
	})
}

// runCoordinator is coordinator mode: compute the placement exactly as a
// local run would, then deploy it across joined worker processes over the
// network transport and supervise to completion (recovering from worker
// deaths by re-running the placement strategy over the survivors).
func runCoordinator(listen, queryName, strategy string, seed, records int64, workers, slots int,
	cores, ioBps, netBps, costScale float64, timeout time.Duration, ckptEvery int64,
	batchSize int, batchLinger time.Duration, noFuse bool, metricsAddr, traceOut string,
	rescales []engine.RescalePlan) error {
	spec, err := nexmark.ByName(queryName)
	if err != nil {
		return err
	}
	c, err := cluster.Homogeneous(workers, slots, cores, ioBps, netBps)
	if err != nil {
		return err
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return err
	}
	plan, strat, u, err := makePlan(spec, c, phys, strategy, slots, seed)
	if err != nil {
		return err
	}
	fmt.Printf("plan (%s):\n%s\n", strategy, plan)
	assign, err := controller.AssignmentsOf(phys, plan)
	if err != nil {
		return err
	}
	espec := controller.EngineCluster(c)
	deploy := controller.DeploySpec{
		Query:            queryName,
		Seed:             seed,
		RecordsPerSource: records,
		SnapshotInterval: ckptEvery,
		BatchSize:        batchSize,
		BatchLinger:      batchLinger,
		DisableFusion:    noFuse,
		CPUCostScale:     costScale,
		Workers:          espec.Workers,
		Assign:           assign,
	}
	// The coordinator's hub is the cluster aggregation point: worker
	// heartbeat deltas and trace batches merge into it (DESIGN.md §9).
	tel := telemetry.New()
	tel.RegisterRuntimeGauges()
	if traceOut != "" {
		f, err := os.OpenFile(traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open -trace-out: %w", err)
		}
		defer f.Close()
		tel.Tracer().SetSink(f)
	}
	opts := controller.CoordinatorOptions{
		Logf: func(format string, args ...any) {
			fmt.Printf("coordinator: "+format+"\n", args...)
		},
		Telemetry: tel,
		Rescales:  rescales,
	}
	if strat != nil {
		prev := plan
		opts.Replan = func(dead []int, attempt int) ([]controller.TaskAssignment, error) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			next, err := controller.Replace(ctx, phys, c, strat, u, dead, seed+int64(attempt), prev)
			if err != nil {
				return nil, err
			}
			prev = next
			return controller.AssignmentsOf(phys, next)
		}
	}
	co, err := controller.NewCoordinator(listen, deploy, workers, opts)
	if err != nil {
		return err
	}
	defer co.Shutdown()
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("telemetry listen %s: %w", metricsAddr, err)
		}
		srv := &http.Server{Handler: co.ClusterHandler()}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Printf("cluster telemetry: serving http://%s/metrics /events /healthz /workers\n", ln.Addr())
	}
	fmt.Printf("coordinator: control plane on %s, waiting for %d workers\n", co.Addr(), workers)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := co.WaitJoined(ctx); err != nil {
		return err
	}
	res, err := co.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("finished in %v: %d source records (%.0f rec/s), %d sink records\n",
		res.Elapsed.Round(time.Millisecond), res.SourceRecords,
		float64(res.SourceRecords)/res.Elapsed.Seconds(), res.SinkRecords)
	snap := res.Metrics.Snapshot()
	fmt.Printf("network: %.0f data batches, %.0f credit frames, %.0f frames sent, %.0f bytes sent\n",
		snap["net.data_batches"], snap["net.credit_frames"], snap["net.frames_sent"], snap["net.bytes_sent"])
	// One machine-parseable line for the process-level test battery. Every
	// value must render as an integer (the battery parses all pairs as
	// int64).
	if res.Rescales > 0 {
		fmt.Printf("rescale: %d applied, downtime %v, moved %d state bytes, reprocessed %d records\n",
			res.Rescales, res.RescaleDowntime.Round(time.Millisecond), res.RescaleMovedBytes, res.RecordsReprocessed)
	}
	fmt.Printf("dist: sink_records=%d source_records=%d lost_records=%d recoveries=%d restored_epoch=%d snapshots=%d reprocessed=%d net_frames=%d net_bytes=%d credit_wait_p99_us=%d unexpected_frames=%d rescales=%d rescale_moved_bytes=%d\n",
		res.SinkRecords, res.SourceRecords, res.LostRecords, res.Recoveries,
		res.RestoredEpoch, res.SnapshotsTaken, res.RecordsReprocessed,
		int64(snap["net.frames_sent"]), int64(snap["net.bytes_sent"]),
		int64(snap["net.credit_wait_p99_us"]), int64(snap["net.unexpected_frames"]),
		res.Rescales, res.RescaleMovedBytes)
	if err := tel.Tracer().SinkErr(); err != nil {
		return fmt.Errorf("trace sink: %w", err)
	}
	return nil
}

func run(queryName, strategy string, seed, records int64, workers, slots int,
	cores, ioBps, netBps, costScale float64, timeout time.Duration, metricsAddr, traceOut string,
	ckptEvery int64, killWorker int, killEpoch int64, transport string, batchSize int, batchLinger time.Duration,
	noFuse bool, rescales []engine.RescalePlan) error {
	spec, err := nexmark.ByName(queryName)
	if err != nil {
		return err
	}
	c, err := cluster.Homogeneous(workers, slots, cores, ioBps, netBps)
	if err != nil {
		return err
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return err
	}

	plan, _, _, err := makePlan(spec, c, phys, strategy, slots, seed)
	if err != nil {
		return err
	}
	fmt.Printf("plan (%s):\n%s\n", strategy, plan)

	tel := telemetry.New()
	if traceOut != "" {
		f, err := os.OpenFile(traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open -trace-out: %w", err)
		}
		defer f.Close()
		tel.Tracer().SetSink(f)
	}
	if metricsAddr != "" {
		srv, bound, err := tel.Serve(metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving http://%s/metrics and /events\n", bound)
	}

	binding, err := nexmark.BindEngine(spec, seed)
	if err != nil {
		return err
	}
	if costScale != 1 {
		for op := range binding.PerRecordCPU {
			binding.PerRecordCPU[op] *= costScale
		}
	}
	espec := controller.EngineCluster(c)
	jobOpts := engine.JobOptions{
		RecordsPerSource: records,
		Stateful:         binding.Stateful,
		PerRecordCPU:     binding.PerRecordCPU,
		SnapshotInterval: ckptEvery,
		Transport:        transport,
		BatchSize:        batchSize,
		BatchLinger:      batchLinger,
		DisableFusion:    noFuse,
		Telemetry:        tel,
	}
	if len(rescales) > 0 {
		if ckptEvery <= 0 {
			return fmt.Errorf("-rescale requires -checkpoint-every > 0 (rescales are epoch-aligned)")
		}
		jobOpts.Rescales = rescales
	}
	if killWorker >= 0 {
		if ckptEvery <= 0 {
			return fmt.Errorf("-kill-worker requires -checkpoint-every > 0 (kills are epoch-aligned)")
		}
		if killWorker >= workers {
			return fmt.Errorf("-kill-worker %d out of range (workers: %d)", killWorker, workers)
		}
		jobOpts.FaultPlan.KillWorkers = []engine.WorkerKill{{Worker: killWorker, AtEpoch: killEpoch}}
	}
	job, err := engine.NewJob(spec.Graph, plan, espec, binding.Factories, jobOpts)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, err := job.Run(ctx)
	if err != nil {
		return err
	}
	status := "finished"
	if res.Failed {
		status = "finished DEGRADED (worker killed, no recovery)"
	}
	fmt.Printf("%s in %v: %d source records (%.0f rec/s), %d sink records\n",
		status, res.Elapsed.Round(time.Millisecond), res.SourceRecords,
		float64(res.SourceRecords)/res.Elapsed.Seconds(), res.SinkRecords)
	if res.Rescales > 0 {
		fmt.Printf("rescale: %d applied, downtime %v, moved %d state bytes, reprocessed %d records\n",
			res.Rescales, res.RescaleDowntime.Round(time.Millisecond), res.RescaleMovedBytes, res.RecordsReprocessed)
	}
	if job.Transport() != engine.TransportUnary {
		snap := res.Metrics.Snapshot()
		mean := 0.0
		if b := snap["exchange.batches"]; b > 0 {
			mean = snap["exchange.batch_records"] / b
		}
		fmt.Printf("exchange: %s transport, %.0f batches (mean %.1f records), %.0f credit stalls (%.3fs waiting)\n",
			job.Transport(), snap["exchange.batches"], mean,
			snap["exchange.credit_stalls"], snap["exchange.credit_stall_seconds"])
	}
	if err := tel.Tracer().SinkErr(); err != nil {
		return fmt.Errorf("trace sink: %w", err)
	}

	fmt.Print(summarize(res.Metrics, tel))
	return nil
}

// summarize renders a per-operator table (heaviest first) from the job's
// metrics registry, joining the per-task "<op>[<i>].<metric>" series with
// the hub's end-to-end latency percentiles.
func summarize(reg *metrics.Registry, tel *telemetry.Telemetry) string {
	type opStat struct {
		in              int64
		useful, maxBack float64
	}
	agg := map[string]*opStat{}
	for name, v := range reg.Snapshot() {
		tm, ok := metrics.ParseTaskMetricName(name)
		if !ok {
			continue
		}
		a := agg[tm.Op]
		if a == nil {
			a = &opStat{}
			agg[tm.Op] = a
		}
		switch tm.Metric {
		case "records_in":
			a.in += int64(v)
		case "useful_fraction":
			if v > a.useful {
				a.useful = v
			}
		case "backpressure_seconds":
			if v > a.maxBack {
				a.maxBack = v
			}
		}
	}
	var ops []string
	for op := range agg {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	out := fmt.Sprintf("\n%-14s %10s %14s %16s %10s %10s %10s\n",
		"operator", "records", "peak useful", "peak bp (s)", "p50 (ms)", "p95 (ms)", "p99 (ms)")
	for _, op := range ops {
		a := agg[op]
		p50, p95, p99 := "-", "-", "-"
		if h := tel.Histogram("latency." + op); h.Count() > 0 {
			snap := h.Snapshot()
			p50 = fmt.Sprintf("%.2f", snap.Quantile(0.5)*1e3)
			p95 = fmt.Sprintf("%.2f", snap.Quantile(0.95)*1e3)
			p99 = fmt.Sprintf("%.2f", snap.Quantile(0.99)*1e3)
		}
		out += fmt.Sprintf("%-14s %10d %14.2f %16.2f %10s %10s %10s\n",
			op, a.in, a.useful, a.maxBack, p50, p95, p99)
	}
	return out
}

// parseFuseFlag maps the -fuse on|off flag onto the engine's DisableFusion
// option (true = fusion off).
func parseFuseFlag(v string) (bool, error) {
	switch v {
	case "on", "":
		return false, nil
	case "off":
		return true, nil
	}
	return false, fmt.Errorf("-fuse must be on or off (got %q)", v)
}

// parseRescalesFlag parses the -rescale "op=parallelism[,op=parallelism]"
// spec into the engine's rescale schedule, all firing at the same epoch.
func parseRescalesFlag(spec string, atEpoch int64) ([]engine.RescalePlan, error) {
	if spec == "" {
		return nil, nil
	}
	var plans []engine.RescalePlan
	for _, kv := range strings.Split(spec, ",") {
		op, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || op == "" {
			return nil, fmt.Errorf("-rescale entry %q: want op=parallelism", kv)
		}
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			return nil, fmt.Errorf("-rescale entry %q: parallelism must be a positive integer", kv)
		}
		plans = append(plans, engine.RescalePlan{Op: dataflow.OperatorID(op), Parallelism: p, AtEpoch: atEpoch})
	}
	return plans, nil
}
