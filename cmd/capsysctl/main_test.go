package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"capsys/internal/nexmark"
	"capsys/internal/specio"
)

func TestRunBuiltinQuery(t *testing.T) {
	if err := run("Q1-sliding", "", "", "caps", 0, 4, 4, 4, 200e6, 1.25e9, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithChaining(t *testing.T) {
	if err := run("Q1-sliding", "", "", "greedy", 0, 4, 4, 4, 200e6, 1.25e9, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSimulation(t *testing.T) {
	if err := run("Q2-join", "", "", "evenly", 3, 4, 4, 4, 200e6, 1.25e9, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunQueryFile(t *testing.T) {
	dir := t.TempDir()
	qf := specio.FromQuerySpec(nexmark.Q1Sliding())
	data, err := json.Marshal(qf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "q.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, "", "default", 1, 4, 4, 4, 200e6, 1.25e9, true, false); err != nil {
		t.Fatal(err)
	}
	cpath := filepath.Join(dir, "c.json")
	if err := os.WriteFile(cpath, []byte(`{"workers":4,"slots":4,"cores":4,"io_bytes_per_sec":2e8,"net_bytes_per_sec":1.25e9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, cpath, "default", 1, 0, 0, 0, 0, 0, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"no query", func() error { return run("", "", "", "caps", 0, 4, 4, 4, 1, 1, true, false) }},
		{"unknown query", func() error { return run("Q99", "", "", "caps", 0, 4, 4, 4, 1, 1, true, false) }},
		{"unknown strategy", func() error { return run("Q1-sliding", "", "", "magic", 0, 4, 4, 4, 1, 1, true, false) }},
		{"bad cluster", func() error { return run("Q1-sliding", "", "", "caps", 0, 0, 4, 4, 1, 1, true, false) }},
		{"too small", func() error { return run("Q1-sliding", "", "", "caps", 0, 1, 4, 4, 200e6, 1.25e9, true, false) }},
		{"missing file", func() error { return run("", "/nonexistent.json", "", "caps", 0, 4, 4, 4, 1, 1, true, false) }},
	}
	for _, tc := range cases {
		if err := tc.f(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
