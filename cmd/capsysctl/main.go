// Command capsysctl computes a task placement plan for a streaming query on
// a worker cluster, using any of the implemented strategies (CAPS, Flink
// default, Flink evenly, random, greedy).
//
// Queries come either from the built-in Nexmark benchmark suite (-query) or
// from a JSON file (-query-file); clusters from flags or a JSON file. The
// plan is printed as JSON together with its cost vector and the simulated
// steady-state performance.
//
// With -recovery the tool instead runs the fault-injection study on the live
// mini engine: every strategy (CAPS, Flink default, Flink evenly, ODRP)
// deploys the query, a worker is killed at a checkpoint epoch, and the
// controller reconciles — re-placing on the survivors and restarting from
// the last complete snapshot. The report compares time-to-recover and
// post-recovery backpressure across strategies.
//
// Examples:
//
//	capsysctl -query Q1-sliding -strategy caps
//	capsysctl -query Q3-inf -strategy default -seed 3 -workers 8 -slots 4
//	capsysctl -query-file myquery.json -cluster-file mycluster.json
//	capsysctl -query Q1-sliding -recovery -records 2000 -kill-epoch 3
//	capsysctl -query Q1-sliding -recovery -transport batched -batch-size 64
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/experiments"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
	"capsys/internal/specio"
	"capsys/internal/telemetry"
)

type output struct {
	Query     string             `json:"query"`
	Strategy  string             `json:"strategy"`
	Plan      specio.PlanJSON    `json:"plan"`
	Cost      map[string]float64 `json:"cost"`
	Decision  string             `json:"decision_time"`
	Simulated struct {
		Throughput   float64 `json:"throughput_rec_s"`
		Target       float64 `json:"target_rec_s"`
		Backpressure float64 `json:"backpressure"`
		LatencyMS    float64 `json:"latency_ms"`
	} `json:"simulated"`
}

func main() {
	var (
		queryName   = flag.String("query", "", "built-in query name (Q1-sliding .. Q6-session)")
		queryFile   = flag.String("query-file", "", "JSON query spec file ('-' = stdin)")
		clusterFile = flag.String("cluster-file", "", "JSON cluster spec file")
		strategy    = flag.String("strategy", "caps", "placement strategy: caps|default|evenly|random|greedy")
		seed        = flag.Int64("seed", 0, "seed for randomized strategies")
		workers     = flag.Int("workers", 4, "number of workers (ignored with -cluster-file)")
		slots       = flag.Int("slots", 4, "slots per worker")
		cores       = flag.Float64("cores", 4, "CPU cores per worker")
		ioBps       = flag.Float64("io-bps", 200e6, "disk bandwidth per worker (bytes/s)")
		netBps      = flag.Float64("net-bps", 1.25e9, "network bandwidth per worker (bytes/s)")
		listQueries = flag.Bool("list", false, "list built-in queries and exit")
		noSim       = flag.Bool("no-sim", false, "skip the simulated evaluation")
		chain       = flag.Bool("chain", false, "apply operator chaining before placement; the plan is expanded back to the original graph")

		recovery   = flag.Bool("recovery", false, "run the fault-injection recovery study on the live engine (all strategies)")
		records    = flag.Int64("records", 2000, "recovery/rescale: records per source task")
		snapEvery  = flag.Int64("snapshot-every", 250, "recovery/rescale: checkpoint barrier interval (records per source)")
		killWorker = flag.Int("kill-worker", -1, "recovery: worker to kill (-1 = busiest under each plan)")
		killEpoch  = flag.Int64("kill-epoch", 3, "recovery: checkpoint epoch at which the worker dies")

		rescaleSpec  = flag.String("rescale", "", "run a live rescale on the engine: comma-separated op=parallelism changes under -strategy (e.g. slide-win=12)")
		rescaleEpoch = flag.Int64("rescale-epoch", 3, "rescale: checkpoint epoch at which -rescale fires")
		sourceRate   = flag.Float64("source-rate", 0, "rescale: throttle each source task to this records/s (0 = unthrottled)")

		metricsAddr = flag.String("metrics-addr", "", "recovery: serve live telemetry over HTTP (/metrics, /events) on this address")
		traceOut    = flag.String("trace-out", "", "recovery: append structured trace events as JSONL to this file")

		transport   = flag.String("transport", engine.TransportUnary, "recovery: data-plane exchange (unary|batched|network)")
		fuseFlag    = flag.String("fuse", "on", "recovery: operator fusion — run co-located Forward chains as one goroutine (on|off)")
		batchSize   = flag.Int("batch-size", 0, "recovery, batched transport: records per batch (0 = engine default)")
		batchLinger = flag.Duration("batch-linger", 0, "recovery, batched transport: max wait for a partial batch (0 = engine default, negative disables)")
	)
	flag.Parse()
	noFuse, err := parseFuseFlag(*fuseFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsysctl:", err)
		os.Exit(1)
	}

	if *listQueries {
		for _, q := range nexmark.AllQueries() {
			fmt.Printf("%-14s %2d tasks  target %8.0f rec/s\n", q.Name, q.Graph.TotalTasks(), q.TotalRate())
		}
		return
	}
	if *recovery {
		err = runRecovery(os.Stdout, *queryName, *seed, *workers, *slots, *cores, *ioBps, *netBps,
			*records, *snapEvery, *killWorker, *killEpoch, *metricsAddr, *traceOut,
			*transport, *batchSize, *batchLinger, noFuse)
	} else if *rescaleSpec != "" {
		err = runRescale(os.Stdout, *queryName, *strategy, *rescaleSpec, *rescaleEpoch, *seed,
			*workers, *slots, *cores, *ioBps, *netBps, *records, *snapEvery, *sourceRate,
			*metricsAddr, *traceOut, *transport, *batchSize, *batchLinger, noFuse)
	} else {
		err = run(*queryName, *queryFile, *clusterFile, *strategy, *seed,
			*workers, *slots, *cores, *ioBps, *netBps, *noSim, *chain)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsysctl:", err)
		os.Exit(1)
	}
}

// runRecovery executes the fault-injection study for every strategy and
// prints the comparison report.
func runRecovery(w *os.File, queryName string, seed int64, workers, slots int,
	cores, ioBps, netBps float64, records, snapEvery int64, killWorker int, killEpoch int64,
	metricsAddr, traceOut string, transport string, batchSize int, batchLinger time.Duration,
	noFuse bool) error {
	if queryName == "" {
		return fmt.Errorf("-recovery requires -query (see -list)")
	}
	spec, err := nexmark.ByName(queryName)
	if err != nil {
		return err
	}
	// The survivors must be able to host the whole graph after a death;
	// raise the slot count if the flags leave no headroom.
	if workers < 2 {
		return fmt.Errorf("-recovery needs at least 2 workers")
	}
	if need := spec.Graph.TotalTasks()/(workers-1) + 1; slots < need {
		slots = need
	}
	c, err := cluster.Homogeneous(workers, slots, cores, ioBps, netBps)
	if err != nil {
		return err
	}
	// One hub shared across strategies: the scrape endpoint and the trace
	// file cover the whole study, with each event attributed by query /
	// strategy attrs.
	tel := telemetry.New()
	if traceOut != "" {
		f, err := os.OpenFile(traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open -trace-out: %w", err)
		}
		defer f.Close()
		tel.Tracer().SetSink(f)
	}
	if metricsAddr != "" {
		srv, bound, err := tel.Serve(metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics and /events\n", bound)
	}
	var outcomes []*controller.RecoveryOutcome
	for _, strat := range experiments.RecoveryStrategies(spec, 200_000) {
		out, err := controller.RunRecovery(context.Background(), spec, c, strat, controller.RecoveryOptions{
			Seed:             seed,
			RecordsPerSource: records,
			SnapshotInterval: snapEvery,
			KillWorker:       killWorker,
			KillAtEpoch:      killEpoch,
			Transport:        transport,
			BatchSize:        batchSize,
			BatchLinger:      batchLinger,
			DisableFusion:    noFuse,
			Telemetry:        tel,
		})
		if err != nil {
			return fmt.Errorf("recovery under %s: %w", strat.Name(), err)
		}
		outcomes = append(outcomes, out)
	}
	if err := tel.Tracer().SinkErr(); err != nil {
		return fmt.Errorf("trace sink: %w", err)
	}
	_, err = fmt.Fprint(w, renderRecoveryReport(outcomes))
	return err
}

// renderRecoveryReport formats recovery outcomes as an aligned text table.
// It is a pure function of its input (no clocks, no maps iterated in
// nondeterministic order), so fixed outcomes render to fixed bytes — the
// golden test pins this format.
func renderRecoveryReport(outcomes []*controller.RecoveryOutcome) string {
	var b strings.Builder
	if len(outcomes) == 0 {
		return "recovery report: no outcomes\n"
	}
	fmt.Fprintf(&b, "recovery report: query %s, kill at checkpoint\n", outcomes[0].Query)
	header := []string{"strategy", "transport", "killed", "tasks_on_killed", "place_ms", "replace_ms",
		"recovered", "downtime_ms", "reprocessed", "lost", "sink_records", "moved", "peak_bp"}
	rows := [][]string{header}
	for _, o := range outcomes {
		recovered := "no"
		if o.Recovered {
			recovered = "yes"
		}
		rows = append(rows, []string{
			o.Strategy,
			o.Transport,
			fmt.Sprintf("w%d", o.KilledWorker),
			fmt.Sprintf("%d", o.TasksOnKilled),
			fmt.Sprintf("%.1f", float64(o.PlacementTime.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(o.ReplaceTime.Microseconds())/1000),
			recovered,
			fmt.Sprintf("%.1f", float64(o.Result.Downtime.Microseconds())/1000),
			fmt.Sprintf("%d", o.Result.RecordsReprocessed),
			fmt.Sprintf("%d", o.Result.LostRecords),
			fmt.Sprintf("%d", o.Result.SinkRecords),
			fmt.Sprintf("%d", o.MovedTasks),
			fmt.Sprintf("%.3f", o.Backpressure),
		})
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(row)-1 {
				b.WriteString(cell) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// parseRescalesFlag parses the -rescale "op=parallelism[,op=parallelism]"
// spec into the engine's rescale schedule, all firing at the same epoch.
func parseRescalesFlag(spec string, atEpoch int64) ([]engine.RescalePlan, error) {
	var plans []engine.RescalePlan
	for _, kv := range strings.Split(spec, ",") {
		op, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || op == "" {
			return nil, fmt.Errorf("-rescale entry %q: want op=parallelism", kv)
		}
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			return nil, fmt.Errorf("-rescale entry %q: parallelism must be a positive integer", kv)
		}
		plans = append(plans, engine.RescalePlan{Op: dataflow.OperatorID(op), Parallelism: p, AtEpoch: atEpoch})
	}
	return plans, nil
}

// runRescale executes one live rescale under the chosen strategy: deploy,
// drain to the scheduled checkpoint epoch, repartition the operators'
// key-groups, re-place, resume — and print what it cost.
func runRescale(w *os.File, queryName, strategy, rescaleSpec string, rescaleEpoch, seed int64,
	workers, slots int, cores, ioBps, netBps float64, records, snapEvery int64, sourceRate float64,
	metricsAddr, traceOut string, transport string, batchSize int, batchLinger time.Duration,
	noFuse bool) error {
	if queryName == "" {
		return fmt.Errorf("-rescale requires -query (see -list)")
	}
	spec, err := nexmark.ByName(queryName)
	if err != nil {
		return err
	}
	plans, err := parseRescalesFlag(rescaleSpec, rescaleEpoch)
	if err != nil {
		return err
	}
	strat, err := placement.ByName(strategy)
	if err != nil {
		return err
	}
	// The cluster must be able to host the scaled-up graph; raise the slot
	// count if the flags leave no headroom.
	maxTasks := spec.Graph.TotalTasks()
	for _, p := range plans {
		op := spec.Graph.Operator(p.Op)
		if op == nil {
			return fmt.Errorf("-rescale: query %s has no operator %q", queryName, p.Op)
		}
		if grow := p.Parallelism - op.Parallelism; grow > 0 {
			maxTasks += grow
		}
	}
	if need := maxTasks/workers + 1; slots < need {
		slots = need
	}
	c, err := cluster.Homogeneous(workers, slots, cores, ioBps, netBps)
	if err != nil {
		return err
	}
	tel := telemetry.New()
	if traceOut != "" {
		f, err := os.OpenFile(traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open -trace-out: %w", err)
		}
		defer f.Close()
		tel.Tracer().SetSink(f)
	}
	if metricsAddr != "" {
		srv, bound, err := tel.Serve(metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics and /events\n", bound)
	}
	opts := controller.RescaleOptions{
		Seed:             seed,
		RecordsPerSource: records,
		SnapshotInterval: snapEvery,
		Rescales:         plans,
		Transport:        transport,
		BatchSize:        batchSize,
		BatchLinger:      batchLinger,
		DisableFusion:    noFuse,
		Telemetry:        tel,
	}
	if sourceRate > 0 {
		opts.SourceRate = map[dataflow.OperatorID]float64{}
		for _, op := range spec.Graph.Operators() {
			if len(spec.Graph.Upstream(op.ID)) == 0 {
				opts.SourceRate[op.ID] = sourceRate
			}
		}
	}
	out, err := controller.RunRescale(context.Background(), spec, c, strat, opts)
	if err != nil {
		return err
	}
	if err := tel.Tracer().SinkErr(); err != nil {
		return fmt.Errorf("trace sink: %w", err)
	}
	_, err = fmt.Fprint(w, renderRescaleReport(out, plans))
	return err
}

// renderRescaleReport formats one rescale outcome as aligned text. Like
// renderRecoveryReport it is a pure function of its input, so fixed outcomes
// render to fixed bytes.
func renderRescaleReport(o *controller.RescaleOutcome, plans []engine.RescalePlan) string {
	var b strings.Builder
	if o == nil {
		return "rescale report: no outcome\n"
	}
	var changes []string
	for _, p := range plans {
		changes = append(changes, fmt.Sprintf("%s=%d@%d", p.Op, p.Parallelism, p.AtEpoch))
	}
	fmt.Fprintf(&b, "rescale report: query %s, %s\n", o.Query, strings.Join(changes, " "))
	header := []string{"strategy", "transport", "rescales", "place_ms", "replace_ms",
		"downtime_ms", "reprocessed", "lost", "sink_records", "moved_tasks", "moved_bytes"}
	rows := [][]string{header, {
		o.Strategy,
		o.Transport,
		fmt.Sprintf("%d", o.Result.Rescales),
		fmt.Sprintf("%.1f", float64(o.PlacementTime.Microseconds())/1000),
		fmt.Sprintf("%.1f", float64(o.ReplaceTime.Microseconds())/1000),
		fmt.Sprintf("%.1f", float64(o.Result.RescaleDowntime.Microseconds())/1000),
		fmt.Sprintf("%d", o.Result.RecordsReprocessed),
		fmt.Sprintf("%d", o.Result.LostRecords),
		fmt.Sprintf("%d", o.Result.SinkRecords),
		fmt.Sprintf("%d", o.MovedTasks),
		fmt.Sprintf("%d", o.Result.RescaleMovedBytes),
	}}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(row)-1 {
				b.WriteString(cell)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func run(queryName, queryFile, clusterFile, strategy string, seed int64,
	workers, slots int, cores, ioBps, netBps float64, noSim, chain bool) error {
	var spec nexmark.QuerySpec
	var err error
	switch {
	case queryFile != "":
		spec, err = specio.LoadQuery(queryFile)
	case queryName != "":
		spec, err = nexmark.ByName(queryName)
	default:
		return fmt.Errorf("one of -query or -query-file is required (see -list)")
	}
	if err != nil {
		return err
	}

	var c *cluster.Cluster
	if clusterFile != "" {
		c, err = specio.LoadCluster(clusterFile)
	} else {
		c, err = cluster.Homogeneous(workers, slots, cores, ioBps, netBps)
	}
	if err != nil {
		return err
	}

	strat, err := placement.ByName(strategy)
	if err != nil {
		return err
	}

	// With -chain, placement runs on the chained graph (fewer layers) and
	// the resulting plan is expanded back onto the original operators.
	placementSpec := spec
	var chained *dataflow.ChainResult
	if chain {
		chained, err = dataflow.Chain(spec.Graph)
		if err != nil {
			return err
		}
		rates := make(map[dataflow.OperatorID]float64, len(spec.SourceRates))
		for _, src := range chained.Graph.Sources() {
			for _, member := range chained.Members[src.ID] {
				if r, ok := spec.SourceRates[member]; ok {
					rates[src.ID] = r
				}
			}
		}
		placementSpec = nexmark.QuerySpec{Name: spec.Name, Graph: chained.Graph, SourceRates: rates}
	}

	placePhys, err := dataflow.Expand(placementSpec.Graph)
	if err != nil {
		return err
	}
	placeRates, err := dataflow.PropagateRates(placementSpec.Graph, placementSpec.SourceRates)
	if err != nil {
		return err
	}
	placeUsage := costmodel.FromRates(placementSpec.Graph, placeRates)

	start := time.Now()
	plan, err := strat.Place(context.Background(), placePhys, c, placeUsage, seed)
	if err != nil {
		return err
	}
	decision := time.Since(start)
	if chained != nil {
		plan, err = dataflow.ExpandChainedPlan(chained, plan)
		if err != nil {
			return err
		}
	}

	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return err
	}
	rates, err := dataflow.PropagateRates(spec.Graph, spec.SourceRates)
	if err != nil {
		return err
	}
	u := costmodel.FromRates(spec.Graph, rates)

	slotsPerWorker, err := c.SlotsPerWorker()
	if err != nil {
		return err
	}
	bounds := costmodel.ComputeBounds(phys, u, c.NumWorkers(), slotsPerWorker)
	cost := costmodel.PlanCost(phys, plan, u, bounds, c.NumWorkers())

	var out output
	out.Query = spec.Name
	out.Strategy = strat.Name()
	out.Plan = specio.RenderPlan(plan, phys, c.NumWorkers())
	out.Cost = map[string]float64{"cpu": cost.CPU, "io": cost.IO, "net": cost.Net}
	out.Decision = decision.String()

	if !noSim {
		res, err := simulator.Evaluate([]simulator.QueryDeployment{{
			Name: spec.Name, Phys: phys, Plan: plan, SourceRates: spec.SourceRates,
		}}, c, simulator.DefaultConfig())
		if err != nil {
			return err
		}
		qm := res.Queries[spec.Name]
		out.Simulated.Throughput = qm.Throughput
		out.Simulated.Target = qm.Target
		out.Simulated.Backpressure = qm.Backpressure
		out.Simulated.LatencyMS = qm.LatencySec * 1000
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parseFuseFlag maps the -fuse on|off flag onto the engine's DisableFusion
// option (true = fusion off).
func parseFuseFlag(v string) (bool, error) {
	switch v {
	case "on", "":
		return false, nil
	case "off":
		return true, nil
	}
	return false, fmt.Errorf("-fuse must be on or off (got %q)", v)
}
