package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"capsys/internal/controller"
	"capsys/internal/engine"
)

// syntheticOutcomes is a fixed input for the report renderer: real runs carry
// wall-clock values, so the golden pins the format against frozen outcomes.
func syntheticOutcomes() []*controller.RecoveryOutcome {
	return []*controller.RecoveryOutcome{
		{
			Query: "Q1-sliding", Strategy: "caps", Transport: "unary",
			KilledWorker: 1, TasksOnKilled: 5,
			PlacementTime: 42 * time.Millisecond,
			ReplaceTime:   18500 * time.Microsecond,
			MovedTasks:    5, Recovered: true, Backpressure: 0.0825,
			Result: &engine.JobResult{
				Downtime:           21300 * time.Microsecond,
				RecordsReprocessed: 800,
				LostRecords:        0,
				SinkRecords:        1234,
			},
		},
		{
			Query: "Q1-sliding", Strategy: "default", Transport: "batched",
			KilledWorker: 0, TasksOnKilled: 6,
			PlacementTime: 300 * time.Microsecond,
			ReplaceTime:   200 * time.Microsecond,
			MovedTasks:    9, Recovered: true, Backpressure: 0.4017,
			Result: &engine.JobResult{
				Downtime:           12100 * time.Microsecond,
				RecordsReprocessed: 1100,
				LostRecords:        0,
				SinkRecords:        1234,
			},
		},
		{
			Query: "Q1-sliding", Strategy: "evenly", Transport: "unary",
			KilledWorker: 2, TasksOnKilled: 4,
			PlacementTime: 250 * time.Microsecond,
			ReplaceTime:   180 * time.Microsecond,
			MovedTasks:    4, Recovered: false, Backpressure: 0.2558,
			Result: &engine.JobResult{
				Downtime:           250 * time.Millisecond,
				RecordsReprocessed: 0,
				LostRecords:        412,
				SinkRecords:        1020,
			},
		},
		{
			Query: "Q1-sliding", Strategy: "odrp", Transport: "batched",
			KilledWorker: 1, TasksOnKilled: 5,
			PlacementTime: 1800 * time.Millisecond,
			ReplaceTime:   950 * time.Millisecond,
			MovedTasks:    11, Recovered: true, Backpressure: 0.1912,
			Result: &engine.JobResult{
				Downtime:           963400 * time.Microsecond,
				RecordsReprocessed: 800,
				LostRecords:        0,
				SinkRecords:        1234,
			},
		},
	}
}

func TestRenderRecoveryReportGolden(t *testing.T) {
	got := renderRecoveryReport(syntheticOutcomes())
	golden := filepath.Join("testdata", "recovery_report.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("recovery report drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRenderRecoveryReportEmpty(t *testing.T) {
	if got := renderRecoveryReport(nil); got != "recovery report: no outcomes\n" {
		t.Errorf("empty render = %q", got)
	}
}

// End-to-end smoke test: the recovery study runs under every strategy and
// renders without error (kept small; the full battery lives in
// internal/experiments and internal/controller).
func TestRunRecoveryMode(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "report")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := runRecovery(f, "Q1-sliding", 1, 4, 4, 8, 500e6, 2e9, 400, 100, -1, 1, "127.0.0.1:0", trace, engine.TransportBatched, 16, 0, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("recovery mode produced no report")
	}
	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("-trace-out produced no events")
	}
}

func TestRunRecoveryErrors(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := runRecovery(devnull, "", 1, 4, 4, 8, 500e6, 2e9, 400, 100, -1, 1, "", "", engine.TransportUnary, 0, 0, false); err == nil {
		t.Error("missing query accepted")
	}
	if err := runRecovery(devnull, "Q1-sliding", 1, 1, 4, 8, 500e6, 2e9, 400, 100, -1, 1, "", "", engine.TransportUnary, 0, 0, false); err == nil {
		t.Error("single-worker cluster accepted")
	}
}
