// Command capbench regenerates the CAPSys paper's evaluation tables and
// figures from this repository's implementation. Each experiment prints the
// same rows/series the paper reports (absolute numbers differ — the
// substrate is a contention simulator, not the authors' AWS testbed — but
// the shapes hold; see EXPERIMENTS.md).
//
// Examples:
//
//	capbench -list
//	capbench -exp fig7
//	capbench -exp all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"capsys/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		format  = flag.String("format", "table", "output format: table|csv")
		timeout = flag.Duration("timeout", 30*time.Minute, "overall timeout")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "capbench: -exp is required (or -list)")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	failed := false
	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capbench: %s: %v\n", id, err)
			failed = true
			continue
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", r.ID, r.Title, r.CSV())
		default:
			fmt.Printf("%s(completed in %v)\n\n", r, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed {
		os.Exit(1)
	}
}
