// Command capbench regenerates the CAPSys paper's evaluation tables and
// figures from this repository's implementation. Each experiment prints the
// same rows/series the paper reports (absolute numbers differ — the
// substrate is a contention simulator, not the authors' AWS testbed — but
// the shapes hold; see EXPERIMENTS.md).
//
// Examples:
//
//	capbench -list
//	capbench -exp fig7
//	capbench -exp all
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"capsys/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		format  = flag.String("format", "table", "output format: table|csv")
		out     = flag.String("out", "", "also write completed reports as JSON to this file")
		timeout = flag.Duration("timeout", 30*time.Minute, "overall timeout")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "capbench: -exp is required (or -list)")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	failed := false
	var done []*experiments.Report
	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capbench: %s: %v\n", id, err)
			failed = true
			continue
		}
		done = append(done, r)
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", r.ID, r.Title, r.CSV())
		default:
			fmt.Printf("%s(completed in %v)\n\n", r, time.Since(start).Round(time.Millisecond))
		}
	}
	if *out != "" && len(done) > 0 {
		buf, err := json.MarshalIndent(done, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "capbench: encoding reports: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "capbench: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}
