package main

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"capsys/internal/experiments"
)

// TestOutJSONByteIdentical is the determinism regression gate for the
// report path: two identical runs must produce byte-identical -out JSON.
// It renders exactly what main writes for -out (MarshalIndent + trailing
// newline) over experiments that are pure functions of their inputs — the
// colocation studies and the pruning table run entirely on the simulator
// and embed no wall-clock effort columns.
func TestOutJSONByteIdentical(t *testing.T) {
	ids := []string{"fig3a", "fig3b", "tab2"}
	render := func() []byte {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		var done []*experiments.Report
		for _, id := range ids {
			r, err := experiments.Run(ctx, id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			done = append(done, r)
		}
		buf, err := json.MarshalIndent(done, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return append(buf, '\n')
	}
	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		limit := len(first)
		if len(second) < limit {
			limit = len(second)
		}
		at := limit
		for i := 0; i < limit; i++ {
			if first[i] != second[i] {
				at = i
				break
			}
		}
		lo := at - 80
		if lo < 0 {
			lo = 0
		}
		hi := at + 80
		if hi > limit {
			hi = limit
		}
		t.Errorf("-out JSON diverged between identical runs at byte %d:\nrun1: …%s…\nrun2: …%s…",
			at, first[lo:hi], second[lo:hi])
	}
}
