// Command capslint runs the project's static analysis suite (internal/lint)
// over package patterns and exits non-zero when any invariant is violated.
//
// Usage:
//
//	go run ./cmd/capslint ./...
//	capslint -json ./internal/engine
//	capslint -strict -checks determinism,locks ./...
//	capslint -diff ./...   # print suggested rewrites for mechanical checks
//
// Findings are suppressed in place with `//capslint:allow <check> <reason>`
// on the flagged line or the line above; -strict reports suppressions that
// no longer suppress anything. Built purely on the standard library's
// go/parser, go/ast and go/types — no external dependencies — so it runs
// from a clean checkout with nothing but the Go toolchain.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"capsys/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array")
		strict  = flag.Bool("strict", false, "also report stale //capslint:allow suppressions")
		diff    = flag.Bool("diff", false, "print suggested rewrites for mechanical findings")
		checks  = flag.String("checks", "", "comma-separated checks to run (default: all)")
		disable = flag.String("disable", "", "comma-separated checks to skip")
		list    = flag.Bool("list", false, "list available checks and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}
	cfg := lint.Config{Strict: *strict, Enable: splitList(*checks), Disable: splitList(*disable)}
	// Load every target package first, then lint them together as one
	// program: the whole-program analyzers (lockorder, atomics, frameproto)
	// need to see a call site in one package and the function body, atomic
	// field, or frame constant it refers to in another.
	var pkgs []*lint.Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", dir, err))
		}
		if p == nil {
			continue
		}
		pkgs = append(pkgs, p)
	}
	diags, err := lint.Run(pkgs, cfg)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			if *diff && d.Suggestion != "" {
				printRewrite(loader.Root(), d)
			}
		}
		fmt.Fprintf(os.Stderr, "capslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// printRewrite renders a finding's mechanical suggestion as a small diff
// against the flagged source line.
func printRewrite(root string, d lint.Diagnostic) {
	path := d.File
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, filepath.FromSlash(d.File))
	}
	if line := readLine(path, d.Line); line != "" {
		fmt.Printf("\t- %s\n", strings.TrimLeft(line, " \t"))
	}
	fmt.Printf("\t+ %s\n", d.Suggestion)
}

func readLine(path string, line int) string {
	f, err := os.Open(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for i := 1; sc.Scan(); i++ {
		if i == line {
			return sc.Text()
		}
	}
	return ""
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "capslint:", err)
	os.Exit(2)
}
