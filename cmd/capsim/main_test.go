package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"capsys/internal/engine"
	"capsys/internal/telemetry"
)

func TestRunSingleQuery(t *testing.T) {
	if err := run("Q1-sliding", false, "caps", 0, 4, 4, 4, 200e6, 1.25e9, 1, false, "", liveOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllQueriesScaled(t *testing.T) {
	if err := run("", true, "evenly", 2, 18, 8, 4, 200e6, 1.25e9, 0.7, true, "", liveOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultipleNamedQueries(t *testing.T) {
	if err := run("Q1-sliding, Q3-inf", false, "default", 1, 8, 4, 4, 200e6, 1.25e9, 1, false, "", liveOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run("Q1-sliding,Q3-inf", false, "caps", 0, 8, 4, 4, 200e6, 1.25e9, 1, false, path, liveOptions{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev struct {
			Schema int    `json:"schema"`
			Kind   string `json:"kind"`
			Query  string `json:"query"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if ev.Schema != telemetry.TraceSchemaVersion || ev.Kind != "controller.decision" || ev.Query == "" {
			t.Errorf("line %d: unexpected event %+v", lines+1, ev)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("trace has %d events, want 2 (one per query)", lines)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"no queries", func() error { return run("", false, "caps", 0, 4, 4, 4, 1, 1, 1, false, "", liveOptions{}) }},
		{"unknown query", func() error { return run("Q99", false, "caps", 0, 4, 4, 4, 1, 1, 1, false, "", liveOptions{}) }},
		{"unknown strategy", func() error { return run("Q1-sliding", false, "zap", 0, 4, 4, 4, 1, 1, 1, false, "", liveOptions{}) }},
		{"bad cluster", func() error { return run("Q1-sliding", false, "caps", 0, 0, 4, 4, 1, 1, 1, false, "", liveOptions{}) }},
	}
	for _, tc := range cases {
		if err := tc.f(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestRunLiveMode(t *testing.T) {
	for _, tr := range engine.TransportNames() {
		lo := liveOptions{enabled: true, records: 500, transport: tr}
		if err := run("Q1-sliding", false, "caps", 0, 4, 4, 4, 200e6, 1.25e9, 1, false, "", lo); err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
	}
	bad := liveOptions{enabled: true, records: 500, transport: "carrier-pigeon"}
	if err := run("Q1-sliding", false, "caps", 0, 4, 4, 4, 200e6, 1.25e9, 1, false, "", bad); err == nil {
		t.Error("unknown live transport: no error")
	}
}
