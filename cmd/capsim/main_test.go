package main

import "testing"

func TestRunSingleQuery(t *testing.T) {
	if err := run("Q1-sliding", false, "caps", 0, 4, 4, 4, 200e6, 1.25e9, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllQueriesScaled(t *testing.T) {
	if err := run("", true, "evenly", 2, 18, 8, 4, 200e6, 1.25e9, 0.7, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultipleNamedQueries(t *testing.T) {
	if err := run("Q1-sliding, Q3-inf", false, "default", 1, 8, 4, 4, 200e6, 1.25e9, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"no queries", func() error { return run("", false, "caps", 0, 4, 4, 4, 1, 1, 1, false) }},
		{"unknown query", func() error { return run("Q99", false, "caps", 0, 4, 4, 4, 1, 1, 1, false) }},
		{"unknown strategy", func() error { return run("Q1-sliding", false, "zap", 0, 4, 4, 4, 1, 1, 1, false) }},
		{"bad cluster", func() error { return run("Q1-sliding", false, "caps", 0, 0, 4, 4, 1, 1, 1, false) }},
	}
	for _, tc := range cases {
		if err := tc.f(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
