// Command capsim runs simulated stream-processing experiments: deploy one or
// more queries on a cluster under a placement strategy and report the
// steady-state throughput, backpressure and latency per query, plus
// per-worker utilization.
//
// Examples:
//
//	capsim -query Q2-join -strategy caps
//	capsim -query Q1-sliding,Q3-inf -strategy default -seed 2 -workers 8 -slots 8
//	capsim -all -strategy evenly -workers 18 -slots 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
	"capsys/internal/telemetry"
)

func main() {
	var (
		queries  = flag.String("query", "", "comma-separated built-in query names")
		all      = flag.Bool("all", false, "deploy all six benchmark queries")
		strategy = flag.String("strategy", "caps", "placement strategy: caps|default|evenly|random|greedy")
		seed     = flag.Int64("seed", 0, "seed for randomized strategies")
		workers  = flag.Int("workers", 4, "number of workers")
		slots    = flag.Int("slots", 4, "slots per worker")
		cores    = flag.Float64("cores", 4, "CPU cores per worker")
		ioBps    = flag.Float64("io-bps", 200e6, "disk bandwidth per worker (bytes/s)")
		netBps   = flag.Float64("net-bps", 1.25e9, "network bandwidth per worker (bytes/s)")
		scale    = flag.Float64("rate-scale", 1.0, "multiply all target rates by this factor")
		utilDump = flag.Bool("util", false, "print per-worker utilization")
		traceOut = flag.String("trace-out", "", "append one controller.decision trace event per query as JSONL to this file")
	)
	flag.Parse()
	if err := run(*queries, *all, *strategy, *seed, *workers, *slots, *cores, *ioBps, *netBps, *scale, *utilDump, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(1)
	}
}

func run(queries string, all bool, strategy string, seed int64,
	workers, slots int, cores, ioBps, netBps, scale float64, utilDump bool, traceOut string) error {
	var specs []nexmark.QuerySpec
	if all {
		specs = nexmark.AllQueries()
	} else if queries != "" {
		for _, name := range strings.Split(queries, ",") {
			q, err := nexmark.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			specs = append(specs, q)
		}
	} else {
		return fmt.Errorf("one of -query or -all is required")
	}
	if scale != 1.0 {
		for i := range specs {
			specs[i] = specs[i].Scaled(scale)
		}
	}
	c, err := cluster.Homogeneous(workers, slots, cores, ioBps, netBps)
	if err != nil {
		return err
	}
	strat, err := placement.ByName(strategy)
	if err != nil {
		return err
	}
	_, res, err := controller.DeployAll(context.Background(), specs, c, strat, seed, simulator.DefaultConfig())
	if err != nil {
		return err
	}
	if traceOut != "" {
		if err := writeDecisionTrace(traceOut, strat.Name(), res); err != nil {
			return err
		}
	}
	fmt.Printf("%-14s %12s %12s %8s %10s\n", "query", "target", "throughput", "bp(%)", "latency(ms)")
	for _, name := range res.SortedQueryNames() {
		q := res.Queries[name]
		fmt.Printf("%-14s %12.0f %12.0f %8.1f %10.1f\n",
			name, q.Target, q.Throughput, q.Backpressure*100, q.LatencySec*1000)
	}
	if utilDump {
		fmt.Printf("\n%-8s %8s %8s %8s\n", "worker", "cpu", "io", "net")
		for w, u := range res.WorkerUtilization {
			fmt.Printf("w%-7d %8.3f %8.3f %8.3f\n", w, u.CPU, u.IO, u.Net)
		}
	}
	return nil
}

// writeDecisionTrace appends one controller.decision event per deployed
// query — the profile -> placement -> simulated-outcome record — as JSONL.
func writeDecisionTrace(path, strategy string, res *simulator.Result) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("open -trace-out: %w", err)
	}
	defer f.Close()
	tracer := telemetry.NewTracer(len(res.Queries) + 1)
	tracer.SetSink(f)
	for _, name := range res.SortedQueryNames() {
		q := res.Queries[name]
		tracer.Emit(telemetry.Event{
			Kind:  telemetry.EventDecision,
			Query: name,
			Attrs: map[string]any{
				"strategy":     strategy,
				"target_rate":  q.Target,
				"throughput":   q.Throughput,
				"backpressure": q.Backpressure,
				"latency_ms":   q.LatencySec * 1000,
			},
		})
	}
	return tracer.SinkErr()
}
