// Command capsim runs simulated stream-processing experiments: deploy one or
// more queries on a cluster under a placement strategy and report the
// steady-state throughput, backpressure and latency per query, plus
// per-worker utilization.
//
// Examples:
//
//	capsim -query Q2-join -strategy caps
//	capsim -query Q1-sliding,Q3-inf -strategy default -seed 2 -workers 8 -slots 8
//	capsim -all -strategy evenly -workers 18 -slots 8
//	capsim -query Q1-sliding -live -transport batched   # replay on the live engine
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
	"capsys/internal/telemetry"
)

func main() {
	var (
		queries  = flag.String("query", "", "comma-separated built-in query names")
		all      = flag.Bool("all", false, "deploy all six benchmark queries")
		strategy = flag.String("strategy", "caps", "placement strategy: caps|default|evenly|random|greedy")
		seed     = flag.Int64("seed", 0, "seed for randomized strategies")
		workers  = flag.Int("workers", 4, "number of workers")
		slots    = flag.Int("slots", 4, "slots per worker")
		cores    = flag.Float64("cores", 4, "CPU cores per worker")
		ioBps    = flag.Float64("io-bps", 200e6, "disk bandwidth per worker (bytes/s)")
		netBps   = flag.Float64("net-bps", 1.25e9, "network bandwidth per worker (bytes/s)")
		scale    = flag.Float64("rate-scale", 1.0, "multiply all target rates by this factor")
		utilDump = flag.Bool("util", false, "print per-worker utilization")
		traceOut = flag.String("trace-out", "", "append one controller.decision trace event per query as JSONL to this file")

		live         = flag.Bool("live", false, "after simulating, replay each deployed query on the live engine and report measured throughput")
		records      = flag.Int64("records", 5000, "live mode: records per source task")
		transport    = flag.String("transport", engine.TransportUnary, "live mode: data-plane exchange (unary|batched)")
		fuseFlag     = flag.String("fuse", "on", "live mode: operator fusion — run co-located Forward chains as one goroutine (on|off)")
		batchSize    = flag.Int("batch-size", 0, "live mode, batched transport: records per batch (0 = engine default)")
		batchLinger  = flag.Duration("batch-linger", 0, "live mode, batched transport: max wait for a partial batch (0 = engine default, negative disables)")
		snapEvery    = flag.Int64("snapshot-every", 0, "live mode: checkpoint barrier interval in records per source (0 disables; required by -rescale)")
		rescaleSpec  = flag.String("rescale", "", "live mode: comma-separated op=parallelism changes applied live at -rescale-epoch during the replay")
		rescaleEpoch = flag.Int64("rescale-epoch", 2, "live mode: checkpoint epoch at which -rescale fires")
	)
	flag.Parse()
	noFuse, err := parseFuseFlag(*fuseFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(1)
	}
	rescales, err := parseRescalesFlag(*rescaleSpec, *rescaleEpoch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(1)
	}
	lo := liveOptions{
		enabled:     *live,
		records:     *records,
		transport:   *transport,
		batchSize:   *batchSize,
		batchLinger: *batchLinger,
		noFuse:      noFuse,
		snapEvery:   *snapEvery,
		rescales:    rescales,
	}
	if err := run(*queries, *all, *strategy, *seed, *workers, *slots, *cores, *ioBps, *netBps, *scale, *utilDump, *traceOut, lo); err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(1)
	}
}

// liveOptions configures the optional live-engine replay of the simulated
// deployments: same plans, real goroutines and meters, selectable exchange
// transport.
type liveOptions struct {
	enabled     bool
	records     int64
	transport   string
	batchSize   int
	batchLinger time.Duration
	noFuse      bool
	snapEvery   int64
	rescales    []engine.RescalePlan
}

// parseRescalesFlag parses the -rescale "op=parallelism[,op=parallelism]"
// spec into the engine's rescale schedule, all firing at the same epoch.
func parseRescalesFlag(spec string, atEpoch int64) ([]engine.RescalePlan, error) {
	if spec == "" {
		return nil, nil
	}
	var plans []engine.RescalePlan
	for _, kv := range strings.Split(spec, ",") {
		op, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || op == "" {
			return nil, fmt.Errorf("-rescale entry %q: want op=parallelism", kv)
		}
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			return nil, fmt.Errorf("-rescale entry %q: parallelism must be a positive integer", kv)
		}
		plans = append(plans, engine.RescalePlan{Op: dataflow.OperatorID(op), Parallelism: p, AtEpoch: atEpoch})
	}
	return plans, nil
}

// parseFuseFlag maps the -fuse on|off flag onto the engine's DisableFusion
// option (true = fusion off).
func parseFuseFlag(v string) (bool, error) {
	switch v {
	case "on", "":
		return false, nil
	case "off":
		return true, nil
	}
	return false, fmt.Errorf("-fuse must be on or off (got %q)", v)
}

func run(queries string, all bool, strategy string, seed int64,
	workers, slots int, cores, ioBps, netBps, scale float64, utilDump bool, traceOut string, lo liveOptions) error {
	var specs []nexmark.QuerySpec
	if all {
		specs = nexmark.AllQueries()
	} else if queries != "" {
		for _, name := range strings.Split(queries, ",") {
			q, err := nexmark.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			specs = append(specs, q)
		}
	} else {
		return fmt.Errorf("one of -query or -all is required")
	}
	if scale != 1.0 {
		for i := range specs {
			specs[i] = specs[i].Scaled(scale)
		}
	}
	c, err := cluster.Homogeneous(workers, slots, cores, ioBps, netBps)
	if err != nil {
		return err
	}
	strat, err := placement.ByName(strategy)
	if err != nil {
		return err
	}
	deps, res, err := controller.DeployAll(context.Background(), specs, c, strat, seed, simulator.DefaultConfig())
	if err != nil {
		return err
	}
	if traceOut != "" {
		if err := writeDecisionTrace(traceOut, strat.Name(), res); err != nil {
			return err
		}
	}
	fmt.Printf("%-14s %12s %12s %8s %10s\n", "query", "target", "throughput", "bp(%)", "latency(ms)")
	for _, name := range res.SortedQueryNames() {
		q := res.Queries[name]
		fmt.Printf("%-14s %12.0f %12.0f %8.1f %10.1f\n",
			name, q.Target, q.Throughput, q.Backpressure*100, q.LatencySec*1000)
	}
	if utilDump {
		fmt.Printf("\n%-8s %8s %8s %8s\n", "worker", "cpu", "io", "net")
		for w, u := range res.WorkerUtilization {
			fmt.Printf("w%-7d %8.3f %8.3f %8.3f\n", w, u.CPU, u.IO, u.Net)
		}
	}
	if lo.enabled {
		return runLive(context.Background(), deps, c, seed, lo)
	}
	return nil
}

// runLive replays the simulated deployments on the live engine, one query at
// a time, under the configured exchange transport — the measured rec/s
// column is the ground truth the simulator's steady-state throughput
// approximates.
func runLive(ctx context.Context, deps []controller.Deployment, c *cluster.Cluster, seed int64, lo liveOptions) error {
	if lo.records <= 0 {
		return fmt.Errorf("-live requires -records > 0")
	}
	if len(lo.rescales) > 0 && lo.snapEvery <= 0 {
		return fmt.Errorf("-rescale requires -snapshot-every > 0 (rescales are epoch-aligned)")
	}
	espec := controller.EngineCluster(c)
	fmt.Printf("\nlive engine (%s transport, %d records/source):\n", lo.transport, lo.records)
	fmt.Printf("%-14s %12s %12s %12s %10s %10s\n", "query", "sourced", "elapsed", "rec/s", "sink", "batches")
	for _, dep := range deps {
		binding, err := nexmark.BindEngine(dep.Spec, seed)
		if err != nil {
			return err
		}
		job, err := engine.NewJob(dep.Spec.Graph, dep.Plan, espec, binding.Factories, engine.JobOptions{
			RecordsPerSource: lo.records,
			Stateful:         binding.Stateful,
			PerRecordCPU:     binding.PerRecordCPU,
			Transport:        lo.transport,
			BatchSize:        lo.batchSize,
			BatchLinger:      lo.batchLinger,
			DisableFusion:    lo.noFuse,
			SnapshotInterval: lo.snapEvery,
			Rescales:         lo.rescales,
		})
		if err != nil {
			return err
		}
		res, err := job.Run(ctx)
		if err != nil {
			return err
		}
		rate := 0.0
		if res.Elapsed > 0 {
			rate = float64(res.SourceRecords) / res.Elapsed.Seconds()
		}
		fmt.Printf("%-14s %12d %12s %12.0f %10d %10.0f\n",
			dep.Spec.Name, res.SourceRecords, res.Elapsed.Round(time.Millisecond),
			rate, res.SinkRecords, res.Metrics.Snapshot()["exchange.batches"])
		if res.Rescales > 0 {
			fmt.Printf("%-14s rescale: %d applied, downtime %v, moved %d state bytes, reprocessed %d records\n",
				"", res.Rescales, res.RescaleDowntime.Round(time.Millisecond), res.RescaleMovedBytes, res.RecordsReprocessed)
		}
	}
	return nil
}

// writeDecisionTrace appends one controller.decision event per deployed
// query — the profile -> placement -> simulated-outcome record — as JSONL.
func writeDecisionTrace(path, strategy string, res *simulator.Result) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("open -trace-out: %w", err)
	}
	defer f.Close()
	tracer := telemetry.NewTracer(len(res.Queries) + 1)
	tracer.SetSink(f)
	for _, name := range res.SortedQueryNames() {
		q := res.Queries[name]
		tracer.Emit(telemetry.Event{
			Kind:  telemetry.EventDecision,
			Query: name,
			Attrs: map[string]any{
				"strategy":     strategy,
				"target_rate":  q.Target,
				"throughput":   q.Throughput,
				"backpressure": q.Backpressure,
				"latency_ms":   q.LatencySec * 1000,
			},
		})
	}
	return tracer.SinkErr()
}
