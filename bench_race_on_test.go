//go:build race

package capsys_bench

// raceEnabled makes the benchmarks skip under the race detector:
// instrumentation slows the searches and the live engine by an order of
// magnitude, so the reported figures would be meaningless.
const raceEnabled = true
