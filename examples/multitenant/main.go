// Multitenant: deploy all six Nexmark benchmark queries concurrently on the
// paper's 18-worker, 144-slot cluster (§6.2.2) and compare placement
// strategies. CAPS treats the whole workload as a single dataflow and places
// it globally; the Flink baselines deploy one query at a time in randomized
// submission order.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"context"
	"fmt"
	"log"

	"capsys/internal/controller"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
)

func main() {
	cluster := nexmark.MultiTenantCluster()
	// Six queries sized for 4 dedicated workers each share 18 workers, so
	// jointly attainable targets are 70% of single-query saturation.
	var specs []nexmark.QuerySpec
	for _, s := range nexmark.AllQueries() {
		specs = append(specs, s.Scaled(0.7))
	}

	fmt.Printf("cluster: %d workers, %d slots; workload: %d queries, %d tasks\n\n",
		cluster.NumWorkers(), cluster.TotalSlots(), len(specs), totalTasks(specs))

	for _, strat := range []placement.Strategy{
		placement.CAPS{}, placement.FlinkDefault{}, placement.FlinkEvenly{},
	} {
		_, res, err := controller.DeployAll(context.Background(), specs, cluster, strat, 1, simulator.DefaultConfig())
		if err != nil {
			log.Fatalf("%s: %v", strat.Name(), err)
		}
		fmt.Printf("--- strategy: %s\n", strat.Name())
		fmt.Printf("%-14s %12s %12s %8s %12s\n", "query", "target", "throughput", "bp(%)", "latency(ms)")
		met := 0
		for _, spec := range specs {
			q := res.Queries[spec.Name]
			if q.Throughput >= 0.99*q.Target {
				met++
			}
			fmt.Printf("%-14s %12.0f %12.0f %8.1f %12.1f\n",
				spec.Name, q.Target, q.Throughput, q.Backpressure*100, q.LatencySec*1000)
		}
		fmt.Printf("queries at target: %d/%d\n\n", met, len(specs))
	}
}

func totalTasks(specs []nexmark.QuerySpec) int {
	n := 0
	for _, s := range specs {
		n += s.Graph.TotalTasks()
	}
	return n
}
