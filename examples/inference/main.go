// Inference: a live Q3-inf-style pipeline on the mini engine — image
// decode and model inference over large records — demonstrating the paper's
// core observation in real execution: co-locating the compute-intensive
// inference tasks on one worker is measurably slower than spreading them,
// on the *same* hardware with the *same* query.
//
// Run with:
//
//	go run ./examples/inference
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"capsys/internal/dataflow"
	"capsys/internal/engine"
)

const (
	imageBytes    = 4096 // simulated encoded image size
	inferenceCost = 2e-3 // CPU-seconds per image
	decodeCost    = 3e-4
	numImages     = 600
)

func buildGraph() *dataflow.LogicalGraph {
	g := dataflow.NewLogicalGraph()
	ops := []dataflow.Operator{
		{ID: "camera", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 1e-5, Net: imageBytes}},
		{ID: "decode", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: decodeCost, Net: imageBytes * 2}},
		{ID: "infer", Kind: dataflow.KindInference, Parallelism: 4, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: inferenceCost, Net: 128}},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1, Selectivity: 0,
			Cost: dataflow.UnitCost{CPU: 1e-6}},
	}
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			log.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{
		{From: "camera", To: "decode"}, {From: "decode", To: "infer"}, {From: "infer", To: "sink"},
	} {
		if err := g.AddEdge(e); err != nil {
			log.Fatal(err)
		}
	}
	return g
}

// classify emulates model inference: a deterministic pseudo-score over the
// image payload (the real CPU cost is charged by the engine's meters).
func classify(img []byte) int {
	h := 0
	for _, b := range img {
		h = h*31 + int(b)
	}
	return h % 1000
}

func factories() map[dataflow.OperatorID]engine.Factory {
	rng := rand.New(rand.NewSource(7))
	images := make([][]byte, numImages)
	for i := range images {
		images[i] = make([]byte, imageBytes)
		rng.Read(images[i])
	}
	return map[dataflow.OperatorID]engine.Factory{
		"camera": func(*engine.TaskContext) (any, error) {
			return engine.NewSource(func(task, i int64) (engine.Record, bool) {
				img := images[(task*numImages/2+i)%numImages]
				return engine.Record{
					Key:   fmt.Sprintf("cam%d-%d", task, i),
					Value: img, Time: i, Size: imageBytes,
				}, true
			}), nil
		},
		"decode": func(*engine.TaskContext) (any, error) {
			return engine.NewMap(func(r engine.Record) engine.Record {
				r.Size = imageBytes * 2 // decoded tensors are larger
				return r
			}), nil
		},
		"infer": func(*engine.TaskContext) (any, error) {
			return engine.NewMap(func(r engine.Record) engine.Record {
				return engine.Record{
					Key: r.Key, Value: classify(r.Value.([]byte)), Time: r.Time, Size: 128,
				}
			}), nil
		},
		"sink": func(*engine.TaskContext) (any, error) { return engine.NewSink(nil), nil },
	}
}

func run(g *dataflow.LogicalGraph, inferWorkers []int) float64 {
	phys, err := dataflow.Expand(g)
	if err != nil {
		log.Fatal(err)
	}
	plan := dataflow.NewPlan()
	for _, t := range phys.TasksOf("infer") {
		plan.Assign(t, inferWorkers[t.Index])
	}
	// Everything else spreads round-robin over the free capacity.
	counts := map[int]int{}
	for _, w := range inferWorkers {
		counts[w]++
	}
	for _, op := range []dataflow.OperatorID{"camera", "decode", "sink"} {
		for _, t := range phys.TasksOf(op) {
			best := 0
			for w := 1; w < 4; w++ {
				if counts[w] < counts[best] {
					best = w
				}
			}
			plan.Assign(t, best)
			counts[best]++
		}
	}
	spec := engine.ClusterSpec{}
	for i := 0; i < 4; i++ {
		spec.Workers = append(spec.Workers, engine.WorkerSpec{
			ID: fmt.Sprintf("w%d", i), Slots: 9,
			Cores: 1.0, IOBps: 100e6, NetBps: 50e6,
		})
	}
	job, err := engine.NewJob(g, plan, spec, factories(), engine.JobOptions{
		RecordsPerSource: numImages / 2,
		PerRecordCPU: map[dataflow.OperatorID]float64{
			"decode": decodeCost,
			"infer":  inferenceCost,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return float64(res.SourceRecords) / res.Elapsed.Seconds()
}

func main() {
	g := buildGraph()
	fmt.Printf("pipeline: camera(2) -> decode(2) -> infer(4) -> sink(1), %d images of %d KB\n",
		numImages, imageBytes/1024)

	spread := run(g, []int{0, 1, 2, 3})
	fmt.Printf("inference spread across 4 workers: %7.0f images/s\n", spread)

	packed := run(g, []int{0, 0, 0, 0})
	fmt.Printf("inference packed on one worker:    %7.0f images/s\n", packed)

	fmt.Printf("contention penalty: %.2fx slower when packed\n", spread/packed)
}
