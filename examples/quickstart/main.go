// Quickstart: build a small streaming query, compute a contention-aware
// placement with CAPS, and execute it on the live mini engine.
//
// The query counts Nexmark bids per auction over tumbling windows:
//
//	source -> filter(bids) -> window(count per auction) -> sink
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sync/atomic"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
)

func main() {
	// 1. Describe the logical dataflow. Unit costs (CPU-seconds, state
	// bytes, output bytes per record) would normally come from the CAPSys
	// profiling phase; here we declare them directly.
	g := dataflow.NewLogicalGraph()
	ops := []dataflow.Operator{
		{ID: "source", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 2e-6, Net: 60}},
		{ID: "bids", Kind: dataflow.KindFilter, Parallelism: 2, Selectivity: 0.92,
			Cost: dataflow.UnitCost{CPU: 2e-6, Net: 60}},
		{ID: "count", Kind: dataflow.KindWindow, Parallelism: 4, Selectivity: 0.01,
			Cost: dataflow.UnitCost{CPU: 4e-4, IO: 120, Net: 20}},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1, Selectivity: 0,
			Cost: dataflow.UnitCost{CPU: 1e-6}},
	}
	for _, op := range ops {
		must(g.AddOperator(op))
	}
	must(g.AddEdge(dataflow.Edge{From: "source", To: "bids"}))
	must(g.AddEdge(dataflow.Edge{From: "bids", To: "count"}))
	must(g.AddEdge(dataflow.Edge{From: "count", To: "sink"}))
	phys, err := dataflow.Expand(g)
	must(err)

	// 2. Describe the cluster: 3 workers, 3 slots each, one CPU core per
	// worker so the window tasks genuinely contend when co-located.
	c, err := cluster.Homogeneous(3, 3, 1.0, 50e6, 100e6)
	must(err)

	// 3. Compute a placement with CAPS: auto-tune the pruning thresholds,
	// then search for the Pareto-optimal plan.
	rates, err := dataflow.PropagateRates(g, map[dataflow.OperatorID]float64{"source": 2000})
	must(err)
	usage := costmodel.FromRates(g, rates)
	tuned, err := caps.AutoTune(context.Background(), phys, c, usage, caps.DefaultAutoTuneOptions())
	must(err)
	fmt.Printf("auto-tuned thresholds: %v (after %d probes)\n", tuned.Alpha, tuned.Probes)

	res, err := caps.Search(context.Background(), phys, c, usage, caps.Options{
		Alpha: tuned.Alpha, Mode: caps.Exhaustive, Reorder: true,
	})
	must(err)
	if !res.Feasible {
		log.Fatal("no feasible plan")
	}
	fmt.Printf("plan cost %v after %d nodes / %d plans in %v\nplan:\n%s\n",
		res.Cost, res.Stats.Nodes, res.Stats.Plans, res.Stats.Elapsed, res.Plan)

	// 4. Execute the plan on the live engine with real Nexmark events.
	gen := nexmark.NewGenerator(42, 1)
	events := make([]nexmark.Event, 40_000)
	for i := range events {
		events[i] = gen.Next()
	}
	var windows atomic.Int64
	factories := map[dataflow.OperatorID]engine.Factory{
		"source": func(*engine.TaskContext) (any, error) {
			return engine.NewSource(func(task, i int64) (engine.Record, bool) {
				idx := task*int64(len(events)/2) + i
				if idx >= int64(len(events)) {
					return engine.Record{}, false
				}
				e := events[idx]
				key := ""
				if e.Kind == nexmark.BidEvent {
					key = fmt.Sprintf("a%d", e.Bid.Auction)
				}
				return engine.Record{Key: key, Value: e, Time: e.Timestamp, Size: 60}, true
			}), nil
		},
		"bids": func(*engine.TaskContext) (any, error) {
			return engine.NewFilter(func(r engine.Record) bool {
				return r.Value.(nexmark.Event).Kind == nexmark.BidEvent
			}), nil
		},
		"count": func(*engine.TaskContext) (any, error) {
			return engine.NewSlidingWindow(1000, 1000, countAgg, func(key string, start, end int64, acc []byte) engine.Record {
				var n int
				_ = json.Unmarshal(acc, &n)
				return engine.Record{Key: key, Value: n, Time: end, Size: 20}
			}), nil
		},
		"sink": func(*engine.TaskContext) (any, error) {
			return engine.NewSink(func(engine.Record) { windows.Add(1) }), nil
		},
	}
	spec := engine.ClusterSpec{}
	for i := 0; i < c.NumWorkers(); i++ {
		w := c.Worker(i)
		spec.Workers = append(spec.Workers, engine.WorkerSpec{
			ID: w.ID, Slots: w.Slots, Cores: w.CPU, IOBps: w.IOBandwidth, NetBps: w.NetBandwidth,
		})
	}
	job, err := engine.NewJob(g, res.Plan, spec, factories, engine.JobOptions{
		RecordsPerSource: int64(len(events) / 2),
		PerRecordCPU: map[dataflow.OperatorID]float64{
			"count": 4e-4, // emulate the profiled per-record compute cost
		},
		Stateful: map[dataflow.OperatorID]bool{"count": true},
	})
	must(err)
	run, err := job.Run(context.Background())
	must(err)

	fmt.Printf("engine run: %d records in %v (%.0f rec/s), %d windows emitted\n",
		run.SourceRecords, run.Elapsed.Round(1e6),
		float64(run.SourceRecords)/run.Elapsed.Seconds(), windows.Load())
	for _, t := range phys.TasksOf("count") {
		st := run.Tasks[t]
		fmt.Printf("  %v on worker %d: in=%d useful=%.2f backpressure=%v\n",
			t, st.Worker, st.RecordsIn, st.UsefulFraction, st.BackpressureT.Round(1e6))
	}
}

func countAgg(acc []byte, _ engine.Record) []byte {
	var n int
	if acc != nil {
		_ = json.Unmarshal(acc, &n)
	}
	n++
	out, _ := json.Marshal(n)
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
