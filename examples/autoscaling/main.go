// Autoscaling: close the loop between DS2 scaling decisions and live
// rescaling. An under-provisioned Q1-sliding runs on the live engine to
// profile per-task rates; DS2 turns the profile into a per-operator
// parallelism decision; the decision becomes a live rescale schedule —
// drain to a checkpoint epoch, repartition the window operator's
// key-groups, re-place with CAPS, resume — and the measured downtime of
// every applied decision is printed from the engine's trace events.
//
// Run with:
//
//	go run ./examples/autoscaling
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/ds2"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/telemetry"
)

const (
	recordsPerSource = 4000
	snapshotInterval = 250
	seed             = 11
)

func main() {
	if err := run(context.Background()); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	// Start under-provisioned: the window operator at a fraction of the
	// parallelism the target rate needs.
	stock, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		return err
	}
	small, err := stock.Graph.Rescale(map[dataflow.OperatorID]int{"map": 2, "slide-win": 2})
	if err != nil {
		return err
	}
	spec := nexmark.QuerySpec{Name: stock.Name, Graph: small, SourceRates: stock.SourceRates}
	pool, err := cluster.Homogeneous(4, 6, 2.0, 50e6, 500e6)
	if err != nil {
		return err
	}
	// Throttle each source task to its share of the query's target rate,
	// so the profile observes the operators under the load DS2 plans for.
	perTask := spec.SourceRates["src"] / float64(small.Operator("src").Parallelism)
	sourceRate := map[dataflow.OperatorID]float64{"src": perTask}

	// Phase 1 — profile: run the small topology live and collect per-task
	// observed rates and useful fractions.
	fmt.Println("phase 1: profiling the under-provisioned topology on the live engine")
	profile, err := profileRun(ctx, spec, pool, sourceRate)
	if err != nil {
		return err
	}
	obs := make(map[dataflow.TaskID]ds2.TaskRates, len(profile.Tasks))
	for id, st := range profile.Tasks {
		obs[id] = ds2.TaskRates{
			ObservedIn:     st.ObservedInRate,
			ObservedOut:    st.ObservedOutRate,
			UsefulFraction: st.UsefulFraction,
		}
	}
	m, err := ds2.MetricsFromObservation(small, obs)
	if err != nil {
		return err
	}

	// Phase 2 — decide: DS2 computes the parallelism the target rate needs.
	dec, err := ds2.Scale(small, m, spec.SourceRates, ds2.Options{MaxParallelism: 8, Headroom: 1.1})
	if err != nil {
		return err
	}
	fmt.Println("\nphase 2: DS2 decision")
	for _, op := range small.Operators() {
		to, ok := dec.Parallelism[op.ID]
		if !ok {
			to = op.Parallelism
		}
		marker := ""
		if to != op.Parallelism {
			marker = "  <- rescale"
		}
		fmt.Printf("  %-10s %d -> %d%s\n", op.ID, op.Parallelism, to, marker)
	}
	plans := controller.PlansFromDecision(dec, small, 2)
	if len(plans) == 0 {
		fmt.Println("\nDS2 is satisfied with the current parallelism; nothing to rescale.")
		return nil
	}

	// Phase 3 — apply live: the same job runs again and each decision is
	// applied in place at a checkpoint epoch, with CAPS re-placing the
	// rescaled graph. No restart, no lost records.
	fmt.Printf("\nphase 3: applying %d decision(s) live (drain -> repartition key-groups -> CAPS re-place -> resume)\n", len(plans))
	tel := telemetry.New()
	out, err := controller.RunRescale(ctx, spec, pool, placement.CAPS{}, controller.RescaleOptions{
		Seed:             seed,
		RecordsPerSource: recordsPerSource,
		SnapshotInterval: snapshotInterval,
		SourceRate:       sourceRate,
		Rescales:         plans,
		Telemetry:        tel,
	})
	if err != nil {
		return err
	}
	res := out.Result
	fmt.Printf("%4s  %-10s %8s %12s %14s\n", "epoch", "operator", "change", "downtime", "state moved")
	moved := map[string]float64{}
	for _, ev := range tel.Tracer().Events() {
		switch ev.Kind {
		case telemetry.EventRescaleStart:
			moved[ev.Op] = attrFloat(ev.Attrs["state_moved_bytes"])
		case telemetry.EventRescaleComplete:
			fmt.Printf("%4d  %-10s %4v->%-3v %10.1fms %12.0f B\n",
				ev.Epoch, ev.Op, ev.Attrs["from"], ev.Attrs["to"],
				attrFloat(ev.Attrs["downtime_ms"]), moved[ev.Op])
		}
	}
	fmt.Printf("\napplied %d rescale(s): total downtime %v, %d records reprocessed, %d lost, %d delivered\n",
		res.Rescales, res.RescaleDowntime.Round(time.Millisecond),
		res.RecordsReprocessed, res.LostRecords, res.SinkRecords)
	if res.LostRecords != 0 {
		return fmt.Errorf("live rescale lost %d records", res.LostRecords)
	}
	return nil
}

// attrFloat reads a numeric trace-event attribute regardless of whether the
// emitter stored it as an int, int64 or float64.
func attrFloat(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int64:
		return float64(n)
	case int:
		return float64(n)
	}
	return 0
}

// profileRun executes the spec once on the live engine and returns the job
// result whose per-task stats feed DS2.
func profileRun(ctx context.Context, spec nexmark.QuerySpec, pool *cluster.Cluster, sourceRate map[dataflow.OperatorID]float64) (*engine.JobResult, error) {
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	rates, err := dataflow.PropagateRates(spec.Graph, spec.SourceRates)
	if err != nil {
		return nil, err
	}
	u := costmodel.FromRates(spec.Graph, rates)
	plan, err := placement.CAPS{}.Place(ctx, phys, pool, u, seed)
	if err != nil {
		return nil, err
	}
	binding, err := nexmark.BindEngine(spec, seed)
	if err != nil {
		return nil, err
	}
	job, err := engine.NewJob(spec.Graph, plan, controller.EngineCluster(pool), binding.Factories, engine.JobOptions{
		RecordsPerSource: recordsPerSource,
		SourceRate:       sourceRate,
		PerRecordCPU:     binding.PerRecordCPU,
		Stateful:         binding.Stateful,
		SnapshotInterval: snapshotInterval,
	})
	if err != nil {
		return nil, err
	}
	return job.Run(ctx)
}
