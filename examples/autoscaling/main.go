// Autoscaling: drive the CAPSys controller (DS2 scaling + CAPS placement)
// through a variable workload and watch it converge, then compare against
// Flink's default placement under the same workload (the paper's §6.4).
//
// Run with:
//
//	go run ./examples/autoscaling
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
)

func main() {
	spec := nexmark.Q3Inf()
	pool, err := cluster.Homogeneous(8, 8, 4.0, 200e6, 1.25e9)
	if err != nil {
		log.Fatal(err)
	}
	// Start minimal: every operator at parallelism 1.
	initial := map[dataflow.OperatorID]int{}
	for _, op := range spec.Graph.Operators() {
		initial[op.ID] = 1
	}
	// The input rate alternates between 30% and 90% of cluster saturation.
	phases := []controller.Phase{
		{Ticks: 10, RateFactor: 0.3},
		{Ticks: 10, RateFactor: 0.9},
		{Ticks: 10, RateFactor: 0.3},
		{Ticks: 10, RateFactor: 0.9},
	}

	for _, strat := range []placement.Strategy{placement.CAPS{}, placement.FlinkDefault{}} {
		res, err := controller.RunTimeline(context.Background(), spec, pool, strat, phases, controller.TimelineOptions{
			InitialParallelism: initial,
			ActivationTicks:    2,
			MaxParallelism:     16,
			Seed:               11,
			SimConfig:          simulator.DefaultConfig(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- placement strategy: %s\n", strat.Name())
		fmt.Printf("%4s %8s %10s %6s %6s  %s\n", "tick", "target", "throughput", "tasks", "action", "utilization bar")
		for _, tk := range res.Ticks {
			action := ""
			if tk.ScalingAction {
				action = "scale"
			}
			bar := strings.Repeat("#", int(20*tk.Throughput/tk.TargetRate+0.5))
			fmt.Printf("%4d %8.0f %10.0f %6d %6s  %s\n",
				tk.Tick, tk.TargetRate, tk.Throughput, tk.TotalTasks, action, bar)
		}
		atTarget := 0
		for _, tk := range res.Ticks {
			if tk.Throughput >= 0.97*tk.TargetRate {
				atTarget++
			}
		}
		fmt.Printf("scaling actions: %d; ticks at target: %d/%d\n\n",
			res.ScalingActions, atTarget, len(res.Ticks))
	}
}
