module capsys

go 1.22
