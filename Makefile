GO ?= go

.PHONY: build test test-dist race bench bench-engine bench-paper cover lint verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-dist runs the distributed-runtime batteries: the in-process network
# transport and coordinator tests, then the multi-process caplive battery
# (real worker OS processes over loopback TCP, including SIGKILL recovery).
test-dist:
	$(GO) test -timeout 5m -run 'TestWorkerRun|TestPrepareWorkerAttempt|TestDist' ./internal/engine ./internal/controller
	$(GO) test -timeout 5m -run 'TestProcessCluster' ./cmd/caplive

race:
	$(GO) test -race ./...

# bench runs the CAPS search benchmarks (incremental vs scratch evaluation,
# cold vs warm start) and rewrites the committed BENCH_caps.json baseline
# with per-variant effort counters plus the derived ratios.
bench:
	BENCH_CAPS_OUT=$(CURDIR)/BENCH_caps.json $(GO) test -run '^$$' -bench 'BenchmarkSearch' -benchmem ./internal/caps

# bench-engine runs the data-plane throughput suite (linear chain fused and
# unfused, fan-out, join, and the nexmark Q3-inf shape, each across all
# transports) and rewrites the committed BENCH_engine.json baseline,
# including the batched-over-unary and fused-over-unfused ratios.
bench-engine:
	BENCH_ENGINE_OUT=$(CURDIR)/BENCH_engine.json $(GO) test -run '^$$' -bench 'BenchmarkEngineThroughput' -benchmem ./internal/engine

# bench-paper runs the original end-to-end paper benchmarks at the repo root.
bench-paper:
	$(GO) test -bench=. -benchmem .

# cover writes an aggregate coverage profile and prints the per-function
# summary; open with `go tool cover -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# lint runs capslint, the project's own static analysis suite — per-package
# checks (determinism, lock pairing, channel hygiene, goroutine lifecycle,
# metric naming) plus the whole-program analyzers (lock-order cycles across
# the call graph, sync/atomic access discipline, wire-frame protocol
# exhaustiveness) — in strict mode, which additionally reports stale
# //capslint:allow comments. Built on the standard library only, so it
# works from a clean checkout.
lint:
	$(GO) run ./cmd/capslint -strict ./...

# verify is the full pre-merge gate: vet, capslint, build everything,
# race-check the search, engine and controller packages (the
# concurrency-heavy cores, including the heartbeat-piggyback metric
# aggregation path), run the entire test suite under the race detector
# (benchmarks skip themselves under -race; see bench_race_on_test.go), and
# finish with the multi-process distributed battery.
verify:
	$(GO) vet ./...
	$(GO) run ./cmd/capslint -strict ./...
	$(GO) build ./...
	$(GO) test -race ./internal/caps/... ./internal/engine/... ./internal/controller/...
	$(GO) test -race ./...
	$(GO) test -timeout 5m -run 'TestProcessCluster' ./cmd/caplive
