GO ?= go

.PHONY: build test race bench cover verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# cover writes an aggregate coverage profile and prints the per-function
# summary; open with `go tool cover -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# verify is the full pre-merge gate: vet, build everything, and run the
# entire test suite under the race detector (benchmarks skip themselves
# under -race; see bench_race_on_test.go).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
