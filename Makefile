GO ?= go

.PHONY: build test race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# verify is the full pre-merge gate: vet, build everything, and run the
# entire test suite under the race detector (benchmarks skip themselves
# under -race; see bench_race_on_test.go).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
