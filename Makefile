GO ?= go

.PHONY: build test test-dist test-rescale race bench bench-engine bench-paper cover lint verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-dist runs the distributed-runtime batteries: the in-process network
# transport and coordinator tests, then the multi-process caplive battery
# (real worker OS processes over loopback TCP, including SIGKILL recovery).
test-dist:
	$(GO) test -timeout 5m -run 'TestWorkerRun|TestPrepareWorkerAttempt|TestDist' ./internal/engine ./internal/controller
	$(GO) test -timeout 5m -run 'TestProcessCluster' ./cmd/caplive

# test-rescale runs the live-rescaling battery race-checked end to end: the
# key-group partitioning invariants (incl. the fuzz seed corpus) in
# statebackend, the engine's drain→repartition→resume protocol (identity,
# validation, fault-interleaving, all transports), the in-process and
# distributed controller paths, and the fused/unfused × transport study.
test-rescale:
	$(GO) test -race -timeout 5m ./internal/statebackend
	$(GO) test -race -timeout 5m -run 'Rescale|SplitOpStates|RouteMatchesStateAssignment' ./internal/engine ./internal/controller ./internal/experiments

race:
	$(GO) test -race ./...

# bench runs the CAPS search benchmarks (incremental vs scratch evaluation,
# cold vs warm start) and rewrites the committed BENCH_caps.json baseline
# with per-variant effort counters plus the derived ratios.
bench:
	BENCH_CAPS_OUT=$(CURDIR)/BENCH_caps.json $(GO) test -run '^$$' -bench 'BenchmarkSearch' -benchmem ./internal/caps

# bench-engine runs the data-plane throughput suite (linear chain fused and
# unfused, fan-out, join, the nexmark Q3-inf shape, and a keyed-window job
# with a live mid-run rescale, each across all transports) and rewrites the
# committed BENCH_engine.json baseline, including the batched-over-unary and
# fused-over-unfused ratios and the rescale rows' measured downtime.
bench-engine:
	BENCH_ENGINE_OUT=$(CURDIR)/BENCH_engine.json $(GO) test -run '^$$' -bench 'BenchmarkEngineThroughput' -benchmem ./internal/engine

# bench-paper runs the original end-to-end paper benchmarks at the repo root.
bench-paper:
	$(GO) test -bench=. -benchmem .

# cover writes an aggregate coverage profile and prints the per-function
# summary; open with `go tool cover -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# lint runs capslint, the project's own static analysis suite — per-package
# checks (determinism, lock pairing, channel hygiene, goroutine lifecycle,
# metric naming) plus the whole-program analyzers (lock-order cycles across
# the call graph, sync/atomic access discipline, wire-frame protocol
# exhaustiveness) — in strict mode, which additionally reports stale
# //capslint:allow comments. Built on the standard library only, so it
# works from a clean checkout.
lint:
	$(GO) run ./cmd/capslint -strict ./...

# verify is the full pre-merge gate: vet, capslint, build everything,
# race-check the search, engine, controller and state-backend packages (the
# concurrency-heavy cores, including the heartbeat-piggyback metric
# aggregation path and the key-group repartitioning under rescale), run the
# entire test suite under the race detector (benchmarks skip themselves
# under -race; see bench_race_on_test.go), and finish with the live-rescale
# and multi-process distributed batteries.
verify:
	$(GO) vet ./...
	$(GO) run ./cmd/capslint -strict ./...
	$(GO) build ./...
	$(GO) test -race ./internal/caps/... ./internal/engine/... ./internal/controller/... ./internal/statebackend/...
	$(GO) test -race ./...
	$(MAKE) test-rescale
	$(GO) test -timeout 5m -run 'TestProcessCluster' ./cmd/caplive
