GO ?= go

.PHONY: build test race bench bench-paper cover verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the CAPS search benchmarks (incremental vs scratch evaluation,
# cold vs warm start) and rewrites the committed BENCH_caps.json baseline
# with per-variant effort counters plus the derived ratios.
bench:
	BENCH_CAPS_OUT=$(CURDIR)/BENCH_caps.json $(GO) test -run '^$$' -bench 'BenchmarkSearch' -benchmem ./internal/caps

# bench-paper runs the original end-to-end paper benchmarks at the repo root.
bench-paper:
	$(GO) test -bench=. -benchmem .

# cover writes an aggregate coverage profile and prints the per-function
# summary; open with `go tool cover -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# verify is the full pre-merge gate: vet, build everything, race-check the
# search and engine packages (the concurrency-heavy cores), and run the
# entire test suite under the race detector (benchmarks skip themselves
# under -race; see bench_race_on_test.go).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/caps/... ./internal/engine/...
	$(GO) test -race ./...
