package caps_test

import (
	"context"
	"fmt"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

// ExampleSearch places a tiny two-operator pipeline on two workers: CAPS
// balances the heavy window tasks instead of packing them.
func ExampleSearch() {
	g := dataflow.NewLogicalGraph()
	_ = g.AddOperator(dataflow.Operator{
		ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
		Cost: dataflow.UnitCost{CPU: 1e-5, Net: 100},
	})
	_ = g.AddOperator(dataflow.Operator{
		ID: "win", Kind: dataflow.KindWindow, Parallelism: 2, Selectivity: 0.5,
		Cost: dataflow.UnitCost{CPU: 8e-4, IO: 2000, Net: 50},
	})
	_ = g.AddEdge(dataflow.Edge{From: "src", To: "win"})
	phys, _ := dataflow.Expand(g)
	c, _ := cluster.Homogeneous(2, 2, 2.0, 100e6, 1e9)
	rates, _ := dataflow.PropagateRates(g, map[dataflow.OperatorID]float64{"src": 1000})
	usage := costmodel.FromRates(g, rates)

	res, _ := caps.Search(context.Background(), phys, c, usage, caps.Options{
		Alpha: caps.Unbounded,
		Mode:  caps.Exhaustive,
	})
	fmt.Printf("feasible: %v\n", res.Feasible)
	fmt.Printf("window tasks per worker: %d and %d\n",
		res.Plan.OpCountsOn(0)["win"], res.Plan.OpCountsOn(1)["win"])
	// Output:
	// feasible: true
	// window tasks per worker: 1 and 1
}

// ExampleAutoTune finds the tightest feasible pruning thresholds without
// user input.
func ExampleAutoTune() {
	g := dataflow.NewLogicalGraph()
	_ = g.AddOperator(dataflow.Operator{
		ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
		Cost: dataflow.UnitCost{CPU: 1e-5, Net: 100},
	})
	_ = g.AddOperator(dataflow.Operator{
		ID: "win", Kind: dataflow.KindWindow, Parallelism: 4, Selectivity: 0.5,
		Cost: dataflow.UnitCost{CPU: 8e-4, IO: 2000, Net: 50},
	})
	_ = g.AddEdge(dataflow.Edge{From: "src", To: "win"})
	phys, _ := dataflow.Expand(g)
	c, _ := cluster.Homogeneous(3, 2, 2.0, 100e6, 1e9)
	rates, _ := dataflow.PropagateRates(g, map[dataflow.OperatorID]float64{"src": 1000})
	usage := costmodel.FromRates(g, rates)

	tuned, _ := caps.AutoTune(context.Background(), phys, c, usage, caps.DefaultAutoTuneOptions())
	sr, _ := caps.Search(context.Background(), phys, c, usage, caps.Options{
		Alpha: tuned.Alpha, Mode: caps.FirstFeasible,
	})
	fmt.Printf("tuned thresholds admit a plan: %v\n", sr.Feasible)
	// Output:
	// tuned thresholds admit a plan: true
}
