package caps

import (
	"context"
	"testing"
	"time"

	"capsys/internal/costmodel"
)

func TestAutoTuneFindsFeasibleVector(t *testing.T) {
	p, c, u := paperExample(t)
	res, err := AutoTune(context.Background(), p, c, u, DefaultAutoTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes == 0 {
		t.Error("no probes recorded")
	}
	// The result must actually be feasible.
	sr, err := Search(context.Background(), p, c, u, Options{Alpha: res.Alpha, Mode: FirstFeasible})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Feasible {
		t.Errorf("auto-tuned alpha %v is not feasible", res.Alpha)
	}
	// Phase-1 minima are individually feasible and no larger than the joint
	// vector (phase 2 only relaxes).
	if res.PerDimension.CPU > res.Alpha.CPU+1e-12 ||
		res.PerDimension.IO > res.Alpha.IO+1e-12 ||
		res.PerDimension.Net > res.Alpha.Net+1e-12 {
		t.Errorf("joint alpha %v tighter than per-dimension minima %v", res.Alpha, res.PerDimension)
	}
	for _, probe := range []costmodel.Vector{
		{CPU: res.PerDimension.CPU, IO: Unbounded.IO, Net: Unbounded.Net},
		{CPU: Unbounded.CPU, IO: res.PerDimension.IO, Net: Unbounded.Net},
		{CPU: Unbounded.CPU, IO: Unbounded.IO, Net: res.PerDimension.Net},
	} {
		r, err := Search(context.Background(), p, c, u, Options{Alpha: probe, Mode: FirstFeasible})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Feasible {
			t.Errorf("per-dimension alpha %v not feasible", probe)
		}
	}
}

// The tuned alpha should be near-minimal: tightening the vector by more than
// one relaxation step in every dimension must be infeasible.
func TestAutoTuneMinimality(t *testing.T) {
	p, c, u := paperExample(t)
	opts := DefaultAutoTuneOptions()
	res, err := AutoTune(context.Background(), p, c, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	tighter := costmodel.Vector{
		CPU: res.Alpha.CPU / (opts.RelaxPhase2 * opts.RelaxPhase2),
		IO:  res.Alpha.IO / (opts.RelaxPhase2 * opts.RelaxPhase2),
		Net: res.Alpha.Net / (opts.RelaxPhase2 * opts.RelaxPhase2),
	}
	r, err := Search(context.Background(), p, c, u, Options{Alpha: tighter, Mode: FirstFeasible})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible && res.Alpha != res.PerDimension {
		// Only meaningful when phase 2 actually relaxed; if the phase-1
		// vector was already jointly feasible, tighter vectors can be
		// feasible too (phase 1 stops at per-dimension minima, which need
		// not be jointly tight).
		t.Errorf("alpha two steps tighter than tuned %v is still feasible", res.Alpha)
	}
}

func TestAutoTuneOptionValidation(t *testing.T) {
	p, c, u := paperExample(t)
	bad := DefaultAutoTuneOptions()
	bad.RelaxPhase1 = 1.0
	if _, err := AutoTune(context.Background(), p, c, u, bad); err == nil {
		t.Error("relax factor 1.0 accepted")
	}
	bad = DefaultAutoTuneOptions()
	bad.InitialAlpha = 0
	if _, err := AutoTune(context.Background(), p, c, u, bad); err == nil {
		t.Error("zero initial alpha accepted")
	}
}

func TestAutoTuneTimeout(t *testing.T) {
	p, c, u := paperExample(t)
	opts := DefaultAutoTuneOptions()
	opts.Timeout = time.Nanosecond
	_, err := AutoTune(context.Background(), p, c, u, opts)
	if err != ErrAutoTuneTimeout {
		t.Errorf("err = %v, want ErrAutoTuneTimeout", err)
	}
}
