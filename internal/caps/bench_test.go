package caps

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"testing"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
)

// The search benchmarks double as the recorded performance baseline: running
// them with BENCH_CAPS_OUT=<path> (see `make bench`) rewrites BENCH_caps.json
// with per-variant effort counters and wall-clock, plus the derived
// scratch-vs-incremental and cold-vs-warm ratios the incremental-evaluation
// work is judged by.

type benchRecord struct {
	Query        string  `json:"query"`
	Tasks        int     `json:"tasks"`
	Workers      int     `json:"workers"`
	Mode         string  `json:"mode"`
	Variant      string  `json:"variant"`
	NsPerOp      float64 `json:"ns_per_op"`
	Nodes        int64   `json:"nodes"`
	CostEvals    int64   `json:"cost_evals"`
	MemoPrunes   int64   `json:"memo_prunes"`
	BudgetPrunes int64   `json:"budget_prunes"`
	Plans        int64   `json:"plans"`
}

var (
	benchMu      sync.Mutex
	benchResults = map[string]benchRecord{}
)

func recordBench(name string, rec benchRecord) {
	benchMu.Lock()
	benchResults[name] = rec
	benchMu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_CAPS_OUT"); path != "" && len(benchResults) > 0 && code == 0 {
		if err := writeBenchJSON(path); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeBenchJSON(path string) error {
	names := make([]string, 0, len(benchResults))
	for n := range benchResults {
		names = append(names, n)
	}
	sort.Strings(names)
	type out struct {
		Note    string             `json:"note"`
		Records []benchRecord      `json:"records"`
		Summary map[string]float64 `json:"summary"`
	}
	o := out{
		Note:    "go test -bench BenchmarkSearch ./internal/caps (see make bench); counters are per-search, ns_per_op from the benchmark timer",
		Summary: map[string]float64{},
	}
	for _, n := range names {
		o.Records = append(o.Records, benchResults[n])
	}
	ratio := func(dst, numName, denName string) {
		num, okN := benchResults[numName]
		den, okD := benchResults[denName]
		if okN && okD && den.CostEvals > 0 {
			o.Summary[dst+"_cost_evals"] = float64(num.CostEvals) / float64(den.CostEvals)
		}
		if okN && okD && den.NsPerOp > 0 {
			o.Summary[dst+"_time"] = num.NsPerOp / den.NsPerOp
		}
		if okN && okD && den.Nodes > 0 {
			o.Summary[dst+"_nodes"] = float64(num.Nodes) / float64(den.Nodes)
		}
	}
	// Headline ratios: scratch over incremental (>= 2 expected: the
	// incremental evaluator does that many times less cost-model work on the
	// fig7-scale exhaustive search), and cold over warm (> 1 expected: a
	// warm-started online decision revisits a fraction of the nodes).
	ratio("q3inf_x2_exhaustive_scratch_over_incremental", "q3inf-x2/exhaustive/scratch", "q3inf-x2/exhaustive/incremental")
	ratio("q3inf_exhaustive_scratch_over_incremental", "q3inf/exhaustive/scratch", "q3inf/exhaustive/incremental")
	ratio("q3inf_first_feasible_cold_over_warm", "q3inf/first-feasible/cold", "q3inf/first-feasible/warm")
	ratio("q2join64_first_feasible_cold_over_warm", "q2join-64/first-feasible/cold", "q2join-64/first-feasible/warm")
	buf, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

type benchCase struct {
	query string
	phys  *dataflow.PhysicalGraph
	c     *cluster.Cluster
	u     *costmodel.Usage
	alpha costmodel.Vector
}

func q3infCase(b *testing.B) benchCase {
	b.Helper()
	spec := nexmark.Q3Inf()
	c, err := cluster.Homogeneous(8, 4, 4.0, 200e6, 1.25e9)
	if err != nil {
		b.Fatal(err)
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		b.Fatal(err)
	}
	rates, err := dataflow.PropagateRates(spec.Graph, spec.SourceRates)
	if err != nil {
		b.Fatal(err)
	}
	return benchCase{
		query: "q3inf", phys: phys, c: c, u: costmodel.FromRates(spec.Graph, rates),
		alpha: costmodel.Vector{CPU: 0.15, IO: 0.25, Net: 0.8},
	}
}

// q3infScaledCase doubles Q3Inf (32 tasks) on a 32-worker cluster: the
// fig7-style exhaustive search at a size where the per-node evaluation cost
// dominates, which is where the incremental evaluator's advantage over
// from-scratch recomputation shows in wall-clock, not just counters.
func q3infScaledCase(b *testing.B) benchCase {
	b.Helper()
	spec := nexmark.Q3Inf().Scaled(2)
	per := make(map[dataflow.OperatorID]int)
	for _, op := range spec.Graph.Operators() {
		per[op.ID] = op.Parallelism * 2
	}
	g, err := spec.Graph.Rescale(per)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cluster.Homogeneous(32, 4, 4.0, 200e6, 1.25e9)
	if err != nil {
		b.Fatal(err)
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		b.Fatal(err)
	}
	rates, err := dataflow.PropagateRates(g, spec.SourceRates)
	if err != nil {
		b.Fatal(err)
	}
	return benchCase{
		query: "q3inf-x2", phys: phys, c: c, u: costmodel.FromRates(g, rates),
		alpha: costmodel.Vector{CPU: 0.15, IO: 0.25, Net: 0.8},
	}
}

// q2joinCase scales Q2-join to the given task count on a tasks==slots
// cluster, mirroring the Figure 10a growth series.
func q2joinCase(b *testing.B, tasks int) benchCase {
	b.Helper()
	base := nexmark.Q2Join()
	workers := tasks / 8
	if workers < 2 {
		workers = 2
	}
	slots := (tasks + workers - 1) / workers
	c, err := cluster.Homogeneous(workers, slots, 4.0*float64(slots)/4, 200e6*float64(slots)/4, 1.25e9)
	if err != nil {
		b.Fatal(err)
	}
	// Scale parallelism proportionally (rounding drift absorbed by the
	// largest operator) and source rates by the same factor, like the
	// Figure 10a experiment does — an even split would put the thresholds
	// out of reach.
	factor := float64(tasks) / float64(base.Graph.TotalTasks())
	spec := base.Scaled(factor)
	ops := spec.Graph.Operators()
	per := make(map[dataflow.OperatorID]int, len(ops))
	assigned := 0
	largest := ops[0]
	for _, op := range ops {
		p := int(math.Round(float64(op.Parallelism) * factor))
		if p < 1 {
			p = 1
		}
		per[op.ID] = p
		assigned += p
		if op.Parallelism > largest.Parallelism {
			largest = op
		}
	}
	per[largest.ID] += tasks - assigned
	g, err := spec.Graph.Rescale(per)
	if err != nil {
		b.Fatal(err)
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		b.Fatal(err)
	}
	rates, err := dataflow.PropagateRates(g, spec.SourceRates)
	if err != nil {
		b.Fatal(err)
	}
	return benchCase{
		query: fmt.Sprintf("q2join-%d", tasks), phys: phys, c: c, u: costmodel.FromRates(g, rates),
		alpha: costmodel.Vector{CPU: 0.15, IO: 0.25, Net: 0.8},
	}
}

func runSearchBench(b *testing.B, bc benchCase, name string, opts Options) {
	b.Helper()
	opts.Alpha = bc.alpha
	opts.Reorder = true
	var last *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Search(context.Background(), bc.phys, bc.c, bc.u, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("benchmark search infeasible")
		}
		last = res
	}
	b.StopTimer()
	mode := "exhaustive"
	if opts.Mode == FirstFeasible {
		mode = "first-feasible"
	}
	b.ReportMetric(float64(last.Stats.Nodes), "nodes/op")
	b.ReportMetric(float64(last.Stats.CostEvals), "evals/op")
	recordBench(name, benchRecord{
		Query:        bc.query,
		Tasks:        bc.phys.NumTasks(),
		Workers:      bc.c.NumWorkers(),
		Mode:         mode,
		Variant:      name[len(bc.query)+len(mode)+2:],
		NsPerOp:      float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Nodes:        last.Stats.Nodes,
		CostEvals:    last.Stats.CostEvals,
		MemoPrunes:   last.Stats.MemoPrunes,
		BudgetPrunes: last.Stats.BudgetPrunes,
		Plans:        last.Stats.Plans,
	})
}

// warmPlanFor runs one untimed cold search to obtain the seed plan for the
// warm variants (the controller's steady-state situation: the previous
// tick's plan is still feasible).
func warmPlanFor(b *testing.B, bc benchCase, mode Mode) *dataflow.Plan {
	b.Helper()
	res, err := Search(context.Background(), bc.phys, bc.c, bc.u, Options{
		Alpha: bc.alpha, Mode: mode, Reorder: true,
	})
	if err != nil || !res.Feasible {
		b.Fatalf("warm seed search failed: %v", err)
	}
	return res.Plan
}

func BenchmarkSearch(b *testing.B) {
	b.Run("q3inf/exhaustive/scratch", func(b *testing.B) {
		bc := q3infCase(b)
		runSearchBench(b, bc, "q3inf/exhaustive/scratch", Options{Mode: Exhaustive, ScratchEval: true})
	})
	b.Run("q3inf/exhaustive/no-memo", func(b *testing.B) {
		bc := q3infCase(b)
		runSearchBench(b, bc, "q3inf/exhaustive/no-memo", Options{Mode: Exhaustive, DisableMemo: true})
	})
	b.Run("q3inf/exhaustive/incremental", func(b *testing.B) {
		bc := q3infCase(b)
		runSearchBench(b, bc, "q3inf/exhaustive/incremental", Options{Mode: Exhaustive})
	})
	b.Run("q3inf-x2/exhaustive/scratch", func(b *testing.B) {
		bc := q3infScaledCase(b)
		runSearchBench(b, bc, "q3inf-x2/exhaustive/scratch", Options{Mode: Exhaustive, ScratchEval: true})
	})
	b.Run("q3inf-x2/exhaustive/incremental", func(b *testing.B) {
		bc := q3infScaledCase(b)
		runSearchBench(b, bc, "q3inf-x2/exhaustive/incremental", Options{Mode: Exhaustive})
	})
	b.Run("q3inf/first-feasible/cold", func(b *testing.B) {
		bc := q3infCase(b)
		runSearchBench(b, bc, "q3inf/first-feasible/cold", Options{Mode: FirstFeasible})
	})
	b.Run("q3inf/first-feasible/warm", func(b *testing.B) {
		bc := q3infCase(b)
		warm := warmPlanFor(b, bc, FirstFeasible)
		runSearchBench(b, bc, "q3inf/first-feasible/warm", Options{Mode: FirstFeasible, Warm: warm})
	})
	for _, tasks := range []int{32, 64} {
		tasks := tasks
		name := fmt.Sprintf("q2join-%d", tasks)
		b.Run(name+"/first-feasible/cold", func(b *testing.B) {
			bc := q2joinCase(b, tasks)
			runSearchBench(b, bc, name+"/first-feasible/cold", Options{Mode: FirstFeasible})
		})
		b.Run(name+"/first-feasible/warm", func(b *testing.B) {
			bc := q2joinCase(b, tasks)
			warm := warmPlanFor(b, bc, FirstFeasible)
			runSearchBench(b, bc, name+"/first-feasible/warm", Options{Mode: FirstFeasible, Warm: warm})
		})
		b.Run(name+"/first-feasible/scratch", func(b *testing.B) {
			bc := q2joinCase(b, tasks)
			runSearchBench(b, bc, name+"/first-feasible/scratch", Options{Mode: FirstFeasible, ScratchEval: true})
		})
	}
}
