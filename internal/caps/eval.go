package caps

import (
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

// This file holds the incremental evaluation machinery of the search: the
// mutable DFS state with its O(1)-per-step bookkeeping, the from-scratch
// reference evaluator used by the ScratchEval ablation mode (and by the
// equivalence property tests), and the warm-start seed construction.
//
// The seed implementation recomputed three quantities with per-node loops
// over the whole cluster: the remaining capacity of workers after the current
// one (O(workers) per node), the network interactions with every worker of
// each adjacent layer (O(workers) per adjacent layer), and the bottleneck
// load at every leaf (O(workers) per leaf). All three are now maintained
// incrementally:
//
//   - freeTotal tracks the cluster's total free slots, so the capacity lower
//     bound threads down the inner search as a running value instead of a
//     per-node suffix sum.
//   - active[layer] lists only the workers that actually hold tasks of a
//     layer, so network deltas touch O(occupied) workers, not O(workers).
//   - max tracks the element-wise bottleneck load. Loads grow monotonically
//     as tasks are placed, so the running maximum is exact along the DFS
//     path; each place saves the previous maximum and its undo restores it,
//     making leaf cost evaluation O(1) instead of O(workers).

// state is the mutable per-goroutine DFS state.
type state struct {
	counts [][]int // [layer][worker] task counts
	free   []int   // remaining slots per worker
	loads  []costmodel.Vector
	placed []int // per layer: tasks placed so far (== par when layer done)

	// freeTotal is the sum of free, maintained on place/undo.
	freeTotal int
	// max is the running element-wise maximum of loads (exact, because loads
	// only grow as tasks are added; see place).
	max costmodel.Vector
	// active[layer] holds the workers with counts[layer][w] > 0 in placement
	// order. The DFS places and unplaces in strict LIFO order within a layer,
	// so maintenance is push/pop at the end.
	active [][]int

	// undoW/undoPrev form the shared LIFO undo log of (worker, previous
	// load) snapshots. place pushes the touched workers, unplace pops back
	// to the recorded offset; the buffers are reused across the whole
	// search, so placements allocate nothing after warm-up.
	undoW    []int
	undoPrev []costmodel.Vector

	// keyBufs[layer] and classRep are scratch buffers for memoKey, reused
	// across boundary visits so key construction allocates nothing.
	keyBufs  [][]byte
	classRep []int
}

func newState(numLayers, numWorkers, slots int) *state {
	st := &state{
		counts: make([][]int, numLayers),
		free:   make([]int, numWorkers),
		loads:  make([]costmodel.Vector, numWorkers),
		placed: make([]int, numLayers),
		active: make([][]int, numLayers),
	}
	for i := range st.counts {
		st.counts[i] = make([]int, numWorkers)
	}
	for i := range st.free {
		st.free[i] = slots
	}
	st.freeTotal = numWorkers * slots
	return st
}

func (st *state) clone() *state {
	c := &state{
		counts:    make([][]int, len(st.counts)),
		free:      append([]int(nil), st.free...),
		loads:     append([]costmodel.Vector(nil), st.loads...),
		placed:    append([]int(nil), st.placed...),
		freeTotal: st.freeTotal,
		max:       st.max,
		active:    make([][]int, len(st.active)),
	}
	for i := range st.counts {
		c.counts[i] = append([]int(nil), st.counts[i]...)
	}
	for i := range st.active {
		c.active[i] = append([]int(nil), st.active[i]...)
	}
	// The undo log and memo-key buffers are deliberately not copied: pending
	// undo entries belong to the cloner's own placements, which the clone
	// never unwinds (parallel consumers only search below the shipped
	// prefix), and the key buffers are pure scratch space.
	return c
}

// recomputeLoads rebuilds every worker's load vector from the counts matrix
// alone, charging — exactly like the incremental path — CPU and state access
// per placed task and network per cross-worker pair of placed adjacent tasks.
// It is the reference evaluator: the ScratchEval mode calls it on every
// placement step, and the property tests compare its output against the
// incrementally maintained loads after arbitrary place/undo sequences.
func (s *searcher) recomputeLoads(st *state, out []costmodel.Vector) {
	for i := range out {
		out[i] = costmodel.Vector{}
	}
	for l := range s.ops {
		op := &s.ops[l]
		for w := 0; w < s.numWorkers; w++ {
			cnt := st.counts[l][w]
			if cnt == 0 {
				continue
			}
			fc := float64(cnt)
			out[w].CPU += op.usage.CPU * fc
			out[w].IO += op.usage.IO * fc
		}
		if op.usage.Net == 0 || op.outDeg == 0 {
			continue
		}
		perLink := op.usage.Net / float64(op.outDeg)
		for w := 0; w < s.numWorkers; w++ {
			cnt := st.counts[l][w]
			if cnt == 0 {
				continue
			}
			remote := 0
			for _, dl := range op.downstream {
				remote += st.placed[dl] - st.counts[dl][w]
			}
			if remote > 0 {
				out[w].Net += perLink * float64(cnt) * float64(remote)
			}
		}
	}
}

// warmCounts converts a previous placement plan into per-layer/per-worker
// count hints aligned with the current exploration order. Operators absent
// from the current graph and workers outside the current cluster are dropped,
// so a plan from a rescaled graph or a shrunken cluster degrades to a partial
// hint instead of failing. Returns nil when nothing maps.
func warmCounts(plan *dataflow.Plan, ops []opInfo, numWorkers int) [][]int {
	if plan == nil {
		return nil
	}
	wm := make([][]int, len(ops))
	for i := range wm {
		wm[i] = make([]int, numWorkers)
	}
	any := false
	plan.Each(func(t dataflow.TaskID, w int) {
		if w < 0 || w >= numWorkers {
			return
		}
		// Linear scan: the operator list is small and this avoids building a
		// lookup map on every warm-started search.
		for l := range ops {
			if ops[l].id == t.Op {
				wm[l][w]++
				any = true
				break
			}
		}
	})
	if !any {
		return nil
	}
	return wm
}
