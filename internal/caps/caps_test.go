package caps

import (
	"context"
	"math"
	"testing"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

// paperExample builds the example of paper Figure 4: S -> T -> I -> K with
// parallelisms 2, 2, 4, 1 on 3 homogeneous workers with 3 slots each
// (9 compute slots total).
func paperExample(t testing.TB) (*dataflow.PhysicalGraph, *cluster.Cluster, *costmodel.Usage) {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	ops := []dataflow.Operator{
		{ID: "S", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 1e-5, Net: 200}},
		{ID: "T", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 5e-5, Net: 200}},
		{ID: "I", Kind: dataflow.KindInference, Parallelism: 4, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 8e-4, Net: 50}},
		{ID: "K", Kind: dataflow.KindSink, Parallelism: 1, Selectivity: 0,
			Cost: dataflow.UnitCost{CPU: 1e-6}},
	}
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{{From: "S", To: "T"}, {From: "T", To: "I"}, {From: "I", To: "K"}} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	p, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Homogeneous(3, 3, 4, 100e6, 1.25e8)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := dataflow.PropagateRates(g, map[dataflow.OperatorID]float64{"S": 1000})
	if err != nil {
		t.Fatal(err)
	}
	return p, c, costmodel.FromRates(g, rates)
}

func TestSearchExhaustiveFindsValidPlan(t *testing.T) {
	p, c, u := paperExample(t)
	res, err := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Plan == nil {
		t.Fatal("exhaustive unbounded search found no plan")
	}
	if err := res.Plan.Validate(p, c.NumWorkers(), 3); err != nil {
		t.Errorf("returned plan invalid: %v", err)
	}
	if res.Stats.Plans == 0 || res.Stats.Nodes == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
	if len(res.Front) == 0 {
		t.Error("exhaustive search returned empty Pareto front")
	}
	for _, fe := range res.Front {
		if err := fe.Plan.Validate(p, c.NumWorkers(), 3); err != nil {
			t.Errorf("front plan invalid: %v", err)
		}
	}
}

// The returned best plan must match a brute-force scan over all enumerated
// plans: minimal scalar cost, and Pareto-optimal.
func TestSearchAgreesWithEnumeration(t *testing.T) {
	p, c, u := paperExample(t)
	all, err := EnumeratePlans(context.Background(), p, c, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no plans enumerated")
	}
	bestScalar := math.Inf(1)
	for _, fe := range all {
		if s := costmodel.ScalarCost(fe.Cost); s < bestScalar {
			bestScalar = s
		}
	}
	res, err := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if got := costmodel.ScalarCost(res.Cost); math.Abs(got-bestScalar) > 1e-9 {
		t.Errorf("search best scalar cost = %v, brute force = %v", got, bestScalar)
	}
	// The best plan must not be dominated by any enumerated plan.
	for _, fe := range all {
		if fe.Cost.Dominates(res.Cost) {
			t.Errorf("best plan %v dominated by %v", res.Cost, fe.Cost)
		}
	}
	// Enumeration count must equal the search's discovered plan count.
	if int64(len(all)) != res.Stats.Plans {
		t.Errorf("enumeration found %d plans, search counted %d", len(all), res.Stats.Plans)
	}
}

func TestSearchParallelMatchesSequential(t *testing.T) {
	p, c, u := paperExample(t)
	seq, err := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Plans != par.Stats.Plans {
		t.Errorf("plan counts differ: seq=%d par=%d", seq.Stats.Plans, par.Stats.Plans)
	}
	if math.Abs(costmodel.ScalarCost(seq.Cost)-costmodel.ScalarCost(par.Cost)) > 1e-9 {
		t.Errorf("best costs differ: seq=%v par=%v", seq.Cost, par.Cost)
	}
	if !seq.Plan.Equal(par.Plan) {
		t.Errorf("best plans differ (tie-break should be deterministic):\nseq:\n%spar:\n%s", seq.Plan, par.Plan)
	}
}

func TestThresholdPruningShrinksSearch(t *testing.T) {
	p, c, u := paperExample(t)
	loose, err := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Search(context.Background(), p, c, u, Options{
		Alpha: costmodel.Vector{CPU: 0.1, IO: 1, Net: 1}, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats.Plans >= loose.Stats.Plans {
		t.Errorf("tight threshold did not reduce plans: %d >= %d", tight.Stats.Plans, loose.Stats.Plans)
	}
	if tight.Stats.Nodes >= loose.Stats.Nodes {
		t.Errorf("tight threshold did not reduce nodes: %d >= %d", tight.Stats.Nodes, loose.Stats.Nodes)
	}
	// Every plan kept under the tight threshold must satisfy it.
	if tight.Feasible {
		if tight.Cost.CPU > 0.1+1e-6 {
			t.Errorf("plan violates threshold: %v", tight.Cost)
		}
	}
}

// All plans that satisfy the threshold in brute force must still be
// discoverable under pruning (pruning is safe: it never eliminates a
// satisfying plan).
func TestPruningSafety(t *testing.T) {
	p, c, u := paperExample(t)
	alpha := costmodel.Vector{CPU: 0.2, IO: 1, Net: 0.8}
	all, err := EnumeratePlans(context.Background(), p, c, u)
	if err != nil {
		t.Fatal(err)
	}
	wantCount := int64(0)
	for _, fe := range all {
		if fe.Cost.LeqAll(alpha) {
			wantCount++
		}
	}
	res, err := Search(context.Background(), p, c, u, Options{Alpha: alpha, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Plans != wantCount {
		t.Errorf("pruned search found %d plans, brute force says %d satisfy alpha", res.Stats.Plans, wantCount)
	}
}

func TestReorderingPreservesResults(t *testing.T) {
	p, c, u := paperExample(t)
	alpha := costmodel.Vector{CPU: 0.3, IO: 1, Net: 0.9}
	plain, err := Search(context.Background(), p, c, u, Options{Alpha: alpha, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	reord, err := Search(context.Background(), p, c, u, Options{Alpha: alpha, Mode: Exhaustive, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Plans != reord.Stats.Plans {
		t.Errorf("reordering changed plan count: %d vs %d", plain.Stats.Plans, reord.Stats.Plans)
	}
	if math.Abs(costmodel.ScalarCost(plain.Cost)-costmodel.ScalarCost(reord.Cost)) > 1e-9 {
		t.Errorf("reordering changed best cost: %v vs %v", plain.Cost, reord.Cost)
	}
	// Reordering should not expand more nodes (it exists to prune earlier).
	if reord.Stats.Nodes > plain.Stats.Nodes {
		t.Logf("note: reordering expanded more nodes (%d > %d) on this instance",
			reord.Stats.Nodes, plain.Stats.Nodes)
	}
}

func TestFirstFeasibleStopsEarly(t *testing.T) {
	p, c, u := paperExample(t)
	ff, err := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: FirstFeasible})
	if err != nil {
		t.Fatal(err)
	}
	if !ff.Feasible {
		t.Fatal("unbounded first-feasible found nothing")
	}
	if err := ff.Plan.Validate(p, c.NumWorkers(), 3); err != nil {
		t.Errorf("plan invalid: %v", err)
	}
	ex, err := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if ff.Stats.Nodes >= ex.Stats.Nodes {
		t.Errorf("first-feasible expanded %d nodes, exhaustive %d", ff.Stats.Nodes, ex.Stats.Nodes)
	}
}

func TestInfeasibleThreshold(t *testing.T) {
	p, c, u := paperExample(t)
	// alpha = 0 in every dimension demands a perfectly balanced plan in all
	// dimensions simultaneously, including zero network cost, which is
	// impossible for a multi-worker deployment of this graph.
	res, err := Search(context.Background(), p, c, u, Options{
		Alpha: costmodel.Vector{}, Mode: FirstFeasible})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("impossible threshold reported feasible with cost %v", res.Cost)
	}
	if res.Plan != nil {
		t.Error("infeasible result carries a plan")
	}
}

func TestSearchErrors(t *testing.T) {
	p, c, u := paperExample(t)
	small, err := cluster.Homogeneous(2, 2, 4, 1e6, 1e6) // 4 slots < 9 tasks
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Search(context.Background(), p, small, u, Options{Alpha: Unbounded}); err == nil {
		t.Error("insufficient slots accepted")
	}
	het, err := cluster.New([]cluster.Worker{
		{ID: "a", Slots: 8, CPU: 4, IOBandwidth: 1, NetBandwidth: 1},
		{ID: "b", Slots: 4, CPU: 4, IOBandwidth: 1, NetBandwidth: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Search(context.Background(), p, het, u, Options{Alpha: Unbounded}); err == nil {
		t.Error("heterogeneous slots accepted")
	}
	_ = c
	_ = u
}

func TestSearchTimeout(t *testing.T) {
	p, c, u := paperExample(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled
	res, err := Search(ctx, p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	// A canceled context may still let a few nodes through (sampled check),
	// but must terminate quickly and far below the full space.
	full, _ := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive})
	if res.Stats.Nodes >= full.Stats.Nodes {
		t.Errorf("canceled search expanded full space: %d nodes", res.Stats.Nodes)
	}
}

func TestMaxNodesLimit(t *testing.T) {
	p, c, u := paperExample(t)
	res, err := Search(context.Background(), p, c, u, Options{
		Alpha: Unbounded, Mode: Exhaustive, MaxNodes: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Nodes > 200 {
		t.Errorf("MaxNodes=50 expanded %d nodes", res.Stats.Nodes)
	}
}

func TestDuplicateEliminationCanonical(t *testing.T) {
	// Two identical workers, one operator with 2 tasks: without duplicate
	// elimination there are 3 distributions ((2,0),(1,1),(0,2)); the
	// canonical form keeps (2,0) and (1,1) only.
	g := dataflow.NewLogicalGraph()
	if err := g.AddOperator(dataflow.Operator{ID: "a", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
		Cost: dataflow.UnitCost{CPU: 1e-4}}); err != nil {
		t.Fatal(err)
	}
	p, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Homogeneous(2, 2, 4, 1e6, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	rates, _ := dataflow.PropagateRates(g, map[dataflow.OperatorID]float64{"a": 100})
	u := costmodel.FromRates(g, rates)
	all, err := EnumeratePlans(context.Background(), p, c, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("canonical plan count = %d, want 2", len(all))
	}
}

func TestParetoFrontEntriesNonDominated(t *testing.T) {
	p, c, u := paperExample(t)
	res, err := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i != j && a.Cost.Dominates(b.Cost) {
				t.Errorf("front entry %d dominates entry %d", i, j)
			}
		}
	}
}

func TestFirstFeasibleParallel(t *testing.T) {
	p, c, u := paperExample(t)
	res, err := Search(context.Background(), p, c, u, Options{
		Alpha: costmodel.Vector{CPU: 0.5, IO: 1, Net: 0.9}, Mode: FirstFeasible, Parallelism: 4,
		Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("feasible threshold reported infeasible")
	}
	if res.Cost.CPU > 0.5+1e-6 || res.Cost.Net > 0.9+1e-6 {
		t.Errorf("returned plan violates alpha: %v", res.Cost)
	}
}
