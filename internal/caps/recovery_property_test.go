package caps

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"capsys/internal/cluster"
)

// Property: recovery re-placement is total. Starting from any random
// feasible instance, removing a random worker and re-running the search over
// the survivors either yields a complete, valid plan on the survivor cluster
// or reports infeasibility explicitly — never a silent partial assignment.
// When the survivors have enough slots, the search MUST find a plan (with
// unbounded thresholds feasibility is purely a capacity question).
func TestRecoveryReplacementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			t.Logf("seed %d: instance construction failed: %v", seed, err)
			return false
		}
		// The original instance must be solvable before a failure is
		// interesting.
		res, err := Search(context.Background(), phys, c, u, Options{Alpha: Unbounded, Mode: Exhaustive, Now: goldenClock})
		if err != nil || !res.Feasible {
			t.Logf("seed %d: original instance infeasible", seed)
			return false
		}

		// Kill a random worker; the survivors form the new cluster view.
		killed := rng.Intn(c.NumWorkers())
		var survivors []cluster.Worker
		for w := 0; w < c.NumWorkers(); w++ {
			if w != killed {
				survivors = append(survivors, c.Worker(w))
			}
		}
		slots, err := c.SlotsPerWorker()
		if err != nil {
			return false
		}
		fits := len(survivors)*slots >= phys.NumTasks()
		if len(survivors) == 0 {
			return true // nothing left to place on; the controller rejects this upstream
		}
		view, err := cluster.New(survivors)
		if err != nil {
			return false
		}

		res2, err := Search(context.Background(), phys, view, u, Options{Alpha: Unbounded, Mode: Exhaustive, Now: goldenClock})
		if !fits {
			// Capacity-infeasible: the search must say so, not fabricate
			// or truncate a plan.
			if err == nil && res2.Feasible {
				t.Logf("seed %d: %d tasks placed on %d survivor slots", seed, phys.NumTasks(), len(survivors)*slots)
				return false
			}
			return true
		}
		if err != nil {
			t.Logf("seed %d: survivor search error: %v", seed, err)
			return false
		}
		if !res2.Feasible {
			t.Logf("seed %d: survivor search infeasible despite %d slots for %d tasks",
				seed, len(survivors)*slots, phys.NumTasks())
			return false
		}
		// The recovery plan must be complete and valid on the survivors.
		if res2.Plan.Len() != phys.NumTasks() {
			t.Logf("seed %d: partial plan: %d of %d tasks", seed, res2.Plan.Len(), phys.NumTasks())
			return false
		}
		if verr := res2.Plan.Validate(phys, view.NumWorkers(), slots); verr != nil {
			t.Logf("seed %d: survivor plan invalid: %v", seed, verr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
