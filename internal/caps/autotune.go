package caps

import (
	"context"
	"fmt"
	"math"
	"time"

	"capsys/internal/clock"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

// AutoTuneOptions configures the threshold auto-tuning procedure (§5.2).
type AutoTuneOptions struct {
	// RelaxPhase1 is the multiplicative relaxation step used while probing
	// each dimension in isolation. The paper uses 1.1.
	RelaxPhase1 float64
	// RelaxPhase2 is the multiplicative relaxation step used while jointly
	// relaxing the combined threshold vector. The paper uses 1.1.
	RelaxPhase2 float64
	// InitialAlpha is the tightest bound probed first. It must be positive
	// because relaxation is multiplicative.
	InitialAlpha float64
	// Timeout bounds the total auto-tuning time; on expiry the most relaxed
	// vector probed so far is returned along with ErrAutoTuneTimeout.
	Timeout time.Duration
	// ProbeMaxNodes bounds each feasibility probe's search-tree size. A
	// probe that exhausts its budget without discovering a plan is treated
	// as infeasible and the threshold relaxes; this trades minimality of
	// the tuned vector for bounded tuning time on large deployments
	// (0 = default 200k nodes).
	ProbeMaxNodes int64
	// SearchParallelism is forwarded to the feasibility probes.
	SearchParallelism int
	// Reorder is forwarded to the feasibility probes.
	Reorder bool
	// Now is the time source for Elapsed and the probes (nil = system
	// clock); the tuned vector itself never depends on it.
	Now clock.Clock
}

// DefaultAutoTuneOptions mirrors the paper's experimental configuration
// (relaxation factor 1.1 for both phases) with a generous default timeout:
// auto-tuning runs offline, and large multi-tenant graphs legitimately need
// tens of seconds of probing. The paper's 5s timeout was the setting of its
// runtime measurement (Fig. 10b), not a correctness bound; callers measuring
// tuning latency should set Timeout explicitly.
func DefaultAutoTuneOptions() AutoTuneOptions {
	return AutoTuneOptions{
		RelaxPhase1:  1.1,
		RelaxPhase2:  1.1,
		InitialAlpha: 0.001,
		Timeout:      60 * time.Second,
		Reorder:      true,
	}
}

// ErrAutoTuneTimeout is returned when auto-tuning exceeds its timeout before
// establishing a jointly feasible threshold vector.
var ErrAutoTuneTimeout = fmt.Errorf("caps: auto-tuning timed out")

// AutoTuneResult reports the tuned thresholds and the effort spent.
type AutoTuneResult struct {
	// Alpha is the minimum jointly feasible threshold vector found.
	Alpha costmodel.Vector
	// PerDimension is the phase-1 outcome: the minimum feasible threshold
	// for each dimension with the other two dimensions unbounded.
	PerDimension costmodel.Vector
	// Probes is the number of feasibility searches executed.
	Probes int
	// Elapsed is the total auto-tuning duration.
	Elapsed time.Duration
}

// AutoTune finds the minimum feasible threshold vector for deploying p on c
// with task usage u, using the two-phase procedure of paper §5.2:
//
//  1. For each dimension independently (others unbounded), start from the
//     tightest bound and geometrically relax until a feasible plan exists.
//  2. Starting from the per-dimension minima, jointly relax the whole vector
//     until a plan satisfying all three thresholds simultaneously exists.
//
// Two refinements keep the procedure robust where the raw formulation
// degenerates:
//
//   - Capacity floor: a threshold tighter than the worker's actual capacity
//     budget buys no performance (loads below capacity never contend), so
//     each dimension's probe starts at the alpha whose load budget equals
//     the worker capacity. This matters most for the network dimension,
//     where L_net^min = 0 (the paper's approximation) would otherwise let
//     phase 1 return a near-zero threshold that only fully co-located plans
//     satisfy — the paper's own empirically chosen alpha_net values
//     (0.6-0.9, Fig. 10a) reflect the same capacity slack.
//   - Additive relaxation kicker: joint relaxation grows each dimension by
//     at least +0.01 per step, so a near-zero phase-1 minimum cannot stall
//     the multiplicative schedule.
func AutoTune(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage, opts AutoTuneOptions) (*AutoTuneResult, error) {
	if opts.RelaxPhase1 <= 1 || opts.RelaxPhase2 <= 1 {
		return nil, fmt.Errorf("caps: relaxation factors must exceed 1 (got %v, %v)", opts.RelaxPhase1, opts.RelaxPhase2)
	}
	if opts.InitialAlpha <= 0 {
		return nil, fmt.Errorf("caps: initial alpha must be positive (got %v)", opts.InitialAlpha)
	}
	if opts.ProbeMaxNodes <= 0 {
		opts.ProbeMaxNodes = 200_000
	}
	now := opts.Now.OrSystem()
	start := now()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	res := &AutoTuneResult{}

	// Capacity floors: the alpha at which the pruning budget equals the
	// (minimum) worker capacity in each dimension.
	slots, err := c.SlotsPerWorker()
	if err != nil {
		return nil, err
	}
	bounds := costmodel.ComputeBounds(p, u, c.NumWorkers(), slots)
	minCap := costmodel.Vector{CPU: math.Inf(1), IO: math.Inf(1), Net: math.Inf(1)}
	for i := 0; i < c.NumWorkers(); i++ {
		w := c.Worker(i)
		minCap = costmodel.Vector{
			CPU: math.Min(minCap.CPU, w.CPU),
			IO:  math.Min(minCap.IO, w.IOBandwidth),
			Net: math.Min(minCap.Net, w.NetBandwidth),
		}
	}
	floor := func(capacity, lmin, lmax float64) float64 {
		span := lmax - lmin
		if span <= 1e-12 {
			return opts.InitialAlpha
		}
		f := (capacity - lmin) / span
		if f < opts.InitialAlpha {
			return opts.InitialAlpha
		}
		if f > 1 {
			return 1
		}
		return f
	}
	// Only the network dimension gets the capacity floor: its L^min = 0
	// approximation is what makes the raw phase-1 minimum degenerate (any
	// fully co-located plan achieves zero network cost). CPU and state
	// access keep the paper's tightest-bound start — their balanced minima
	// are meaningful, and capacity-based floors would be too loose because
	// co-location penalties shrink effective capacity below nominal.
	floors := costmodel.Vector{
		CPU: opts.InitialAlpha,
		IO:  opts.InitialAlpha,
		Net: floor(minCap.Net, bounds.Min.Net, bounds.Max.Net),
	}

	feasible := func(alpha costmodel.Vector) (bool, error) {
		res.Probes++
		r, err := Search(ctx, p, c, u, Options{
			Alpha:       alpha,
			Mode:        FirstFeasible,
			Reorder:     opts.Reorder,
			Parallelism: opts.SearchParallelism,
			MaxNodes:    opts.ProbeMaxNodes,
			Now:         opts.Now,
		})
		if err != nil {
			return false, err
		}
		return r.Feasible, nil
	}

	// Phase 1: minimum feasible threshold per dimension, others disabled.
	dims := []struct {
		name  string
		start float64
		set   func(v *costmodel.Vector, a float64)
	}{
		{"cpu", floors.CPU, func(v *costmodel.Vector, a float64) { v.CPU = a }},
		{"io", floors.IO, func(v *costmodel.Vector, a float64) { v.IO = a }},
		{"net", floors.Net, func(v *costmodel.Vector, a float64) { v.Net = a }},
	}
	for _, d := range dims {
		a := d.start
		for {
			if ctx.Err() != nil {
				res.Alpha = res.PerDimension
				res.Elapsed = now.Since(start)
				return res, ErrAutoTuneTimeout
			}
			probe := Unbounded
			d.set(&probe, a)
			ok, err := feasible(probe)
			if err != nil {
				return nil, err
			}
			if ok {
				d.set(&res.PerDimension, a)
				break
			}
			if a >= 1 {
				// Cost is bounded by 1, so alpha = 1 is always feasible for
				// a single dimension; reaching this point means the probe
				// was cut short by the context.
				res.Alpha = res.PerDimension
				res.Elapsed = now.Since(start)
				return res, ErrAutoTuneTimeout
			}
			a = math.Min(1, a*opts.RelaxPhase1)
		}
	}

	// Phase 2: jointly relax from the per-dimension minima until the whole
	// vector is feasible at once.
	alpha := res.PerDimension
	for {
		if ctx.Err() != nil {
			res.Alpha = alpha
			res.Elapsed = now.Since(start)
			return res, ErrAutoTuneTimeout
		}
		ok, err := feasible(alpha)
		if err != nil {
			return nil, err
		}
		if ok {
			res.Alpha = alpha
			res.Elapsed = now.Since(start)
			return res, nil
		}
		if alpha.CPU >= 1 && alpha.IO >= 1 && alpha.Net >= 1 {
			// Alpha = 1 everywhere admits every canonical plan; if even that
			// probe failed, the context expired mid-search.
			res.Alpha = alpha
			res.Elapsed = now.Since(start)
			return res, ErrAutoTuneTimeout
		}
		// Multiplicative relaxation with an additive kicker: near-zero
		// phase-1 minima must still make progress.
		relax := func(a float64) float64 {
			return math.Min(1, math.Max(a*opts.RelaxPhase2, a+0.01))
		}
		alpha = costmodel.Vector{
			CPU: relax(alpha.CPU),
			IO:  relax(alpha.IO),
			Net: relax(alpha.Net),
		}
	}
}
