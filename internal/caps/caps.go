// Package caps implements Contention-Aware Placement Search (CAPS), the core
// contribution of the CAPSys paper (EuroSys'25, §4).
//
// CAPS explores the space of task placement plans as a tree navigated in
// depth-first order. The outer search explores one logical operator per tree
// layer; the inner search expands a layer by distributing the operator's
// tasks over the cluster's workers. Three techniques keep the search
// tractable:
//
//   - Duplicate elimination: workers with identical assignment histories are
//     interchangeable, so task counts across equivalent workers are forced
//     into canonical non-increasing order.
//   - Threshold-based pruning (§4.4.1): per-worker loads grow monotonically
//     as tasks are added, so a branch is pruned as soon as any worker's
//     accumulated load exceeds the budget implied by the threshold vector α
//     (Eq. 10).
//   - Exploration reordering (§4.4.2): operators with higher resource cost
//     are explored near the root so that over-threshold branches are pruned
//     early.
//
// The search runs on a configurable pool of goroutines that consume
// first-layer subtrees from a shared work queue (a simple form of the
// paper's dynamic work offloading), cache satisfactory plans locally, and
// merge their Pareto fronts when the space is exhausted.
//
// Network cost note: the cost model charges a task's output rate to its
// worker in proportion to the fraction of its downstream physical links that
// cross workers (Eq. 8). The search accounts for this incrementally and
// exactly for all-to-all edges; Forward edges are treated as all-to-all by
// the model (the paper's queries disable chaining, making every exchange
// all-to-all).
package caps

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

// Mode selects what the search returns.
type Mode int

const (
	// FirstFeasible stops at the first plan satisfying the thresholds. This
	// is the mode used online when a reconfiguration needs a plan quickly,
	// and the mode measured by the paper's Figure 10a.
	FirstFeasible Mode = iota
	// Exhaustive explores the whole (pruned) space and returns the
	// Pareto-optimal plan with minimum scalarized cost, along with the
	// Pareto front of all satisfactory plans.
	Exhaustive
)

// Unbounded is a threshold vector that disables pruning in every dimension.
var Unbounded = costmodel.Vector{CPU: math.Inf(1), IO: math.Inf(1), Net: math.Inf(1)}

// Options configures a search.
type Options struct {
	// Alpha is the pruning threshold vector ᾱ = [α_cpu, α_io, α_net].
	// Use Unbounded (or +Inf per dimension) to disable pruning.
	Alpha costmodel.Vector
	// Mode selects FirstFeasible or Exhaustive search.
	Mode Mode
	// Reorder enables search-tree exploration reordering (§4.4.2). When
	// false, operators are explored in topological order.
	Reorder bool
	// Parallelism is the number of search goroutines. Values < 1 mean 1.
	Parallelism int
	// MaxNodes aborts the search after expanding this many tree nodes
	// (0 = unlimited). The best result found so far is returned.
	MaxNodes int64
	// Timeout bounds the wall-clock search time (0 = unlimited).
	Timeout time.Duration
	// FrontCap bounds the size of the retained Pareto front per searcher
	// (0 = default 64). The minimum-scalar-cost plan is always retained, so
	// the returned plan is Pareto-optimal regardless of the cap.
	FrontCap int
	// DisableDuplicateElimination turns off the symmetry-breaking canonical
	// ordering across equivalent workers. Only useful for ablation studies:
	// the search then enumerates every permutation of interchangeable
	// workers.
	DisableDuplicateElimination bool
}

// Stats reports search effort.
type Stats struct {
	// Nodes is the number of search tree nodes expanded.
	Nodes int64
	// Plans is the number of complete plans discovered that satisfy the
	// thresholds.
	Plans int64
	// Elapsed is the wall-clock search duration.
	Elapsed time.Duration
}

// FrontEntry is one plan on the Pareto front.
type FrontEntry struct {
	Plan *dataflow.Plan
	Cost costmodel.Vector
}

// Result is the outcome of a search.
type Result struct {
	// Feasible reports whether at least one plan satisfied the thresholds.
	Feasible bool
	// Plan is the selected plan (nil if infeasible): the first satisfactory
	// plan in FirstFeasible mode, the minimum-scalar-cost Pareto-optimal
	// plan in Exhaustive mode.
	Plan *dataflow.Plan
	// Cost is the cost vector of Plan.
	Cost costmodel.Vector
	// Front is the Pareto front of discovered plans (Exhaustive mode only).
	Front []FrontEntry
	// Stats reports search effort.
	Stats Stats
	// Bounds are the load bounds used for cost normalization.
	Bounds costmodel.Bounds
}

// ErrInsufficientSlots is returned when the cluster cannot host the graph.
var ErrInsufficientSlots = errors.New("caps: cluster has fewer slots than tasks")

// opInfo is the per-operator view used during the search.
type opInfo struct {
	id    dataflow.OperatorID
	par   int              // parallelism (tasks)
	usage costmodel.Vector // per-task usage U(t)
	// outDeg is |D(t)| for each task of this operator: the total number of
	// downstream physical links, i.e. the sum of downstream parallelisms
	// under the all-to-all model.
	outDeg int
	// upstream/downstream hold layer indices of adjacent operators in the
	// exploration order.
	upstream   []int
	downstream []int
}

// searcher holds the immutable search inputs.
type searcher struct {
	ops        []opInfo
	numWorkers int
	slots      int
	budget     costmodel.Vector
	bounds     costmodel.Bounds
	mode       Mode
	frontCap   int
	maxNodes   int64
	noDupElim  bool

	nodes    atomic.Int64
	plans    atomic.Int64
	stopFlag atomic.Bool // set when FirstFeasible found or limits hit
	ctx      context.Context
}

// state is the mutable per-goroutine DFS state.
type state struct {
	counts [][]int // [layer][worker] task counts
	free   []int   // remaining slots per worker
	loads  []costmodel.Vector
	placed []int // per layer: tasks placed so far (== par when layer done)
}

func newState(numLayers, numWorkers, slots int) *state {
	st := &state{
		counts: make([][]int, numLayers),
		free:   make([]int, numWorkers),
		loads:  make([]costmodel.Vector, numWorkers),
		placed: make([]int, numLayers),
	}
	for i := range st.counts {
		st.counts[i] = make([]int, numWorkers)
	}
	for i := range st.free {
		st.free[i] = slots
	}
	return st
}

func (st *state) clone() *state {
	c := &state{
		counts: make([][]int, len(st.counts)),
		free:   append([]int(nil), st.free...),
		loads:  append([]costmodel.Vector(nil), st.loads...),
		placed: append([]int(nil), st.placed...),
	}
	for i := range st.counts {
		c.counts[i] = append([]int(nil), st.counts[i]...)
	}
	return c
}

// buildOps computes the exploration order and per-operator info.
func buildOps(p *dataflow.PhysicalGraph, u *costmodel.Usage, b costmodel.Bounds, reorder bool) ([]opInfo, error) {
	g := p.Logical
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	if reorder {
		order = reorderOps(g, u, b, order)
	}
	layerOf := make(map[dataflow.OperatorID]int, len(order))
	for i, id := range order {
		layerOf[id] = i
	}
	ops := make([]opInfo, len(order))
	for i, id := range order {
		op := g.Operator(id)
		info := opInfo{id: id, par: op.Parallelism, usage: u.Task(id)}
		for _, d := range g.Downstream(id) {
			info.outDeg += g.Operator(d).Parallelism
			info.downstream = append(info.downstream, layerOf[d])
		}
		for _, up := range g.Upstream(id) {
			info.upstream = append(info.upstream, layerOf[up])
		}
		ops[i] = info
	}
	return ops, nil
}

// reorderOps ranks operators by their normalized resource cost so that
// resource-intensive operators are explored at the top layers of the tree
// (§4.4.2). The rank of an operator is the maximum, across dimensions, of
// its aggregate usage normalized by the dimension's load range; ties are
// broken by topological position for determinism.
func reorderOps(g *dataflow.LogicalGraph, u *costmodel.Usage, b costmodel.Bounds, topo []dataflow.OperatorID) []dataflow.OperatorID {
	span := func(min, max float64) float64 {
		if max-min <= 1e-12 {
			return math.Inf(1) // dimension carries no signal
		}
		return max - min
	}
	cpuSpan := span(b.Min.CPU, b.Max.CPU)
	ioSpan := span(b.Min.IO, b.Max.IO)
	netSpan := span(b.Min.Net, b.Max.Net)
	score := func(id dataflow.OperatorID) float64 {
		op := g.Operator(id)
		uv := u.Task(id).Scale(float64(op.Parallelism))
		s := uv.CPU / cpuSpan
		if v := uv.IO / ioSpan; v > s {
			s = v
		}
		if v := uv.Net / netSpan; v > s {
			s = v
		}
		return s
	}
	pos := make(map[dataflow.OperatorID]int, len(topo))
	for i, id := range topo {
		pos[id] = i
	}
	out := append([]dataflow.OperatorID(nil), topo...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := score(out[i]), score(out[j])
		if si != sj {
			return si > sj
		}
		return pos[out[i]] < pos[out[j]]
	})
	return out
}

// Search runs CAPS over physical graph p on cluster c with task usage u.
func Search(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage, opts Options) (*Result, error) {
	slots, err := c.SlotsPerWorker()
	if err != nil {
		return nil, fmt.Errorf("caps: %w", err)
	}
	if !c.Fits(p.NumTasks()) {
		return nil, fmt.Errorf("%w: %d tasks, %d slots", ErrInsufficientSlots, p.NumTasks(), c.TotalSlots())
	}
	bounds := costmodel.ComputeBounds(p, u, c.NumWorkers(), slots)
	ops, err := buildOps(p, u, bounds, opts.Reorder)
	if err != nil {
		return nil, err
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	frontCap := opts.FrontCap
	if frontCap <= 0 {
		frontCap = 64
	}
	s := &searcher{
		ops:        ops,
		numWorkers: c.NumWorkers(),
		slots:      slots,
		budget:     costmodel.LoadBudget(bounds, opts.Alpha),
		bounds:     bounds,
		mode:       opts.Mode,
		frontCap:   frontCap,
		maxNodes:   opts.MaxNodes,
		noDupElim:  opts.DisableDuplicateElimination,
		ctx:        ctx,
	}

	start := time.Now()
	par := opts.Parallelism
	if par < 1 {
		par = 1
	}
	var merged *collector
	if par == 1 {
		col := newCollector(s)
		st := newState(len(ops), s.numWorkers, slots)
		s.searchLayer(st, 0, col)
		merged = col
	} else {
		merged = s.searchParallel(par)
	}

	res := &Result{
		Stats: Stats{
			Nodes:   s.nodes.Load(),
			Plans:   s.plans.Load(),
			Elapsed: time.Since(start),
		},
		Bounds: bounds,
	}
	if merged.best != nil {
		res.Feasible = true
		res.Plan = s.materialize(merged.best)
		res.Cost = merged.bestCost
		if opts.Mode == Exhaustive {
			for _, fe := range merged.front {
				res.Front = append(res.Front, FrontEntry{Plan: s.materialize(fe.counts), Cost: fe.cost})
			}
		}
	}
	return res, nil
}

// collector accumulates satisfactory plans found by one search goroutine.
type collector struct {
	s        *searcher
	best     [][]int // counts snapshot of the plan with minimum scalar cost
	bestCost costmodel.Vector
	bestKey  string // canonical tie-break key
	front    []frontEntry
}

type frontEntry struct {
	counts [][]int
	cost   costmodel.Vector
}

func newCollector(s *searcher) *collector { return &collector{s: s} }

func snapshotCounts(counts [][]int) [][]int {
	out := make([][]int, len(counts))
	for i := range counts {
		out[i] = append([]int(nil), counts[i]...)
	}
	return out
}

func countsKey(counts [][]int) string {
	b := make([]byte, 0, len(counts)*len(counts[0]))
	for _, row := range counts {
		for _, v := range row {
			b = append(b, byte(v), ',')
		}
		b = append(b, ';')
	}
	return string(b)
}

// offer records a satisfactory complete plan.
func (c *collector) offer(counts [][]int, cost costmodel.Vector) {
	sc := costmodel.ScalarCost(cost)
	if c.best == nil || sc < costmodel.ScalarCost(c.bestCost) ||
		(sc == costmodel.ScalarCost(c.bestCost) && countsKey(counts) < c.bestKey) {
		c.best = snapshotCounts(counts)
		c.bestCost = cost
		c.bestKey = countsKey(c.best)
	}
	if c.s.mode != Exhaustive {
		return
	}
	// Maintain the local Pareto front.
	for _, fe := range c.front {
		if fe.cost.Dominates(cost) || fe.cost == cost {
			return
		}
	}
	kept := c.front[:0]
	for _, fe := range c.front {
		if !cost.Dominates(fe.cost) {
			kept = append(kept, fe)
		}
	}
	c.front = append(kept, frontEntry{counts: snapshotCounts(counts), cost: cost})
	if len(c.front) > c.s.frontCap {
		// Drop the highest scalar-cost entry to respect the cap.
		worst, wi := -1.0, -1
		for i, fe := range c.front {
			if s := costmodel.ScalarCost(fe.cost); s > worst {
				worst, wi = s, i
			}
		}
		c.front = append(c.front[:wi], c.front[wi+1:]...)
	}
}

// merge folds other into c deterministically.
func (c *collector) merge(other *collector) {
	if other.best != nil {
		c.offerBest(other.best, other.bestCost)
	}
	for _, fe := range other.front {
		c.offer(fe.counts, fe.cost)
	}
}

func (c *collector) offerBest(counts [][]int, cost costmodel.Vector) {
	sc := costmodel.ScalarCost(cost)
	if c.best == nil || sc < costmodel.ScalarCost(c.bestCost) ||
		(sc == costmodel.ScalarCost(c.bestCost) && countsKey(counts) < c.bestKey) {
		c.best = counts
		c.bestCost = cost
		c.bestKey = countsKey(counts)
	}
}

// shouldStop polls termination conditions. It is cheap enough to call per
// node expansion.
func (s *searcher) shouldStop() bool {
	if s.stopFlag.Load() {
		return true
	}
	n := s.nodes.Load()
	if s.maxNodes > 0 && n >= s.maxNodes {
		s.stopFlag.Store(true)
		return true
	}
	// Sample the context only periodically: a channel select per node would
	// dominate the cost of expanding millions of nodes.
	if n&0xFFF == 0 {
		select {
		case <-s.ctx.Done():
			s.stopFlag.Store(true)
			return true
		default:
		}
	}
	return false
}

const budgetEps = 1e-9

// withinBudget checks one worker's load against the pruning budget.
func (s *searcher) withinBudget(l costmodel.Vector) bool {
	b := s.budget
	return l.CPU <= b.CPU+budgetEps*(1+math.Abs(b.CPU)) &&
		l.IO <= b.IO+budgetEps*(1+math.Abs(b.IO)) &&
		l.Net <= b.Net+budgetEps*(1+math.Abs(b.Net))
}

// searchLayer runs the outer search: distribute the tasks of layer k, then
// recurse into layer k+1. A complete assignment of all layers is a leaf.
func (s *searcher) searchLayer(st *state, layer int, col *collector) {
	if layer == len(s.ops) {
		s.leaf(st, col)
		return
	}
	s.innerSearch(st, layer, 0, s.ops[layer].par, -1, col, func() {
		s.searchLayer(st, layer+1, col)
	})
}

// innerSearch distributes the remaining tasks of layer over workers starting
// at index w. prevCount is the count chosen for worker w-1 when w-1 and w are
// equivalent (or -1 when unconstrained); done is invoked when the layer is
// fully placed.
func (s *searcher) innerSearch(st *state, layer, w, remaining, prevCount int, col *collector, done func()) {
	if remaining == 0 {
		done()
		return
	}
	if w == s.numWorkers {
		return // dead end: tasks left but no workers
	}
	if s.shouldStop() {
		return
	}
	// Capacity-based lower bound: workers after w must be able to absorb
	// what we don't place here.
	capAfter := 0
	for j := w + 1; j < s.numWorkers; j++ {
		capAfter += st.free[j]
	}
	lo := remaining - capAfter
	if lo < 0 {
		lo = 0
	}
	hi := st.free[w]
	if remaining < hi {
		hi = remaining
	}
	// Duplicate elimination: if w is equivalent to w-1, cap the count by the
	// predecessor's choice (canonical non-increasing order).
	if prevCount >= 0 && s.equivalent(st, layer, w) && prevCount < hi {
		hi = prevCount
	}
	// Counts are explored in descending order: the greedy (packed) prefix
	// either reaches a leaf in O(layers x workers) steps or violates the
	// load budget immediately and is pruned in O(1), steering the search
	// toward the most balanced counts that still fit. Ascending order
	// would walk enormous futile subtrees on large clusters, where small
	// counts early make the capacity lower bound unsatisfiable only dozens
	// of workers later.
	for c := hi; c >= lo; c-- {
		s.nodes.Add(1)
		undo, ok := s.place(st, layer, w, c)
		if ok {
			s.innerSearch(st, layer, w+1, remaining-c, c, col, done)
		}
		undo()
		if s.shouldStop() {
			return
		}
	}
}

// equivalent reports whether worker w and worker w-1 have identical
// assignment histories (same counts in all completed layers and in the
// current layer so far — the latter is vacuous because the inner search
// walks workers left to right).
func (s *searcher) equivalent(st *state, layer, w int) bool {
	if w == 0 || s.noDupElim {
		return false
	}
	for l := range s.ops {
		if l == layer {
			continue
		}
		if st.counts[l][w] != st.counts[l][w-1] {
			return false
		}
	}
	return true
}

// place assigns c tasks of layer onto worker w, applying load deltas
// (including network contributions involving already-placed adjacent
// layers). It returns an undo closure and whether the placement stays within
// budget and slot capacity. The undo closure must always be called.
func (s *searcher) place(st *state, layer, w, c int) (undo func(), ok bool) {
	if c == 0 {
		return func() {}, true
	}
	op := &s.ops[layer]
	type delta struct {
		w int
		v costmodel.Vector
	}
	var deltas []delta
	add := func(worker int, v costmodel.Vector) {
		st.loads[worker] = st.loads[worker].Add(v)
		deltas = append(deltas, delta{worker, v})
	}

	st.free[w] -= c
	st.counts[layer][w] += c
	st.placed[layer] += c

	fc := float64(c)
	add(w, costmodel.Vector{CPU: op.usage.CPU * fc, IO: op.usage.IO * fc})

	// Network: upstream tasks already placed gain c new downstream links;
	// links from workers other than w are remote (Eq. 8).
	for _, ul := range op.upstream {
		up := &s.ops[ul]
		if up.usage.Net == 0 || up.outDeg == 0 {
			continue
		}
		perLink := up.usage.Net / float64(up.outDeg)
		for uw := 0; uw < s.numWorkers; uw++ {
			if uw == w || st.counts[ul][uw] == 0 {
				continue
			}
			add(uw, costmodel.Vector{Net: perLink * float64(st.counts[ul][uw]) * fc})
		}
	}
	// Network: the new tasks' links to already-placed downstream tasks on
	// other workers are remote and charge worker w.
	if op.usage.Net > 0 && op.outDeg > 0 {
		perLink := op.usage.Net / float64(op.outDeg)
		remote := 0
		for _, dl := range op.downstream {
			remote += st.placed[dl] - st.counts[dl][w]
		}
		if remote > 0 {
			add(w, costmodel.Vector{Net: perLink * float64(remote) * fc})
		}
	}

	undo = func() {
		st.free[w] += c
		st.counts[layer][w] -= c
		st.placed[layer] -= c
		for _, d := range deltas {
			st.loads[d.w] = st.loads[d.w].Add(d.v.Scale(-1))
		}
	}
	// Monotonicity-based pruning: check every touched worker.
	for _, d := range deltas {
		if !s.withinBudget(st.loads[d.w]) {
			return undo, false
		}
	}
	return undo, true
}

// leaf handles a complete assignment.
func (s *searcher) leaf(st *state, col *collector) {
	s.plans.Add(1)
	cost := costmodel.CostFromLoad(costmodel.MaxLoad(st.loads), s.bounds)
	col.offer(st.counts, cost)
	if s.mode == FirstFeasible {
		s.stopFlag.Store(true)
	}
}

// searchParallel distributes first-layer subtrees to a pool of workers via a
// shared queue. Each worker keeps a local collector; fronts are merged after
// the space is exhausted.
func (s *searcher) searchParallel(par int) *collector {
	type workItem struct{ st *state }
	queue := make(chan workItem, par*2)

	// Producer: enumerate layer-0 assignments and ship each completed
	// layer-0 state as a subtree root.
	go func() {
		defer close(queue)
		st := newState(len(s.ops), s.numWorkers, s.slots)
		col := newCollector(s) // unused sink for the degenerate 0-layer case
		s.innerSearch(st, 0, 0, s.ops[0].par, -1, col, func() {
			if s.shouldStop() {
				return
			}
			select {
			case queue <- workItem{st: st.clone()}:
			case <-s.ctx.Done():
			}
		})
	}()

	collectors := make([]*collector, par)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		col := newCollector(s)
		collectors[i] = col
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range queue {
				if s.shouldStop() && s.mode == FirstFeasible {
					continue // drain
				}
				s.searchLayer(item.st, 1, col)
			}
		}()
	}
	wg.Wait()

	merged := newCollector(s)
	for _, col := range collectors {
		merged.merge(col)
	}
	return merged
}

// materialize converts a counts matrix into a concrete Plan, assigning task
// indices of each operator to workers in ascending worker order.
func (s *searcher) materialize(counts [][]int) *dataflow.Plan {
	pl := dataflow.NewPlan()
	for layer, op := range s.ops {
		idx := 0
		for w := 0; w < s.numWorkers; w++ {
			for k := 0; k < counts[layer][w]; k++ {
				pl.Assign(dataflow.TaskID{Op: op.id, Index: idx}, w)
				idx++
			}
		}
	}
	return pl
}

// EnumeratePlans exhaustively enumerates all canonical (duplicate-eliminated)
// placement plans without pruning and returns them with their cost vectors.
// It is intended for small instances (empirical studies and tests, e.g. the
// paper's 80-plan study of Figure 2).
func EnumeratePlans(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage) ([]FrontEntry, error) {
	slots, err := c.SlotsPerWorker()
	if err != nil {
		return nil, err
	}
	if !c.Fits(p.NumTasks()) {
		return nil, ErrInsufficientSlots
	}
	bounds := costmodel.ComputeBounds(p, u, c.NumWorkers(), slots)
	ops, err := buildOps(p, u, bounds, false)
	if err != nil {
		return nil, err
	}
	s := &searcher{
		ops:        ops,
		numWorkers: c.NumWorkers(),
		slots:      slots,
		budget:     costmodel.LoadBudget(bounds, Unbounded),
		bounds:     bounds,
		mode:       Exhaustive,
		frontCap:   math.MaxInt32,
		ctx:        ctx,
	}
	var all []FrontEntry
	col := newCollector(s)
	st := newState(len(ops), s.numWorkers, slots)
	// Intercept leaves by wrapping the layer recursion manually.
	var rec func(layer int)
	rec = func(layer int) {
		if layer == len(s.ops) {
			cost := costmodel.CostFromLoad(costmodel.MaxLoad(st.loads), s.bounds)
			all = append(all, FrontEntry{Plan: s.materialize(st.counts), Cost: cost})
			return
		}
		s.innerSearch(st, layer, 0, s.ops[layer].par, -1, col, func() { rec(layer + 1) })
	}
	rec(0)
	if err := ctx.Err(); err != nil {
		return all, err
	}
	return all, nil
}
