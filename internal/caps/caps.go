// Package caps implements Contention-Aware Placement Search (CAPS), the core
// contribution of the CAPSys paper (EuroSys'25, §4).
//
// CAPS explores the space of task placement plans as a tree navigated in
// depth-first order. The outer search explores one logical operator per tree
// layer; the inner search expands a layer by distributing the operator's
// tasks over the cluster's workers. Several techniques keep the search
// tractable:
//
//   - Duplicate elimination: workers with identical assignment histories are
//     interchangeable, so task counts across equivalent workers are forced
//     into canonical non-increasing order.
//   - Threshold-based pruning (§4.4.1): per-worker loads grow monotonically
//     as tasks are added, so a branch is pruned as soon as any worker's
//     accumulated load exceeds the budget implied by the threshold vector α
//     (Eq. 10).
//   - Exploration reordering (§4.4.2): operators with higher resource cost
//     are explored near the root so that over-threshold branches are pruned
//     early.
//   - Incremental evaluation: per-worker load vectors, the bottleneck load
//     and the remaining-capacity bound are maintained in O(1) per place/undo
//     instead of being recomputed from the full assignment (see eval.go; the
//     ScratchEval option restores the naive recomputation for ablation).
//   - Memoized dominated states: partial states at layer boundaries whose
//     whole subtree was proven infeasible prune later states with the same
//     interface and element-wise larger loads (see memo.go).
//   - Warm starts: a previous plan seeds the child ordering of the search, so
//     steady-state re-placements whose old plan is still feasible descend
//     straight to it (Options.Warm).
//
// The search runs on a configurable pool of goroutines that consume
// first-layer subtrees from a shared work queue (a simple form of the
// paper's dynamic work offloading), cache satisfactory plans locally, and
// merge their Pareto fronts when the space is exhausted.
//
// Network cost note: the cost model charges a task's output rate to its
// worker in proportion to the fraction of its downstream physical links that
// cross workers (Eq. 8). The search accounts for this incrementally and
// exactly for all-to-all edges; Forward edges are treated as all-to-all by
// the model (the paper's queries disable chaining, making every exchange
// all-to-all).
package caps

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"capsys/internal/clock"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/telemetry"
)

// Mode selects what the search returns.
type Mode int

const (
	// FirstFeasible stops at the first plan satisfying the thresholds. This
	// is the mode used online when a reconfiguration needs a plan quickly,
	// and the mode measured by the paper's Figure 10a.
	FirstFeasible Mode = iota
	// Exhaustive explores the whole (pruned) space and returns the
	// Pareto-optimal plan with minimum scalarized cost, along with the
	// Pareto front of all satisfactory plans.
	Exhaustive
)

// Unbounded is a threshold vector that disables pruning in every dimension.
var Unbounded = costmodel.Vector{CPU: math.Inf(1), IO: math.Inf(1), Net: math.Inf(1)}

// Options configures a search.
type Options struct {
	// Alpha is the pruning threshold vector ᾱ = [α_cpu, α_io, α_net].
	// Use Unbounded (or +Inf per dimension) to disable pruning.
	Alpha costmodel.Vector
	// Mode selects FirstFeasible or Exhaustive search.
	Mode Mode
	// Reorder enables search-tree exploration reordering (§4.4.2). When
	// false, operators are explored in topological order.
	Reorder bool
	// Parallelism is the number of search goroutines. Values < 1 mean 1.
	Parallelism int
	// MaxNodes aborts the search after expanding this many tree nodes
	// (0 = unlimited). The best result found so far is returned.
	MaxNodes int64
	// Timeout bounds the wall-clock search time (0 = unlimited).
	Timeout time.Duration
	// FrontCap bounds the size of the retained Pareto front per searcher
	// (0 = default 64). The minimum-scalar-cost plan is always retained, so
	// the returned plan is Pareto-optimal regardless of the cap.
	FrontCap int
	// Warm seeds the search with a previous plan: at every choice point the
	// seeded task count is tried first, so a still-feasible previous plan is
	// rediscovered in O(layers × workers) nodes. The seed only permutes the
	// child exploration order — the explored plan set, the Pareto front and
	// the selected plan are unchanged. Plans from a rescaled graph or a
	// different cluster degrade to partial hints.
	Warm *dataflow.Plan
	// ScratchEval disables incremental load maintenance and recomputes every
	// per-worker load vector from the full assignment on each placement step
	// (and each leaf). Results are identical; only the effort differs. It
	// exists as the ablation baseline for the searchperf experiment and the
	// BENCH_caps.json benchmarks, and implies DisableMemo.
	ScratchEval bool
	// DisableMemo turns off memoized dominated-state pruning (ablation).
	DisableMemo bool
	// DisableDuplicateElimination turns off the symmetry-breaking canonical
	// ordering across equivalent workers. Only useful for ablation studies:
	// the search then enumerates every permutation of interchangeable
	// workers.
	DisableDuplicateElimination bool
	// Telemetry, when set, accumulates search effort counters on the hub's
	// registry (caps.search.runs, .nodes, .cost_evals, .memo_prunes,
	// .budget_prunes, .warm_runs, .plans) and sets the caps.search.seconds
	// gauge to the latest search duration.
	Telemetry *telemetry.Telemetry
	// Now is the time source used for the Elapsed stat (nil = system clock).
	// The search itself never reads the wall clock — plans, fronts and
	// counters are a pure function of the inputs — so injecting a fixed
	// clock makes the whole Result, Elapsed included, reproducible.
	Now clock.Clock
}

// Stats reports search effort.
type Stats struct {
	// Nodes is the number of search tree nodes expanded.
	Nodes int64
	// Plans is the number of complete plans discovered that satisfy the
	// thresholds.
	Plans int64
	// CostEvals is the number of per-worker load-vector evaluations: one per
	// incrementally updated worker in the default mode, numWorkers per
	// placement step (and per leaf) under ScratchEval.
	CostEvals int64
	// MemoPrunes is the number of subtrees skipped by dominated-state
	// memoization.
	MemoPrunes int64
	// BudgetPrunes is the number of placements rejected by threshold-based
	// pruning.
	BudgetPrunes int64
	// WarmStarted reports whether a warm-start seed was applied.
	WarmStarted bool
	// Elapsed is the wall-clock search duration.
	Elapsed time.Duration
}

// FrontEntry is one plan on the Pareto front.
type FrontEntry struct {
	Plan *dataflow.Plan
	Cost costmodel.Vector
}

// Result is the outcome of a search.
type Result struct {
	// Feasible reports whether at least one plan satisfied the thresholds.
	Feasible bool
	// Plan is the selected plan (nil if infeasible): the first satisfactory
	// plan in FirstFeasible mode, the minimum-scalar-cost Pareto-optimal
	// plan in Exhaustive mode.
	Plan *dataflow.Plan
	// Cost is the cost vector of Plan.
	Cost costmodel.Vector
	// Front is the Pareto front of discovered plans (Exhaustive mode only).
	Front []FrontEntry
	// Stats reports search effort.
	Stats Stats
	// Bounds are the load bounds used for cost normalization.
	Bounds costmodel.Bounds
}

// ErrInsufficientSlots is returned when the cluster cannot host the graph.
var ErrInsufficientSlots = errors.New("caps: cluster has fewer slots than tasks")

// opInfo is the per-operator view used during the search.
type opInfo struct {
	id    dataflow.OperatorID
	par   int              // parallelism (tasks)
	usage costmodel.Vector // per-task usage U(t)
	// outDeg is |D(t)| for each task of this operator: the total number of
	// downstream physical links, i.e. the sum of downstream parallelisms
	// under the all-to-all model.
	outDeg int
	// upstream/downstream hold layer indices of adjacent operators in the
	// exploration order.
	upstream   []int
	downstream []int
}

// searcher holds the immutable search inputs.
type searcher struct {
	ops        []opInfo
	numWorkers int
	slots      int
	budget     costmodel.Vector
	bounds     costmodel.Bounds
	mode       Mode
	frontCap   int
	maxNodes   int64
	noDupElim  bool
	scratch    bool
	memoOn     bool
	warm       [][]int // per-layer/per-worker seed counts (nil = cold)

	// relevant[k] lists the prefix layers adjacent to any layer >= k; memoAt
	// marks the boundaries where memoization can recur (see memo.go).
	relevant [][]int
	memoAt   []bool

	nodes        atomic.Int64
	plans        atomic.Int64
	costEvals    atomic.Int64
	memoPrunes   atomic.Int64
	budgetPrunes atomic.Int64
	stopFlag     atomic.Bool // set when FirstFeasible found or limits hit
	ctx          context.Context
}

// buildOps computes the exploration order and per-operator info.
func buildOps(p *dataflow.PhysicalGraph, u *costmodel.Usage, b costmodel.Bounds, reorder bool) ([]opInfo, error) {
	g := p.Logical
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	if reorder {
		order = reorderOps(g, u, b, order)
	}
	layerOf := make(map[dataflow.OperatorID]int, len(order))
	for i, id := range order {
		layerOf[id] = i
	}
	ops := make([]opInfo, len(order))
	for i, id := range order {
		op := g.Operator(id)
		info := opInfo{id: id, par: op.Parallelism, usage: u.Task(id)}
		for _, d := range g.Downstream(id) {
			info.outDeg += g.Operator(d).Parallelism
			info.downstream = append(info.downstream, layerOf[d])
		}
		for _, up := range g.Upstream(id) {
			info.upstream = append(info.upstream, layerOf[up])
		}
		ops[i] = info
	}
	return ops, nil
}

// reorderOps ranks operators by their normalized resource cost so that
// resource-intensive operators are explored at the top layers of the tree
// (§4.4.2). The rank of an operator is the maximum, across dimensions, of
// its aggregate usage normalized by the dimension's load range; ties are
// broken by topological position for determinism.
func reorderOps(g *dataflow.LogicalGraph, u *costmodel.Usage, b costmodel.Bounds, topo []dataflow.OperatorID) []dataflow.OperatorID {
	span := func(min, max float64) float64 {
		if max-min <= 1e-12 {
			return math.Inf(1) // dimension carries no signal
		}
		return max - min
	}
	cpuSpan := span(b.Min.CPU, b.Max.CPU)
	ioSpan := span(b.Min.IO, b.Max.IO)
	netSpan := span(b.Min.Net, b.Max.Net)
	score := func(id dataflow.OperatorID) float64 {
		op := g.Operator(id)
		uv := u.Task(id).Scale(float64(op.Parallelism))
		s := uv.CPU / cpuSpan
		if v := uv.IO / ioSpan; v > s {
			s = v
		}
		if v := uv.Net / netSpan; v > s {
			s = v
		}
		return s
	}
	pos := make(map[dataflow.OperatorID]int, len(topo))
	for i, id := range topo {
		pos[id] = i
	}
	out := append([]dataflow.OperatorID(nil), topo...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := score(out[i]), score(out[j])
		if si != sj {
			return si > sj
		}
		return pos[out[i]] < pos[out[j]]
	})
	return out
}

// newSearcher validates the inputs and assembles the immutable search state.
// It is the shared setup of Search and EnumeratePlans (and gives the property
// tests direct access to the incremental evaluation machinery).
func newSearcher(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage, opts Options) (*searcher, error) {
	slots, err := c.SlotsPerWorker()
	if err != nil {
		return nil, fmt.Errorf("caps: %w", err)
	}
	if !c.Fits(p.NumTasks()) {
		return nil, fmt.Errorf("%w: %d tasks, %d slots", ErrInsufficientSlots, p.NumTasks(), c.TotalSlots())
	}
	bounds := costmodel.ComputeBounds(p, u, c.NumWorkers(), slots)
	ops, err := buildOps(p, u, bounds, opts.Reorder)
	if err != nil {
		return nil, err
	}
	frontCap := opts.FrontCap
	if frontCap <= 0 {
		frontCap = 64
	}
	s := &searcher{
		ops:        ops,
		numWorkers: c.NumWorkers(),
		slots:      slots,
		budget:     costmodel.LoadBudget(bounds, opts.Alpha),
		bounds:     bounds,
		mode:       opts.Mode,
		frontCap:   frontCap,
		maxNodes:   opts.MaxNodes,
		noDupElim:  opts.DisableDuplicateElimination,
		scratch:    opts.ScratchEval,
		memoOn:     !opts.DisableMemo && !opts.ScratchEval,
		warm:       warmCounts(opts.Warm, ops, c.NumWorkers()),
		ctx:        ctx,
	}
	if s.memoOn {
		s.buildMemoPlan()
	}
	return s, nil
}

// Search runs CAPS over physical graph p on cluster c with task usage u.
func Search(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage, opts Options) (*Result, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	s, err := newSearcher(ctx, p, c, u, opts)
	if err != nil {
		return nil, err
	}

	now := opts.Now.OrSystem()
	start := now()
	par := opts.Parallelism
	if par < 1 {
		par = 1
	}
	var merged *collector
	if par == 1 {
		col := newCollector(s)
		st := newState(len(s.ops), s.numWorkers, s.slots)
		s.searchLayer(st, 0, col)
		merged = col
	} else {
		merged = s.searchParallel(par)
	}

	res := &Result{
		Stats: Stats{
			Nodes:        s.nodes.Load(),
			Plans:        s.plans.Load(),
			CostEvals:    s.costEvals.Load(),
			MemoPrunes:   s.memoPrunes.Load(),
			BudgetPrunes: s.budgetPrunes.Load(),
			WarmStarted:  s.warm != nil,
			Elapsed:      now.Since(start),
		},
		Bounds: s.bounds,
	}
	if merged.best != nil {
		res.Feasible = true
		res.Plan = s.materialize(merged.best)
		res.Cost = merged.bestCost
		if opts.Mode == Exhaustive {
			for _, fe := range merged.front {
				res.Front = append(res.Front, FrontEntry{Plan: s.materialize(fe.counts), Cost: fe.cost})
			}
		}
	}
	exportStats(opts.Telemetry, res.Stats)
	return res, nil
}

// exportStats accumulates one search's effort counters on the telemetry hub.
func exportStats(t *telemetry.Telemetry, st Stats) {
	if t == nil {
		return
	}
	reg := t.Registry()
	reg.Counter("caps.search.runs").Inc(1)
	reg.Counter("caps.search.nodes").Inc(st.Nodes)
	reg.Counter("caps.search.plans").Inc(st.Plans)
	reg.Counter("caps.search.cost_evals").Inc(st.CostEvals)
	reg.Counter("caps.search.memo_prunes").Inc(st.MemoPrunes)
	reg.Counter("caps.search.budget_prunes").Inc(st.BudgetPrunes)
	if st.WarmStarted {
		reg.Counter("caps.search.warm_runs").Inc(1)
	}
	reg.Gauge("caps.search.seconds").Set(st.Elapsed.Seconds())
}

// collector accumulates satisfactory plans found by one search goroutine.
type collector struct {
	s        *searcher
	best     [][]int // counts snapshot of the plan with minimum scalar cost
	bestCost costmodel.Vector
	bestKey  string // canonical tie-break key
	front    []frontEntry
	// plansLocal counts satisfying plans found by this goroutine; the memo
	// uses it to detect plan-free subtrees without touching the shared
	// atomic.
	plansLocal int64
	memo       *memoTable
}

type frontEntry struct {
	counts [][]int
	key    string
	cost   costmodel.Vector
}

func newCollector(s *searcher) *collector {
	c := &collector{s: s}
	if s.memoOn {
		c.memo = newMemoTable()
	}
	return c
}

func snapshotCounts(counts [][]int) [][]int {
	out := make([][]int, len(counts))
	for i := range counts {
		out[i] = append([]int(nil), counts[i]...)
	}
	return out
}

func countsKey(counts [][]int) string {
	b := make([]byte, 0, len(counts)*len(counts[0]))
	for _, row := range counts {
		for _, v := range row {
			b = append(b, byte(v), ',')
		}
		b = append(b, ';')
	}
	return string(b)
}

// offer records a satisfactory complete plan. All tie-breaking is
// lexicographic on the canonical counts key, so the retained best plan and
// Pareto front are a deterministic function of the set of offered plans —
// independent of discovery order, and therefore identical between serial and
// parallel searches.
func (c *collector) offer(counts [][]int, cost costmodel.Vector) {
	key := countsKey(counts)
	sc := costmodel.ScalarCost(cost)
	if c.best == nil || sc < costmodel.ScalarCost(c.bestCost) ||
		(sc == costmodel.ScalarCost(c.bestCost) && key < c.bestKey) {
		c.best = snapshotCounts(counts)
		c.bestCost = cost
		c.bestKey = key
	}
	if c.s.mode != Exhaustive {
		return
	}
	// Maintain the local Pareto front.
	for i := range c.front {
		fe := &c.front[i]
		if fe.cost.Dominates(cost) {
			return
		}
		if fe.cost == cost {
			// Equal-cost plans: keep the lexicographically smallest key so
			// the representative does not depend on arrival order.
			if key < fe.key {
				fe.counts = snapshotCounts(counts)
				fe.key = key
			}
			return
		}
	}
	kept := c.front[:0]
	for _, fe := range c.front {
		if !cost.Dominates(fe.cost) {
			kept = append(kept, fe)
		}
	}
	c.front = append(kept, frontEntry{counts: snapshotCounts(counts), key: key, cost: cost})
	if len(c.front) > c.s.frontCap {
		// Drop the highest scalar-cost entry to respect the cap; ties evict
		// the lexicographically largest key (again order-independent).
		wi := 0
		for i := 1; i < len(c.front); i++ {
			si, sw := costmodel.ScalarCost(c.front[i].cost), costmodel.ScalarCost(c.front[wi].cost)
			if si > sw || (si == sw && c.front[i].key > c.front[wi].key) {
				wi = i
			}
		}
		c.front = append(c.front[:wi], c.front[wi+1:]...)
	}
}

// merge folds other into c deterministically.
func (c *collector) merge(other *collector) {
	if other.best != nil {
		c.offerBest(other.best, other.bestKey, other.bestCost)
	}
	for _, fe := range other.front {
		c.offer(fe.counts, fe.cost)
	}
	c.plansLocal += other.plansLocal
}

func (c *collector) offerBest(counts [][]int, key string, cost costmodel.Vector) {
	sc := costmodel.ScalarCost(cost)
	if c.best == nil || sc < costmodel.ScalarCost(c.bestCost) ||
		(sc == costmodel.ScalarCost(c.bestCost) && key < c.bestKey) {
		c.best = counts
		c.bestCost = cost
		c.bestKey = key
	}
}

// shouldStop polls termination conditions. It is cheap enough to call per
// node expansion.
func (s *searcher) shouldStop() bool {
	if s.stopFlag.Load() {
		return true
	}
	n := s.nodes.Load()
	if s.maxNodes > 0 && n >= s.maxNodes {
		s.stopFlag.Store(true)
		return true
	}
	// Sample the context only periodically: a channel select per node would
	// dominate the cost of expanding millions of nodes.
	if n&0xFFF == 0 {
		select {
		case <-s.ctx.Done():
			s.stopFlag.Store(true)
			return true
		default:
		}
	}
	return false
}

const budgetEps = 1e-9

// withinBudget checks one worker's load against the pruning budget.
func (s *searcher) withinBudget(l costmodel.Vector) bool {
	return l.LeqAllEps(s.budget, budgetEps)
}

// searchLayer runs the outer search: distribute the tasks of layer k, then
// recurse into layer k+1. A complete assignment of all layers is a leaf. It
// returns whether the subtree was explored to completion (false when a stop
// condition cut it short), which gates memo recording: a subtree is recorded
// as plan-free only when it was fully explored and yielded no satisfying
// plan.
func (s *searcher) searchLayer(st *state, layer int, col *collector) bool {
	if layer == len(s.ops) {
		s.leaf(st, col)
		return true
	}
	var key []byte
	if col.memo != nil && s.memoAt[layer] {
		key = s.memoKey(st, layer)
		if col.memo.hit(key, st.loads) {
			s.memoPrunes.Add(1)
			return true
		}
	}
	plansBefore := col.plansLocal
	complete := s.innerSearch(st, layer, 0, s.ops[layer].par, -1, st.freeTotal-st.free[0], col, func() bool {
		return s.searchLayer(st, layer+1, col)
	})
	if key != nil && complete && col.plansLocal == plansBefore {
		col.memo.record(key, st.loads)
	}
	return complete
}

// innerSearch distributes the remaining tasks of layer over workers starting
// at index w. prevCount is the count chosen for worker w-1 when w-1 and w are
// equivalent (or -1 when unconstrained); capAfter is the total free capacity
// of workers after w (threaded down incrementally instead of recomputed per
// node); done is invoked when the layer is fully placed. The return value
// reports completion (false when a stop condition fired inside the subtree).
func (s *searcher) innerSearch(st *state, layer, w, remaining, prevCount, capAfter int, col *collector, done func() bool) bool {
	if remaining == 0 {
		return done()
	}
	if w == s.numWorkers {
		return true // dead end: tasks left but no workers
	}
	if s.shouldStop() {
		return false
	}
	// Capacity-based lower bound: workers after w must be able to absorb
	// what we don't place here.
	lo := remaining - capAfter
	if lo < 0 {
		lo = 0
	}
	hi := st.free[w]
	if remaining < hi {
		hi = remaining
	}
	// Duplicate elimination: if w is equivalent to w-1, cap the count by the
	// predecessor's choice (canonical non-increasing order).
	if prevCount >= 0 && s.equivalent(st, layer, w) && prevCount < hi {
		hi = prevCount
	}
	complete := true
	try := func(c int) bool {
		s.nodes.Add(1)
		rec, ok := s.place(st, layer, w, c)
		if ok {
			next := 0
			if w+1 < s.numWorkers {
				next = capAfter - st.free[w+1]
			}
			if !s.innerSearch(st, layer, w+1, remaining-c, c, next, col, done) {
				complete = false
			}
		}
		s.unplace(st, rec)
		if s.shouldStop() {
			complete = false
			return false
		}
		return true
	}
	// Warm start: try the seeded count first so a still-feasible previous
	// plan is rediscovered without backtracking. The seed only permutes the
	// child order — every count in [lo, hi] is still explored exactly once.
	warm := -1
	if s.warm != nil {
		if d := s.warm[layer][w]; d >= lo && d <= hi {
			warm = d
			if !try(d) {
				return complete
			}
		}
	}
	// Counts are explored in descending order: the greedy (packed) prefix
	// either reaches a leaf in O(layers x workers) steps or violates the
	// load budget immediately and is pruned in O(1), steering the search
	// toward the most balanced counts that still fit. Ascending order
	// would walk enormous futile subtrees on large clusters, where small
	// counts early make the capacity lower bound unsatisfiable only dozens
	// of workers later.
	for c := hi; c >= lo; c-- {
		if c == warm {
			continue
		}
		if !try(c) {
			break
		}
	}
	return complete
}

// equivalent reports whether worker w and worker w-1 have identical
// assignment histories (same counts in all completed layers and in the
// current layer so far — the latter is vacuous because the inner search
// walks workers left to right).
func (s *searcher) equivalent(st *state, layer, w int) bool {
	if w == 0 || s.noDupElim {
		return false
	}
	for l := range s.ops {
		if l == layer {
			continue
		}
		if st.counts[l][w] != st.counts[l][w-1] {
			return false
		}
	}
	return true
}

// placeRec records what a place call changed, so unplace can restore the
// state exactly. It is a small value — the hot DFS loop passes it on the
// stack and placements allocate nothing.
type placeRec struct {
	layer, w, c int
	base        int              // undo-log offset before this placement
	prevMax     costmodel.Vector // bottleneck before this placement
}

// place assigns c tasks of layer onto worker w, applying load deltas
// (including network contributions involving already-placed adjacent
// layers). It returns a record for unplace — which must always be called —
// and whether the placement stays within budget and slot capacity.
//
// The incremental path updates only the touched workers' load vectors, the
// running bottleneck load and the free-capacity total — O(occupied adjacent
// workers) per step, independent of cluster size. Touched workers' previous
// loads are snapshotted onto the state's shared undo log, so unplace restores
// the exact previous floats (subtracting the delta back would leave 1-ulp
// drift and make results depend on sibling exploration history;
// snapshot-restore keeps every state bitwise reproducible, which the
// determinism property tests pin). Under ScratchEval the loads of every
// worker are instead recomputed from the full counts matrix.
func (s *searcher) place(st *state, layer, w, c int) (placeRec, bool) {
	r := placeRec{layer: layer, w: w, c: c}
	if c == 0 {
		return r, true
	}
	if s.scratch {
		return r, s.placeScratch(st, layer, w, c)
	}
	r.base = len(st.undoW)
	r.prevMax = st.max
	op := &s.ops[layer]

	st.free[w] -= c
	st.freeTotal -= c
	if st.counts[layer][w] == 0 {
		st.active[layer] = append(st.active[layer], w)
	}
	st.counts[layer][w] += c
	st.placed[layer] += c

	fc := float64(c)
	// Worker w's own delta combines compute, state access and the network
	// charge for the new tasks' links to already-placed downstream tasks on
	// other workers (Eq. 8) — one evaluation for the placement target.
	self := costmodel.Vector{CPU: op.usage.CPU * fc, IO: op.usage.IO * fc}
	if op.usage.Net > 0 && op.outDeg > 0 {
		perLink := op.usage.Net / float64(op.outDeg)
		remote := 0
		for _, dl := range op.downstream {
			remote += st.placed[dl] - st.counts[dl][w]
		}
		if remote > 0 {
			self.Net = perLink * float64(remote) * fc
		}
	}
	st.undoW = append(st.undoW, w)
	st.undoPrev = append(st.undoPrev, st.loads[w])
	st.loads[w] = st.loads[w].Add(self)

	// Network: upstream tasks already placed gain c new downstream links;
	// links from workers other than w are remote (Eq. 8). Only workers that
	// actually hold tasks of the upstream layer are visited.
	for _, ul := range op.upstream {
		up := &s.ops[ul]
		if up.usage.Net == 0 || up.outDeg == 0 {
			continue
		}
		perLink := up.usage.Net / float64(up.outDeg)
		for _, uw := range st.active[ul] {
			if uw == w {
				continue
			}
			st.undoW = append(st.undoW, uw)
			st.undoPrev = append(st.undoPrev, st.loads[uw])
			st.loads[uw] = st.loads[uw].Add(costmodel.Vector{Net: perLink * float64(st.counts[ul][uw]) * fc})
		}
	}

	// Track the bottleneck load: deltas are non-negative, so the maximum
	// only grows and the previous value can be restored on unplace.
	touched := st.undoW[r.base:]
	for _, tw := range touched {
		st.max = st.max.Max(st.loads[tw])
	}

	// Monotonicity-based pruning: check every touched worker.
	s.costEvals.Add(int64(len(touched)))
	for _, tw := range touched {
		if !s.withinBudget(st.loads[tw]) {
			s.budgetPrunes.Add(1)
			return r, false
		}
	}
	return r, true
}

// unplace reverts a place call. Records must be unplaced in LIFO order.
func (s *searcher) unplace(st *state, r placeRec) {
	if r.c == 0 {
		return
	}
	st.free[r.w] += r.c
	st.freeTotal += r.c
	st.counts[r.layer][r.w] -= r.c
	st.placed[r.layer] -= r.c
	if s.scratch {
		return
	}
	if st.counts[r.layer][r.w] == 0 {
		st.active[r.layer] = st.active[r.layer][:len(st.active[r.layer])-1]
	}
	for i := len(st.undoW) - 1; i >= r.base; i-- {
		st.loads[st.undoW[i]] = st.undoPrev[i]
	}
	st.undoW = st.undoW[:r.base]
	st.undoPrev = st.undoPrev[:r.base]
	st.max = r.prevMax
}

// placeScratch is the naive evaluation path: it updates the counts matrix and
// then rebuilds every worker's load vector from scratch before checking the
// budget. Its unplace restores only the counts — any later consumer of loads
// (the next placement or a leaf) recomputes them first.
func (s *searcher) placeScratch(st *state, layer, w, c int) bool {
	st.free[w] -= c
	st.freeTotal -= c
	st.counts[layer][w] += c
	st.placed[layer] += c
	s.recomputeLoads(st, st.loads)
	s.costEvals.Add(int64(s.numWorkers))
	for i := range st.loads {
		if !s.withinBudget(st.loads[i]) {
			s.budgetPrunes.Add(1)
			return false
		}
	}
	return true
}

// leaf handles a complete assignment.
func (s *searcher) leaf(st *state, col *collector) {
	s.plans.Add(1)
	col.plansLocal++
	var bottleneck costmodel.Vector
	if s.scratch {
		// Loads can be stale here when the final placements were zero-count;
		// the naive path recomputes from the full assignment.
		s.recomputeLoads(st, st.loads)
		s.costEvals.Add(int64(s.numWorkers))
		bottleneck = costmodel.MaxLoad(st.loads)
	} else {
		bottleneck = st.max
	}
	cost := costmodel.CostFromLoad(bottleneck, s.bounds)
	col.offer(st.counts, cost)
	if s.mode == FirstFeasible {
		s.stopFlag.Store(true)
	}
}

// searchParallel distributes first-layer subtrees to a pool of workers via a
// shared queue. Each worker keeps a local collector; fronts are merged after
// the space is exhausted.
func (s *searcher) searchParallel(par int) *collector {
	type workItem struct{ st *state }
	queue := make(chan workItem, par*2)

	// Producer: enumerate layer-0 assignments and ship each completed
	// layer-0 state as a subtree root.
	go func() {
		defer close(queue)
		st := newState(len(s.ops), s.numWorkers, s.slots)
		col := newCollector(s) // unused sink for the degenerate 0-layer case
		s.innerSearch(st, 0, 0, s.ops[0].par, -1, st.freeTotal-st.free[0], col, func() bool {
			if s.shouldStop() {
				return false
			}
			select {
			case queue <- workItem{st: st.clone()}:
				return true
			case <-s.ctx.Done():
				return false
			}
		})
	}()

	collectors := make([]*collector, par)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		col := newCollector(s)
		collectors[i] = col
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range queue {
				if s.shouldStop() && s.mode == FirstFeasible {
					continue // drain
				}
				s.searchLayer(item.st, 1, col)
			}
		}()
	}
	wg.Wait()

	merged := newCollector(s)
	for _, col := range collectors {
		merged.merge(col)
	}
	return merged
}

// materialize converts a counts matrix into a concrete Plan, assigning task
// indices of each operator to workers in ascending worker order.
func (s *searcher) materialize(counts [][]int) *dataflow.Plan {
	total := 0
	for _, op := range s.ops {
		total += op.par
	}
	pl := dataflow.NewPlanSized(total)
	for layer, op := range s.ops {
		idx := 0
		for w := 0; w < s.numWorkers; w++ {
			for k := 0; k < counts[layer][w]; k++ {
				pl.Assign(dataflow.TaskID{Op: op.id, Index: idx}, w)
				idx++
			}
		}
	}
	return pl
}

// EnumeratePlans exhaustively enumerates all canonical (duplicate-eliminated)
// placement plans without pruning and returns them with their cost vectors.
// It is intended for small instances (empirical studies and tests, e.g. the
// paper's 80-plan study of Figure 2).
func EnumeratePlans(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage) ([]FrontEntry, error) {
	s, err := newSearcher(ctx, p, c, u, Options{
		Alpha:       Unbounded,
		Mode:        Exhaustive,
		FrontCap:    math.MaxInt32,
		DisableMemo: true,
	})
	if err != nil {
		if errors.Is(err, ErrInsufficientSlots) {
			return nil, ErrInsufficientSlots
		}
		return nil, err
	}
	var all []FrontEntry
	col := newCollector(s)
	st := newState(len(s.ops), s.numWorkers, s.slots)
	// Intercept leaves by wrapping the layer recursion manually.
	var rec func(layer int) bool
	rec = func(layer int) bool {
		if layer == len(s.ops) {
			cost := costmodel.CostFromLoad(st.max, s.bounds)
			all = append(all, FrontEntry{Plan: s.materialize(st.counts), Cost: cost})
			return true
		}
		return s.innerSearch(st, layer, 0, s.ops[layer].par, -1, st.freeTotal-st.free[0], col, func() bool { return rec(layer + 1) })
	}
	rec(0)
	if err := ctx.Err(); err != nil {
		return all, err
	}
	return all, nil
}
