package caps

import (
	"strconv"

	"capsys/internal/costmodel"
)

// Transposition-style memoization of dominated partial states (the prune the
// search applies at layer boundaries).
//
// When the search finishes a layer it stands at an "interface state": the
// remaining layers interact with the completed prefix only through (a) the
// per-worker free-slot vector, (b) the per-worker counts of prefix layers
// adjacent to a remaining layer (the network interface), and (c) the
// equality pattern of full per-worker histories (which drives duplicate
// elimination for the suffix). Prefix layers with no edge into the suffix can
// be permuted freely without changing any of the three, so many distinct
// prefixes collapse onto the same interface key — they differ only in the
// loads they have accumulated.
//
// Loads grow monotonically as tasks are placed, and the load added by any
// suffix completion is a function of the interface alone. So if one prefix
// with loads L was fully explored and its entire subtree violated the
// threshold budget (zero satisfying plans), any later prefix with the same
// interface key and loads >= L element-wise is pruned outright: every one of
// its completions is over budget too. Floating-point addition is monotone,
// so the comparison needs no epsilon. The prune skips no leaves — subtrees
// recorded here contain none — which keeps the satisfying-plan count, the
// Pareto front and the selected plan bit-identical with and without the memo
// (see TestMemoEquivalenceProperty).
//
// The table is per-search-goroutine (no synchronization) and bounded: at
// most memoMaxKeys interface keys, each retaining the memoMaxPerKey least
// restrictive load snapshots.

const (
	memoMaxKeys   = 1 << 16
	memoMaxPerKey = 4
)

type memoTable struct {
	entries map[string][][]costmodel.Vector
}

func newMemoTable() *memoTable {
	return &memoTable{entries: make(map[string][][]costmodel.Vector)}
}

// loadsLeq reports whether a <= b element-wise in every dimension of every
// worker.
func loadsLeq(a, b []costmodel.Vector) bool {
	for i := range a {
		if a[i].CPU > b[i].CPU || a[i].IO > b[i].IO || a[i].Net > b[i].Net {
			return false
		}
	}
	return true
}

// hit reports whether a recorded no-plan state dominates the current loads.
// The []byte key avoids a string allocation: Go elides the conversion in a
// direct map index expression.
func (m *memoTable) hit(key []byte, loads []costmodel.Vector) bool {
	for _, snap := range m.entries[string(key)] {
		if loadsLeq(snap, loads) {
			return true
		}
	}
	return false
}

// record stores loads as a fully-explored no-plan state for key, dropping
// stored entries the new one renders redundant (a smaller snapshot prunes a
// superset of states).
func (m *memoTable) record(key []byte, loads []costmodel.Vector) {
	list, ok := m.entries[string(key)]
	if !ok && len(m.entries) >= memoMaxKeys {
		return
	}
	kept := list[:0]
	for _, snap := range list {
		if !loadsLeq(loads, snap) {
			kept = append(kept, snap)
		}
	}
	if len(kept) >= memoMaxPerKey {
		m.entries[string(key)] = kept
		return
	}
	m.entries[string(key)] = append(kept, append([]costmodel.Vector(nil), loads...))
}

// memoKey renders the interface state entering layer: the counts of prefix
// layers still adjacent to the suffix, the free-slot vector, and the
// canonical worker-partition signature over full prefix histories. Layers
// whose prefix is fully interface-relevant never produce repeat keys, so the
// searcher precomputes memoAt to skip them (see buildMemoPlan).
//
// The key is built into a per-layer buffer owned by the state, so boundary
// visits allocate nothing; the returned slice stays valid across the layer's
// subtree exploration because deeper layers write only their own buffers.
func (s *searcher) memoKey(st *state, layer int) []byte {
	if st.keyBufs == nil {
		st.keyBufs = make([][]byte, len(s.ops))
	}
	b := st.keyBufs[layer][:0]
	b = strconv.AppendInt(b, int64(layer), 10)
	b = append(b, '|')
	for _, l := range s.relevant[layer] {
		for w := 0; w < s.numWorkers; w++ {
			b = strconv.AppendInt(b, int64(st.counts[l][w]), 10)
			b = append(b, ',')
		}
		b = append(b, ';')
	}
	b = append(b, '|')
	for _, f := range st.free {
		b = strconv.AppendInt(b, int64(f), 10)
		b = append(b, ',')
	}
	b = append(b, '|')
	// Partition signature: workers with identical prefix history columns get
	// the same class id, ids assigned in worker order. Duplicate elimination
	// constrains the suffix identically for prefixes with equal signatures.
	if !s.noDupElim {
		st.classRep = st.classRep[:0]
		for w := 0; w < s.numWorkers; w++ {
			id := -1
			for ci, rw := range st.classRep {
				same := true
				for l := 0; l < layer; l++ {
					if st.counts[l][w] != st.counts[l][rw] {
						same = false
						break
					}
				}
				if same {
					id = ci
					break
				}
			}
			if id < 0 {
				id = len(st.classRep)
				st.classRep = append(st.classRep, w)
			}
			b = strconv.AppendInt(b, int64(id), 10)
			b = append(b, '.')
		}
	}
	st.keyBufs[layer] = b
	return b
}

// buildMemoPlan computes, per layer, which prefix layers remain
// interface-relevant (adjacent to any layer >= k) and whether memoization at
// that boundary can ever pay off: if every prefix layer is part of the
// interface, the key pins the whole prefix and each key occurs exactly once.
func (s *searcher) buildMemoPlan() {
	n := len(s.ops)
	s.relevant = make([][]int, n)
	s.memoAt = make([]bool, n)
	maxAdj := make([]int, n)
	for l := range s.ops {
		maxAdj[l] = -1
		for _, m := range s.ops[l].upstream {
			if m > maxAdj[l] {
				maxAdj[l] = m
			}
		}
		for _, m := range s.ops[l].downstream {
			if m > maxAdj[l] {
				maxAdj[l] = m
			}
		}
	}
	for k := 1; k < n; k++ {
		for l := 0; l < k; l++ {
			if maxAdj[l] >= k {
				s.relevant[k] = append(s.relevant[k], l)
			}
		}
		s.memoAt[k] = len(s.relevant[k]) < k
	}
}
