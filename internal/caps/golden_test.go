package caps

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"capsys/internal/clock"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
)

// goldenClock pins the search's only time source: with a fixed clock the
// whole Result — Elapsed included — is a pure function of the inputs, so
// golden comparisons need no timing carve-outs.
var goldenClock = clock.Fixed(time.Unix(1700000000, 0))

// TestSearchClockInjection pins the injectable-clock contract: the search
// reads time only through Options.Now, so a stepping clock makes Elapsed
// itself deterministic — two identical runs report the identical value.
func TestSearchClockInjection(t *testing.T) {
	p, c, u := paperExample(t)
	run := func() *Result {
		res, err := Search(context.Background(), p, c, u, Options{
			Alpha: Unbounded,
			Mode:  Exhaustive,
			Now:   clock.Step(time.Unix(1700000000, 0), time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats.Elapsed != b.Stats.Elapsed {
		t.Errorf("stepped clock: Elapsed differs across identical runs (%v vs %v)", a.Stats.Elapsed, b.Stats.Elapsed)
	}
	if a.Stats.Elapsed <= 0 {
		t.Errorf("stepped clock advances per read; want positive Elapsed, got %v", a.Stats.Elapsed)
	}
}

// searchGolden is the pinned outcome of the fixed paper-example search. It
// deliberately includes the traversal-dependent effort counters: a refactor
// that changes the exploration order, the pruning behavior or the evaluation
// accounting must update the golden file explicitly (UPDATE_GOLDEN=1) instead
// of drifting silently.
type searchGolden struct {
	Feasible bool `json:"feasible"`
	// Assignment maps operator -> per-worker task counts of the selected plan.
	Assignment map[string][]int `json:"assignment"`
	Cost       costmodel.Vector `json:"cost"`
	FrontSize  int              `json:"front_size"`
	Stats      struct {
		Nodes        int64 `json:"nodes"`
		Plans        int64 `json:"plans"`
		CostEvals    int64 `json:"cost_evals"`
		MemoPrunes   int64 `json:"memo_prunes"`
		BudgetPrunes int64 `json:"budget_prunes"`
	} `json:"stats"`
}

// TestSearchGolden pins the result of a deterministic paper-example search:
// Q3-inf on the 8-worker x 4-slot cluster of Table 2, with the Figure 10
// mid-tier thresholds, exhaustive mode, reordering and memoization on,
// serial. Regenerate with UPDATE_GOLDEN=1 go test ./internal/caps -run
// TestSearchGolden.
func TestSearchGolden(t *testing.T) {
	spec := nexmark.Q3Inf()
	c, err := cluster.Homogeneous(8, 4, 4.0, 200e6, 1.25e9)
	if err != nil {
		t.Fatal(err)
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := dataflow.PropagateRates(spec.Graph, spec.SourceRates)
	if err != nil {
		t.Fatal(err)
	}
	u := costmodel.FromRates(spec.Graph, rates)

	res, err := Search(context.Background(), phys, c, u, Options{
		Alpha:   costmodel.Vector{CPU: 0.15, IO: 0.25, Net: 0.8},
		Mode:    Exhaustive,
		Reorder: true,
		Now:     goldenClock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("paper-example search found no feasible plan")
	}
	if res.Stats.Elapsed != 0 {
		t.Fatalf("fixed clock must pin Elapsed to 0, got %v", res.Stats.Elapsed)
	}

	var got searchGolden
	got.Feasible = res.Feasible
	got.Assignment = make(map[string][]int)
	for w := 0; w < c.NumWorkers(); w++ {
		for op, n := range res.Plan.OpCountsOn(w) {
			counts, ok := got.Assignment[string(op)]
			if !ok {
				counts = make([]int, c.NumWorkers())
				got.Assignment[string(op)] = counts
			}
			counts[w] = n
		}
	}
	got.Cost = res.Cost
	got.FrontSize = len(res.Front)
	got.Stats.Nodes = res.Stats.Nodes
	got.Stats.Plans = res.Stats.Plans
	got.Stats.CostEvals = res.Stats.CostEvals
	got.Stats.MemoPrunes = res.Stats.MemoPrunes
	got.Stats.BudgetPrunes = res.Stats.BudgetPrunes

	path := filepath.Join("testdata", "search_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	var want searchGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		gb, _ := json.MarshalIndent(got, "", "  ")
		t.Errorf("search outcome diverged from golden file.\ngot:\n%s\n\nIf the change is intentional (e.g. a traversal-order refactor), regenerate with UPDATE_GOLDEN=1.", gb)
	}

	// The golden run is also required to be stable across repetitions and
	// across parallel execution (deterministic tie-breaking): repeat once in
	// parallel mode and compare the selected plan.
	par, err := Search(context.Background(), phys, c, u, Options{
		Alpha:       costmodel.Vector{CPU: 0.15, IO: 0.25, Net: 0.8},
		Mode:        Exhaustive,
		Reorder:     true,
		Parallelism: 4,
		Now:         goldenClock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Plan.Equal(res.Plan) {
		t.Error("parallel search selected a different plan than the serial golden run")
	}
	if par.Stats.Plans != res.Stats.Plans {
		t.Errorf("parallel search found %d plans, serial %d", par.Stats.Plans, res.Stats.Plans)
	}
}
