package caps

import (
	"context"
	"math"
	"testing"

	"capsys/internal/costmodel"
)

// Duplicate elimination is a pure symmetry breaker: it must not change the
// best cost or the set of distinct costs, only the amount of work.
func TestDuplicateEliminationAblation(t *testing.T) {
	p, c, u := paperExample(t)
	with, err := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Search(context.Background(), p, c, u, Options{
		Alpha: Unbounded, Mode: Exhaustive, DisableDuplicateElimination: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.Stats.Plans <= with.Stats.Plans {
		t.Errorf("disabling dup-elim did not enlarge the space: %d <= %d",
			without.Stats.Plans, with.Stats.Plans)
	}
	if without.Stats.Nodes <= with.Stats.Nodes {
		t.Errorf("disabling dup-elim did not expand more nodes: %d <= %d",
			without.Stats.Nodes, with.Stats.Nodes)
	}
	if math.Abs(costmodel.ScalarCost(with.Cost)-costmodel.ScalarCost(without.Cost)) > 1e-9 {
		t.Errorf("dup-elim changed the optimum: %v vs %v", with.Cost, without.Cost)
	}
}

// The parallel search must scale without changing results for any worker
// count.
func TestParallelSearchWorkerCounts(t *testing.T) {
	p, c, u := paperExample(t)
	ref, err := Search(context.Background(), p, c, u, Options{Alpha: Unbounded, Mode: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 3, 8} {
		got, err := Search(context.Background(), p, c, u, Options{
			Alpha: Unbounded, Mode: Exhaustive, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Plans != ref.Stats.Plans {
			t.Errorf("par=%d: plans %d != %d", par, got.Stats.Plans, ref.Stats.Plans)
		}
		if !got.Plan.Equal(ref.Plan) {
			t.Errorf("par=%d: best plan differs", par)
		}
	}
}
