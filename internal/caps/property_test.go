package caps

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

// randomInstance builds a random small placement problem: a layered DAG of
// 2-4 operators with random parallelism and costs, on a random cluster just
// big enough to host it.
func randomInstance(rng *rand.Rand) (*dataflow.PhysicalGraph, *cluster.Cluster, *costmodel.Usage, error) {
	numOps := 2 + rng.Intn(3)
	g := dataflow.NewLogicalGraph()
	var ids []dataflow.OperatorID
	for i := 0; i < numOps; i++ {
		id := dataflow.OperatorID(fmt.Sprintf("op%d", i))
		kind := dataflow.KindMap
		if i == 0 {
			kind = dataflow.KindSource
		}
		if i == numOps-1 {
			kind = dataflow.KindSink
		}
		op := dataflow.Operator{
			ID:          id,
			Kind:        kind,
			Parallelism: 1 + rng.Intn(3),
			Selectivity: 0.25 + rng.Float64(),
			Cost: dataflow.UnitCost{
				CPU: rng.Float64() * 1e-3,
				IO:  rng.Float64() * 1000,
				Net: rng.Float64() * 200,
			},
		}
		if err := g.AddOperator(op); err != nil {
			return nil, nil, nil, err
		}
		ids = append(ids, id)
	}
	// Chain edges plus an occasional skip edge.
	for i := 1; i < numOps; i++ {
		if err := g.AddEdge(dataflow.Edge{From: ids[i-1], To: ids[i]}); err != nil {
			return nil, nil, nil, err
		}
	}
	if numOps >= 3 && rng.Intn(2) == 0 {
		_ = g.AddEdge(dataflow.Edge{From: ids[0], To: ids[2]})
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		return nil, nil, nil, err
	}
	numWorkers := 2 + rng.Intn(2)
	slots := (phys.NumTasks() + numWorkers - 1) / numWorkers
	slots += rng.Intn(2)
	c, err := cluster.Homogeneous(numWorkers, slots, 4, 100e6, 1e9)
	if err != nil {
		return nil, nil, nil, err
	}
	rates, err := dataflow.PropagateRates(g, map[dataflow.OperatorID]float64{ids[0]: 100 + rng.Float64()*2000})
	if err != nil {
		return nil, nil, nil, err
	}
	return phys, c, costmodel.FromRates(g, rates), nil
}

// Property: on random small instances, the exhaustive search returns a plan
// whose scalar cost equals the brute-force minimum, the plan validates, and
// plan counts agree.
func TestSearchOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			t.Logf("instance construction failed: %v", err)
			return false
		}
		all, err := EnumeratePlans(context.Background(), phys, c, u)
		if err != nil || len(all) == 0 {
			return false
		}
		best := math.Inf(1)
		for _, fe := range all {
			if s := costmodel.ScalarCost(fe.Cost); s < best {
				best = s
			}
		}
		res, err := Search(context.Background(), phys, c, u, Options{Alpha: Unbounded, Mode: Exhaustive})
		if err != nil || !res.Feasible {
			return false
		}
		slots, _ := c.SlotsPerWorker()
		if res.Plan.Validate(phys, c.NumWorkers(), slots) != nil {
			return false
		}
		if res.Stats.Plans != int64(len(all)) {
			return false
		}
		return math.Abs(costmodel.ScalarCost(res.Cost)-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: threshold pruning is sound on random instances — the number of
// satisfying plans found under a random alpha equals the brute-force count.
func TestPruningSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			return false
		}
		alpha := costmodel.Vector{
			CPU: rng.Float64(),
			IO:  rng.Float64(),
			Net: rng.Float64(),
		}
		all, err := EnumeratePlans(context.Background(), phys, c, u)
		if err != nil {
			return false
		}
		want := int64(0)
		for _, fe := range all {
			if fe.Cost.LeqAll(alpha) {
				want++
			}
		}
		res, err := Search(context.Background(), phys, c, u, Options{Alpha: alpha, Mode: Exhaustive})
		if err != nil {
			return false
		}
		if res.Stats.Plans != want {
			t.Logf("seed %d: pruned found %d, brute force %d (alpha %v)", seed, res.Stats.Plans, want, alpha)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: reordering never changes the satisfying-plan count.
func TestReorderingInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			return false
		}
		alpha := costmodel.Vector{CPU: 0.3 + rng.Float64()*0.7, IO: 0.3 + rng.Float64()*0.7, Net: 0.5 + rng.Float64()*0.5}
		plain, err := Search(context.Background(), phys, c, u, Options{Alpha: alpha, Mode: Exhaustive})
		if err != nil {
			return false
		}
		reord, err := Search(context.Background(), phys, c, u, Options{Alpha: alpha, Mode: Exhaustive, Reorder: true})
		if err != nil {
			return false
		}
		return plain.Stats.Plans == reord.Stats.Plans &&
			math.Abs(costmodel.ScalarCost(plain.Cost)-costmodel.ScalarCost(reord.Cost)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
