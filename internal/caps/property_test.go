package caps

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

// randomInstance builds a random small placement problem: a layered DAG of
// 2-4 operators with random parallelism and costs, on a random cluster just
// big enough to host it.
func randomInstance(rng *rand.Rand) (*dataflow.PhysicalGraph, *cluster.Cluster, *costmodel.Usage, error) {
	numOps := 2 + rng.Intn(3)
	g := dataflow.NewLogicalGraph()
	var ids []dataflow.OperatorID
	for i := 0; i < numOps; i++ {
		id := dataflow.OperatorID(fmt.Sprintf("op%d", i))
		kind := dataflow.KindMap
		if i == 0 {
			kind = dataflow.KindSource
		}
		if i == numOps-1 {
			kind = dataflow.KindSink
		}
		op := dataflow.Operator{
			ID:          id,
			Kind:        kind,
			Parallelism: 1 + rng.Intn(3),
			Selectivity: 0.25 + rng.Float64(),
			Cost: dataflow.UnitCost{
				CPU: rng.Float64() * 1e-3,
				IO:  rng.Float64() * 1000,
				Net: rng.Float64() * 200,
			},
		}
		if err := g.AddOperator(op); err != nil {
			return nil, nil, nil, err
		}
		ids = append(ids, id)
	}
	// Chain edges plus an occasional skip edge.
	for i := 1; i < numOps; i++ {
		if err := g.AddEdge(dataflow.Edge{From: ids[i-1], To: ids[i]}); err != nil {
			return nil, nil, nil, err
		}
	}
	if numOps >= 3 && rng.Intn(2) == 0 {
		_ = g.AddEdge(dataflow.Edge{From: ids[0], To: ids[2]})
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		return nil, nil, nil, err
	}
	numWorkers := 2 + rng.Intn(2)
	slots := (phys.NumTasks() + numWorkers - 1) / numWorkers
	slots += rng.Intn(2)
	c, err := cluster.Homogeneous(numWorkers, slots, 4, 100e6, 1e9)
	if err != nil {
		return nil, nil, nil, err
	}
	rates, err := dataflow.PropagateRates(g, map[dataflow.OperatorID]float64{ids[0]: 100 + rng.Float64()*2000})
	if err != nil {
		return nil, nil, nil, err
	}
	return phys, c, costmodel.FromRates(g, rates), nil
}

// Property: on random small instances, the exhaustive search returns a plan
// whose scalar cost equals the brute-force minimum, the plan validates, and
// plan counts agree.
func TestSearchOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			t.Logf("instance construction failed: %v", err)
			return false
		}
		all, err := EnumeratePlans(context.Background(), phys, c, u)
		if err != nil || len(all) == 0 {
			return false
		}
		best := math.Inf(1)
		for _, fe := range all {
			if s := costmodel.ScalarCost(fe.Cost); s < best {
				best = s
			}
		}
		res, err := Search(context.Background(), phys, c, u, Options{Alpha: Unbounded, Mode: Exhaustive, Now: goldenClock})
		if err != nil || !res.Feasible {
			return false
		}
		slots, _ := c.SlotsPerWorker()
		if res.Plan.Validate(phys, c.NumWorkers(), slots) != nil {
			return false
		}
		if res.Stats.Plans != int64(len(all)) {
			return false
		}
		return math.Abs(costmodel.ScalarCost(res.Cost)-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: threshold pruning is sound on random instances — the number of
// satisfying plans found under a random alpha equals the brute-force count.
func TestPruningSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			return false
		}
		alpha := costmodel.Vector{
			CPU: rng.Float64(),
			IO:  rng.Float64(),
			Net: rng.Float64(),
		}
		all, err := EnumeratePlans(context.Background(), phys, c, u)
		if err != nil {
			return false
		}
		want := int64(0)
		for _, fe := range all {
			if fe.Cost.LeqAll(alpha) {
				want++
			}
		}
		res, err := Search(context.Background(), phys, c, u, Options{Alpha: alpha, Mode: Exhaustive, Now: goldenClock})
		if err != nil {
			return false
		}
		if res.Stats.Plans != want {
			t.Logf("seed %d: pruned found %d, brute force %d (alpha %v)", seed, res.Stats.Plans, want, alpha)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// vecClose compares two vectors with relative tolerance: the incremental
// evaluator accumulates contributions in DFS order, the reference evaluator
// layer by layer, so the floats may differ by rounding.
func vecClose(a, b costmodel.Vector) bool {
	close := func(x, y float64) bool { return math.Abs(x-y) <= 1e-9*(1+math.Abs(y)) }
	return close(a.CPU, b.CPU) && close(a.IO, b.IO) && close(a.Net, b.Net)
}

// Property: after any LIFO sequence of place/undo operations, the
// incrementally maintained per-worker loads, free-slot total and bottleneck
// vector exactly match a from-scratch recomputation of the same counts
// matrix.
func TestIncrementalEvalMatchesScratchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			return false
		}
		s, err := newSearcher(context.Background(), phys, c, u, Options{Alpha: Unbounded})
		if err != nil {
			return false
		}
		st := newState(len(s.ops), s.numWorkers, s.slots)
		ref := make([]costmodel.Vector, s.numWorkers)
		check := func() bool {
			s.recomputeLoads(st, ref)
			for w := range ref {
				if !vecClose(st.loads[w], ref[w]) {
					t.Logf("seed %d: worker %d incremental %v scratch %v", seed, w, st.loads[w], ref[w])
					return false
				}
			}
			free := 0
			for _, fr := range st.free {
				free += fr
			}
			if free != st.freeTotal {
				t.Logf("seed %d: freeTotal %d, sum(free) %d", seed, st.freeTotal, free)
				return false
			}
			// The running bottleneck is an element-wise max of the very same
			// floats, so it must match bitwise.
			if st.max != costmodel.MaxLoad(st.loads) {
				t.Logf("seed %d: max %v, MaxLoad %v", seed, st.max, costmodel.MaxLoad(st.loads))
				return false
			}
			return true
		}
		// Random walk: push placements and pop undos in stack order, the same
		// discipline the DFS follows.
		var stack []placeRec
		for step := 0; step < 120; step++ {
			if len(stack) > 0 && rng.Intn(3) == 0 {
				s.unplace(st, stack[len(stack)-1])
				stack = stack[:len(stack)-1]
			} else {
				layer := rng.Intn(len(s.ops))
				if st.placed[layer] == s.ops[layer].par {
					continue
				}
				w := rng.Intn(s.numWorkers)
				room := s.ops[layer].par - st.placed[layer]
				if st.free[w] < room {
					room = st.free[w]
				}
				if room == 0 {
					continue
				}
				rec, ok := s.place(st, layer, w, 1+rng.Intn(room))
				if !ok { // unbounded alpha: placements never go over budget
					s.unplace(st, rec)
					t.Logf("seed %d: place rejected under unbounded alpha", seed)
					return false
				}
				stack = append(stack, rec)
			}
			if !check() {
				return false
			}
		}
		for len(stack) > 0 {
			s.unplace(st, stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the ScratchEval ablation mode explores the same tree and finds
// the same plans, front and argmin as the incremental evaluator — only the
// evaluation effort differs (scratch pays numWorkers load evaluations per
// step, incremental pays one per touched worker).
func TestScratchSearchEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			return false
		}
		alpha := costmodel.Vector{CPU: 0.3 + rng.Float64()*0.7, IO: 0.3 + rng.Float64()*0.7, Net: 0.3 + rng.Float64()*0.7}
		base := Options{Alpha: alpha, Mode: Exhaustive, FrontCap: 1 << 20, DisableMemo: true, Now: goldenClock}
		inc, err := Search(context.Background(), phys, c, u, base)
		if err != nil {
			return false
		}
		scrOpts := base
		scrOpts.ScratchEval = true
		scr, err := Search(context.Background(), phys, c, u, scrOpts)
		if err != nil {
			return false
		}
		if inc.Stats.Plans != scr.Stats.Plans || inc.Stats.Nodes != scr.Stats.Nodes {
			t.Logf("seed %d: incremental plans=%d nodes=%d, scratch plans=%d nodes=%d",
				seed, inc.Stats.Plans, inc.Stats.Nodes, scr.Stats.Plans, scr.Stats.Nodes)
			return false
		}
		if inc.Feasible != scr.Feasible {
			return false
		}
		if inc.Feasible && !vecClose(inc.Cost, scr.Cost) {
			t.Logf("seed %d: incremental cost %v, scratch cost %v", seed, inc.Cost, scr.Cost)
			return false
		}
		// Fronts are deliberately not compared here: the two modes sum the
		// same load contributions in different orders, so costs that are
		// exactly equal in one mode can come out 1 ulp apart in the other —
		// enough to flip weak Pareto dominance between equal-bottleneck
		// plans and change front membership. Identical tree shape (Nodes),
		// identical satisfying-plan count and a matching argmin cost pin the
		// equivalence that matters; exact front identity is asserted where
		// the arithmetic is bitwise-reproducible (warm/parallel/memo tests).
		// Effort bound: per placement, scratch charges numWorkers evaluations
		// while incremental charges one for the placed worker plus one per
		// active worker of each upstream layer — at most maxUpDeg*numWorkers.
		// So incremental <= maxUpDeg*scratch always; the fig7-scale benchmark
		// pins the typical-case >=2x advantage the bound doesn't capture.
		maxUpDeg := int64(1)
		for _, op := range phys.Logical.Operators() {
			if d := int64(len(phys.Logical.Upstream(op.ID))); d > maxUpDeg {
				maxUpDeg = d
			}
		}
		if scr.Stats.CostEvals*maxUpDeg < inc.Stats.CostEvals {
			t.Logf("seed %d: scratch evals %d (maxUpDeg %d) < incremental evals %d",
				seed, scr.Stats.CostEvals, maxUpDeg, inc.Stats.CostEvals)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// frontsEquivalent compares two Pareto fronts as cost-keyed sets of plans:
// same length, and for every cost the deterministic representative plan.
func frontsEquivalent(a, b []FrontEntry) bool {
	if len(a) != len(b) {
		return false
	}
	sortFront := func(fs []FrontEntry) {
		sort.Slice(fs, func(i, j int) bool {
			ci, cj := fs[i].Cost, fs[j].Cost
			if ci.CPU != cj.CPU {
				return ci.CPU < cj.CPU
			}
			if ci.IO != cj.IO {
				return ci.IO < cj.IO
			}
			return ci.Net < cj.Net
		})
	}
	sortFront(a)
	sortFront(b)
	for i := range a {
		if !vecClose(a[i].Cost, b[i].Cost) || !a[i].Plan.Equal(b[i].Plan) {
			return false
		}
	}
	return true
}

// Property: warm-starting only permutes the exploration order. An exhaustive
// warm search returns the identical plan count, argmin plan and front as the
// cold search at every parallelism level, and a first-feasible search seeded
// with a feasible plan never expands more nodes than the cold search.
func TestWarmStartFrontierEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			return false
		}
		alpha := costmodel.Vector{CPU: 0.4 + rng.Float64()*0.6, IO: 0.4 + rng.Float64()*0.6, Net: 0.4 + rng.Float64()*0.6}
		base := Options{Alpha: alpha, Mode: Exhaustive, FrontCap: 1 << 20, Now: goldenClock}
		cold, err := Search(context.Background(), phys, c, u, base)
		if err != nil {
			return false
		}
		if !cold.Feasible {
			return true // nothing to seed with; vacuous instance
		}
		for par := 1; par <= 3; par++ {
			warmOpts := base
			warmOpts.Warm = cold.Plan
			warmOpts.Parallelism = par
			warm, err := Search(context.Background(), phys, c, u, warmOpts)
			if err != nil {
				return false
			}
			if !warm.Stats.WarmStarted {
				return false
			}
			if warm.Stats.Plans != cold.Stats.Plans || !warm.Plan.Equal(cold.Plan) {
				t.Logf("seed %d par %d: warm plans=%d cold plans=%d planEq=%v",
					seed, par, warm.Stats.Plans, cold.Stats.Plans, warm.Plan.Equal(cold.Plan))
				return false
			}
			if !frontsEquivalent(warm.Front, cold.Front) {
				t.Logf("seed %d par %d: warm front differs from cold", seed, par)
				return false
			}
		}
		// A first-feasible search seeded with a feasible plan descends straight
		// to that plan: it returns the seed itself, in at most one node per
		// (layer, worker) choice point.
		ffWarm, err := Search(context.Background(), phys, c, u, Options{Alpha: alpha, Mode: FirstFeasible, Warm: cold.Plan, Now: goldenClock})
		if err != nil || !ffWarm.Feasible {
			return false
		}
		if !ffWarm.Plan.Equal(cold.Plan) {
			t.Logf("seed %d: warm first-feasible did not return the feasible seed", seed)
			return false
		}
		maxDescent := int64(phys.Logical.NumOperators() * c.NumWorkers())
		if ffWarm.Stats.Nodes > maxDescent {
			t.Logf("seed %d: warm first-feasible expanded %d nodes, descent bound %d", seed, ffWarm.Stats.Nodes, maxDescent)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: parallel and serial exhaustive searches select the same argmin
// plan and the same front — the deterministic countsKey tie-breaking makes
// the merged result independent of goroutine interleaving.
func TestParallelDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			return false
		}
		alpha := costmodel.Vector{CPU: 0.4 + rng.Float64()*0.6, IO: 0.4 + rng.Float64()*0.6, Net: 0.4 + rng.Float64()*0.6}
		base := Options{Alpha: alpha, Mode: Exhaustive, FrontCap: 1 << 20, Now: goldenClock}
		serial, err := Search(context.Background(), phys, c, u, base)
		if err != nil {
			return false
		}
		for _, par := range []int{2, 4} {
			opts := base
			opts.Parallelism = par
			res, err := Search(context.Background(), phys, c, u, opts)
			if err != nil {
				return false
			}
			if res.Feasible != serial.Feasible || res.Stats.Plans != serial.Stats.Plans {
				return false
			}
			if serial.Feasible && !res.Plan.Equal(serial.Plan) {
				t.Logf("seed %d par %d: parallel argmin differs from serial", seed, par)
				return false
			}
			if !frontsEquivalent(res.Front, serial.Front) {
				t.Logf("seed %d par %d: parallel front differs from serial", seed, par)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: memoized dominated-state pruning never changes the result — same
// satisfying-plan count, argmin and front — and never increases the node
// count.
func TestMemoEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			return false
		}
		alpha := costmodel.Vector{CPU: 0.2 + rng.Float64()*0.6, IO: 0.2 + rng.Float64()*0.6, Net: 0.2 + rng.Float64()*0.6}
		base := Options{Alpha: alpha, Mode: Exhaustive, FrontCap: 1 << 20, Now: goldenClock}
		withMemo, err := Search(context.Background(), phys, c, u, base)
		if err != nil {
			return false
		}
		noMemoOpts := base
		noMemoOpts.DisableMemo = true
		noMemo, err := Search(context.Background(), phys, c, u, noMemoOpts)
		if err != nil {
			return false
		}
		if withMemo.Stats.Plans != noMemo.Stats.Plans || withMemo.Feasible != noMemo.Feasible {
			t.Logf("seed %d: memo plans=%d, no-memo plans=%d", seed, withMemo.Stats.Plans, noMemo.Stats.Plans)
			return false
		}
		if withMemo.Feasible && !withMemo.Plan.Equal(noMemo.Plan) {
			return false
		}
		if !frontsEquivalent(withMemo.Front, noMemo.Front) {
			return false
		}
		if withMemo.Stats.Nodes > noMemo.Stats.Nodes {
			t.Logf("seed %d: memo nodes %d > no-memo nodes %d", seed, withMemo.Stats.Nodes, noMemo.Stats.Nodes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: reordering never changes the satisfying-plan count.
func TestReorderingInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys, c, u, err := randomInstance(rng)
		if err != nil {
			return false
		}
		alpha := costmodel.Vector{CPU: 0.3 + rng.Float64()*0.7, IO: 0.3 + rng.Float64()*0.7, Net: 0.5 + rng.Float64()*0.5}
		plain, err := Search(context.Background(), phys, c, u, Options{Alpha: alpha, Mode: Exhaustive, Now: goldenClock})
		if err != nil {
			return false
		}
		reord, err := Search(context.Background(), phys, c, u, Options{Alpha: alpha, Mode: Exhaustive, Reorder: true, Now: goldenClock})
		if err != nil {
			return false
		}
		return plain.Stats.Plans == reord.Stats.Plans &&
			math.Abs(costmodel.ScalarCost(plain.Cost)-costmodel.ScalarCost(reord.Cost)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
