package dataflow

import (
	"fmt"
	"strings"
)

// ChainResult describes a chaining transformation: the chained graph plus
// the mapping from each chained operator back to the original operators it
// absorbed (in pipeline order).
type ChainResult struct {
	Graph *LogicalGraph
	// Members maps every operator ID in the chained graph to the original
	// operator IDs it contains (a single element for unchained operators).
	Members map[OperatorID][]OperatorID
}

// Chain collapses eligible operator pipelines into single logical operators,
// the way Flink's operator chaining fuses one-to-one connected operators
// into a single task. CAPS then treats each chain as one operator during
// profiling and search (paper §6.1).
//
// A pair (A, B) is chained when B is A's only downstream, A is B's only
// upstream, both have equal parallelism, and the edge is Forward. Chains of
// arbitrary length are collapsed transitively. The combined operator keeps
// the head's kind, sums the per-record CPU and IO costs (scaling downstream
// members by the upstream selectivity product, since they see fewer or more
// records per head-input record), takes the tail's Net cost scaled the same
// way, and multiplies selectivities.
func Chain(g *LogicalGraph) (*ChainResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Identify chain heads and walk each chain to its tail.
	chainNext := func(id OperatorID) (OperatorID, bool) {
		return PipelinedSuccessor(g, id)
	}
	inChain := make(map[OperatorID]bool)
	var chains [][]OperatorID
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		if inChain[id] {
			continue
		}
		chain := []OperatorID{id}
		cur := id
		for {
			next, ok := chainNext(cur)
			if !ok || inChain[next] {
				break
			}
			chain = append(chain, next)
			cur = next
		}
		for _, m := range chain {
			inChain[m] = true
		}
		chains = append(chains, chain)
	}

	res := &ChainResult{Graph: NewLogicalGraph(), Members: make(map[OperatorID][]OperatorID)}
	headOf := make(map[OperatorID]OperatorID) // original -> chained ID
	for _, chain := range chains {
		head := g.Operator(chain[0])
		combined := Operator{
			ID:          chainID(chain),
			Kind:        head.Kind,
			Parallelism: head.Parallelism,
			Selectivity: 1,
			Cost:        UnitCost{},
		}
		// Per head-input record, member i sees selectivityProduct(0..i-1)
		// records.
		scale := 1.0
		for _, mid := range chain {
			m := g.Operator(mid)
			combined.Cost.CPU += m.Cost.CPU * scale
			combined.Cost.IO += m.Cost.IO * scale
			scale *= m.Selectivity
			combined.Selectivity *= m.Selectivity
		}
		// The chain's emitted bytes are the tail's output: tail Net cost is
		// per tail-input record, so scale by records reaching the tail.
		tail := g.Operator(chain[len(chain)-1])
		tailScale := 1.0
		for _, mid := range chain[:len(chain)-1] {
			tailScale *= g.Operator(mid).Selectivity
		}
		combined.Cost.Net = tail.Cost.Net * tailScale
		if err := res.Graph.AddOperator(combined); err != nil {
			return nil, err
		}
		res.Members[combined.ID] = append([]OperatorID(nil), chain...)
		for _, mid := range chain {
			headOf[mid] = combined.ID
		}
	}
	// Re-create edges between chains (edges internal to a chain vanish).
	seen := make(map[Edge]bool)
	for _, e := range g.Edges() {
		from, to := headOf[e.From], headOf[e.To]
		if from == to {
			continue
		}
		ne := Edge{From: from, To: to, Mode: e.Mode}
		if ne.Mode == Forward && res.Graph.Operator(from).Parallelism != res.Graph.Operator(to).Parallelism {
			ne.Mode = AllToAll
		}
		if seen[ne] {
			continue
		}
		seen[ne] = true
		if err := res.Graph.AddEdge(ne); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// PipelinedSuccessor reports the operator that id feeds through a pure
// pipelined edge: B is A's only downstream, A is B's only upstream, both
// have equal parallelism, and the edge mode is Forward. These are exactly
// the conditions under which task i of A and task i of B exchange records
// 1:1 with no repartitioning and no fan-in — so the pair may be chained by
// Chain (one logical operator for placement) or fused by the engine (one
// goroutine and direct calls when the plan co-locates the pair). Joins can
// never be a successor (they have two upstreams) and fan-outs can never be
// a predecessor (they have two downstreams).
func PipelinedSuccessor(g *LogicalGraph, id OperatorID) (OperatorID, bool) {
	downs := g.Downstream(id)
	if len(downs) != 1 {
		return "", false
	}
	next := downs[0]
	if len(g.Upstream(next)) != 1 {
		return "", false
	}
	if g.Operator(id).Parallelism != g.Operator(next).Parallelism {
		return "", false
	}
	for _, e := range g.Edges() {
		if e.From == id && e.To == next {
			if e.Mode == Forward {
				return next, true
			}
			return "", false
		}
	}
	return "", false
}

func chainID(members []OperatorID) OperatorID {
	if len(members) == 1 {
		return members[0]
	}
	parts := make([]string, len(members))
	for i, m := range members {
		parts[i] = string(m)
	}
	return OperatorID(strings.Join(parts, "+"))
}

// ExpandChainedPlan translates a placement plan computed on a chained graph
// back onto the original graph: every member task of a chain inherits the
// chain task's worker (they share a slot pipeline in Flink terms; under the
// paper's observation that slot sharing is equivalent to more slots per
// worker, we keep the 1-slot-per-task model and require the caller to
// provide enough slots).
func ExpandChainedPlan(cr *ChainResult, plan *Plan) (*Plan, error) {
	out := NewPlan()
	for chained, members := range cr.Members {
		par := cr.Graph.Operator(chained).Parallelism
		for idx := 0; idx < par; idx++ {
			w, ok := plan.Worker(TaskID{Op: chained, Index: idx})
			if !ok {
				return nil, fmt.Errorf("dataflow: chained task %s[%d] unassigned", chained, idx)
			}
			for _, m := range members {
				out.Assign(TaskID{Op: m, Index: idx}, w)
			}
		}
	}
	return out, nil
}
