package dataflow

import "fmt"

// SkewGroup describes one placement group of a skewed operator: Tasks of
// its tasks that together receive RateShare of the operator's input (paper
// §5.2: partitioning techniques organize tasks of an operator into
// placement groups with equal per-group resource demand; each group is then
// explored as an individual layer by CAPS).
type SkewGroup struct {
	Tasks     int
	RateShare float64
}

// SkewResult is the outcome of SplitForSkew.
type SkewResult struct {
	// Graph is the transformed graph where the skewed operator is replaced
	// by one virtual operator per group.
	Graph *LogicalGraph
	// Original is the split operator's ID.
	Original OperatorID
	// Groups holds the virtual operator IDs in group order.
	Groups []OperatorID
}

// SplitForSkew replaces operator op with one virtual operator per placement
// group. Group i has parallelism groups[i].Tasks and receives
// groups[i].RateShare of the operator's input (via Operator.InputShare), so
// its tasks' usage vectors reflect the skewed per-task load. Task counts
// must sum to op's parallelism and rate shares to 1.
func SplitForSkew(g *LogicalGraph, op OperatorID, groups []SkewGroup) (*SkewResult, error) {
	orig := g.Operator(op)
	if orig == nil {
		return nil, fmt.Errorf("dataflow: unknown operator %q", op)
	}
	if len(groups) < 2 {
		return nil, fmt.Errorf("dataflow: need at least 2 groups, got %d", len(groups))
	}
	totTasks, totShare := 0, 0.0
	for i, gr := range groups {
		if gr.Tasks <= 0 || gr.RateShare <= 0 {
			return nil, fmt.Errorf("dataflow: group %d has non-positive tasks or share", i)
		}
		totTasks += gr.Tasks
		totShare += gr.RateShare
	}
	if totTasks != orig.Parallelism {
		return nil, fmt.Errorf("dataflow: group tasks sum to %d, operator has %d", totTasks, orig.Parallelism)
	}
	if totShare < 0.999 || totShare > 1.001 {
		return nil, fmt.Errorf("dataflow: rate shares sum to %v, want 1", totShare)
	}

	res := &SkewResult{Original: op}
	out := NewLogicalGraph()
	for _, o := range g.Operators() {
		if o.ID == op {
			for i, gr := range groups {
				vid := OperatorID(fmt.Sprintf("%s#g%d", op, i))
				v := *o
				v.ID = vid
				v.Parallelism = gr.Tasks
				v.InputShare = gr.RateShare
				if err := out.AddOperator(v); err != nil {
					return nil, err
				}
				res.Groups = append(res.Groups, vid)
			}
			continue
		}
		if err := out.AddOperator(*o); err != nil {
			return nil, err
		}
	}
	for _, e := range g.Edges() {
		var froms, tos []OperatorID
		if e.From == op {
			froms = res.Groups
		} else {
			froms = []OperatorID{e.From}
		}
		if e.To == op {
			tos = res.Groups
		} else {
			tos = []OperatorID{e.To}
		}
		mode := e.Mode
		if e.From == op || e.To == op {
			// Forward pairing is undefined across groups; fall back to
			// all-to-all, the pattern skewed (hash-partitioned) exchanges
			// use anyway.
			mode = AllToAll
		}
		for _, f := range froms {
			for _, to := range tos {
				if err := out.AddEdge(Edge{From: f, To: to, Mode: mode}); err != nil {
					return nil, err
				}
			}
		}
	}
	res.Graph = out
	return res, nil
}

// MergePlan translates a placement plan computed on the split graph back to
// the original graph: group g's task j becomes original task with index
// offset(g)+j (groups occupy consecutive index ranges).
func (sr *SkewResult) MergePlan(plan *Plan) (*Plan, error) {
	out := NewPlan()
	// Copy non-split assignments and remap group tasks.
	offset := 0
	groupSet := make(map[OperatorID]int, len(sr.Groups))
	for i, gid := range sr.Groups {
		groupSet[gid] = i
	}
	offsets := make([]int, len(sr.Groups))
	for i, gid := range sr.Groups {
		offsets[i] = offset
		offset += sr.Graph.Operator(gid).Parallelism
	}
	for _, o := range sr.Graph.Operators() {
		par := o.Parallelism
		gi, isGroup := groupSet[o.ID]
		for idx := 0; idx < par; idx++ {
			w, ok := plan.Worker(TaskID{Op: o.ID, Index: idx})
			if !ok {
				return nil, fmt.Errorf("dataflow: task %s[%d] unassigned in split plan", o.ID, idx)
			}
			if isGroup {
				out.Assign(TaskID{Op: sr.Original, Index: offsets[gi] + idx}, w)
			} else {
				out.Assign(TaskID{Op: o.ID, Index: idx}, w)
			}
		}
	}
	return out, nil
}
