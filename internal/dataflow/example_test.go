package dataflow_test

import (
	"fmt"

	"capsys/internal/dataflow"
)

// ExampleExpand shows logical-to-physical graph expansion.
func ExampleExpand() {
	g := dataflow.NewLogicalGraph()
	_ = g.AddOperator(dataflow.Operator{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1})
	_ = g.AddOperator(dataflow.Operator{ID: "map", Kind: dataflow.KindMap, Parallelism: 3, Selectivity: 1})
	_ = g.AddEdge(dataflow.Edge{From: "src", To: "map"})

	phys, _ := dataflow.Expand(g)
	fmt.Printf("tasks: %d, channels: %d\n", phys.NumTasks(), len(phys.Channels()))
	fmt.Printf("src[0] fan-out: %d\n", phys.OutDegree(dataflow.TaskID{Op: "src", Index: 0}))
	// Output:
	// tasks: 5, channels: 6
	// src[0] fan-out: 3
}

// ExampleChain collapses a forward-connected pipeline into one operator.
func ExampleChain() {
	g := dataflow.NewLogicalGraph()
	_ = g.AddOperator(dataflow.Operator{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
		Cost: dataflow.UnitCost{CPU: 1e-5}})
	_ = g.AddOperator(dataflow.Operator{ID: "parse", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1,
		Cost: dataflow.UnitCost{CPU: 2e-5}})
	_ = g.AddOperator(dataflow.Operator{ID: "win", Kind: dataflow.KindWindow, Parallelism: 4, Selectivity: 0.5,
		Cost: dataflow.UnitCost{CPU: 5e-4}})
	_ = g.AddEdge(dataflow.Edge{From: "src", To: "parse", Mode: dataflow.Forward})
	_ = g.AddEdge(dataflow.Edge{From: "parse", To: "win"})

	cr, _ := dataflow.Chain(g)
	fmt.Printf("operators after chaining: %d\n", cr.Graph.NumOperators())
	fmt.Printf("chain members: %v\n", cr.Members["src+parse"])
	// Output:
	// operators after chaining: 2
	// chain members: [src parse]
}

// ExampleSplitForSkew turns a skewed operator into placement groups with
// uneven per-task load, which CAPS then balances explicitly.
func ExampleSplitForSkew() {
	g := dataflow.NewLogicalGraph()
	_ = g.AddOperator(dataflow.Operator{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1})
	_ = g.AddOperator(dataflow.Operator{ID: "agg", Kind: dataflow.KindWindow, Parallelism: 4, Selectivity: 0.1,
		Cost: dataflow.UnitCost{CPU: 1e-4}})
	_ = g.AddEdge(dataflow.Edge{From: "src", To: "agg"})

	sr, _ := dataflow.SplitForSkew(g, "agg", []dataflow.SkewGroup{
		{Tasks: 1, RateShare: 0.4}, // one hot task gets 40% of the stream
		{Tasks: 3, RateShare: 0.6},
	})
	rates, _ := dataflow.PropagateRates(sr.Graph, map[dataflow.OperatorID]float64{"src": 1000})
	fmt.Printf("hot task rate: %.0f rec/s, cold task rate: %.0f rec/s\n",
		rates.TaskInRate(sr.Graph, sr.Groups[0]),
		rates.TaskInRate(sr.Graph, sr.Groups[1]))
	// Output:
	// hot task rate: 400 rec/s, cold task rate: 200 rec/s
}
