package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpandLinear(t *testing.T) {
	g := linearGraph(t, 2, 2, 4, 1)
	p, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumTasks() != 9 {
		t.Fatalf("NumTasks = %d, want 9", p.NumTasks())
	}
	if got := len(p.TasksOf("I")); got != 4 {
		t.Errorf("TasksOf(I) = %d tasks, want 4", got)
	}
	// All-to-all channels: 2*2 + 2*4 + 4*1 = 16.
	if got := len(p.Channels()); got != 16 {
		t.Errorf("channels = %d, want 16", got)
	}
	// Every T task has 4 downstream links (to the 4 I tasks).
	for _, task := range p.TasksOf("T") {
		if d := p.OutDegree(task); d != 4 {
			t.Errorf("OutDegree(%v) = %d, want 4", task, d)
		}
	}
	// Sinks have no downstream links.
	for _, task := range p.TasksOf("K") {
		if d := p.OutDegree(task); d != 0 {
			t.Errorf("sink OutDegree(%v) = %d, want 0", task, d)
		}
	}
}

func TestExpandForward(t *testing.T) {
	g := NewLogicalGraph()
	mustAdd(t, g, Operator{ID: "a", Parallelism: 3, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "b", Parallelism: 3, Selectivity: 1})
	mustEdge(t, g, Edge{From: "a", To: "b", Mode: Forward})
	p, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Channels()); got != 3 {
		t.Fatalf("forward channels = %d, want 3", got)
	}
	for _, c := range p.Channels() {
		if c.From.Index != c.To.Index {
			t.Errorf("forward channel crosses indices: %v", c)
		}
	}
}

func TestExpandRejectsInvalidGraph(t *testing.T) {
	g := NewLogicalGraph()
	if _, err := Expand(g); err == nil {
		t.Error("Expand accepted empty graph")
	}
}

func TestChannelConsistency(t *testing.T) {
	g := linearGraph(t, 2, 3, 4, 2)
	p, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of out-degrees equals sum of in-degrees equals #channels.
	outSum, inSum := 0, 0
	for _, task := range p.Tasks() {
		outSum += len(p.Out(task))
		inSum += len(p.In(task))
	}
	if outSum != len(p.Channels()) || inSum != len(p.Channels()) {
		t.Errorf("degree sums out=%d in=%d, channels=%d", outSum, inSum, len(p.Channels()))
	}
}

func TestPlanAssignAndValidate(t *testing.T) {
	g := linearGraph(t, 2, 2, 4, 1)
	p, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlan()
	// Round-robin over 3 workers with 3 slots each.
	for i, task := range p.Tasks() {
		pl.Assign(task, i%3)
	}
	if err := pl.Validate(p, 3, 3); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := pl.Validate(p, 3, 2); err == nil {
		t.Error("slot overflow accepted")
	}
	if err := pl.Validate(p, 2, 3); err == nil {
		t.Error("out-of-range worker accepted")
	}

	// Missing assignment violates Eq. 1.
	partial := NewPlan()
	partial.Assign(TaskID{Op: "S", Index: 0}, 0)
	if err := partial.Validate(p, 3, 3); err == nil {
		t.Error("partial plan accepted")
	}
}

func TestPlanHelpers(t *testing.T) {
	pl := NewPlan()
	pl.Assign(TaskID{Op: "a", Index: 0}, 0)
	pl.Assign(TaskID{Op: "a", Index: 1}, 0)
	pl.Assign(TaskID{Op: "b", Index: 0}, 1)

	if w := pl.MustWorker(TaskID{Op: "b", Index: 0}); w != 1 {
		t.Errorf("MustWorker = %d", w)
	}
	if _, ok := pl.Worker(TaskID{Op: "z", Index: 0}); ok {
		t.Error("Worker reported unassigned task as assigned")
	}
	if got := pl.TasksOn(0); len(got) != 2 {
		t.Errorf("TasksOn(0) = %v", got)
	}
	if c := pl.WorkerCounts(2); c[0] != 2 || c[1] != 1 {
		t.Errorf("WorkerCounts = %v", c)
	}
	if m := pl.OpCountsOn(0); m["a"] != 2 {
		t.Errorf("OpCountsOn(0) = %v", m)
	}
	c := pl.Clone()
	c.Assign(TaskID{Op: "b", Index: 0}, 0)
	if pl.MustWorker(TaskID{Op: "b", Index: 0}) != 1 {
		t.Error("Clone is shallow")
	}
	if pl.Equal(c) {
		t.Error("Equal true for different plans")
	}
	if !pl.Equal(pl.Clone()) {
		t.Error("Equal false for identical plans")
	}
	d := NewPlan()
	d.Assign(TaskID{Op: "a", Index: 0}, 0)
	if pl.Equal(d) {
		t.Error("Equal true for different-size plans")
	}
	if pl.String() == "" {
		t.Error("String empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustWorker on unassigned task did not panic")
		}
	}()
	pl.MustWorker(TaskID{Op: "nope", Index: 9})
}

// Property: any random assignment of all tasks to in-range workers with
// sufficient slots validates; removing one task breaks Eq. 1.
func TestPlanValidateProperty(t *testing.T) {
	g := linearGraph(t, 2, 3, 4, 2)
	p, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	tasks := p.Tasks()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numWorkers := 3 + rng.Intn(4)
		pl := NewPlan()
		for _, task := range tasks {
			pl.Assign(task, rng.Intn(numWorkers))
		}
		// With slots == total tasks, capacity can never be violated.
		if pl.Validate(p, numWorkers, len(tasks)) != nil {
			return false
		}
		counts := pl.WorkerCounts(numWorkers)
		total := 0
		maxC := 0
		for _, c := range counts {
			total += c
			if c > maxC {
				maxC = c
			}
		}
		if total != len(tasks) {
			return false
		}
		// Tight slot bound: exactly maxC slots validates, maxC-1 fails.
		if pl.Validate(p, numWorkers, maxC) != nil {
			return false
		}
		if maxC > 0 && pl.Validate(p, numWorkers, maxC-1) == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
