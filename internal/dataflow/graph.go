// Package dataflow models streaming dataflow queries as logical and physical
// graphs, following the dataflow model adopted by slot-oriented stream
// processors such as Apache Flink and Apache Storm.
//
// A query is first expressed as a LogicalGraph: a DAG whose vertices are
// logical operators and whose edges are data streams. Upon deployment the
// logical graph is expanded into a PhysicalGraph, where every logical operator
// is replicated into Parallelism tasks and every logical edge is instantiated
// into physical data channels connecting upstream and downstream tasks.
package dataflow

import (
	"fmt"
	"sort"
)

// OperatorID uniquely identifies a logical operator within a graph.
type OperatorID string

// EdgeMode describes how physical channels are derived from a logical edge.
type EdgeMode int

const (
	// AllToAll connects every upstream task to every downstream task. It is
	// the physical pattern produced by hash partitioning, rebalancing and
	// broadcasting, and it is the mode used by all paper queries (operator
	// chaining is disabled, so consecutive operators exchange data through
	// the network stack).
	AllToAll EdgeMode = iota
	// Forward connects upstream task i to downstream task i. It requires
	// both operators to have identical parallelism.
	Forward
)

func (m EdgeMode) String() string {
	switch m {
	case AllToAll:
		return "all-to-all"
	case Forward:
		return "forward"
	default:
		return fmt.Sprintf("EdgeMode(%d)", int(m))
	}
}

// OperatorKind is a coarse classification used by workload generators and the
// profiler to pick default resource characteristics.
type OperatorKind int

const (
	KindSource OperatorKind = iota
	KindSink
	KindMap
	KindFilter
	KindFlatMap
	KindWindow
	KindJoin
	KindProcess
	KindInference
)

func (k OperatorKind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindSink:
		return "sink"
	case KindMap:
		return "map"
	case KindFilter:
		return "filter"
	case KindFlatMap:
		return "flatmap"
	case KindWindow:
		return "window"
	case KindJoin:
		return "join"
	case KindProcess:
		return "process"
	case KindInference:
		return "inference"
	default:
		return fmt.Sprintf("OperatorKind(%d)", int(k))
	}
}

// UnitCost captures the per-record resource cost of one task of an operator,
// as measured by the profiling phase (paper §5.1, "Cost profiling"):
//
//   - CPU: seconds of CPU time consumed per input record.
//   - IO: bytes read from plus written to the state backend per input record.
//   - Net: bytes emitted downstream per input record.
//
// Multiplying a unit cost by a task's input rate yields its usage vector
// (U_cpu, U_io, U_net in the paper's notation).
type UnitCost struct {
	CPU float64 // CPU-seconds per record
	IO  float64 // state-access bytes per record
	Net float64 // output bytes per record
}

// Operator is a vertex of the logical graph.
type Operator struct {
	ID          OperatorID
	Kind        OperatorKind
	Parallelism int
	// Selectivity is the average number of output records produced per
	// input record. Sources ignore it on the input side; for a source it is
	// interpreted as records emitted per generated event (normally 1).
	Selectivity float64
	// InputShare is the fraction of the combined upstream output this
	// operator consumes; 0 means 1 (the whole stream). It is used by skew
	// placement groups (SplitForSkew), where sibling virtual operators
	// partition a skewed operator's input unevenly.
	InputShare float64
	// Cost is the profiled per-record unit resource cost of the operator.
	Cost UnitCost
}

// EffectiveInputShare returns InputShare, defaulting to 1.
func (op *Operator) EffectiveInputShare() float64 {
	if op.InputShare <= 0 {
		return 1
	}
	return op.InputShare
}

// Edge is a logical data stream between two operators.
type Edge struct {
	From, To OperatorID
	Mode     EdgeMode
}

// LogicalGraph is a DAG of logical operators.
type LogicalGraph struct {
	operators map[OperatorID]*Operator
	order     []OperatorID // insertion order, for deterministic iteration
	edges     []Edge
	out       map[OperatorID][]OperatorID
	in        map[OperatorID][]OperatorID
}

// NewLogicalGraph returns an empty logical graph.
func NewLogicalGraph() *LogicalGraph {
	return &LogicalGraph{
		operators: make(map[OperatorID]*Operator),
		out:       make(map[OperatorID][]OperatorID),
		in:        make(map[OperatorID][]OperatorID),
	}
}

// AddOperator inserts op into the graph. It returns an error if an operator
// with the same ID already exists or the operator is malformed.
func (g *LogicalGraph) AddOperator(op Operator) error {
	if op.ID == "" {
		return fmt.Errorf("dataflow: operator with empty ID")
	}
	if _, ok := g.operators[op.ID]; ok {
		return fmt.Errorf("dataflow: duplicate operator %q", op.ID)
	}
	if op.Parallelism <= 0 {
		return fmt.Errorf("dataflow: operator %q has non-positive parallelism %d", op.ID, op.Parallelism)
	}
	if op.Selectivity < 0 {
		return fmt.Errorf("dataflow: operator %q has negative selectivity %v", op.ID, op.Selectivity)
	}
	cp := op
	g.operators[op.ID] = &cp
	g.order = append(g.order, op.ID)
	return nil
}

// AddEdge inserts a logical edge. Both endpoints must exist, a Forward edge
// requires equal parallelism, and the edge must not introduce a cycle.
func (g *LogicalGraph) AddEdge(e Edge) error {
	from, ok := g.operators[e.From]
	if !ok {
		return fmt.Errorf("dataflow: edge references unknown operator %q", e.From)
	}
	to, ok := g.operators[e.To]
	if !ok {
		return fmt.Errorf("dataflow: edge references unknown operator %q", e.To)
	}
	if e.From == e.To {
		return fmt.Errorf("dataflow: self-loop on operator %q", e.From)
	}
	if e.Mode == Forward && from.Parallelism != to.Parallelism {
		return fmt.Errorf("dataflow: forward edge %s->%s requires equal parallelism (%d != %d)",
			e.From, e.To, from.Parallelism, to.Parallelism)
	}
	if g.reaches(e.To, e.From) {
		return fmt.Errorf("dataflow: edge %s->%s would create a cycle", e.From, e.To)
	}
	g.edges = append(g.edges, e)
	g.out[e.From] = append(g.out[e.From], e.To)
	g.in[e.To] = append(g.in[e.To], e.From)
	return nil
}

func (g *LogicalGraph) reaches(from, to OperatorID) bool {
	if from == to {
		return true
	}
	seen := map[OperatorID]bool{from: true}
	stack := []OperatorID{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.out[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// Operator returns the operator with the given ID, or nil.
func (g *LogicalGraph) Operator(id OperatorID) *Operator {
	return g.operators[id]
}

// Operators returns all operators in insertion order.
func (g *LogicalGraph) Operators() []*Operator {
	ops := make([]*Operator, 0, len(g.order))
	for _, id := range g.order {
		ops = append(ops, g.operators[id])
	}
	return ops
}

// Edges returns a copy of all logical edges.
func (g *LogicalGraph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// Upstream returns the IDs of operators with an edge into id.
func (g *LogicalGraph) Upstream(id OperatorID) []OperatorID {
	return append([]OperatorID(nil), g.in[id]...)
}

// Downstream returns the IDs of operators id has an edge to.
func (g *LogicalGraph) Downstream(id OperatorID) []OperatorID {
	return append([]OperatorID(nil), g.out[id]...)
}

// Sources returns operators with no upstream, in insertion order.
func (g *LogicalGraph) Sources() []*Operator {
	var srcs []*Operator
	for _, id := range g.order {
		if len(g.in[id]) == 0 {
			srcs = append(srcs, g.operators[id])
		}
	}
	return srcs
}

// Sinks returns operators with no downstream, in insertion order.
func (g *LogicalGraph) Sinks() []*Operator {
	var sinks []*Operator
	for _, id := range g.order {
		if len(g.out[id]) == 0 {
			sinks = append(sinks, g.operators[id])
		}
	}
	return sinks
}

// NumOperators returns the number of logical operators.
func (g *LogicalGraph) NumOperators() int { return len(g.operators) }

// TotalTasks returns the sum of operator parallelisms, i.e. the number of
// compute slots the physical graph will occupy.
func (g *LogicalGraph) TotalTasks() int {
	n := 0
	for _, op := range g.operators {
		n += op.Parallelism
	}
	return n
}

// TopoOrder returns the operator IDs in a deterministic topological order
// (Kahn's algorithm breaking ties by insertion order). It returns an error if
// the graph is empty.
func (g *LogicalGraph) TopoOrder() ([]OperatorID, error) {
	if len(g.operators) == 0 {
		return nil, fmt.Errorf("dataflow: empty graph")
	}
	indeg := make(map[OperatorID]int, len(g.operators))
	for _, id := range g.order {
		indeg[id] = len(g.in[id])
	}
	var ready []OperatorID
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var out []OperatorID
	for len(ready) > 0 {
		// Keep the frontier sorted by insertion order for determinism.
		sort.Slice(ready, func(i, j int) bool {
			return g.insertionIndex(ready[i]) < g.insertionIndex(ready[j])
		})
		cur := ready[0]
		ready = ready[1:]
		out = append(out, cur)
		for _, next := range g.out[cur] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	if len(out) != len(g.operators) {
		return nil, fmt.Errorf("dataflow: graph contains a cycle")
	}
	return out, nil
}

func (g *LogicalGraph) insertionIndex(id OperatorID) int {
	for i, v := range g.order {
		if v == id {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants: at least one source and one sink,
// every non-source reachable from a source, and positive selectivities for
// operators that feed downstream consumers.
func (g *LogicalGraph) Validate() error {
	if len(g.operators) == 0 {
		return fmt.Errorf("dataflow: empty graph")
	}
	srcs := g.Sources()
	if len(srcs) == 0 {
		return fmt.Errorf("dataflow: graph has no source operator")
	}
	if len(g.Sinks()) == 0 {
		return fmt.Errorf("dataflow: graph has no sink operator")
	}
	// Reachability from sources.
	seen := make(map[OperatorID]bool)
	var stack []OperatorID
	for _, s := range srcs {
		seen[s.ID] = true
		stack = append(stack, s.ID)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.out[cur] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	for _, id := range g.order {
		if !seen[id] {
			return fmt.Errorf("dataflow: operator %q unreachable from any source", id)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of the graph. Mutating the clone (e.g. changing
// parallelism during a scaling decision) does not affect the original.
func (g *LogicalGraph) Clone() *LogicalGraph {
	c := NewLogicalGraph()
	for _, id := range g.order {
		op := *g.operators[id]
		c.operators[id] = &op
		c.order = append(c.order, id)
	}
	c.edges = append(c.edges, g.edges...)
	for k, v := range g.out {
		c.out[k] = append([]OperatorID(nil), v...)
	}
	for k, v := range g.in {
		c.in[k] = append([]OperatorID(nil), v...)
	}
	return c
}

// SetParallelism updates the parallelism of the named operator. Forward edges
// adjacent to the operator constrain the peer operator to the same value; the
// caller is responsible for keeping forward pairs consistent (Rescale does
// this automatically).
func (g *LogicalGraph) SetParallelism(id OperatorID, p int) error {
	op, ok := g.operators[id]
	if !ok {
		return fmt.Errorf("dataflow: unknown operator %q", id)
	}
	if p <= 0 {
		return fmt.Errorf("dataflow: non-positive parallelism %d for %q", p, id)
	}
	op.Parallelism = p
	return nil
}

// Rescale returns a clone of the graph with the given per-operator
// parallelisms applied. Operators absent from the map keep their current
// parallelism. Forward-edge peers are validated.
func (g *LogicalGraph) Rescale(parallelism map[OperatorID]int) (*LogicalGraph, error) {
	c := g.Clone()
	for id, p := range parallelism {
		if err := c.SetParallelism(id, p); err != nil {
			return nil, err
		}
	}
	for _, e := range c.edges {
		if e.Mode == Forward {
			f, t := c.operators[e.From], c.operators[e.To]
			if f.Parallelism != t.Parallelism {
				return nil, fmt.Errorf("dataflow: rescale breaks forward edge %s->%s (%d != %d)",
					e.From, e.To, f.Parallelism, t.Parallelism)
			}
		}
	}
	return c, nil
}
