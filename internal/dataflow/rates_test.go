package dataflow

import (
	"math"
	"testing"
)

func TestPropagateRatesLinear(t *testing.T) {
	g := NewLogicalGraph()
	mustAdd(t, g, Operator{ID: "src", Kind: KindSource, Parallelism: 2, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "filter", Kind: KindFilter, Parallelism: 2, Selectivity: 0.5})
	mustAdd(t, g, Operator{ID: "flat", Kind: KindFlatMap, Parallelism: 4, Selectivity: 3})
	mustAdd(t, g, Operator{ID: "sink", Kind: KindSink, Parallelism: 1, Selectivity: 0})
	mustEdge(t, g, Edge{From: "src", To: "filter"})
	mustEdge(t, g, Edge{From: "filter", To: "flat"})
	mustEdge(t, g, Edge{From: "flat", To: "sink"})

	rp, err := PropagateRates(g, map[OperatorID]float64{"src": 1000})
	if err != nil {
		t.Fatal(err)
	}
	check := func(id OperatorID, wantIn, wantOut float64) {
		t.Helper()
		if math.Abs(rp.In[id]-wantIn) > 1e-9 || math.Abs(rp.Out[id]-wantOut) > 1e-9 {
			t.Errorf("%s: in=%v out=%v, want in=%v out=%v", id, rp.In[id], rp.Out[id], wantIn, wantOut)
		}
	}
	check("src", 1000, 1000)
	check("filter", 1000, 500)
	check("flat", 500, 1500)
	check("sink", 1500, 0)
}

func TestPropagateRatesMerge(t *testing.T) {
	g := NewLogicalGraph()
	mustAdd(t, g, Operator{ID: "s1", Kind: KindSource, Parallelism: 1, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "s2", Kind: KindSource, Parallelism: 1, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "join", Kind: KindJoin, Parallelism: 2, Selectivity: 0.2})
	mustAdd(t, g, Operator{ID: "sink", Kind: KindSink, Parallelism: 1})
	mustEdge(t, g, Edge{From: "s1", To: "join"})
	mustEdge(t, g, Edge{From: "s2", To: "join"})
	mustEdge(t, g, Edge{From: "join", To: "sink"})

	rp, err := PropagateRates(g, map[OperatorID]float64{"s1": 300, "s2": 700})
	if err != nil {
		t.Fatal(err)
	}
	if rp.In["join"] != 1000 {
		t.Errorf("join input = %v, want 1000 (merged)", rp.In["join"])
	}
	if rp.Out["join"] != 200 {
		t.Errorf("join output = %v, want 200", rp.Out["join"])
	}
	// Per-task rates divide evenly.
	if got := rp.TaskInRate(g, "join"); got != 500 {
		t.Errorf("TaskInRate(join) = %v, want 500", got)
	}
	if got := rp.TaskOutRate(g, "join"); got != 100 {
		t.Errorf("TaskOutRate(join) = %v, want 100", got)
	}
}

func TestPropagateRatesErrors(t *testing.T) {
	g := NewLogicalGraph()
	mustAdd(t, g, Operator{ID: "s", Kind: KindSource, Parallelism: 1, Selectivity: 1})
	if _, err := PropagateRates(g, nil); err == nil {
		t.Error("missing source rate accepted")
	}
	if _, err := PropagateRates(g, map[OperatorID]float64{"s": -5}); err == nil {
		t.Error("negative source rate accepted")
	}
	if _, err := PropagateRates(NewLogicalGraph(), nil); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestTaskRatesUnknownOperator(t *testing.T) {
	g := NewLogicalGraph()
	mustAdd(t, g, Operator{ID: "s", Kind: KindSource, Parallelism: 1, Selectivity: 1})
	rp, err := PropagateRates(g, map[OperatorID]float64{"s": 10})
	if err != nil {
		t.Fatal(err)
	}
	if rp.TaskInRate(g, "nope") != 0 || rp.TaskOutRate(g, "nope") != 0 {
		t.Error("unknown operator should yield zero rates")
	}
}
