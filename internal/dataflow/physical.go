package dataflow

import (
	"fmt"
	"sort"
)

// TaskID identifies a physical task: the Index-th replica of operator Op.
type TaskID struct {
	Op    OperatorID
	Index int
}

func (t TaskID) String() string { return fmt.Sprintf("%s[%d]", t.Op, t.Index) }

// Channel is a physical data link between two tasks.
type Channel struct {
	From, To TaskID
}

// PhysicalGraph is the expansion of a logical graph: every operator is
// replicated into Parallelism tasks and every logical edge is instantiated
// into physical channels according to its EdgeMode.
type PhysicalGraph struct {
	Logical *LogicalGraph

	tasks    []TaskID
	byOp     map[OperatorID][]TaskID
	channels []Channel
	outCh    map[TaskID][]Channel
	inCh     map[TaskID][]Channel
}

// Expand builds the physical execution graph from a logical graph. The
// resulting task order is deterministic: operators in topological order, task
// indices ascending.
func Expand(g *LogicalGraph) (*PhysicalGraph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := &PhysicalGraph{
		Logical: g,
		byOp:    make(map[OperatorID][]TaskID),
		outCh:   make(map[TaskID][]Channel),
		inCh:    make(map[TaskID][]Channel),
	}
	for _, id := range order {
		op := g.Operator(id)
		for i := 0; i < op.Parallelism; i++ {
			t := TaskID{Op: id, Index: i}
			p.tasks = append(p.tasks, t)
			p.byOp[id] = append(p.byOp[id], t)
		}
	}
	for _, e := range g.Edges() {
		ups, downs := p.byOp[e.From], p.byOp[e.To]
		switch e.Mode {
		case AllToAll:
			for _, u := range ups {
				for _, d := range downs {
					p.addChannel(Channel{From: u, To: d})
				}
			}
		case Forward:
			if len(ups) != len(downs) {
				return nil, fmt.Errorf("dataflow: forward edge %s->%s parallelism mismatch", e.From, e.To)
			}
			for i := range ups {
				p.addChannel(Channel{From: ups[i], To: downs[i]})
			}
		default:
			return nil, fmt.Errorf("dataflow: unknown edge mode %v", e.Mode)
		}
	}
	return p, nil
}

func (p *PhysicalGraph) addChannel(c Channel) {
	p.channels = append(p.channels, c)
	p.outCh[c.From] = append(p.outCh[c.From], c)
	p.inCh[c.To] = append(p.inCh[c.To], c)
}

// Tasks returns all tasks in deterministic order.
func (p *PhysicalGraph) Tasks() []TaskID { return append([]TaskID(nil), p.tasks...) }

// NumTasks returns the number of physical tasks.
func (p *PhysicalGraph) NumTasks() int { return len(p.tasks) }

// TasksOf returns the tasks of one operator, index ascending.
func (p *PhysicalGraph) TasksOf(op OperatorID) []TaskID {
	return append([]TaskID(nil), p.byOp[op]...)
}

// NumTasksOf returns the number of tasks of one operator without copying.
func (p *PhysicalGraph) NumTasksOf(op OperatorID) int { return len(p.byOp[op]) }

// Channels returns all physical channels.
func (p *PhysicalGraph) Channels() []Channel { return append([]Channel(nil), p.channels...) }

// Out returns the downstream channels of task t (the paper's D(t)).
func (p *PhysicalGraph) Out(t TaskID) []Channel { return append([]Channel(nil), p.outCh[t]...) }

// In returns the upstream channels of task t.
func (p *PhysicalGraph) In(t TaskID) []Channel { return append([]Channel(nil), p.inCh[t]...) }

// OutDegree returns |D(t)|, the number of downstream physical links of t.
func (p *PhysicalGraph) OutDegree(t TaskID) int { return len(p.outCh[t]) }

// Plan is a task placement plan: a mapping from every task of a physical
// graph to a worker index (paper §4.1, the function f). Worker indices refer
// to a cluster definition that is supplied alongside the plan.
type Plan struct {
	assign map[TaskID]int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{assign: make(map[TaskID]int)} }

// NewPlanSized returns an empty plan pre-sized for n assignments.
func NewPlanSized(n int) *Plan { return &Plan{assign: make(map[TaskID]int, n)} }

// Assign places task t on worker w (overwriting any previous assignment).
func (pl *Plan) Assign(t TaskID, w int) {
	if pl.assign == nil {
		pl.assign = make(map[TaskID]int)
	}
	pl.assign[t] = w
}

// Worker returns the worker index of task t and whether t is assigned.
func (pl *Plan) Worker(t TaskID) (int, bool) {
	w, ok := pl.assign[t]
	return w, ok
}

// MustWorker returns the worker index of t, panicking if unassigned. It is
// intended for use after Validate has succeeded.
func (pl *Plan) MustWorker(t TaskID) int {
	w, ok := pl.assign[t]
	if !ok {
		panic(fmt.Sprintf("dataflow: task %v not assigned", t))
	}
	return w
}

// Len returns the number of assigned tasks.
func (pl *Plan) Len() int { return len(pl.assign) }

// TasksOn returns the tasks assigned to worker w, in deterministic order.
func (pl *Plan) TasksOn(w int) []TaskID {
	var ts []TaskID
	for t, tw := range pl.assign {
		if tw == w {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Op != ts[j].Op {
			return ts[i].Op < ts[j].Op
		}
		return ts[i].Index < ts[j].Index
	})
	return ts
}

// WorkerCounts returns, for numWorkers workers, the number of tasks assigned
// to each.
func (pl *Plan) WorkerCounts(numWorkers int) []int {
	counts := make([]int, numWorkers)
	for _, w := range pl.assign {
		if w >= 0 && w < numWorkers {
			counts[w]++
		}
	}
	return counts
}

// Each calls fn for every (task, worker) assignment, in map order.
func (pl *Plan) Each(fn func(TaskID, int)) {
	for t, w := range pl.assign {
		fn(t, w)
	}
}

// OpCountsOn returns a map operator -> number of its tasks on worker w.
func (pl *Plan) OpCountsOn(w int) map[OperatorID]int {
	m := make(map[OperatorID]int)
	for t, tw := range pl.assign {
		if tw == w {
			m[t.Op]++
		}
	}
	return m
}

// Clone returns a deep copy of the plan.
func (pl *Plan) Clone() *Plan {
	c := NewPlan()
	for t, w := range pl.assign {
		c.assign[t] = w
	}
	return c
}

// Equal reports whether two plans contain identical assignments.
func (pl *Plan) Equal(other *Plan) bool {
	if pl.Len() != other.Len() {
		return false
	}
	for t, w := range pl.assign {
		ow, ok := other.assign[t]
		if !ok || ow != w {
			return false
		}
	}
	return true
}

// Validate checks the plan against the paper's constraints for physical graph
// p on a cluster of numWorkers workers with slotsPerWorker slots each:
//
//	Eq. 1: every task is assigned to exactly one worker;
//	Eq. 2: no worker holds more tasks than it has slots.
func (pl *Plan) Validate(p *PhysicalGraph, numWorkers, slotsPerWorker int) error {
	if pl.Len() != p.NumTasks() {
		return fmt.Errorf("dataflow: plan assigns %d tasks, graph has %d", pl.Len(), p.NumTasks())
	}
	counts := make([]int, numWorkers)
	for _, t := range p.Tasks() {
		w, ok := pl.assign[t]
		if !ok {
			return fmt.Errorf("dataflow: task %v not assigned (Eq. 1 violated)", t)
		}
		if w < 0 || w >= numWorkers {
			return fmt.Errorf("dataflow: task %v assigned to out-of-range worker %d", t, w)
		}
		counts[w]++
	}
	for w, c := range counts {
		if c > slotsPerWorker {
			return fmt.Errorf("dataflow: worker %d holds %d tasks, only %d slots (Eq. 2 violated)", w, c, slotsPerWorker)
		}
	}
	return nil
}

// String renders the plan as "worker: tasks" lines for debugging.
func (pl *Plan) String() string {
	maxW := -1
	for _, w := range pl.assign {
		if w > maxW {
			maxW = w
		}
	}
	s := ""
	for w := 0; w <= maxW; w++ {
		ts := pl.TasksOn(w)
		if len(ts) == 0 {
			continue
		}
		s += fmt.Sprintf("w%d:", w)
		for _, t := range ts {
			s += " " + t.String()
		}
		s += "\n"
	}
	return s
}
