package dataflow

import "fmt"

// RatePlan holds steady-state record rates per operator, derived from source
// input rates and operator selectivities. All rates are in records/second and
// describe the *target* (offered) load, i.e. the rates the deployment must
// sustain; achieved rates under contention are computed by the simulator.
type RatePlan struct {
	// In is the aggregate input rate of each operator (sum over its tasks).
	In map[OperatorID]float64
	// Out is the aggregate output rate of each operator.
	Out map[OperatorID]float64
}

// PropagateRates computes per-operator input and output rates given the event
// generation rate of each source operator. A source's input rate is its
// generation rate; its output rate is input × selectivity. For every other
// operator, the input rate is the sum of upstream output rates (streams from
// several upstreams merge), and output = input × selectivity.
func PropagateRates(g *LogicalGraph, sourceRates map[OperatorID]float64) (*RatePlan, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rp := &RatePlan{
		In:  make(map[OperatorID]float64, len(order)),
		Out: make(map[OperatorID]float64, len(order)),
	}
	for _, id := range order {
		op := g.Operator(id)
		var in float64
		if ups := g.Upstream(id); len(ups) == 0 {
			r, ok := sourceRates[id]
			if !ok {
				return nil, fmt.Errorf("dataflow: no source rate for source operator %q", id)
			}
			if r < 0 {
				return nil, fmt.Errorf("dataflow: negative source rate %v for %q", r, id)
			}
			in = r
		} else {
			for _, u := range ups {
				in += rp.Out[u]
			}
			in *= op.EffectiveInputShare()
		}
		rp.In[id] = in
		rp.Out[id] = in * op.Selectivity
	}
	return rp, nil
}

// TaskInRate returns the steady-state input rate of a single task of op,
// assuming uniform partitioning across the operator's tasks (the paper's
// model assumption: tasks of the same operator are identical; skew is handled
// by a separate mechanism).
func (rp *RatePlan) TaskInRate(g *LogicalGraph, id OperatorID) float64 {
	op := g.Operator(id)
	if op == nil || op.Parallelism == 0 {
		return 0
	}
	return rp.In[id] / float64(op.Parallelism)
}

// TaskOutRate returns the steady-state output rate of a single task of op.
func (rp *RatePlan) TaskOutRate(g *LogicalGraph, id OperatorID) float64 {
	op := g.Operator(id)
	if op == nil || op.Parallelism == 0 {
		return 0
	}
	return rp.Out[id] / float64(op.Parallelism)
}
