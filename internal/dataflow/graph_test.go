package dataflow

import (
	"strings"
	"testing"
)

func mustAdd(t *testing.T, g *LogicalGraph, op Operator) {
	t.Helper()
	if err := g.AddOperator(op); err != nil {
		t.Fatalf("AddOperator(%v): %v", op.ID, err)
	}
}

func mustEdge(t *testing.T, g *LogicalGraph, e Edge) {
	t.Helper()
	if err := g.AddEdge(e); err != nil {
		t.Fatalf("AddEdge(%v->%v): %v", e.From, e.To, err)
	}
}

// linearGraph builds S -> T -> I -> K with the given parallelisms.
func linearGraph(t *testing.T, ps ...int) *LogicalGraph {
	t.Helper()
	if len(ps) != 4 {
		t.Fatalf("linearGraph needs 4 parallelisms, got %d", len(ps))
	}
	g := NewLogicalGraph()
	mustAdd(t, g, Operator{ID: "S", Kind: KindSource, Parallelism: ps[0], Selectivity: 1})
	mustAdd(t, g, Operator{ID: "T", Kind: KindMap, Parallelism: ps[1], Selectivity: 1})
	mustAdd(t, g, Operator{ID: "I", Kind: KindInference, Parallelism: ps[2], Selectivity: 1})
	mustAdd(t, g, Operator{ID: "K", Kind: KindSink, Parallelism: ps[3], Selectivity: 0})
	mustEdge(t, g, Edge{From: "S", To: "T", Mode: AllToAll})
	mustEdge(t, g, Edge{From: "T", To: "I", Mode: AllToAll})
	mustEdge(t, g, Edge{From: "I", To: "K", Mode: AllToAll})
	return g
}

func TestAddOperatorValidation(t *testing.T) {
	g := NewLogicalGraph()
	if err := g.AddOperator(Operator{ID: "", Parallelism: 1}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := g.AddOperator(Operator{ID: "a", Parallelism: 0}); err == nil {
		t.Error("zero parallelism accepted")
	}
	if err := g.AddOperator(Operator{ID: "a", Parallelism: 1, Selectivity: -1}); err == nil {
		t.Error("negative selectivity accepted")
	}
	mustAdd(t, g, Operator{ID: "a", Parallelism: 1})
	if err := g.AddOperator(Operator{ID: "a", Parallelism: 2}); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewLogicalGraph()
	mustAdd(t, g, Operator{ID: "a", Parallelism: 2, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "b", Parallelism: 3, Selectivity: 1})

	if err := g.AddEdge(Edge{From: "x", To: "b"}); err == nil {
		t.Error("unknown source endpoint accepted")
	}
	if err := g.AddEdge(Edge{From: "a", To: "x"}); err == nil {
		t.Error("unknown dest endpoint accepted")
	}
	if err := g.AddEdge(Edge{From: "a", To: "a"}); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(Edge{From: "a", To: "b", Mode: Forward}); err == nil {
		t.Error("forward edge with mismatched parallelism accepted")
	}
	mustEdge(t, g, Edge{From: "a", To: "b", Mode: AllToAll})
	if err := g.AddEdge(Edge{From: "b", To: "a", Mode: AllToAll}); err == nil {
		t.Error("cycle accepted")
	}
}

func TestTopoOrderLinear(t *testing.T) {
	g := linearGraph(t, 2, 2, 4, 1)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []OperatorID{"S", "T", "I", "K"}
	for i, id := range want {
		if order[i] != id {
			t.Fatalf("topo order = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := NewLogicalGraph()
	mustAdd(t, g, Operator{ID: "src", Kind: KindSource, Parallelism: 1, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "l", Parallelism: 1, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "r", Parallelism: 1, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "sink", Kind: KindSink, Parallelism: 1})
	mustEdge(t, g, Edge{From: "src", To: "l"})
	mustEdge(t, g, Edge{From: "src", To: "r"})
	mustEdge(t, g, Edge{From: "l", To: "sink"})
	mustEdge(t, g, Edge{From: "r", To: "sink"})

	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[OperatorID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %s->%s violates topo order %v", e.From, e.To, order)
		}
	}
}

func TestValidate(t *testing.T) {
	g := NewLogicalGraph()
	if err := g.Validate(); err == nil {
		t.Error("empty graph validated")
	}
	mustAdd(t, g, Operator{ID: "a", Parallelism: 1, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "b", Parallelism: 1, Selectivity: 1})
	// a and b are disconnected: both are sources AND sinks, so the graph is
	// structurally valid (two trivial pipelines).
	if err := g.Validate(); err != nil {
		t.Errorf("two isolated operators should validate: %v", err)
	}

	ok := linearGraph(t, 2, 2, 4, 1)
	if err := ok.Validate(); err != nil {
		t.Errorf("linear graph failed validation: %v", err)
	}
}

func TestSourcesSinks(t *testing.T) {
	g := linearGraph(t, 2, 2, 4, 1)
	if s := g.Sources(); len(s) != 1 || s[0].ID != "S" {
		t.Errorf("Sources = %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0].ID != "K" {
		t.Errorf("Sinks = %v", s)
	}
	if n := g.TotalTasks(); n != 9 {
		t.Errorf("TotalTasks = %d, want 9", n)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := linearGraph(t, 2, 2, 4, 1)
	c := g.Clone()
	if err := c.SetParallelism("I", 8); err != nil {
		t.Fatal(err)
	}
	if g.Operator("I").Parallelism != 4 {
		t.Error("mutating clone affected original")
	}
	if c.Operator("I").Parallelism != 8 {
		t.Error("clone mutation lost")
	}
	if len(c.Edges()) != len(g.Edges()) {
		t.Error("clone lost edges")
	}
}

func TestRescale(t *testing.T) {
	g := linearGraph(t, 2, 2, 4, 1)
	r, err := g.Rescale(map[OperatorID]int{"T": 5, "I": 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Operator("T").Parallelism != 5 || r.Operator("I").Parallelism != 6 {
		t.Errorf("rescale not applied: T=%d I=%d", r.Operator("T").Parallelism, r.Operator("I").Parallelism)
	}
	if g.Operator("T").Parallelism != 2 {
		t.Error("rescale mutated original")
	}
	if _, err := g.Rescale(map[OperatorID]int{"T": 0}); err == nil {
		t.Error("rescale to zero accepted")
	}

	// Forward edges must stay consistent.
	fg := NewLogicalGraph()
	mustAdd(t, fg, Operator{ID: "a", Parallelism: 2, Selectivity: 1})
	mustAdd(t, fg, Operator{ID: "b", Parallelism: 2, Selectivity: 1})
	mustEdge(t, fg, Edge{From: "a", To: "b", Mode: Forward})
	if _, err := fg.Rescale(map[OperatorID]int{"a": 3}); err == nil {
		t.Error("rescale breaking forward edge accepted")
	}
	if _, err := fg.Rescale(map[OperatorID]int{"a": 3, "b": 3}); err != nil {
		t.Errorf("consistent forward rescale rejected: %v", err)
	}
}

func TestUpstreamDownstream(t *testing.T) {
	g := linearGraph(t, 2, 2, 4, 1)
	if ups := g.Upstream("I"); len(ups) != 1 || ups[0] != "T" {
		t.Errorf("Upstream(I) = %v", ups)
	}
	if downs := g.Downstream("I"); len(downs) != 1 || downs[0] != "K" {
		t.Errorf("Downstream(I) = %v", downs)
	}
	if ups := g.Upstream("S"); len(ups) != 0 {
		t.Errorf("Upstream(S) = %v", ups)
	}
}

func TestEdgeModeString(t *testing.T) {
	if AllToAll.String() != "all-to-all" || Forward.String() != "forward" {
		t.Error("EdgeMode.String wrong")
	}
	if !strings.Contains(EdgeMode(99).String(), "99") {
		t.Error("unknown EdgeMode should include the value")
	}
}

func TestOperatorKindString(t *testing.T) {
	kinds := []OperatorKind{KindSource, KindSink, KindMap, KindFilter, KindFlatMap, KindWindow, KindJoin, KindProcess, KindInference}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate string %q", k, s)
		}
		seen[s] = true
	}
}
