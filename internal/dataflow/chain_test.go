package dataflow

import (
	"math"
	"testing"
)

// chainableGraph builds src =f=> ts =f=> map -> win -> sink where =f=> edges
// are Forward with equal parallelism (chainable) and the rest are all-to-all.
func chainableGraph(t *testing.T) *LogicalGraph {
	t.Helper()
	g := NewLogicalGraph()
	ops := []Operator{
		{ID: "src", Kind: KindSource, Parallelism: 2, Selectivity: 1,
			Cost: UnitCost{CPU: 1e-5, Net: 100}},
		{ID: "ts", Kind: KindMap, Parallelism: 2, Selectivity: 0.5,
			Cost: UnitCost{CPU: 2e-5, Net: 80}},
		{ID: "map", Kind: KindMap, Parallelism: 4, Selectivity: 1,
			Cost: UnitCost{CPU: 3e-5, Net: 80}},
		{ID: "win", Kind: KindWindow, Parallelism: 4, Selectivity: 0.25,
			Cost: UnitCost{CPU: 4e-4, IO: 1000, Net: 40}},
		{ID: "sink", Kind: KindSink, Parallelism: 1, Selectivity: 0,
			Cost: UnitCost{CPU: 1e-6}},
	}
	for _, op := range ops {
		mustAdd(t, g, op)
	}
	mustEdge(t, g, Edge{From: "src", To: "ts", Mode: Forward})
	mustEdge(t, g, Edge{From: "ts", To: "map", Mode: AllToAll})
	mustEdge(t, g, Edge{From: "map", To: "win", Mode: AllToAll})
	mustEdge(t, g, Edge{From: "win", To: "sink", Mode: AllToAll})
	return g
}

func TestChainCollapsesForwardPipelines(t *testing.T) {
	g := chainableGraph(t)
	cr, err := Chain(g)
	if err != nil {
		t.Fatal(err)
	}
	// src+ts chain into one operator; map, win, sink stay separate
	// (map->win is all-to-all... they have equal parallelism but the mode
	// is not Forward).
	if cr.Graph.NumOperators() != 4 {
		t.Fatalf("chained graph has %d operators, want 4", cr.Graph.NumOperators())
	}
	chained := cr.Graph.Operator("src+ts")
	if chained == nil {
		t.Fatalf("no src+ts operator; got %v", cr.Graph.Operators())
	}
	if chained.Parallelism != 2 {
		t.Errorf("chain parallelism = %d", chained.Parallelism)
	}
	// Combined selectivity 1*0.5; CPU = 1e-5 + 2e-5 (ts sees every src
	// record); Net = ts's 80 bytes per src record.
	if math.Abs(chained.Selectivity-0.5) > 1e-12 {
		t.Errorf("selectivity = %v", chained.Selectivity)
	}
	if math.Abs(chained.Cost.CPU-3e-5) > 1e-18 {
		t.Errorf("CPU = %v", chained.Cost.CPU)
	}
	if math.Abs(chained.Cost.Net-80) > 1e-9 {
		t.Errorf("Net = %v", chained.Cost.Net)
	}
	if members := cr.Members["src+ts"]; len(members) != 2 || members[0] != "src" || members[1] != "ts" {
		t.Errorf("members = %v", members)
	}
	if err := cr.Graph.Validate(); err != nil {
		t.Errorf("chained graph invalid: %v", err)
	}
	// Rates propagate identically through the chained and original graphs.
	origRates, err := PropagateRates(g, map[OperatorID]float64{"src": 1000})
	if err != nil {
		t.Fatal(err)
	}
	chainRates, err := PropagateRates(cr.Graph, map[OperatorID]float64{"src+ts": 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(origRates.In["win"]-chainRates.In["win"]) > 1e-9 {
		t.Errorf("win input rate: orig %v chained %v", origRates.In["win"], chainRates.In["win"])
	}
}

func TestChainLongPipeline(t *testing.T) {
	g := NewLogicalGraph()
	for i, id := range []OperatorID{"a", "b", "c", "d"} {
		mustAdd(t, g, Operator{ID: id, Kind: KindMap, Parallelism: 3, Selectivity: 1,
			Cost: UnitCost{CPU: float64(i+1) * 1e-5}})
	}
	mustEdge(t, g, Edge{From: "a", To: "b", Mode: Forward})
	mustEdge(t, g, Edge{From: "b", To: "c", Mode: Forward})
	mustEdge(t, g, Edge{From: "c", To: "d", Mode: Forward})
	cr, err := Chain(g)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Graph.NumOperators() != 1 {
		t.Fatalf("got %d operators, want 1", cr.Graph.NumOperators())
	}
	op := cr.Graph.Operators()[0]
	if math.Abs(op.Cost.CPU-1e-4) > 1e-15 { // 1+2+3+4 = 10e-5
		t.Errorf("combined CPU = %v", op.Cost.CPU)
	}
	if len(cr.Members[op.ID]) != 4 {
		t.Errorf("members = %v", cr.Members[op.ID])
	}
}

func TestChainNotAppliedAcrossFanOut(t *testing.T) {
	g := NewLogicalGraph()
	mustAdd(t, g, Operator{ID: "a", Kind: KindSource, Parallelism: 2, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "b", Parallelism: 2, Selectivity: 1})
	mustAdd(t, g, Operator{ID: "c", Parallelism: 2, Selectivity: 1})
	mustEdge(t, g, Edge{From: "a", To: "b", Mode: Forward})
	mustEdge(t, g, Edge{From: "a", To: "c", Mode: Forward})
	cr, err := Chain(g)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Graph.NumOperators() != 3 {
		t.Errorf("fan-out was chained: %d operators", cr.Graph.NumOperators())
	}
}

func TestExpandChainedPlan(t *testing.T) {
	g := chainableGraph(t)
	cr, err := Chain(g)
	if err != nil {
		t.Fatal(err)
	}
	chainedPhys, err := Expand(cr.Graph)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan()
	for i, task := range chainedPhys.Tasks() {
		plan.Assign(task, i%3)
	}
	expanded, err := ExpandChainedPlan(cr, plan)
	if err != nil {
		t.Fatal(err)
	}
	origPhys, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if expanded.Len() != origPhys.NumTasks() {
		t.Errorf("expanded plan has %d tasks, want %d", expanded.Len(), origPhys.NumTasks())
	}
	// Chain members share their chain task's worker.
	for idx := 0; idx < 2; idx++ {
		w := plan.MustWorker(TaskID{Op: "src+ts", Index: idx})
		if expanded.MustWorker(TaskID{Op: "src", Index: idx}) != w ||
			expanded.MustWorker(TaskID{Op: "ts", Index: idx}) != w {
			t.Errorf("chain members split across workers at index %d", idx)
		}
	}
	// Missing assignment surfaces as an error.
	partial := NewPlan()
	if _, err := ExpandChainedPlan(cr, partial); err == nil {
		t.Error("partial chained plan accepted")
	}
}

func TestPipelinedSuccessor(t *testing.T) {
	g := chainableGraph(t)
	// src =Forward=> ts with equal parallelism: eligible.
	if next, ok := PipelinedSuccessor(g, "src"); !ok || next != "ts" {
		t.Errorf("PipelinedSuccessor(src) = %q, %v; want ts, true", next, ok)
	}
	// ts -> map is AllToAll: not eligible even though it is ts's only
	// downstream.
	if next, ok := PipelinedSuccessor(g, "ts"); ok {
		t.Errorf("PipelinedSuccessor(ts) = %q, true; want ineligible (AllToAll edge)", next)
	}
	// win -> sink crosses a parallelism change: not eligible.
	if next, ok := PipelinedSuccessor(g, "win"); ok {
		t.Errorf("PipelinedSuccessor(win) = %q, true; want ineligible (parallelism change)", next)
	}
	// sink has no downstream.
	if _, ok := PipelinedSuccessor(g, "sink"); ok {
		t.Error("PipelinedSuccessor(sink) = true; want false")
	}
}

func TestPipelinedSuccessorExcludesFanInAndFanOut(t *testing.T) {
	g := NewLogicalGraph()
	for _, op := range []Operator{
		{ID: "a", Kind: KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "b", Kind: KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "join", Kind: KindJoin, Parallelism: 2, Selectivity: 1},
		{ID: "split", Kind: KindMap, Parallelism: 2, Selectivity: 1},
		{ID: "l", Kind: KindSink, Parallelism: 2, Selectivity: 0},
		{ID: "r", Kind: KindSink, Parallelism: 2, Selectivity: 0},
	} {
		mustAdd(t, g, op)
	}
	mustEdge(t, g, Edge{From: "a", To: "join", Mode: Forward})
	mustEdge(t, g, Edge{From: "b", To: "join", Mode: Forward})
	mustEdge(t, g, Edge{From: "join", To: "split", Mode: Forward})
	mustEdge(t, g, Edge{From: "split", To: "l", Mode: Forward})
	mustEdge(t, g, Edge{From: "split", To: "r", Mode: Forward})
	// Join fan-in: a and b each feed the join over a Forward edge, but the
	// join has two upstreams, so neither source may fuse into it.
	if next, ok := PipelinedSuccessor(g, "a"); ok {
		t.Errorf("PipelinedSuccessor(a) = %q, true; want ineligible (join fan-in)", next)
	}
	// join -> split is a pure 1:1 pipeline: eligible.
	if next, ok := PipelinedSuccessor(g, "join"); !ok || next != "split" {
		t.Errorf("PipelinedSuccessor(join) = %q, %v; want split, true", next, ok)
	}
	// split fans out to two sinks: not eligible.
	if next, ok := PipelinedSuccessor(g, "split"); ok {
		t.Errorf("PipelinedSuccessor(split) = %q, true; want ineligible (fan-out)", next)
	}
}
