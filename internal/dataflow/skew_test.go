package dataflow

import (
	"math"
	"testing"
)

func skewBase(t *testing.T) *LogicalGraph {
	t.Helper()
	g := NewLogicalGraph()
	mustAdd(t, g, Operator{ID: "src", Kind: KindSource, Parallelism: 2, Selectivity: 1,
		Cost: UnitCost{CPU: 1e-5, Net: 100}})
	mustAdd(t, g, Operator{ID: "win", Kind: KindWindow, Parallelism: 8, Selectivity: 0.25,
		Cost: UnitCost{CPU: 4e-4, IO: 1000, Net: 40}})
	mustAdd(t, g, Operator{ID: "sink", Kind: KindSink, Parallelism: 2, Selectivity: 0})
	mustEdge(t, g, Edge{From: "src", To: "win"})
	mustEdge(t, g, Edge{From: "win", To: "sink"})
	return g
}

func TestSplitForSkew(t *testing.T) {
	g := skewBase(t)
	sr, err := SplitForSkew(g, "win", []SkewGroup{
		{Tasks: 2, RateShare: 0.6}, // hot group: 2 tasks take 60% of input
		{Tasks: 6, RateShare: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Groups) != 2 {
		t.Fatalf("groups = %v", sr.Groups)
	}
	if sr.Graph.NumOperators() != 4 {
		t.Errorf("split graph has %d operators", sr.Graph.NumOperators())
	}
	if err := sr.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Total tasks preserved.
	if sr.Graph.TotalTasks() != g.TotalTasks() {
		t.Errorf("tasks %d != %d", sr.Graph.TotalTasks(), g.TotalTasks())
	}
	// Rates: hot group gets 60% of the window input; per-task rates skew.
	rates, err := PropagateRates(sr.Graph, map[OperatorID]float64{"src": 1000})
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := sr.Groups[0], sr.Groups[1]
	if math.Abs(rates.In[hot]-600) > 1e-9 || math.Abs(rates.In[cold]-400) > 1e-9 {
		t.Errorf("group inputs hot=%v cold=%v, want 600/400", rates.In[hot], rates.In[cold])
	}
	hotPer := rates.TaskInRate(sr.Graph, hot)   // 300/task
	coldPer := rates.TaskInRate(sr.Graph, cold) // 66.7/task
	if hotPer <= coldPer {
		t.Errorf("hot per-task rate %v <= cold %v", hotPer, coldPer)
	}
	// Downstream totals are preserved: sink sees 0.25*(600+400).
	if math.Abs(rates.In["sink"]-250) > 1e-9 {
		t.Errorf("sink input = %v, want 250", rates.In["sink"])
	}
}

func TestSplitForSkewValidation(t *testing.T) {
	g := skewBase(t)
	cases := []struct {
		name   string
		op     OperatorID
		groups []SkewGroup
	}{
		{"unknown op", "zz", []SkewGroup{{4, 0.5}, {4, 0.5}}},
		{"one group", "win", []SkewGroup{{8, 1}}},
		{"bad tasks", "win", []SkewGroup{{0, 0.5}, {8, 0.5}}},
		{"bad share", "win", []SkewGroup{{4, -0.5}, {4, 1.5}}},
		{"task sum", "win", []SkewGroup{{4, 0.5}, {2, 0.5}}},
		{"share sum", "win", []SkewGroup{{4, 0.5}, {4, 0.4}}},
	}
	for _, tc := range cases {
		if _, err := SplitForSkew(g, tc.op, tc.groups); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestMergePlan(t *testing.T) {
	g := skewBase(t)
	sr, err := SplitForSkew(g, "win", []SkewGroup{{Tasks: 2, RateShare: 0.6}, {Tasks: 6, RateShare: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	phys, err := Expand(sr.Graph)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan()
	for i, task := range phys.Tasks() {
		plan.Assign(task, i%4)
	}
	merged, err := sr.MergePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	origPhys, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(origPhys, 4, origPhys.NumTasks()); err != nil {
		t.Errorf("merged plan invalid: %v", err)
	}
	// Hot group tasks occupy original indices 0 and 1.
	for j := 0; j < 2; j++ {
		want := plan.MustWorker(TaskID{Op: sr.Groups[0], Index: j})
		if got := merged.MustWorker(TaskID{Op: "win", Index: j}); got != want {
			t.Errorf("hot task %d on worker %d, want %d", j, got, want)
		}
	}
	// Cold group tasks occupy indices 2..7.
	for j := 0; j < 6; j++ {
		want := plan.MustWorker(TaskID{Op: sr.Groups[1], Index: j})
		if got := merged.MustWorker(TaskID{Op: "win", Index: 2 + j}); got != want {
			t.Errorf("cold task %d on worker %d, want %d", j, got, want)
		}
	}
	if _, err := sr.MergePlan(NewPlan()); err == nil {
		t.Error("incomplete split plan accepted")
	}
}
