// Package telemetry is the repository's measurement substrate: log-scale
// latency histograms with windowed (recent-interval) views, a structured
// event tracer with an optional JSONL sink, and a stdlib-only HTTP exporter
// serving Prometheus text exposition plus a JSON event feed.
//
// The CAPSys paper's control loop is driven entirely by observability — its
// metrics collector scrapes busy/idle/backpressure time and record counters
// from Flink Task Managers to feed DS2 and CAPS. This package is the
// reproduction's equivalent: the engine samples per-record latency and
// worker resource saturation into a Telemetry hub, the controller and
// recovery loop trace their decisions, and the exporter makes a running job
// scrapeable mid-flight instead of inspectable only post-mortem.
package telemetry

import (
	"sort"
	"sync"
	"time"

	"capsys/internal/metrics"
)

// Telemetry is the hub instrumented components share: a metrics registry,
// named histograms (each paired with a windowed view), callback gauges and
// an event tracer. All methods are safe for concurrent use and nil-receiver
// safe, so a nil *Telemetry cleanly disables instrumentation.
type Telemetry struct {
	mu       sync.Mutex
	reg      *metrics.Registry
	hists    map[string]*Histogram // guarded by mu
	windows  map[string]*Windowed  // guarded by mu
	gaugeFns map[string]gaugeFunc  // guarded by mu
	tracer   *Tracer
	winEvery time.Duration
	winSlots int
}

type gaugeFunc struct {
	family string
	labels map[string]string
	fn     func() float64
}

// Options configures a Telemetry hub.
type Options struct {
	// TracerCapacity bounds the event ring buffer (default 4096).
	TracerCapacity int
	// WindowInterval and WindowIntervals shape the windowed histogram views
	// (defaults: 5s x 12, a one-minute rolling window).
	WindowInterval  time.Duration
	WindowIntervals int
}

// New creates a hub with default options.
func New() *Telemetry { return NewWith(Options{}) }

// NewWith creates a hub with explicit options.
func NewWith(opts Options) *Telemetry {
	if opts.WindowInterval <= 0 {
		opts.WindowInterval = 5 * time.Second
	}
	if opts.WindowIntervals < 1 {
		opts.WindowIntervals = 12
	}
	return &Telemetry{
		reg:      metrics.NewRegistry(),
		hists:    make(map[string]*Histogram),
		windows:  make(map[string]*Windowed),
		gaugeFns: make(map[string]gaugeFunc),
		tracer:   NewTracer(opts.TracerCapacity),
		winEvery: opts.WindowInterval,
		winSlots: opts.WindowIntervals,
	}
}

// Registry returns the hub's shared metrics registry (nil for a nil hub).
func (t *Telemetry) Registry() *metrics.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Tracer returns the hub's event tracer (nil for a nil hub; a nil Tracer
// swallows events).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Histogram returns (creating if needed) the named histogram with the
// default latency layout, paired with a windowed view. Returns nil on a nil
// hub — and a nil *Histogram's Observe is a no-op.
func (t *Telemetry) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hists[name]
	if !ok {
		h, _ = NewHistogram(DefaultLatencyOptions())
		t.hists[name] = h
		t.windows[name] = NewWindowed(h, t.winEvery, t.winSlots)
	}
	return h
}

// Window returns the windowed view of the named histogram, creating the
// histogram if needed.
func (t *Telemetry) Window(name string) *Windowed {
	if t == nil {
		return nil
	}
	t.Histogram(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.windows[name]
}

// HistogramNames returns the registered histogram names, sorted.
func (t *Telemetry) HistogramNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.hists))
	for n := range t.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetGaugeFunc registers (or replaces) a callback gauge in the given metric
// family with the given label set. The callback runs at scrape time, so the
// exported value is live. The (family, labels) pair identifies the series.
func (t *Telemetry) SetGaugeFunc(family string, labels map[string]string, fn func() float64) {
	if t == nil || fn == nil {
		return
	}
	key := family + "|" + renderLabels(labels)
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gaugeFns[key] = gaugeFunc{family: family, labels: cp, fn: fn}
}

// GaugeSample is one callback gauge's identity and current value, as
// captured by SampleGaugeFuncs. All fields are plain exported values, so
// samples survive gob encoding — workers ship them to the coordinator on
// the heartbeat piggyback.
type GaugeSample struct {
	Family string
	Labels map[string]string
	Value  float64
}

// SampleGaugeFuncs evaluates every registered callback gauge and returns
// the samples in stable (family, labels) order. Nil-receiver safe.
func (t *Telemetry) SampleGaugeFuncs() []GaugeSample {
	if t == nil {
		return nil
	}
	fns := t.gaugeFuncs()
	out := make([]GaugeSample, 0, len(fns))
	for _, g := range fns {
		out = append(out, GaugeSample{Family: g.family, Labels: g.labels, Value: g.fn()})
	}
	return out
}

// gaugeFuncs returns a stable-ordered copy of the registered callback
// gauges.
func (t *Telemetry) gaugeFuncs() []gaugeFunc {
	t.mu.Lock()
	keys := make([]string, 0, len(t.gaugeFns))
	for k := range t.gaugeFns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]gaugeFunc, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.gaugeFns[k])
	}
	t.mu.Unlock()
	return out
}
