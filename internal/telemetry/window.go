package telemetry

import (
	"sync"
	"time"
)

// Windowed is a rolling-interval view over a cumulative Histogram: instead
// of distributions and rates since process start, it reports them over the
// most recent few intervals. Rotation is lazy — any accessor first closes
// out elapsed intervals — so no background goroutine is needed and an idle
// window naturally ages out stale observations.
type Windowed struct {
	mu        sync.Mutex
	h         *Histogram
	interval  time.Duration
	intervals int
	now       func() time.Time

	ring   []windowSlot // closed intervals, oldest first
	base   HistogramSnapshot
	baseAt time.Time
}

type windowSlot struct {
	delta HistogramSnapshot
	dur   time.Duration
}

// NewWindowed wraps h with a rolling window of `intervals` slots of length
// `interval` each. The clock defaults to time.Now.
func NewWindowed(h *Histogram, interval time.Duration, intervals int) *Windowed {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if intervals < 1 {
		intervals = 12
	}
	w := &Windowed{h: h, interval: interval, intervals: intervals, now: time.Now}
	w.base = h.Snapshot()
	w.baseAt = w.now()
	return w
}

// SetClock re-bases the window on an injected clock: the base snapshot is
// retaken, closed intervals are discarded, and all subsequent rotation and
// span arithmetic uses `now`. Observability tests pin it so windowed
// quantiles and rates are deterministic. Nil-receiver safe.
func (w *Windowed) SetClock(now func() time.Time) {
	if w == nil || now == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.now = now
	w.base = w.h.Snapshot()
	w.baseAt = now()
	w.ring = nil
}

// rotate closes the current interval if it has run past its length. Called
// with the mutex held.
func (w *Windowed) rotate(now time.Time) {
	for now.Sub(w.baseAt) >= w.interval {
		cur := w.h.Snapshot()
		w.ring = append(w.ring, windowSlot{delta: cur.Sub(w.base), dur: w.interval})
		if len(w.ring) > w.intervals {
			w.ring = w.ring[1:]
		}
		w.base = cur
		w.baseAt = w.baseAt.Add(w.interval)
		// If the window went idle for many intervals, don't spin: jump the
		// base time forward and keep at most `intervals` closed slots.
		if now.Sub(w.baseAt) >= time.Duration(w.intervals+1)*w.interval {
			w.baseAt = now.Add(-w.interval * time.Duration(w.intervals))
		}
	}
}

// Snapshot returns the merged distribution over the retained intervals plus
// the in-progress one, together with the wall-clock span it covers.
func (w *Windowed) Snapshot() (HistogramSnapshot, time.Duration) {
	if w == nil {
		return HistogramSnapshot{}, 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	w.rotate(now)
	cur := w.h.Snapshot()
	out := cur.Sub(w.base)
	span := now.Sub(w.baseAt)
	for i := len(w.ring) - 1; i >= 0; i-- {
		if err := out.Merge(w.ring[i].delta); err != nil {
			break
		}
		span += w.ring[i].dur
	}
	return out, span
}

// Rate returns observations per second over the current window.
func (w *Windowed) Rate() float64 {
	snap, span := w.Snapshot()
	if span <= 0 {
		return 0
	}
	return float64(snap.Count) / span.Seconds()
}
