package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// HistogramOptions fixes a histogram's bucket layout. Buckets are log-scale:
// bucket i covers (Start*Growth^(i-1), Start*Growth^i], bucket 0 covers
// (-inf, Start], and one extra overflow bucket covers everything above the
// last finite bound. Two histograms with equal options have identical bucket
// boundaries and their snapshots are mergeable.
type HistogramOptions struct {
	// Start is the upper bound of the first bucket (must be > 0).
	Start float64
	// Growth is the bucket-to-bucket growth factor (must be > 1).
	Growth float64
	// Buckets is the number of finite buckets (must be >= 1).
	Buckets int
}

// DefaultLatencyOptions is the layout used for latency-in-seconds series:
// 1µs to ~2.3 hours in 34 power-of-two buckets.
func DefaultLatencyOptions() HistogramOptions {
	return HistogramOptions{Start: 1e-6, Growth: 2, Buckets: 34}
}

func (o HistogramOptions) validate() error {
	if o.Start <= 0 || o.Growth <= 1 || o.Buckets < 1 {
		return fmt.Errorf("telemetry: invalid histogram options %+v", o)
	}
	return nil
}

// bounds precomputes the finite bucket upper bounds.
func (o HistogramOptions) bounds() []float64 {
	b := make([]float64, o.Buckets)
	v := o.Start
	for i := range b {
		b[i] = v
		v *= o.Growth
	}
	return b
}

// Histogram is a fixed-bucket log-scale histogram safe for concurrent use.
// Observations are lock-free atomic increments; snapshots are consistent
// enough for monitoring (bucket counts never move backwards) without
// stopping writers.
type Histogram struct {
	opts   HistogramOptions
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomicFloat
	min    atomicFloat
	max    atomicFloat
}

// NewHistogram creates a histogram with the given layout.
func NewHistogram(opts HistogramOptions) (*Histogram, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	h := &Histogram{opts: opts, bounds: opts.bounds(), counts: make([]atomic.Int64, opts.Buckets+1)}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h, nil
}

// Options returns the histogram's bucket layout.
func (h *Histogram) Options() HistogramOptions { return h.opts }

// Observe records one value. Nil histograms are a no-op, so call sites can
// skip the enabled-check.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// SearchFloat64s finds the first bound >= v, i.e. the tightest bucket
	// whose upper bound covers v; values above every bound land in overflow.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Snapshot captures the histogram's current state. The snapshot is a plain
// value: it can be merged with snapshots of identically laid-out histograms,
// subtracted from a later snapshot of the same histogram, and queried for
// quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.load()
	s.Min = h.min.load()
	s.Max = h.max.load()
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

// Absorb folds a snapshot's observations into the live histogram — the
// write-side counterpart of Merge, used by the coordinator to accumulate
// interval snapshots shipped from workers into its own cluster-level
// histograms. The snapshot must share the histogram's bucket layout; empty
// snapshots (and nil histograms) are a no-op.
func (h *Histogram) Absorb(s HistogramSnapshot) error {
	if h == nil || s.Count == 0 {
		return nil
	}
	if !sameBounds(h.bounds, s.Bounds) {
		return fmt.Errorf("telemetry: absorbing a snapshot with a different bucket layout")
	}
	for i, c := range s.Counts {
		if c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.add(s.Sum)
	h.min.storeMin(s.Min)
	h.max.storeMax(s.Max)
	return nil
}

// HistogramSnapshot is a point-in-time copy of a histogram. Bounds is shared
// (never mutated); Counts[i] counts observations in bucket i and the final
// entry is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
}

// Merge folds other into s. The two snapshots must share a bucket layout.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if other.Count == 0 {
		return nil
	}
	if s.Count == 0 && s.Bounds == nil {
		*s = other.clone()
		return nil
	}
	if !sameBounds(s.Bounds, other.Bounds) {
		return fmt.Errorf("telemetry: merging histograms with different bucket layouts")
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	return nil
}

// Sub returns the interval snapshot s - prev, where prev is an earlier
// snapshot of the same histogram. Min/Max are re-derived from the interval's
// occupied buckets (per-interval extremes are not tracked exactly).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if prev.Count == 0 || prev.Bounds == nil {
		return s.clone()
	}
	out := HistogramSnapshot{Bounds: s.Bounds, Counts: make([]int64, len(s.Counts))}
	for i := range s.Counts {
		d := s.Counts[i] - prev.Counts[i]
		if d < 0 {
			d = 0
		}
		out.Counts[i] = d
		out.Count += d
	}
	out.Sum = s.Sum - prev.Sum
	if out.Count == 0 {
		return out
	}
	lo, hi := -1, -1
	for i, c := range out.Counts {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	out.Min = s.Min
	if lo > 0 {
		out.Min = out.Bounds[lo-1]
	}
	if hi < len(out.Bounds) {
		out.Max = out.Bounds[hi]
	} else {
		out.Max = s.Max
	}
	if out.Min > out.Max {
		out.Min = out.Max
	}
	return out
}

func (s HistogramSnapshot) clone() HistogramSnapshot {
	c := s
	c.Counts = append([]int64(nil), s.Counts...)
	return c
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the p-quantile (p in [0,1]) by linear interpolation
// within the covering bucket, clamped to the observed [Min, Max] range.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Max
			if i < len(s.Bounds) && s.Bounds[i] < upper {
				upper = s.Bounds[i]
			}
			if lower < s.Min {
				lower = s.Min
			}
			if upper < lower {
				upper = lower
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return lower + (upper-lower)*frac
		}
		cum = next
	}
	return s.Max
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// atomicFloat is a float64 with atomic add/min/max via CAS on the bit
// pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
