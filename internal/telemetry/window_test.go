package telemetry

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually-advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestWindow builds a Windowed over h with a deterministic clock.
func newTestWindow(h *Histogram, interval time.Duration, intervals int) (*Windowed, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := NewWindowed(h, interval, intervals)
	w.mu.Lock()
	w.now = clk.now
	w.baseAt = clk.t
	w.mu.Unlock()
	return w, clk
}

func TestWindowedRotation(t *testing.T) {
	h, _ := NewHistogram(HistogramOptions{Start: 1, Growth: 2, Buckets: 4})
	w, clk := newTestWindow(h, time.Second, 3)

	h.Observe(1)
	h.Observe(1)
	clk.advance(500 * time.Millisecond)
	snap, span := w.Snapshot()
	if snap.Count != 2 || span != 500*time.Millisecond {
		t.Fatalf("in-progress: count %d span %v", snap.Count, span)
	}

	// Close the first interval, observe more in the second.
	clk.advance(time.Second)
	h.Observe(3)
	snap, span = w.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("after rotation: count %d, want 3", snap.Count)
	}
	if span != 1500*time.Millisecond {
		t.Fatalf("after rotation: span %v, want 1.5s", span)
	}

	// Advance past the retention horizon: only `intervals` closed slots are
	// kept, so the earliest observations age out.
	clk.advance(4 * time.Second)
	snap, _ = w.Snapshot()
	if snap.Count != 0 {
		t.Fatalf("after aging: count %d, want 0", snap.Count)
	}
	// Cumulative histogram still has everything.
	if h.Count() != 3 {
		t.Fatalf("cumulative count %d, want 3", h.Count())
	}
}

func TestWindowedRate(t *testing.T) {
	h, _ := NewHistogram(HistogramOptions{Start: 1, Growth: 2, Buckets: 4})
	w, clk := newTestWindow(h, time.Second, 4)
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	clk.advance(2 * time.Second)
	if r := w.Rate(); r != 5 {
		t.Fatalf("rate = %v, want 5 (10 obs over 2s)", r)
	}
}

func TestWindowedIdleJump(t *testing.T) {
	h, _ := NewHistogram(HistogramOptions{Start: 1, Growth: 2, Buckets: 4})
	w, clk := newTestWindow(h, time.Second, 3)
	h.Observe(1)
	// A huge idle gap must not spin the rotation loop per elapsed interval.
	clk.advance(1000 * time.Hour)
	done := make(chan struct{})
	go func() {
		w.Snapshot()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("rotation did not complete after a long idle gap")
	}
}

func TestWindowedNilSafe(t *testing.T) {
	var w *Windowed
	if snap, span := w.Snapshot(); snap.Count != 0 || span != 0 {
		t.Error("nil Windowed snapshot not empty")
	}
	if w.Rate() != 0 {
		t.Error("nil Windowed rate != 0")
	}
}

func TestWindowedConcurrent(t *testing.T) {
	h, _ := NewHistogram(DefaultLatencyOptions())
	w := NewWindowed(h, time.Millisecond, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(1e-4)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			w.Snapshot()
			w.Rate()
		}
	}()
	wg.Wait()
}
