package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"capsys/internal/metrics"
)

// goldenHub builds a hub with fully deterministic contents: fixed counter /
// gauge / time / task-metric values, a latency histogram with known
// observations, a pinned window clock, and a constant callback gauge.
func goldenHub() *Telemetry {
	tel := New()
	reg := tel.Registry()
	reg.Counter("job.recoveries").Inc(2)
	reg.Gauge("job.downtime_seconds").Set(1.5)
	reg.Time("job.replay").Add(2 * time.Second)
	reg.Counter(metrics.TaskMetricName("sink", 0, "records_in")).Inc(10)
	reg.Counter(metrics.TaskMetricName("sink", 1, "records_in")).Inc(12)
	reg.Gauge(metrics.TaskMetricName("sink", 0, "useful_fraction")).Set(0.75)

	// Cluster-aggregated series: a per-worker counter and gauge, a
	// worker-prefixed per-task counter (task family + worker label), and
	// the cluster rollup the coordinator maintains beside them.
	reg.Counter(metrics.WorkerMetricName("w1", "net.frames_sent")).Inc(42)
	reg.Gauge(metrics.WorkerMetricName("w1", "trace_dropped")).Set(3)
	reg.Counter(metrics.WorkerMetricName("w1", metrics.TaskMetricName("sink", 0, "records_in"))).Inc(10)
	reg.Counter(metrics.ClusterMetricName("net.frames_sent")).Inc(42)

	h := tel.Histogram("latency.sink")
	for i := 0; i < 3; i++ {
		h.Observe(0.001)
	}
	h.Observe(0.004)

	// Pin the window clock: one closed 5s interval holding every observation
	// plus a 2s in-progress interval.
	win := tel.Window("latency.sink")
	win.mu.Lock()
	start := time.Unix(1000, 0)
	win.baseAt = start
	win.now = func() time.Time { return start.Add(7 * time.Second) }
	win.mu.Unlock()

	tel.SetGaugeFunc("worker_saturation", map[string]string{"worker": "w0", "resource": "cpu"},
		func() float64 { return 0.25 })
	tel.SetGaugeFunc("worker_saturation", map[string]string{"worker": "w0", "resource": "io"},
		func() float64 { return 0.5 })
	return tel
}

// TestWritePrometheusGolden pins the exposition format: family ordering,
// TYPE lines, label rendering, histogram bucket/sum/count series and the
// quantile and window gauge families.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenHub().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	golden := filepath.Join("testdata", "prometheus.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusMeters covers the meter-derived series separately from
// the golden: meter rates depend on wall-clock elapsed time, so only the
// series names and the count value are asserted.
func TestWritePrometheusMeters(t *testing.T) {
	tel := New()
	tel.Registry().Meter("records").Mark(50)
	var buf bytes.Buffer
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE capsys_records_total counter\ncapsys_records_total 50\n") {
		t.Errorf("meter count series missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE capsys_records_per_second gauge\n") {
		t.Errorf("meter rate series missing:\n%s", out)
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var tel *Telemetry
	var buf bytes.Buffer
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil hub wrote %q", buf.String())
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"job.recoveries":  "job_recoveries",
		"latency.sink":    "latency_sink",
		"a..b":            "a_b",
		"Q2-join/src-bid": "Q2_join_src_bid",
		"_x_":             "x",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	tel := goldenHub()
	tel.Tracer().Emit(Event{Kind: EventCheckpointStart, Epoch: 1})
	tel.Tracer().Emit(Event{Kind: EventCheckpointComplete, Epoch: 1})
	tel.Tracer().Emit(Event{Kind: EventJobComplete})

	srv, addr, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ctype, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	for _, want := range []string{
		"capsys_latency_seconds_bucket{le=",
		`capsys_latency_seconds_quantile{op="sink",quantile="0.99"}`,
		`capsys_worker_saturation{resource="cpu",worker="w0"} 0.25`,
		"capsys_job_recoveries_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, ctype, body = get("/events")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/events status %d type %q", code, ctype)
	}
	var feed struct {
		Schema  int     `json:"schema"`
		Dropped int64   `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &feed); err != nil {
		t.Fatal(err)
	}
	if feed.Schema != TraceSchemaVersion || len(feed.Events) != 3 {
		t.Errorf("/events schema %d events %d, want %d and 3", feed.Schema, len(feed.Events), TraceSchemaVersion)
	}

	_, _, body = get("/events?n=1")
	if err := json.Unmarshal([]byte(body), &feed); err != nil {
		t.Fatal(err)
	}
	if len(feed.Events) != 1 || feed.Events[0].Kind != EventJobComplete {
		t.Errorf("/events?n=1 returned %+v", feed.Events)
	}

	if code, _, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope status %d, want 404", code)
	}
	if code, _, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", code, body)
	}
}

func TestTelemetryHubBasics(t *testing.T) {
	var nilTel *Telemetry
	if nilTel.Registry() != nil || nilTel.Tracer() != nil || nilTel.Histogram("x") != nil ||
		nilTel.Window("x") != nil || nilTel.HistogramNames() != nil {
		t.Error("nil hub leaked non-nil components")
	}
	nilTel.SetGaugeFunc("f", nil, func() float64 { return 1 }) // must not panic
	nilTel.Histogram("x").Observe(1)                           // nil histogram no-op

	tel := New()
	h1 := tel.Histogram("latency.a")
	h2 := tel.Histogram("latency.a")
	if h1 != h2 {
		t.Error("Histogram not idempotent")
	}
	tel.Histogram("latency.b")
	names := tel.HistogramNames()
	if len(names) != 2 || names[0] != "latency.a" || names[1] != "latency.b" {
		t.Errorf("HistogramNames = %v", names)
	}
	if tel.Window("latency.a") == nil {
		t.Error("Window missing for registered histogram")
	}
}
