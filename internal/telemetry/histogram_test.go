package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramOptionsValidate(t *testing.T) {
	bad := []HistogramOptions{
		{Start: 0, Growth: 2, Buckets: 4},
		{Start: 1, Growth: 1, Buckets: 4},
		{Start: 1, Growth: 2, Buckets: 0},
	}
	for _, o := range bad {
		if _, err := NewHistogram(o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if _, err := NewHistogram(DefaultLatencyOptions()); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	h, err := NewHistogram(HistogramOptions{Start: 1, Growth: 2, Buckets: 4}) // bounds 1,2,4,8
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1.5, 3, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	s := h.Snapshot()
	wantCounts := []int64{1, 1, 2, 1, 1} // (..1],(1,2],(2,4],(4,8],overflow
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Min != 0.5 || s.Max != 100 {
		t.Errorf("min/max = %v/%v, want 0.5/100", s.Min, s.Max)
	}
	if got, want := s.Sum, 0.5+1.5+3+3+7+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if got, want := s.Mean(), (0.5+1.5+3+3+7+100)/6; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Quantiles are bucket interpolations clamped to [Min, Max].
	if q := s.Quantile(0); q < s.Min || q > s.Max {
		t.Errorf("p0 = %v outside [%v,%v]", q, s.Min, s.Max)
	}
	if q := s.Quantile(0.5); q < 2 || q > 4 {
		t.Errorf("p50 = %v, want within (2,4]", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("p100 = %v, want 100 (the max)", q)
	}
	if got := s.Quantile(0.99); got > 100 {
		t.Errorf("p99 = %v exceeds max", got)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 {
		t.Error("nil Count != 0")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Error("nil snapshot not empty")
	}
}

func TestSnapshotMerge(t *testing.T) {
	opts := HistogramOptions{Start: 1, Growth: 2, Buckets: 3}
	a, _ := NewHistogram(opts)
	b, _ := NewHistogram(opts)
	a.Observe(0.5)
	a.Observe(3)
	b.Observe(7)
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Count != 3 || sa.Min != 0.5 || sa.Max != 7 {
		t.Errorf("merged = count %d min %v max %v", sa.Count, sa.Min, sa.Max)
	}
	// Merging into an empty snapshot adopts the other's layout.
	var empty HistogramSnapshot
	if err := empty.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if empty.Count != 1 {
		t.Errorf("empty-merge count = %d", empty.Count)
	}
	// Layout mismatch is an explicit error.
	c, _ := NewHistogram(HistogramOptions{Start: 2, Growth: 2, Buckets: 3})
	c.Observe(1)
	sc := c.Snapshot()
	if err := sa.Merge(sc); err == nil {
		t.Error("bounds mismatch accepted")
	}
}

func TestSnapshotSub(t *testing.T) {
	h, _ := NewHistogram(HistogramOptions{Start: 1, Growth: 2, Buckets: 3})
	h.Observe(0.5)
	prev := h.Snapshot()
	h.Observe(3)
	h.Observe(3)
	cur := h.Snapshot()
	d := cur.Sub(prev)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if math.Abs(d.Sum-6) > 1e-9 {
		t.Errorf("delta sum = %v, want 6", d.Sum)
	}
	// The interval's min/max are bucket-bound approximations around (2,4].
	if d.Min != 2 || d.Max != 4 {
		t.Errorf("delta min/max = %v/%v, want 2/4", d.Min, d.Max)
	}
	// Subtracting from an unchanged histogram yields an empty delta.
	if e := cur.Sub(cur); e.Count != 0 {
		t.Errorf("self-delta count = %d", e.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h, _ := NewHistogram(DefaultLatencyOptions())
	const goroutines, perG = 8, 5000
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g+1) * 1e-5 * float64(i%17+1))
			}
		}(g)
	}
	// Concurrent reader: counts must never move backwards.
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := h.Count()
			if n < last {
				t.Error("count moved backwards")
				return
			}
			last = n
			h.Snapshot().Quantile(0.99)
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
	if s := h.Snapshot(); s.Count != goroutines*perG {
		t.Fatalf("snapshot count = %d, want %d", s.Count, goroutines*perG)
	}
}
