package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// newTestTracer returns a tracer with a deterministic clock: each Emit is
// stamped exactly 1ms after the previous one.
func newTestTracer(capacity int) *Tracer {
	tr := NewTracer(capacity)
	tr.start = time.Unix(0, 0)
	tick := 0
	tr.now = func() time.Time {
		tick++
		return tr.start.Add(time.Duration(tick) * time.Millisecond)
	}
	return tr
}

// TestTraceJSONLGolden pins the JSONL schema: field order, the versioned
// "schema" field, and the kind taxonomy. If this test fails after an Event
// change, bump TraceSchemaVersion and regenerate with UPDATE_GOLDEN=1.
func TestTraceJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := newTestTracer(16)
	tr.SetSink(&buf)
	tr.Emit(Event{Kind: EventJobStart, Attrs: map[string]any{"tasks": 6, "workers": 3}})
	tr.Emit(Event{Kind: EventCheckpointStart, Epoch: 1, Op: "src"})
	tr.Emit(Event{Kind: EventCheckpointComplete, Epoch: 1, Attrs: map[string]any{"last_task": "sink[0]"}})
	tr.Emit(Event{Kind: EventFault, Task: "map[1]", Op: "map", Worker: "2", Epoch: 1,
		Attrs: map[string]any{"fault": "kill-worker", "records": 42}})
	tr.Emit(Event{Kind: EventRecoveryStart, Task: "map[1]", Op: "map", Worker: "w2", Epoch: 1, Attempt: 1,
		Attrs: map[string]any{"fault": "kill-worker"}})
	tr.Emit(Event{Kind: EventReschedule, Query: "Q1-sliding", Worker: "w2", Attempt: 1,
		Attrs: map[string]any{"moved_tasks": 4, "strategy": "caps"}})
	tr.Emit(Event{Kind: EventRecoveryRestart, Epoch: 1, Attempt: 2})
	tr.Emit(Event{Kind: EventDecision, Query: "Q1-sliding",
		Attrs: map[string]any{"backpressure": 0.25, "throughput": 1234.5}})
	// Cluster-timeline events carry cross-process provenance (Src, WSeq).
	tr.Emit(Event{Kind: EventWorkerAttemptStart, Src: "w1", WSeq: 0, Worker: "w1", Attempt: 1})
	tr.Emit(Event{Kind: EventPeerDown, Src: "coord", Worker: "w2", Attempt: 1,
		Attrs: map[string]any{"reporter": 0, "accused": 2}})
	tr.Emit(Event{Kind: EventWorkerAttemptDone, Src: "w1", WSeq: 7, Worker: "w1", Attempt: 2,
		Attrs: map[string]any{"completed": true}})
	tr.Emit(Event{Kind: EventJobComplete, Attrs: map[string]any{"failed": false}})
	if err := tr.SinkErr(); err != nil {
		t.Fatal(err)
	}

	got := buf.String()
	golden := filepath.Join("testdata", "trace.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace schema drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Every line must round-trip as a schema-1 event.
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if ev.Schema != TraceSchemaVersion {
			t.Errorf("line %d: schema %d, want %d", i+1, ev.Schema, TraceSchemaVersion)
		}
		if ev.Seq != int64(i) {
			t.Errorf("line %d: seq %d, want %d", i+1, ev.Seq, i)
		}
	}
}

func TestTracerRingBuffer(t *testing.T) {
	tr := newTestTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EventDecision, Attrs: map[string]any{"i": i}})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].Seq != 6 || evs[len(evs)-1].Seq != 9 {
		t.Errorf("retained seqs %d..%d, want 6..9", evs[0].Seq, evs[len(evs)-1].Seq)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EventFault})
	tr.SetSink(&bytes.Buffer{})
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 || tr.SinkErr() != nil {
		t.Error("nil tracer leaked state")
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestTracerSinkErrorLatches(t *testing.T) {
	tr := newTestTracer(8)
	w := &failingWriter{}
	tr.SetSink(w)
	tr.Emit(Event{Kind: EventFault})
	tr.Emit(Event{Kind: EventFault})
	if tr.SinkErr() == nil {
		t.Fatal("sink error not surfaced")
	}
	if w.n != 1 {
		t.Errorf("sink written %d times after error, want 1", w.n)
	}
	// Events still land in the ring despite the dead sink.
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(256)
	var buf bytes.Buffer
	tr.SetSink(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(Event{Kind: EventDecision, Query: fmt.Sprintf("q%d", g)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tr.Events()
			tr.Len()
			tr.Dropped()
		}
	}()
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != 8*500 {
		t.Fatalf("retained+dropped = %d, want %d", got, 8*500)
	}
	// Sequence numbers must be unique and dense.
	seen := make(map[int64]bool)
	for _, ev := range tr.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}
