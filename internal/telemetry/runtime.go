package telemetry

import "runtime"

// RegisterRuntimeGauges registers process-introspection gauges on the hub:
// goroutine count, live heap bytes and cumulative GC pause time. Values are
// read at scrape time (one ReadMemStats per scrape), so they are live
// without a background sampler. Complements -pprof-addr: the gauges give
// the cheap always-on signal, pprof the deep dive. Nil-receiver safe.
func (t *Telemetry) RegisterRuntimeGauges() {
	if t == nil {
		return
	}
	t.SetGaugeFunc("runtime_goroutines", nil, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	t.SetGaugeFunc("runtime_heap_alloc_bytes", nil, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	t.SetGaugeFunc("runtime_gc_pause_seconds_total", nil, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.PauseTotalNs) / 1e9
	})
}
