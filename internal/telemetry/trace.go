package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TraceSchemaVersion is stamped into every event so JSONL logs written by
// different builds can be told apart. Bump it on any field change.
// Version 2 added the cross-process provenance fields Src and WSeq.
const TraceSchemaVersion = 2

// Event kinds. The taxonomy covers the control-loop and fault-tolerance
// actions the CAPSys reproduction takes: checkpointing, fault injection,
// recovery/rescheduling, and the controller's profile→DS2→CAPS decisions.
const (
	// EventCheckpointStart fires when a checkpoint epoch's first barrier is
	// injected at a source.
	EventCheckpointStart = "checkpoint.start"
	// EventCheckpointComplete fires when every task has snapshotted the
	// epoch (the epoch is globally durable).
	EventCheckpointComplete = "checkpoint.complete"
	// EventFault fires when an injected fault triggers (kill/crash/stall).
	EventFault = "fault.injected"
	// EventRecoveryStart fires when a recoverable fault aborts the running
	// attempt.
	EventRecoveryStart = "recovery.start"
	// EventRecoveryRestart fires when the next attempt is deployed,
	// restored from a checkpoint epoch.
	EventRecoveryRestart = "recovery.restart"
	// EventReschedule fires when the controller re-places tasks onto the
	// surviving workers.
	EventReschedule = "controller.reschedule"
	// EventDecision records one controller iteration: the metric inputs it
	// saw and the scaling/placement plan it chose.
	EventDecision = "controller.decision"
	// EventJobStart / EventJobComplete bracket one engine job run.
	EventJobStart    = "job.start"
	EventJobComplete = "job.complete"
	// EventPeerDown fires when the coordinator handles a worker's
	// data-plane accusation against a peer (PEERDOWN frame).
	EventPeerDown = "peer.down"
	// EventRescaleStart fires when a live rescale has drained to a complete
	// checkpoint epoch and its key-group repartition is applied; attrs
	// carry the old/new parallelism and state_moved_bytes.
	EventRescaleStart = "rescale.start"
	// EventRescaleComplete fires when the rescaled deployment is restored
	// and about to run; attrs carry the measured downtime.
	EventRescaleComplete = "rescale.complete"
	// EventWorkerAttemptStart / EventWorkerAttemptDone bracket one worker
	// process's participation in one attempt of a distributed run, so every
	// worker appears in the merged cluster timeline even when it hosts no
	// checkpointing source.
	EventWorkerAttemptStart = "worker.attempt.start"
	EventWorkerAttemptDone  = "worker.attempt.done"
)

// Event is one structured trace entry. Field order is fixed (it defines the
// JSONL schema pinned by golden tests); Attrs carries kind-specific values
// and marshals with sorted keys.
type Event struct {
	Schema int   `json:"schema"`
	Seq    int64 `json:"seq"`
	// Src and WSeq carry cross-process provenance in a merged cluster
	// timeline: the originating process ("w0".."wN" or "coord") and the
	// event's sequence number in that origin's tracer. Events emitted and
	// consumed inside one process leave both zero.
	Src     string         `json:"src,omitempty"`
	WSeq    int64          `json:"wseq,omitempty"`
	TMS     float64        `json:"t_ms"`
	Kind    string         `json:"kind"`
	Query   string         `json:"query,omitempty"`
	Op      string         `json:"op,omitempty"`
	Task    string         `json:"task,omitempty"`
	Worker  string         `json:"worker,omitempty"`
	Epoch   int64          `json:"epoch,omitempty"`
	Attempt int            `json:"attempt,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Tracer collects events into a bounded ring buffer and, optionally, streams
// them to a JSONL sink. Emit is safe for concurrent use. A nil Tracer
// swallows events, so instrumented code needs no enabled-checks.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	now     func() time.Time
	buf     []Event
	seq     int64
	dropped int64
	sink    io.Writer
	sinkErr error
	feeds   []*TraceFeed // guarded by mu
}

// NewTracer creates a tracer retaining the last `capacity` events (default
// 4096 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{start: time.Now(), now: time.Now, buf: make([]Event, 0, capacity)}
}

// SetSink streams every subsequent event to w as one JSON line each. The
// first write error is latched (see SinkErr) and stops further writes.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = w
	t.sinkErr = nil
}

// Emit records ev, filling in Schema, Seq and TMS (milliseconds since the
// tracer was created).
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev.Schema = TraceSchemaVersion
	ev.Seq = t.seq
	t.seq++
	ev.TMS = float64(t.now().Sub(t.start)) / float64(time.Millisecond)
	if len(t.buf) == cap(t.buf) {
		copy(t.buf, t.buf[1:])
		t.buf = t.buf[:len(t.buf)-1]
		t.dropped++
	}
	t.buf = append(t.buf, ev)
	for _, f := range t.feeds {
		select {
		case f.ch <- ev:
		default:
			f.dropped.Add(1)
		}
	}
	if t.sink != nil && t.sinkErr == nil {
		line, err := json.Marshal(ev)
		if err == nil {
			line = append(line, '\n')
			_, err = t.sink.Write(line)
		}
		if err != nil {
			t.sinkErr = err
		}
	}
}

// Events returns a chronological copy of the retained events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.buf))
	copy(out, t.buf)
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many events the ring buffer has evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// TraceFeed is a bounded, non-blocking subscription to a Tracer. Emit
// never blocks on a feed: when the buffer is full the event is discarded
// and counted, so a slow or stalled consumer (a worker's heartbeat
// shipping loop) can never back-pressure the instrumented code. All
// methods are nil-receiver safe.
type TraceFeed struct {
	ch      chan Event
	dropped atomic.Int64
}

// Subscribe attaches a feed buffering up to `capacity` events (default
// 1024 when capacity <= 0). Events already retained are not replayed; the
// feed sees everything emitted after the call.
func (t *Tracer) Subscribe(capacity int) *TraceFeed {
	if t == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = 1024
	}
	f := &TraceFeed{ch: make(chan Event, capacity)}
	t.mu.Lock()
	t.feeds = append(t.feeds, f)
	t.mu.Unlock()
	return f
}

// Drain returns up to max buffered events without blocking.
func (f *TraceFeed) Drain(max int) []Event {
	if f == nil {
		return nil
	}
	var out []Event
	for len(out) < max {
		select {
		case ev := <-f.ch:
			out = append(out, ev)
		default:
			return out
		}
	}
	return out
}

// Dropped counts events discarded because the feed's buffer was full.
func (f *TraceFeed) Dropped() int64 {
	if f == nil {
		return 0
	}
	return f.dropped.Load()
}

// SinkErr returns the first sink write error, if any.
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}
