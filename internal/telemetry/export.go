package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"capsys/internal/metrics"
)

// quantiles exported for every histogram and windowed view.
var exportQuantiles = []struct {
	label string
	p     float64
}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}}

// promFamily is one exposition-format metric family: a TYPE header followed
// by sample lines in insertion order (bucket order must stay ascending).
type promFamily struct {
	name  string
	typ   string
	lines []string
}

type promDoc struct {
	order    []string
	families map[string]*promFamily
}

func newPromDoc() *promDoc {
	return &promDoc{families: make(map[string]*promFamily)}
}

func (d *promDoc) family(name, typ string) *promFamily {
	f, ok := d.families[name]
	if !ok {
		f = &promFamily{name: name, typ: typ}
		d.families[name] = f
		d.order = append(d.order, name)
	}
	return f
}

func (f *promFamily) add(series string, labels map[string]string, v float64) {
	f.lines = append(f.lines, fmt.Sprintf("%s%s %s", series, renderLabels(labels), formatFloat(v)))
}

func (d *promDoc) write(w io.Writer) error {
	names := append([]string(nil), d.order...)
	sort.Strings(names)
	for _, n := range names {
		f := d.families[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus renders the hub's current state in Prometheus text
// exposition format (version 0.0.4). Output ordering is deterministic:
// families sorted by name, series in sorted-source order within a family.
//
// Conventions:
//   - registry counters/time accumulators become "capsys_<name>_total"
//     counters; gauges become "capsys_<name>" gauges; meter-derived
//     ".count"/".rate" keys become "<base>_total" / "<base>_per_second".
//   - per-task registry names ("op[3].records_in") become one family per
//     metric ("capsys_task_records_in_total") with op/index labels.
//   - a histogram named "latency.<op>" joins the "capsys_latency_seconds"
//     family with an op label; other histograms get their own family. Each
//     histogram also exports "<family>_quantile" gauges (p50/p95/p99) and a
//     windowed "<family>_window_quantile" / "<family>_window_rate_per_second"
//     view over recent intervals.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	if t == nil {
		return nil
	}
	doc := newPromDoc()
	t.renderRegistry(doc, t.reg)
	t.renderHistograms(doc)
	for _, g := range t.gaugeFuncs() {
		fam := "capsys_" + sanitizeName(g.family)
		doc.family(fam, "gauge").add(fam, g.labels, g.fn())
	}
	return doc.write(w)
}

// renderRegistry folds one metrics registry into the document.
func (t *Telemetry) renderRegistry(doc *promDoc, reg *metrics.Registry) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	kinds := reg.Kinds()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		v := snap[name]
		kind := kinds[name]
		// Cluster-aggregated per-worker series ("worker.w1.<metric>") carry
		// the worker as a label; a worker-prefixed per-task metric keeps the
		// task family and gains the worker label alongside op/index.
		if wm, ok := metrics.ParseWorkerMetricName(name); ok {
			labels := map[string]string{"worker": wm.Worker}
			base, fam, typ := wm.Metric, "", "gauge"
			if tm, ok := metrics.ParseTaskMetricName(wm.Metric); ok {
				base = tm.Metric
				labels["op"] = tm.Op
				labels["index"] = strconv.Itoa(tm.Index)
				fam = "capsys_task_" + sanitizeName(base)
			} else {
				fam = "capsys_worker_" + sanitizeName(base)
			}
			if kind == metrics.KindCounter {
				fam += "_total"
				typ = "counter"
			}
			doc.family(fam, typ).add(fam, labels, v)
			continue
		}
		if tm, ok := metrics.ParseTaskMetricName(name); ok {
			fam := "capsys_task_" + sanitizeName(tm.Metric)
			typ := "gauge"
			if kind == metrics.KindCounter {
				fam += "_total"
				typ = "counter"
			}
			doc.family(fam, typ).add(fam, map[string]string{
				"op": tm.Op, "index": strconv.Itoa(tm.Index),
			}, v)
			continue
		}
		base, fam, typ := name, "", "gauge"
		switch {
		case strings.HasSuffix(name, ".count") && kind == metrics.KindCounter:
			base = strings.TrimSuffix(name, ".count")
			fam = "capsys_" + sanitizeName(base) + "_total"
			typ = "counter"
		case strings.HasSuffix(name, ".rate") && kind == metrics.KindGauge:
			base = strings.TrimSuffix(name, ".rate")
			fam = "capsys_" + sanitizeName(base) + "_per_second"
		case kind == metrics.KindCounter:
			fam = "capsys_" + sanitizeName(base) + "_total"
			typ = "counter"
		default:
			fam = "capsys_" + sanitizeName(base)
		}
		doc.family(fam, typ).add(fam, nil, v)
	}
}

func (t *Telemetry) renderHistograms(doc *promDoc) {
	for _, name := range t.HistogramNames() {
		h := t.Histogram(name)
		win := t.Window(name)
		fam, labels := histogramFamily(name)

		snap := h.Snapshot()
		hf := doc.family(fam, "histogram")
		cum := int64(0)
		for i, c := range snap.Counts {
			cum += c
			le := "+Inf"
			if i < len(snap.Bounds) {
				le = formatFloat(snap.Bounds[i])
			}
			hf.add(fam+"_bucket", withLabel(labels, "le", le), float64(cum))
		}
		hf.add(fam+"_sum", labels, snap.Sum)
		hf.add(fam+"_count", labels, float64(snap.Count))

		qf := doc.family(fam+"_quantile", "gauge")
		for _, q := range exportQuantiles {
			qf.add(fam+"_quantile", withLabel(labels, "quantile", q.label), snap.Quantile(q.p))
		}

		wsnap, span := win.Snapshot()
		wq := doc.family(fam+"_window_quantile", "gauge")
		for _, q := range exportQuantiles {
			wq.add(fam+"_window_quantile", withLabel(labels, "quantile", q.label), wsnap.Quantile(q.p))
		}
		rate := 0.0
		if span > 0 {
			rate = float64(wsnap.Count) / span.Seconds()
		}
		doc.family(fam+"_window_rate_per_second", "gauge").
			add(fam+"_window_rate_per_second", labels, rate)
	}
}

// histogramFamily maps a histogram name to its exposition family and labels.
// "latency.<op>" histograms share one family with an op label.
func histogramFamily(name string) (string, map[string]string) {
	if op, ok := strings.CutPrefix(name, "latency."); ok && op != "" {
		return "capsys_latency_seconds", map[string]string{"op": op}
	}
	return "capsys_" + sanitizeName(name), nil
}

func withLabel(labels map[string]string, k, v string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for lk, lv := range labels {
		out[lk] = lv
	}
	out[k] = v
	return out
}

// renderLabels renders a label set as {k="v",...} with sorted keys, or ""
// when empty.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// sanitizeName maps an internal metric name onto the Prometheus name
// alphabet: every run of invalid characters collapses to one underscore.
func sanitizeName(s string) string {
	var b strings.Builder
	lastUnderscore := false
	for i, r := range s {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !valid {
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
			continue
		}
		b.WriteRune(r)
		lastUnderscore = r == '_'
	}
	return strings.Trim(b.String(), "_")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the hub over HTTP:
//
//	/metrics  Prometheus text exposition
//	/events   the trace ring buffer as JSON ({"schema":..,"events":[..]});
//	          ?n=K limits the response to the most recent K events
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		events := t.Tracer().Events()
		if n := r.URL.Query().Get("n"); n != "" {
			if k, err := strconv.Atoi(n); err == nil && k >= 0 && k < len(events) {
				events = events[len(events)-k:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Schema  int     `json:"schema"`
			Dropped int64   `json:"dropped"`
			Events  []Event `json:"events"`
		}{TraceSchemaVersion, t.Tracer().Dropped(), events})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "capsys telemetry: /metrics (Prometheus), /events (JSON)")
	})
	return mux
}

// Serve starts an HTTP server for the hub on addr (":9090", "127.0.0.1:0",
// ...). It returns the running server and the bound address; the caller
// shuts it down via server.Close.
func (t *Telemetry) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: t.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
