// Package wan extends CAPS toward wide-area deployments, the future-work
// direction the paper sketches in §7: in WAN/edge settings the cluster's
// network links have non-negligible propagation delays (the paper's E_w is
// annotated with delay and bandwidth), and placement should also bound the
// end-to-end path delay of the dataflow.
//
// Rather than folding a fourth dimension into the core cost vector, this
// package composes with CAPS: the search returns its Pareto front over the
// three resource dimensions, and SelectMinDelay picks the front entry with
// the lowest critical-path propagation delay (breaking ties by scalar
// resource cost). Because every front entry already satisfies the pruning
// thresholds, the chosen plan keeps CAPS's contention guarantees while
// minimizing WAN delay among them.
package wan

import (
	"context"
	"fmt"
	"math"
	"sort"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

// DelayMatrix holds symmetric pairwise one-way propagation delays (seconds)
// between workers. The diagonal must be zero.
type DelayMatrix struct {
	d [][]float64
}

// NewDelayMatrix validates and wraps a delay matrix.
func NewDelayMatrix(d [][]float64) (*DelayMatrix, error) {
	n := len(d)
	if n == 0 {
		return nil, fmt.Errorf("wan: empty delay matrix")
	}
	for i, row := range d {
		if len(row) != n {
			return nil, fmt.Errorf("wan: row %d has %d entries, want %d", i, len(row), n)
		}
		if d[i][i] != 0 {
			return nil, fmt.Errorf("wan: non-zero self delay at worker %d", i)
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("wan: negative delay (%d,%d)", i, j)
			}
			if d[j][i] != v {
				return nil, fmt.Errorf("wan: asymmetric delay (%d,%d)", i, j)
			}
		}
	}
	cp := make([][]float64, n)
	for i := range d {
		cp[i] = append([]float64(nil), d[i]...)
	}
	return &DelayMatrix{d: cp}, nil
}

// Uniform builds a matrix where every distinct pair has the same delay —
// the datacenter special case (delay ≈ 0) and simple two-site WAN setups.
func Uniform(workers int, delay float64) (*DelayMatrix, error) {
	d := make([][]float64, workers)
	for i := range d {
		d[i] = make([]float64, workers)
		for j := range d[i] {
			if i != j {
				d[i][j] = delay
			}
		}
	}
	return NewDelayMatrix(d)
}

// Sites builds a matrix for workers grouped into sites: intra-site links
// have delay intra, cross-site links delay inter. siteOf maps each worker
// index to its site.
func Sites(siteOf []int, intra, inter float64) (*DelayMatrix, error) {
	n := len(siteOf)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			switch {
			case i == j:
			case siteOf[i] == siteOf[j]:
				d[i][j] = intra
			default:
				d[i][j] = inter
			}
		}
	}
	return NewDelayMatrix(d)
}

// Delay returns the one-way delay between workers i and j.
func (m *DelayMatrix) Delay(i, j int) float64 { return m.d[i][j] }

// Size returns the number of workers covered.
func (m *DelayMatrix) Size() int { return len(m.d) }

// PathDelay computes the critical-path propagation delay of plan f: the
// maximum, over all source-to-sink paths in the dataflow, of the summed
// link delays the records traverse. Within a stage, the worst channel
// (slowest upstream-task-to-downstream-task link) is charged, matching the
// tail-latency view of windowed operators that must wait for all inputs.
func PathDelay(p *dataflow.PhysicalGraph, f *dataflow.Plan, m *DelayMatrix) (float64, error) {
	g := p.Logical
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	// dist[op] = worst accumulated delay at the op's inputs.
	dist := make(map[dataflow.OperatorID]float64, len(order))
	best := 0.0
	for _, id := range order {
		d := dist[id]
		for _, down := range g.Downstream(id) {
			// Worst link between any task pair of (id, down).
			worst := 0.0
			for _, ut := range p.TasksOf(id) {
				uw, ok := f.Worker(ut)
				if !ok {
					return 0, fmt.Errorf("wan: task %v unassigned", ut)
				}
				if uw >= m.Size() {
					return 0, fmt.Errorf("wan: worker %d outside delay matrix", uw)
				}
				for _, ch := range p.Out(ut) {
					if ch.To.Op != down {
						continue
					}
					dw := f.MustWorker(ch.To)
					if l := m.Delay(uw, dw); l > worst {
						worst = l
					}
				}
			}
			if nd := d + worst; nd > dist[down] {
				dist[down] = nd
			}
		}
		if d > best {
			best = d
		}
	}
	return best, nil
}

// RemapWorkers returns a copy of plan with worker w relabeled to perm[w].
// Relabeling preserves every resource cost exactly (the co-location pattern
// is untouched); only link delays change.
func RemapWorkers(f *dataflow.Plan, p *dataflow.PhysicalGraph, perm []int) *dataflow.Plan {
	out := dataflow.NewPlan()
	for _, t := range p.Tasks() {
		out.Assign(t, perm[f.MustWorker(t)])
	}
	return out
}

// OptimizeWorkerMapping searches for the worker relabeling of plan f that
// minimizes its critical-path delay, using pairwise-swap local search. CAPS
// plans are canonical — interchangeable workers are collapsed by duplicate
// elimination — so the delay structure of a heterogeneous-delay cluster must
// be restored by explicitly choosing which physical worker plays which role.
func OptimizeWorkerMapping(p *dataflow.PhysicalGraph, f *dataflow.Plan, m *DelayMatrix) (*dataflow.Plan, float64, error) {
	n := m.Size()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	cur := RemapWorkers(f, p, perm)
	best, err := PathDelay(p, cur, m)
	if err != nil {
		return nil, 0, err
	}
	improved := true
	for improved {
		improved = false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				perm[i], perm[j] = perm[j], perm[i]
				cand := RemapWorkers(f, p, perm)
				d, err := PathDelay(p, cand, m)
				if err != nil {
					return nil, 0, err
				}
				if d < best-1e-15 {
					best = d
					cur = cand
					improved = true
				} else {
					perm[i], perm[j] = perm[j], perm[i] // revert
				}
			}
		}
	}
	return cur, best, nil
}

// PlaceHierarchical is the site-aware placement strategy used by WAN/edge
// systems (WASP/SWAN-style decomposition): if some site's workers alone can
// host the whole graph, CAPS runs restricted to the best such site, keeping
// every data exchange on intra-site links; otherwise it falls back to a
// global search plus delay-optimized selection from the Pareto front.
// siteOf maps each worker index to its site ID.
func PlaceHierarchical(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage, m *DelayMatrix, siteOf []int, opts caps.Options) (*Selection, error) {
	if len(siteOf) != c.NumWorkers() || m.Size() != c.NumWorkers() {
		return nil, fmt.Errorf("wan: siteOf/matrix size mismatch with cluster")
	}
	// Group worker indices by site.
	sites := map[int][]int{}
	for w, s := range siteOf {
		sites[s] = append(sites[s], w)
	}
	var siteIDs []int
	for s := range sites {
		siteIDs = append(siteIDs, s)
	}
	sort.Ints(siteIDs)

	opts.Mode = caps.Exhaustive
	var best *Selection
	for _, s := range siteIDs {
		members := sites[s]
		slots := 0
		var workers []cluster.Worker
		for _, w := range members {
			workers = append(workers, c.Worker(w))
			slots += c.Worker(w).Slots
		}
		if slots < p.NumTasks() {
			continue
		}
		sub, err := cluster.New(workers)
		if err != nil {
			return nil, err
		}
		res, err := caps.Search(ctx, p, sub, u, opts)
		if err != nil {
			return nil, err
		}
		if !res.Feasible {
			continue
		}
		// Map sub-cluster worker indices back to global indices.
		plan := dataflow.NewPlan()
		for _, t := range p.Tasks() {
			plan.Assign(t, members[res.Plan.MustWorker(t)])
		}
		d, err := PathDelay(p, plan, m)
		if err != nil {
			return nil, err
		}
		sc := costmodel.ScalarCost(res.Cost)
		if best == nil || d < best.DelaySec-1e-12 ||
			(math.Abs(d-best.DelaySec) <= 1e-12 && sc < costmodel.ScalarCost(best.ResourceCost)) {
			best = &Selection{Plan: plan, ResourceCost: res.Cost, DelaySec: d, Considered: len(res.Front)}
		}
	}
	if best != nil {
		return best, nil
	}
	// No single site fits: global search, then delay-optimized selection.
	res, err := caps.Search(ctx, p, c, u, opts)
	if err != nil {
		return nil, err
	}
	return SelectMinDelay(res, p, m)
}

// Selection is the outcome of a delay-aware plan choice.
type Selection struct {
	Plan *dataflow.Plan
	// ResourceCost is the CAPS cost vector of the chosen plan.
	ResourceCost costmodel.Vector
	// DelaySec is its critical-path propagation delay.
	DelaySec float64
	// Considered is the number of Pareto-front entries examined.
	Considered int
}

// SelectMinDelay picks, from a CAPS Exhaustive result, the front entry
// whose delay-optimized worker relabeling has the lowest critical-path
// delay, breaking ties by scalar resource cost. The returned plan carries
// the optimized labeling, so its resource costs equal the front entry's.
func SelectMinDelay(res *caps.Result, p *dataflow.PhysicalGraph, m *DelayMatrix) (*Selection, error) {
	if res == nil || !res.Feasible {
		return nil, fmt.Errorf("wan: no feasible CAPS result")
	}
	entries := res.Front
	if len(entries) == 0 {
		entries = []caps.FrontEntry{{Plan: res.Plan, Cost: res.Cost}}
	}
	bestDelay := math.Inf(1)
	bestScalar := math.Inf(1)
	var best *Selection
	for _, fe := range entries {
		plan, d, err := OptimizeWorkerMapping(p, fe.Plan, m)
		if err != nil {
			return nil, err
		}
		s := costmodel.ScalarCost(fe.Cost)
		if d < bestDelay-1e-12 || (math.Abs(d-bestDelay) <= 1e-12 && s < bestScalar) {
			bestDelay, bestScalar = d, s
			best = &Selection{Plan: plan, ResourceCost: fe.Cost, DelaySec: d}
		}
	}
	best.Considered = len(entries)
	return best, nil
}
