package wan

import (
	"context"
	"math"
	"testing"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

func TestNewDelayMatrixValidation(t *testing.T) {
	cases := []struct {
		name string
		d    [][]float64
	}{
		{"empty", nil},
		{"ragged", [][]float64{{0, 1}, {1}}},
		{"self delay", [][]float64{{1}}},
		{"negative", [][]float64{{0, -1}, {-1, 0}}},
		{"asymmetric", [][]float64{{0, 1}, {2, 0}}},
	}
	for _, tc := range cases {
		if _, err := NewDelayMatrix(tc.d); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	m, err := NewDelayMatrix([][]float64{{0, 0.01}, {0.01, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay(0, 1) != 0.01 || m.Size() != 2 {
		t.Error("matrix accessors wrong")
	}
}

func TestUniformAndSites(t *testing.T) {
	u, err := Uniform(3, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if u.Delay(0, 0) != 0 || u.Delay(0, 2) != 0.005 {
		t.Error("uniform matrix wrong")
	}
	s, err := Sites([]int{0, 0, 1, 1}, 0.001, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if s.Delay(0, 1) != 0.001 || s.Delay(0, 2) != 0.05 || s.Delay(2, 3) != 0.001 {
		t.Error("sites matrix wrong")
	}
}

// twoStage builds src(2) -> win(2) and a 4-worker, 2-site setup.
func twoStage(t *testing.T) (*dataflow.PhysicalGraph, *cluster.Cluster, *costmodel.Usage, *DelayMatrix) {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 1e-5, Net: 100}},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 2, Selectivity: 0.5,
			Cost: dataflow.UnitCost{CPU: 5e-4, IO: 1000, Net: 50}},
	} {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(dataflow.Edge{From: "src", To: "win"}); err != nil {
		t.Fatal(err)
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	// Two sites of 4 workers each; the whole 4-task pipeline fits in one
	// site, so a delay-aware labeling can avoid the 80ms cross-site hop
	// entirely (all-to-all exchanges mean the whole stage pair must be
	// co-sited for that).
	c, err := cluster.Homogeneous(8, 1, 2, 100e6, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := dataflow.PropagateRates(g, map[dataflow.OperatorID]float64{"src": 500})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Sites([]int{0, 0, 0, 0, 1, 1, 1, 1}, 0.001, 0.080)
	if err != nil {
		t.Fatal(err)
	}
	return phys, c, costmodel.FromRates(g, rates), m
}

func TestPathDelay(t *testing.T) {
	phys, _, _, m := twoStage(t)
	// All tasks within site 0: every hop is intra-site.
	local := dataflow.NewPlan()
	local.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	local.Assign(dataflow.TaskID{Op: "src", Index: 1}, 1)
	local.Assign(dataflow.TaskID{Op: "win", Index: 0}, 0)
	local.Assign(dataflow.TaskID{Op: "win", Index: 1}, 1)
	d, err := PathDelay(phys, local, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.001) > 1e-12 {
		t.Errorf("intra-site path delay = %v, want 0.001", d)
	}
	// Split across sites: the worst link crosses sites.
	split := dataflow.NewPlan()
	split.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	split.Assign(dataflow.TaskID{Op: "src", Index: 1}, 1)
	split.Assign(dataflow.TaskID{Op: "win", Index: 0}, 4)
	split.Assign(dataflow.TaskID{Op: "win", Index: 1}, 5)
	d, err = PathDelay(phys, split, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.080) > 1e-12 {
		t.Errorf("cross-site path delay = %v, want 0.080", d)
	}
	// Unassigned task errors.
	if _, err := PathDelay(phys, dataflow.NewPlan(), m); err == nil {
		t.Error("unassigned plan accepted")
	}
}

func TestSelectMinDelayPrefersLocality(t *testing.T) {
	phys, c, u, m := twoStage(t)
	res, err := caps.Search(context.Background(), phys, c, u, caps.Options{
		Alpha: caps.Unbounded, Mode: caps.Exhaustive, FrontCap: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectMinDelay(res, phys, m)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Considered == 0 || sel.Plan == nil {
		t.Fatalf("empty selection: %+v", sel)
	}
	// The chosen plan's delay must be minimal over the front.
	for _, fe := range res.Front {
		d, err := PathDelay(phys, fe.Plan, m)
		if err != nil {
			t.Fatal(err)
		}
		if d < sel.DelaySec-1e-12 {
			t.Errorf("front entry has delay %v < selected %v", d, sel.DelaySec)
		}
	}
	// With 2 sites and a pipeline that fits in one site per stage pair,
	// the best plan avoids the 80ms hop entirely.
	if sel.DelaySec > 0.0011 {
		t.Errorf("selected delay %v; expected an intra-site plan (~1ms)", sel.DelaySec)
	}
}

func TestSelectMinDelayErrors(t *testing.T) {
	phys, _, _, m := twoStage(t)
	if _, err := SelectMinDelay(nil, phys, m); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := SelectMinDelay(&caps.Result{}, phys, m); err == nil {
		t.Error("infeasible result accepted")
	}
}

func TestPlaceHierarchicalStaysIntraSite(t *testing.T) {
	phys, c, u, m := twoStage(t)
	siteOf := []int{0, 0, 0, 0, 1, 1, 1, 1}
	sel, err := PlaceHierarchical(context.Background(), phys, c, u, m, siteOf, caps.Options{
		Alpha: caps.Unbounded,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The 4-task pipeline fits in one 4-worker site: every hop intra-site.
	if sel.DelaySec > 0.0011 {
		t.Errorf("hierarchical placement delay %v, want ~1ms", sel.DelaySec)
	}
	slots, _ := c.SlotsPerWorker()
	if err := sel.Plan.Validate(phys, c.NumWorkers(), slots); err != nil {
		t.Errorf("plan invalid: %v", err)
	}
	// Mismatched siteOf errors.
	if _, err := PlaceHierarchical(context.Background(), phys, c, u, m, []int{0}, caps.Options{Alpha: caps.Unbounded}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestPlaceHierarchicalFallsBackWhenNoSiteFits(t *testing.T) {
	phys, c, u, m := twoStage(t)
	// Every worker its own site: nothing fits in one site, so the global
	// search + min-delay selection path is exercised.
	siteOf := []int{0, 1, 2, 3, 4, 5, 6, 7}
	full := make([][]float64, 8)
	for i := range full {
		full[i] = make([]float64, 8)
		for j := range full[i] {
			if i != j {
				full[i][j] = 0.010
			}
		}
	}
	fm, err := NewDelayMatrix(full)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := PlaceHierarchical(context.Background(), phys, c, u, fm, siteOf, caps.Options{
		Alpha: caps.Unbounded, FrontCap: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Plan == nil || sel.DelaySec <= 0 {
		t.Errorf("fallback selection suspicious: %+v", sel)
	}
	_ = m
}
