package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capsys/internal/dataflow"
)

// testGraph builds S(2) -> W(4) -> K(2) all-to-all with distinct unit costs.
func testGraph(t *testing.T) (*dataflow.LogicalGraph, *dataflow.PhysicalGraph) {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	ops := []dataflow.Operator{
		{ID: "S", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 1e-5, IO: 0, Net: 100}},
		{ID: "W", Kind: dataflow.KindWindow, Parallelism: 4, Selectivity: 0.5,
			Cost: dataflow.UnitCost{CPU: 2e-4, IO: 500, Net: 50}},
		{ID: "K", Kind: dataflow.KindSink, Parallelism: 2, Selectivity: 0,
			Cost: dataflow.UnitCost{CPU: 1e-6, IO: 0, Net: 0}},
	}
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{{From: "S", To: "W"}, {From: "W", To: "K"}} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	p, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

func testUsage(t *testing.T, g *dataflow.LogicalGraph) *Usage {
	t.Helper()
	rates, err := dataflow.PropagateRates(g, map[dataflow.OperatorID]float64{"S": 1000})
	if err != nil {
		t.Fatal(err)
	}
	return FromRates(g, rates)
}

func TestVectorOps(t *testing.T) {
	a := Vector{CPU: 1, IO: 2, Net: 3}
	b := Vector{CPU: 2, IO: 1, Net: 3}
	if got := a.Add(b); got != (Vector{3, 3, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(2); got != (Vector{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Max(b); got != (Vector{2, 2, 3}) {
		t.Errorf("Max = %v", got)
	}
	if a.Dominates(b) || b.Dominates(a) {
		t.Error("incomparable vectors must not dominate each other")
	}
	c := Vector{CPU: 1, IO: 2, Net: 2}
	if !c.Dominates(a) {
		t.Error("c should dominate a")
	}
	if a.Dominates(a) {
		t.Error("vector must not dominate itself")
	}
	if !a.LeqAll(Vector{1, 2, 3}) || a.LeqAll(Vector{1, 2, 2.9}) {
		t.Error("LeqAll wrong")
	}
	if a.String() == "" {
		t.Error("String empty")
	}
}

func TestFromRates(t *testing.T) {
	g, _ := testGraph(t)
	u := testUsage(t, g)
	// Each of the 4 W tasks sees 1000/4 = 250 rec/s input.
	w := u.Task("W")
	if math.Abs(w.CPU-250*2e-4) > 1e-9 {
		t.Errorf("W CPU usage = %v", w.CPU)
	}
	if math.Abs(w.IO-250*500) > 1e-6 {
		t.Errorf("W IO usage = %v", w.IO)
	}
	if math.Abs(w.Net-250*50) > 1e-6 {
		t.Errorf("W Net usage = %v", w.Net)
	}
	if len(u.Operators()) != 3 {
		t.Errorf("Operators = %v", u.Operators())
	}
}

func TestComputeBounds(t *testing.T) {
	g, p := testGraph(t)
	u := testUsage(t, g)
	b := ComputeBounds(p, u, 4, 4)
	// Total CPU = 2*(500*1e-5) + 4*(250*2e-4) + 2*(250*1e-6) = 0.01+0.2+0.0005.
	wantMinCPU := (0.01 + 0.2 + 0.0005) / 4
	if math.Abs(b.Min.CPU-wantMinCPU) > 1e-9 {
		t.Errorf("Min.CPU = %v, want %v", b.Min.CPU, wantMinCPU)
	}
	// Worst case CPU: the 4 most intensive tasks are the 4 W tasks.
	if math.Abs(b.Max.CPU-0.2) > 1e-9 {
		t.Errorf("Max.CPU = %v, want 0.2", b.Max.CPU)
	}
	if b.Min.Net != 0 {
		t.Errorf("Min.Net = %v, want 0 (paper approximation)", b.Min.Net)
	}
	// T_net: highest output tasks are the 2 sources (100*500=50000 each),
	// then W tasks (50*250=12500): top 4 = 2*50000 + 2*12500.
	wantMaxNet := 2*50000.0 + 2*12500.0
	if math.Abs(b.Max.Net-wantMaxNet) > 1e-6 {
		t.Errorf("Max.Net = %v, want %v", b.Max.Net, wantMaxNet)
	}
	// k larger than task count sums everything.
	b2 := ComputeBounds(p, u, 4, 100)
	if math.Abs(b2.Max.CPU-(0.01+0.2+0.0005)) > 1e-9 {
		t.Errorf("Max.CPU with huge slots = %v", b2.Max.CPU)
	}
}

// balancedPlan spreads every operator's tasks round-robin over workers.
func balancedPlan(p *dataflow.PhysicalGraph, numWorkers int) *dataflow.Plan {
	pl := dataflow.NewPlan()
	w := 0
	for _, task := range p.Tasks() {
		pl.Assign(task, w%numWorkers)
		w++
	}
	return pl
}

// packedPlan fills workers one at a time.
func packedPlan(p *dataflow.PhysicalGraph, slots int) *dataflow.Plan {
	pl := dataflow.NewPlan()
	for i, task := range p.Tasks() {
		pl.Assign(task, i/slots)
	}
	return pl
}

func TestWorkerLoadsNetworkLocality(t *testing.T) {
	g, p := testGraph(t)
	u := testUsage(t, g)

	// All tasks on one worker: zero network load everywhere.
	all := dataflow.NewPlan()
	for _, task := range p.Tasks() {
		all.Assign(task, 0)
	}
	loads := WorkerLoads(p, all, u, 4)
	if loads[0].Net != 0 {
		t.Errorf("co-located plan has net load %v, want 0", loads[0].Net)
	}
	// CPU/IO loads are placement-independent totals.
	totalCPU := 0.0
	for _, task := range p.Tasks() {
		totalCPU += u.Task(task.Op).CPU
	}
	if math.Abs(loads[0].CPU-totalCPU) > 1e-9 {
		t.Errorf("packed CPU load = %v, want %v", loads[0].CPU, totalCPU)
	}

	// Spread plan: sources on w0/w1, their downstream W tasks spread over 4
	// workers, so a source on w0 has 3 of 4 links remote.
	spread := balancedPlan(p, 4)
	loads = WorkerLoads(p, spread, u, 4)
	sumNet := 0.0
	for _, l := range loads {
		sumNet += l.Net
	}
	if sumNet <= 0 {
		t.Error("spread plan should incur network load")
	}
}

func TestPlanCostRange(t *testing.T) {
	g, p := testGraph(t)
	u := testUsage(t, g)
	b := ComputeBounds(p, u, 4, 4)

	bal := PlanCost(p, balancedPlan(p, 4), u, b, 4)
	packed := PlanCost(p, packedPlan(p, 4), u, b, 4)
	for _, c := range []Vector{bal, packed} {
		if c.CPU < 0 || c.CPU > 1 || c.IO < 0 || c.IO > 1 || c.Net < 0 || c.Net > 1 {
			t.Errorf("cost out of [0,1]: %v", c)
		}
	}
	// A packed plan co-locating all 4 window tasks must have strictly higher
	// IO cost than the balanced plan.
	if packed.IO <= bal.IO {
		t.Errorf("packed IO cost %v <= balanced %v", packed.IO, bal.IO)
	}
	if packed.CPU <= bal.CPU {
		t.Errorf("packed CPU cost %v <= balanced %v", packed.CPU, bal.CPU)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	if got := normalize(5, 3, 3); got != 0 {
		t.Errorf("degenerate normalize = %v, want 0", got)
	}
	if got := normalize(2, 3, 5); got != 0 {
		t.Errorf("below-min normalize = %v, want clamp to 0", got)
	}
	if got := normalize(7, 3, 5); got != 1 {
		t.Errorf("above-max normalize = %v, want clamp to 1", got)
	}
}

func TestLoadBudget(t *testing.T) {
	b := Bounds{Min: Vector{CPU: 1, IO: 10, Net: 0}, Max: Vector{CPU: 3, IO: 30, Net: 100}}
	budget := LoadBudget(b, Vector{CPU: 0.5, IO: 0.1, Net: 1})
	want := Vector{CPU: 2, IO: 12, Net: 100}
	if math.Abs(budget.CPU-want.CPU) > 1e-12 || math.Abs(budget.IO-want.IO) > 1e-12 || math.Abs(budget.Net-want.Net) > 1e-12 {
		t.Errorf("LoadBudget = %v, want %v", budget, want)
	}
}

func TestParetoFront(t *testing.T) {
	costs := []Vector{
		{0.1, 0.5, 0.5}, // kept
		{0.5, 0.1, 0.5}, // kept
		{0.6, 0.2, 0.6}, // dominated by #1
		{0.1, 0.5, 0.5}, // duplicate of #0: dropped
		{0.5, 0.5, 0.1}, // kept
	}
	keep := ParetoFront(costs)
	want := []int{0, 1, 4}
	if len(keep) != len(want) {
		t.Fatalf("ParetoFront = %v, want %v", keep, want)
	}
	for i := range want {
		if keep[i] != want[i] {
			t.Fatalf("ParetoFront = %v, want %v", keep, want)
		}
	}
}

// Property: Pareto front members are mutually non-dominating and every
// dropped element is dominated by (or duplicates) some kept element.
func TestParetoFrontProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		costs := make([]Vector, n)
		for i := range costs {
			costs[i] = Vector{CPU: rng.Float64(), IO: rng.Float64(), Net: rng.Float64()}
		}
		keep := ParetoFront(costs)
		if len(keep) == 0 {
			return false
		}
		inFront := map[int]bool{}
		for _, i := range keep {
			inFront[i] = true
		}
		for _, i := range keep {
			for _, j := range keep {
				if i != j && costs[j].Dominates(costs[i]) {
					return false
				}
			}
		}
		for i := range costs {
			if inFront[i] {
				continue
			}
			covered := false
			for _, j := range keep {
				if costs[j].Dominates(costs[i]) || costs[j] == costs[i] {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: plan costs are always within [0,1] for random valid plans, and
// CostFromLoad(MaxLoad(WorkerLoads(...))) agrees with PlanCost.
func TestPlanCostProperty(t *testing.T) {
	g, p := testGraph(t)
	u := testUsage(t, g)
	const numWorkers, slots = 4, 4
	b := ComputeBounds(p, u, numWorkers, slots)
	tasks := p.Tasks()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pl := dataflow.NewPlan()
		// Random valid plan via random permutation of slot list.
		var slotList []int
		for w := 0; w < numWorkers; w++ {
			for s := 0; s < slots; s++ {
				slotList = append(slotList, w)
			}
		}
		rng.Shuffle(len(slotList), func(i, j int) { slotList[i], slotList[j] = slotList[j], slotList[i] })
		for i, task := range tasks {
			pl.Assign(task, slotList[i])
		}
		if pl.Validate(p, numWorkers, slots) != nil {
			return false
		}
		c := PlanCost(p, pl, u, b, numWorkers)
		if c.CPU < 0 || c.CPU > 1 || c.IO < 0 || c.IO > 1 || c.Net < 0 || c.Net > 1 {
			return false
		}
		c2 := CostFromLoad(MaxLoad(WorkerLoads(p, pl, u, numWorkers)), b)
		return c == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScalarCost(t *testing.T) {
	if math.Abs(ScalarCost(Vector{0.1, 0.2, 0.3})-0.6) > 1e-12 {
		t.Error("ScalarCost wrong")
	}
}
