// Package costmodel implements the CAPS analytical cost model (paper §4.2).
//
// The model captures the resource imbalance of a task placement plan as the
// difference of the bottleneck worker's load from the ideal, perfectly
// balanced load, expressed independently along three dimensions: compute
// (CPU), state access (disk I/O) and network. Each dimension yields a cost in
// [0,1]; the three values form the plan's cost vector, and plans are compared
// by Pareto dominance.
package costmodel

import (
	"fmt"
	"math"
	"sort"

	"capsys/internal/dataflow"
)

// Vector holds one value per resource dimension. It is used both for worker
// loads (L_cpu, L_io, L_net) and for plan costs (C_cpu, C_io, C_net).
type Vector struct {
	CPU float64
	IO  float64
	Net float64
}

// Add returns the element-wise sum v + o.
func (v Vector) Add(o Vector) Vector {
	return Vector{CPU: v.CPU + o.CPU, IO: v.IO + o.IO, Net: v.Net + o.Net}
}

// Scale returns v with every element multiplied by k.
func (v Vector) Scale(k float64) Vector {
	return Vector{CPU: v.CPU * k, IO: v.IO * k, Net: v.Net * k}
}

// Max returns the element-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	return Vector{CPU: math.Max(v.CPU, o.CPU), IO: math.Max(v.IO, o.IO), Net: math.Max(v.Net, o.Net)}
}

// Dominates reports whether v is no worse than o in every dimension and
// strictly better in at least one (the Pareto dominance relation on costs,
// lower is better).
func (v Vector) Dominates(o Vector) bool {
	if v.CPU > o.CPU || v.IO > o.IO || v.Net > o.Net {
		return false
	}
	return v.CPU < o.CPU || v.IO < o.IO || v.Net < o.Net
}

// LeqAll reports whether every element of v is <= the corresponding element
// of o (used for threshold checks C_i <= alpha_i).
func (v Vector) LeqAll(o Vector) bool {
	return v.CPU <= o.CPU && v.IO <= o.IO && v.Net <= o.Net
}

// LeqAllEps is LeqAll with per-dimension relative slack eps, tolerating the
// rounding drift that incremental load maintenance accumulates relative to a
// from-scratch evaluation. The slack scales with 1+|o| so it behaves sensibly
// around zero bounds.
func (v Vector) LeqAllEps(o Vector, eps float64) bool {
	return v.CPU <= o.CPU+eps*(1+math.Abs(o.CPU)) &&
		v.IO <= o.IO+eps*(1+math.Abs(o.IO)) &&
		v.Net <= o.Net+eps*(1+math.Abs(o.Net))
}

func (v Vector) String() string {
	return fmt.Sprintf("[cpu=%.4g io=%.4g net=%.4g]", v.CPU, v.IO, v.Net)
}

// Usage holds the steady-state resource usage of every task, U_cpu(t),
// U_io(t) and U_net(t) in the paper's notation. Under the model assumption
// that tasks of the same operator are identical (no skew), usage is stored
// per operator.
type Usage struct {
	perOp map[dataflow.OperatorID]Vector
}

// NewUsage creates a Usage from a per-operator task usage map.
func NewUsage(perOp map[dataflow.OperatorID]Vector) *Usage {
	m := make(map[dataflow.OperatorID]Vector, len(perOp))
	for k, v := range perOp {
		m[k] = v
	}
	return &Usage{perOp: m}
}

// FromRates derives task usage vectors from the profiled per-record unit
// costs and the target rate plan, as the CAPSys placement controller does on
// reconfiguration (paper §5.1): each task's usage is its operator's unit cost
// multiplied by the task's target input rate.
func FromRates(g *dataflow.LogicalGraph, rates *dataflow.RatePlan) *Usage {
	perOp := make(map[dataflow.OperatorID]Vector, g.NumOperators())
	for _, op := range g.Operators() {
		in := rates.TaskInRate(g, op.ID)
		perOp[op.ID] = Vector{
			CPU: op.Cost.CPU * in,
			IO:  op.Cost.IO * in,
			Net: op.Cost.Net * in,
		}
	}
	return &Usage{perOp: perOp}
}

// Task returns the usage vector of any task of operator op.
func (u *Usage) Task(op dataflow.OperatorID) Vector { return u.perOp[op] }

// Operators returns the operator IDs with recorded usage, sorted.
func (u *Usage) Operators() []dataflow.OperatorID {
	ids := make([]dataflow.OperatorID, 0, len(u.perOp))
	for id := range u.perOp {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Bounds holds, per dimension, the per-worker load of a perfectly balanced
// allocation (L_i^min, Eq. 6) and of the worst case where the s most
// intensive tasks are co-located (L_i^max, Eq. 7). For the network dimension
// L^min is 0 by the paper's approximation (all tasks on one worker incur no
// network traffic) and L^max is the total output rate of the s tasks with the
// highest U_net (the set T_net with |T_net| = s).
type Bounds struct {
	Min Vector
	Max Vector
}

// ComputeBounds derives the load bounds for physical graph p, task usage u,
// numWorkers workers with slotsPerWorker slots each.
func ComputeBounds(p *dataflow.PhysicalGraph, u *Usage, numWorkers, slotsPerWorker int) Bounds {
	// Tasks of the same operator share one usage vector, so the per-task
	// extrema reduce to weighted per-operator values: O(ops log ops) instead
	// of sorting a slice with one entry per task.
	ops := p.Logical.Operators()
	type weighted struct {
		v float64
		n int
	}
	var total Vector
	cpus := make([]weighted, 0, len(ops))
	ios := make([]weighted, 0, len(ops))
	nets := make([]weighted, 0, len(ops))
	for _, op := range ops {
		uv := u.Task(op.ID)
		n := p.NumTasksOf(op.ID)
		for i := 0; i < n; i++ {
			total = total.Add(uv)
		}
		cpus = append(cpus, weighted{uv.CPU, n})
		ios = append(ios, weighted{uv.IO, n})
		nets = append(nets, weighted{uv.Net, n})
	}
	// Repeated addition (not v*n) keeps the sums bitwise identical to the
	// per-task formulation this replaces.
	topSum := func(xs []weighted, k int) float64 {
		sort.Slice(xs, func(i, j int) bool { return xs[i].v > xs[j].v })
		s := 0.0
		for _, x := range xs {
			for i := 0; i < x.n && k > 0; i, k = i+1, k-1 {
				s += x.v
			}
		}
		return s
	}
	nw := float64(numWorkers)
	return Bounds{
		Min: Vector{CPU: total.CPU / nw, IO: total.IO / nw, Net: 0},
		Max: Vector{
			CPU: topSum(cpus, slotsPerWorker),
			IO:  topSum(ios, slotsPerWorker),
			Net: topSum(nets, slotsPerWorker),
		},
	}
}

// WorkerLoads computes, for every worker, the accumulated load vector under
// plan f: Eq. 5 for CPU and state access, Eq. 8 for network, where a task's
// output rate U_net(t) is split evenly across its |D(t)| downstream links and
// only cross-worker links D_r(f,t) contribute to the origin worker's load.
func WorkerLoads(p *dataflow.PhysicalGraph, f *dataflow.Plan, u *Usage, numWorkers int) []Vector {
	loads := make([]Vector, numWorkers)
	for _, t := range p.Tasks() {
		w := f.MustWorker(t)
		uv := u.Task(t.Op)
		loads[w].CPU += uv.CPU
		loads[w].IO += uv.IO
		out := p.Out(t)
		if len(out) == 0 || uv.Net == 0 {
			continue
		}
		remote := 0
		for _, ch := range out {
			if f.MustWorker(ch.To) != w {
				remote++
			}
		}
		loads[w].Net += uv.Net * float64(remote) / float64(len(out))
	}
	return loads
}

// MaxLoad returns the element-wise maximum across the per-worker load
// vectors, i.e. the bottleneck load L_i(f) in each dimension.
func MaxLoad(loads []Vector) Vector {
	var m Vector
	for _, l := range loads {
		m = m.Max(l)
	}
	return m
}

// normalize applies Eq. 4: (L(f) - Lmin) / (Lmax - Lmin), clamped to [0,1],
// with the degenerate case Lmax == Lmin mapping to cost 0 (all plans
// equivalent in that dimension).
func normalize(l, lmin, lmax float64) float64 {
	const eps = 1e-12
	if lmax-lmin <= eps {
		return 0
	}
	c := (l - lmin) / (lmax - lmin)
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// PlanCost computes the cost vector C(f) = [C_cpu, C_io, C_net] of a complete
// placement plan (Eqs. 4-8).
func PlanCost(p *dataflow.PhysicalGraph, f *dataflow.Plan, u *Usage, b Bounds, numWorkers int) Vector {
	l := MaxLoad(WorkerLoads(p, f, u, numWorkers))
	return Vector{
		CPU: normalize(l.CPU, b.Min.CPU, b.Max.CPU),
		IO:  normalize(l.IO, b.Min.IO, b.Max.IO),
		Net: normalize(l.Net, b.Min.Net, b.Max.Net),
	}
}

// CostFromLoad converts a bottleneck load vector into a cost vector using
// bounds b. It is used by the CAPS search, which maintains loads
// incrementally.
func CostFromLoad(l Vector, b Bounds) Vector {
	return Vector{
		CPU: normalize(l.CPU, b.Min.CPU, b.Max.CPU),
		IO:  normalize(l.IO, b.Min.IO, b.Max.IO),
		Net: normalize(l.Net, b.Min.Net, b.Max.Net),
	}
}

// LoadBudget inverts Eq. 10: the maximum per-worker load vector permitted by
// threshold vector alpha, L_i^min + alpha_i * (L_i^max - L_i^min). A partial
// plan whose accumulated load on any worker exceeds the budget in any
// dimension can be pruned safely because loads grow monotonically as tasks
// are added.
func LoadBudget(b Bounds, alpha Vector) Vector {
	budget := func(min, max, a float64) float64 {
		if math.IsInf(a, 1) {
			// Unbounded dimension; also avoids Inf*0 = NaN when max == min.
			return math.Inf(1)
		}
		return min + a*(max-min)
	}
	return Vector{
		CPU: budget(b.Min.CPU, b.Max.CPU, alpha.CPU),
		IO:  budget(b.Min.IO, b.Max.IO, alpha.IO),
		Net: budget(b.Min.Net, b.Max.Net, alpha.Net),
	}
}

// ParetoFront filters costs down to the non-dominated subset and returns the
// indices of surviving elements in their original order. Among equal-cost
// entries, the first is kept.
func ParetoFront(costs []Vector) []int {
	var keep []int
	for i, ci := range costs {
		dominated := false
		for j, cj := range costs {
			if i == j {
				continue
			}
			if cj.Dominates(ci) {
				dominated = true
				break
			}
			// Exact ties: keep only the first occurrence.
			if cj == ci && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, i)
		}
	}
	return keep
}

// ScalarCost reduces a cost vector to a single comparable number (the sum of
// dimensions). It is used to pick one plan from a Pareto front and for
// deterministic tie-breaking; the search itself always reasons with full
// vectors.
func ScalarCost(v Vector) float64 { return v.CPU + v.IO + v.Net }
