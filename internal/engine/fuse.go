package engine

import (
	"fmt"

	"capsys/internal/dataflow"
)

// Operator fusion (Flink's operator chaining, paper §6.1): when a Forward
// edge connects two equal-parallelism operators 1:1 — no repartitioning, no
// join fan-in (dataflow.PipelinedSuccessor) — and the plan places task i of
// both operators on the same worker, the pair needs no exchange at all. The
// engine then runs the downstream task inline on the upstream task's
// goroutine: the edge's sender becomes a fusedSender that calls straight
// into the downstream operator instead of routing a message through an
// inbox, and the downstream task gets no goroutine of its own.
//
// Fusion must be unobservable except in speed. The fused member keeps its
// full taskRuntime — counters, watermarks, state namespace, snapshots,
// fault hooks — and every control event traverses the chain exactly as the
// exchange would deliver it:
//
//   - records: send replays the edge's route() so the round-robin cursor
//     (part of the checkpoint image) stays bit-identical, advances the
//     upstream's records/bytes-out, updates the member's single-channel
//     watermark, honors drain-and-discard for failed or degraded members,
//     then runs processRecord — the same entry the unfused loops use.
//   - barriers: a single-input task's alignment is complete the moment its
//     one barrier arrives, so barrier() goes straight to completeAlignment:
//     snapshot, forward downstream (recursing through the chain), then the
//     epoch-aligned kill check — the same order as the unfused path.
//   - EOF: eof() marks the member's only channel exhausted, lifts its
//     watermark, and runs the member's finish path (operator Close, then
//     EOF on its own senders), skipping Close for failed or degraded
//     members exactly as runOperator does.
//
// Divergences are confined to timing telemetry: the head's busy time covers
// the whole chain (members never wait on a channel, so their busy and
// backpressure stay near zero), and intra-chain hops charge no network
// tokens — they never did, being same-worker.

// fusedSender is the edgeSender for a fused (same-worker, Forward) edge.
// All methods run on the chain head's goroutine.
type fusedSender struct {
	att  *attempt
	rt   *taskRuntime // upstream
	down *taskRuntime // fused member driven inline
	opr  Operator
	edge *downstreamEdge
	ch   int // the member's receive-channel index for this edge
}

func newFusedSender(a *attempt, rt *taskRuntime, edge *downstreamEdge) (*fusedSender, error) {
	down := edge.fuseTo
	opr, ok := down.op.(Operator)
	if !ok {
		return nil, fmt.Errorf("engine: fused task %v is %T, want Operator", down.id, down.op)
	}
	return &fusedSender{att: a, rt: rt, down: down, opr: opr, edge: edge, ch: edge.chans[0]}, nil
}

func (s *fusedSender) send(rec Record) {
	rt := s.rt
	if rt.aborted {
		return
	}
	if s.att.abortFlag.Load() {
		// A fully fused chain touches no channels, so without this check it
		// would never notice another task aborting the attempt.
		rt.aborted = true
		return
	}
	// route() is called for its side effect only: the rr cursor must evolve
	// exactly as on the unfused edge, because it is part of the checkpoint
	// image. A Forward edge has a single target, so the result is always 0.
	s.edge.route(rec)
	size := recordSize(rec)
	rt.bytesOut += size
	rt.recordsOut++
	rt.fusedOut++
	down := s.down
	if rec.Time > down.chanWM[s.ch] {
		down.chanWM[s.ch] = rec.Time
		down.refreshWatermark()
	}
	if down.failure != nil {
		return // drain-and-discard after a failure
	}
	if down.dead {
		s.att.lost.Add(1)
		return
	}
	s.att.processRecord(down, s.opr, rec, s.edge.inIdx, rt.ingestNS, false)
	if down.aborted {
		rt.aborted = true
	}
}

func (s *fusedSender) flush() {}

func (s *fusedSender) barrier(epoch int64) {
	rt, down := s.rt, s.down
	if rt.aborted {
		return
	}
	if s.att.abortFlag.Load() {
		rt.aborted = true
		return
	}
	// The member's single input channel is this edge: the barrier that just
	// arrived completes its alignment immediately.
	down.alignEpoch = epoch
	if err := s.att.completeAlignment(down); err != nil {
		down.failure = err
	}
	if down.aborted {
		rt.aborted = true
	}
}

func (s *fusedSender) eof() {
	rt, down := s.rt, s.down
	if rt.aborted {
		return
	}
	down.chanEOF[s.ch] = true
	down.chanWM[s.ch] = maxInt64
	down.refreshWatermark()
	if down.failure != nil || down.dead {
		down.finish(nil)
	} else {
		down.finish(s.opr)
	}
	if down.aborted {
		rt.aborted = true
	}
}

// fusedFailure returns the first failure among this task's fused members,
// in chain order. A fused member has no goroutine, so its chain head
// surfaces the error on its behalf.
func (rt *taskRuntime) fusedFailure() (dataflow.TaskID, error) {
	for _, m := range rt.fused {
		if m.failure != nil {
			return m.id, m.failure
		}
		if id, err := m.fusedFailure(); err != nil {
			return id, err
		}
	}
	return dataflow.TaskID{}, nil
}
