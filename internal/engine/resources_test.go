package engine

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestMeterShardConcurrentExactness: many goroutines striking their own
// shards — with snapshot readers polling Consumed throughout — must merge to
// the exact total, and mixing in legacy Consume calls through the spill cell
// must stay exact too. The shard contract is single-writer per shard, not
// single-reader per meter.
func TestMeterShardConcurrentExactness(t *testing.T) {
	m := NewMeter(1e12, 1e12) // effectively unmetered: pacing is not under test
	const (
		writers = 8
		strikes = 10000
		legacy  = 2500
	)
	shards := make([]*MeterShard, writers)
	for i := range shards {
		shards[i] = m.NewShard()
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		last := 0.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Consumed must be monotone under concurrent strikes: a shard
			// publishes complete totals, never partial ones.
			if got := m.Consumed(); got < last {
				t.Errorf("Consumed went backward: %v -> %v", last, got)
				return
			} else {
				last = got
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(sh *MeterShard) {
			defer wg.Done()
			for j := 0; j < strikes; j++ {
				sh.Strike(0.5)
				if j%64 == 0 {
					sh.Draw()
				}
			}
			sh.Draw()
		}(shards[i])
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < legacy; j++ {
				m.Consume(2)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	want := float64(writers)*float64(strikes)*0.5 + float64(writers)*float64(legacy)*2
	if got := m.Consumed(); math.Abs(got-want) > 1e-6 {
		t.Errorf("Consumed = %v, want %v", got, want)
	}
}

// TestMeterShardDrawPaces: coalesced draws still hit the token bucket — a
// shard that strikes more than the bucket holds must sleep the deficit off
// on Draw, just as Consume does.
func TestMeterShardDrawPaces(t *testing.T) {
	m := NewMeter(1000, 10) // 1000 tokens/s, 10 burst
	sh := m.NewShard()
	start := time.Now()
	sh.Strike(60) // 10 burst + 50 deficit -> >= ~50ms of pacing
	sh.Draw()
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Errorf("Draw returned in %v; a 50-token deficit at 1000/s must pace the caller", el)
	}
	if m.Blocked() == 0 {
		t.Error("meter recorded no blocked time")
	}
}

// TestMeterShardAllocFree: the strike/draw hot path must not allocate — the
// whole point of sharding is a zero-alloc, contention-free per-record cost.
func TestMeterShardAllocFree(t *testing.T) {
	m := NewMeter(1e12, 1e12)
	sh := m.NewShard()
	allocs := testing.AllocsPerRun(1000, func() {
		sh.Strike(1)
		sh.Draw()
	})
	if allocs != 0 {
		t.Errorf("Strike+Draw allocates %v times per op, want 0", allocs)
	}
}

// TestMeterUtilizationSeesShards: utilization must reflect shard-accounted
// consumption, since the live saturation gauges read it.
func TestMeterUtilizationSeesShards(t *testing.T) {
	m := NewMeter(1e6, 1e6)
	sh := m.NewShard()
	sh.Strike(1000)
	if u := m.Utilization(); u <= 0 {
		t.Errorf("Utilization = %v after striking 1000 tokens, want > 0", u)
	}
}

// BenchmarkMeterSharedConsume and BenchmarkMeterShardStrike measure the
// before/after of the meter rewrite: N goroutines hammering one meter via
// the legacy CAS spill path versus striking private shards with coalesced
// draws. The shard path must be faster per operation.
func BenchmarkMeterSharedConsume(b *testing.B) {
	m := NewMeter(1e12, 1e12)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Consume(1)
		}
	})
}

func BenchmarkMeterShardStrike(b *testing.B) {
	m := NewMeter(1e12, 1e12)
	b.RunParallel(func(pb *testing.PB) {
		sh := m.NewShard()
		i := 0
		for pb.Next() {
			sh.Strike(1)
			if i++; i%64 == 0 {
				sh.Draw()
			}
		}
		sh.Draw()
	})
}
