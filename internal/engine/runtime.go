package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"capsys/internal/clock"
	"capsys/internal/dataflow"
	"capsys/internal/metrics"
	"capsys/internal/statebackend"
	"capsys/internal/telemetry"
)

// WorkerSpec declares one worker's slot count and resource capacities.
type WorkerSpec struct {
	ID     string
	Slots  int
	Cores  float64 // CPU-seconds per second
	IOBps  float64 // state bytes per second
	NetBps float64 // cross-worker bytes per second
}

// ClusterSpec declares the engine cluster.
type ClusterSpec struct {
	Workers []WorkerSpec
}

// JobOptions configures a run.
type JobOptions struct {
	// ChannelCapacity is the bounded inbox size per task (default 64);
	// smaller values propagate backpressure faster. Under the batched
	// transport it is also the credit budget per receiver — the bound on
	// records in flight toward a task.
	ChannelCapacity int
	// SourceRate caps each source operator's aggregate generation rate in
	// records/second (0 or missing = uncapped).
	SourceRate map[dataflow.OperatorID]float64
	// RecordsPerSource is the number of records each source *task*
	// generates before signaling end of stream (required, > 0).
	RecordsPerSource int64
	// PerRecordCPU charges this many CPU-seconds per processed record per
	// operator, on top of the operator's real compute, modeling the
	// profiled cost. Missing operators charge nothing extra.
	PerRecordCPU map[dataflow.OperatorID]float64
	// Stateful marks operators that need a state namespace.
	Stateful map[dataflow.OperatorID]bool
	// StateOptions configures the per-worker state backends.
	StateOptions statebackend.Options
	// KeyGroups is the number of key-groups keyed records and keyed state
	// are partitioned into (Flink's maxParallelism). It is fixed for the
	// life of the job, bounds every keyed operator's parallelism, and is
	// what makes live rescaling exact: records route hash→group→task, state
	// snapshots split along group boundaries, and both use the same map.
	// Zero means statebackend.DefaultKeyGroups, raised if an operator's
	// initial parallelism exceeds it.
	KeyGroups int

	// Transport selects the data-plane exchange discipline: TransportUnary
	// (one channel message per record, the reference semantics) or
	// TransportBatched (size/linger-bounded batches under credit-based flow
	// control). Empty means unary.
	Transport string
	// BatchSize is the batched transport's per-target flush threshold
	// (default DefaultBatchSize, clamped to ChannelCapacity so one batch
	// can always acquire its credits).
	BatchSize int
	// BatchLinger bounds how long a partial batch may wait for more records
	// before flushing (default DefaultBatchLinger; negative disables
	// time-based flushing). Barriers and EOF always flush regardless.
	BatchLinger time.Duration

	// DisableFusion turns off operator fusion. By default the engine fuses
	// same-worker linear chains — operators connected 1:1 by Forward edges
	// with equal parallelism (dataflow.PipelinedSuccessor) whose paired
	// tasks the plan co-locates — into a single goroutine making direct
	// per-record calls, the way Flink chains operators (§6.1). Fusion is
	// semantically invisible: outcomes, checkpoints, watermarks and fault
	// handling match the unfused engine; only goroutine count, exchange
	// hops and timing telemetry change. Set DisableFusion for the unfused
	// reference behavior (CLI flag -fuse=off).
	DisableFusion bool

	// SnapshotInterval enables barrier-aligned checkpoints: each source
	// task injects a checkpoint barrier every SnapshotInterval records, and
	// every task snapshots its state + progress counters when the barrier
	// passes (Chandy-Lamport alignment, as in Flink). 0 disables snapshots.
	SnapshotInterval int64
	// FaultPlan schedules deterministic failures (see FaultPlan).
	FaultPlan FaultPlan
	// OnFailure enables automatic recovery from worker kills: when a worker
	// dies, the run aborts, OnFailure is called with the failure event, and
	// the plan it returns (over surviving workers) is re-deployed with every
	// task restored from the last globally complete snapshot epoch. For
	// non-kill faults a nil plan keeps the current placement. If OnFailure
	// is nil, worker kills degrade the job instead of restarting it: dead
	// tasks stop, drain their channels, and the job completes with
	// Failed=true and the lost throughput recorded.
	OnFailure func(FailureEvent) (*dataflow.Plan, error)

	// Rescales schedules live parallelism changes (see RescalePlan); the
	// same requests can be made while running via Job.Rescale. Requires
	// SnapshotInterval > 0.
	Rescales []RescalePlan
	// OnRescale, when set, re-places tasks after a rescale: it receives the
	// applied change, the previous plan and the rescaled physical graph, and
	// returns a complete plan for the new task set (the controller wires a
	// warm-started CAPS search here). nil keeps surviving tasks in place and
	// packs new tasks onto free slots.
	OnRescale func(RescaleEvent, *dataflow.Plan, *dataflow.PhysicalGraph) (*dataflow.Plan, error)

	// Telemetry, when set, receives live instrumentation: per-operator
	// end-to-end latency histograms ("latency.<op>"), per-worker resource
	// saturation gauges, exchange instrumentation (batch-size histogram,
	// per-task queue-depth gauges), and structured trace events (checkpoint
	// barriers, faults, recoveries). nil disables instrumentation at zero
	// cost.
	Telemetry *telemetry.Telemetry

	// Now, when set, replaces the wall clock used for statistics timestamps
	// (elapsed, busy/backpressure accounting, fault offsets, ingest stamps).
	// It must be safe for concurrent use — clock.Fixed and the system clock
	// are; clock.Step is not. Rate pacing, batch linger and stall sleeps
	// always follow the real clock. nil means the system clock.
	Now clock.Clock
}

// TaskStats is one task's runtime telemetry.
type TaskStats struct {
	Worker          int
	RecordsIn       int64
	RecordsOut      int64
	BytesOut        int64
	BusyTime        time.Duration
	BackpressureT   time.Duration
	UsefulFraction  float64
	ObservedInRate  float64
	ObservedOutRate float64
}

// JobResult is the outcome of one engine run.
type JobResult struct {
	Elapsed time.Duration
	Tasks   map[dataflow.TaskID]TaskStats
	// SinkRecords counts records absorbed by sink operators.
	SinkRecords int64
	// SourceRecords counts records produced by sources.
	SourceRecords int64
	// Metrics exports the run's telemetry as a named registry (the form
	// the CAPSys metrics collector scrapes): per task,
	// "<op>[<idx>].records_in", ".records_out", ".bytes_out",
	// ".busy_seconds", ".backpressure_seconds" and ".useful_fraction",
	// plus job-level "job.recoveries", "job.downtime_seconds",
	// "job.records_reprocessed", "job.lost_records" and "job.snapshots",
	// and exchange-level "exchange.batches", "exchange.batch_records",
	// "exchange.credit_stalls" and "exchange.credit_stall_seconds".
	Metrics *metrics.Registry

	// Failed reports that at least one task died without recovery (the job
	// ran degraded to completion).
	Failed bool
	// Faults lists every injected fault that fired.
	Faults []FaultRecord
	// Recoveries counts checkpoint restarts performed.
	Recoveries int
	// Downtime is the wall-clock time lost to failures: abort-to-restart
	// for recovered faults, fault-to-completion for unrecovered ones.
	Downtime time.Duration
	// RecordsReprocessed counts records whose processing was rolled back by
	// restores and had to be replayed.
	RecordsReprocessed int64
	// LostRecords counts records dropped by degraded (unrecovered) tasks.
	LostRecords int64
	// SnapshotsTaken counts distinct (task, epoch) snapshots recorded.
	SnapshotsTaken int64
	// RestoredEpoch is the checkpoint epoch of the most recent restore
	// (0 if the job never restarted).
	RestoredEpoch int64
	// Rescales counts live parallelism changes applied.
	Rescales int
	// RescaleDowntime is the wall-clock time the pipeline was down across
	// rescales: drain-abort to restart, per rescale.
	RescaleDowntime time.Duration
	// RescaleMovedBytes counts stored state bytes whose owning task changed
	// across all rescales.
	RescaleMovedBytes int64
}

// OperatorInRate aggregates the observed input rate of one operator.
func (r *JobResult) OperatorInRate(op dataflow.OperatorID) float64 {
	total := 0.0
	for id, st := range r.Tasks {
		if id.Op == op {
			total += st.ObservedInRate
		}
	}
	return total
}

// Job is a deployable engine job.
type Job struct {
	graph     *dataflow.LogicalGraph
	phys      *dataflow.PhysicalGraph
	plan      *dataflow.Plan
	spec      ClusterSpec
	opts      JobOptions
	factories map[dataflow.OperatorID]Factory
	transport Transport
	clk       clock.Clock
	// fuseNext maps each operator to the operator fused onto it when the
	// plan co-locates their paired tasks (empty when fusion is disabled).
	fuseNext map[dataflow.OperatorID]dataflow.OperatorID
	// pendingRescales queues live parallelism changes; graph/phys/fuseNext
	// are rewritten between attempts when one applies. Run's goroutine owns
	// those fields; rescaleMu guards only the queue, which Job.Rescale may
	// touch from any goroutine.
	rescaleMu       sync.Mutex
	pendingRescales []RescalePlan
}

// NewJob wires a physical graph onto engine workers according to plan.
// factories provides, per operator, a Factory returning either an Operator
// or a Source instance for each task.
func NewJob(g *dataflow.LogicalGraph, plan *dataflow.Plan, spec ClusterSpec, factories map[dataflow.OperatorID]Factory, opts JobOptions) (*Job, error) {
	if opts.RecordsPerSource <= 0 {
		return nil, fmt.Errorf("engine: RecordsPerSource must be positive")
	}
	if opts.ChannelCapacity <= 0 {
		opts.ChannelCapacity = 64
	}
	if opts.SnapshotInterval < 0 {
		return nil, fmt.Errorf("engine: SnapshotInterval must be non-negative")
	}
	if opts.Transport == "" {
		opts.Transport = TransportUnary
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.BatchSize > opts.ChannelCapacity {
		opts.BatchSize = opts.ChannelCapacity
	}
	if opts.BatchLinger == 0 {
		opts.BatchLinger = DefaultBatchLinger
	}
	if opts.KeyGroups < 0 {
		return nil, fmt.Errorf("engine: KeyGroups must be non-negative")
	}
	if opts.KeyGroups == 0 {
		opts.KeyGroups = statebackend.DefaultKeyGroups
		// An explicit zero adapts to the graph: an operator wider than the
		// default group count just gets more groups, so pre-key-group jobs
		// keep working unchanged.
		for _, op := range g.Operators() {
			if op.Parallelism > opts.KeyGroups {
				opts.KeyGroups = op.Parallelism
			}
		}
	} else {
		for _, op := range g.Operators() {
			if op.Parallelism > opts.KeyGroups {
				return nil, fmt.Errorf("engine: operator %q parallelism %d exceeds %d key-groups", op.ID, op.Parallelism, opts.KeyGroups)
			}
		}
	}
	// Snapshots must split along the same group boundaries records route on.
	opts.StateOptions.NumKeyGroups = opts.KeyGroups
	transport, err := transportFor(opts)
	if err != nil {
		return nil, err
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		return nil, err
	}
	if len(spec.Workers) == 0 {
		return nil, fmt.Errorf("engine: no workers")
	}
	slotUse := make([]int, len(spec.Workers))
	taskSet := make(map[dataflow.TaskID]bool, phys.NumTasks())
	for _, t := range phys.Tasks() {
		taskSet[t] = true
		w, ok := plan.Worker(t)
		if !ok {
			return nil, fmt.Errorf("engine: task %v unassigned", t)
		}
		if w < 0 || w >= len(spec.Workers) {
			return nil, fmt.Errorf("engine: task %v on invalid worker %d", t, w)
		}
		slotUse[w]++
	}
	for w, used := range slotUse {
		if used > spec.Workers[w].Slots {
			return nil, fmt.Errorf("engine: worker %s over capacity (%d > %d)", spec.Workers[w].ID, used, spec.Workers[w].Slots)
		}
	}
	for _, op := range g.Operators() {
		if _, ok := factories[op.ID]; !ok {
			return nil, fmt.Errorf("engine: no factory for operator %q", op.ID)
		}
	}
	// Fault plans must reference real workers/tasks, and worker kills are
	// epoch-aligned so they need a snapshot clock to trigger against.
	for _, k := range opts.FaultPlan.KillWorkers {
		if k.Worker < 0 || k.Worker >= len(spec.Workers) {
			return nil, fmt.Errorf("engine: fault plan kills invalid worker %d", k.Worker)
		}
		if opts.SnapshotInterval <= 0 {
			return nil, fmt.Errorf("engine: worker kills are epoch-aligned; set SnapshotInterval > 0")
		}
		if k.AtEpoch <= 0 {
			return nil, fmt.Errorf("engine: kill epoch must be positive")
		}
	}
	for _, c := range opts.FaultPlan.CrashTasks {
		if !taskSet[c.Task] {
			return nil, fmt.Errorf("engine: fault plan crashes unknown task %v", c.Task)
		}
	}
	for _, s := range opts.FaultPlan.StallTasks {
		if !taskSet[s.Task] {
			return nil, fmt.Errorf("engine: fault plan stalls unknown task %v", s.Task)
		}
	}
	j := &Job{
		graph:     g,
		phys:      phys,
		plan:      plan,
		spec:      spec,
		opts:      opts,
		factories: factories,
		transport: transport,
		clk:       opts.Now.OrSystem(),
		fuseNext:  fusionMap(g, opts.DisableFusion),
	}
	for _, p := range opts.Rescales {
		if err := j.schedule(p); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// runAgg accumulates recovery and rescale bookkeeping across attempts.
type runAgg struct {
	recoveries      int
	downtime        time.Duration
	reprocessed     int64
	lost            int64
	restoredEpoch   int64
	rescales        int
	rescaleDowntime time.Duration
	rescaleMoved    int64
}

// Transport reports the resolved data-plane transport the job runs under.
func (j *Job) Transport() string { return j.transport.Name() }

// Run executes the job until all sources are exhausted and the pipeline has
// drained, or ctx is canceled (sources stop early; the pipeline still
// drains). Recoverable faults restart the job from the last complete
// checkpoint epoch, re-placing tasks via OnFailure when a worker dies.
func (j *Job) Run(ctx context.Context) (*JobResult, error) {
	start := j.clk()
	tracer := j.opts.Telemetry.Tracer()
	faults := newFaultState(j.opts.FaultPlan, start, j.clk, tracer)
	coord := newCheckpointCoordinator(j.phys.NumTasks())
	tracer.Emit(telemetry.Event{Kind: telemetry.EventJobStart, Attrs: map[string]any{
		"tasks":     j.phys.NumTasks(),
		"workers":   len(j.spec.Workers),
		"transport": j.transport.Name(),
	}})
	plan := j.plan
	dead := make(map[int]bool)
	var agg runAgg
	var failedAt, rescaledAt time.Time
	var rescaleEv *RescaleEvent
	attemptNo := 0
	for {
		attemptNo++
		att, err := j.buildAttempt(attemptNo, plan, coord, faults, agg.restoredEpoch, nil)
		if err != nil {
			return nil, err
		}
		if !failedAt.IsZero() {
			// Downtime covers abort, re-placement and rebuild+restore.
			agg.downtime += j.clk.Since(failedAt)
			failedAt = time.Time{}
		}
		if !rescaledAt.IsZero() {
			// Rescale downtime likewise ends once the rescaled attempt is
			// built and restored, just before its tasks start.
			d := j.clk.Since(rescaledAt)
			agg.rescaleDowntime += d
			rescaledAt = time.Time{}
			emitRescaleComplete(j.opts.Telemetry, rescaleEv, d)
			rescaleEv = nil
		}
		ev, err := att.run(ctx)
		att.close()
		if err != nil {
			return nil, err
		}
		agg.lost += att.lost.Load()
		if ev == nil {
			if epoch, at := att.takeRescale(); epoch > 0 {
				// The attempt drained for a live rescale: count the work the
				// resume point rolls back, repartition the operator's state
				// along key-group boundaries, and redeploy from that epoch.
				// A later epoch may have completed (pruning the trigger
				// epoch's snapshots) between the trigger and the abort
				// landing; the newest complete epoch is always fully
				// retained, so resume from it.
				if lc := coord.lastCompleteEpoch(); lc > epoch {
					epoch = lc
				}
				p := j.dueRescale(epoch)
				if p == nil {
					return nil, fmt.Errorf("engine: rescale drained at epoch %d but no plan is pending", epoch)
				}
				agg.reprocessed += att.reprocessedSince(coord, epoch)
				newPlan, rev, err := j.applyRescale(p, epoch, coord, plan, dead, attemptNo)
				if err != nil {
					return nil, err
				}
				j.dropRescale(p)
				plan = newPlan
				agg.restoredEpoch = epoch
				agg.rescales++
				agg.rescaleMoved += rev.MovedBytes
				rescaledAt = at
				rescaleEv = rev
				emitRescaleStart(j.opts.Telemetry, rev)
				continue
			}
			res := j.finalize(att, faults, coord, j.clk.Since(start), &agg)
			tracer.Emit(telemetry.Event{Kind: telemetry.EventJobComplete, Attrs: map[string]any{
				"elapsed_ms":   res.Elapsed.Seconds() * 1e3,
				"failed":       res.Failed,
				"recoveries":   res.Recoveries,
				"sink_records": res.SinkRecords,
			}})
			return res, nil
		}
		// Recoverable fault: re-place if a worker died, then restart from
		// the newest globally complete checkpoint.
		agg.recoveries++
		recEv := telemetry.Event{
			Kind:    telemetry.EventRecoveryStart,
			Task:    ev.Task.String(),
			Op:      string(ev.Task.Op),
			Epoch:   ev.Epoch,
			Attempt: ev.Attempt,
			Attrs:   map[string]any{"fault": ev.Kind.String()},
		}
		if ev.Kind == FaultKillWorker {
			recEv.Worker = ev.WorkerID
		}
		tracer.Emit(recEv)
		if ev.Kind == FaultKillWorker {
			dead[ev.Worker] = true
		}
		ev.DeadWorkers = deadList(dead)
		if ev.Kind == FaultKillWorker {
			newPlan, err := j.opts.OnFailure(*ev)
			if err != nil {
				return nil, fmt.Errorf("engine: recovery re-placement after %v on worker %d: %w", ev.Kind, ev.Worker, err)
			}
			if err := j.validateRecoveryPlan(newPlan, dead); err != nil {
				return nil, err
			}
			plan = newPlan
		} else if j.opts.OnFailure != nil {
			newPlan, err := j.opts.OnFailure(*ev)
			if err != nil {
				return nil, fmt.Errorf("engine: recovery callback after %v: %w", ev.Kind, err)
			}
			if newPlan != nil {
				if err := j.validateRecoveryPlan(newPlan, dead); err != nil {
					return nil, err
				}
				plan = newPlan
			}
		}
		restore := coord.lastCompleteEpoch()
		agg.restoredEpoch = restore
		agg.reprocessed += att.reprocessedSince(coord, restore)
		faults.markRecovered(ev.Kind, ev.Task, ev.Worker)
		failedAt = att.failTime()
		tracer.Emit(telemetry.Event{
			Kind:    telemetry.EventRecoveryRestart,
			Epoch:   restore,
			Attempt: attemptNo + 1,
			Attrs:   map[string]any{"dead_workers": len(dead)},
		})
	}
}

func deadList(dead map[int]bool) []int {
	out := make([]int, 0, len(dead))
	for w := range dead {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// validateRecoveryPlan rejects partial or dead-worker plans so a broken
// re-placement fails loudly instead of silently re-deploying onto a corpse.
func (j *Job) validateRecoveryPlan(plan *dataflow.Plan, dead map[int]bool) error {
	if plan == nil {
		return fmt.Errorf("engine: recovery returned nil plan")
	}
	slotUse := make([]int, len(j.spec.Workers))
	for _, t := range j.phys.Tasks() {
		w, ok := plan.Worker(t)
		if !ok {
			return fmt.Errorf("engine: recovery plan leaves task %v unassigned", t)
		}
		if w < 0 || w >= len(j.spec.Workers) {
			return fmt.Errorf("engine: recovery plan puts task %v on invalid worker %d", t, w)
		}
		if dead[w] {
			return fmt.Errorf("engine: recovery plan puts task %v on dead worker %d", t, w)
		}
		slotUse[w]++
	}
	for w, used := range slotUse {
		if used > j.spec.Workers[w].Slots {
			return fmt.Errorf("engine: recovery plan overloads worker %s (%d > %d)", j.spec.Workers[w].ID, used, j.spec.Workers[w].Slots)
		}
	}
	return nil
}

// attempt is one deployment of the job: fresh workers, stores, channels and
// task runtimes, optionally restored from a checkpoint epoch.
type attempt struct {
	j       *Job
	no      int
	plan    *dataflow.Plan
	coord   coordinator
	faults  *faultState
	clk     clock.Clock
	tasks   []*taskRuntime
	workers []*WorkerResources
	// net holds the TCP data-plane state under TransportNetwork (nil for the
	// in-memory transports); dist marks a worker-local attempt of a
	// multi-process run (nil when every task runs in this process).
	net  *netAttempt
	dist *WorkerNetConfig

	// fusedChains/fusedTasks count the fusion this attempt performed:
	// chains driven by one goroutine, and member tasks that got none.
	fusedChains int64
	fusedTasks  int64

	abort     chan struct{}
	abortOnce sync.Once
	// abortFlag mirrors the abort channel as a cheap per-record check for
	// fused chains, which touch no channels and would otherwise only notice
	// an abort at their next external send.
	abortFlag atomic.Bool
	mu        sync.Mutex
	failEv    *FailureEvent // guarded by mu
	failAt    time.Time     // guarded by mu
	// rescaleEpoch/rescaleAt mark an abort that drained for a live rescale
	// rather than a fault (guarded by mu; failEv wins a race).
	rescaleEpoch int64
	rescaleAt    time.Time
	lost         atomic.Int64
}

// localTo reports whether worker w's tasks run in this process: always in
// an in-process attempt, only the deploy-local worker in a distributed one.
func localTo(dist *WorkerNetConfig, w int) bool {
	return dist == nil || w == dist.Local
}

func (j *Job) buildAttempt(no int, plan *dataflow.Plan, coord coordinator, faults *faultState, restoreEpoch int64, dist *WorkerNetConfig) (*attempt, error) {
	a := &attempt{j: j, no: no, plan: plan, coord: coord, faults: faults, clk: j.clk, abort: make(chan struct{}), dist: dist}
	workers := make([]*WorkerResources, len(j.spec.Workers))
	stores := make([]*statebackend.Store, len(j.spec.Workers))
	for i, ws := range j.spec.Workers {
		res := NewWorkerResources(ws.ID, ws.Cores, ws.IOBps, ws.NetBps)
		workers[i] = res
		io := res.IO
		stores[i] = statebackend.NewStore(func(r, w int) {
			io.Consume(float64(r + w))
		}, j.opts.StateOptions)
	}
	a.workers = workers
	// Callback saturation gauges read the live meters at scrape time; a
	// restarted attempt re-registers the same (family, labels) series, so the
	// exporter always reflects the current attempt's meters.
	if tel := j.opts.Telemetry; tel != nil {
		for i, res := range workers {
			if !localTo(dist, i) {
				continue
			}
			id := j.spec.Workers[i].ID
			for _, m := range []struct {
				resource string
				meter    *Meter
			}{{"cpu", res.CPU}, {"io", res.IO}, {"net", res.Net}} {
				tel.SetGaugeFunc("worker_saturation",
					map[string]string{"worker": id, "resource": m.resource},
					m.meter.Utilization)
			}
		}
	}

	// Build runtimes and inboxes.
	byID := make(map[dataflow.TaskID]*taskRuntime, j.phys.NumTasks())
	var tasks []*taskRuntime
	for _, t := range j.phys.Tasks() {
		w, ok := plan.Worker(t)
		if !ok {
			return nil, fmt.Errorf("engine: task %v unassigned", t)
		}
		if !localTo(dist, w) {
			// A distributed attempt instantiates only this worker's tasks;
			// remote tasks exist as wire endpoints wired below.
			continue
		}
		op := j.graph.Operator(t.Op)
		rt := &taskRuntime{
			id:      t,
			worker:  w,
			res:     workers[w],
			att:     a,
			inbox:   make(chan message, j.opts.ChannelCapacity),
			gate:    j.transport.newGate(j.opts.ChannelCapacity),
			numIn:   len(j.phys.In(t)),
			cpuCost: j.opts.PerRecordCPU[t.Op],
			isSink:  len(j.graph.Downstream(t.Op)) == 0,
		}
		if len(j.phys.In(t)) > 0 {
			// Non-source tasks sample end-to-end latency; parallel tasks of
			// one operator share the operator's histogram.
			rt.lat = j.opts.Telemetry.Histogram("latency." + string(t.Op))
		}
		if j.opts.Telemetry != nil {
			if j.opts.Transport == TransportBatched || j.opts.Transport == TransportNetwork {
				rt.batchSizeH = j.opts.Telemetry.Histogram("exchange.batch_size")
			}
			// Live queue-depth gauge: len on a channel is safe from the
			// exporter goroutine, and a restarted attempt re-registers the
			// same (family, labels) series.
			inbox := rt.inbox
			j.opts.Telemetry.SetGaugeFunc("exchange_queue_depth",
				map[string]string{"task": t.String()},
				func() float64 { return float64(len(inbox)) })
		}
		// Each task accounts resource draw on private meter shards: the hot
		// path strikes a single-writer shard and pays the bucket in coalesced
		// draws, so co-located tasks stop contending on the meter mutex while
		// Consumed()/Utilization() still see every token.
		rt.cpuShard = workers[w].CPU.NewShard()
		rt.netShard = workers[w].Net.NewShard()
		rt.chanWM = make([]int64, rt.numIn)
		for i := range rt.chanWM {
			rt.chanWM[i] = minInt64
		}
		rt.watermark = minInt64
		rt.chanEOF = make([]bool, rt.numIn)
		rt.chanSeen = make([]bool, rt.numIn)
		rt.killEpoch, rt.killIdx = faults.killEpochFor(w)
		tctx := &TaskContext{
			Op:          string(t.Op),
			Index:       t.Index,
			Parallelism: op.Parallelism,
			Watermark:   func() int64 { return rt.watermark },
		}
		snap := coord.snapshotFor(t, restoreEpoch)
		if j.opts.Stateful[t.Op] {
			tctx.State = stores[w].Namespace(t.String())
			// State I/O goes through the task's own shard of the worker's IO
			// meter. A namespace belongs to exactly one task — fused members
			// included, since a fused chain runs on one goroutine — so the
			// single-writer shard contract holds.
			ioShard := workers[w].IO.NewShard()
			tctx.State.SetAccount(func(r, w int) {
				ioShard.Strike(float64(r + w))
				ioShard.Draw()
			})
			if snap != nil {
				if err := tctx.State.Restore(snap.nsState); err != nil {
					return nil, fmt.Errorf("engine: restore state of %v: %w", t, err)
				}
			}
			if tel := j.opts.Telemetry; tel != nil {
				// Live keyed-state gauges (rescale observability): sizes read
				// from the namespace at scrape time; a restarted attempt
				// re-registers the same (family, labels) series.
				ns := tctx.State
				tel.SetGaugeFunc("state.bytes",
					map[string]string{"task": t.String()},
					func() float64 { return float64(ns.StoredBytes()) })
				tel.SetGaugeFunc("state.keys",
					map[string]string{"task": t.String()},
					func() float64 { return float64(ns.Keys()) })
			}
		}
		rt.ctx = tctx
		inst, err := mustFactory(j, t, tctx)
		if err != nil {
			return nil, err
		}
		rt.op = inst
		if snap != nil {
			rt.recordsIn = snap.recordsIn
			rt.recordsOut = snap.recordsOut
			rt.bytesOut = snap.bytesOut
			rt.srcOffset = snap.srcOffset
			rt.epoch = snap.epoch
			rt.restore = snap
			if s, ok := inst.(Snapshotter); ok && len(snap.opState) > 0 {
				if err := s.RestoreState(snap.opState); err != nil {
					return nil, fmt.Errorf("engine: restore operator state of %v: %w", t, err)
				}
			}
		}
		byID[t] = rt
		tasks = append(tasks, rt)
	}
	// Wire downstream edges: for every logical edge, each upstream task
	// gets one downstreamEdge covering all downstream tasks. Each
	// (sender, receiver) channel gets a receiver-side index so receivers
	// can track per-channel watermarks. The loop iterates every task —
	// including remote ones in a distributed attempt — so channel indices
	// are identical in every process of a cluster; cross-worker channels
	// are collected for the network transport's grantor/mirror setup.
	nextCh := make(map[dataflow.TaskID]int, j.phys.NumTasks())
	var cross []crossChan
	for _, e := range j.graph.Edges() {
		downTasks := j.phys.TasksOf(e.To)
		inIdx := upstreamIndex(j.graph, e.To, e.From)
		for _, ut := range j.phys.TasksOf(e.From) {
			uw, ok := plan.Worker(ut)
			if !ok {
				return nil, fmt.Errorf("engine: task %v unassigned", ut)
			}
			targets := downTasks
			if e.Mode == dataflow.Forward {
				targets = []dataflow.TaskID{downTasks[ut.Index]}
			}
			var edge *downstreamEdge
			if byID[ut] != nil {
				edge = &downstreamEdge{inIdx: inIdx, groups: j.opts.KeyGroups}
			}
			for _, dt := range targets {
				dw, ok := plan.Worker(dt)
				if !ok {
					return nil, fmt.Errorf("engine: task %v unassigned", dt)
				}
				ch := nextCh[dt]
				nextCh[dt]++
				if uw != dw {
					cross = append(cross, crossChan{from: uw, to: dw, task: dt})
				}
				if edge == nil {
					continue
				}
				var inbox chan message
				var gate *creditGate
				if drt := byID[dt]; drt != nil {
					inbox, gate = drt.inbox, drt.gate
				}
				edge.inboxes = append(edge.inboxes, inbox)
				edge.workers = append(edge.workers, dw)
				edge.gates = append(edge.gates, gate)
				edge.chans = append(edge.chans, ch)
				edge.tasks = append(edge.tasks, dt)
			}
			if edge != nil {
				// Fuse the edge when the planner kept both ends of a
				// fusion-eligible Forward edge on one worker: the downstream
				// task will run inline on this goroutine instead of behind an
				// inbox. Both conditions are pure functions of (graph, plan),
				// so every process of a distributed attempt fuses identically.
				if j.fuseNext[e.From] == e.To && len(edge.workers) == 1 && edge.workers[0] == uw {
					if drt := byID[edge.tasks[0]]; drt != nil {
						edge.fuseTo = drt
						drt.fusedIn = true
						byID[ut].fused = append(byID[ut].fused, drt)
					}
				}
				byID[ut].outs = append(byID[ut].outs, edge)
			}
		}
	}
	// The network transport's wire state must exist before senders are
	// built: senders capture their node and per-target mirror gates.
	if _, ok := j.transport.(*networkTransport); ok {
		net, err := newNetAttempt(a, byID, cross)
		if err != nil {
			return nil, err
		}
		a.net = net
	} else if dist != nil {
		return nil, fmt.Errorf("engine: distributed attempts require the %s transport, have %s", TransportNetwork, j.transport.Name())
	}
	// Restore round-robin routing positions so rebalance partitioning
	// resumes mid-cycle exactly where the checkpoint left it, then build
	// the transport's sender endpoints over the wired edges.
	for _, rt := range tasks {
		if rt.restore != nil {
			for i, e := range rt.outs {
				if i < len(rt.restore.rr) {
					e.rr = rt.restore.rr[i]
				}
			}
		}
		rt.senders = make([]edgeSender, len(rt.outs))
		for i, e := range rt.outs {
			if e.fuseTo != nil {
				fs, err := newFusedSender(a, rt, e)
				if err != nil {
					return nil, err
				}
				rt.senders[i] = fs
			} else {
				rt.senders[i] = j.transport.newSender(rt, e)
			}
		}
		rt.emitFn = rt.emit
	}
	for _, rt := range tasks {
		if rt.fusedIn {
			a.fusedTasks++
		} else if len(rt.fused) > 0 {
			a.fusedChains++
		}
	}
	a.tasks = tasks
	return a, nil
}

// run launches all task goroutines and waits for the attempt to finish —
// either a clean drain or a recovery abort.
func (a *attempt) run(ctx context.Context) (*FailureEvent, error) {
	if a.net != nil {
		// Peer addresses are complete by now; unblock the credit grantors.
		a.net.start()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(a.tasks))
	for _, rt := range a.tasks {
		if rt.fusedIn {
			// A fused member runs inline on its chain head's goroutine; the
			// head reports the member's failure below.
			continue
		}
		wg.Add(1)
		go func(rt *taskRuntime) {
			defer wg.Done()
			var err error
			if src, ok := rt.op.(Source); ok {
				err = a.runSource(ctx, rt, src)
			} else {
				err = a.runOperator(rt)
			}
			if err != nil {
				// errCh is buffered to len(a.tasks) and every task sends at
				// most once, so this send can never block.
				errCh <- fmt.Errorf("engine: task %v: %w", rt.id, err)
			}
			if !rt.aborted {
				// Unfused members report their own failure from their own
				// goroutine unless the attempt is aborting; the head does the
				// same on their behalf, under the same abort guard.
				if id, ferr := rt.fusedFailure(); ferr != nil {
					errCh <- fmt.Errorf("engine: task %v: %w", id, ferr)
				}
			}
		}(rt)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if a.net != nil {
		// A data-plane send failure that nobody recovered self-aborted the
		// attempt (see failSend); surface it as a run error so the attempt
		// cannot masquerade as a clean completion with dropped records.
		if err := a.net.fatalErr(); err != nil {
			return nil, err
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.failEv, nil
}

// close releases the attempt's wire resources (listeners, connections,
// grantor goroutines) once no task goroutine remains. In-memory attempts
// hold none and this is a no-op.
func (a *attempt) close() {
	if a.net != nil {
		a.net.shutdown()
	}
}

func (a *attempt) failTime() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.failAt
}

// trigger fires a fault. It returns true when the fault is recoverable —
// the attempt is then aborted and the caller's task must exit — and false
// when the task should instead degrade in place (drain and discard).
func (a *attempt) trigger(kind FaultKind, rt *taskRuntime, epoch, records int64, killIdx int) bool {
	recoverable := a.j.opts.SnapshotInterval > 0 && kind != FaultStallTask
	if kind == FaultKillWorker && a.j.opts.OnFailure == nil {
		recoverable = false
	}
	rec := FaultRecord{Kind: kind, Worker: -1, Task: rt.id, Epoch: epoch, Records: records}
	if kind == FaultKillWorker {
		rec.Worker = rt.worker
		a.faults.noteKill(killIdx, rec)
	} else {
		a.faults.note(rec)
	}
	if !recoverable {
		return false
	}
	a.mu.Lock()
	if a.failEv == nil {
		ev := &FailureEvent{Kind: kind, Worker: -1, Task: rt.id, Epoch: epoch, Attempt: a.no}
		if kind == FaultKillWorker {
			ev.Worker = rt.worker
			ev.WorkerID = a.j.spec.Workers[rt.worker].ID
		}
		a.failEv = ev
		a.failAt = a.clk()
	}
	a.mu.Unlock()
	a.doAbort()
	return true
}

// doAbort tears the attempt down for recovery: the channel unblocks selects,
// the flag lets channel-free fused chains notice per record.
func (a *attempt) doAbort() {
	a.abortFlag.Store(true)
	a.abortOnce.Do(func() { close(a.abort) })
}

// reprocessedSince counts the records processed in this attempt beyond the
// restore epoch — work that the restore rolls back and the next attempt
// must redo.
func (a *attempt) reprocessedSince(coord *checkpointCoordinator, epoch int64) int64 {
	var total int64
	for _, rt := range a.tasks {
		base := int64(0)
		if snap := coord.snapshotFor(rt.id, epoch); snap != nil {
			base = snap.recordsIn
		} else if rt.restore != nil {
			base = rt.restore.recordsIn
		}
		if d := rt.recordsIn - base; d > 0 {
			total += d
		}
	}
	return total
}

// snapshotTask records one task's checkpoint contribution for an epoch.
func (a *attempt) snapshotTask(rt *taskRuntime, epoch, srcOffset int64) error {
	snap := &taskSnapshot{
		epoch:      epoch,
		recordsIn:  rt.recordsIn,
		recordsOut: rt.recordsOut,
		bytesOut:   rt.bytesOut,
		srcOffset:  srcOffset,
	}
	if len(rt.outs) > 0 {
		snap.rr = make([]int, len(rt.outs))
		for i, e := range rt.outs {
			snap.rr[i] = e.rr
		}
	}
	if rt.ctx.State != nil {
		b, err := rt.ctx.State.Snapshot()
		if err != nil {
			return err
		}
		snap.nsState = b
	}
	if s, ok := rt.op.(Snapshotter); ok {
		b, err := s.SnapshotState()
		if err != nil {
			return err
		}
		snap.opState = b
	}
	if done := a.coord.record(rt.id, snap); done > 0 {
		a.j.opts.Telemetry.Tracer().Emit(telemetry.Event{
			Kind:  telemetry.EventCheckpointComplete,
			Epoch: done,
			Attrs: map[string]any{"last_task": rt.id.String()},
		})
		a.maybeTriggerRescale(done)
	}
	return nil
}

// finalize assembles the JobResult from the final attempt.
func (j *Job) finalize(a *attempt, faults *faultState, coord *checkpointCoordinator, elapsed time.Duration, agg *runAgg) *JobResult {
	res := &JobResult{
		Elapsed: elapsed,
		Tasks:   make(map[dataflow.TaskID]TaskStats, len(a.tasks)),
		Metrics: metrics.NewRegistry(),
	}
	var batches, batchRecords, creditStalls, fusedRecords int64
	var creditStallT time.Duration
	var stateBytes, stateKeys, stateNamespaces int
	for _, rt := range a.tasks {
		// Rates and useful fractions are undefined for a zero elapsed time
		// (possible only under an injected frozen clock); report zeros.
		useful := 0.0
		inRate, outRate := 0.0, 0.0
		if elapsed > 0 {
			useful = rt.busy.Seconds() / elapsed.Seconds()
			if useful > 1 {
				useful = 1
			}
			inRate = float64(rt.recordsIn) / elapsed.Seconds()
			outRate = float64(rt.recordsOut) / elapsed.Seconds()
		}
		st := TaskStats{
			Worker:          rt.worker,
			RecordsIn:       rt.recordsIn,
			RecordsOut:      rt.recordsOut,
			BytesOut:        rt.bytesOut,
			BusyTime:        rt.busy,
			BackpressureT:   rt.bp,
			UsefulFraction:  useful,
			ObservedInRate:  inRate,
			ObservedOutRate: outRate,
		}
		res.Tasks[rt.id] = st
		name := func(metric string) string {
			return metrics.TaskMetricName(string(rt.id.Op), rt.id.Index, metric)
		}
		res.Metrics.Counter(name("records_in")).Inc(rt.recordsIn)   //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		res.Metrics.Counter(name("records_out")).Inc(rt.recordsOut) //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		res.Metrics.Counter(name("bytes_out")).Inc(rt.bytesOut)     //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		res.Metrics.Time(name("busy_seconds")).Add(rt.busy)         //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		res.Metrics.Time(name("backpressure_seconds")).Add(rt.bp)   //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		res.Metrics.Gauge(name("useful_fraction")).Set(useful)      //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		if rt.ctx.State != nil {
			sb, sk := rt.ctx.State.StoredBytes(), rt.ctx.State.Keys()
			res.Metrics.Gauge(name("state_bytes")).Set(float64(sb)) //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
			res.Metrics.Gauge(name("state_keys")).Set(float64(sk))  //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
			stateBytes += sb
			stateKeys += sk
			stateNamespaces++
		}
		if rt.isSink {
			res.SinkRecords += rt.recordsIn
		}
		if rt.numIn == 0 {
			res.SourceRecords += rt.recordsOut
		}
		if rt.dead {
			res.Failed = true
		}
		batches += rt.batches
		batchRecords += rt.batchRecords
		creditStalls += rt.creditStalls
		creditStallT += rt.creditStallT
		fusedRecords += rt.fusedOut
	}
	// Fusion telemetry appears only when the attempt actually fused, so
	// unfused jobs — every golden fixture among them — keep an unchanged
	// metric surface.
	if a.fusedTasks > 0 {
		res.Metrics.Counter("engine.fuse.chains").Inc(a.fusedChains)
		res.Metrics.Counter("engine.fuse.tasks").Inc(a.fusedTasks)
		res.Metrics.Counter("engine.fuse.records").Inc(fusedRecords)
	}
	// Keyed-state totals appear only for stateful jobs, mirroring the live
	// state.* gauges (final values at drain time).
	if stateNamespaces > 0 {
		res.Metrics.Gauge("state.total_bytes").Set(float64(stateBytes))
		res.Metrics.Gauge("state.total_keys").Set(float64(stateKeys))
		res.Metrics.Gauge("state.namespaces").Set(float64(stateNamespaces))
	}
	// Final token-bucket saturation per worker resource, in the same form
	// the live exporter serves ("worker.<id>.<resource>_saturation").
	for i, wr := range a.workers {
		id := j.spec.Workers[i].ID
		res.Metrics.Gauge("worker." + id + ".cpu_saturation").Set(wr.CPU.Utilization())
		res.Metrics.Gauge("worker." + id + ".io_saturation").Set(wr.IO.Utilization())
		res.Metrics.Gauge("worker." + id + ".net_saturation").Set(wr.Net.Utilization())
	}
	res.Faults = faults.all()
	res.Recoveries = agg.recoveries
	res.Downtime = agg.downtime
	res.RecordsReprocessed = agg.reprocessed
	res.LostRecords = agg.lost
	res.SnapshotsTaken = coord.snapshotsTaken()
	res.RestoredEpoch = agg.restoredEpoch
	res.Rescales = agg.rescales
	res.RescaleDowntime = agg.rescaleDowntime
	res.RescaleMovedBytes = agg.rescaleMoved
	if res.Failed {
		// Unrecovered faults leave their tasks down from the fault until
		// the end of the run.
		first := elapsed
		for _, f := range res.Faults {
			if f.Kind != FaultStallTask && !f.Recovered && f.At < first {
				first = f.At
			}
		}
		res.Downtime += elapsed - first
	}
	res.Metrics.Counter("job.recoveries").Inc(int64(res.Recoveries))
	res.Metrics.Gauge("job.downtime_seconds").Set(res.Downtime.Seconds())
	res.Metrics.Counter("job.records_reprocessed").Inc(res.RecordsReprocessed)
	res.Metrics.Counter("job.lost_records").Inc(res.LostRecords)
	res.Metrics.Counter("job.snapshots").Inc(res.SnapshotsTaken)
	res.Metrics.Gauge("job.restored_epoch").Set(float64(res.RestoredEpoch))
	// Rescale telemetry appears only when a rescale actually ran, keeping
	// the metric surface of ordinary jobs — goldens included — unchanged.
	if res.Rescales > 0 {
		res.Metrics.Counter("job.rescales").Inc(int64(res.Rescales))
		res.Metrics.Gauge("job.rescale_downtime_seconds").Set(res.RescaleDowntime.Seconds())
		res.Metrics.Counter("job.rescale_moved_bytes").Inc(res.RescaleMovedBytes)
	}
	res.Metrics.Counter("exchange.batches").Inc(batches)
	res.Metrics.Counter("exchange.batch_records").Inc(batchRecords)
	res.Metrics.Counter("exchange.credit_stalls").Inc(creditStalls)
	res.Metrics.Time("exchange.credit_stall_seconds").Add(creditStallT)
	if a.net != nil {
		a.net.exportMetrics(res.Metrics)
	}
	return res
}

func mustFactory(j *Job, t dataflow.TaskID, tctx *TaskContext) (any, error) {
	inst, err := j.factories[t.Op](tctx)
	if err != nil {
		return nil, fmt.Errorf("engine: factory for %v: %w", t, err)
	}
	switch v := inst.(type) {
	case Source:
		if err := v.Open(tctx); err != nil {
			return nil, err
		}
	case Operator:
		if err := v.Open(tctx); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("engine: factory for %q returned %T, want Operator or Source", t.Op, inst)
	}
	return inst, nil
}

func upstreamIndex(g *dataflow.LogicalGraph, op, up dataflow.OperatorID) int {
	for i, u := range g.Upstream(op) {
		if u == up {
			return i
		}
	}
	return 0
}
