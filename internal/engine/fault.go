package engine

import (
	"fmt"
	"sync"
	"time"

	"capsys/internal/clock"
	"capsys/internal/dataflow"
	"capsys/internal/telemetry"
)

// FaultKind classifies an injected failure.
type FaultKind int

const (
	// FaultKillWorker kills every task placed on one worker.
	FaultKillWorker FaultKind = iota
	// FaultCrashTask crashes a single task after it has processed a fixed
	// number of input records.
	FaultCrashTask
	// FaultStallTask pauses a task (simulating a stalled channel or a GC /
	// network hiccup) for a fixed wall-clock duration.
	FaultStallTask
)

// String names the fault kind for reports and metrics.
func (k FaultKind) String() string {
	switch k {
	case FaultKillWorker:
		return "kill-worker"
	case FaultCrashTask:
		return "crash-task"
	case FaultStallTask:
		return "stall-task"
	default:
		return "unknown"
	}
}

// WorkerKill kills worker Worker as soon as each of its tasks completes
// snapshot epoch AtEpoch. Tying the kill to the job's epoch counter (the
// step clock advanced by checkpoint barriers) rather than wall-clock time
// makes the failure point deterministic: the prefix of the stream processed
// before death is exactly the epoch-AtEpoch prefix, independent of
// scheduling. Requires JobOptions.SnapshotInterval > 0.
type WorkerKill struct {
	Worker  int
	AtEpoch int64
}

// TaskCrash crashes task Task immediately after it has processed
// AfterRecords input records. The record counter is per-task and
// deterministic, so the crash point is replayable from the same seed.
type TaskCrash struct {
	Task         dataflow.TaskID
	AfterRecords int64
}

// TaskStall pauses task Task for Stall (wall-clock) once it has processed
// AfterRecords input records. Stalls perturb timing only — counters remain
// deterministic — and are useful for exercising backpressure under slowness.
type TaskStall struct {
	Task         dataflow.TaskID
	AfterRecords int64
	Stall        time.Duration
}

// FaultPlan is a deterministic failure schedule for one job run. Every
// trigger is expressed against the job's logical progress (snapshot epochs
// or per-task record counts), never wall-clock time, so the same plan + the
// same seed reproduces the same failure byte-for-byte.
type FaultPlan struct {
	KillWorkers []WorkerKill
	CrashTasks  []TaskCrash
	StallTasks  []TaskStall
}

// Empty reports whether the plan injects no faults at all.
func (p FaultPlan) Empty() bool {
	return len(p.KillWorkers) == 0 && len(p.CrashTasks) == 0 && len(p.StallTasks) == 0
}

// FaultRecord describes one fault that actually fired during a run.
type FaultRecord struct {
	Kind      FaultKind
	Worker    int             // for FaultKillWorker
	Task      dataflow.TaskID // triggering task (first task for worker kills)
	Epoch     int64           // snapshot epoch at the trigger point
	Records   int64           // task input records at the trigger point
	Recovered bool            // true if the job restarted from a checkpoint
	At        time.Duration   // wall-clock offset from job start (informational)
}

// FailureEvent is handed to JobOptions.OnFailure when a recoverable fault
// aborts the current attempt. DeadWorkers lists every worker index lost so
// far (cumulative across recoveries); the callback must return a plan that
// avoids all of them.
type FailureEvent struct {
	Kind        FaultKind
	Worker      int    // failed worker index (kill faults), -1 otherwise
	WorkerID    string // failed worker ID from the cluster spec, "" otherwise
	Task        dataflow.TaskID
	Epoch       int64 // last snapshot epoch completed by the triggering task
	DeadWorkers []int // all workers lost so far, ascending
	Attempt     int   // 1-based attempt number that failed
}

// faultState tracks which faults have fired across all attempts of a job
// run. Fire-once bookkeeping lives here (not in per-attempt state) so a
// crash does not re-trigger after the restarted task replays past its
// trigger point.
type faultState struct {
	mu         sync.Mutex
	plan       FaultPlan     // immutable after newFaultState
	crashFired []bool        // guarded by mu
	stallFired []bool        // guarded by mu
	killNoted  []bool        // guarded by mu
	records    []FaultRecord // guarded by mu
	start      time.Time
	clk        clock.Clock
	tracer     *telemetry.Tracer // nil-safe; emits fault.injected events
}

func newFaultState(plan FaultPlan, start time.Time, clk clock.Clock, tracer *telemetry.Tracer) *faultState {
	return &faultState{
		plan:       plan,
		crashFired: make([]bool, len(plan.CrashTasks)),
		stallFired: make([]bool, len(plan.StallTasks)),
		killNoted:  make([]bool, len(plan.KillWorkers)),
		start:      start,
		clk:        clk.OrSystem(),
		tracer:     tracer,
	}
}

// trace emits the structured event for one fired fault. Called with the
// mutex held (Emit takes only the tracer's own lock).
func (f *faultState) trace(rec FaultRecord) {
	ev := telemetry.Event{
		Kind:  telemetry.EventFault,
		Task:  rec.Task.String(),
		Op:    string(rec.Task.Op),
		Epoch: rec.Epoch,
		Attrs: map[string]any{
			"fault":   rec.Kind.String(),
			"records": rec.Records,
		},
	}
	if rec.Worker >= 0 {
		ev.Worker = fmt.Sprintf("%d", rec.Worker)
	}
	f.tracer.Emit(ev)
}

// killEpochFor returns the epoch at which tasks on worker w must die, or
// (-1, -1) if no kill targets w. The kill stays "armed" for the whole run;
// after a recovery the dead worker hosts no tasks, so it cannot re-fire.
func (f *faultState) killEpochFor(w int) (epoch int64, idx int) {
	for i, k := range f.plan.KillWorkers {
		if k.Worker == w {
			return k.AtEpoch, i
		}
	}
	return -1, -1
}

// noteKill records the worker-kill fault record exactly once (the first
// task on the worker to reach the kill epoch reports it).
func (f *faultState) noteKill(idx int, rec FaultRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if idx >= 0 && idx < len(f.killNoted) {
		if f.killNoted[idx] {
			return
		}
		f.killNoted[idx] = true
	}
	rec.At = f.clk.Since(f.start)
	f.records = append(f.records, rec)
	f.trace(rec)
}

// shouldCrash reports whether task t must crash now, given that it has just
// finished processing its n-th input record. Fires at most once per entry
// across all attempts.
func (f *faultState) shouldCrash(t dataflow.TaskID, n int64) bool {
	// Fast path: the plan is immutable, so an empty crash list never fires
	// and the per-record mutex round-trip can be skipped entirely.
	if len(f.plan.CrashTasks) == 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, c := range f.plan.CrashTasks {
		if c.Task == t && !f.crashFired[i] && n == c.AfterRecords {
			f.crashFired[i] = true
			return true
		}
	}
	return false
}

// stallFor returns the stall duration due for task t at input record n, or
// 0. Fires at most once per entry across all attempts.
func (f *faultState) stallFor(t dataflow.TaskID, n int64) time.Duration {
	// Fast path mirroring shouldCrash: no stalls planned, no lock taken.
	if len(f.plan.StallTasks) == 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, s := range f.plan.StallTasks {
		if s.Task == t && !f.stallFired[i] && n == s.AfterRecords {
			f.stallFired[i] = true
			rec := FaultRecord{
				Kind:    FaultStallTask,
				Worker:  -1,
				Task:    t,
				Records: n,
				At:      f.clk.Since(f.start),
			}
			f.records = append(f.records, rec)
			f.trace(rec)
			return s.Stall
		}
	}
	return 0
}

// note appends a fault record (crash faults; kills go through noteKill).
func (f *faultState) note(rec FaultRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec.At = f.clk.Since(f.start)
	f.records = append(f.records, rec)
	f.trace(rec)
}

// markRecovered flags every recorded fault of the given kind as recovered.
func (f *faultState) markRecovered(kind FaultKind, task dataflow.TaskID, worker int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.records {
		r := &f.records[i]
		if r.Kind != kind || r.Recovered {
			continue
		}
		if kind == FaultKillWorker && r.Worker == worker {
			r.Recovered = true
		} else if kind == FaultCrashTask && r.Task == task {
			r.Recovered = true
		}
	}
}

func (f *faultState) all() []FaultRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FaultRecord, len(f.records))
	copy(out, f.records)
	return out
}
