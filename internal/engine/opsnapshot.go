package engine

import (
	"encoding/json"
	"sort"
)

// Snapshotter implementations for the built-in stateful operators. Their
// keyed accumulators already live in the statebackend namespace (which the
// engine snapshots wholesale); what must travel alongside is the in-memory
// bookkeeping — open-window end indexes, session bounds and the event-time
// high-water mark — or a restored task would never fire the windows it
// inherited. All images are JSON with map keys, which encoding/json emits
// in sorted order, keeping snapshots byte-deterministic.

// windowAux is the auxiliary image shared by sliding windows and tumbling
// joins: open window ends with their touched keys, plus the max event time.
type windowAux struct {
	MaxTime int64              `json:"max"`
	Ends    map[int64][]string `json:"ends,omitempty"`
}

func snapshotEnds(maxTime int64, ends map[int64]map[string]bool) ([]byte, error) {
	aux := windowAux{MaxTime: maxTime}
	if len(ends) > 0 {
		aux.Ends = make(map[int64][]string, len(ends))
		for end, keys := range ends {
			ks := make([]string, 0, len(keys))
			for k := range keys {
				ks = append(ks, k)
			}
			// JSON sorts the map keys; the value slices we sort ourselves.
			sort.Strings(ks)
			aux.Ends[end] = ks
		}
	}
	return json.Marshal(aux)
}

func restoreEnds(buf []byte) (int64, map[int64]map[string]bool, error) {
	var aux windowAux
	if len(buf) > 0 {
		if err := json.Unmarshal(buf, &aux); err != nil {
			return 0, nil, err
		}
	}
	ends := make(map[int64]map[string]bool, len(aux.Ends))
	for end, ks := range aux.Ends {
		m := make(map[string]bool, len(ks))
		for _, k := range ks {
			m[k] = true
		}
		ends[end] = m
	}
	return aux.MaxTime, ends, nil
}

func (o *slidingWindowOp) SnapshotState() ([]byte, error) {
	return snapshotEnds(o.maxTime, o.ends)
}

func (o *slidingWindowOp) RestoreState(buf []byte) error {
	maxTime, ends, err := restoreEnds(buf)
	if err != nil {
		return err
	}
	o.maxTime = maxTime
	o.ends = ends
	return nil
}

// sessionAux is the session-window image: open sessions and max event time.
type sessionAux struct {
	MaxTime int64               `json:"max"`
	Open    map[string][2]int64 `json:"open,omitempty"`
}

func (o *sessionWindowOp) SnapshotState() ([]byte, error) {
	aux := sessionAux{MaxTime: o.maxTime}
	if len(o.open) > 0 {
		aux.Open = make(map[string][2]int64, len(o.open))
		for k, v := range o.open {
			aux.Open[k] = v
		}
	}
	return json.Marshal(aux)
}

func (o *sessionWindowOp) RestoreState(buf []byte) error {
	var aux sessionAux
	if len(buf) > 0 {
		if err := json.Unmarshal(buf, &aux); err != nil {
			return err
		}
	}
	o.maxTime = aux.MaxTime
	o.open = make(map[string][2]int64, len(aux.Open))
	for k, v := range aux.Open {
		o.open[k] = v
	}
	return nil
}

func (o *tumblingJoinOp) SnapshotState() ([]byte, error) {
	return snapshotEnds(o.maxTime, o.ends)
}

func (o *tumblingJoinOp) RestoreState(buf []byte) error {
	maxTime, ends, err := restoreEnds(buf)
	if err != nil {
		return err
	}
	o.maxTime = maxTime
	o.ends = ends
	return nil
}
