package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"capsys/internal/dataflow"
	"capsys/internal/statebackend"
)

// TestRouteMatchesStateAssignment pins the routing↔state contract live
// rescaling depends on: the engine routes a keyed record to exactly the task
// whose key-group range (statebackend.RangeFor / TaskForGroup) owns the
// key's group. If these ever diverge, a rescaled task would receive records
// for state it does not hold.
func TestRouteMatchesStateAssignment(t *testing.T) {
	const G = statebackend.DefaultKeyGroups
	for _, n := range []int{1, 2, 3, 5, 8} {
		e := &downstreamEdge{inboxes: make([]chan message, n), groups: G}
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("key-%d", i)
			want := statebackend.TaskForGroup(statebackend.KeyGroupOf(key, G), n, G)
			if got := e.route(Record{Key: key}); got != want {
				t.Fatalf("n=%d key %q routed to %d, state lives on %d", n, key, got, want)
			}
		}
	}
}

// TestSplitOpStatesIdentity: repartitioning operator aux images at unchanged
// parallelism must reproduce them byte-for-byte, for both the window (ends)
// and session (open) layouts. Per-task inputs are built by splitting one
// image, so each task holds exactly the keys it owns — the invariant keyed
// routing maintains on a live job.
func TestSplitOpStatesIdentity(t *testing.T) {
	window := []byte(`{"max":450,"ends":{"100":["k1","k3"],"200":["k2"]}}`)
	session := []byte(`{"max":90,"open":{"k1":[10,40],"k2":[55,80]}}`)
	plain := []byte(`{"max":7}`)
	for name, img := range map[string][]byte{"window": window, "session": session, "plain": plain} {
		for _, p := range []int{1, 2, 3} {
			in, err := splitOpStates([][]byte{img}, 1, p, statebackend.DefaultKeyGroups)
			if err != nil {
				t.Fatalf("%s partition to p=%d: %v", name, p, err)
			}
			out, err := splitOpStates(in, p, p, statebackend.DefaultKeyGroups)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			for i := range out {
				if string(out[i]) != string(in[i]) {
					t.Errorf("%s p=%d task %d: identity split changed bytes\n got %s\nwant %s", name, p, i, out[i], in[i])
				}
			}
		}
	}
}

// TestSplitOpStatesRejectsCustomImage: an operator with a Snapshotter image
// the generic splitter does not understand must fail the rescale loudly.
func TestSplitOpStatesRejectsCustomImage(t *testing.T) {
	if _, err := splitOpStates([][]byte{[]byte(`{"mine":1}`)}, 1, 2, 64); err == nil {
		t.Fatal("unknown aux fields should reject the split")
	}
}

// TestSplitOpStatesMovesKeys: window end indexes follow their keys'
// key-groups when parallelism changes, and merging back restores them.
func TestSplitOpStatesMovesKeys(t *testing.T) {
	const G = statebackend.DefaultKeyGroups
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	// The engine's snapshotEnds emits keys in lexical order; match it so the
	// merged image can be compared byte-for-byte.
	sort.Strings(keys)
	aux := rescaleAux{Max: 300, Ends: map[int64][]string{100: keys}}
	img, _ := json.Marshal(aux)
	split, err := splitOpStates([][]byte{img}, 1, 3, G)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range split {
		var got rescaleAux
		if err := json.Unmarshal(s, &got); err != nil {
			t.Fatal(err)
		}
		r := statebackend.RangeFor(i, 3, G)
		for _, k := range got.Ends[100] {
			if !r.Contains(statebackend.KeyGroupOf(k, G)) {
				t.Errorf("task %d holds key %q outside its range %v", i, k, r)
			}
			total++
		}
	}
	if total != len(keys) {
		t.Fatalf("split kept %d keys, want %d", total, len(keys))
	}
	merged, err := splitOpStates(split, 3, 1, G)
	if err != nil {
		t.Fatal(err)
	}
	if string(merged[0]) != string(img) {
		t.Fatalf("merge did not restore the original image\n got %s\nwant %s", merged[0], img)
	}
}

// rescalePipeline builds the shared live-rescale topology:
//
//	src(2) [-> tag(2, Forward, fusable)] -> win(winP, keyed) -> sink(1)
//
// Keys cycle k0..k19, 1000 records per source with a barrier every 100.
// With fused=true the src->tag pair is Forward-connected and co-located, so
// the run exercises rescale with a live fused chain in the pipeline (the
// rescaled operator itself is never part of a Forward pair — that would pin
// its parallelism).
func rescalePipeline(t *testing.T, winP int, fused bool, muts ...func(*JobOptions)) *Job {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	ops := []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
	}
	if fused {
		ops = append(ops, dataflow.Operator{ID: "tag", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1})
	}
	ops = append(ops,
		dataflow.Operator{ID: "win", Kind: dataflow.KindWindow, Parallelism: winP, Selectivity: 0.01},
		dataflow.Operator{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	)
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	if fused {
		if err := g.AddEdge(dataflow.Edge{From: "src", To: "tag", Mode: dataflow.Forward}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(dataflow.Edge{From: "tag", To: "win"}); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := g.AddEdge(dataflow.Edge{From: "src", To: "win"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(dataflow.Edge{From: "win", To: "sink"}); err != nil {
		t.Fatal(err)
	}
	plan := dataflow.NewPlan()
	plan.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	plan.Assign(dataflow.TaskID{Op: "src", Index: 1}, 1)
	if fused {
		plan.Assign(dataflow.TaskID{Op: "tag", Index: 0}, 0)
		plan.Assign(dataflow.TaskID{Op: "tag", Index: 1}, 1)
	}
	for i := 0; i < winP; i++ {
		plan.Assign(dataflow.TaskID{Op: "win", Index: i}, i%3)
	}
	plan.Assign(dataflow.TaskID{Op: "sink", Index: 0}, 2)
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Key: fmt.Sprintf("k%d", i%20), Value: i, Time: i}, true
			}), nil
		},
		"win": func(*TaskContext) (any, error) {
			return NewSlidingWindow(100, 100, countAgg, countResult), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	if fused {
		factories["tag"] = func(*TaskContext) (any, error) {
			return NewMap(func(r Record) Record { return r }), nil
		}
	}
	opts := JobOptions{
		RecordsPerSource: 1000,
		SnapshotInterval: 100,
		Stateful:         map[dataflow.OperatorID]bool{"win": true},
		// Throttle the sources so the drain abort always lands mid-stream:
		// unthrottled, an in-memory source can race to end-of-stream between
		// the epoch completing and the abort flag being observed, which turns
		// the bounded-replay assertion into a coin flip.
		SourceRate: map[dataflow.OperatorID]float64{"src": 20000},
	}
	for _, mut := range muts {
		mut(&opts)
	}
	job, err := NewJob(g, plan, bigWorkers(3, 6), factories, opts)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// TestRescaleLive drains a running job to an epoch, repartitions the window
// operator's key-groups, and resumes — up and down, fused and unfused,
// across every transport. Nothing may be lost, the replay must stay bounded
// (no restart from record zero), and the final record totals must match an
// un-rescaled reference run.
func TestRescaleLive(t *testing.T) {
	ref, err := rescalePipeline(t, 2, false).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ref.SinkRecords == 0 {
		t.Fatal("reference run sank nothing")
	}
	for _, transport := range TransportNames() {
		for _, fused := range []bool{false, true} {
			for _, to := range []int{3, 1} {
				from := 2
				name := fmt.Sprintf("%s/fused=%v/%d→%d", transport, fused, from, to)
				t.Run(name, func(t *testing.T) {
					job := rescalePipeline(t, from, fused, func(o *JobOptions) {
						o.Transport = transport
						o.DisableFusion = !fused
						o.Rescales = []RescalePlan{{Op: "win", Parallelism: to, AtEpoch: 3}}
					})
					res, err := job.Run(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					if res.Rescales != 1 {
						t.Fatalf("Rescales = %d, want 1", res.Rescales)
					}
					if res.Failed || res.LostRecords != 0 {
						t.Fatalf("rescale lost records: failed=%v lost=%d", res.Failed, res.LostRecords)
					}
					if res.SinkRecords != ref.SinkRecords || res.SourceRecords != ref.SourceRecords {
						t.Fatalf("totals diverge from reference: sink %d/%d source %d/%d",
							res.SinkRecords, ref.SinkRecords, res.SourceRecords, ref.SourceRecords)
					}
					seen := 0
					for id := range res.Tasks {
						if id.Op == "win" {
							seen++
						}
					}
					if seen != to {
						t.Fatalf("result has %d win tasks, want %d", seen, to)
					}
					// Replay is bounded by roughly one epoch of in-flight work
					// per consumer task — never a restart from record zero.
					if res.RecordsReprocessed >= 1000 {
						t.Fatalf("reprocessed %d records — looks like a full replay", res.RecordsReprocessed)
					}
					if res.RestoredEpoch < 3 {
						t.Fatalf("RestoredEpoch = %d, want >= 3", res.RestoredEpoch)
					}
					if res.RescaleDowntime <= 0 {
						t.Fatalf("RescaleDowntime = %v, want > 0", res.RescaleDowntime)
					}
					// Both directions change group ownership for some of the
					// 20 live keys, so state must actually move.
					if res.RescaleMovedBytes <= 0 {
						t.Fatalf("RescaleMovedBytes = %d, want > 0", res.RescaleMovedBytes)
					}
					if c := res.Metrics.Counter("job.rescales").Value(); c != 1 {
						t.Fatalf("job.rescales metric = %d, want 1", c)
					}
				})
			}
		}
	}
}

// TestRescaleIdentity: a rescale to the operator's current parallelism is a
// full drain/repartition/resume cycle that must move zero bytes and leave
// every total identical to the reference — the live regression gate that the
// key-group refactor kept checkpoint/restore exact.
func TestRescaleIdentity(t *testing.T) {
	ref, err := rescalePipeline(t, 2, false).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, transport := range TransportNames() {
		t.Run(transport, func(t *testing.T) {
			job := rescalePipeline(t, 2, false, func(o *JobOptions) {
				o.Transport = transport
				o.Rescales = []RescalePlan{{Op: "win", Parallelism: 2, AtEpoch: 2}}
			})
			res, err := job.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Rescales != 1 {
				t.Fatalf("Rescales = %d, want 1", res.Rescales)
			}
			if res.RescaleMovedBytes != 0 {
				t.Fatalf("identity rescale moved %d bytes, want 0", res.RescaleMovedBytes)
			}
			if res.LostRecords != 0 || res.SinkRecords != ref.SinkRecords {
				t.Fatalf("identity rescale changed outcome: lost=%d sink %d/%d",
					res.LostRecords, res.SinkRecords, ref.SinkRecords)
			}
			if canonicalTaskCounters(res) != canonicalTaskCounters(ref) {
				t.Fatalf("identity rescale changed task counters\n got:\n%s\nwant:\n%s",
					canonicalTaskCounters(res), canonicalTaskCounters(ref))
			}
		})
	}
}

// TestRescaleValidation covers the static rejections.
func TestRescaleValidation(t *testing.T) {
	job := rescalePipeline(t, 2, false)
	for name, err := range map[string]error{
		"unknown op":     job.Rescale("nope", 2),
		"source":         job.Rescale("src", 3),
		"zero":           job.Rescale("win", 0),
		"over keygroups": job.Rescale("win", statebackend.DefaultKeyGroups+1),
	} {
		if err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if err := job.Rescale("win", 3); err != nil {
		t.Errorf("valid rescale rejected: %v", err)
	}

	// Without checkpoints there is no epoch to drain to.
	noSnap := rescalePipeline(t, 2, false, func(o *JobOptions) { o.SnapshotInterval = 0 })
	if err := noSnap.Rescale("win", 3); err == nil {
		t.Error("rescale without SnapshotInterval should fail")
	}

	// A Forward-edge peer pins the operator's parallelism.
	fusedJob := rescalePipeline(t, 2, true)
	if err := fusedJob.Rescale("tag", 3); err == nil {
		t.Error("rescaling one side of a Forward pair should fail")
	}
}

// TestRescaleDuringFaultRecovery: a kill and a pending rescale compose — the
// fault wins the race, recovery restores, and the still-pending rescale
// applies at a later epoch. Nothing lost, totals intact.
func TestRescaleDuringFaultRecovery(t *testing.T) {
	ref, err := rescalePipeline(t, 2, false).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	job := rescalePipeline(t, 2, false, func(o *JobOptions) {
		o.FaultPlan = FaultPlan{KillWorkers: []WorkerKill{{Worker: 1, AtEpoch: 2}}}
		o.Rescales = []RescalePlan{{Op: "win", Parallelism: 3, AtEpoch: 4}}
		o.OnFailure = func(ev FailureEvent) (*dataflow.Plan, error) {
			dead := make(map[int]bool)
			for _, w := range ev.DeadWorkers {
				dead[w] = true
			}
			// Everything from a dead worker moves to w2 (6 slots).
			np := dataflow.NewPlan()
			base := map[dataflow.TaskID]int{
				{Op: "src", Index: 0}:  0,
				{Op: "src", Index: 1}:  1,
				{Op: "win", Index: 0}:  0,
				{Op: "win", Index: 1}:  1,
				{Op: "sink", Index: 0}: 2,
			}
			for task, w := range base {
				if dead[w] {
					w = 2
				}
				np.Assign(task, w)
			}
			return np, nil
		}
	})
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want >= 1", res.Recoveries)
	}
	if res.Rescales != 1 {
		t.Fatalf("Rescales = %d, want 1", res.Rescales)
	}
	if res.Failed || res.LostRecords != 0 {
		t.Fatalf("failed=%v lost=%d", res.Failed, res.LostRecords)
	}
	if res.SinkRecords != ref.SinkRecords {
		t.Fatalf("sink %d, reference %d", res.SinkRecords, ref.SinkRecords)
	}
}
