package engine_test

import (
	"testing"

	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
)

// The Q3-inf shape of the committed throughput suite. It lives in an
// external test package because nexmark imports engine: the in-package
// suite (bench_test.go) cannot import it back, but it can expose
// RunQueryBench for this file to land rows in the same BENCH_engine.json.

// q3infJob deploys the paper's Q3-inf inference pipeline (src 2 -> decode 4
// -> inference 8 -> sink 2, repartitioning edges) through the real nexmark
// engine binding, with the profiled per-record CPU costs left uncharged so
// the measurement isolates the data plane rather than simulated contention.
func q3infJob(b *testing.B, transport string, perSource int64) *engine.Job {
	b.Helper()
	spec := nexmark.Q3Inf()
	bind, err := nexmark.BindEngine(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		b.Fatal(err)
	}
	pl := dataflow.NewPlan()
	for i, task := range phys.Tasks() {
		pl.Assign(task, i%2)
	}
	workers := engine.ClusterSpec{Workers: []engine.WorkerSpec{
		{ID: "w0", Slots: 16, Cores: 1e6, IOBps: 1e12, NetBps: 1e15},
		{ID: "w1", Slots: 16, Cores: 1e6, IOBps: 1e12, NetBps: 1e15},
	}}
	job, err := engine.NewJob(spec.Graph, pl, workers, bind.Factories, engine.JobOptions{
		RecordsPerSource: perSource,
		Transport:        transport,
		Stateful:         bind.Stateful,
	})
	if err != nil {
		b.Fatal(err)
	}
	return job
}

func BenchmarkEngineThroughputQ3Inf(b *testing.B) {
	const perSource = 5000
	for _, tr := range engine.TransportNames() {
		b.Run(tr, func(b *testing.B) {
			// Q3-inf's edges all repartition (2 -> 4 -> 8 -> 2), so fusion
			// has nothing to do; the fuse-on default must measure identically
			// to unfused, and the row records the shape's exchange cost.
			engine.RunQueryBench(b, "q3inf", tr, true, false, 2*perSource, func(b *testing.B) *engine.Job {
				return q3infJob(b, tr, perSource)
			})
		})
	}
}
