package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"capsys/internal/dataflow"
)

// This file is the engine's data-plane exchange layer: how records move
// between task inboxes. A Transport decides the wire discipline on every
// edge; the task loop (task.go) and the job lifecycle (runtime.go) are
// transport-agnostic.
//
// Two disciplines exist:
//
//   - unary: one message per record, blocking on the receiver's bounded
//     inbox. This is the reference semantics — backpressure is the channel
//     itself.
//   - batched: records coalesce into size/time-bounded batches and each
//     batch must acquire one credit per record from the receiver before it
//     may be sent. Credits are released when the receiver dequeues the
//     batch, so the number of records in flight toward a task is bounded by
//     the same ChannelCapacity the unary transport enforces — batching
//     amortizes channel operations and token-bucket draws without
//     unbounded buffering, and genuine backpressure (the signal the CAPS
//     cost model consumes) is preserved.

// Transport names accepted by JobOptions.Transport and the CLI -transport
// flags.
const (
	TransportUnary   = "unary"
	TransportBatched = "batched"
	TransportNetwork = "network"
)

// TransportNames lists the supported transports in CLI-help order.
func TransportNames() []string {
	return []string{TransportUnary, TransportBatched, TransportNetwork}
}

const (
	// DefaultBatchSize is the batched transport's per-target flush
	// threshold when JobOptions.BatchSize is zero.
	DefaultBatchSize = 32
	// DefaultBatchLinger bounds how long a partial batch may wait for more
	// records when JobOptions.BatchLinger is zero. Negative linger disables
	// time-based flushing entirely.
	DefaultBatchLinger = time.Millisecond
)

// Transport builds the per-edge exchange endpoints for one job. The
// interface is deliberately small: a receiver-side gate (flow control) and
// a sender-side endpoint per (task, out-edge).
type Transport interface {
	// Name is the identifier reported in options, flags and experiments.
	Name() string
	// newGate builds the receiver-side flow-control state for one task, or
	// nil when the transport's channel discipline alone bounds buffering.
	newGate(capacity int) *creditGate
	// newSender builds the exchange endpoint task rt uses to feed edge.
	newSender(rt *taskRuntime, edge *downstreamEdge) edgeSender
}

// transportFor resolves JobOptions into a Transport instance. Batch
// parameters must already be defaulted/clamped by NewJob.
func transportFor(opts JobOptions) (Transport, error) {
	switch opts.Transport {
	case TransportUnary:
		return unaryTransport{}, nil
	case TransportBatched:
		return &batchedTransport{size: opts.BatchSize, linger: opts.BatchLinger}, nil
	case TransportNetwork:
		return &networkTransport{size: opts.BatchSize, linger: opts.BatchLinger}, nil
	default:
		return nil, fmt.Errorf("engine: unknown transport %q (have %v)", opts.Transport, TransportNames())
	}
}

// edgeSender is the sender side of one (task, out-edge) pair. All methods
// run on the owning task's goroutine; on abort they set rt.aborted and
// return, mirroring the task-loop convention.
type edgeSender interface {
	// send routes one record to its partition, blocking under
	// backpressure.
	send(rec Record)
	// flush pushes any pending partial batches downstream.
	flush()
	// barrier flushes, then broadcasts a checkpoint barrier to every
	// target. Barriers are markers, not data: they bypass partitioning and
	// are not counted in records/bytes out.
	barrier(epoch int64)
	// eof flushes, then broadcasts end-of-stream to every target.
	eof()
}

// message is what flows through task inboxes.
type message struct {
	rec     Record
	in      int // input index (position of the upstream operator)
	ch      int // receiver-side channel index, for watermark tracking
	eof     bool
	barrier bool  // checkpoint barrier marker
	epoch   int64 // barrier epoch
	// ingest is the wall-clock UnixNano stamp of the source emission this
	// message descends from; receivers derive end-to-end latency from it.
	ingest int64
	// batch carries a coalesced run of records (batched transport). A
	// non-empty batch message holds no inline rec; the receiver releases the
	// batch's credits at dequeue time and processes the entries inline.
	batch []batchEntry
}

// batchEntry is one record inside a batch message, with the source ingest
// stamp it would have carried as a unary message.
type batchEntry struct {
	rec    Record
	ingest int64
}

// batchPool recycles batch-entry slices: receivers return a slice once its
// entries are fully processed, senders claim one at full capacity when a new
// batch starts. Entries are cleared on return so pooled slices do not pin
// record payloads.
var batchPool sync.Pool

func getBatch(capacity int) []batchEntry {
	if v := batchPool.Get(); v != nil {
		if b := v.([]batchEntry); cap(b) >= capacity {
			return b[:0]
		}
	}
	return make([]batchEntry, 0, capacity)
}

func putBatch(b []batchEntry) {
	if cap(b) == 0 {
		return
	}
	for i := range b {
		b[i] = batchEntry{}
	}
	batchPool.Put(b[:0]) //nolint:staticcheck // slice-header box is far smaller than the slice it recycles
}

type downstreamEdge struct {
	// inboxes of the downstream tasks, parallel to their worker indices.
	inboxes []chan message
	workers []int
	// gates holds, per target, the receiver's credit gate (nil under the
	// unary transport).
	gates []*creditGate
	// chans holds, per target, this sender's channel index at the
	// receiver (receivers track one watermark per incoming channel).
	chans []int
	// tasks holds, per target, the receiving task's identity — the
	// address data frames carry under the network transport.
	tasks []dataflow.TaskID
	// inIdx is this edge's input index at the downstream operator.
	inIdx int
	// groups is the job's key-group count: keyed records route by key-group
	// (hash → group → owning task), so the record→task mapping is exactly
	// the statebackend's state→task mapping and a rescale moves records and
	// state together. Zero falls back to direct hash-mod-n routing.
	groups int
	rr     int
	// fuseTo, when non-nil, marks this edge as fused: its single same-worker
	// target runs inline on the sender's goroutine (see fuse.go) and the
	// transport's sender endpoint is replaced by a fusedSender.
	fuseTo *taskRuntime
}

// hashKey is FNV-1a over the key, byte-identical to hash/fnv.New32a +
// Write, inlined so keyed routing allocates nothing.
func hashKey(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// route picks the target index for one record: key-group partitioning for
// keyed records (hash → key-group → the task owning that group, matching
// statebackend.TaskForGroup so routing and state partitioning can never
// disagree), round-robin otherwise. The rr cursor lives on the edge so
// checkpoints can snapshot and restore it mid-cycle.
func (e *downstreamEdge) route(rec Record) int {
	n := len(e.inboxes)
	if rec.Key != "" {
		if e.groups > 0 {
			g := int(hashKey(rec.Key) % uint32(e.groups))
			return g * n / e.groups
		}
		return int(hashKey(rec.Key) % uint32(n))
	}
	idx := e.rr % n
	e.rr++
	return idx
}

// recordSize returns the record's accounted byte size.
func recordSize(rec Record) int64 {
	if rec.Size == 0 {
		return DefaultRecordSize
	}
	return int64(rec.Size)
}

// ---------------------------------------------------------------------------
// unary transport: one bounded-channel send per record.

type unaryTransport struct{}

func (unaryTransport) Name() string            { return TransportUnary }
func (unaryTransport) newGate(int) *creditGate { return nil }
func (unaryTransport) newSender(rt *taskRuntime, edge *downstreamEdge) edgeSender {
	return &unarySender{rt: rt, edge: edge}
}

type unarySender struct {
	rt   *taskRuntime
	edge *downstreamEdge
}

// send partitions rec across the edge, charging network bytes for
// cross-worker hops and accounting backpressure time. Sends abort promptly
// when the attempt is torn down for recovery.
func (s *unarySender) send(rec Record) {
	rt := s.rt
	if rt.aborted {
		return
	}
	idx := s.edge.route(rec)
	size := recordSize(rec)
	if s.edge.workers[idx] != rt.worker {
		rt.netShard.Strike(float64(size))
		rt.netShard.Draw()
	}
	clk := rt.att.clk
	t0 := clk()
	select {
	case s.edge.inboxes[idx] <- message{rec: rec, in: s.edge.inIdx, ch: s.edge.chans[idx], ingest: rt.ingestNS}:
	case <-rt.att.abort:
		rt.aborted = true
		return
	}
	rt.bp += clk.Since(t0)
	rt.bytesOut += size
	rt.recordsOut++
}

func (s *unarySender) flush() {}

func (s *unarySender) barrier(epoch int64) {
	s.broadcast(message{barrier: true, epoch: epoch})
}

func (s *unarySender) eof() {
	s.broadcast(message{eof: true})
}

func (s *unarySender) broadcast(tmpl message) {
	rt := s.rt
	for i, inbox := range s.edge.inboxes {
		if rt.aborted {
			return
		}
		tmpl.ch = s.edge.chans[i]
		select {
		case inbox <- tmpl:
		case <-rt.att.abort:
			rt.aborted = true
			return
		}
	}
}

// ---------------------------------------------------------------------------
// batched transport: size/linger-bounded batches under credit flow control.

type batchedTransport struct {
	size   int
	linger time.Duration
}

func (t *batchedTransport) Name() string { return TransportBatched }

func (t *batchedTransport) newGate(capacity int) *creditGate {
	return newCreditGate(int64(capacity))
}

func (t *batchedTransport) newSender(rt *taskRuntime, edge *downstreamEdge) edgeSender {
	n := len(edge.inboxes)
	return &batchedSender{
		rt:      rt,
		edge:    edge,
		size:    t.size,
		linger:  t.linger,
		pending: make([][]batchEntry, n),
		netDue:  make([]int64, n),
		firstAt: make([]time.Time, n),
	}
}

type batchedSender struct {
	rt     *taskRuntime
	edge   *downstreamEdge
	size   int
	linger time.Duration
	// pending accumulates routed records per target until a flush; netDue
	// is the cross-worker byte count awaiting one coalesced Net draw, and
	// firstAt is the wall-clock arrival of each target's oldest pending
	// record (the linger reference point).
	pending [][]batchEntry
	netDue  []int64
	firstAt []time.Time
	// remote, when non-nil, holds per-target wire endpoints (network
	// transport): a non-nil entry ships that target's batches and control
	// markers as frames instead of inbox sends. The credit discipline is
	// unchanged — edge.gates[idx] then holds the sender-side mirror gate
	// replenished by credit-grant frames from the receiver.
	remote []remoteTarget
}

// remoteTarget is the wire endpoint for one (sending worker, receiving
// task) pair under the network transport. All methods return false when
// the attempt aborted while sending.
type remoteTarget interface {
	// request asks the receiver for n records of credit before the sender
	// blocks on its mirror gate: the receiver acquires them from the task's
	// real gate on the sender's behalf and grants them back on the wire.
	// Demand-driven, exactly like a local sender's acquire — a remote
	// sender can never hoard a receiver's gate.
	request(rt *taskRuntime, n int) bool
	// ship sends one flushed batch as a data frame.
	ship(rt *taskRuntime, inIdx, ch int, entries []batchEntry) bool
	// control sends a barrier or EOF marker as a frame.
	control(rt *taskRuntime, inIdx, ch int, tmpl message) bool
}

// send routes rec into its target's pending batch and flushes on size or
// linger expiry. Output counters advance at routing time — not flush time —
// so a barrier snapshot taken just before the pre-barrier flush still
// agrees with the unary transport's counters.
func (s *batchedSender) send(rec Record) {
	rt := s.rt
	if rt.aborted {
		return
	}
	idx := s.edge.route(rec)
	size := recordSize(rec)
	if len(s.pending[idx]) == 0 {
		if s.pending[idx] == nil {
			s.pending[idx] = getBatch(s.size)
		}
		if s.linger >= 0 {
			s.firstAt[idx] = time.Now()
		}
	}
	s.pending[idx] = append(s.pending[idx], batchEntry{rec: rec, ingest: rt.ingestNS})
	if s.edge.workers[idx] != rt.worker {
		s.netDue[idx] += size
	}
	rt.bytesOut += size
	rt.recordsOut++
	if len(s.pending[idx]) >= s.size {
		s.flushTarget(idx)
		if rt.aborted {
			return
		}
	}
	if s.linger >= 0 {
		now := time.Now()
		for i := range s.pending {
			if len(s.pending[i]) > 0 && now.Sub(s.firstAt[i]) >= s.linger {
				s.flushTarget(i)
				if rt.aborted {
					return
				}
			}
		}
	}
}

func (s *batchedSender) flush() {
	for i := range s.pending {
		if len(s.pending[i]) > 0 {
			s.flushTarget(i)
			if s.rt.aborted {
				return
			}
		}
	}
}

func (s *batchedSender) barrier(epoch int64) {
	s.flush()
	if s.rt.aborted {
		return
	}
	s.broadcast(message{barrier: true, epoch: epoch})
}

func (s *batchedSender) eof() {
	s.flush()
	if s.rt.aborted {
		return
	}
	s.broadcast(message{eof: true})
}

// flushTarget ships one target's pending batch: a single coalesced Net
// charge, one credit acquisition for the whole batch, one channel send.
func (s *batchedSender) flushTarget(idx int) {
	entries := s.pending[idx]
	if len(entries) == 0 {
		return
	}
	s.pending[idx] = nil
	if due := s.netDue[idx]; due > 0 {
		s.netDue[idx] = 0
		s.rt.netShard.Strike(float64(due))
		s.rt.netShard.Draw()
	}
	rt := s.rt
	clk := rt.att.clk
	rem := s.remoteAt(idx)
	if rem != nil && !rem.request(rt, len(entries)) {
		rt.aborted = true
		return
	}
	t0 := clk()
	if gate := s.edge.gates[idx]; gate != nil {
		ok, stalled := gate.acquire(int64(len(entries)), rt.att.abort)
		if stalled {
			rt.creditStalls++
			rt.creditStallT += clk.Since(t0)
		}
		if !ok {
			rt.aborted = true
			return
		}
		if rem != nil {
			// Remote target: the wait above was for wire credits from the
			// mirror gate — the network transport's backpressure signal.
			rt.att.net.creditWaitH.Observe(clk.Since(t0).Seconds())
		}
	}
	if rem != nil {
		if !rem.ship(rt, s.edge.inIdx, s.edge.chans[idx], entries) {
			rt.aborted = true
			return
		}
		putBatch(entries)
	} else {
		select {
		case s.edge.inboxes[idx] <- message{in: s.edge.inIdx, ch: s.edge.chans[idx], batch: entries}:
		case <-rt.att.abort:
			rt.aborted = true
			return
		}
	}
	rt.bp += clk.Since(t0)
	rt.batches++
	rt.batchRecords += int64(len(entries))
	if rt.batchSizeH != nil {
		rt.batchSizeH.Observe(float64(len(entries)))
	}
}

func (s *batchedSender) broadcast(tmpl message) {
	rt := s.rt
	for i, inbox := range s.edge.inboxes {
		if rt.aborted {
			return
		}
		tmpl.ch = s.edge.chans[i]
		if rem := s.remoteAt(i); rem != nil {
			if !rem.control(rt, s.edge.inIdx, s.edge.chans[i], tmpl) {
				rt.aborted = true
				return
			}
			continue
		}
		select {
		case inbox <- tmpl:
		case <-rt.att.abort:
			rt.aborted = true
			return
		}
	}
}

// remoteAt returns the wire endpoint for target idx, or nil when the
// target is local (in-memory inbox).
func (s *batchedSender) remoteAt(idx int) remoteTarget {
	if s.remote == nil {
		return nil
	}
	return s.remote[idx]
}

// ---------------------------------------------------------------------------
// credit gate

// creditGate bounds the records in flight toward one receiver. The
// receiver starts with capacity credits; a sender acquires one credit per
// record before shipping a batch and the receiver releases them when it
// dequeues the batch from its inbox. Releasing at dequeue time — not at
// process time — mirrors the unary transport exactly: a record sitting in
// the receiver's alignment buffer during a barrier has left the bounded
// inbox in both disciplines, so alignment cannot starve the un-aligned
// channel's sender into a deadlock.
type creditGate struct {
	// capacity is the gate's initial credit count — the most that can ever
	// be available at once, so any single acquire larger than it can never
	// be satisfied. The network transport's grantors chunk their grants by
	// it. (Sender-side mirror gates start at 0 and are replenished by
	// grants; their capacity field stays 0 and is never consulted.)
	capacity int64
	avail    atomic.Int64
	// notify is a capacity-1 wakeup token. A successful acquirer re-signals
	// when credits remain so that concurrent waiters are not lost.
	notify chan struct{}
}

func newCreditGate(capacity int64) *creditGate {
	g := &creditGate{capacity: capacity, notify: make(chan struct{}, 1)}
	g.avail.Store(capacity)
	return g
}

// acquire takes n credits, blocking until the receiver has released enough
// or abort closes. stalled reports whether the caller had to wait at all.
func (g *creditGate) acquire(n int64, abort <-chan struct{}) (ok, stalled bool) {
	for {
		cur := g.avail.Load()
		if cur >= n {
			if g.avail.CompareAndSwap(cur, cur-n) {
				if g.avail.Load() > 0 {
					g.signal() // chain the wakeup to other waiting senders
				}
				return true, stalled
			}
			continue
		}
		stalled = true
		select {
		case <-g.notify:
		case <-abort:
			return false, stalled
		}
	}
}

// release returns n credits and wakes one waiting sender.
func (g *creditGate) release(n int64) {
	g.avail.Add(n)
	g.signal()
}

func (g *creditGate) signal() {
	select {
	case g.notify <- struct{}{}:
	default:
	}
}
