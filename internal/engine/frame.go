package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// The network data plane and the controller RPC surface share one wire
// format: length-prefixed, checksummed frames. The layout is
//
//	offset 0: uint32 big-endian N = 1 + len(payload)
//	offset 4: frame type byte (never zero)
//	offset 5: payload (N-1 bytes, gob-encoded message body)
//	offset 4+N: uint32 big-endian CRC32 (IEEE) over bytes [4, 4+N)
//
// The length covers the type byte so a zero length is unambiguously
// invalid, and the checksum covers type+payload so a flipped type bit is
// caught like any payload corruption. Payloads are capped at
// MaxFramePayload: a reader rejects an oversized length before
// allocating, so a corrupt or adversarial prefix cannot balloon memory.
const (
	frameHeaderLen  = 4
	frameTrailerLen = 4

	// MaxFramePayload bounds a single frame's payload. Data batches are at
	// most BatchSize records and snapshots are bounded by operator state,
	// both far under this; the cap exists so a corrupt length prefix fails
	// fast instead of triggering a giant allocation.
	MaxFramePayload = 8 << 20
)

// Frame types. Data-plane frames travel on per-worker-pair data
// connections; control frames travel on the worker-coordinator control
// connection. They share one namespace so a frame that strays onto the
// wrong connection is recognizably foreign rather than misparsed.
const (
	frameInvalid byte = iota

	// Data plane.
	FrameDataHello // dialer identity: {from worker, attempt}
	FrameData      // batch of records for one (task, channel)
	FrameBarrier   // checkpoint barrier for one (task, channel)
	FrameEOF       // end-of-stream for one (task, channel)
	FrameCredit    // receiver grants sender n records of credit for a task
	FrameCreditReq // sender requests n records of credit for a pending batch

	// Control plane.
	FrameHello      // worker -> coordinator: join with advertised data address
	FrameWelcome    // coordinator -> worker: assigned worker index
	FrameDeploy     // coordinator -> worker: plan, peers, restore snapshots
	FrameReady      // worker -> coordinator: attempt built, listening
	FrameStart      // coordinator -> worker: begin the attempt
	FrameEpochStart // worker -> coordinator: source opened a checkpoint epoch
	FrameSnapshot   // worker -> coordinator: one task's checkpoint state
	FrameDone       // worker -> coordinator: attempt finished, report attached
	FrameAbort      // coordinator -> worker: abort the running attempt
	FrameStopped    // worker -> coordinator: abort acknowledged, progress attached
	FrameHeartbeat  // worker -> coordinator: liveness
	FramePeerDown   // worker -> coordinator: a data peer became unreachable
	FrameShutdown   // coordinator -> worker: leave the join loop
	FrameTrace      // worker -> coordinator: batched tracer events for the cluster timeline

	frameTypeEnd // sentinel: first invalid type value
)

// Frame is one unit on the wire: a type byte plus an opaque payload
// (conventionally gob-encoded).
type Frame struct {
	Type    byte
	Payload []byte
}

var (
	// ErrFrameTruncated reports a buffer that ends mid-frame.
	ErrFrameTruncated = errors.New("frame: truncated")
	// ErrFrameChecksum reports a checksum mismatch (corruption).
	ErrFrameChecksum = errors.New("frame: checksum mismatch")
)

// AppendFrame appends the encoded frame to dst and returns the extended
// slice.
func AppendFrame(dst []byte, f Frame) []byte {
	n := 1 + len(f.Payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	body := len(dst)
	dst = append(dst, f.Type)
	dst = append(dst, f.Payload...)
	sum := crc32.ChecksumIEEE(dst[body:])
	return binary.BigEndian.AppendUint32(dst, sum)
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. The returned payload aliases b.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < frameHeaderLen {
		return Frame{}, 0, ErrFrameTruncated
	}
	n := binary.BigEndian.Uint32(b)
	if n == 0 {
		return Frame{}, 0, errors.New("frame: zero length")
	}
	if n > MaxFramePayload+1 {
		return Frame{}, 0, fmt.Errorf("frame: length %d exceeds cap %d", n, MaxFramePayload+1)
	}
	total := frameHeaderLen + int(n) + frameTrailerLen
	if len(b) < total {
		return Frame{}, 0, ErrFrameTruncated
	}
	body := b[frameHeaderLen : frameHeaderLen+int(n)]
	sum := binary.BigEndian.Uint32(b[frameHeaderLen+int(n):])
	if crc32.ChecksumIEEE(body) != sum {
		return Frame{}, 0, ErrFrameChecksum
	}
	typ := body[0]
	if typ == frameInvalid || typ >= frameTypeEnd {
		return Frame{}, 0, fmt.Errorf("frame: unknown type %d", typ)
	}
	return Frame{Type: typ, Payload: body[1:]}, total, nil
}

// frameBufPool recycles encode buffers across WriteFrame calls — the same
// steady-state discipline the exchange layer applies to batch-entry slices,
// extended to the wire so a data batch's frame encoding allocates nothing
// once the pool is warm. Buffers are pooled as *[]byte to keep the
// pool-interface box allocation-free.
var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// WriteFrame writes one encoded frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("frame: payload %d exceeds cap %d", len(f.Payload), MaxFramePayload)
	}
	bp := frameBufPool.Get().(*[]byte)
	buf := AppendFrame((*bp)[:0], f)
	_, err := w.Write(buf)
	*bp = buf[:0]
	frameBufPool.Put(bp)
	return err
}

// ReadFrame reads one frame from r. The length prefix is validated
// against MaxFramePayload before the body is allocated.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return Frame{}, errors.New("frame: zero length")
	}
	if n > MaxFramePayload+1 {
		return Frame{}, fmt.Errorf("frame: length %d exceeds cap %d", n, MaxFramePayload+1)
	}
	rest := make([]byte, int(n)+frameTrailerLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	body := rest[:n]
	sum := binary.BigEndian.Uint32(rest[n:])
	if crc32.ChecksumIEEE(body) != sum {
		return Frame{}, ErrFrameChecksum
	}
	typ := body[0]
	if typ == frameInvalid || typ >= frameTypeEnd {
		return Frame{}, fmt.Errorf("frame: unknown type %d", typ)
	}
	return Frame{Type: typ, Payload: body[1:]}, nil
}

// EncodePayload gob-encodes v for use as a frame payload.
func EncodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	if buf.Len() > MaxFramePayload {
		return nil, fmt.Errorf("frame: encoded payload %d exceeds cap %d", buf.Len(), MaxFramePayload)
	}
	return buf.Bytes(), nil
}

// DecodePayload gob-decodes a frame payload into v.
func DecodePayload(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

func init() {
	// Record.Value is an interface; gob needs every concrete type that can
	// cross a process boundary registered under a stable name. The engine's
	// own tests and pipelines use machine scalars and small composites;
	// nexmark registers its event structs in its own package init.
	gob.Register(int(0))
	gob.Register(int32(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float32(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register([]byte(nil))
	gob.Register([]any(nil))
	gob.Register([2]any{})
	gob.Register(map[string]any(nil))
}
