//go:build race

package engine

// raceEnabled relaxes wall-clock assertions: race instrumentation slows the
// schedulers enough that rate-ratio tolerances tuned for ordinary builds
// flake.
const raceEnabled = true
