package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"capsys/internal/dataflow"
	"capsys/internal/metrics"
	"capsys/internal/statebackend"
	"capsys/internal/telemetry"
)

// WorkerSpec declares one worker's slot count and resource capacities.
type WorkerSpec struct {
	ID     string
	Slots  int
	Cores  float64 // CPU-seconds per second
	IOBps  float64 // state bytes per second
	NetBps float64 // cross-worker bytes per second
}

// ClusterSpec declares the engine cluster.
type ClusterSpec struct {
	Workers []WorkerSpec
}

// JobOptions configures a run.
type JobOptions struct {
	// ChannelCapacity is the bounded inbox size per task (default 64);
	// smaller values propagate backpressure faster.
	ChannelCapacity int
	// SourceRate caps each source operator's aggregate generation rate in
	// records/second (0 or missing = uncapped).
	SourceRate map[dataflow.OperatorID]float64
	// RecordsPerSource is the number of records each source *task*
	// generates before signaling end of stream (required, > 0).
	RecordsPerSource int64
	// PerRecordCPU charges this many CPU-seconds per processed record per
	// operator, on top of the operator's real compute, modeling the
	// profiled cost. Missing operators charge nothing extra.
	PerRecordCPU map[dataflow.OperatorID]float64
	// Stateful marks operators that need a state namespace.
	Stateful map[dataflow.OperatorID]bool
	// StateOptions configures the per-worker state backends.
	StateOptions statebackend.Options

	// SnapshotInterval enables barrier-aligned checkpoints: each source
	// task injects a checkpoint barrier every SnapshotInterval records, and
	// every task snapshots its state + progress counters when the barrier
	// passes (Chandy-Lamport alignment, as in Flink). 0 disables snapshots.
	SnapshotInterval int64
	// FaultPlan schedules deterministic failures (see FaultPlan).
	FaultPlan FaultPlan
	// OnFailure enables automatic recovery from worker kills: when a worker
	// dies, the run aborts, OnFailure is called with the failure event, and
	// the plan it returns (over surviving workers) is re-deployed with every
	// task restored from the last globally complete snapshot epoch. For
	// non-kill faults a nil plan keeps the current placement. If OnFailure
	// is nil, worker kills degrade the job instead of restarting it: dead
	// tasks stop, drain their channels, and the job completes with
	// Failed=true and the lost throughput recorded.
	OnFailure func(FailureEvent) (*dataflow.Plan, error)

	// Telemetry, when set, receives live instrumentation: per-operator
	// end-to-end latency histograms ("latency.<op>"), per-worker resource
	// saturation gauges, and structured trace events (checkpoint barriers,
	// faults, recoveries). nil disables instrumentation at zero cost.
	Telemetry *telemetry.Telemetry
}

// TaskStats is one task's runtime telemetry.
type TaskStats struct {
	Worker          int
	RecordsIn       int64
	RecordsOut      int64
	BytesOut        int64
	BusyTime        time.Duration
	BackpressureT   time.Duration
	UsefulFraction  float64
	ObservedInRate  float64
	ObservedOutRate float64
}

// JobResult is the outcome of one engine run.
type JobResult struct {
	Elapsed time.Duration
	Tasks   map[dataflow.TaskID]TaskStats
	// SinkRecords counts records absorbed by sink operators.
	SinkRecords int64
	// SourceRecords counts records produced by sources.
	SourceRecords int64
	// Metrics exports the run's telemetry as a named registry (the form
	// the CAPSys metrics collector scrapes): per task,
	// "<op>[<idx>].records_in", ".records_out", ".bytes_out",
	// ".busy_seconds", ".backpressure_seconds" and ".useful_fraction",
	// plus job-level "job.recoveries", "job.downtime_seconds",
	// "job.records_reprocessed", "job.lost_records" and "job.snapshots".
	Metrics *metrics.Registry

	// Failed reports that at least one task died without recovery (the job
	// ran degraded to completion).
	Failed bool
	// Faults lists every injected fault that fired.
	Faults []FaultRecord
	// Recoveries counts checkpoint restarts performed.
	Recoveries int
	// Downtime is the wall-clock time lost to failures: abort-to-restart
	// for recovered faults, fault-to-completion for unrecovered ones.
	Downtime time.Duration
	// RecordsReprocessed counts records whose processing was rolled back by
	// restores and had to be replayed.
	RecordsReprocessed int64
	// LostRecords counts records dropped by degraded (unrecovered) tasks.
	LostRecords int64
	// SnapshotsTaken counts distinct (task, epoch) snapshots recorded.
	SnapshotsTaken int64
	// RestoredEpoch is the checkpoint epoch of the most recent restore
	// (0 if the job never restarted).
	RestoredEpoch int64
}

// OperatorInRate aggregates the observed input rate of one operator.
func (r *JobResult) OperatorInRate(op dataflow.OperatorID) float64 {
	total := 0.0
	for id, st := range r.Tasks {
		if id.Op == op {
			total += st.ObservedInRate
		}
	}
	return total
}

// message is what flows through task inboxes.
type message struct {
	rec     Record
	in      int // input index (position of the upstream operator)
	ch      int // receiver-side channel index, for watermark tracking
	eof     bool
	barrier bool  // checkpoint barrier marker
	epoch   int64 // barrier epoch
	// ingest is the wall-clock UnixNano stamp of the source emission this
	// message descends from; receivers derive end-to-end latency from it.
	ingest int64
}

type downstreamEdge struct {
	// inboxes of the downstream tasks, parallel to their worker indices.
	inboxes []chan message
	workers []int
	// chans holds, per target, this sender's channel index at the
	// receiver (receivers track one watermark per incoming channel).
	chans []int
	// inIdx is this edge's input index at the downstream operator.
	inIdx int
	rr    int
}

type taskRuntime struct {
	id      dataflow.TaskID
	worker  int
	res     *WorkerResources
	att     *attempt
	inbox   chan message
	numIn   int
	outs    []*downstreamEdge
	op      any // Operator or Source
	ctx     *TaskContext
	cpuCost float64
	isSink  bool

	// chanWM holds the max event time seen per incoming channel; the
	// task's watermark is their minimum. EOF lifts a channel to +inf.
	chanWM    []int64
	watermark int64

	// Barrier alignment state: chanEOF marks exhausted channels (an EOF'd
	// channel counts as aligned), chanSeen marks channels whose barrier for
	// the in-flight epoch has arrived, alignBuf holds messages that arrived
	// on already-aligned channels (they belong to the next epoch), and
	// queue holds released messages awaiting processing.
	chanEOF    []bool
	chanSeen   []bool
	aligning   bool
	alignEpoch int64
	alignBuf   []message
	queue      []message

	// epoch is the last snapshot epoch this task completed.
	epoch int64
	// killEpoch/killIdx arm a worker-kill fault for this task (-1 = none).
	killEpoch int64
	killIdx   int
	// srcOffset is the restored source position (next record index).
	srcOffset int64
	// restore carries the snapshot to apply during wiring (rr positions).
	restore *taskSnapshot

	// dead marks a degraded task: it drains and discards its input.
	dead bool
	// aborted marks that this attempt is being torn down for recovery.
	aborted bool
	// failure holds the first genuine operator error.
	failure error

	// serviceDebt accumulates per-record CPU service time that has not yet
	// been slept off; sleeps are batched to keep timer overhead low.
	serviceDebt float64

	// lat is the task's end-to-end latency histogram (nil when telemetry is
	// off or the task is a source). ingestNS is the source stamp inherited
	// from the message currently being processed; emitted records carry it
	// downstream, and Close-time flushes reuse the last stamp seen.
	lat      *telemetry.Histogram
	ingestNS int64

	recordsIn, recordsOut, bytesOut int64
	busy, bp                        time.Duration
}

// Job is a deployable engine job.
type Job struct {
	graph     *dataflow.LogicalGraph
	phys      *dataflow.PhysicalGraph
	plan      *dataflow.Plan
	spec      ClusterSpec
	opts      JobOptions
	factories map[dataflow.OperatorID]Factory
}

// NewJob wires a physical graph onto engine workers according to plan.
// factories provides, per operator, a Factory returning either an Operator
// or a Source instance for each task.
func NewJob(g *dataflow.LogicalGraph, plan *dataflow.Plan, spec ClusterSpec, factories map[dataflow.OperatorID]Factory, opts JobOptions) (*Job, error) {
	if opts.RecordsPerSource <= 0 {
		return nil, fmt.Errorf("engine: RecordsPerSource must be positive")
	}
	if opts.ChannelCapacity <= 0 {
		opts.ChannelCapacity = 64
	}
	if opts.SnapshotInterval < 0 {
		return nil, fmt.Errorf("engine: SnapshotInterval must be non-negative")
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		return nil, err
	}
	if len(spec.Workers) == 0 {
		return nil, fmt.Errorf("engine: no workers")
	}
	slotUse := make([]int, len(spec.Workers))
	taskSet := make(map[dataflow.TaskID]bool, phys.NumTasks())
	for _, t := range phys.Tasks() {
		taskSet[t] = true
		w, ok := plan.Worker(t)
		if !ok {
			return nil, fmt.Errorf("engine: task %v unassigned", t)
		}
		if w < 0 || w >= len(spec.Workers) {
			return nil, fmt.Errorf("engine: task %v on invalid worker %d", t, w)
		}
		slotUse[w]++
	}
	for w, used := range slotUse {
		if used > spec.Workers[w].Slots {
			return nil, fmt.Errorf("engine: worker %s over capacity (%d > %d)", spec.Workers[w].ID, used, spec.Workers[w].Slots)
		}
	}
	for _, op := range g.Operators() {
		if _, ok := factories[op.ID]; !ok {
			return nil, fmt.Errorf("engine: no factory for operator %q", op.ID)
		}
	}
	// Fault plans must reference real workers/tasks, and worker kills are
	// epoch-aligned so they need a snapshot clock to trigger against.
	for _, k := range opts.FaultPlan.KillWorkers {
		if k.Worker < 0 || k.Worker >= len(spec.Workers) {
			return nil, fmt.Errorf("engine: fault plan kills invalid worker %d", k.Worker)
		}
		if opts.SnapshotInterval <= 0 {
			return nil, fmt.Errorf("engine: worker kills are epoch-aligned; set SnapshotInterval > 0")
		}
		if k.AtEpoch <= 0 {
			return nil, fmt.Errorf("engine: kill epoch must be positive")
		}
	}
	for _, c := range opts.FaultPlan.CrashTasks {
		if !taskSet[c.Task] {
			return nil, fmt.Errorf("engine: fault plan crashes unknown task %v", c.Task)
		}
	}
	for _, s := range opts.FaultPlan.StallTasks {
		if !taskSet[s.Task] {
			return nil, fmt.Errorf("engine: fault plan stalls unknown task %v", s.Task)
		}
	}
	return &Job{graph: g, phys: phys, plan: plan, spec: spec, opts: opts, factories: factories}, nil
}

// runAgg accumulates recovery bookkeeping across attempts.
type runAgg struct {
	recoveries    int
	downtime      time.Duration
	reprocessed   int64
	lost          int64
	restoredEpoch int64
}

// Run executes the job until all sources are exhausted and the pipeline has
// drained, or ctx is canceled (sources stop early; the pipeline still
// drains). Recoverable faults restart the job from the last complete
// checkpoint epoch, re-placing tasks via OnFailure when a worker dies.
func (j *Job) Run(ctx context.Context) (*JobResult, error) {
	start := time.Now()
	tracer := j.opts.Telemetry.Tracer()
	faults := newFaultState(j.opts.FaultPlan, start, tracer)
	coord := newCheckpointCoordinator(j.phys.NumTasks())
	tracer.Emit(telemetry.Event{Kind: telemetry.EventJobStart, Attrs: map[string]any{
		"tasks":   j.phys.NumTasks(),
		"workers": len(j.spec.Workers),
	}})
	plan := j.plan
	dead := make(map[int]bool)
	var agg runAgg
	var failedAt time.Time
	attemptNo := 0
	for {
		attemptNo++
		att, err := j.buildAttempt(attemptNo, plan, coord, faults, agg.restoredEpoch)
		if err != nil {
			return nil, err
		}
		if !failedAt.IsZero() {
			// Downtime covers abort, re-placement and rebuild+restore.
			agg.downtime += time.Since(failedAt)
			failedAt = time.Time{}
		}
		ev, err := att.run(ctx)
		if err != nil {
			return nil, err
		}
		agg.lost += att.lost.Load()
		if ev == nil {
			res := j.finalize(att, faults, coord, time.Since(start), &agg)
			tracer.Emit(telemetry.Event{Kind: telemetry.EventJobComplete, Attrs: map[string]any{
				"elapsed_ms":   res.Elapsed.Seconds() * 1e3,
				"failed":       res.Failed,
				"recoveries":   res.Recoveries,
				"sink_records": res.SinkRecords,
			}})
			return res, nil
		}
		// Recoverable fault: re-place if a worker died, then restart from
		// the newest globally complete checkpoint.
		agg.recoveries++
		recEv := telemetry.Event{
			Kind:    telemetry.EventRecoveryStart,
			Task:    ev.Task.String(),
			Op:      string(ev.Task.Op),
			Epoch:   ev.Epoch,
			Attempt: ev.Attempt,
			Attrs:   map[string]any{"fault": ev.Kind.String()},
		}
		if ev.Kind == FaultKillWorker {
			recEv.Worker = ev.WorkerID
		}
		tracer.Emit(recEv)
		if ev.Kind == FaultKillWorker {
			dead[ev.Worker] = true
		}
		ev.DeadWorkers = deadList(dead)
		if ev.Kind == FaultKillWorker {
			newPlan, err := j.opts.OnFailure(*ev)
			if err != nil {
				return nil, fmt.Errorf("engine: recovery re-placement after %v on worker %d: %w", ev.Kind, ev.Worker, err)
			}
			if err := j.validateRecoveryPlan(newPlan, dead); err != nil {
				return nil, err
			}
			plan = newPlan
		} else if j.opts.OnFailure != nil {
			newPlan, err := j.opts.OnFailure(*ev)
			if err != nil {
				return nil, fmt.Errorf("engine: recovery callback after %v: %w", ev.Kind, err)
			}
			if newPlan != nil {
				if err := j.validateRecoveryPlan(newPlan, dead); err != nil {
					return nil, err
				}
				plan = newPlan
			}
		}
		restore := coord.lastCompleteEpoch()
		agg.restoredEpoch = restore
		agg.reprocessed += att.reprocessedSince(coord, restore)
		faults.markRecovered(ev.Kind, ev.Task, ev.Worker)
		failedAt = att.failTime()
		tracer.Emit(telemetry.Event{
			Kind:    telemetry.EventRecoveryRestart,
			Epoch:   restore,
			Attempt: attemptNo + 1,
			Attrs:   map[string]any{"dead_workers": len(dead)},
		})
	}
}

func deadList(dead map[int]bool) []int {
	out := make([]int, 0, len(dead))
	for w := range dead {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// validateRecoveryPlan rejects partial or dead-worker plans so a broken
// re-placement fails loudly instead of silently re-deploying onto a corpse.
func (j *Job) validateRecoveryPlan(plan *dataflow.Plan, dead map[int]bool) error {
	if plan == nil {
		return fmt.Errorf("engine: recovery returned nil plan")
	}
	slotUse := make([]int, len(j.spec.Workers))
	for _, t := range j.phys.Tasks() {
		w, ok := plan.Worker(t)
		if !ok {
			return fmt.Errorf("engine: recovery plan leaves task %v unassigned", t)
		}
		if w < 0 || w >= len(j.spec.Workers) {
			return fmt.Errorf("engine: recovery plan puts task %v on invalid worker %d", t, w)
		}
		if dead[w] {
			return fmt.Errorf("engine: recovery plan puts task %v on dead worker %d", t, w)
		}
		slotUse[w]++
	}
	for w, used := range slotUse {
		if used > j.spec.Workers[w].Slots {
			return fmt.Errorf("engine: recovery plan overloads worker %s (%d > %d)", j.spec.Workers[w].ID, used, j.spec.Workers[w].Slots)
		}
	}
	return nil
}

// attempt is one deployment of the job: fresh workers, stores, channels and
// task runtimes, optionally restored from a checkpoint epoch.
type attempt struct {
	j       *Job
	no      int
	plan    *dataflow.Plan
	coord   *checkpointCoordinator
	faults  *faultState
	tasks   []*taskRuntime
	workers []*WorkerResources

	abort     chan struct{}
	abortOnce sync.Once
	mu        sync.Mutex
	failEv    *FailureEvent // guarded by mu
	failAt    time.Time     // guarded by mu
	lost      atomic.Int64
}

func (j *Job) buildAttempt(no int, plan *dataflow.Plan, coord *checkpointCoordinator, faults *faultState, restoreEpoch int64) (*attempt, error) {
	a := &attempt{j: j, no: no, plan: plan, coord: coord, faults: faults, abort: make(chan struct{})}
	workers := make([]*WorkerResources, len(j.spec.Workers))
	stores := make([]*statebackend.Store, len(j.spec.Workers))
	for i, ws := range j.spec.Workers {
		res := NewWorkerResources(ws.ID, ws.Cores, ws.IOBps, ws.NetBps)
		workers[i] = res
		io := res.IO
		stores[i] = statebackend.NewStore(func(r, w int) {
			io.Consume(float64(r + w))
		}, j.opts.StateOptions)
	}
	a.workers = workers
	// Callback saturation gauges read the live meters at scrape time; a
	// restarted attempt re-registers the same (family, labels) series, so the
	// exporter always reflects the current attempt's meters.
	if tel := j.opts.Telemetry; tel != nil {
		for i, res := range workers {
			id := j.spec.Workers[i].ID
			for _, m := range []struct {
				resource string
				meter    *Meter
			}{{"cpu", res.CPU}, {"io", res.IO}, {"net", res.Net}} {
				tel.SetGaugeFunc("worker_saturation",
					map[string]string{"worker": id, "resource": m.resource},
					m.meter.Utilization)
			}
		}
	}

	// Build runtimes and inboxes.
	byID := make(map[dataflow.TaskID]*taskRuntime, j.phys.NumTasks())
	var tasks []*taskRuntime
	for _, t := range j.phys.Tasks() {
		w, ok := plan.Worker(t)
		if !ok {
			return nil, fmt.Errorf("engine: task %v unassigned", t)
		}
		op := j.graph.Operator(t.Op)
		rt := &taskRuntime{
			id:      t,
			worker:  w,
			res:     workers[w],
			att:     a,
			inbox:   make(chan message, j.opts.ChannelCapacity),
			numIn:   len(j.phys.In(t)),
			cpuCost: j.opts.PerRecordCPU[t.Op],
			isSink:  len(j.graph.Downstream(t.Op)) == 0,
		}
		if len(j.phys.In(t)) > 0 {
			// Non-source tasks sample end-to-end latency; parallel tasks of
			// one operator share the operator's histogram.
			rt.lat = j.opts.Telemetry.Histogram("latency." + string(t.Op)) //capslint:allow metricnames per-operator histogram family; operator IDs come from validated specs
		}
		rt.chanWM = make([]int64, rt.numIn)
		for i := range rt.chanWM {
			rt.chanWM[i] = minInt64
		}
		rt.watermark = minInt64
		rt.chanEOF = make([]bool, rt.numIn)
		rt.chanSeen = make([]bool, rt.numIn)
		rt.killEpoch, rt.killIdx = faults.killEpochFor(w)
		tctx := &TaskContext{
			Op:          string(t.Op),
			Index:       t.Index,
			Parallelism: op.Parallelism,
			Watermark:   func() int64 { return rt.watermark },
		}
		snap := coord.snapshotFor(t, restoreEpoch)
		if j.opts.Stateful[t.Op] {
			tctx.State = stores[w].Namespace(t.String())
			if snap != nil {
				if err := tctx.State.Restore(snap.nsState); err != nil {
					return nil, fmt.Errorf("engine: restore state of %v: %w", t, err)
				}
			}
		}
		rt.ctx = tctx
		inst, err := mustFactory(j, t, tctx)
		if err != nil {
			return nil, err
		}
		rt.op = inst
		if snap != nil {
			rt.recordsIn = snap.recordsIn
			rt.recordsOut = snap.recordsOut
			rt.bytesOut = snap.bytesOut
			rt.srcOffset = snap.srcOffset
			rt.epoch = snap.epoch
			rt.restore = snap
			if s, ok := inst.(Snapshotter); ok && len(snap.opState) > 0 {
				if err := s.RestoreState(snap.opState); err != nil {
					return nil, fmt.Errorf("engine: restore operator state of %v: %w", t, err)
				}
			}
		}
		byID[t] = rt
		tasks = append(tasks, rt)
	}
	// Wire downstream edges: for every logical edge, each upstream task
	// gets one downstreamEdge covering all downstream tasks. Each
	// (sender, receiver) channel gets a receiver-side index so receivers
	// can track per-channel watermarks.
	nextCh := make(map[dataflow.TaskID]int, len(byID))
	for _, e := range j.graph.Edges() {
		downTasks := j.phys.TasksOf(e.To)
		inIdx := upstreamIndex(j.graph, e.To, e.From)
		for _, ut := range j.phys.TasksOf(e.From) {
			edge := &downstreamEdge{inIdx: inIdx}
			targets := downTasks
			if e.Mode == dataflow.Forward {
				targets = []dataflow.TaskID{downTasks[ut.Index]}
			}
			for _, dt := range targets {
				edge.inboxes = append(edge.inboxes, byID[dt].inbox)
				edge.workers = append(edge.workers, byID[dt].worker)
				edge.chans = append(edge.chans, nextCh[dt])
				nextCh[dt]++
			}
			byID[ut].outs = append(byID[ut].outs, edge)
		}
	}
	// Restore round-robin routing positions so rebalance partitioning
	// resumes mid-cycle exactly where the checkpoint left it.
	for _, rt := range tasks {
		if rt.restore == nil {
			continue
		}
		for i, e := range rt.outs {
			if i < len(rt.restore.rr) {
				e.rr = rt.restore.rr[i]
			}
		}
	}
	a.tasks = tasks
	return a, nil
}

// run launches all task goroutines and waits for the attempt to finish —
// either a clean drain or a recovery abort.
func (a *attempt) run(ctx context.Context) (*FailureEvent, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, len(a.tasks))
	for _, rt := range a.tasks {
		wg.Add(1)
		go func(rt *taskRuntime) {
			defer wg.Done()
			var err error
			if src, ok := rt.op.(Source); ok {
				err = a.runSource(ctx, rt, src)
			} else {
				err = a.runOperator(rt)
			}
			if err != nil {
				// errCh is buffered to len(a.tasks) and every task sends at
				// most once, so this send can never block.
				errCh <- fmt.Errorf("engine: task %v: %w", rt.id, err) //capslint:allow chans buffered to len(tasks) with at most one send per task
			}
		}(rt)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.failEv, nil
}

func (a *attempt) failTime() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.failAt
}

// trigger fires a fault. It returns true when the fault is recoverable —
// the attempt is then aborted and the caller's task must exit — and false
// when the task should instead degrade in place (drain and discard).
func (a *attempt) trigger(kind FaultKind, rt *taskRuntime, epoch, records int64, killIdx int) bool {
	recoverable := a.j.opts.SnapshotInterval > 0 && kind != FaultStallTask
	if kind == FaultKillWorker && a.j.opts.OnFailure == nil {
		recoverable = false
	}
	rec := FaultRecord{Kind: kind, Worker: -1, Task: rt.id, Epoch: epoch, Records: records}
	if kind == FaultKillWorker {
		rec.Worker = rt.worker
		a.faults.noteKill(killIdx, rec)
	} else {
		a.faults.note(rec)
	}
	if !recoverable {
		return false
	}
	a.mu.Lock()
	if a.failEv == nil {
		ev := &FailureEvent{Kind: kind, Worker: -1, Task: rt.id, Epoch: epoch, Attempt: a.no}
		if kind == FaultKillWorker {
			ev.Worker = rt.worker
			ev.WorkerID = a.j.spec.Workers[rt.worker].ID
		}
		a.failEv = ev
		a.failAt = time.Now()
	}
	a.mu.Unlock()
	a.abortOnce.Do(func() { close(a.abort) })
	return true
}

// reprocessedSince counts the records processed in this attempt beyond the
// restore epoch — work that the restore rolls back and the next attempt
// must redo.
func (a *attempt) reprocessedSince(coord *checkpointCoordinator, epoch int64) int64 {
	var total int64
	for _, rt := range a.tasks {
		base := int64(0)
		if snap := coord.snapshotFor(rt.id, epoch); snap != nil {
			base = snap.recordsIn
		} else if rt.restore != nil {
			base = rt.restore.recordsIn
		}
		if d := rt.recordsIn - base; d > 0 {
			total += d
		}
	}
	return total
}

// snapshotTask records one task's checkpoint contribution for an epoch.
func (a *attempt) snapshotTask(rt *taskRuntime, epoch, srcOffset int64) error {
	snap := &taskSnapshot{
		epoch:      epoch,
		recordsIn:  rt.recordsIn,
		recordsOut: rt.recordsOut,
		bytesOut:   rt.bytesOut,
		srcOffset:  srcOffset,
	}
	if len(rt.outs) > 0 {
		snap.rr = make([]int, len(rt.outs))
		for i, e := range rt.outs {
			snap.rr[i] = e.rr
		}
	}
	if rt.ctx.State != nil {
		b, err := rt.ctx.State.Snapshot()
		if err != nil {
			return err
		}
		snap.nsState = b
	}
	if s, ok := rt.op.(Snapshotter); ok {
		b, err := s.SnapshotState()
		if err != nil {
			return err
		}
		snap.opState = b
	}
	if done := a.coord.record(rt.id, snap); done > 0 {
		a.j.opts.Telemetry.Tracer().Emit(telemetry.Event{
			Kind:  telemetry.EventCheckpointComplete,
			Epoch: done,
			Attrs: map[string]any{"last_task": rt.id.String()},
		})
	}
	return nil
}

// finalize assembles the JobResult from the final attempt.
func (j *Job) finalize(a *attempt, faults *faultState, coord *checkpointCoordinator, elapsed time.Duration, agg *runAgg) *JobResult {
	res := &JobResult{
		Elapsed: elapsed,
		Tasks:   make(map[dataflow.TaskID]TaskStats, len(a.tasks)),
		Metrics: metrics.NewRegistry(),
	}
	for _, rt := range a.tasks {
		useful := rt.busy.Seconds() / elapsed.Seconds()
		if useful > 1 {
			useful = 1
		}
		st := TaskStats{
			Worker:          rt.worker,
			RecordsIn:       rt.recordsIn,
			RecordsOut:      rt.recordsOut,
			BytesOut:        rt.bytesOut,
			BusyTime:        rt.busy,
			BackpressureT:   rt.bp,
			UsefulFraction:  useful,
			ObservedInRate:  float64(rt.recordsIn) / elapsed.Seconds(),
			ObservedOutRate: float64(rt.recordsOut) / elapsed.Seconds(),
		}
		res.Tasks[rt.id] = st
		name := func(metric string) string {
			return metrics.TaskMetricName(string(rt.id.Op), rt.id.Index, metric)
		}
		res.Metrics.Counter(name("records_in")).Inc(rt.recordsIn)   //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		res.Metrics.Counter(name("records_out")).Inc(rt.recordsOut) //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		res.Metrics.Counter(name("bytes_out")).Inc(rt.bytesOut)     //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		res.Metrics.Time(name("busy_seconds")).Add(rt.busy)         //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		res.Metrics.Time(name("backpressure_seconds")).Add(rt.bp)   //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		res.Metrics.Gauge(name("useful_fraction")).Set(useful)      //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
		if rt.isSink {
			res.SinkRecords += rt.recordsIn
		}
		if rt.numIn == 0 {
			res.SourceRecords += rt.recordsOut
		}
		if rt.dead {
			res.Failed = true
		}
	}
	// Final token-bucket saturation per worker resource, in the same form
	// the live exporter serves ("worker.<id>.<resource>_saturation").
	for i, wr := range a.workers {
		id := j.spec.Workers[i].ID
		res.Metrics.Gauge("worker." + id + ".cpu_saturation").Set(wr.CPU.Utilization()) //capslint:allow metricnames per-worker series keyed by cluster spec worker ID
		res.Metrics.Gauge("worker." + id + ".io_saturation").Set(wr.IO.Utilization())   //capslint:allow metricnames per-worker series keyed by cluster spec worker ID
		res.Metrics.Gauge("worker." + id + ".net_saturation").Set(wr.Net.Utilization()) //capslint:allow metricnames per-worker series keyed by cluster spec worker ID
	}
	res.Faults = faults.all()
	res.Recoveries = agg.recoveries
	res.Downtime = agg.downtime
	res.RecordsReprocessed = agg.reprocessed
	res.LostRecords = agg.lost
	res.SnapshotsTaken = coord.snapshotsTaken()
	res.RestoredEpoch = agg.restoredEpoch
	if res.Failed {
		// Unrecovered faults leave their tasks down from the fault until
		// the end of the run.
		first := elapsed
		for _, f := range res.Faults {
			if f.Kind != FaultStallTask && !f.Recovered && f.At < first {
				first = f.At
			}
		}
		res.Downtime += elapsed - first
	}
	res.Metrics.Counter("job.recoveries").Inc(int64(res.Recoveries))
	res.Metrics.Gauge("job.downtime_seconds").Set(res.Downtime.Seconds())
	res.Metrics.Counter("job.records_reprocessed").Inc(res.RecordsReprocessed)
	res.Metrics.Counter("job.lost_records").Inc(res.LostRecords)
	res.Metrics.Counter("job.snapshots").Inc(res.SnapshotsTaken)
	res.Metrics.Gauge("job.restored_epoch").Set(float64(res.RestoredEpoch))
	return res
}

func mustFactory(j *Job, t dataflow.TaskID, tctx *TaskContext) (any, error) {
	inst, err := j.factories[t.Op](tctx)
	if err != nil {
		return nil, fmt.Errorf("engine: factory for %v: %w", t, err)
	}
	switch v := inst.(type) {
	case Source:
		if err := v.Open(tctx); err != nil {
			return nil, err
		}
	case Operator:
		if err := v.Open(tctx); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("engine: factory for %q returned %T, want Operator or Source", t.Op, inst)
	}
	return inst, nil
}

func upstreamIndex(g *dataflow.LogicalGraph, op, up dataflow.OperatorID) int {
	for i, u := range g.Upstream(op) {
		if u == up {
			return i
		}
	}
	return 0
}

// send partitions rec across one downstream edge, charging network bytes
// for cross-worker hops and accounting backpressure time. Sends abort
// promptly when the attempt is torn down for recovery.
func (rt *taskRuntime) send(rec Record, edge *downstreamEdge) {
	if rt.aborted {
		return
	}
	n := len(edge.inboxes)
	var idx int
	if rec.Key != "" {
		h := fnv.New32a()
		h.Write([]byte(rec.Key))
		idx = int(h.Sum32() % uint32(n))
	} else {
		idx = edge.rr % n
		edge.rr++
	}
	size := rec.Size
	if size == 0 {
		size = DefaultRecordSize
	}
	if edge.workers[idx] != rt.worker {
		rt.res.Net.Consume(float64(size))
	}
	t0 := time.Now()
	select {
	case edge.inboxes[idx] <- message{rec: rec, in: edge.inIdx, ch: edge.chans[idx], ingest: rt.ingestNS}:
	case <-rt.att.abort:
		rt.aborted = true
		return
	}
	rt.bp += time.Since(t0)
	rt.bytesOut += int64(size)
	rt.recordsOut++
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// observe updates the per-channel watermark state for an arriving message.
func (rt *taskRuntime) observe(msg message) {
	if msg.eof {
		rt.chanWM[msg.ch] = maxInt64
	} else if msg.rec.Time > rt.chanWM[msg.ch] {
		rt.chanWM[msg.ch] = msg.rec.Time
	} else {
		return
	}
	wm := int64(maxInt64)
	for _, w := range rt.chanWM {
		if w < wm {
			wm = w
		}
	}
	rt.watermark = wm
}

func (rt *taskRuntime) emit(rec Record) {
	for _, edge := range rt.outs {
		rt.send(rec, edge)
	}
}

// forwardBarrier broadcasts a checkpoint barrier to every inbox of every
// out-edge — barriers are markers, not data: they bypass partitioning and
// are not counted in records/bytes out.
func (rt *taskRuntime) forwardBarrier(epoch int64) {
	for _, edge := range rt.outs {
		for i, inbox := range edge.inboxes {
			if rt.aborted {
				return
			}
			select {
			case inbox <- message{barrier: true, epoch: epoch, ch: edge.chans[i]}:
			case <-rt.att.abort:
				rt.aborted = true
				return
			}
		}
	}
}

// serviceSleepBatch is the minimum accumulated service time before the task
// actually sleeps; smaller values are more faithful but timer-bound.
const serviceSleepBatch = 100e-6 // seconds

// chargeCPU models the per-record compute cost: the record occupies this
// task's thread for cost seconds (service time), and the cost is drawn from
// the worker's shared CPU meter so that co-located tasks whose aggregate
// demand exceeds the worker's cores experience additional slowdown — the
// contention effect CAPS placement avoids.
func (rt *taskRuntime) chargeCPU(cost float64) {
	if cost <= 0 {
		return
	}
	rt.res.CPU.Consume(cost)
	rt.serviceDebt += cost
	if rt.serviceDebt >= serviceSleepBatch {
		d := time.Duration(rt.serviceDebt * float64(time.Second))
		rt.serviceDebt = 0
		time.Sleep(d)
	}
}

// runSource drives a source task at its configured rate, injecting
// checkpoint barriers every SnapshotInterval records. A restored source
// fast-forwards its generator through the replayed prefix so the generator's
// internal state — and therefore the rest of the stream — matches the
// original run exactly.
func (a *attempt) runSource(ctx context.Context, rt *taskRuntime, src Source) error {
	op := a.j.graph.Operator(rt.id.Op)
	rate := 0.0
	if r, ok := a.j.opts.SourceRate[rt.id.Op]; ok && r > 0 {
		rate = r / float64(op.Parallelism)
	}
	interval := a.j.opts.SnapshotInterval
	for i := int64(0); i < rt.srcOffset; i++ {
		if _, ok := src.Next(i); !ok {
			break
		}
	}
	start := time.Now()
	for i := rt.srcOffset; i < a.j.opts.RecordsPerSource; i++ {
		if ctx.Err() != nil || rt.aborted {
			break
		}
		if rate > 0 {
			due := start.Add(time.Duration(float64(i-rt.srcOffset) / rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				case <-rt.att.abort:
					rt.aborted = true
				}
			}
		}
		if rt.aborted {
			return nil
		}
		rec, ok := src.Next(i)
		if !ok {
			break
		}
		if d := a.faults.stallFor(rt.id, i+1); d > 0 {
			time.Sleep(d)
		}
		t0 := time.Now()
		rt.ingestNS = t0.UnixNano()
		rt.chargeCPU(rt.cpuCost)
		bpBefore := rt.bp
		rt.emit(rec)
		rt.busy += time.Since(t0) - (rt.bp - bpBefore)
		if rt.aborted {
			return nil
		}
		if interval > 0 && (i+1)%interval == 0 {
			epoch := (i + 1) / interval
			if a.coord.noteStarted(epoch) {
				a.j.opts.Telemetry.Tracer().Emit(telemetry.Event{
					Kind:  telemetry.EventCheckpointStart,
					Epoch: epoch,
					Op:    string(rt.id.Op),
				})
			}
			if err := a.snapshotTask(rt, epoch, i+1); err != nil {
				return err
			}
			rt.forwardBarrier(epoch)
			rt.epoch = epoch
			if rt.aborted {
				return nil
			}
			if rt.killEpoch >= 0 && epoch >= rt.killEpoch {
				if a.trigger(FaultKillWorker, rt, epoch, i+1, rt.killIdx) {
					rt.aborted = true
					return nil
				}
				// Degraded: this source stops emitting; the rest of its
				// records are lost throughput.
				a.lost.Add(a.j.opts.RecordsPerSource - (i + 1))
				rt.dead = true
				break
			}
		}
	}
	if rt.aborted {
		return nil
	}
	rt.finish(nil)
	return nil
}

// alignmentComplete reports whether every live channel has delivered the
// in-flight barrier (EOF'd channels count as aligned).
func (rt *taskRuntime) alignmentComplete() bool {
	for i := range rt.chanSeen {
		if !rt.chanSeen[i] && !rt.chanEOF[i] {
			return false
		}
	}
	return true
}

// completeAlignment fires when the in-flight barrier has arrived on every
// live channel: snapshot, forward the barrier downstream, release held-back
// messages, then honor any epoch-aligned worker kill.
func (a *attempt) completeAlignment(rt *taskRuntime) error {
	epoch := rt.alignEpoch
	rt.aligning = false
	for i := range rt.chanSeen {
		rt.chanSeen[i] = false
	}
	// Held-back messages arrived after older queued ones; keep FIFO order
	// per channel by appending them behind the existing queue.
	rt.queue = append(rt.queue, rt.alignBuf...)
	rt.alignBuf = nil
	if !rt.dead && rt.failure == nil {
		if err := a.snapshotTask(rt, epoch, 0); err != nil {
			return err
		}
	}
	rt.epoch = epoch
	rt.forwardBarrier(epoch)
	if rt.aborted {
		return nil
	}
	if rt.killEpoch >= 0 && epoch >= rt.killEpoch && !rt.dead {
		if a.trigger(FaultKillWorker, rt, epoch, rt.recordsIn, rt.killIdx) {
			rt.aborted = true
			return nil
		}
		rt.dead = true
	}
	return nil
}

// runOperator drives a non-source task: consume the inbox until every
// upstream channel has delivered EOF, aligning on checkpoint barriers along
// the way. After an operator failure — or once the task is degraded by an
// unrecovered fault — the task keeps draining (and discarding) its inbox so
// upstream senders blocked on the full channel cannot deadlock the job;
// barriers are still forwarded so live tasks keep checkpointing around the
// corpse.
func (a *attempt) runOperator(rt *taskRuntime) error {
	opr, ok := rt.op.(Operator)
	if !ok {
		return fmt.Errorf("unexpected instance type %T", rt.op)
	}
	remaining := rt.numIn
	for remaining > 0 {
		var msg message
		if len(rt.queue) > 0 {
			msg, rt.queue = rt.queue[0], rt.queue[1:]
		} else {
			select {
			case msg = <-rt.inbox:
			case <-rt.att.abort:
				rt.aborted = true
				return nil
			}
		}
		if rt.aligning && rt.chanSeen[msg.ch] {
			// This channel already delivered the in-flight barrier:
			// anything after it belongs to the next epoch.
			rt.alignBuf = append(rt.alignBuf, msg)
			continue
		}
		if msg.barrier {
			if !rt.aligning {
				rt.aligning = true
				rt.alignEpoch = msg.epoch
			}
			rt.chanSeen[msg.ch] = true
			if rt.alignmentComplete() {
				if err := a.completeAlignment(rt); err != nil {
					rt.failure = err
				}
				if rt.aborted {
					return nil
				}
			}
			continue
		}
		if msg.eof {
			rt.chanEOF[msg.ch] = true
			remaining--
			rt.observe(msg)
			if rt.aligning && rt.alignmentComplete() {
				if err := a.completeAlignment(rt); err != nil {
					rt.failure = err
				}
				if rt.aborted {
					return nil
				}
			}
			continue
		}
		rt.observe(msg)
		if rt.failure != nil {
			continue // drain-and-discard after a failure
		}
		if rt.dead {
			a.lost.Add(1)
			continue
		}
		rt.recordsIn++
		if d := a.faults.stallFor(rt.id, rt.recordsIn); d > 0 {
			time.Sleep(d)
		}
		t0 := time.Now()
		if msg.ingest > 0 {
			rt.ingestNS = msg.ingest
		}
		rt.chargeCPU(rt.cpuCost)
		bpBefore := rt.bp
		if err := opr.Process(msg.rec, msg.in, rt.emit); err != nil {
			rt.failure = err
			continue
		}
		// Useful time excludes downstream backpressure accumulated inside
		// emit, matching how Flink separates busy from backpressured time.
		rt.busy += time.Since(t0) - (rt.bp - bpBefore)
		if msg.ingest > 0 {
			// End-to-end latency: source emission to the end of this
			// operator's processing (including any backpressure en route).
			rt.lat.Observe(float64(time.Now().UnixNano()-msg.ingest) / 1e9)
		}
		if rt.aborted {
			return nil
		}
		if a.faults.shouldCrash(rt.id, rt.recordsIn) {
			if a.trigger(FaultCrashTask, rt, rt.epoch, rt.recordsIn, -1) {
				rt.aborted = true
				return nil
			}
			rt.dead = true
		}
	}
	if rt.aborted {
		return nil
	}
	if rt.failure != nil {
		rt.finish(nil)
		return rt.failure
	}
	if rt.dead {
		rt.finish(nil)
		return nil
	}
	rt.finish(opr)
	return nil
}

// finish flushes the operator (if any) and propagates EOF downstream.
func (rt *taskRuntime) finish(opr Operator) {
	if opr != nil {
		t0 := time.Now()
		_ = opr.Close(rt.emit)
		rt.busy += time.Since(t0)
	}
	for _, edge := range rt.outs {
		for i, inbox := range edge.inboxes {
			if rt.aborted {
				return
			}
			select {
			case inbox <- message{eof: true, ch: edge.chans[i]}:
			case <-rt.att.abort:
				rt.aborted = true
				return
			}
		}
	}
}
