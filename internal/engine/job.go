package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"capsys/internal/dataflow"
	"capsys/internal/metrics"
	"capsys/internal/statebackend"
)

// WorkerSpec declares one worker's slot count and resource capacities.
type WorkerSpec struct {
	ID     string
	Slots  int
	Cores  float64 // CPU-seconds per second
	IOBps  float64 // state bytes per second
	NetBps float64 // cross-worker bytes per second
}

// ClusterSpec declares the engine cluster.
type ClusterSpec struct {
	Workers []WorkerSpec
}

// JobOptions configures a run.
type JobOptions struct {
	// ChannelCapacity is the bounded inbox size per task (default 64);
	// smaller values propagate backpressure faster.
	ChannelCapacity int
	// SourceRate caps each source operator's aggregate generation rate in
	// records/second (0 or missing = uncapped).
	SourceRate map[dataflow.OperatorID]float64
	// RecordsPerSource is the number of records each source *task*
	// generates before signaling end of stream (required, > 0).
	RecordsPerSource int64
	// PerRecordCPU charges this many CPU-seconds per processed record per
	// operator, on top of the operator's real compute, modeling the
	// profiled cost. Missing operators charge nothing extra.
	PerRecordCPU map[dataflow.OperatorID]float64
	// Stateful marks operators that need a state namespace.
	Stateful map[dataflow.OperatorID]bool
	// StateOptions configures the per-worker state backends.
	StateOptions statebackend.Options
}

// TaskStats is one task's runtime telemetry.
type TaskStats struct {
	Worker          int
	RecordsIn       int64
	RecordsOut      int64
	BytesOut        int64
	BusyTime        time.Duration
	BackpressureT   time.Duration
	UsefulFraction  float64
	ObservedInRate  float64
	ObservedOutRate float64
}

// JobResult is the outcome of one engine run.
type JobResult struct {
	Elapsed time.Duration
	Tasks   map[dataflow.TaskID]TaskStats
	// SinkRecords counts records absorbed by sink operators.
	SinkRecords int64
	// SourceRecords counts records produced by sources.
	SourceRecords int64
	// Metrics exports the run's telemetry as a named registry (the form
	// the CAPSys metrics collector scrapes): per task,
	// "<op>[<idx>].records_in", ".records_out", ".bytes_out",
	// ".busy_seconds", ".backpressure_seconds" and ".useful_fraction".
	Metrics *metrics.Registry
}

// OperatorInRate aggregates the observed input rate of one operator.
func (r *JobResult) OperatorInRate(op dataflow.OperatorID) float64 {
	total := 0.0
	for id, st := range r.Tasks {
		if id.Op == op {
			total += st.ObservedInRate
		}
	}
	return total
}

// message is what flows through task inboxes.
type message struct {
	rec Record
	in  int // input index (position of the upstream operator)
	ch  int // receiver-side channel index, for watermark tracking
	eof bool
}

type downstreamEdge struct {
	// inboxes of the downstream tasks, parallel to their worker indices.
	inboxes []chan message
	workers []int
	// chans holds, per target, this sender's channel index at the
	// receiver (receivers track one watermark per incoming channel).
	chans []int
	// inIdx is this edge's input index at the downstream operator.
	inIdx int
	rr    int
}

type taskRuntime struct {
	id      dataflow.TaskID
	worker  int
	res     *WorkerResources
	inbox   chan message
	numIn   int
	outs    []*downstreamEdge
	op      any // Operator or Source
	ctx     *TaskContext
	cpuCost float64
	isSink  bool

	// chanWM holds the max event time seen per incoming channel; the
	// task's watermark is their minimum. EOF lifts a channel to +inf.
	chanWM    []int64
	watermark int64

	// serviceDebt accumulates per-record CPU service time that has not yet
	// been slept off; sleeps are batched to keep timer overhead low.
	serviceDebt float64

	recordsIn, recordsOut, bytesOut int64
	busy, bp                        time.Duration
}

// Job is a deployable engine job.
type Job struct {
	graph     *dataflow.LogicalGraph
	phys      *dataflow.PhysicalGraph
	plan      *dataflow.Plan
	spec      ClusterSpec
	opts      JobOptions
	factories map[dataflow.OperatorID]Factory
	tasks     []*taskRuntime
}

// NewJob wires a physical graph onto engine workers according to plan.
// factories provides, per operator, a Factory returning either an Operator
// or a Source instance for each task.
func NewJob(g *dataflow.LogicalGraph, plan *dataflow.Plan, spec ClusterSpec, factories map[dataflow.OperatorID]Factory, opts JobOptions) (*Job, error) {
	if opts.RecordsPerSource <= 0 {
		return nil, fmt.Errorf("engine: RecordsPerSource must be positive")
	}
	if opts.ChannelCapacity <= 0 {
		opts.ChannelCapacity = 64
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		return nil, err
	}
	if len(spec.Workers) == 0 {
		return nil, fmt.Errorf("engine: no workers")
	}
	slotUse := make([]int, len(spec.Workers))
	for _, t := range phys.Tasks() {
		w, ok := plan.Worker(t)
		if !ok {
			return nil, fmt.Errorf("engine: task %v unassigned", t)
		}
		if w < 0 || w >= len(spec.Workers) {
			return nil, fmt.Errorf("engine: task %v on invalid worker %d", t, w)
		}
		slotUse[w]++
	}
	for w, used := range slotUse {
		if used > spec.Workers[w].Slots {
			return nil, fmt.Errorf("engine: worker %s over capacity (%d > %d)", spec.Workers[w].ID, used, spec.Workers[w].Slots)
		}
	}
	for _, op := range g.Operators() {
		if _, ok := factories[op.ID]; !ok {
			return nil, fmt.Errorf("engine: no factory for operator %q", op.ID)
		}
	}
	return &Job{graph: g, phys: phys, plan: plan, spec: spec, opts: opts, factories: factories}, nil
}

// Run executes the job until all sources are exhausted and the pipeline has
// drained, or ctx is canceled (sources stop early; the pipeline still
// drains).
func (j *Job) Run(ctx context.Context) (*JobResult, error) {
	workers := make([]*WorkerResources, len(j.spec.Workers))
	stores := make([]*statebackend.Store, len(j.spec.Workers))
	for i, ws := range j.spec.Workers {
		res := NewWorkerResources(ws.ID, ws.Cores, ws.IOBps, ws.NetBps)
		workers[i] = res
		io := res.IO
		stores[i] = statebackend.NewStore(func(r, w int) {
			io.Consume(float64(r + w))
		}, j.opts.StateOptions)
	}

	// Build runtimes and inboxes.
	byID := make(map[dataflow.TaskID]*taskRuntime, j.phys.NumTasks())
	var tasks []*taskRuntime
	for _, t := range j.phys.Tasks() {
		w := j.plan.MustWorker(t)
		op := j.graph.Operator(t.Op)
		rt := &taskRuntime{
			id:      t,
			worker:  w,
			res:     workers[w],
			inbox:   make(chan message, j.opts.ChannelCapacity),
			numIn:   len(j.phys.In(t)),
			cpuCost: j.opts.PerRecordCPU[t.Op],
			isSink:  len(j.graph.Downstream(t.Op)) == 0,
		}
		rt.chanWM = make([]int64, rt.numIn)
		for i := range rt.chanWM {
			rt.chanWM[i] = minInt64
		}
		rt.watermark = minInt64
		tctx := &TaskContext{
			Op:          string(t.Op),
			Index:       t.Index,
			Parallelism: op.Parallelism,
			Watermark:   func() int64 { return rt.watermark },
		}
		if j.opts.Stateful[t.Op] {
			tctx.State = stores[w].Namespace(t.String())
		}
		rt.ctx = tctx
		inst, err := mustFactory(j, t, tctx)
		if err != nil {
			return nil, err
		}
		rt.op = inst
		byID[t] = rt
		tasks = append(tasks, rt)
	}
	// Wire downstream edges: for every logical edge, each upstream task
	// gets one downstreamEdge covering all downstream tasks. Each
	// (sender, receiver) channel gets a receiver-side index so receivers
	// can track per-channel watermarks.
	nextCh := make(map[dataflow.TaskID]int, len(byID))
	for _, e := range j.graph.Edges() {
		downTasks := j.phys.TasksOf(e.To)
		inIdx := upstreamIndex(j.graph, e.To, e.From)
		for _, ut := range j.phys.TasksOf(e.From) {
			edge := &downstreamEdge{inIdx: inIdx}
			targets := downTasks
			if e.Mode == dataflow.Forward {
				targets = []dataflow.TaskID{downTasks[ut.Index]}
			}
			for _, dt := range targets {
				edge.inboxes = append(edge.inboxes, byID[dt].inbox)
				edge.workers = append(edge.workers, byID[dt].worker)
				edge.chans = append(edge.chans, nextCh[dt])
				nextCh[dt]++
			}
			byID[ut].outs = append(byID[ut].outs, edge)
		}
	}
	j.tasks = tasks

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, len(tasks))
	for _, rt := range tasks {
		wg.Add(1)
		go func(rt *taskRuntime) {
			defer wg.Done()
			var err error
			if src, ok := rt.op.(Source); ok {
				err = j.runSource(ctx, rt, src)
			} else {
				err = j.runOperator(rt)
			}
			if err != nil {
				errCh <- fmt.Errorf("engine: task %v: %w", rt.id, err)
			}
		}(rt)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	res := &JobResult{
		Elapsed: elapsed,
		Tasks:   make(map[dataflow.TaskID]TaskStats, len(tasks)),
		Metrics: metrics.NewRegistry(),
	}
	for _, rt := range tasks {
		useful := rt.busy.Seconds() / elapsed.Seconds()
		if useful > 1 {
			useful = 1
		}
		st := TaskStats{
			Worker:          rt.worker,
			RecordsIn:       rt.recordsIn,
			RecordsOut:      rt.recordsOut,
			BytesOut:        rt.bytesOut,
			BusyTime:        rt.busy,
			BackpressureT:   rt.bp,
			UsefulFraction:  useful,
			ObservedInRate:  float64(rt.recordsIn) / elapsed.Seconds(),
			ObservedOutRate: float64(rt.recordsOut) / elapsed.Seconds(),
		}
		res.Tasks[rt.id] = st
		name := func(metric string) string {
			return metrics.TaskMetricName(string(rt.id.Op), rt.id.Index, metric)
		}
		res.Metrics.Counter(name("records_in")).Inc(rt.recordsIn)
		res.Metrics.Counter(name("records_out")).Inc(rt.recordsOut)
		res.Metrics.Counter(name("bytes_out")).Inc(rt.bytesOut)
		res.Metrics.Time(name("busy_seconds")).Add(rt.busy)
		res.Metrics.Time(name("backpressure_seconds")).Add(rt.bp)
		res.Metrics.Gauge(name("useful_fraction")).Set(useful)
		if rt.isSink {
			res.SinkRecords += rt.recordsIn
		}
		if rt.numIn == 0 {
			res.SourceRecords += rt.recordsOut
		}
	}
	return res, nil
}

func mustFactory(j *Job, t dataflow.TaskID, tctx *TaskContext) (any, error) {
	inst, err := j.factories[t.Op](tctx)
	if err != nil {
		return nil, fmt.Errorf("engine: factory for %v: %w", t, err)
	}
	switch v := inst.(type) {
	case Source:
		if err := v.Open(tctx); err != nil {
			return nil, err
		}
	case Operator:
		if err := v.Open(tctx); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("engine: factory for %q returned %T, want Operator or Source", t.Op, inst)
	}
	return inst, nil
}

func upstreamIndex(g *dataflow.LogicalGraph, op, up dataflow.OperatorID) int {
	for i, u := range g.Upstream(op) {
		if u == up {
			return i
		}
	}
	return 0
}

// send partitions rec across one downstream edge, charging network bytes
// for cross-worker hops and accounting backpressure time.
func (rt *taskRuntime) send(rec Record, edge *downstreamEdge) {
	n := len(edge.inboxes)
	var idx int
	if rec.Key != "" {
		h := fnv.New32a()
		h.Write([]byte(rec.Key))
		idx = int(h.Sum32() % uint32(n))
	} else {
		idx = edge.rr % n
		edge.rr++
	}
	size := rec.Size
	if size == 0 {
		size = DefaultRecordSize
	}
	if edge.workers[idx] != rt.worker {
		rt.res.Net.Consume(float64(size))
	}
	t0 := time.Now()
	edge.inboxes[idx] <- message{rec: rec, in: edge.inIdx, ch: edge.chans[idx]}
	rt.bp += time.Since(t0)
	rt.bytesOut += int64(size)
	rt.recordsOut++
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// observe updates the per-channel watermark state for an arriving message.
func (rt *taskRuntime) observe(msg message) {
	if msg.eof {
		rt.chanWM[msg.ch] = maxInt64
	} else if msg.rec.Time > rt.chanWM[msg.ch] {
		rt.chanWM[msg.ch] = msg.rec.Time
	} else {
		return
	}
	wm := int64(maxInt64)
	for _, w := range rt.chanWM {
		if w < wm {
			wm = w
		}
	}
	rt.watermark = wm
}

func (rt *taskRuntime) emit(rec Record) {
	for _, edge := range rt.outs {
		rt.send(rec, edge)
	}
}

// serviceSleepBatch is the minimum accumulated service time before the task
// actually sleeps; smaller values are more faithful but timer-bound.
const serviceSleepBatch = 100e-6 // seconds

// chargeCPU models the per-record compute cost: the record occupies this
// task's thread for cost seconds (service time), and the cost is drawn from
// the worker's shared CPU meter so that co-located tasks whose aggregate
// demand exceeds the worker's cores experience additional slowdown — the
// contention effect CAPS placement avoids.
func (rt *taskRuntime) chargeCPU(cost float64) {
	if cost <= 0 {
		return
	}
	rt.res.CPU.Consume(cost)
	rt.serviceDebt += cost
	if rt.serviceDebt >= serviceSleepBatch {
		d := time.Duration(rt.serviceDebt * float64(time.Second))
		rt.serviceDebt = 0
		time.Sleep(d)
	}
}

// runSource drives a source task at its configured rate.
func (j *Job) runSource(ctx context.Context, rt *taskRuntime, src Source) error {
	op := j.graph.Operator(rt.id.Op)
	rate := 0.0
	if r, ok := j.opts.SourceRate[rt.id.Op]; ok && r > 0 {
		rate = r / float64(op.Parallelism)
	}
	start := time.Now()
	var i int64
	for ; i < j.opts.RecordsPerSource; i++ {
		if ctx.Err() != nil {
			break
		}
		if rate > 0 {
			due := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
		}
		rec, ok := src.Next(i)
		if !ok {
			break
		}
		t0 := time.Now()
		rt.chargeCPU(rt.cpuCost)
		bpBefore := rt.bp
		rt.emit(rec)
		rt.busy += time.Since(t0) - (rt.bp - bpBefore)
	}
	rt.finish(nil)
	return nil
}

// run drives a non-source task: consume the inbox until every upstream
// channel has delivered EOF. After an operator failure the task keeps
// draining (and discarding) its inbox — otherwise upstream senders blocked
// on the full channel would deadlock the whole job — and the first error is
// reported once the upstream streams end.
func (rt *taskRuntime) run(opr Operator) error {
	remaining := rt.numIn
	var failure error
	for remaining > 0 {
		msg := <-rt.inbox
		rt.observe(msg)
		if msg.eof {
			remaining--
			continue
		}
		if failure != nil {
			continue // drain-and-discard after a failure
		}
		rt.recordsIn++
		t0 := time.Now()
		rt.chargeCPU(rt.cpuCost)
		bpBefore := rt.bp
		if err := opr.Process(msg.rec, msg.in, rt.emit); err != nil {
			failure = err
			continue
		}
		// Useful time excludes downstream backpressure accumulated inside
		// emit, matching how Flink separates busy from backpressured time.
		rt.busy += time.Since(t0) - (rt.bp - bpBefore)
	}
	return failure
}

func (j *Job) runOperator(rt *taskRuntime) error {
	opr, ok := rt.op.(Operator)
	if !ok {
		return fmt.Errorf("unexpected instance type %T", rt.op)
	}
	if err := rt.run(opr); err != nil {
		rt.finish(nil)
		return err
	}
	rt.finish(opr)
	return nil
}

// finish flushes the operator (if any) and propagates EOF downstream.
func (rt *taskRuntime) finish(opr Operator) {
	if opr != nil {
		t0 := time.Now()
		_ = opr.Close(rt.emit)
		rt.busy += time.Since(t0)
	}
	for _, edge := range rt.outs {
		for i, inbox := range edge.inboxes {
			inbox <- message{eof: true, ch: edge.chans[i]}
		}
	}
}
