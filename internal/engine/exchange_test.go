package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"capsys/internal/dataflow"
)

// asTransport returns a JobOptions mutator selecting one transport with the
// given batch shape (zeros keep the defaults).
func asTransport(name string, batchSize int, linger time.Duration) func(*JobOptions) {
	return func(o *JobOptions) {
		o.Transport = name
		o.BatchSize = batchSize
		o.BatchLinger = linger
	}
}

// TestCrossTransportEquivalence is the equivalence battery: the same
// pipelines — stateful windows, stateful sources with round-robin restore,
// and mid-run worker kills with recovery — must produce byte-identical
// record/byte counters and fault outcomes under every transport (unary,
// batched, and network, where cross-worker edges traverse real TCP
// sockets). The transports may differ in timing, never in what was
// processed.
func TestCrossTransportEquivalence(t *testing.T) {
	kill := FaultPlan{KillWorkers: []WorkerKill{{Worker: 1, AtEpoch: 3}}}
	cases := []struct {
		name  string
		build func(t *testing.T, mut func(*JobOptions)) *Job
	}{
		{"window-clean", func(t *testing.T, mut func(*JobOptions)) *Job {
			return winPipeline(t, FaultPlan{}, false, mut)
		}},
		{"window-kill-recovery", func(t *testing.T, mut func(*JobOptions)) *Job {
			return winPipeline(t, kill, true, mut)
		}},
		{"statefulsrc-clean", func(t *testing.T, mut func(*JobOptions)) *Job {
			return sumPipeline(t, FaultPlan{}, false, mut)
		}},
		{"statefulsrc-kill-recovery", func(t *testing.T, mut func(*JobOptions)) *Job {
			return sumPipeline(t, kill, true, mut)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outcomes := make(map[string]string)
			results := make(map[string]*JobResult)
			for _, tr := range TransportNames() {
				// A small batch with default linger exercises both size- and
				// time-triggered flushes against the barrier stream.
				res, err := tc.build(t, asTransport(tr, 16, 0)).Run(context.Background())
				if err != nil {
					t.Fatalf("%s: %v", tr, err)
				}
				outcomes[tr] = canonicalOutcome(res)
				results[tr] = res
			}
			// RestoredEpoch is deliberately not compared: which epoch was
			// last complete when the kill fired depends on how far the sink
			// had aligned, which is schedule- (and transport-) dependent.
			// Exactly-once accounting is what must match, and it is covered
			// by canonicalOutcome above.
			for _, tr := range TransportNames() {
				if tr == TransportUnary {
					continue
				}
				if outcomes[tr] != outcomes[TransportUnary] {
					t.Errorf("transports diverge:\nunary:\n%s\n%s:\n%s",
						outcomes[TransportUnary], tr, outcomes[tr])
				}
				// Both batching transports coalesce records.
				if got := results[tr].Metrics.Snapshot()["exchange.batches"]; got == 0 {
					t.Errorf("%s run reports zero exchange.batches", tr)
				}
			}
			if got := results[TransportUnary].Metrics.Snapshot()["exchange.batches"]; got != 0 {
				t.Errorf("unary run reports %v exchange.batches, want 0", got)
			}
			// The network run must have actually used the wire: the pipelines
			// span two workers, so cross-worker edges carry data frames.
			if got := results[TransportNetwork].Metrics.Snapshot()["net.data_batches"]; got == 0 {
				t.Error("network run reports zero net.data_batches")
			}
		})
	}
}

// TestCrossTransportRates: with a rate-limited source the pipeline is
// source-bound under every transport, so observed operator input rates
// must agree within a loose statistical tolerance. The strict ratio check
// is wall-clock sensitive — race instrumentation and loaded CI hosts skew
// short runs — so under -race only the sanity bounds apply.
func TestCrossTransportRates(t *testing.T) {
	build := func(mut func(*JobOptions)) *Job {
		return winPipeline(t, FaultPlan{}, false, func(o *JobOptions) {
			o.SourceRate = map[dataflow.OperatorID]float64{"src": 4000}
			o.RecordsPerSource = 400
			mut(o)
		})
	}
	rates := make(map[string]float64)
	for _, tr := range TransportNames() {
		res, err := build(asTransport(tr, 0, 0)).Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		rates[tr] = res.OperatorInRate("win")
		if rates[tr] <= 0 {
			t.Fatalf("%s: non-positive input rate %v", tr, rates[tr])
		}
	}
	if raceEnabled {
		t.Log("race build: skipping strict rate-ratio comparison")
		return
	}
	u := rates[TransportUnary]
	for _, tr := range TransportNames() {
		if ratio := math.Abs(u-rates[tr]) / u; ratio > 0.35 {
			t.Errorf("rate-limited input rates diverge beyond 35%%: unary %.1f vs %s %.1f",
				u, tr, rates[tr])
		}
	}
}

// TestBatchedBackpressurePreserved: a slow consumer behind a small channel
// must throttle the source under the batched transport exactly as it does
// under unary — credits, not unbounded buffers, absorb the burst. The run
// cannot finish faster than the slow operator's metered service time, the
// source must report backpressure, and the credit gate must record stalls.
func TestBatchedBackpressurePreserved(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "slow", Kind: dataflow.KindMap, Parallelism: 1, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i, Time: i}, true
			}), nil
		},
		"slow": func(*TaskContext) (any, error) {
			return NewMap(func(r Record) Record { return r }), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	spec := ClusterSpec{Workers: []WorkerSpec{{ID: "w0", Slots: 3, Cores: 1, IOBps: 1e12, NetBps: 1e12}}}
	job, err := NewJob(g, roundRobinPlan(t, g, 1), spec, factories, JobOptions{
		RecordsPerSource: 200,
		ChannelCapacity:  8,
		Transport:        TransportBatched,
		BatchSize:        8,
		PerRecordCPU:     map[dataflow.OperatorID]float64{"slow": 1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 200 x 1ms of metered service minus the 5% burst allowance.
	if res.Elapsed < 140*time.Millisecond {
		t.Errorf("run finished in %v; batched transport lost backpressure", res.Elapsed)
	}
	src := res.Tasks[dataflow.TaskID{Op: "src", Index: 0}]
	if src.BackpressureT == 0 {
		t.Error("source reports zero backpressure time despite slow consumer")
	}
	snap := res.Metrics.Snapshot()
	if snap["exchange.credit_stalls"] == 0 {
		t.Error("credit gate recorded no stalls despite a saturated receiver")
	}
	if snap["exchange.batches"] == 0 {
		t.Error("no batches recorded")
	}
}

// TestJoinUnderBatchedTransport runs the two-input tumbling window join over
// the batching transports (in-memory batched and network): join correctness
// must survive batching, and with checkpoint barriers whose interval is not
// a multiple of the batch size every barrier forces a partial-batch flush —
// over the network transport that flush crosses a real TCP socket.
func TestJoinUnderBatchedTransport(t *testing.T) {
	type barrierCase struct {
		name string
		mut  func(*JobOptions)
	}
	var cases []barrierCase
	for _, tr := range []string{TransportBatched, TransportNetwork} {
		tr := tr
		cases = append(cases,
			// Barrier every 70 records vs batch size 32: barriers always land
			// mid-batch, so alignment depends on the pre-barrier flush.
			barrierCase{tr + "/partial-batch-at-barrier", func(o *JobOptions) {
				o.Transport = tr
				o.BatchSize = 32
				o.SnapshotInterval = 70
			}},
			// Tiny channels + per-record cost on the join: barriers traverse
			// batch boundaries while the credit gate is saturated.
			barrierCase{tr + "/barrier-under-backpressure", func(o *JobOptions) {
				o.Transport = tr
				o.BatchSize = 8
				o.ChannelCapacity = 8
				o.SnapshotInterval = 50
				o.PerRecordCPU = map[dataflow.OperatorID]float64{"join": 2e-4}
			}},
		)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := dataflow.NewLogicalGraph()
			for _, op := range []dataflow.Operator{
				{ID: "left", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
				{ID: "right", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
				{ID: "join", Kind: dataflow.KindJoin, Parallelism: 2, Selectivity: 1},
				{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
			} {
				if err := g.AddOperator(op); err != nil {
					t.Fatal(err)
				}
			}
			for _, e := range []dataflow.Edge{{From: "left", To: "join"}, {From: "right", To: "join"}, {From: "join", To: "sink"}} {
				if err := g.AddEdge(e); err != nil {
					t.Fatal(err)
				}
			}
			var joined atomic.Int64
			mkSrc := func(*TaskContext) (any, error) {
				return NewSource(func(task, i int64) (Record, bool) {
					return Record{Key: fmt.Sprintf("k%d", i%5), Value: i, Time: i}, true
				}), nil
			}
			factories := map[dataflow.OperatorID]Factory{
				"left":  mkSrc,
				"right": mkSrc,
				"join": func(*TaskContext) (any, error) {
					return NewTumblingWindowJoin(100, func(l, r Record) (Record, bool) {
						if l.Value.(float64) == r.Value.(float64) {
							return Record{Key: l.Key, Value: l.Value, Time: l.Time}, true
						}
						return Record{}, false
					}), nil
				},
				"sink": func(*TaskContext) (any, error) {
					return NewSink(func(Record) { joined.Add(1) }), nil
				},
			}
			opts := JobOptions{
				RecordsPerSource: 300,
				Stateful:         map[dataflow.OperatorID]bool{"join": true},
			}
			tc.mut(&opts)
			job, err := NewJob(g, roundRobinPlan(t, g, 2), bigWorkers(2, 4), factories, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := job.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if joined.Load() != 300 {
				t.Errorf("joined %d pairs, want 300", joined.Load())
			}
			if opts.SnapshotInterval > 0 {
				wantEpochs := opts.RecordsPerSource / opts.SnapshotInterval
				// All 5 tasks snapshot every epoch the sources complete.
				if res.SnapshotsTaken < wantEpochs*5 {
					t.Errorf("SnapshotsTaken = %d, want >= %d", res.SnapshotsTaken, wantEpochs*5)
				}
			}
		})
	}
}

// TestStalledDownstreamCannotDeadlockKill is the abort-path regression
// test: when a worker kill fires while another branch of the job is blocked
// on a full inbox behind a stalled task, the abort must release every
// blocked sender (channel sends and credit waits alike) so recovery can
// proceed. Before the exchange layer honored abort on all blocking paths,
// this scenario hung forever.
func TestStalledDownstreamCannotDeadlockKill(t *testing.T) {
	for _, tr := range TransportNames() {
		t.Run(tr, func(t *testing.T) {
			g := dataflow.NewLogicalGraph()
			for _, op := range []dataflow.Operator{
				{ID: "srcA", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
				{ID: "snkA", Kind: dataflow.KindSink, Parallelism: 1},
				{ID: "srcB", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
				{ID: "snkB", Kind: dataflow.KindSink, Parallelism: 1},
			} {
				if err := g.AddOperator(op); err != nil {
					t.Fatal(err)
				}
			}
			for _, e := range []dataflow.Edge{{From: "srcA", To: "snkA"}, {From: "srcB", To: "snkB"}} {
				if err := g.AddEdge(e); err != nil {
					t.Fatal(err)
				}
			}
			phys, err := dataflow.Expand(g)
			if err != nil {
				t.Fatal(err)
			}
			base := dataflow.NewPlan()
			base.Assign(dataflow.TaskID{Op: "srcA", Index: 0}, 0)
			base.Assign(dataflow.TaskID{Op: "snkA", Index: 0}, 0)
			base.Assign(dataflow.TaskID{Op: "srcB", Index: 0}, 1)
			base.Assign(dataflow.TaskID{Op: "snkB", Index: 0}, 1)
			mkSrc := func(*TaskContext) (any, error) {
				return NewSource(func(task, i int64) (Record, bool) {
					return Record{Value: i, Time: i}, true
				}), nil
			}
			mkSink := func(*TaskContext) (any, error) { return NewSink(nil), nil }
			factories := map[dataflow.OperatorID]Factory{
				"srcA": mkSrc, "snkA": mkSink, "srcB": mkSrc, "snkB": mkSink,
			}
			opts := JobOptions{
				RecordsPerSource: 200,
				ChannelCapacity:  4,
				SnapshotInterval: 25,
				Transport:        tr,
				FaultPlan: FaultPlan{
					// Kill the fast branch's worker at its first barrier while
					// srcB sits blocked behind the stalled snkB.
					KillWorkers: []WorkerKill{{Worker: 0, AtEpoch: 1}},
					StallTasks: []TaskStall{{
						Task:         dataflow.TaskID{Op: "snkB", Index: 0},
						AfterRecords: 2,
						Stall:        time.Second,
					}},
				},
				OnFailure: func(ev FailureEvent) (*dataflow.Plan, error) {
					dead := make(map[int]bool)
					for _, w := range ev.DeadWorkers {
						dead[w] = true
					}
					np := dataflow.NewPlan()
					for _, task := range phys.Tasks() {
						w := base.MustWorker(task)
						if dead[w] {
							w = 2
						}
						np.Assign(task, w)
					}
					return np, nil
				},
			}
			job, err := NewJob(g, base, bigWorkers(3, 4), factories, opts)
			if err != nil {
				t.Fatal(err)
			}
			type outcome struct {
				res *JobResult
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := job.Run(context.Background())
				done <- outcome{res, err}
			}()
			select {
			case out := <-done:
				if out.err != nil {
					t.Fatal(out.err)
				}
				if out.res.Recoveries != 1 {
					t.Errorf("Recoveries = %d, want 1", out.res.Recoveries)
				}
				if out.res.SinkRecords != 400 {
					t.Errorf("SinkRecords = %d, want 400", out.res.SinkRecords)
				}
				if out.res.LostRecords != 0 {
					t.Errorf("LostRecords = %d, want 0", out.res.LostRecords)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("kill deadlocked behind a stalled downstream; abort is not honored on a blocked send path")
			}
		})
	}
}

// TestTransportValidation pins option handling: unknown names are rejected,
// the empty name means unary, and batch sizes clamp to the channel
// capacity so a single batch can always acquire its credits.
func TestTransportValidation(t *testing.T) {
	build := func(opts JobOptions) (*Job, error) {
		g := chainGraph(t, []dataflow.Operator{
			{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
			{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
		})
		factories := map[dataflow.OperatorID]Factory{
			"src": func(*TaskContext) (any, error) {
				return NewSource(func(task, i int64) (Record, bool) { return Record{Value: i}, true }), nil
			},
			"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
		}
		opts.RecordsPerSource = 10
		return NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 2), factories, opts)
	}
	if _, err := build(JobOptions{Transport: "carrier-pigeon"}); err == nil {
		t.Error("unknown transport accepted")
	}
	j, err := build(JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j.transport.Name() != TransportUnary {
		t.Errorf("default transport = %q, want unary", j.transport.Name())
	}
	j, err = build(JobOptions{Transport: TransportBatched, ChannelCapacity: 8, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.opts.BatchSize; got != 8 {
		t.Errorf("BatchSize not clamped to ChannelCapacity: got %d, want 8", got)
	}
	if got := j.opts.BatchLinger; got != DefaultBatchLinger {
		t.Errorf("BatchLinger default = %v, want %v", got, DefaultBatchLinger)
	}
}

// TestCreditGate unit-tests the flow-control primitive: capacity bounds
// acquisition, concurrent waiters all make progress as credits return, and
// abort releases a blocked waiter.
func TestCreditGate(t *testing.T) {
	t.Run("bounds", func(t *testing.T) {
		g := newCreditGate(4)
		abort := make(chan struct{})
		if ok, stalled := g.acquire(4, abort); !ok || stalled {
			t.Fatalf("acquire(4) = (%v, %v), want (true, false)", ok, stalled)
		}
		close(abort)
		if ok, _ := g.acquire(1, abort); ok {
			t.Fatal("acquire past capacity succeeded without a release")
		}
	})
	t.Run("concurrent-waiters-drain", func(t *testing.T) {
		g := newCreditGate(1)
		abort := make(chan struct{})
		const waiters = 8
		var done sync.WaitGroup
		var acquired atomic.Int64
		for i := 0; i < waiters; i++ {
			done.Add(1)
			go func() {
				defer done.Done()
				if ok, _ := g.acquire(1, abort); ok {
					acquired.Add(1)
				}
			}()
		}
		// Return credits one at a time; the chained wakeup must reach every
		// waiter even though the notify channel holds a single token.
		for i := 0; i < waiters; i++ {
			g.release(1)
			time.Sleep(time.Millisecond)
		}
		done.Wait()
		if acquired.Load() != waiters {
			t.Errorf("%d of %d waiters acquired", acquired.Load(), waiters)
		}
	})
	t.Run("abort-unblocks", func(t *testing.T) {
		g := newCreditGate(1)
		g.avail.Store(0)
		abort := make(chan struct{})
		res := make(chan bool, 1)
		go func() {
			ok, _ := g.acquire(1, abort)
			res <- ok
		}()
		close(abort)
		select {
		case ok := <-res:
			if ok {
				t.Error("aborted acquire reported success")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("acquire did not honor abort")
		}
	})
}
