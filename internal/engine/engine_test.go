package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"capsys/internal/dataflow"
)

// buildGraph assembles a logical graph from (id, kind, parallelism,
// selectivity) tuples and linear edges.
func chainGraph(t testing.TB, ops []dataflow.Operator) *dataflow.LogicalGraph {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(ops); i++ {
		if err := g.AddEdge(dataflow.Edge{From: ops[i-1].ID, To: ops[i].ID}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// onePerWorker assigns tasks round-robin across workers.
func roundRobinPlan(t testing.TB, g *dataflow.LogicalGraph, numWorkers int) *dataflow.Plan {
	t.Helper()
	phys, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	pl := dataflow.NewPlan()
	for i, task := range phys.Tasks() {
		pl.Assign(task, i%numWorkers)
	}
	return pl
}

func bigWorkers(n, slots int) ClusterSpec {
	ws := make([]WorkerSpec, n)
	for i := range ws {
		ws[i] = WorkerSpec{ID: fmt.Sprintf("w%d", i), Slots: slots, Cores: 1e6, IOBps: 1e12, NetBps: 1e12}
	}
	return ClusterSpec{Workers: ws}
}

// countAgg accumulates a record count as a JSON integer.
func countAgg(acc []byte, _ Record) []byte {
	n := 0
	if acc != nil {
		_ = json.Unmarshal(acc, &n)
	}
	n++
	out, _ := json.Marshal(n)
	return out
}

func countResult(key string, start, end int64, acc []byte) Record {
	n := 0
	_ = json.Unmarshal(acc, &n)
	return Record{Key: key, Value: n, Time: end}
}

func TestSimplePipeline(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "double", Kind: dataflow.KindMap, Parallelism: 3, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	var sunk atomic.Int64
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Key: fmt.Sprintf("k%d", i%7), Value: i, Time: i}, true
			}), nil
		},
		"double": func(*TaskContext) (any, error) {
			return NewMap(func(r Record) Record {
				r.Value = r.Value.(int64) * 2
				return r
			}), nil
		},
		"sink": func(*TaskContext) (any, error) {
			return NewSink(func(Record) { sunk.Add(1) }), nil
		},
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 2), bigWorkers(2, 4), factories, JobOptions{RecordsPerSource: 500})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceRecords != 1000 {
		t.Errorf("SourceRecords = %d, want 1000", res.SourceRecords)
	}
	if sunk.Load() != 1000 || res.SinkRecords != 1000 {
		t.Errorf("sink saw %d / %d records, want 1000", sunk.Load(), res.SinkRecords)
	}
	// Per-task stats add up.
	var mapIn int64
	for id, st := range res.Tasks {
		if id.Op == "double" {
			mapIn += st.RecordsIn
		}
		if st.UsefulFraction < 0 || st.UsefulFraction > 1 {
			t.Errorf("task %v useful fraction %v", id, st.UsefulFraction)
		}
	}
	if mapIn != 1000 {
		t.Errorf("map consumed %d records, want 1000", mapIn)
	}
	if res.OperatorInRate("double") <= 0 {
		t.Error("OperatorInRate(double) not positive")
	}
}

func TestFilterAndFlatMap(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "odd", Kind: dataflow.KindFilter, Parallelism: 2, Selectivity: 0.5},
		{ID: "dup", Kind: dataflow.KindFlatMap, Parallelism: 2, Selectivity: 2},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	var sunk atomic.Int64
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Key: fmt.Sprint(i), Value: i, Time: i}, true
			}), nil
		},
		"odd": func(*TaskContext) (any, error) {
			return NewFilter(func(r Record) bool { return r.Value.(int64)%2 == 1 }), nil
		},
		"dup": func(*TaskContext) (any, error) {
			return NewFlatMap(func(r Record, emit Emit) {
				emit(r)
				emit(r)
			}), nil
		},
		"sink": func(*TaskContext) (any, error) {
			return NewSink(func(Record) { sunk.Add(1) }), nil
		},
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 2), bigWorkers(2, 4), factories, JobOptions{RecordsPerSource: 400})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 400 records -> 200 odd -> 400 duplicated.
	if sunk.Load() != 400 {
		t.Errorf("sink saw %d records, want 400", sunk.Load())
	}
}

func TestTumblingWindowCount(t *testing.T) {
	// One key, timestamps 0..999, tumbling window of 100ms: 10 windows of
	// 100 records each.
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 1, Selectivity: 0.01},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	var results []int
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Key: "k", Value: i, Time: i}, true
			}), nil
		},
		"win": func(*TaskContext) (any, error) {
			return NewSlidingWindow(100, 100, countAgg, countResult), nil
		},
		"sink": func(*TaskContext) (any, error) {
			return NewSink(func(r Record) { results = append(results, r.Value.(int)) }), nil
		},
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 3), factories, JobOptions{
		RecordsPerSource: 1000,
		Stateful:         map[dataflow.OperatorID]bool{"win": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("got %d windows, want 10 (%v)", len(results), results)
	}
	for i, n := range results {
		if n != 100 {
			t.Errorf("window %d count = %d, want 100", i, n)
		}
	}
}

func TestSlidingWindowOverlap(t *testing.T) {
	// Size 100, slide 50: records land in two windows each (except the
	// first 50 timestamps which only fit the [0,100) window... with starts
	// at -50 excluded since start < 0 is skipped).
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 1, Selectivity: 0.02},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	total := 0
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Key: "k", Value: i, Time: i}, true
			}), nil
		},
		"win": func(*TaskContext) (any, error) {
			return NewSlidingWindow(100, 50, countAgg, countResult), nil
		},
		"sink": func(*TaskContext) (any, error) {
			return NewSink(func(r Record) { total += r.Value.(int) }), nil
		},
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 3), factories, JobOptions{
		RecordsPerSource: 500,
		Stateful:         map[dataflow.OperatorID]bool{"win": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Every record falls in 2 windows except timestamps 0..49 (1 window).
	want := 500*2 - 50
	if total != want {
		t.Errorf("sliding window total count = %d, want %d", total, want)
	}
}

func TestTumblingWindowJoin(t *testing.T) {
	// Left source emits (k, i) at t=i; right emits the same; window 100.
	// Every (key, window) pair holds matching left/right records.
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "left", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "right", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "join", Kind: dataflow.KindJoin, Parallelism: 2, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	} {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{{From: "left", To: "join"}, {From: "right", To: "join"}, {From: "join", To: "sink"}} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	var joined atomic.Int64
	mkSrc := func(*TaskContext) (any, error) {
		return NewSource(func(task, i int64) (Record, bool) {
			return Record{Key: fmt.Sprintf("k%d", i%5), Value: i, Time: i}, true
		}), nil
	}
	factories := map[dataflow.OperatorID]Factory{
		"left":  mkSrc,
		"right": mkSrc,
		"join": func(*TaskContext) (any, error) {
			return NewTumblingWindowJoin(100, func(l, r Record) (Record, bool) {
				if l.Value.(float64) == r.Value.(float64) { // JSON round-trip makes float64
					return Record{Key: l.Key, Value: l.Value, Time: l.Time}, true
				}
				return Record{}, false
			}), nil
		},
		"sink": func(*TaskContext) (any, error) {
			return NewSink(func(Record) { joined.Add(1) }), nil
		},
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 2), bigWorkers(2, 4), factories, JobOptions{
		RecordsPerSource: 300,
		Stateful:         map[dataflow.OperatorID]bool{"join": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Every left record joins exactly its equal right record.
	if joined.Load() != 300 {
		t.Errorf("joined %d pairs, want 300", joined.Load())
	}
}

func TestSessionWindow(t *testing.T) {
	// Bursts of 10 records (1ms apart) separated by 100ms gaps; session gap
	// 50ms -> one session per burst.
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "sess", Kind: dataflow.KindWindow, Parallelism: 1, Selectivity: 0.1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	var sessions []int
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				burst := i / 10
				within := i % 10
				return Record{Key: "user", Value: i, Time: burst*200 + within}, true
			}), nil
		},
		"sess": func(*TaskContext) (any, error) {
			return NewSessionWindow(50, countAgg, countResult), nil
		},
		"sink": func(*TaskContext) (any, error) {
			return NewSink(func(r Record) { sessions = append(sessions, r.Value.(int)) }), nil
		},
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 3), factories, JobOptions{
		RecordsPerSource: 100,
		Stateful:         map[dataflow.OperatorID]bool{"sess": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 10 {
		t.Fatalf("got %d sessions, want 10 (%v)", len(sessions), sessions)
	}
	for i, n := range sessions {
		if n != 10 {
			t.Errorf("session %d count = %d, want 10", i, n)
		}
	}
}

// The paper's core effect, live: co-locating two CPU-heavy tasks on one
// worker is slower than spreading them over two workers.
func TestColocationContention(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "heavy", Kind: dataflow.KindInference, Parallelism: 2, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2},
	})
	phys, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Key: fmt.Sprint(i), Value: i, Time: i}, true
			}), nil
		},
		"heavy": func(*TaskContext) (any, error) {
			return NewMap(func(r Record) Record { return r }), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	spec := ClusterSpec{Workers: []WorkerSpec{
		{ID: "w0", Slots: 6, Cores: 1, IOBps: 1e12, NetBps: 1e12},
		{ID: "w1", Slots: 6, Cores: 1, IOBps: 1e12, NetBps: 1e12},
	}}
	opts := JobOptions{
		RecordsPerSource: 150,
		PerRecordCPU:     map[dataflow.OperatorID]float64{"heavy": 1e-3},
	}
	run := func(heavyWorkers [2]int) time.Duration {
		pl := dataflow.NewPlan()
		for _, task := range phys.TasksOf("heavy") {
			pl.Assign(task, heavyWorkers[task.Index])
		}
		for _, op := range []dataflow.OperatorID{"src", "sink"} {
			for i, task := range phys.TasksOf(op) {
				pl.Assign(task, i%2)
			}
		}
		job, err := NewJob(g, pl, spec, factories, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	spread := run([2]int{0, 1})
	packed := run([2]int{0, 0})
	// 300 records x 1ms on a 1-core meter: packed needs ~0.3s serial,
	// spread ~0.15s. Allow generous slack for scheduling noise.
	if packed < spread*5/4 {
		t.Errorf("packed %v not sufficiently slower than spread %v", packed, spread)
	}
}

func TestBackpressureThrottlesSource(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "slow", Kind: dataflow.KindMap, Parallelism: 1, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i, Time: i}, true
			}), nil
		},
		"slow": func(*TaskContext) (any, error) {
			return NewMap(func(r Record) Record { return r }), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	spec := ClusterSpec{Workers: []WorkerSpec{{ID: "w0", Slots: 3, Cores: 1, IOBps: 1e12, NetBps: 1e12}}}
	job, err := NewJob(g, roundRobinPlan(t, g, 1), spec, factories, JobOptions{
		RecordsPerSource: 200,
		ChannelCapacity:  4,
		PerRecordCPU:     map[dataflow.OperatorID]float64{"slow": 1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline cannot finish faster than the slow operator: 200 x 1ms,
	// minus the meter's 5% burst allowance (~50 records).
	if res.Elapsed < 140*time.Millisecond {
		t.Errorf("run finished in %v; backpressure not enforced", res.Elapsed)
	}
	src := res.Tasks[dataflow.TaskID{Op: "src", Index: 0}]
	if src.BackpressureT == 0 {
		t.Error("source reports zero backpressure time despite slow consumer")
	}
}

func TestSourceRateLimiting(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i}, true
			}), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 2), factories, JobOptions{
		RecordsPerSource: 100,
		SourceRate:       map[dataflow.OperatorID]float64{"src": 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 100 records at 1000 rec/s takes ~100ms.
	if res.Elapsed < 90*time.Millisecond {
		t.Errorf("rate-limited run finished in %v, want >= ~100ms", res.Elapsed)
	}
}

func TestContextCancellationStopsSources(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i}, true
			}), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 2), factories, JobOptions{
		RecordsPerSource: 1 << 40, // effectively infinite
		SourceRate:       map[dataflow.OperatorID]float64{"src": 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan *JobResult, 1)
	go func() {
		res, err := job.Run(ctx)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case res := <-done:
		if res.SourceRecords == 0 {
			t.Error("no records before cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job did not stop after context cancellation")
	}
}

func TestNewJobValidation(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) { return Record{}, false }), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	plan := roundRobinPlan(t, g, 1)
	good := bigWorkers(1, 2)

	if _, err := NewJob(g, plan, good, factories, JobOptions{}); err == nil {
		t.Error("zero RecordsPerSource accepted")
	}
	if _, err := NewJob(g, plan, ClusterSpec{}, factories, JobOptions{RecordsPerSource: 1}); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := NewJob(g, dataflow.NewPlan(), good, factories, JobOptions{RecordsPerSource: 1}); err == nil {
		t.Error("unassigned tasks accepted")
	}
	if _, err := NewJob(g, plan, bigWorkers(1, 1), factories, JobOptions{RecordsPerSource: 1}); err == nil {
		t.Error("slot overflow accepted")
	}
	missing := map[dataflow.OperatorID]Factory{"src": factories["src"]}
	if _, err := NewJob(g, plan, good, missing, JobOptions{RecordsPerSource: 1}); err == nil {
		t.Error("missing factory accepted")
	}
	badPlan := dataflow.NewPlan()
	badPlan.Assign(dataflow.TaskID{Op: "src", Index: 0}, 5)
	badPlan.Assign(dataflow.TaskID{Op: "sink", Index: 0}, 0)
	if _, err := NewJob(g, badPlan, good, factories, JobOptions{RecordsPerSource: 1}); err == nil {
		t.Error("out-of-range worker accepted")
	}
}

func TestWindowRequiresState(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 1, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) { return Record{}, false }), nil
		},
		"win": func(*TaskContext) (any, error) {
			return NewSlidingWindow(100, 100, countAgg, countResult), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	// Stateful not set for "win": job construction must fail at Open.
	_, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 3), factories, JobOptions{RecordsPerSource: 1})
	if err != nil {
		t.Fatal(err)
	}
	job, _ := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 3), factories, JobOptions{RecordsPerSource: 1})
	if _, err := job.Run(context.Background()); err == nil {
		t.Error("window without state ran successfully")
	}
}

func TestMeterConsumeBlocks(t *testing.T) {
	m := NewMeter(1000, 10) // 1000 tokens/s
	start := time.Now()
	m.Consume(100) // needs ~90ms beyond the 10-token burst
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Errorf("Consume returned after %v, want >= ~90ms", el)
	}
	if m.Blocked() == 0 {
		t.Error("Blocked not recorded")
	}
	if m.Rate() != 1000 {
		t.Errorf("Rate = %v", m.Rate())
	}
	// Zero and negative are no-ops, and nil meters are safe.
	m.Consume(0)
	m.Consume(-5)
	var nilM *Meter
	nilM.Consume(10)
}

func TestJobResultMetricsRegistry(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i, Time: i}, true
			}), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 2), factories, JobOptions{RecordsPerSource: 50})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Metrics.Snapshot()
	if snap["src[0].records_out"] != 50 {
		t.Errorf("src records_out = %v, want 50", snap["src[0].records_out"])
	}
	if snap["sink[0].records_in"] != 50 {
		t.Errorf("sink records_in = %v, want 50", snap["sink[0].records_in"])
	}
	if _, ok := snap["sink[0].useful_fraction"]; !ok {
		t.Error("useful_fraction missing from registry")
	}
}

// An operator error mid-stream must terminate the job with the error, not
// deadlock it: the failed task keeps draining its inbox so upstream senders
// never block forever.
func TestOperatorErrorTerminatesJob(t *testing.T) {
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "boom", Kind: dataflow.KindMap, Parallelism: 1, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	n := 0
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i, Time: i}, true
			}), nil
		},
		"boom": func(*TaskContext) (any, error) {
			return NewProcess(func(ctx *TaskContext, rec Record, emit Emit) error {
				n++
				if n > 3 {
					return fmt.Errorf("synthetic failure")
				}
				emit(rec)
				return nil
			}), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	// Tiny channel capacity so upstream blocks quickly if the failed task
	// stops draining.
	job, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 4), factories, JobOptions{
		RecordsPerSource: 10_000,
		ChannelCapacity:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := job.Run(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("operator error swallowed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job deadlocked after operator error")
	}
}
