// Package engine is a miniature stateful stream processing engine: the
// executable stand-in for Apache Flink in this reproduction.
//
// The engine implements the slot-oriented resource model the CAPSys paper
// targets (§2.1): a job's physical graph is deployed onto workers according
// to a placement plan; each task runs as its own goroutine (one slot = one
// processing thread) connected to its peers by bounded channels, so
// backpressure is real — a slow consumer blocks its producers all the way
// back to the sources.
//
// Each worker owns three shared token-bucket meters — CPU, disk I/O and
// network — and every record processed, state byte accessed, and byte sent
// to a remote worker draws from the owning worker's meters. Co-located
// resource-intensive tasks therefore genuinely contend, reproducing the
// contention effects the paper measures (§3.3) inside a single process.
package engine

import (
	"sync"
	"time"
)

// Meter is a token-bucket rate limiter representing one shared worker
// resource. Consume deducts immediately and sleeps off any deficit, so
// concurrent consumers share the capacity proportionally to their demand.
type Meter struct {
	mu       sync.Mutex
	rate     float64       // tokens per second; immutable after NewMeter
	tokens   float64       // guarded by mu; may go negative (debt)
	last     time.Time     // guarded by mu
	burst    float64       // immutable after NewMeter
	blocked  time.Duration // guarded by mu; cumulative time spent sleeping
	consumed float64       // guarded by mu; cumulative tokens taken
	created  time.Time     // immutable after NewMeter
}

// NewMeter creates a meter refilling at rate tokens/second with the given
// burst allowance (<= 0 means 50ms worth of tokens).
func NewMeter(rate, burst float64) *Meter {
	if burst <= 0 {
		burst = rate * 0.05
	}
	now := time.Now()
	return &Meter{rate: rate, tokens: burst, last: now, burst: burst, created: now}
}

// Consume takes n tokens, sleeping as needed to respect the refill rate.
// n <= 0 is a no-op.
func (m *Meter) Consume(n float64) {
	if n <= 0 || m == nil {
		return
	}
	m.mu.Lock()
	now := time.Now()
	m.tokens += now.Sub(m.last).Seconds() * m.rate
	if m.tokens > m.burst {
		m.tokens = m.burst
	}
	m.last = now
	m.tokens -= n
	m.consumed += n
	var wait time.Duration
	if m.tokens < 0 {
		wait = time.Duration(-m.tokens / m.rate * float64(time.Second))
		m.blocked += wait
	}
	m.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// Blocked reports the cumulative time consumers spent waiting on this meter.
func (m *Meter) Blocked() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blocked
}

// Rate returns the meter's refill rate.
func (m *Meter) Rate() float64 { return m.rate }

// Consumed returns the cumulative tokens taken from this meter.
func (m *Meter) Consumed() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.consumed
}

// Utilization reports the token-bucket saturation: the fraction of the
// meter's cumulative capacity (rate x lifetime) that consumers have actually
// drawn. A value near 1 means the resource is the bottleneck — consumers are
// draining tokens as fast as they refill (and sleeping off the deficit).
func (m *Meter) Utilization() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	el := time.Since(m.created).Seconds()
	if el <= 0 || m.rate <= 0 {
		return 0
	}
	u := m.consumed / (m.rate * el)
	if u > 1 {
		u = 1
	}
	return u
}

// WorkerResources is one worker's shared resource domain.
type WorkerResources struct {
	// ID is the worker's identifier.
	ID string
	// CPU is denominated in core-seconds per second.
	CPU *Meter
	// IO is denominated in state-access bytes per second.
	IO *Meter
	// Net is denominated in cross-worker bytes per second.
	Net *Meter
}

// NewWorkerResources creates the meters for one worker.
func NewWorkerResources(id string, cores, ioBps, netBps float64) *WorkerResources {
	return &WorkerResources{
		ID:  id,
		CPU: NewMeter(cores, cores*0.05),
		IO:  NewMeter(ioBps, ioBps*0.05),
		Net: NewMeter(netBps, netBps*0.05),
	}
}
