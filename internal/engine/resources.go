// Package engine is a miniature stateful stream processing engine: the
// executable stand-in for Apache Flink in this reproduction.
//
// The engine implements the slot-oriented resource model the CAPSys paper
// targets (§2.1): a job's physical graph is deployed onto workers according
// to a placement plan; each task runs as its own goroutine (one slot = one
// processing thread) connected to its peers by bounded channels, so
// backpressure is real — a slow consumer blocks its producers all the way
// back to the sources.
//
// Each worker owns three shared token-bucket meters — CPU, disk I/O and
// network — and every record processed, state byte accessed, and byte sent
// to a remote worker draws from the owning worker's meters. Co-located
// resource-intensive tasks therefore genuinely contend, reproducing the
// contention effects the paper measures (§3.3) inside a single process.
package engine

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// tokenScale converts float tokens to the integer nanotokens the lock-free
// bucket balance is kept in. Costs below one nanotoken round to zero.
const tokenScale = 1e9

// maxNanoTokens clamps scaled token quantities so balance arithmetic (at
// most one burst plus one refill plus one draw) can never overflow int64.
const maxNanoTokens = int64(1e18)

func nanoTokens(n float64) int64 {
	v := n * tokenScale
	if v >= float64(maxNanoTokens) {
		return maxNanoTokens
	}
	return int64(v)
}

// Meter is a token-bucket rate limiter representing one shared worker
// resource. Drawing deducts immediately and sleeps off any deficit, so
// concurrent consumers share the capacity proportionally to their demand.
//
// The meter separates pacing from accounting so the record hot path stays
// contention-free:
//
//   - Pacing: the bucket balance is a lock-free atomic nanotoken counter.
//     While the balance stays positive a draw is a single atomic add — no
//     mutex, no clock read. Only a draw that lands the balance in deficit
//     takes the mutex to refill from the wall clock and sleep the debt off.
//   - Accounting: each task owns a MeterShard — a padded, single-writer
//     counter published with one atomic store per strike — and snapshot
//     readers (Consumed, Utilization, the live saturation gauges) merge the
//     shards. Shards also coalesce their struck tokens locally so a chain or
//     batch pays one bucket draw per pass instead of one per record.
//
// Legacy Consume calls (tests, external callers) account through a shared
// CAS spill cell and draw immediately; they remain exact, just not
// contention-free.
type Meter struct {
	rate  float64 // tokens per second; immutable after NewMeter
	burst float64 // immutable after NewMeter

	// balance is the bucket level in nanotokens; draws go negative (debt).
	balance atomic.Int64
	// spillBits accumulates tokens consumed outside any shard (CAS float).
	spillBits atomic.Uint64
	// shards is the copy-on-write registry of per-task accounting shards.
	shards atomic.Pointer[[]*MeterShard]

	mu      sync.Mutex
	last    time.Time     // guarded by mu; last refill instant
	blocked time.Duration // guarded by mu; cumulative time spent sleeping
	created time.Time     // immutable after NewMeter
}

// NewMeter creates a meter refilling at rate tokens/second with the given
// burst allowance (<= 0 means 5% of a second's worth of tokens).
func NewMeter(rate, burst float64) *Meter {
	if burst <= 0 {
		burst = rate * 0.05
	}
	now := time.Now()
	m := &Meter{rate: rate, burst: burst, last: now, created: now}
	m.balance.Store(nanoTokens(burst))
	return m
}

// Consume takes n tokens, sleeping as needed to respect the refill rate.
// n <= 0 is a no-op. Accounting lands in the shared spill cell; hot paths
// should strike a MeterShard instead.
func (m *Meter) Consume(n float64) {
	if m == nil || n <= 0 {
		return
	}
	m.spillAdd(n)
	m.draw(n)
}

// draw deducts n tokens from the bucket, pacing the caller when the bucket
// is in deficit. It performs no accounting.
func (m *Meter) draw(n float64) {
	if m == nil || n <= 0 {
		return
	}
	need := nanoTokens(n)
	if need == 0 {
		return
	}
	if m.balance.Add(-need) >= 0 {
		return
	}
	m.settleDebt()
}

// settleDebt refills the bucket from the wall clock and, if a deficit
// remains, sleeps it off — the contention effect co-located tasks feel when
// their aggregate demand exceeds the resource.
func (m *Meter) settleDebt() {
	m.mu.Lock()
	now := time.Now()
	elapsed := now.Sub(m.last).Seconds()
	m.last = now
	refill := nanoTokens(elapsed * m.rate)
	if cur := m.balance.Load(); cur+refill > nanoTokens(m.burst) {
		refill = nanoTokens(m.burst) - cur
	}
	if refill > 0 {
		m.balance.Add(refill)
	}
	var wait time.Duration
	if deficit := -m.balance.Load(); deficit > 0 && m.rate > 0 {
		wait = time.Duration(float64(deficit) / tokenScale / m.rate * float64(time.Second))
		m.blocked += wait
	}
	m.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

func (m *Meter) spillAdd(n float64) {
	for {
		old := m.spillBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + n)
		if m.spillBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Blocked reports the cumulative time consumers spent waiting on this meter.
func (m *Meter) Blocked() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blocked
}

// Rate returns the meter's refill rate.
func (m *Meter) Rate() float64 { return m.rate }

// Consumed returns the cumulative tokens taken from this meter: the spill
// cell plus every shard's published total.
func (m *Meter) Consumed() float64 {
	if m == nil {
		return 0
	}
	total := math.Float64frombits(m.spillBits.Load())
	if list := m.shards.Load(); list != nil {
		for _, sh := range *list {
			total += math.Float64frombits(sh.bits.Load())
		}
	}
	return total
}

// Utilization reports the token-bucket saturation: the fraction of the
// meter's cumulative capacity (rate x lifetime) that consumers have actually
// drawn. A value near 1 means the resource is the bottleneck — consumers are
// draining tokens as fast as they refill (and sleeping off the deficit).
func (m *Meter) Utilization() float64 {
	el := time.Since(m.created).Seconds()
	if el <= 0 || m.rate <= 0 {
		return 0
	}
	u := m.Consumed() / (m.rate * el)
	if u > 1 {
		u = 1
	}
	return u
}

// MeterShard is one task's private accounting lane on a shared meter. The
// owning goroutine is the only writer: Strike accumulates locally and
// publishes the running total with a single atomic store, so concurrent
// snapshot readers never contend with the hot path and no update can be
// lost. Struck tokens also pool locally until Draw pays them into the
// token bucket in one coalesced deduction — the "one draw per batch or
// fused-chain pass" discipline. The trailing pad keeps two shards from
// sharing a cache line, so one task's stores never invalidate another's.
type MeterShard struct {
	m *Meter
	// bits publishes the shard's cumulative struck tokens (float64 bits).
	bits atomic.Uint64
	// total/pending are owner-goroutine-only.
	total   float64
	pending float64
	_       [96]byte // pad past a cache line
}

// NewShard registers a new accounting shard on the meter. Shard creation is
// a setup-time operation (one per task per attempt); the copy-on-write swap
// keeps concurrent snapshot readers lock-free.
func (m *Meter) NewShard() *MeterShard {
	if m == nil {
		return nil
	}
	sh := &MeterShard{m: m}
	m.mu.Lock()
	var list []*MeterShard
	if old := m.shards.Load(); old != nil {
		list = append(list, *old...)
	}
	list = append(list, sh)
	m.shards.Store(&list)
	m.mu.Unlock()
	return sh
}

// Strike accounts n tokens against the shard without touching the bucket.
// Owner goroutine only.
func (s *MeterShard) Strike(n float64) {
	if s == nil || n <= 0 {
		return
	}
	s.total += n
	s.bits.Store(math.Float64bits(s.total))
	s.pending += n
}

// Draw pays every token struck since the last Draw into the meter's bucket
// as one coalesced deduction, sleeping off any deficit. Owner goroutine
// only.
func (s *MeterShard) Draw() {
	if s == nil || s.pending <= 0 {
		return
	}
	n := s.pending
	s.pending = 0
	s.m.draw(n)
}

// WorkerResources is one worker's shared resource domain.
type WorkerResources struct {
	// ID is the worker's identifier.
	ID string
	// CPU is denominated in core-seconds per second.
	CPU *Meter
	// IO is denominated in state-access bytes per second.
	IO *Meter
	// Net is denominated in cross-worker bytes per second.
	Net *Meter
}

// NewWorkerResources creates the meters for one worker.
func NewWorkerResources(id string, cores, ioBps, netBps float64) *WorkerResources {
	return &WorkerResources{
		ID:  id,
		CPU: NewMeter(cores, cores*0.05),
		IO:  NewMeter(ioBps, ioBps*0.05),
		Net: NewMeter(netBps, netBps*0.05),
	}
}
