package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"capsys/internal/dataflow"
)

// wireJob builds a two-worker src->sink job for the distributed worker API:
// src on worker 0, sink on worker 1, so every record crosses a real socket.
// Each call returns a fresh Job (each worker process builds its own).
func wireJob(t *testing.T, sink SinkFunc, opts JobOptions) *Job {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "snk", Kind: dataflow.KindSink, Parallelism: 1},
	} {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(dataflow.Edge{From: "src", To: "snk"}); err != nil {
		t.Fatal(err)
	}
	plan := dataflow.NewPlan()
	plan.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	plan.Assign(dataflow.TaskID{Op: "snk", Index: 0}, 1)
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i, Time: i}, true
			}), nil
		},
		"snk": func(*TaskContext) (any, error) { return NewSink(sink), nil },
	}
	opts.Transport = TransportNetwork
	job, err := NewJob(g, plan, bigWorkers(2, 2), factories, opts)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// startWirePair prepares and starts both workers' attempts and exchanges
// their data addresses, exactly as the coordinator's deploy/start phases
// would.
func startWirePair(t *testing.T, ctx context.Context, j0, j1 *Job) (*WorkerRun, *WorkerRun) {
	t.Helper()
	r0, err := j0.PrepareWorkerAttempt(WorkerNetConfig{Local: 0})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.PrepareWorkerAttempt(WorkerNetConfig{Local: 1})
	if err != nil {
		t.Fatal(err)
	}
	r0.Start(ctx, map[int]string{1: r1.DataAddr()})
	r1.Start(ctx, map[int]string{0: r0.DataAddr()})
	return r0, r1
}

// TestWorkerRunWireClean drives a two-process-shaped run (separate Job
// instances, TCP between them) to completion and checks the wire counters
// and per-worker reports line up.
func TestWorkerRunWireClean(t *testing.T) {
	const records = 300
	opts := JobOptions{RecordsPerSource: records, ChannelCapacity: 16, BatchSize: 8}
	j0 := wireJob(t, nil, opts)
	j1 := wireJob(t, nil, opts)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	r0, r1 := startWirePair(t, ctx, j0, j1)
	for _, r := range []*WorkerRun{r0, r1} {
		select {
		case <-r.Done():
		case <-ctx.Done():
			t.Fatal("worker run did not finish")
		}
	}
	rep0, err := r0.Report()
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := r1.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !rep0.Completed || !rep1.Completed {
		t.Fatalf("clean run not completed: w0=%v w1=%v", rep0.Completed, rep1.Completed)
	}
	// Worker 0 hosts only src; worker 1 only snk. Every record crossed the
	// wire exactly once.
	res := AssembleDistResult([]*WorkerReport{rep0, rep1}, DistAgg{Elapsed: time.Second})
	if res.SourceRecords != records || res.SinkRecords != records {
		t.Fatalf("source/sink = %d/%d, want %d/%d", res.SourceRecords, res.SinkRecords, records, records)
	}
	if rep0.NetDataBatches == 0 {
		t.Error("sender shipped no data batches over the wire")
	}
	if rep0.NetCreditFrames == 0 && rep1.NetCreditFrames == 0 {
		t.Error("no credit frames: wire flow control never engaged")
	}
	snap := res.Metrics.Snapshot()
	if snap["net.frames_sent"] <= 0 || snap["net.frames_received"] <= 0 {
		t.Errorf("net frame counters not exported: sent=%v received=%v",
			snap["net.frames_sent"], snap["net.frames_received"])
	}
	// A batch never exceeds the configured size, and the credit protocol
	// never puts more than ChannelCapacity records in flight, so per-batch
	// record counts are bounded by min(BatchSize, ChannelCapacity).
	if rep0.Batches > 0 {
		mean := float64(rep0.BatchRecords) / float64(rep0.Batches)
		if mean > float64(opts.BatchSize) {
			t.Errorf("mean batch size %.1f exceeds configured %d", mean, opts.BatchSize)
		}
	}
}

// TestWorkerRunAbortUnblocksWireSend is the socket-level abort regression
// test: the sink worker stalls mid-stream (never draining its inbox), the
// source worker fills the receiver's credit window and blocks in
// flushTarget waiting for a credit grant that will never arrive — then
// Abort on both sides must release the blocked sender promptly. Before
// credit waits honored the abort channel this hung forever.
func TestWorkerRunAbortUnblocksWireSend(t *testing.T) {
	stall := make(chan struct{})
	var sunk int
	sink := func(Record) {
		sunk++
		if sunk == 3 {
			<-stall // park the sink task; its inbox stops draining
		}
	}
	// Tiny capacity so the sender exhausts the window fast and provably
	// blocks on the wire credit path, not in a channel.
	opts := JobOptions{RecordsPerSource: 10_000, ChannelCapacity: 4, BatchSize: 2}
	j0 := wireJob(t, nil, opts)
	j1 := wireJob(t, sink, opts)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	r0, r1 := startWirePair(t, ctx, j0, j1)

	// Let the source run into the stalled window. It can make no progress
	// past capacity+buffered, so any settle time is enough; correctness
	// does not depend on the exact instant.
	time.Sleep(100 * time.Millisecond)
	aborted := time.Now()
	r0.Abort()
	r1.Abort()
	// The sender worker holds no stalled user code — only the wire credit
	// wait. It must unblock from Abort alone, with the sink still parked.
	select {
	case <-r0.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not unblock the sender stuck in a wire credit wait")
	}
	if waited := time.Since(aborted); waited > 5*time.Second {
		t.Errorf("abort took %v to release the blocked sender", waited)
	}
	// The sink worker can only exit once its SinkFunc returns: abort cannot
	// (and must not) preempt user code.
	close(stall)
	select {
	case <-r1.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("sink worker did not stop after abort + sink release")
	}
	rep0, err := r0.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Completed {
		t.Error("aborted sender reported Completed")
	}
	// The sender must have stopped far short of the full stream: blocked,
	// not spinning.
	var srcOut int64
	for _, ts := range rep0.Tasks {
		srcOut += ts.RecordsOut
	}
	if srcOut > 1000 {
		t.Errorf("source emitted %d records against a stalled sink (flow control leak)", srcOut)
	}
}

// TestWorkerRunDiscard covers the abort-before-start path the coordinator
// uses when a peer dies between deploy and start.
func TestWorkerRunDiscard(t *testing.T) {
	j := wireJob(t, nil, JobOptions{RecordsPerSource: 100})
	r, err := j.PrepareWorkerAttempt(WorkerNetConfig{Local: 0, AttemptNo: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Discard()
	if rep == nil || rep.Attempt != 3 || rep.Completed {
		t.Fatalf("discard report = %+v, want attempt 3, not completed", rep)
	}
	select {
	case <-r.Done():
	default:
		t.Error("Done not closed after Discard")
	}
}

// fanInWireJob builds a job where TWO source tasks on worker 0 feed one
// sink task on worker 1: both senders share the receiver's single credit
// gate through one grantor, so their concurrent credit requests can sum
// past the gate's capacity.
func fanInWireJob(t *testing.T, opts JobOptions) *Job {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "snk", Kind: dataflow.KindSink, Parallelism: 1},
	} {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(dataflow.Edge{From: "src", To: "snk"}); err != nil {
		t.Fatal(err)
	}
	plan := dataflow.NewPlan()
	plan.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	plan.Assign(dataflow.TaskID{Op: "src", Index: 1}, 0)
	plan.Assign(dataflow.TaskID{Op: "snk", Index: 0}, 1)
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i, Time: i}, true
			}), nil
		},
		"snk": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	opts.Transport = TransportNetwork
	job, err := NewJob(g, plan, bigWorkers(2, 2), factories, opts)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// TestWireCreditFanInExceedsCapacity is the credit-coalescing deadlock
// regression: two co-located senders each request BatchSize credits for the
// same receiving task, with ChannelCapacity == BatchSize, so the summed
// concurrent demand (2×BatchSize) exceeds the gate's capacity. A grantor
// that merges pending requests into one acquire asks for more than the gate
// can ever hold and blocks forever — senders hang on the mirror gate and
// the cluster deadlocks with heartbeats still flowing. FIFO per-request
// grants keep every acquire individually satisfiable.
func TestWireCreditFanInExceedsCapacity(t *testing.T) {
	const perSource = 1500
	opts := JobOptions{RecordsPerSource: perSource, ChannelCapacity: 4, BatchSize: 4}
	j0 := fanInWireJob(t, opts)
	j1 := fanInWireJob(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	r0, r1 := startWirePair(t, ctx, j0, j1)
	for _, r := range []*WorkerRun{r0, r1} {
		select {
		case <-r.Done():
		case <-ctx.Done():
			t.Fatal("fan-in run deadlocked: coalesced credit requests exceeded gate capacity")
		}
	}
	rep0, err := r0.Report()
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := r1.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !rep0.Completed || !rep1.Completed {
		t.Fatalf("fan-in run not completed: w0=%v w1=%v", rep0.Completed, rep1.Completed)
	}
	res := AssembleDistResult([]*WorkerReport{rep0, rep1}, DistAgg{Elapsed: time.Second})
	if want := int64(2 * perSource); res.SinkRecords != want || res.SourceRecords != want {
		t.Errorf("source/sink = %d/%d, want %d/%d", res.SourceRecords, res.SinkRecords, want, want)
	}
	if res.LostRecords != 0 {
		t.Errorf("lost %d records", res.LostRecords)
	}
}

// TestWorkerRunDataPlaneSendFailureEscalates covers the data-plane-only
// failure path: every send to the peer fails (its address is unreachable),
// no coordinator ever aborts the attempt, and the sender must escalate to a
// fatal attempt error after dataPlaneEscalation instead of blocking forever
// while heartbeats would keep flowing.
func TestWorkerRunDataPlaneSendFailureEscalates(t *testing.T) {
	old := dataPlaneEscalation
	dataPlaneEscalation = 300 * time.Millisecond
	defer func() { dataPlaneEscalation = old }()

	var mu sync.Mutex
	var peersDown []int
	j0 := wireJob(t, nil, JobOptions{RecordsPerSource: 100, ChannelCapacity: 8, BatchSize: 4})
	r0, err := j0.PrepareWorkerAttempt(WorkerNetConfig{
		Local: 0,
		OnPeerDown: func(peer int, err error) {
			mu.Lock()
			peersDown = append(peersDown, peer)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	// Port 1 on loopback refuses immediately: the very first flush fails in
	// failSend, deterministically, before any credit wait can block.
	r0.Start(ctx, map[int]string{1: "127.0.0.1:1"})
	select {
	case <-r0.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("send failure never escalated; attempt hung waiting for an abort that cannot come")
	}
	if _, err := r0.Report(); err == nil {
		t.Fatal("attempt with unrecovered send failure reported success")
	} else if !strings.Contains(err.Error(), "data-plane send to worker 1") {
		t.Errorf("escalation error = %v, want the failed peer named", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(peersDown) != 1 || peersDown[0] != 1 {
		t.Errorf("OnPeerDown calls = %v, want exactly one for peer 1", peersDown)
	}
}

// TestHandleFrameToleratesStrayFrames pins the stray-frame discipline: a
// decodable frame with an unexpected key (unknown task, no grantor/mirror,
// non-positive credit count, foreign type) is counted and skipped — it must
// NOT sever the shared connection and with it every channel multiplexed on
// it — while an undecodable payload still does.
func TestHandleFrameToleratesStrayFrames(t *testing.T) {
	j := wireJob(t, nil, JobOptions{RecordsPerSource: 1})
	r, err := j.PrepareWorkerAttempt(WorkerNetConfig{Local: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Discard()
	node := r.att.net.nodes[1]
	enc := func(v any) []byte {
		t.Helper()
		p, err := EncodePayload(v)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ghost := WireTaskID{Op: "ghost", Index: 0}
	snk := WireTaskID{Op: "snk", Index: 0}
	strays := []Frame{
		{Type: FrameCredit, Payload: enc(wireCredit{Task: ghost, N: 5})},    // unknown task
		{Type: FrameCredit, Payload: enc(wireCredit{Task: snk, N: 5})},      // no mirror on the receiver side
		{Type: FrameCreditReq, Payload: enc(wireCredit{Task: ghost, N: 5})}, // no grantor
		{Type: FrameCreditReq, Payload: enc(wireCredit{Task: snk, N: 0})},   // non-positive count
		{Type: FrameData, Payload: enc(wireBatch{Task: ghost, Entries: []wireEntry{{Value: int64(1)}}})},
		{Type: FrameEOF, Payload: enc(wireMark{Task: ghost, EOF: true})},
		{Type: FrameHeartbeat}, // control-plane type strayed onto a data conn
	}
	for i, f := range strays {
		if !node.handleFrame(0, f) {
			t.Errorf("stray frame %d severed the connection", i)
		}
	}
	if got := r.att.net.unexpectedFrames.Load(); got != int64(len(strays)) {
		t.Errorf("unexpected_frames = %d, want %d", got, len(strays))
	}
	// An undecodable payload is stream corruption: still connection-fatal.
	if node.handleFrame(0, Frame{Type: FrameCredit, Payload: []byte{0xff, 0x02, 0x03}}) {
		t.Error("corrupt payload did not sever the connection")
	}
}

// TestPrepareWorkerAttemptValidation pins the config guard rails.
func TestPrepareWorkerAttemptValidation(t *testing.T) {
	j := wireJob(t, nil, JobOptions{RecordsPerSource: 10})
	if _, err := j.PrepareWorkerAttempt(WorkerNetConfig{Local: -1}); err == nil {
		t.Error("negative worker accepted")
	}
	if _, err := j.PrepareWorkerAttempt(WorkerNetConfig{Local: 2}); err == nil {
		t.Error("out-of-range worker accepted")
	}
}
