package engine

import (
	"context"
	"testing"
	"time"

	"capsys/internal/dataflow"
)

// wireJob builds a two-worker src->sink job for the distributed worker API:
// src on worker 0, sink on worker 1, so every record crosses a real socket.
// Each call returns a fresh Job (each worker process builds its own).
func wireJob(t *testing.T, sink SinkFunc, opts JobOptions) *Job {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "snk", Kind: dataflow.KindSink, Parallelism: 1},
	} {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(dataflow.Edge{From: "src", To: "snk"}); err != nil {
		t.Fatal(err)
	}
	plan := dataflow.NewPlan()
	plan.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	plan.Assign(dataflow.TaskID{Op: "snk", Index: 0}, 1)
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i, Time: i}, true
			}), nil
		},
		"snk": func(*TaskContext) (any, error) { return NewSink(sink), nil },
	}
	opts.Transport = TransportNetwork
	job, err := NewJob(g, plan, bigWorkers(2, 2), factories, opts)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// startWirePair prepares and starts both workers' attempts and exchanges
// their data addresses, exactly as the coordinator's deploy/start phases
// would.
func startWirePair(t *testing.T, ctx context.Context, j0, j1 *Job) (*WorkerRun, *WorkerRun) {
	t.Helper()
	r0, err := j0.PrepareWorkerAttempt(WorkerNetConfig{Local: 0})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.PrepareWorkerAttempt(WorkerNetConfig{Local: 1})
	if err != nil {
		t.Fatal(err)
	}
	r0.Start(ctx, map[int]string{1: r1.DataAddr()})
	r1.Start(ctx, map[int]string{0: r0.DataAddr()})
	return r0, r1
}

// TestWorkerRunWireClean drives a two-process-shaped run (separate Job
// instances, TCP between them) to completion and checks the wire counters
// and per-worker reports line up.
func TestWorkerRunWireClean(t *testing.T) {
	const records = 300
	opts := JobOptions{RecordsPerSource: records, ChannelCapacity: 16, BatchSize: 8}
	j0 := wireJob(t, nil, opts)
	j1 := wireJob(t, nil, opts)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	r0, r1 := startWirePair(t, ctx, j0, j1)
	for _, r := range []*WorkerRun{r0, r1} {
		select {
		case <-r.Done():
		case <-ctx.Done():
			t.Fatal("worker run did not finish")
		}
	}
	rep0, err := r0.Report()
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := r1.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !rep0.Completed || !rep1.Completed {
		t.Fatalf("clean run not completed: w0=%v w1=%v", rep0.Completed, rep1.Completed)
	}
	// Worker 0 hosts only src; worker 1 only snk. Every record crossed the
	// wire exactly once.
	res := AssembleDistResult([]*WorkerReport{rep0, rep1}, DistAgg{Elapsed: time.Second})
	if res.SourceRecords != records || res.SinkRecords != records {
		t.Fatalf("source/sink = %d/%d, want %d/%d", res.SourceRecords, res.SinkRecords, records, records)
	}
	if rep0.NetDataBatches == 0 {
		t.Error("sender shipped no data batches over the wire")
	}
	if rep0.NetCreditFrames == 0 && rep1.NetCreditFrames == 0 {
		t.Error("no credit frames: wire flow control never engaged")
	}
	snap := res.Metrics.Snapshot()
	if snap["net.frames_sent"] <= 0 || snap["net.frames_received"] <= 0 {
		t.Errorf("net frame counters not exported: sent=%v received=%v",
			snap["net.frames_sent"], snap["net.frames_received"])
	}
	// A batch never exceeds the configured size, and the credit protocol
	// never puts more than ChannelCapacity records in flight, so per-batch
	// record counts are bounded by min(BatchSize, ChannelCapacity).
	if rep0.Batches > 0 {
		mean := float64(rep0.BatchRecords) / float64(rep0.Batches)
		if mean > float64(opts.BatchSize) {
			t.Errorf("mean batch size %.1f exceeds configured %d", mean, opts.BatchSize)
		}
	}
}

// TestWorkerRunAbortUnblocksWireSend is the socket-level abort regression
// test: the sink worker stalls mid-stream (never draining its inbox), the
// source worker fills the receiver's credit window and blocks in
// flushTarget waiting for a credit grant that will never arrive — then
// Abort on both sides must release the blocked sender promptly. Before
// credit waits honored the abort channel this hung forever.
func TestWorkerRunAbortUnblocksWireSend(t *testing.T) {
	stall := make(chan struct{})
	var sunk int
	sink := func(Record) {
		sunk++
		if sunk == 3 {
			<-stall // park the sink task; its inbox stops draining
		}
	}
	// Tiny capacity so the sender exhausts the window fast and provably
	// blocks on the wire credit path, not in a channel.
	opts := JobOptions{RecordsPerSource: 10_000, ChannelCapacity: 4, BatchSize: 2}
	j0 := wireJob(t, nil, opts)
	j1 := wireJob(t, sink, opts)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	r0, r1 := startWirePair(t, ctx, j0, j1)

	// Let the source run into the stalled window. It can make no progress
	// past capacity+buffered, so any settle time is enough; correctness
	// does not depend on the exact instant.
	time.Sleep(100 * time.Millisecond)
	aborted := time.Now()
	r0.Abort()
	r1.Abort()
	// The sender worker holds no stalled user code — only the wire credit
	// wait. It must unblock from Abort alone, with the sink still parked.
	select {
	case <-r0.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not unblock the sender stuck in a wire credit wait")
	}
	if waited := time.Since(aborted); waited > 5*time.Second {
		t.Errorf("abort took %v to release the blocked sender", waited)
	}
	// The sink worker can only exit once its SinkFunc returns: abort cannot
	// (and must not) preempt user code.
	close(stall)
	select {
	case <-r1.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("sink worker did not stop after abort + sink release")
	}
	rep0, err := r0.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Completed {
		t.Error("aborted sender reported Completed")
	}
	// The sender must have stopped far short of the full stream: blocked,
	// not spinning.
	var srcOut int64
	for _, ts := range rep0.Tasks {
		srcOut += ts.RecordsOut
	}
	if srcOut > 1000 {
		t.Errorf("source emitted %d records against a stalled sink (flow control leak)", srcOut)
	}
}

// TestWorkerRunDiscard covers the abort-before-start path the coordinator
// uses when a peer dies between deploy and start.
func TestWorkerRunDiscard(t *testing.T) {
	j := wireJob(t, nil, JobOptions{RecordsPerSource: 100})
	r, err := j.PrepareWorkerAttempt(WorkerNetConfig{Local: 0, AttemptNo: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Discard()
	if rep == nil || rep.Attempt != 3 || rep.Completed {
		t.Fatalf("discard report = %+v, want attempt 3, not completed", rep)
	}
	select {
	case <-r.Done():
	default:
		t.Error("Done not closed after Discard")
	}
}

// TestPrepareWorkerAttemptValidation pins the config guard rails.
func TestPrepareWorkerAttemptValidation(t *testing.T) {
	j := wireJob(t, nil, JobOptions{RecordsPerSource: 10})
	if _, err := j.PrepareWorkerAttempt(WorkerNetConfig{Local: -1}); err == nil {
		t.Error("negative worker accepted")
	}
	if _, err := j.PrepareWorkerAttempt(WorkerNetConfig{Local: 2}); err == nil {
		t.Error("out-of-range worker accepted")
	}
}
