package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"testing"

	"capsys/internal/dataflow"
)

// This file is the fusion equivalence battery: every pipeline here is run
// fused (the default) and unfused (DisableFusion), under every transport,
// and must produce identical canonical outcomes — per-task counters, sink
// record multisets, join outputs, snapshot counts and fault-recovery
// results. Fusion may only change speed, never what was processed.

// forwardChain builds a linear graph whose edges are Forward wherever the
// adjacent operators have equal parallelism (fusion-eligible), AllToAll
// otherwise.
func forwardChain(t testing.TB, ops []dataflow.Operator) *dataflow.LogicalGraph {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(ops); i++ {
		e := dataflow.Edge{From: ops[i-1].ID, To: ops[i].ID}
		if ops[i-1].Parallelism == ops[i].Parallelism {
			e.Mode = dataflow.Forward
		}
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// sinkTap collects sink records for canonical comparison. The callback runs
// on the sink task's goroutine; the mutex only guards against a concurrent
// final read.
type sinkTap struct {
	mu   sync.Mutex
	recs []string
}

func (s *sinkTap) add(r Record) {
	s.mu.Lock()
	s.recs = append(s.recs, fmt.Sprintf("%s|%v|%d", r.Key, r.Value, r.Time))
	s.mu.Unlock()
}

// canon returns the collected records as a sorted multiset string.
func (s *sinkTap) canon() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.recs...)
	sort.Strings(out)
	return strings.Join(out, "\n")
}

// fusedWinPipeline: src(2) =fwd=> norm(2, map) =fwd=> win(2, keyed stateful
// window) -> sink(1). Placed w0:{src0,norm0,win0}, w1:{src1,norm1,win1},
// w2:{sink0}, so both Forward runs are same-worker and fuse into
// three-operator chains. The window keeps keyed state, so fused snapshots
// must capture identical state images for recovery to replay exactly.
func fusedWinPipeline(t *testing.T, tap *sinkTap, fault FaultPlan, withRecovery bool, muts ...func(*JobOptions)) *Job {
	t.Helper()
	g := forwardChain(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "norm", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 2, Selectivity: 0.01},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	phys, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	base := dataflow.NewPlan()
	for _, op := range []dataflow.OperatorID{"src", "norm", "win"} {
		base.Assign(dataflow.TaskID{Op: op, Index: 0}, 0)
		base.Assign(dataflow.TaskID{Op: op, Index: 1}, 1)
	}
	base.Assign(dataflow.TaskID{Op: "sink", Index: 0}, 2)
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Key: fmt.Sprintf("k%d", i%7), Value: i, Time: i}, true
			}), nil
		},
		"norm": func(*TaskContext) (any, error) {
			return NewMap(func(r Record) Record {
				r.Value = r.Value.(int64) * 2
				return r
			}), nil
		},
		"win": func(*TaskContext) (any, error) {
			return NewSlidingWindow(100, 100, countAgg, countResult), nil
		},
		"sink": func(*TaskContext) (any, error) {
			if tap == nil {
				return NewSink(nil), nil
			}
			return NewSink(tap.add), nil
		},
	}
	opts := JobOptions{
		RecordsPerSource: 600,
		SnapshotInterval: 100,
		Stateful:         map[dataflow.OperatorID]bool{"win": true},
		FaultPlan:        fault,
	}
	if withRecovery {
		opts.OnFailure = func(ev FailureEvent) (*dataflow.Plan, error) {
			dead := make(map[int]bool)
			for _, w := range ev.DeadWorkers {
				dead[w] = true
			}
			np := dataflow.NewPlan()
			for _, task := range phys.Tasks() {
				w := base.MustWorker(task)
				if dead[w] {
					w = 2 // deterministic survivor; chains stay co-located
				}
				np.Assign(task, w)
			}
			return np, nil
		}
	}
	for _, mut := range muts {
		mut(&opts)
	}
	job, err := NewJob(g, base, bigWorkers(3, 6), factories, opts)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// fusedSumPipeline: stateful running-sum src(2) =fwd=> check(2, filter) ->
// sink(1). The Forward edge fuses; the round-robin AllToAll edge into the
// sink keeps exercising rr-cursor checkpointing, and the check operator
// forwards only records contradicting the closed form — any sink record is
// proof of a replay bug.
func fusedSumPipeline(t *testing.T, fault FaultPlan, withRecovery bool, muts ...func(*JobOptions)) *Job {
	t.Helper()
	g := forwardChain(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "check", Kind: dataflow.KindFilter, Parallelism: 2, Selectivity: 0},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	phys, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	base := dataflow.NewPlan()
	base.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	base.Assign(dataflow.TaskID{Op: "src", Index: 1}, 1)
	base.Assign(dataflow.TaskID{Op: "check", Index: 0}, 0)
	base.Assign(dataflow.TaskID{Op: "check", Index: 1}, 1)
	base.Assign(dataflow.TaskID{Op: "sink", Index: 0}, 2)
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) { return &runningSumSource{}, nil },
		"check": func(*TaskContext) (any, error) {
			return NewFilter(func(r Record) bool {
				i := r.Time
				return r.Value.(int64) != (i+1)*(i+2)/2
			}), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	opts := JobOptions{
		RecordsPerSource: 600,
		SnapshotInterval: 100,
		FaultPlan:        fault,
	}
	if withRecovery {
		opts.OnFailure = func(ev FailureEvent) (*dataflow.Plan, error) {
			dead := make(map[int]bool)
			for _, w := range ev.DeadWorkers {
				dead[w] = true
			}
			np := dataflow.NewPlan()
			for _, task := range phys.Tasks() {
				w := base.MustWorker(task)
				if dead[w] {
					w = 2
				}
				np.Assign(task, w)
			}
			return np, nil
		}
	}
	for _, mut := range muts {
		mut(&opts)
	}
	job, err := NewJob(g, base, bigWorkers(3, 6), factories, opts)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// fusedJoinPipeline: left(1) + right(1) -> join(2, AllToAll fan-in, must
// NOT fuse) =fwd=> tag(2, map) -> sink(1). The post-join Forward edge fuses
// when co-located; join outputs observed at the sink must be identical.
func fusedJoinPipeline(t *testing.T, tap *sinkTap, muts ...func(*JobOptions)) *Job {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "left", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "right", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "join", Kind: dataflow.KindJoin, Parallelism: 2, Selectivity: 1},
		{ID: "tag", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	} {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{
		{From: "left", To: "join"},
		{From: "right", To: "join"},
		{From: "join", To: "tag", Mode: dataflow.Forward},
		{From: "tag", To: "sink"},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	base := dataflow.NewPlan()
	base.Assign(dataflow.TaskID{Op: "left", Index: 0}, 0)
	base.Assign(dataflow.TaskID{Op: "right", Index: 0}, 1)
	base.Assign(dataflow.TaskID{Op: "join", Index: 0}, 0)
	base.Assign(dataflow.TaskID{Op: "join", Index: 1}, 1)
	base.Assign(dataflow.TaskID{Op: "tag", Index: 0}, 0)
	base.Assign(dataflow.TaskID{Op: "tag", Index: 1}, 1)
	base.Assign(dataflow.TaskID{Op: "sink", Index: 0}, 2)
	factories := map[dataflow.OperatorID]Factory{
		"left": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				if i >= 40 {
					return Record{}, false
				}
				return Record{Key: fmt.Sprintf("k%d", i%5), Value: i, Time: i}, true
			}), nil
		},
		"right": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				if i >= 60 {
					return Record{}, false
				}
				return Record{Key: fmt.Sprintf("k%d", i%5), Value: 100 + i, Time: i}, true
			}), nil
		},
		"join": func(*TaskContext) (any, error) {
			return NewIncrementalJoin(func(l, r Record) (Record, bool) {
				return Record{Key: l.Key, Value: fmt.Sprintf("%v+%v", l.Value, r.Value), Time: l.Time}, true
			}, 0), nil
		},
		"tag": func(*TaskContext) (any, error) {
			return NewMap(func(r Record) Record {
				r.Value = "t:" + r.Value.(string)
				return r
			}), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(tap.add), nil },
	}
	opts := JobOptions{
		RecordsPerSource: 60,
		Stateful:         map[dataflow.OperatorID]bool{"join": true},
	}
	for _, mut := range muts {
		mut(&opts)
	}
	job, err := NewJob(g, base, bigWorkers(3, 6), factories, opts)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// withFusion toggles JobOptions.DisableFusion.
func withFusion(on bool) func(*JobOptions) {
	return func(o *JobOptions) { o.DisableFusion = !on }
}

// fuseOutcome is everything a fused run must reproduce exactly.
type fuseOutcome struct {
	counters  string
	sink      string
	snapshots int64
}

// TestFusionEquivalenceBattery runs every pipeline fused and unfused under
// every transport and demands identical outcomes. Clean cases additionally
// compare the sink record multiset and the snapshot count (barrier
// alignment must complete the same epochs either way); recovery cases
// compare exactly-once accounting through a mid-run worker kill.
func TestFusionEquivalenceBattery(t *testing.T) {
	kill := FaultPlan{KillWorkers: []WorkerKill{{Worker: 1, AtEpoch: 3}}}
	cases := []struct {
		name      string
		clean     bool // compare sink records + snapshot counts
		wantFused bool // the fused run must actually fuse
		build     func(t *testing.T, tap *sinkTap, fused bool, tr string) *JobResult
	}{
		{"window-clean", true, true, func(t *testing.T, tap *sinkTap, fused bool, tr string) *JobResult {
			return runJob(t, fusedWinPipeline(t, tap, FaultPlan{}, false, asTransport(tr, 16, 0), withFusion(fused)))
		}},
		{"window-kill-recovery", false, true, func(t *testing.T, tap *sinkTap, fused bool, tr string) *JobResult {
			return runJob(t, fusedWinPipeline(t, nil, kill, true, asTransport(tr, 16, 0), withFusion(fused)))
		}},
		{"statefulsrc-clean", true, true, func(t *testing.T, tap *sinkTap, fused bool, tr string) *JobResult {
			return runJob(t, fusedSumPipeline(t, FaultPlan{}, false, asTransport(tr, 16, 0), withFusion(fused)))
		}},
		{"statefulsrc-kill-recovery", false, true, func(t *testing.T, tap *sinkTap, fused bool, tr string) *JobResult {
			return runJob(t, fusedSumPipeline(t, kill, true, asTransport(tr, 16, 0), withFusion(fused)))
		}},
		{"join-clean", true, true, func(t *testing.T, tap *sinkTap, fused bool, tr string) *JobResult {
			return runJob(t, fusedJoinPipeline(t, tap, asTransport(tr, 16, 0), withFusion(fused)))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, tr := range TransportNames() {
				t.Run(tr, func(t *testing.T) {
					outcomes := make(map[bool]fuseOutcome)
					for _, fused := range []bool{false, true} {
						tap := &sinkTap{}
						res := tc.build(t, tap, fused, tr)
						out := fuseOutcome{counters: canonicalOutcome(res)}
						if tc.clean {
							out.sink = tap.canon()
							out.snapshots = res.SnapshotsTaken
						}
						outcomes[fused] = out
						snap := res.Metrics.Snapshot()
						if fused && tc.wantFused {
							if snap["engine.fuse.tasks"] == 0 {
								t.Errorf("fused run reports no fused tasks")
							}
							if snap["engine.fuse.records"] == 0 {
								t.Errorf("fused run reports no fused records")
							}
						}
						if !fused {
							if _, ok := snap["engine.fuse.tasks"]; ok {
								t.Errorf("unfused run exports engine.fuse.tasks")
							}
						}
					}
					if outcomes[true].counters != outcomes[false].counters {
						t.Errorf("counters diverge:\nunfused:\n%s\nfused:\n%s",
							outcomes[false].counters, outcomes[true].counters)
					}
					if tc.clean {
						if outcomes[true].sink != outcomes[false].sink {
							t.Errorf("sink records diverge:\nunfused:\n%s\nfused:\n%s",
								outcomes[false].sink, outcomes[true].sink)
						}
						if outcomes[true].snapshots != outcomes[false].snapshots {
							t.Errorf("snapshot counts diverge: unfused %d, fused %d",
								outcomes[false].snapshots, outcomes[true].snapshots)
						}
					}
				})
			}
		})
	}
}

func runJob(t *testing.T, j *Job) *JobResult {
	t.Helper()
	res, err := j.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFusionChainAccounting pins the fusion metrics down exactly: the
// window pipeline has two three-operator chains (src=>norm=>win per index),
// so two chains, four goroutine-less member tasks, and every record that
// crossed a fused edge counted.
func TestFusionChainAccounting(t *testing.T) {
	res := runJob(t, fusedWinPipeline(t, nil, FaultPlan{}, false))
	snap := res.Metrics.Snapshot()
	if got := snap["engine.fuse.chains"]; got != 2 {
		t.Errorf("engine.fuse.chains = %v, want 2", got)
	}
	if got := snap["engine.fuse.tasks"]; got != 4 {
		t.Errorf("engine.fuse.tasks = %v, want 4", got)
	}
	// 600 records per source traverse src=>norm and norm=>win on both
	// chains: 2 sources x 600 x 2 fused hops.
	if got := snap["engine.fuse.records"]; got != 2400 {
		t.Errorf("engine.fuse.records = %v, want 2400", got)
	}
}

// TestFusionRequiresColocation: the same Forward topology placed with the
// chain split across workers must not fuse — fusion is a property of
// (graph, plan), not the graph alone.
func TestFusionRequiresColocation(t *testing.T) {
	g := forwardChain(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "fwd", Kind: dataflow.KindMap, Parallelism: 1, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	base := dataflow.NewPlan()
	base.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	base.Assign(dataflow.TaskID{Op: "fwd", Index: 0}, 1) // every hop crosses workers: no fusion
	base.Assign(dataflow.TaskID{Op: "sink", Index: 0}, 0)
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				if i >= 50 {
					return Record{}, false
				}
				return Record{Value: i, Time: i}, true
			}), nil
		},
		"fwd":  func(*TaskContext) (any, error) { return NewMap(func(r Record) Record { return r }), nil },
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, base, bigWorkers(2, 4), factories, JobOptions{RecordsPerSource: 50})
	if err != nil {
		t.Fatal(err)
	}
	res := runJob(t, job)
	if _, ok := res.Metrics.Snapshot()["engine.fuse.tasks"]; ok {
		t.Error("split placement fused anyway; fusion must require co-location")
	}
	// fwd=>sink is Forward, same worker, fusion-eligible: placed together it
	// fuses even though src=>fwd cannot.
	base2 := dataflow.NewPlan()
	base2.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	base2.Assign(dataflow.TaskID{Op: "fwd", Index: 0}, 1)
	base2.Assign(dataflow.TaskID{Op: "sink", Index: 0}, 1)
	job2, err := NewJob(g, base2, bigWorkers(2, 4), factories, JobOptions{RecordsPerSource: 50})
	if err != nil {
		t.Fatal(err)
	}
	res2 := runJob(t, job2)
	if got := res2.Metrics.Snapshot()["engine.fuse.tasks"]; got != 1 {
		t.Errorf("engine.fuse.tasks = %v, want 1 (fwd=>sink fuses, src=>fwd crosses workers)", got)
	}
}

// TestHashKeyMatchesFNV pins the inlined routing hash to hash/fnv: keyed
// partitioning decides which task owns which key's state, so the inline
// rewrite must be byte-identical or checkpoint images stop lining up.
func TestHashKeyMatchesFNV(t *testing.T) {
	keys := []string{"", "a", "k0", "k123456", "the quick brown fox", "\x00\xff"}
	for _, k := range keys {
		h := fnv.New32a()
		h.Write([]byte(k))
		if got, want := hashKey(k), h.Sum32(); got != want {
			t.Errorf("hashKey(%q) = %d, want %d", k, got, want)
		}
	}
}
