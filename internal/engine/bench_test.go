package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"capsys/internal/dataflow"
)

// The throughput benchmark doubles as the recorded exchange-layer baseline:
// running it with BENCH_ENGINE_OUT=<path> (see `make bench-engine`) rewrites
// BENCH_engine.json with per-transport records/sec and the derived
// batched-over-unary speedup the exchange refactor is judged by.

type engineBenchRecord struct {
	Transport string  `json:"transport"`
	Records   int64   `json:"records"`
	NsPerOp   float64 `json:"ns_per_op"`
	RecPerSec float64 `json:"rec_per_sec"`
	Batches   int64   `json:"batches"`
	BatchMean float64 `json:"batch_mean_records"`
}

var (
	engineBenchMu      sync.Mutex
	engineBenchResults = map[string]engineBenchRecord{}
)

func recordEngineBench(name string, rec engineBenchRecord) {
	engineBenchMu.Lock()
	engineBenchResults[name] = rec
	engineBenchMu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_ENGINE_OUT"); path != "" && len(engineBenchResults) > 0 && code == 0 {
		if err := writeEngineBenchJSON(path); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeEngineBenchJSON(path string) error {
	names := make([]string, 0, len(engineBenchResults))
	for n := range engineBenchResults {
		names = append(names, n)
	}
	sort.Strings(names)
	type out struct {
		Note    string              `json:"note"`
		Records []engineBenchRecord `json:"records"`
		Summary map[string]float64  `json:"summary"`
	}
	o := out{
		Note:    "go test -bench BenchmarkEngineThroughput ./internal/engine (see make bench-engine); rec_per_sec is end-to-end source records over job wall-clock",
		Summary: map[string]float64{},
	}
	for _, n := range names {
		o.Records = append(o.Records, engineBenchResults[n])
	}
	// Headline ratio: batched over unary throughput (>= 2 expected — the
	// batched transport amortizes channel handoffs and coalesces per-record
	// token-bucket draws into one charge per batch).
	if u, okU := engineBenchResults[TransportUnary]; okU {
		if bt, okB := engineBenchResults[TransportBatched]; okB && u.RecPerSec > 0 {
			o.Summary["batched_over_unary_throughput"] = bt.RecPerSec / u.RecPerSec
		}
	}
	buf, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// benchJob builds the throughput pipeline: src(2) -> fwd(2) -> sink(1) on two
// workers with effectively unlimited meters, so the measured cost is the data
// plane itself (channel handoffs, routing, per-record vs per-batch metering)
// rather than simulated resource contention.
func benchJob(b *testing.B, transport string, perSource int64) *Job {
	b.Helper()
	g := chainGraph(b, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "fwd", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i}, true
			}), nil
		},
		"fwd":  func(*TaskContext) (any, error) { return NewMap(func(r Record) Record { return r }), nil },
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, roundRobinPlan(b, g, 2), bigWorkers(2, 4), factories, JobOptions{
		RecordsPerSource: perSource,
		Transport:        transport,
	})
	if err != nil {
		b.Fatal(err)
	}
	return job
}

// BenchmarkEngineThroughput measures end-to-end records/sec through the
// reference pipeline under each transport. The recorded rec_per_sec uses the
// job's own wall-clock (sum over iterations), so it composes across b.N.
func BenchmarkEngineThroughput(b *testing.B) {
	const perSource = 25000
	for _, tr := range TransportNames() {
		b.Run(tr, func(b *testing.B) {
			b.ReportAllocs()
			var sourced, batches, batchRecords int64
			var elapsed time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := benchJob(b, tr, perSource).Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if res.SinkRecords != 2*perSource {
					b.Fatalf("sink saw %d records, want %d", res.SinkRecords, 2*perSource)
				}
				sourced += res.SourceRecords
				elapsed += res.Elapsed
				batches += res.Metrics.Counter("exchange.batches").Value()
				batchRecords += res.Metrics.Counter("exchange.batch_records").Value()
			}
			b.StopTimer()
			if elapsed <= 0 {
				return
			}
			recPerSec := float64(sourced) / elapsed.Seconds()
			b.ReportMetric(recPerSec, "rec/s")
			rec := engineBenchRecord{
				Transport: tr,
				Records:   sourced / int64(b.N),
				NsPerOp:   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				RecPerSec: recPerSec,
				Batches:   batches / int64(b.N),
			}
			if batches > 0 {
				rec.BatchMean = float64(batchRecords) / float64(batches)
			}
			recordEngineBench(tr, rec)
		})
	}
}
