package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"capsys/internal/dataflow"
)

// The throughput suite doubles as the recorded data-plane baseline: running
// it with BENCH_ENGINE_OUT=<path> (see `make bench-engine`) rewrites
// BENCH_engine.json with a per-query-shape `queries` array — linear chain
// (the operator-fusion headline), fan-out, join, and the nexmark Q3-inf
// topology — each measured per transport and, where the shape is
// fusion-eligible, fused versus unfused.

// QueryBenchRow is one (query, transport, fusion) measurement. Exported so
// the external benchmark file (package engine_test, which can import
// nexmark without an import cycle) can record rows through RecordQueryBench.
type QueryBenchRow struct {
	Transport string  `json:"transport"`
	Fused     bool    `json:"fused"`
	Records   int64   `json:"records"`
	NsPerOp   float64 `json:"ns_per_op"`
	RecPerSec float64 `json:"rec_per_sec"`
	Batches   int64   `json:"batches"`
	BatchMean float64 `json:"batch_mean_records"`
	// Rescale rows only: mean live-rescale downtime and state moved per run.
	RescaleDowntimeMs float64 `json:"rescale_downtime_ms,omitempty"`
	RescaleMovedBytes int64   `json:"rescale_moved_bytes,omitempty"`
}

var (
	engineBenchMu      sync.Mutex
	engineBenchResults = map[string]map[string]QueryBenchRow{}
)

// RecordQueryBench lands one row in the committed suite, keyed by query
// shape and (transport, fused) within it.
func RecordQueryBench(query string, row QueryBenchRow) {
	engineBenchMu.Lock()
	rows := engineBenchResults[query]
	if rows == nil {
		rows = map[string]QueryBenchRow{}
		engineBenchResults[query] = rows
	}
	mode := "unfused"
	if row.Fused {
		mode = "fused"
	}
	rows[row.Transport+"/"+mode] = row
	engineBenchMu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_ENGINE_OUT"); path != "" && len(engineBenchResults) > 0 && code == 0 {
		if err := writeEngineBenchJSON(path); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeEngineBenchJSON(path string) error {
	type queryOut struct {
		Query   string             `json:"query"`
		Rows    []QueryBenchRow    `json:"rows"`
		Summary map[string]float64 `json:"summary"`
	}
	type out struct {
		Note    string             `json:"note"`
		Queries []queryOut         `json:"queries"`
		Summary map[string]float64 `json:"summary"`
	}
	o := out{
		Note:    "go test -bench BenchmarkEngineThroughput ./internal/engine (see make bench-engine); rec_per_sec is end-to-end source records over job wall-clock, per query shape x transport x fusion mode",
		Summary: map[string]float64{},
	}
	queries := make([]string, 0, len(engineBenchResults))
	for q := range engineBenchResults {
		queries = append(queries, q)
	}
	sort.Strings(queries)
	rate := func(rows map[string]QueryBenchRow, key string) float64 {
		return rows[key].RecPerSec
	}
	for _, q := range queries {
		rows := engineBenchResults[q]
		keys := make([]string, 0, len(rows))
		for k := range rows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		qo := queryOut{Query: q, Summary: map[string]float64{}}
		for _, k := range keys {
			qo.Rows = append(qo.Rows, rows[k])
		}
		// Per-shape ratios: the exchange refactor's batched-over-unary gain,
		// and — where both modes ran — fusion's gain on the batched path.
		// Unfused rows are preferred for the exchange ratio: a fully fused
		// chain has no exchange left to compare. The repartitioning shapes
		// only run at the fuse-on default (nothing to fuse), so their rows
		// carry fused=true and the ratio reads the same either way.
		uKey, bKey := TransportUnary+"/unfused", TransportBatched+"/unfused"
		if _, ok := rows[uKey]; !ok {
			uKey, bKey = TransportUnary+"/fused", TransportBatched+"/fused"
		}
		if u, b := rate(rows, uKey), rate(rows, bKey); u > 0 && b > 0 {
			qo.Summary["batched_over_unary_throughput"] = b / u
		}
		if u, f := rate(rows, TransportBatched+"/unfused"), rate(rows, TransportBatched+"/fused"); u > 0 && f > 0 {
			qo.Summary["fused_over_unfused_batched"] = f / u
		}
		o.Queries = append(o.Queries, qo)
	}
	// Headline numbers: the linear chain is the fusion showcase (ROADMAP's
	// raw-speed target is quoted against it).
	if rows, ok := engineBenchResults["linear"]; ok {
		if r := rate(rows, TransportBatched+"/unfused"); r > 0 {
			if u := rate(rows, TransportUnary+"/unfused"); u > 0 {
				o.Summary["batched_over_unary_throughput"] = r / u
			}
		}
		if f := rate(rows, TransportBatched+"/fused"); f > 0 {
			o.Summary["linear_fused_batched_rec_per_sec"] = f
			if u := rate(rows, TransportBatched+"/unfused"); u > 0 {
				o.Summary["linear_fused_over_unfused_batched"] = f / u
			}
		}
	}
	buf, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// RunQueryBench is the shared measurement loop: run build() b.N times,
// require wantSink records at the sinks each run (-1 skips the check),
// require the run to have fused iff wantFused, and record one row. The
// recorded rec_per_sec uses the jobs' own wall-clock (summed over
// iterations), so it composes across b.N.
func RunQueryBench(b *testing.B, query, transport string, fused, wantFused bool, wantSink int64, build func(b *testing.B) *Job) {
	b.Helper()
	b.ReportAllocs()
	var sourced, batches, batchRecords int64
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := build(b).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if wantSink >= 0 && res.SinkRecords != wantSink {
			b.Fatalf("sink saw %d records, want %d", res.SinkRecords, wantSink)
		}
		if i == 0 {
			if _, ok := res.Metrics.Snapshot()["engine.fuse.tasks"]; ok != wantFused {
				b.Fatalf("fused=%v run reports fusion=%v; the measured configuration is not the intended one", fused, ok)
			}
		}
		sourced += res.SourceRecords
		elapsed += res.Elapsed
		batches += res.Metrics.Counter("exchange.batches").Value()
		batchRecords += res.Metrics.Counter("exchange.batch_records").Value()
	}
	b.StopTimer()
	if elapsed <= 0 {
		return
	}
	recPerSec := float64(sourced) / elapsed.Seconds()
	b.ReportMetric(recPerSec, "rec/s")
	row := QueryBenchRow{
		Transport: transport,
		Fused:     fused,
		Records:   sourced / int64(b.N),
		NsPerOp:   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		RecPerSec: recPerSec,
		Batches:   batches / int64(b.N),
	}
	if batches > 0 {
		row.BatchMean = float64(batchRecords) / float64(batches)
	}
	RecordQueryBench(query, row)
}

// linearJob: src(2) =fwd=> fwd(2) =fwd=> sink(2), index i co-located on
// worker i. Fully fusion-eligible: fused, each pipeline is one goroutine
// making direct calls — the ROADMAP raw-speed shape. Meters are effectively
// unlimited so the measured cost is the data plane itself.
func linearJob(b *testing.B, transport string, fused bool, perSource int64) *Job {
	b.Helper()
	g := forwardChain(b, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "fwd", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2},
	})
	pl := dataflow.NewPlan()
	for _, op := range []dataflow.OperatorID{"src", "fwd", "sink"} {
		pl.Assign(dataflow.TaskID{Op: op, Index: 0}, 0)
		pl.Assign(dataflow.TaskID{Op: op, Index: 1}, 1)
	}
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i}, true
			}), nil
		},
		"fwd":  func(*TaskContext) (any, error) { return NewMap(func(r Record) Record { return r }), nil },
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, pl, bigWorkers(2, 4), factories, JobOptions{
		RecordsPerSource: perSource,
		Transport:        transport,
		DisableFusion:    !fused,
	})
	if err != nil {
		b.Fatal(err)
	}
	return job
}

// fanoutJob: src(2) feeds two parallel branches (hot/cold, AllToAll) that
// fan back into one sink — every record crosses two repartitioning
// exchanges, so nothing fuses and the exchange layer dominates.
func fanoutJob(b *testing.B, transport string, perSource int64) *Job {
	b.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "hot", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1},
		{ID: "cold", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	} {
		if err := g.AddOperator(op); err != nil {
			b.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{
		{From: "src", To: "hot"}, {From: "src", To: "cold"},
		{From: "hot", To: "sink"}, {From: "cold", To: "sink"},
	} {
		if err := g.AddEdge(e); err != nil {
			b.Fatal(err)
		}
	}
	passthrough := func(*TaskContext) (any, error) {
		return NewMap(func(r Record) Record { return r }), nil
	}
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i}, true
			}), nil
		},
		"hot":  passthrough,
		"cold": passthrough,
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, roundRobinPlan(b, g, 2), bigWorkers(2, 6), factories, JobOptions{
		RecordsPerSource: perSource,
		Transport:        transport,
	})
	if err != nil {
		b.Fatal(err)
	}
	return job
}

// joinJob: left(1) + right(1) into a keyed stateful incremental join(2),
// then a sink. Keys pair 1:1 (left i joins right i), so the sink sees
// exactly 2*perSource/2 matches and the hash-routing path is exercised on
// every record.
func joinJob(b *testing.B, transport string, perSource int64) *Job {
	b.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "left", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "right", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "join", Kind: dataflow.KindJoin, Parallelism: 2, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	} {
		if err := g.AddOperator(op); err != nil {
			b.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{
		{From: "left", To: "join"}, {From: "right", To: "join"}, {From: "join", To: "sink"},
	} {
		if err := g.AddEdge(e); err != nil {
			b.Fatal(err)
		}
	}
	keyed := func(base int64) Factory {
		return func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				// float64 from the start: the network transport's JSON
				// round-trip decodes numbers as float64 either way.
				return Record{Key: fmt.Sprintf("k%d", i), Value: float64(base + i), Time: i}, true
			}), nil
		}
	}
	factories := map[dataflow.OperatorID]Factory{
		"left":  keyed(0),
		"right": keyed(1 << 30),
		"join": func(*TaskContext) (any, error) {
			return NewIncrementalJoin(func(l, r Record) (Record, bool) {
				return Record{Key: l.Key, Value: l.Value.(float64) + r.Value.(float64), Time: l.Time}, true
			}, 0), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, roundRobinPlan(b, g, 2), bigWorkers(2, 4), factories, JobOptions{
		RecordsPerSource: perSource,
		Transport:        transport,
		Stateful:         map[dataflow.OperatorID]bool{"join": true},
	})
	if err != nil {
		b.Fatal(err)
	}
	return job
}

// rescaleBenchJob: src(2) => keyed window(4) => sink, with a live rescale of
// the window operator to 6 tasks at checkpoint epoch 2 — the cost of the
// drain→repartition→resume protocol under full throughput (unthrottled
// sources: the drain lands wherever the stream happens to be).
func rescaleBenchJob(b *testing.B, transport string, perSource int64) *Job {
	b.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 4, Selectivity: 0.01},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	} {
		if err := g.AddOperator(op); err != nil {
			b.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{{From: "src", To: "win"}, {From: "win", To: "sink"}} {
		if err := g.AddEdge(e); err != nil {
			b.Fatal(err)
		}
	}
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Key: fmt.Sprintf("k%d", i%50), Value: i, Time: i}, true
			}), nil
		},
		"win": func(*TaskContext) (any, error) {
			return NewSlidingWindow(100, 100, countAgg, countResult), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, roundRobinPlan(b, g, 3), bigWorkers(3, 6), factories, JobOptions{
		RecordsPerSource: perSource,
		Transport:        transport,
		Stateful:         map[dataflow.OperatorID]bool{"win": true},
		SnapshotInterval: perSource / 10,
		Rescales:         []RescalePlan{{Op: "win", Parallelism: 6, AtEpoch: 2}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return job
}

// runRescaleBench mirrors RunQueryBench but additionally requires exactly one
// applied, lossless rescale per run and records its mean downtime and moved
// state bytes on the row.
func runRescaleBench(b *testing.B, transport string, perSource int64) {
	b.Helper()
	b.ReportAllocs()
	var sourced, batches, batchRecords, movedBytes int64
	var elapsed, downtime time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rescaleBenchJob(b, transport, perSource).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed || res.LostRecords != 0 {
			b.Fatalf("rescale run failed=%v lost=%d", res.Failed, res.LostRecords)
		}
		if res.Rescales != 1 {
			b.Fatalf("run applied %d rescales, want 1", res.Rescales)
		}
		sourced += res.SourceRecords
		elapsed += res.Elapsed
		downtime += res.RescaleDowntime
		movedBytes += res.RescaleMovedBytes
		batches += res.Metrics.Counter("exchange.batches").Value()
		batchRecords += res.Metrics.Counter("exchange.batch_records").Value()
	}
	b.StopTimer()
	if elapsed <= 0 {
		return
	}
	recPerSec := float64(sourced) / elapsed.Seconds()
	b.ReportMetric(recPerSec, "rec/s")
	b.ReportMetric(downtime.Seconds()*1e3/float64(b.N), "downtime-ms")
	row := QueryBenchRow{
		Transport:         transport,
		Fused:             true, // fuse-on default; this shape has nothing to fuse
		Records:           sourced / int64(b.N),
		NsPerOp:           float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		RecPerSec:         recPerSec,
		Batches:           batches / int64(b.N),
		RescaleDowntimeMs: downtime.Seconds() * 1e3 / float64(b.N),
		RescaleMovedBytes: movedBytes / int64(b.N),
	}
	if batches > 0 {
		row.BatchMean = float64(batchRecords) / float64(batches)
	}
	RecordQueryBench("rescale", row)
}

// BenchmarkEngineThroughput is the committed multi-query suite (the
// Q3-inf shape lives in bench_nexmark_test.go, outside this package, to
// reach the nexmark bindings without an import cycle). The linear chain
// runs fused and unfused; the repartitioning shapes have nothing to fuse
// and run at the fuse-on default.
func BenchmarkEngineThroughput(b *testing.B) {
	b.Run("linear", func(b *testing.B) {
		const perSource = 25000
		for _, tr := range TransportNames() {
			for _, fused := range []bool{false, true} {
				mode := "unfused"
				if fused {
					mode = "fused"
				}
				b.Run(tr+"/"+mode, func(b *testing.B) {
					RunQueryBench(b, "linear", tr, fused, fused, 2*perSource, func(b *testing.B) *Job {
						return linearJob(b, tr, fused, perSource)
					})
				})
			}
		}
	})
	b.Run("fanout", func(b *testing.B) {
		const perSource = 15000
		for _, tr := range TransportNames() {
			b.Run(tr, func(b *testing.B) {
				RunQueryBench(b, "fanout", tr, true, false, 4*perSource, func(b *testing.B) *Job {
					return fanoutJob(b, tr, perSource)
				})
			})
		}
	})
	b.Run("join", func(b *testing.B) {
		const perSource = 10000
		for _, tr := range TransportNames() {
			b.Run(tr, func(b *testing.B) {
				RunQueryBench(b, "join", tr, true, false, perSource, func(b *testing.B) *Job {
					return joinJob(b, tr, perSource)
				})
			})
		}
	})
	b.Run("rescale", func(b *testing.B) {
		const perSource = 10000
		for _, tr := range TransportNames() {
			b.Run(tr, func(b *testing.B) {
				runRescaleBench(b, tr, perSource)
			})
		}
	})
}
