package engine

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"capsys/internal/dataflow"
	"capsys/internal/metrics"
	"capsys/internal/telemetry"
)

// This file is the TCP data plane behind the exchange layer. The network
// transport keeps the batched transport's semantics — size/linger batching,
// credit-based flow control, barrier/EOF markers — but cross-worker edges
// ship frames over real sockets and the receiver's credit gate becomes
// credit-grant frames on the wire:
//
//   - Every worker runs a netNode: one TCP listener plus one outbound
//     connection per peer worker it talks to (data and credit frames share
//     the pair's connection; per-channel FIFO order is the TCP stream).
//   - Same-worker edges stay in-memory batched; only cross-worker targets
//     become netTargets.
//   - For each (receiving task, sending worker) pair the receiver runs a
//     grantor. Credits are demand-driven: before a sender blocks on its
//     mirror gate it sends a FrameCreditReq sized to the pending batch; the
//     grantor acquires that much from the task's real gate on the sender's
//     behalf — serving requests strictly one at a time in FIFO order, never
//     coalescing them (summed concurrent requests can exceed the gate's
//     capacity, an acquire that could never complete) — and grants it back
//     as a FrameCredit, which the sending worker pools in a per-task mirror
//     gate that flushTarget acquires from. The discipline is exactly a
//     local sender's blocking
//     acquire — a remote sender can never hoard a receiver's gate by
//     holding pre-granted credits it isn't using (with multiple senders
//     sharing one gate, proactive window grants deadlock) — and the global
//     bound, at most ChannelCapacity records in flight toward any task,
//     wire included, is exactly the in-memory batched transport's bound.
//   - Connection readers never block on delivery: each receiver channel
//     has a pump goroutine that blocks on the task inbox in the reader's
//     stead (see dispatch). A reader stuck on one full inbox would stall
//     the credit requests multiplexed behind it on the same connection and
//     deadlock the cluster under backpressure.
//   - When every channel from a sending worker has delivered EOF, the
//     grantor retires and returns any unconsumed grants to the gate.
//
// An in-process job under TransportNetwork runs every worker's node in one
// process (loopback sockets); a distributed attempt (attempt.dist != nil)
// instantiates only the local worker's node and learns peer addresses at
// start time (see distrun.go).

const netDialTimeout = 10 * time.Second

type networkTransport struct {
	size   int
	linger time.Duration
}

func (t *networkTransport) Name() string { return TransportNetwork }

func (t *networkTransport) newGate(capacity int) *creditGate {
	return newCreditGate(int64(capacity))
}

// newSender builds a batched sender whose cross-worker targets ship frames:
// the target's gate slot becomes the local node's mirror gate for that task
// (replenished by credit grants), and its inbox slot is cleared — remote
// batches never touch an in-memory channel.
func (t *networkTransport) newSender(rt *taskRuntime, edge *downstreamEdge) edgeSender {
	n := len(edge.workers)
	s := &batchedSender{
		rt:      rt,
		edge:    edge,
		size:    t.size,
		linger:  t.linger,
		pending: make([][]batchEntry, n),
		netDue:  make([]int64, n),
		firstAt: make([]time.Time, n),
	}
	node := rt.att.net.nodes[rt.worker]
	for i, w := range edge.workers {
		if w == rt.worker {
			continue
		}
		if s.remote == nil {
			s.remote = make([]remoteTarget, n)
		}
		task := edge.tasks[i]
		s.remote[i] = &netTarget{node: node, peer: w, task: task}
		edge.gates[i] = node.mirrors[task]
		edge.inboxes[i] = nil
	}
	return s
}

// crossChan is one cross-worker channel discovered at wiring time: a task
// on worker `from` feeds `task` on worker `to`. Every process of a cluster
// derives the same census from the shared plan.
type crossChan struct {
	from, to int
	task     dataflow.TaskID
}

// Wire message bodies (gob-encoded frame payloads).
type (
	wireHello struct {
		From    int
		Attempt int
	}
	// wireCredit carries a credit request (FrameCreditReq, sender ->
	// receiver) or a credit grant (FrameCredit, receiver -> sender).
	wireCredit struct {
		Task WireTaskID
		N    int64
	}
	// wireMark is a barrier (EOF=false) or end-of-stream (EOF=true) marker
	// for one (task, channel).
	wireMark struct {
		Task  WireTaskID
		In    int
		Ch    int
		Epoch int64
		EOF   bool
	}
	wireEntry struct {
		Key    string
		Value  any
		Time   int64
		Size   int
		Ingest int64
	}
	wireBatch struct {
		Task    WireTaskID
		In      int
		Ch      int
		Entries []wireEntry
	}
)

// netAttempt is one attempt's wire state: the local node(s), peer
// addresses, and lifecycle.
type netAttempt struct {
	a     *attempt
	nodes map[int]*netNode

	addrMu sync.RWMutex
	addrs  map[int]string // worker -> data address

	started   chan struct{} // closed when the attempt starts running
	startOnce sync.Once
	stop      chan struct{} // closed at teardown
	stopOnce  sync.Once
	wg        sync.WaitGroup

	pdMu     sync.Mutex
	peerDown map[int]bool

	// fatal is the first unrecoverable wire error (a send failure nobody
	// recovered within dataPlaneEscalation); attempt.run surfaces it after
	// the tasks drain so the attempt fails visibly instead of hanging or —
	// worse — reporting completion with silently dropped records.
	fatalMu sync.Mutex
	fatal   error

	framesSent, framesRecv atomic.Int64
	bytesSent, bytesRecv   atomic.Int64
	creditFrames           atomic.Int64
	dataBatches            atomic.Int64
	// unexpectedFrames counts stray frames tolerated by handleFrame
	// (unknown task, stale key, non-positive credit count) — skipped, not
	// connection-fatal, but counted so the condition is diagnosable.
	unexpectedFrames atomic.Int64
	dials            atomic.Int64 // outbound data connections established
	// reconnects counts inbound handshakes from a peer this node had
	// already accepted a connection from within the attempt — a peer
	// re-dialing mid-attempt, which the one-conn-per-pair discipline makes
	// exceptional and worth surfacing.
	reconnects   atomic.Int64
	encodeErrors atomic.Int64 // local gob-encode failures in sendFrame

	// live mirrors the counters above into the job's Telemetry registry as
	// they happen, so a scrape mid-run sees the wire moving instead of
	// zeros until exportMetrics folds the totals at attempt teardown. All
	// pointers are nil when the job runs without a hub.
	live netLive
	// peerStats tracks frames/bytes per (local node, peer) pair by
	// direction and frame type, feeding the net_peer_frames/net_peer_bytes
	// gauge families. Immutable after construction (built from the same
	// cross census as the grantors); per-cell updates are atomic.
	peerStats map[peerKey]*peerWireStats
	// creditWaitH observes how long remote senders block acquiring wire
	// credits from their mirror gates (the network transport's
	// backpressure signal); grantWaitH observes the receiver-side dual —
	// how long grantors block acquiring from the task's real gate. Both
	// are non-nil: they land in the hub when one is attached (live
	// /metrics) and in a standalone histogram otherwise (worker reports
	// still carry the snapshot).
	creditWaitH *telemetry.Histogram
	grantWaitH  *telemetry.Histogram
	// creditWaitBase is creditWaitH's state at attempt construction. The
	// hub histogram is process-cumulative across attempts; subtracting the
	// base keeps per-attempt exports (result registry, worker reports)
	// scoped to this attempt.
	creditWaitBase telemetry.HistogramSnapshot
}

// creditWaitSnapshot returns this attempt's credit-wait distribution.
func (na *netAttempt) creditWaitSnapshot() telemetry.HistogramSnapshot {
	return na.creditWaitH.Snapshot().Sub(na.creditWaitBase)
}

// netLive holds the pre-resolved registry counters the wire hot paths
// increment — resolved once at attempt construction so the per-frame cost
// is one atomic add, no map lookups or locks.
type netLive struct {
	framesSent, framesRecv *metrics.Counter
	bytesSent, bytesRecv   *metrics.Counter
	creditFrames           *metrics.Counter
	dataBatches            *metrics.Counter
	unexpectedFrames       *metrics.Counter
	dials                  *metrics.Counter
	reconnects             *metrics.Counter
	encodeErrors           *metrics.Counter
}

// liveInc increments a live counter that may be absent (no Telemetry hub).
func liveInc(c *metrics.Counter, n int64) {
	if c != nil {
		c.Inc(n)
	}
}

// peerKey identifies one direction-of-view pair: a local node and the
// remote peer it exchanges frames with.
type peerKey struct{ local, peer int }

// peerWireStats counts one (local node, peer) pair's traffic by direction
// and frame type. Indexed by the frame type byte (ReadFrame guarantees
// types below frameTypeEnd).
type peerWireStats struct {
	sentFrames [frameTypeEnd]atomic.Int64
	recvFrames [frameTypeEnd]atomic.Int64
	sentBytes  [frameTypeEnd]atomic.Int64
	recvBytes  [frameTypeEnd]atomic.Int64
}

// note records one frame of `n` wire bytes. Nil-receiver safe: frames
// toward a peer outside the census (strays) are still counted in the
// aggregate counters, just not per-peer.
func (ps *peerWireStats) note(sent bool, typ byte, n int64) {
	if ps == nil {
		return
	}
	if int(typ) >= int(frameTypeEnd) {
		typ = frameInvalid
	}
	if sent {
		ps.sentFrames[typ].Add(1)
		ps.sentBytes[typ].Add(n)
	} else {
		ps.recvFrames[typ].Add(1)
		ps.recvBytes[typ].Add(n)
	}
}

// dataFrameTypes are the frame types that legitimately appear on a data
// connection — the set the per-peer gauge families enumerate.
var dataFrameTypes = []byte{FrameDataHello, FrameData, FrameBarrier, FrameEOF, FrameCredit, FrameCreditReq}

// frameTypeName names a frame type for metric labels.
func frameTypeName(t byte) string {
	switch t {
	case FrameDataHello:
		return "hello"
	case FrameData:
		return "data"
	case FrameBarrier:
		return "barrier"
	case FrameEOF:
		return "eof"
	case FrameCredit:
		return "credit"
	case FrameCreditReq:
		return "credit_req"
	default:
		return "other"
	}
}

func newNetAttempt(a *attempt, byID map[dataflow.TaskID]*taskRuntime, cross []crossChan) (*netAttempt, error) {
	na := &netAttempt{
		a:       a,
		nodes:   make(map[int]*netNode),
		addrs:   make(map[int]string),
		started: make(chan struct{}),
		stop:    make(chan struct{}),
	}
	bind := "127.0.0.1:0"
	var locals []int
	if a.dist != nil {
		locals = []int{a.dist.Local}
		if a.dist.DataBind != "" {
			bind = a.dist.DataBind
		}
	} else {
		for i := range a.j.spec.Workers {
			locals = append(locals, i)
		}
	}
	for _, w := range locals {
		ln, err := net.Listen("tcp", bind)
		if err != nil {
			na.shutdown()
			return nil, fmt.Errorf("engine: worker %d data listener: %w", w, err)
		}
		node := &netNode{
			na:      na,
			worker:  w,
			ln:      ln,
			conns:   make(map[int]*peerConn),
			tasks:   make(map[dataflow.TaskID]*taskRuntime),
			mirrors: make(map[dataflow.TaskID]*creditGate),
			grants:  make(map[grantKey]*grantor),
		}
		for t, rt := range byID {
			if rt.worker == w {
				node.tasks[t] = rt
			}
		}
		na.nodes[w] = node
		if a.dist == nil {
			na.addrs[w] = ln.Addr().String()
		}
	}
	// Census: receiver-side grantors (one per sending worker per task) and
	// sender-side mirror gates (one per remote task fed from this worker).
	// Mirrors start empty — every credit a sender spends was granted by the
	// receiver, so the in-flight bound is the receiver's gate capacity.
	for _, cc := range cross {
		if node := na.nodes[cc.to]; node != nil {
			k := grantKey{task: cc.task, from: cc.from}
			g := node.grants[k]
			if g == nil {
				rt := byID[cc.task]
				if rt == nil || rt.gate == nil {
					na.shutdown()
					return nil, fmt.Errorf("engine: network transport: no gate for local task %v", cc.task)
				}
				g = &grantor{
					task:   cc.task,
					from:   cc.from,
					gate:   rt.gate,
					reqSig: make(chan struct{}, 1),
					quit:   make(chan struct{}),
					cancel: make(chan struct{}),
				}
				node.grants[k] = g
			}
			g.chansLeft++
		}
		if node := na.nodes[cc.from]; node != nil {
			if node.mirrors[cc.task] == nil {
				node.mirrors[cc.task] = newCreditGate(0)
			}
		}
	}
	// Per-peer traffic cells, from the same census: each local node gets
	// one cell per peer it exchanges frames with, in either direction.
	na.peerStats = make(map[peerKey]*peerWireStats)
	for _, cc := range cross {
		for _, pk := range []peerKey{{local: cc.from, peer: cc.to}, {local: cc.to, peer: cc.from}} {
			if pk.local != pk.peer && na.nodes[pk.local] != nil && na.peerStats[pk] == nil {
				na.peerStats[pk] = &peerWireStats{}
			}
		}
	}
	tel := a.j.opts.Telemetry
	na.creditWaitH = hubOrLocalHistogram(tel, "net.credit_wait_seconds")
	na.grantWaitH = hubOrLocalHistogram(tel, "net.grant_wait_seconds")
	na.creditWaitBase = na.creditWaitH.Snapshot()
	if reg := tel.Registry(); reg != nil {
		na.live = netLive{
			framesSent:       reg.Counter("net.frames_sent"),
			framesRecv:       reg.Counter("net.frames_received"),
			bytesSent:        reg.Counter("net.bytes_sent"),
			bytesRecv:        reg.Counter("net.bytes_received"),
			creditFrames:     reg.Counter("net.credit_frames"),
			dataBatches:      reg.Counter("net.data_batches"),
			unexpectedFrames: reg.Counter("net.unexpected_frames"),
			dials:            reg.Counter("net.dials"),
			reconnects:       reg.Counter("net.reconnects"),
			encodeErrors:     reg.Counter("net.encode_errors"),
		}
	}
	for _, node := range na.nodes {
		na.wg.Add(1)
		go node.acceptLoop()
		for _, g := range node.grants {
			na.wg.Add(2)
			go g.watch(na)
			go g.run(node)
		}
	}
	na.registerGauges()
	return na, nil
}

// hubOrLocalHistogram returns the hub's named histogram, or a standalone
// default-layout histogram when the job runs without Telemetry — the wire
// always measures its waits (worker reports ship the snapshot) even when
// nothing serves them live.
func hubOrLocalHistogram(tel *telemetry.Telemetry, name string) *telemetry.Histogram {
	//capslint:allow metricnames names are literal at every hubOrLocalHistogram call site
	if h := tel.Histogram(name); h != nil {
		return h
	}
	h, err := telemetry.NewHistogram(telemetry.DefaultLatencyOptions())
	if err != nil {
		// DefaultLatencyOptions always validates; guard anyway.
		panic(err)
	}
	return h
}

// registerGauges exports per-peer wire gauges: records granted to a sending
// worker but not yet arrived ("in flight on the wire toward this node").
func (na *netAttempt) registerGauges() {
	tel := na.a.j.opts.Telemetry
	if tel == nil {
		return
	}
	workerID := func(w int) string { return na.a.j.spec.Workers[w].ID }
	for _, node := range na.nodes {
		byFrom := make(map[int][]*grantor)
		for k, g := range node.grants {
			byFrom[k.from] = append(byFrom[k.from], g)
		}
		for from, gs := range byFrom {
			gs := gs
			tel.SetGaugeFunc("net_peer_inflight_records",
				map[string]string{"from": workerID(from), "to": workerID(node.worker)},
				func() float64 {
					var sum int64
					for _, g := range gs {
						sum += g.outstanding.Load()
					}
					return float64(sum)
				})
		}
	}
	// Per-peer traffic by direction and frame type. Gauge funcs read the
	// same atomic cells the hot paths bump, so the exposition is live.
	for pk, ps := range na.peerStats {
		pk, ps := pk, ps
		labels := map[string]string{"local": workerID(pk.local), "peer": workerID(pk.peer)}
		for _, typ := range dataFrameTypes {
			typ := typ
			for _, dir := range []string{"sent", "received"} {
				dir := dir
				l := map[string]string{"local": labels["local"], "peer": labels["peer"], "dir": dir, "type": frameTypeName(typ)}
				tel.SetGaugeFunc("net_peer_frames", l, func() float64 {
					if dir == "sent" {
						return float64(ps.sentFrames[typ].Load())
					}
					return float64(ps.recvFrames[typ].Load())
				})
				tel.SetGaugeFunc("net_peer_bytes", l, func() float64 {
					if dir == "sent" {
						return float64(ps.sentBytes[typ].Load())
					}
					return float64(ps.recvBytes[typ].Load())
				})
			}
		}
	}
	for _, node := range na.nodes {
		node := node
		// Total records/markers parked in this node's delivery pumps —
		// wire-side inbox depth, the receiver half of backpressure.
		tel.SetGaugeFunc("net_pump_queue_depth",
			map[string]string{"worker": workerID(node.worker)},
			func() float64 {
				node.dmu.Lock()
				pumps := make([]*chanPump, 0, len(node.pumps))
				for _, p := range node.pumps {
					pumps = append(pumps, p)
				}
				node.dmu.Unlock()
				var n int
				for _, p := range pumps {
					p.mu.Lock()
					n += len(p.q)
					p.mu.Unlock()
				}
				return float64(n)
			})
		// Receiver-side credit gates (capacity left for local tasks fed
		// over the wire) and sender-side mirror gates (granted credit
		// pooled toward each remote task).
		for t, rt := range node.tasks {
			if rt.gate == nil {
				continue
			}
			gate := rt.gate
			tel.SetGaugeFunc("net_credit_gate_avail",
				map[string]string{"task": t.String(), "worker": workerID(node.worker)},
				func() float64 { return float64(gate.avail.Load()) })
		}
		for t, m := range node.mirrors {
			m := m
			tel.SetGaugeFunc("net_mirror_credit_avail",
				map[string]string{"task": t.String(), "worker": workerID(node.worker)},
				func() float64 { return float64(m.avail.Load()) })
		}
	}
}

// start unblocks the grantors; peer addresses must be complete by now.
func (na *netAttempt) start() {
	na.startOnce.Do(func() { close(na.started) })
}

// setPeers installs peer data addresses (distributed attempts learn them
// from the coordinator after every worker has bound its listener).
func (na *netAttempt) setPeers(addrs map[int]string) {
	na.addrMu.Lock()
	defer na.addrMu.Unlock()
	for w, a := range addrs {
		na.addrs[w] = a
	}
}

func (na *netAttempt) addrFor(w int) (string, error) {
	na.addrMu.RLock()
	defer na.addrMu.RUnlock()
	a, ok := na.addrs[w]
	if !ok {
		return "", fmt.Errorf("engine: no data address for worker %d", w)
	}
	return a, nil
}

// shutdown closes listeners and connections and waits for every wire
// goroutine. Callers must ensure no task goroutine is still sending.
func (na *netAttempt) shutdown() {
	na.stopOnce.Do(func() { close(na.stop) })
	for _, node := range na.nodes {
		if node.ln != nil {
			node.ln.Close()
		}
		node.mu.Lock()
		conns := make([]*peerConn, 0, len(node.conns))
		for _, pc := range node.conns {
			conns = append(conns, pc)
		}
		inbound := node.inbound
		node.mu.Unlock()
		for _, pc := range conns {
			pc.closeNow()
		}
		for _, c := range inbound {
			c.Close()
		}
	}
	na.wg.Wait()
}

// noteSendFailure records a write failure toward a peer. During teardown it
// is noise; mid-run it means the peer died — a distributed worker reports
// it to the coordinator (once per peer), which owns the recovery decision.
func (na *netAttempt) noteSendFailure(peer int, err error) {
	select {
	case <-na.stop:
		return
	default:
	}
	na.pdMu.Lock()
	if na.peerDown == nil {
		na.peerDown = make(map[int]bool)
	}
	first := !na.peerDown[peer]
	na.peerDown[peer] = true
	na.pdMu.Unlock()
	if first && na.a.dist != nil && na.a.dist.OnPeerDown != nil {
		na.a.dist.OnPeerDown(peer, err)
	}
}

// failFatal records the first unrecoverable wire error and aborts the
// attempt; attempt.run returns it once the task goroutines drain.
func (na *netAttempt) failFatal(err error) {
	na.fatalMu.Lock()
	if na.fatal == nil {
		na.fatal = err
	}
	na.fatalMu.Unlock()
	na.a.doAbort()
}

// noteUnexpected counts one tolerated stray frame.
func (na *netAttempt) noteUnexpected() {
	na.unexpectedFrames.Add(1)
	liveInc(na.live.unexpectedFrames, 1)
}

// fatalErr returns the error recorded by failFatal, if any.
func (na *netAttempt) fatalErr() error {
	na.fatalMu.Lock()
	defer na.fatalMu.Unlock()
	return na.fatal
}

// exportMetrics folds the wire counters into a result registry.
func (na *netAttempt) exportMetrics(reg *metrics.Registry) {
	reg.Counter("net.frames_sent").Inc(na.framesSent.Load())
	reg.Counter("net.frames_received").Inc(na.framesRecv.Load())
	reg.Counter("net.bytes_sent").Inc(na.bytesSent.Load())
	reg.Counter("net.bytes_received").Inc(na.bytesRecv.Load())
	reg.Counter("net.credit_frames").Inc(na.creditFrames.Load())
	reg.Counter("net.data_batches").Inc(na.dataBatches.Load())
	reg.Counter("net.unexpected_frames").Inc(na.unexpectedFrames.Load())
	reg.Counter("net.dials").Inc(na.dials.Load())
	reg.Counter("net.reconnects").Inc(na.reconnects.Load())
	reg.Counter("net.encode_errors").Inc(na.encodeErrors.Load())
	exportCreditWait(reg, na.creditWaitSnapshot())
}

// exportCreditWait folds a credit-wait distribution into a result registry:
// the observation count plus the p99 in integer microseconds (the `dist:`
// summary line and its parser deal in integers).
func exportCreditWait(reg *metrics.Registry, snap telemetry.HistogramSnapshot) {
	reg.Counter("net.credit_waits").Inc(snap.Count)
	if snap.Count > 0 {
		reg.Gauge("net.credit_wait_p99_us").Set(float64(int64(snap.Quantile(0.99) * 1e6)))
	} else {
		reg.Gauge("net.credit_wait_p99_us").Set(0)
	}
}

// netNode is one worker's wire endpoint.
type netNode struct {
	na     *netAttempt
	worker int
	ln     net.Listener

	mu       sync.Mutex
	conns    map[int]*peerConn // outbound, by peer worker
	inbound  []net.Conn
	seenFrom map[int]bool // peers that completed an inbound handshake; guarded by mu

	// Immutable after construction; read by reader goroutines.
	tasks   map[dataflow.TaskID]*taskRuntime
	mirrors map[dataflow.TaskID]*creditGate
	grants  map[grantKey]*grantor

	// Per-channel delivery pumps, created lazily by connection readers.
	dmu   sync.Mutex
	pumps map[chanKey]*chanPump
}

// chanKey names one receiver-side channel: a specific input index and
// channel slot of a local task.
type chanKey struct {
	task dataflow.TaskID
	in   int
	ch   int
}

type grantKey struct {
	task dataflow.TaskID
	from int
}

// peerConn is one outbound connection: lazily dialed, writes serialized.
// The conn pointer is separately synchronized so teardown can close it
// (unblocking a stuck writer) without taking the write lock.
type peerConn struct {
	wmu  sync.Mutex // serializes dial + write; guards err
	err  error
	conn atomic.Pointer[net.TCPConn]
}

func (pc *peerConn) closeNow() {
	if c := pc.conn.Load(); c != nil {
		c.Close()
	}
}

// connTo returns the (dialing if needed) connection to a peer worker.
func (n *netNode) connTo(peer int) (*peerConn, error) {
	n.mu.Lock()
	pc := n.conns[peer]
	if pc == nil {
		pc = &peerConn{}
		n.conns[peer] = pc
	}
	n.mu.Unlock()
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	if pc.err != nil {
		return nil, pc.err
	}
	if pc.conn.Load() == nil {
		if err := n.dialLocked(pc, peer); err != nil {
			pc.err = err
			return nil, err
		}
	}
	return pc, nil
}

func (n *netNode) dialLocked(pc *peerConn, peer int) error {
	addr, err := n.na.addrFor(peer)
	if err != nil {
		return err
	}
	c, err := net.DialTimeout("tcp", addr, netDialTimeout)
	if err != nil {
		return err
	}
	tc, ok := c.(*net.TCPConn)
	if !ok {
		c.Close()
		return fmt.Errorf("engine: dial %s: not a TCP connection", addr)
	}
	payload, err := EncodePayload(wireHello{From: n.worker, Attempt: n.na.a.no})
	if err != nil {
		tc.Close()
		return err
	}
	if err := WriteFrame(tc, Frame{Type: FrameDataHello, Payload: payload}); err != nil {
		tc.Close()
		return err
	}
	pc.conn.Store(tc)
	n.na.dials.Add(1)
	liveInc(n.na.live.dials, 1)
	n.na.peerStats[peerKey{local: n.worker, peer: peer}].
		note(true, FrameDataHello, int64(frameHeaderLen+1+len(payload)+frameTrailerLen))
	return nil
}

// sendFrame encodes body and writes one frame to the peer.
func (n *netNode) sendFrame(peer int, typ byte, body any) error {
	payload, err := EncodePayload(body)
	if err != nil {
		n.na.encodeErrors.Add(1)
		liveInc(n.na.live.encodeErrors, 1)
		return err
	}
	pc, err := n.connTo(peer)
	if err != nil {
		return err
	}
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	if pc.err != nil {
		return pc.err
	}
	c := pc.conn.Load()
	if err := WriteFrame(c, Frame{Type: typ, Payload: payload}); err != nil {
		pc.err = err
		c.Close()
		return err
	}
	n.na.framesSent.Add(1)
	sz := int64(frameHeaderLen + 1 + len(payload) + frameTrailerLen)
	n.na.bytesSent.Add(sz)
	liveInc(n.na.live.framesSent, 1)
	liveInc(n.na.live.bytesSent, sz)
	n.na.peerStats[peerKey{local: n.worker, peer: peer}].note(true, typ, sz)
	return nil
}

// acceptLoop serves inbound connections until the listener closes.
func (n *netNode) acceptLoop() {
	defer n.na.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		n.inbound = append(n.inbound, c)
		n.mu.Unlock()
		n.na.wg.Add(1)
		go n.serveConn(c)
	}
}

// serveConn dispatches one inbound connection's frames: data, markers and
// credit grants. A handshake from a different attempt is stale — the dialer
// outlived a recovery — and the connection is dropped before any frame of
// it can contaminate this attempt.
func (n *netNode) serveConn(c net.Conn) {
	defer n.na.wg.Done()
	defer c.Close()
	f, err := ReadFrame(c)
	if err != nil || f.Type != FrameDataHello {
		return
	}
	var hello wireHello
	if err := DecodePayload(f.Payload, &hello); err != nil || hello.Attempt != n.na.a.no {
		return
	}
	from := hello.From
	n.mu.Lock()
	if n.seenFrom == nil {
		n.seenFrom = make(map[int]bool)
	}
	if n.seenFrom[from] {
		n.na.reconnects.Add(1)
		liveInc(n.na.live.reconnects, 1)
	}
	n.seenFrom[from] = true
	n.mu.Unlock()
	ps := n.na.peerStats[peerKey{local: n.worker, peer: from}]
	ps.note(false, FrameDataHello, int64(frameHeaderLen+1+len(f.Payload)+frameTrailerLen))
	for {
		f, err := ReadFrame(c)
		if err != nil {
			// Read errors are teardown or peer death; failure detection is
			// the coordinator's job — control-plane liveness plus the
			// senders' PEERDOWN reports when their writes start failing.
			return
		}
		n.na.framesRecv.Add(1)
		sz := int64(frameHeaderLen + 1 + len(f.Payload) + frameTrailerLen)
		n.na.bytesRecv.Add(sz)
		liveInc(n.na.live.framesRecv, 1)
		liveInc(n.na.live.bytesRecv, sz)
		ps.note(false, f.Type, sz)
		if !n.handleFrame(from, f) {
			return
		}
	}
}

// handleFrame processes one inbound frame. Returning false severs the
// connection — reserved for undecodable payloads, where the stream's
// integrity itself is in doubt. A decodable frame with an unexpected key
// (unknown task, no matching grantor/mirror, non-positive credit count) is
// a stray — stale, misrouted, or from a buggy peer — and is counted and
// skipped instead: one bad frame must not sever every channel multiplexed
// on the shared connection.
func (n *netNode) handleFrame(from int, f Frame) bool {
	switch f.Type {
	case FrameCredit:
		var cr wireCredit
		if err := DecodePayload(f.Payload, &cr); err != nil {
			return false
		}
		mirror := n.mirrors[cr.Task.taskID()]
		if mirror == nil || cr.N <= 0 {
			n.na.noteUnexpected()
			return true
		}
		mirror.release(cr.N)
		return true
	case FrameCreditReq:
		var cr wireCredit
		if err := DecodePayload(f.Payload, &cr); err != nil {
			return false
		}
		g := n.grants[grantKey{task: cr.Task.taskID(), from: from}]
		if g == nil || cr.N <= 0 {
			n.na.noteUnexpected()
			return true
		}
		// Hand off to the grantor goroutine: its gate acquire may block, and
		// this reader must keep draining data frames (the task consuming them
		// is what returns credits to the gate).
		g.requested(cr.N)
		return true
	case FrameData:
		var wb wireBatch
		if err := DecodePayload(f.Payload, &wb); err != nil {
			return false
		}
		task := wb.Task.taskID()
		if n.tasks[task] == nil {
			n.na.noteUnexpected()
			return true
		}
		if g := n.grants[grantKey{task: task, from: from}]; g != nil {
			g.consumed(int64(len(wb.Entries)))
		}
		entries := getBatch(len(wb.Entries))
		for _, e := range wb.Entries {
			entries = append(entries, batchEntry{
				rec:    Record{Key: e.Key, Value: e.Value, Time: e.Time, Size: e.Size},
				ingest: e.Ingest,
			})
		}
		n.dispatch(task, message{in: wb.In, ch: wb.Ch, batch: entries})
		return true
	case FrameBarrier, FrameEOF:
		var m wireMark
		if err := DecodePayload(f.Payload, &m); err != nil {
			return false
		}
		task := m.Task.taskID()
		if n.tasks[task] == nil {
			n.na.noteUnexpected()
			return true
		}
		msg := message{in: m.In, ch: m.Ch}
		if m.EOF {
			msg.eof = true
		} else {
			msg.barrier = true
			msg.epoch = m.Epoch
		}
		n.dispatch(task, msg)
		if m.EOF {
			// All data from `from` on this channel has arrived (TCP FIFO,
			// and the pump preserves arrival order); when every channel is
			// done the grantor retires and returns its unconsumed grants
			// to the gate.
			if g := n.grants[grantKey{task: task, from: from}]; g != nil {
				g.chanDone()
			}
		}
		return true
	default:
		// A foreign frame type (e.g. a control-plane frame that strayed onto
		// a data connection) passed the CRC, so framing is intact; skip it.
		n.na.noteUnexpected()
		return true
	}
}

// dispatch hands one message to the per-channel pump, which delivers it
// into the task's inbox in arrival order. The connection reader must NEVER
// block here: one conn multiplexes many channels plus credit requests, and
// a reader stuck on one task's full inbox would stall credit grants for
// every other task behind it — a head-of-line deadlock the in-memory
// engine cannot have, because there every blocked sender is its own
// goroutine. The pump replays exactly that: a dedicated goroutine per
// receiver channel that blocks on the inbox like an in-memory sender.
func (n *netNode) dispatch(task dataflow.TaskID, msg message) {
	rt := n.tasks[task] // non-nil: handleFrame verifies before dispatching
	key := chanKey{task: task, in: msg.in, ch: msg.ch}
	n.dmu.Lock()
	p := n.pumps[key]
	if p == nil {
		if n.pumps == nil {
			n.pumps = make(map[chanKey]*chanPump)
		}
		p = &chanPump{n: n, rt: rt, sig: make(chan struct{}, 1)}
		n.pumps[key] = p
		n.na.wg.Add(1)
		go p.run()
	}
	n.dmu.Unlock()
	p.push(msg)
}

// chanPump delivers one receiver channel's messages into the task inbox.
// The queue is unbounded in form but bounded in fact: data records queued
// here hold gate credits the grantor acquired before they were sent, so at
// most ChannelCapacity records (plus credit-free barrier/EOF markers) can
// be pending per task across all of its channels.
type chanPump struct {
	n   *netNode
	rt  *taskRuntime
	mu  sync.Mutex
	q   []message
	sig chan struct{}
}

func (p *chanPump) push(msg message) {
	p.mu.Lock()
	p.q = append(p.q, msg)
	p.mu.Unlock()
	select {
	case p.sig <- struct{}{}:
	default:
	}
}

func (p *chanPump) run() {
	defer p.n.na.wg.Done()
	for {
		p.mu.Lock()
		var msg message
		ok := len(p.q) > 0
		if ok {
			msg = p.q[0]
			p.q[0] = message{}
			p.q = p.q[1:]
			if len(p.q) == 0 {
				p.q = nil // let the drained backing array go
			}
		}
		p.mu.Unlock()
		if !ok {
			select {
			case <-p.sig:
				continue
			case <-p.n.na.a.abort:
				return
			case <-p.n.na.stop:
				return
			}
		}
		select {
		case p.rt.inbox <- msg:
		case <-p.n.na.a.abort:
			return
		case <-p.n.na.stop:
			return
		}
	}
}

// grantor acquires credits from a local task's gate on behalf of one
// remote sending worker, on demand: each FrameCreditReq names how many
// records the sender's pending batch needs, the grantor blocks acquiring
// exactly that much, and grants it back over the wire.
type grantor struct {
	task dataflow.TaskID
	from int
	gate *creditGate

	// reqs is a FIFO of credit-request sizes, one entry per FrameCreditReq.
	// Requests are granted strictly one at a time, in arrival order — NOT
	// coalesced into a single acquire. Several of the sending worker's tasks
	// can feed this task through one shared mirror gate, and their
	// concurrent requests can sum past the gate's capacity; a merged
	// acquire for that sum could never be satisfied and would deadlock the
	// cluster. Individually each request is at most BatchSize <= capacity,
	// so granted one by one (and chunked to capacity as a backstop) every
	// acquire is satisfiable.
	reqMu sync.Mutex
	reqs  []int64

	outstanding atomic.Int64  // granted, data not yet arrived
	reqSig      chan struct{} // cap-1 signal: a request arrived
	quit        chan struct{} // closed when every channel from `from` EOF'd
	quitOnce    sync.Once
	cancel      chan struct{} // closed by watch() on quit or teardown
	chansLeft   int64         // touched only by the serving reader goroutine
}

// requested is called by the reader when a credit request arrives.
func (g *grantor) requested(n int64) {
	g.reqMu.Lock()
	g.reqs = append(g.reqs, n)
	g.reqMu.Unlock()
	select {
	case g.reqSig <- struct{}{}:
	default:
	}
}

// nextReq pops the oldest pending request size, if any.
func (g *grantor) nextReq() (int64, bool) {
	g.reqMu.Lock()
	defer g.reqMu.Unlock()
	if len(g.reqs) == 0 {
		return 0, false
	}
	n := g.reqs[0]
	g.reqs = g.reqs[1:]
	if len(g.reqs) == 0 {
		g.reqs = nil // let the drained backing array go
	}
	return n, true
}

// consumed is called by the reader when a data batch arrives.
func (g *grantor) consumed(n int64) {
	g.outstanding.Add(-n)
}

// chanDone is called by the reader when a channel delivers EOF.
func (g *grantor) chanDone() {
	g.chansLeft--
	if g.chansLeft == 0 {
		g.quitOnce.Do(func() { close(g.quit) })
	}
}

// watch merges the grantor's two exit signals into the single cancel
// channel its gate acquisition blocks on.
func (g *grantor) watch(na *netAttempt) {
	defer na.wg.Done()
	defer close(g.cancel)
	select {
	case <-g.quit:
	case <-na.stop:
	}
}

func (g *grantor) run(n *netNode) {
	defer n.na.wg.Done()
	na := n.na
	select {
	case <-na.started:
	case <-na.stop:
		return
	}
	for {
		want, ok := g.nextReq()
		if !ok {
			select {
			case <-g.reqSig:
				continue
			case <-na.stop:
				return
			case <-g.quit:
				// The sender EOF'd every channel: grants still in flight can
				// never be spent — hand them back to the gate. (All data the
				// sender shipped precedes its EOFs on the TCP stream, so the
				// reader has already run consumed() for it.)
				g.gate.release(g.outstanding.Load())
				return
			}
		}
		// Grant this one request, chunked to the gate's capacity so no
		// single acquire can exceed what the gate could ever hold. Partial
		// grants are safe: the sender's mirror gate pools them until the
		// whole batch's worth has arrived.
		for want > 0 {
			chunk := want
			if g.gate.capacity > 0 && chunk > g.gate.capacity {
				chunk = g.gate.capacity
			}
			t0 := na.a.clk()
			ok, stalled := g.gate.acquire(chunk, g.cancel)
			if stalled && ok {
				na.grantWaitH.Observe(na.a.clk.Since(t0).Seconds())
			}
			if !ok {
				// Canceled: on quit the credits we still hold go back; on
				// teardown the gate dies with the attempt.
				select {
				case <-g.quit:
					g.gate.release(g.outstanding.Load())
				default:
				}
				return
			}
			g.outstanding.Add(chunk)
			if err := n.sendFrame(g.from, FrameCredit, wireCredit{Task: wireTaskOf(g.task), N: chunk}); err != nil {
				// Peer unreachable: return the grant and retire. If the peer is
				// truly dead the coordinator aborts the attempt; if it already
				// finished cleanly these credits were never needed.
				g.outstanding.Add(-chunk)
				g.gate.release(chunk)
				return
			}
			na.creditFrames.Add(1)
			liveInc(na.live.creditFrames, 1)
			want -= chunk
		}
	}
}

// netTarget ships one sender's batches and markers to a task on a peer
// worker. Credits were already acquired from the mirror gate by
// flushTarget before ship is called.
type netTarget struct {
	node *netNode
	peer int
	task dataflow.TaskID
}

func (t *netTarget) request(rt *taskRuntime, n int) bool {
	cr := wireCredit{Task: wireTaskOf(t.task), N: int64(n)}
	if err := t.node.sendFrame(t.peer, FrameCreditReq, cr); err != nil {
		return t.failSend(rt, err)
	}
	return true
}

func (t *netTarget) ship(rt *taskRuntime, inIdx, ch int, entries []batchEntry) bool {
	wb := wireBatch{Task: wireTaskOf(t.task), In: inIdx, Ch: ch, Entries: make([]wireEntry, len(entries))}
	for i, e := range entries {
		wb.Entries[i] = wireEntry{
			Key:    e.rec.Key,
			Value:  e.rec.Value,
			Time:   e.rec.Time,
			Size:   e.rec.Size,
			Ingest: e.ingest,
		}
	}
	if err := t.node.sendFrame(t.peer, FrameData, wb); err != nil {
		return t.failSend(rt, err)
	}
	t.node.na.dataBatches.Add(1)
	liveInc(t.node.na.live.dataBatches, 1)
	return true
}

func (t *netTarget) control(rt *taskRuntime, inIdx, ch int, tmpl message) bool {
	m := wireMark{Task: wireTaskOf(t.task), In: inIdx, Ch: ch, Epoch: tmpl.epoch, EOF: tmpl.eof}
	if err := t.node.sendFrame(t.peer, tmplFrameType(tmpl), m); err != nil {
		return t.failSend(rt, err)
	}
	return true
}

// dataPlaneEscalation bounds how long a sender blocked on a failed peer
// send waits for coordinator-driven recovery before failing the attempt
// itself. In a supervised cluster the coordinator acts on the PEERDOWN
// report (or on the peer's own control-plane death) well inside this
// window; the timeout is the backstop for the cases nobody else can see —
// an in-process run with no coordinator, or a coordinator that never
// learns of a data-plane-only failure. Package-level so tests can shorten
// it.
var dataPlaneEscalation = 30 * time.Second

// failSend handles a dead peer: report it, then wait for the attempt to be
// torn down. Completing the task as if the send had happened would be
// silent data loss; recovery is the coordinator's decision, not the
// sender's. If no abort arrives within dataPlaneEscalation the attempt is
// failed with a visible error instead of hanging forever.
func (t *netTarget) failSend(rt *taskRuntime, err error) bool {
	na := t.node.na
	na.noteSendFailure(t.peer, err)
	select {
	case <-rt.att.abort:
	case <-na.stop:
	case <-time.After(dataPlaneEscalation):
		na.failFatal(fmt.Errorf("engine: data-plane send to worker %d failed and no recovery arrived within %v: %w",
			t.peer, dataPlaneEscalation, err))
	}
	return false
}

func tmplFrameType(tmpl message) byte {
	if tmpl.eof {
		return FrameEOF
	}
	return FrameBarrier
}
