package engine

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzFrameRoundTrip proves the codec's two contracts: every frame the
// encoder can produce decodes back to itself, and no mangled input —
// truncated, bit-flipped, oversized, or garbage — panics or allocates
// past the payload cap.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(FrameData), []byte("hello"))
	f.Add(byte(FrameCredit), []byte{0, 1, 2, 3, 255})
	f.Add(byte(FrameHeartbeat), []byte{})
	f.Add(byte(FrameSnapshot), bytes.Repeat([]byte{0xAB}, 512))
	f.Add(byte(0), []byte("invalid type"))
	f.Add(byte(250), []byte("unknown type"))
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		enc := AppendFrame(nil, Frame{Type: typ, Payload: payload})

		dec, n, err := DecodeFrame(enc)
		if typ == frameInvalid || typ >= frameTypeEnd {
			if err == nil {
				t.Fatalf("type %d decoded without error", typ)
			}
			return
		}
		if err != nil {
			t.Fatalf("decode(encode(x)): %v", err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if dec.Type != typ || !bytes.Equal(dec.Payload, payload) {
			t.Fatalf("round trip mismatch: got type %d payload %x", dec.Type, dec.Payload)
		}

		// Every strict prefix is a truncation error, never a panic.
		for i := 0; i < len(enc); i += 1 + len(enc)/16 {
			if _, _, err := DecodeFrame(enc[:i]); err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded cleanly", i, len(enc))
			}
		}

		// Any single-byte corruption is caught: length corruption yields a
		// truncation/cap/other error, body corruption fails the CRC.
		for i := 0; i < len(enc); i += 1 + len(enc)/16 {
			mut := bytes.Clone(enc)
			mut[i] ^= 0x41
			if _, _, err := DecodeFrame(mut); err == nil {
				t.Fatalf("corrupting byte %d went undetected", i)
			}
		}

		// The stream reader agrees with the buffer decoder.
		got, err := ReadFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if got.Type != typ || !bytes.Equal(got.Payload, payload) {
			t.Fatalf("ReadFrame mismatch: type %d payload %x", got.Type, got.Payload)
		}
	})
}

func TestFrameOversized(t *testing.T) {
	// A length prefix past the cap must be rejected before any body
	// allocation, in both the buffer and stream paths.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := DecodeFrame(huge); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized decode: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized read: %v", err)
	}
	if err := WriteFrame(io.Discard, Frame{Type: FrameData, Payload: make([]byte, MaxFramePayload+1)}); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestFrameStream(t *testing.T) {
	var buf bytes.Buffer
	want := []Frame{
		{Type: FrameDataHello, Payload: []byte("w1")},
		{Type: FrameData, Payload: bytes.Repeat([]byte{7}, 300)},
		{Type: FrameEOF, Payload: nil},
	}
	for _, f := range want {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != w.Type || !bytes.Equal(got.Payload, w.Payload) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("exhausted stream: %v", err)
	}
	// A stream cut mid-frame is an unexpected EOF, not a clean one.
	if err := WriteFrame(&buf, want[1]); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadFrame(bytes.NewReader(cut)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-frame cut: %v", err)
	}
}

func TestFramePayloadCodec(t *testing.T) {
	type body struct {
		Task  string
		Epoch int64
		Vals  []int64
	}
	in := body{Task: "win[2]", Epoch: 9, Vals: []int64{1, 2, 3}}
	b, err := EncodePayload(in)
	if err != nil {
		t.Fatal(err)
	}
	var out body
	if err := DecodePayload(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Task != in.Task || out.Epoch != in.Epoch || len(out.Vals) != 3 {
		t.Fatalf("payload round trip: %+v", out)
	}
}
