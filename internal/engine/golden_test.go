package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"capsys/internal/clock"
	"capsys/internal/dataflow"
)

// goldenJob builds the small reference pipeline for the golden test:
//
//	src(2, round-robin) -> tag(2, keys records) -> win(2, keyed count) -> sink(1)
//
// exercising rebalance routing, hash routing, stateful windows and barrier
// alignment. The injected clock makes every duration-derived stat zero, so
// the serialized JobResult is bit-stable across machines and schedules.
func goldenJob(t *testing.T, transport string, now clock.Clock) *Job {
	t.Helper()
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "tag", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 2, Selectivity: 0.05},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Value: i, Time: i}, true
			}), nil
		},
		"tag": func(*TaskContext) (any, error) {
			return NewMap(func(r Record) Record {
				r.Key = fmt.Sprintf("k%d", r.Value.(int64)%5)
				return r
			}), nil
		},
		"win": func(*TaskContext) (any, error) {
			return NewSlidingWindow(100, 100, countAgg, countResult), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 2), bigWorkers(2, 4), factories, JobOptions{
		RecordsPerSource: 200,
		SnapshotInterval: 50,
		Stateful:         map[dataflow.OperatorID]bool{"win": true},
		Transport:        transport,
		Now:              now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// goldenView is the serialized shape pinned by the golden file: the
// deterministic counter fields of a JobResult, tasks in canonical order.
type goldenView struct {
	Tasks []goldenTaskView `json:"tasks"`

	SinkRecords    int64 `json:"sink_records"`
	SourceRecords  int64 `json:"source_records"`
	SnapshotsTaken int64 `json:"snapshots_taken"`
	// ElapsedNS is zero by construction under the frozen clock; pinning it
	// proves the stats clock is fully injected.
	ElapsedNS int64 `json:"elapsed_ns"`
}

type goldenTaskView struct {
	Task       string `json:"task"`
	Worker     int    `json:"worker"`
	RecordsIn  int64  `json:"records_in"`
	RecordsOut int64  `json:"records_out"`
	BytesOut   int64  `json:"bytes_out"`
	BusyNS     int64  `json:"busy_ns"`
}

func goldenViewOf(res *JobResult) goldenView {
	ids := make([]dataflow.TaskID, 0, len(res.Tasks))
	for id := range res.Tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Op != ids[j].Op {
			return ids[i].Op < ids[j].Op
		}
		return ids[i].Index < ids[j].Index
	})
	v := goldenView{
		SinkRecords:    res.SinkRecords,
		SourceRecords:  res.SourceRecords,
		SnapshotsTaken: res.SnapshotsTaken,
		ElapsedNS:      res.Elapsed.Nanoseconds(),
	}
	for _, id := range ids {
		st := res.Tasks[id]
		v.Tasks = append(v.Tasks, goldenTaskView{
			Task:       id.String(),
			Worker:     st.Worker,
			RecordsIn:  st.RecordsIn,
			RecordsOut: st.RecordsOut,
			BytesOut:   st.BytesOut,
			BusyNS:     st.BusyTime.Nanoseconds(),
		})
	}
	return v
}

// TestJobResultGolden pins the task/operator stats of the reference
// pipeline under BOTH transports against one golden file: the transports
// must agree with each other and with the pinned history. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/engine -run TestJobResultGolden
//
// The frozen clock (clock.Fixed rather than clock.Step: engine tasks read
// the stats clock concurrently, and Step's mutating closure is neither
// goroutine-safe nor schedule-independent) zeroes every duration so only
// deterministic counters remain.
func TestJobResultGolden(t *testing.T) {
	frozen := clock.Fixed(time.Unix(1700000000, 0))
	views := make(map[string][]byte)
	for _, tr := range TransportNames() {
		res, err := goldenJob(t, tr, frozen).Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		b, err := json.MarshalIndent(goldenViewOf(res), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		views[tr] = append(b, '\n')
	}
	if !bytes.Equal(views[TransportUnary], views[TransportBatched]) {
		t.Errorf("transports diverge:\nunary:\n%s\nbatched:\n%s",
			views[TransportUnary], views[TransportBatched])
	}
	path := filepath.Join("testdata", "jobresult.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, views[TransportUnary], 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	for _, tr := range TransportNames() {
		if !bytes.Equal(views[tr], want) {
			t.Errorf("%s JobResult drifted from golden:\ngot:\n%s\nwant:\n%s", tr, views[tr], want)
		}
	}
}

// TestJobResultCountersClockIndependent runs the same pipeline under a
// monotonic Step clock (serialized behind a mutex — Step itself is not
// goroutine-safe) and checks the counter fields still match the frozen-clock
// run: timing stats may differ, processed work may not.
func TestJobResultCountersClockIndependent(t *testing.T) {
	frozen := clock.Fixed(time.Unix(1700000000, 0))
	base, err := goldenJob(t, TransportUnary, frozen).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	step := clock.Step(time.Unix(1700000000, 0), time.Microsecond)
	safeStep := clock.Clock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return step()
	})
	stepped, err := goldenJob(t, TransportUnary, safeStep).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalTaskCounters(stepped), canonicalTaskCounters(base); got != want {
		t.Errorf("counters depend on the injected clock:\nstep:\n%s\nfixed:\n%s", got, want)
	}
	if stepped.Elapsed <= 0 {
		t.Errorf("step clock produced non-positive Elapsed %v", stepped.Elapsed)
	}
}
