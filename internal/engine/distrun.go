package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"capsys/internal/dataflow"
	"capsys/internal/metrics"
	"capsys/internal/telemetry"
)

// This file is the engine's worker-side surface for distributed runs: a
// controller process (see internal/controller) deploys one Job per worker
// process, runs exactly that worker's tasks as an attempt over the network
// transport, and collects snapshots and final reports over the control
// plane. The types here are wire-safe mirrors of the engine's internal
// state (taskSnapshot has unexported fields; WireSnapshot crosses gob).

// WireTaskID is a task identity in wire-safe form.
type WireTaskID struct {
	Op    string
	Index int
}

func (w WireTaskID) String() string { return fmt.Sprintf("%s[%d]", w.Op, w.Index) }

func (w WireTaskID) taskID() dataflow.TaskID {
	return dataflow.TaskID{Op: dataflow.OperatorID(w.Op), Index: w.Index}
}

func wireTaskOf(t dataflow.TaskID) WireTaskID {
	return WireTaskID{Op: string(t.Op), Index: t.Index}
}

// WireSnapshot is one task's checkpoint contribution in wire-safe form.
// Workers ship these to the coordinator as they are taken — the
// coordinator's SnapshotStore models durable remote checkpoint storage, so
// snapshots survive worker loss — and receive back the restore set for a
// redeploy.
type WireSnapshot struct {
	Task       WireTaskID
	Epoch      int64
	RecordsIn  int64
	RecordsOut int64
	BytesOut   int64
	SrcOffset  int64
	RR         []int
	OpState    []byte
	NSState    []byte
}

func snapshotToWire(t dataflow.TaskID, s *taskSnapshot) WireSnapshot {
	return WireSnapshot{
		Task:       wireTaskOf(t),
		Epoch:      s.epoch,
		RecordsIn:  s.recordsIn,
		RecordsOut: s.recordsOut,
		BytesOut:   s.bytesOut,
		SrcOffset:  s.srcOffset,
		RR:         s.rr,
		OpState:    s.opState,
		NSState:    s.nsState,
	}
}

func wireToSnapshot(w WireSnapshot) (dataflow.TaskID, *taskSnapshot) {
	return w.Task.taskID(), &taskSnapshot{
		epoch:      w.Epoch,
		recordsIn:  w.RecordsIn,
		recordsOut: w.RecordsOut,
		bytesOut:   w.BytesOut,
		srcOffset:  w.SrcOffset,
		rr:         w.RR,
		opState:    w.OpState,
		nsState:    w.NSState,
	}
}

// CoordClient is the worker's view of the coordinator's checkpoint
// surface. The controller package implements it over control-plane frames.
type CoordClient interface {
	// EpochStarted reports the first barrier injection of an epoch by a
	// local source task.
	EpochStarted(epoch int64)
	// TaskSnapshot ships one task's checkpoint contribution.
	TaskSnapshot(s WireSnapshot)
}

// WorkerNetConfig configures a worker-local attempt of a distributed run.
type WorkerNetConfig struct {
	// Local is this process's worker index in the job's cluster spec.
	Local int
	// AttemptNo is the coordinator's 1-based attempt counter; data-plane
	// handshakes carry it so stale connections from a previous attempt are
	// rejected.
	AttemptNo int
	// DataBind is the data-plane listen address ("127.0.0.1:0" when empty).
	DataBind string
	// RestoreEpoch and Snapshots restore this attempt from a checkpoint:
	// Snapshots must hold every task's snapshot at RestoreEpoch (the
	// coordinator filters to the tasks placed on this worker).
	RestoreEpoch int64
	Snapshots    []WireSnapshot
	// Coord receives epoch starts and snapshots (nil drops them — only
	// sensible when SnapshotInterval is 0).
	Coord CoordClient
	// OnPeerDown is invoked (once per peer) when a data-plane send to a
	// peer worker fails mid-run.
	OnPeerDown func(worker int, err error)
}

// remoteCoordinator adapts CoordClient to the attempt's coordinator
// interface: snapshots stream out as frames; restores are served from the
// deploy-shipped snapshot set.
type remoteCoordinator struct {
	client       CoordClient
	restoreEpoch int64
	snaps        map[dataflow.TaskID]*taskSnapshot

	mu      sync.Mutex
	started map[int64]bool
}

func newRemoteCoordinator(cfg WorkerNetConfig) *remoteCoordinator {
	rc := &remoteCoordinator{
		client:       cfg.Coord,
		restoreEpoch: cfg.RestoreEpoch,
		snaps:        make(map[dataflow.TaskID]*taskSnapshot, len(cfg.Snapshots)),
		started:      make(map[int64]bool),
	}
	for _, w := range cfg.Snapshots {
		t, s := wireToSnapshot(w)
		rc.snaps[t] = s
	}
	return rc
}

func (c *remoteCoordinator) noteStarted(epoch int64) bool {
	c.mu.Lock()
	first := !c.started[epoch]
	c.started[epoch] = true
	c.mu.Unlock()
	if first && c.client != nil {
		c.client.EpochStarted(epoch)
	}
	return first
}

func (c *remoteCoordinator) record(t dataflow.TaskID, s *taskSnapshot) int64 {
	if c.client != nil {
		c.client.TaskSnapshot(snapshotToWire(t, s))
	}
	return 0 // epoch completion is global knowledge; only the coordinator has it
}

func (c *remoteCoordinator) lastCompleteEpoch() int64 { return c.restoreEpoch }

func (c *remoteCoordinator) snapshotFor(t dataflow.TaskID, epoch int64) *taskSnapshot {
	if epoch <= 0 || epoch != c.restoreEpoch {
		return nil
	}
	return c.snaps[t]
}

func (c *remoteCoordinator) snapshotsTaken() int64 { return 0 }

// WireTaskStats is one task's final counters in wire-safe form.
type WireTaskStats struct {
	Task                WireTaskID
	Worker              int
	RecordsIn           int64
	RecordsOut          int64
	BytesOut            int64
	BusySeconds         float64
	BackpressureSeconds float64
	IsSink              bool
	IsSource            bool
	Dead                bool
}

// WorkerReport is one worker's contribution to a distributed JobResult,
// sent over the control plane when its attempt finishes (or is aborted —
// Completed distinguishes the two; aborted reports carry the progress
// counters the coordinator needs for reprocessing accounting).
type WorkerReport struct {
	Worker    int
	Attempt   int
	Completed bool
	Tasks     []WireTaskStats
	Lost      int64

	Batches            int64
	BatchRecords       int64
	CreditStalls       int64
	CreditStallSeconds float64

	NetFramesSent       int64
	NetFramesRecv       int64
	NetBytesSent        int64
	NetBytesRecv        int64
	NetCreditFrames     int64
	NetDataBatches      int64
	NetUnexpectedFrames int64
	NetDials            int64
	NetReconnects       int64
	NetEncodeErrors     int64
	// NetCreditWait is this attempt's wire-credit wait distribution (how
	// long senders blocked on mirror-gate credit) — mergeable across
	// workers, so the assembled result can report a cluster-wide p99.
	NetCreditWait    telemetry.HistogramSnapshot
	SnapshotsShipped int64
}

// WorkerRun is one in-flight worker-local attempt.
type WorkerRun struct {
	att     *attempt
	done    chan struct{}
	aborted atomic.Bool
	once    sync.Once

	// Written by the run goroutine before done closes.
	report *WorkerReport
	err    error
}

// PrepareWorkerAttempt builds this worker's share of the job — only tasks
// placed on cfg.Local are instantiated; every cross-worker edge becomes a
// wire endpoint — and binds the data-plane listener. The job must use
// TransportNetwork. Call DataAddr to learn the bound address, then Start
// once every peer's address is known.
func (j *Job) PrepareWorkerAttempt(cfg WorkerNetConfig) (*WorkerRun, error) {
	if cfg.Local < 0 || cfg.Local >= len(j.spec.Workers) {
		return nil, fmt.Errorf("engine: local worker %d out of range", cfg.Local)
	}
	if cfg.AttemptNo <= 0 {
		cfg.AttemptNo = 1
	}
	rc := newRemoteCoordinator(cfg)
	faults := newFaultState(FaultPlan{}, j.clk(), j.clk, j.opts.Telemetry.Tracer())
	att, err := j.buildAttempt(cfg.AttemptNo, j.plan, rc, faults, cfg.RestoreEpoch, &cfg)
	if err != nil {
		return nil, err
	}
	return &WorkerRun{att: att, done: make(chan struct{})}, nil
}

// DataAddr is the bound data-plane listen address.
func (r *WorkerRun) DataAddr() string {
	return r.att.net.nodes[r.att.dist.Local].ln.Addr().String()
}

// Start launches the attempt. peers maps every other worker index to its
// data address.
func (r *WorkerRun) Start(ctx context.Context, peers map[int]string) {
	r.att.net.setPeers(peers)
	a := r.att
	tr := a.j.opts.Telemetry.Tracer()
	workerID := a.j.spec.Workers[a.dist.Local].ID
	tr.Emit(telemetry.Event{
		Kind:    telemetry.EventWorkerAttemptStart,
		Worker:  workerID,
		Attempt: a.no,
		Epoch:   a.dist.RestoreEpoch,
	})
	go func() {
		defer close(r.done)
		_, err := a.run(ctx)
		a.close()
		done := telemetry.Event{
			Kind:    telemetry.EventWorkerAttemptDone,
			Worker:  workerID,
			Attempt: a.no,
		}
		if err != nil {
			r.err = err
			done.Attrs = map[string]any{"error": err.Error()}
			tr.Emit(done)
			return
		}
		r.report = r.buildReport()
		done.Attrs = map[string]any{"completed": r.report.Completed}
		tr.Emit(done)
	}()
}

// Abort tears the attempt down (recovery: the coordinator will redeploy).
func (r *WorkerRun) Abort() {
	r.aborted.Store(true)
	r.once.Do(r.att.doAbort)
}

// Discard tears down a prepared attempt that was never started (the
// coordinator aborted between deploy and start) and returns its
// zero-progress report. Must not be combined with Start.
func (r *WorkerRun) Discard() *WorkerReport {
	r.aborted.Store(true)
	r.once.Do(r.att.doAbort)
	r.att.close()
	rep := r.buildReport()
	r.report = rep
	close(r.done)
	return rep
}

// Done closes when the attempt has fully stopped.
func (r *WorkerRun) Done() <-chan struct{} { return r.done }

// Report returns the final report; valid only after Done.
func (r *WorkerRun) Report() (*WorkerReport, error) {
	if r.err != nil {
		return nil, r.err
	}
	return r.report, nil
}

func (r *WorkerRun) buildReport() *WorkerReport {
	a := r.att
	rep := &WorkerReport{
		Worker:    a.dist.Local,
		Attempt:   a.no,
		Completed: !r.aborted.Load(),
		Lost:      a.lost.Load(),
	}
	for _, rt := range a.tasks {
		rep.Tasks = append(rep.Tasks, WireTaskStats{
			Task:                wireTaskOf(rt.id),
			Worker:              rt.worker,
			RecordsIn:           rt.recordsIn,
			RecordsOut:          rt.recordsOut,
			BytesOut:            rt.bytesOut,
			BusySeconds:         rt.busy.Seconds(),
			BackpressureSeconds: rt.bp.Seconds(),
			IsSink:              rt.isSink,
			IsSource:            rt.numIn == 0,
			Dead:                rt.dead,
		})
		rep.Batches += rt.batches
		rep.BatchRecords += rt.batchRecords
		rep.CreditStalls += rt.creditStalls
		rep.CreditStallSeconds += rt.creditStallT.Seconds()
	}
	sort.Slice(rep.Tasks, func(i, k int) bool {
		if rep.Tasks[i].Task.Op != rep.Tasks[k].Task.Op {
			return rep.Tasks[i].Task.Op < rep.Tasks[k].Task.Op
		}
		return rep.Tasks[i].Task.Index < rep.Tasks[k].Task.Index
	})
	if na := a.net; na != nil {
		rep.NetFramesSent = na.framesSent.Load()
		rep.NetFramesRecv = na.framesRecv.Load()
		rep.NetBytesSent = na.bytesSent.Load()
		rep.NetBytesRecv = na.bytesRecv.Load()
		rep.NetCreditFrames = na.creditFrames.Load()
		rep.NetDataBatches = na.dataBatches.Load()
		rep.NetUnexpectedFrames = na.unexpectedFrames.Load()
		rep.NetDials = na.dials.Load()
		rep.NetReconnects = na.reconnects.Load()
		rep.NetEncodeErrors = na.encodeErrors.Load()
		rep.NetCreditWait = na.creditWaitSnapshot()
	}
	return rep
}

// SnapshotStore is the coordinator-side checkpoint storage for a
// distributed run: the same epoch-completion logic the in-process
// coordinator uses, fed by WireSnapshot frames. It lives in the controller
// process, so checkpoints survive any worker's death.
type SnapshotStore struct {
	c *checkpointCoordinator
}

// NewSnapshotStore builds storage for a job with numTasks total tasks.
func NewSnapshotStore(numTasks int) *SnapshotStore {
	return &SnapshotStore{c: newCheckpointCoordinator(numTasks)}
}

// Record stores one snapshot and returns the epoch it completed (every
// task reported), or 0.
func (s *SnapshotStore) Record(w WireSnapshot) int64 {
	t, snap := wireToSnapshot(w)
	return s.c.record(t, snap)
}

// LastComplete is the newest globally complete epoch (0 if none).
func (s *SnapshotStore) LastComplete() int64 { return s.c.lastCompleteEpoch() }

// Taken counts distinct (task, epoch) snapshots recorded.
func (s *SnapshotStore) Taken() int64 { return s.c.snapshotsTaken() }

// EpochSnapshots returns every task's snapshot at the given epoch, in
// canonical task order (nil for epoch 0).
func (s *SnapshotStore) EpochSnapshots(epoch int64) []WireSnapshot {
	if epoch <= 0 {
		return nil
	}
	s.c.mu.Lock()
	var out []WireSnapshot
	for t, m := range s.c.snaps {
		if snap := m[epoch]; snap != nil {
			out = append(out, snapshotToWire(t, snap))
		}
	}
	s.c.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if out[i].Task.Op != out[k].Task.Op {
			return out[i].Task.Op < out[k].Task.Op
		}
		return out[i].Task.Index < out[k].Task.Index
	})
	return out
}

// ApplyRescale rewrites the store for a live parallelism change of one
// operator, resuming from a globally complete epoch: the operator's oldP
// snapshots at that epoch are split/merged along key-group boundaries into
// newP snapshots (statebackend.Repartition plus the generic operator-aux
// splitter), removed tasks' histories are dropped, and the epoch-completion
// quorum becomes the new total task count. It returns the stored state bytes
// whose owning task changed. The epoch must be complete — call under the
// same supervision that produced it, after the attempt has been aborted and
// its late snapshots collected.
func (s *SnapshotStore) ApplyRescale(op string, oldP, newP, keyGroups int, epoch int64) (int64, error) {
	if epoch <= 0 {
		return 0, fmt.Errorf("engine: rescale of %q needs a complete epoch, got %d", op, epoch)
	}
	opID := dataflow.OperatorID(op)
	oldSnaps := make([]*taskSnapshot, oldP)
	for i := 0; i < oldP; i++ {
		oldSnaps[i] = s.c.snapshotFor(dataflow.TaskID{Op: opID, Index: i}, epoch)
	}
	newSnaps, moved, err := repartitionTaskSnapshots(oldSnaps, oldP, newP, keyGroups)
	if err != nil {
		return 0, fmt.Errorf("engine: rescale %q %d→%d: %w", op, oldP, newP, err)
	}
	var removed []dataflow.TaskID
	for i := newP; i < oldP; i++ {
		removed = append(removed, dataflow.TaskID{Op: opID, Index: i})
	}
	repart := make(map[dataflow.TaskID]*taskSnapshot, newP)
	for i, snap := range newSnaps {
		repart[dataflow.TaskID{Op: opID, Index: i}] = snap
	}
	s.c.mu.Lock()
	numTasks := s.c.numTasks - oldP + newP
	s.c.mu.Unlock()
	s.c.applyRescale(epoch, removed, repart, numTasks)
	return moved, nil
}

// DistAgg is the coordinator-side recovery bookkeeping folded into an
// assembled result.
type DistAgg struct {
	Elapsed       time.Duration
	Recoveries    int
	Downtime      time.Duration
	Reprocessed   int64
	RestoredEpoch int64
	Snapshots     int64
	Faults        []FaultRecord

	// Live-rescale bookkeeping (see SnapshotStore.ApplyRescale).
	Rescales        int
	RescaleDowntime time.Duration
	RescaleMoved    int64
}

// AssembleDistResult folds the final attempt's worker reports into a
// JobResult with the same counters and metrics registry an in-process run
// produces (worker saturation gauges excepted: the meters live in the
// worker processes).
func AssembleDistResult(reports []*WorkerReport, agg DistAgg) *JobResult {
	res := &JobResult{
		Elapsed: agg.Elapsed,
		Tasks:   make(map[dataflow.TaskID]TaskStats),
		Metrics: metrics.NewRegistry(),
	}
	var batches, batchRecords, creditStalls int64
	var creditStallSec float64
	var netSent, netRecv, bytesSent, bytesRecv, credits, dataBatches, unexpected int64
	var dials, reconnects, encodeErrors int64
	var creditWait telemetry.HistogramSnapshot
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		res.LostRecords += rep.Lost
		batches += rep.Batches
		batchRecords += rep.BatchRecords
		creditStalls += rep.CreditStalls
		creditStallSec += rep.CreditStallSeconds
		netSent += rep.NetFramesSent
		netRecv += rep.NetFramesRecv
		bytesSent += rep.NetBytesSent
		bytesRecv += rep.NetBytesRecv
		credits += rep.NetCreditFrames
		dataBatches += rep.NetDataBatches
		unexpected += rep.NetUnexpectedFrames
		dials += rep.NetDials
		reconnects += rep.NetReconnects
		encodeErrors += rep.NetEncodeErrors
		// Merge failure only occurs across mismatched bucket layouts, which
		// one binary's workers cannot produce; losing a histogram would
		// still leave every scalar intact.
		_ = creditWait.Merge(rep.NetCreditWait)
		for _, ts := range rep.Tasks {
			id := ts.Task.taskID()
			busy := time.Duration(ts.BusySeconds * float64(time.Second))
			useful := 0.0
			inRate, outRate := 0.0, 0.0
			if agg.Elapsed > 0 {
				useful = ts.BusySeconds / agg.Elapsed.Seconds()
				if useful > 1 {
					useful = 1
				}
				inRate = float64(ts.RecordsIn) / agg.Elapsed.Seconds()
				outRate = float64(ts.RecordsOut) / agg.Elapsed.Seconds()
			}
			res.Tasks[id] = TaskStats{
				Worker:          ts.Worker,
				RecordsIn:       ts.RecordsIn,
				RecordsOut:      ts.RecordsOut,
				BytesOut:        ts.BytesOut,
				BusyTime:        busy,
				BackpressureT:   time.Duration(ts.BackpressureSeconds * float64(time.Second)),
				UsefulFraction:  useful,
				ObservedInRate:  inRate,
				ObservedOutRate: outRate,
			}
			name := func(metric string) string {
				return metrics.TaskMetricName(ts.Task.Op, ts.Task.Index, metric)
			}
			bp := time.Duration(ts.BackpressureSeconds * float64(time.Second))
			res.Metrics.Counter(name("records_in")).Inc(ts.RecordsIn)   //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
			res.Metrics.Counter(name("records_out")).Inc(ts.RecordsOut) //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
			res.Metrics.Counter(name("bytes_out")).Inc(ts.BytesOut)     //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
			res.Metrics.Time(name("busy_seconds")).Add(busy)            //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
			res.Metrics.Time(name("backpressure_seconds")).Add(bp)      //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
			res.Metrics.Gauge(name("useful_fraction")).Set(useful)      //capslint:allow metricnames per-task series built by metrics.TaskMetricName, which canonicalizes
			if ts.IsSink {
				res.SinkRecords += ts.RecordsIn
			}
			if ts.IsSource {
				res.SourceRecords += ts.RecordsOut
			}
			if ts.Dead {
				res.Failed = true
			}
		}
	}
	res.Faults = agg.Faults
	res.Recoveries = agg.Recoveries
	res.Downtime = agg.Downtime
	res.RecordsReprocessed = agg.Reprocessed
	res.SnapshotsTaken = agg.Snapshots
	res.RestoredEpoch = agg.RestoredEpoch
	res.Metrics.Counter("job.recoveries").Inc(int64(res.Recoveries))
	res.Metrics.Gauge("job.downtime_seconds").Set(res.Downtime.Seconds())
	res.Metrics.Counter("job.records_reprocessed").Inc(res.RecordsReprocessed)
	res.Metrics.Counter("job.lost_records").Inc(res.LostRecords)
	res.Metrics.Counter("job.snapshots").Inc(res.SnapshotsTaken)
	res.Metrics.Gauge("job.restored_epoch").Set(float64(res.RestoredEpoch))
	res.Rescales = agg.Rescales
	res.RescaleDowntime = agg.RescaleDowntime
	res.RescaleMovedBytes = agg.RescaleMoved
	if res.Rescales > 0 {
		res.Metrics.Counter("job.rescales").Inc(int64(res.Rescales))
		res.Metrics.Gauge("job.rescale_downtime_seconds").Set(res.RescaleDowntime.Seconds())
		res.Metrics.Counter("job.rescale_moved_bytes").Inc(res.RescaleMovedBytes)
	}
	res.Metrics.Counter("exchange.batches").Inc(batches)
	res.Metrics.Counter("exchange.batch_records").Inc(batchRecords)
	res.Metrics.Counter("exchange.credit_stalls").Inc(creditStalls)
	res.Metrics.Time("exchange.credit_stall_seconds").Add(time.Duration(creditStallSec * float64(time.Second)))
	res.Metrics.Counter("net.frames_sent").Inc(netSent)
	res.Metrics.Counter("net.frames_received").Inc(netRecv)
	res.Metrics.Counter("net.bytes_sent").Inc(bytesSent)
	res.Metrics.Counter("net.bytes_received").Inc(bytesRecv)
	res.Metrics.Counter("net.credit_frames").Inc(credits)
	res.Metrics.Counter("net.data_batches").Inc(dataBatches)
	res.Metrics.Counter("net.unexpected_frames").Inc(unexpected)
	res.Metrics.Counter("net.dials").Inc(dials)
	res.Metrics.Counter("net.reconnects").Inc(reconnects)
	res.Metrics.Counter("net.encode_errors").Inc(encodeErrors)
	exportCreditWait(res.Metrics, creditWait)
	return res
}
