package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"capsys/internal/statebackend"
)

// Record is one stream element.
type Record struct {
	// Key selects the partition for hash-partitioned edges; an empty key
	// round-robins.
	Key string
	// Value is the payload.
	Value any
	// Time is the event time in milliseconds.
	Time int64
	// Size is the serialized size in bytes, used for network accounting
	// (0 means DefaultRecordSize).
	Size int
}

// DefaultRecordSize is assumed when Record.Size is zero.
const DefaultRecordSize = 100

// Emit is the output callback handed to operators. It may block under
// backpressure.
type Emit func(Record)

// TaskContext gives an operator instance access to its runtime environment.
type TaskContext struct {
	// Op and Index identify the task.
	Op    string
	Index int
	// Parallelism is the operator's task count.
	Parallelism int
	// State is the task's keyspace in the worker's state backend; nil for
	// operators declared stateless.
	State *statebackend.Namespace
	// Watermark returns the task's current event-time watermark.
	Watermark func() int64
}

// Operator is the processing interface for non-source operators. Operators
// are used by exactly one task goroutine; they need no internal locking.
type Operator interface {
	// Open prepares the instance.
	Open(ctx *TaskContext) error
	// Process handles one record from input index in (the position of the
	// upstream operator in the logical graph's Upstream list).
	Process(rec Record, in int, emit Emit) error
	// Close flushes remaining results (e.g. open windows) at end of input.
	Close(emit Emit) error
}

// Source generates records. Run must return after emitting all records (the
// runtime applies rate limiting and cancellation around emit).
type Source interface {
	Open(ctx *TaskContext) error
	// Next produces the i-th record of this task (i starts at 0) and
	// reports whether a record was produced. Returning false ends the
	// source.
	Next(i int64) (Record, bool)
}

// Factory builds the per-task operator instance for an operator ID.
type Factory func(ctx *TaskContext) (any, error)

// --- Functional operators -------------------------------------------------

// MapFunc transforms one record into another.
type MapFunc func(Record) Record

// FilterFunc keeps records for which it returns true.
type FilterFunc func(Record) bool

// FlatMapFunc emits zero or more records per input.
type FlatMapFunc func(Record, Emit)

type mapOp struct{ fn MapFunc }

func (o *mapOp) Open(*TaskContext) error { return nil }
func (o *mapOp) Process(rec Record, _ int, emit Emit) error {
	emit(o.fn(rec))
	return nil
}
func (o *mapOp) Close(Emit) error { return nil }

// NewMap wraps fn as an Operator.
func NewMap(fn MapFunc) Operator { return &mapOp{fn: fn} }

type filterOp struct{ fn FilterFunc }

func (o *filterOp) Open(*TaskContext) error { return nil }
func (o *filterOp) Process(rec Record, _ int, emit Emit) error {
	if o.fn(rec) {
		emit(rec)
	}
	return nil
}
func (o *filterOp) Close(Emit) error { return nil }

// NewFilter wraps fn as an Operator.
func NewFilter(fn FilterFunc) Operator { return &filterOp{fn: fn} }

type flatMapOp struct{ fn FlatMapFunc }

func (o *flatMapOp) Open(*TaskContext) error { return nil }
func (o *flatMapOp) Process(rec Record, _ int, emit Emit) error {
	o.fn(rec, emit)
	return nil
}
func (o *flatMapOp) Close(Emit) error { return nil }

// NewFlatMap wraps fn as an Operator.
func NewFlatMap(fn FlatMapFunc) Operator { return &flatMapOp{fn: fn} }

// --- Sink -----------------------------------------------------------------

// SinkFunc consumes terminal records.
type SinkFunc func(Record)

type sinkOp struct{ fn SinkFunc }

func (o *sinkOp) Open(*TaskContext) error { return nil }
func (o *sinkOp) Process(rec Record, _ int, _ Emit) error {
	if o.fn != nil {
		o.fn(rec)
	}
	return nil
}
func (o *sinkOp) Close(Emit) error { return nil }

// NewSink wraps fn (which may be nil to discard records) as an Operator.
func NewSink(fn SinkFunc) Operator { return &sinkOp{fn: fn} }

// --- Windows ----------------------------------------------------------------

// AggFunc folds a record into an accumulator (JSON-encoded in state).
type AggFunc func(acc []byte, rec Record) []byte

// WindowResultFunc turns a closed window's accumulator into an output
// record.
type WindowResultFunc func(key string, windowStart, windowEnd int64, acc []byte) Record

// slidingWindowOp implements a keyed event-time sliding window aggregate.
// Accumulators live in the state backend, one per (key, window-start).
type slidingWindowOp struct {
	size, slide int64 // ms
	agg         AggFunc
	result      WindowResultFunc
	ctx         *TaskContext
	maxTime     int64 // fallback watermark when the runtime provides none
	// ends tracks open window end timestamps so Close can flush in order.
	ends map[int64]map[string]bool
}

// watermarkFor returns the firing watermark: the runtime's per-channel
// minimum when available, otherwise the max record time seen so far.
func watermarkFor(ctx *TaskContext, maxTime *int64, recTime int64) int64 {
	if recTime > *maxTime {
		*maxTime = recTime
	}
	if ctx != nil && ctx.Watermark != nil {
		return ctx.Watermark()
	}
	return *maxTime
}

// NewSlidingWindow creates a keyed sliding window aggregate (sizeMS window
// length, slideMS hop). Tumbling windows are sliding windows with
// slide == size.
func NewSlidingWindow(sizeMS, slideMS int64, agg AggFunc, result WindowResultFunc) Operator {
	return &slidingWindowOp{size: sizeMS, slide: slideMS, agg: agg, result: result}
}

func (o *slidingWindowOp) Open(ctx *TaskContext) error {
	if ctx.State == nil {
		return fmt.Errorf("engine: sliding window requires state")
	}
	if o.size <= 0 || o.slide <= 0 || o.slide > o.size {
		return fmt.Errorf("engine: invalid window size=%d slide=%d", o.size, o.slide)
	}
	o.ctx = ctx
	o.ends = make(map[int64]map[string]bool)
	return nil
}

func winKey(key string, start int64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(start))
	return key + "\x00" + string(b[:])
}

func (o *slidingWindowOp) Process(rec Record, _ int, emit Emit) error {
	// Assign the record to every window containing its timestamp.
	first := rec.Time - rec.Time%o.slide // start of the window beginning at/just before rec.Time
	for start := first; start > rec.Time-o.size; start -= o.slide {
		if start < 0 {
			break
		}
		sk := winKey(rec.Key, start)
		acc, _ := o.ctx.State.Get(sk)
		o.ctx.State.Put(sk, o.agg(acc, rec))
		end := start + o.size
		if o.ends[end] == nil {
			o.ends[end] = make(map[string]bool)
		}
		o.ends[end][rec.Key] = true
	}
	// Fire windows the watermark has passed.
	o.fire(watermarkFor(o.ctx, &o.maxTime, rec.Time), emit)
	return nil
}

func (o *slidingWindowOp) fire(watermark int64, emit Emit) {
	var fired []int64
	for end := range o.ends {
		if end <= watermark {
			fired = append(fired, end)
		}
	}
	sort.Slice(fired, func(i, j int) bool { return fired[i] < fired[j] })
	for _, end := range fired {
		keys := make([]string, 0, len(o.ends[end]))
		for k := range o.ends[end] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			start := end - o.size
			sk := winKey(key, start)
			if acc, ok := o.ctx.State.Get(sk); ok {
				emit(o.result(key, start, end, acc))
				o.ctx.State.Delete(sk)
			}
		}
		delete(o.ends, end)
	}
}

func (o *slidingWindowOp) Close(emit Emit) error {
	o.fire(1<<62, emit)
	return nil
}

// sessionWindowOp implements keyed event-time session windows with a gap
// timeout: a session closes when no record for its key arrives within gap.
type sessionWindowOp struct {
	gap    int64
	agg    AggFunc
	result WindowResultFunc
	ctx    *TaskContext
	// open sessions: key -> [start, lastSeen]
	open    map[string][2]int64
	maxTime int64
}

// NewSessionWindow creates a keyed session window aggregate with the given
// inactivity gap in milliseconds.
func NewSessionWindow(gapMS int64, agg AggFunc, result WindowResultFunc) Operator {
	return &sessionWindowOp{gap: gapMS, agg: agg, result: result}
}

func (o *sessionWindowOp) Open(ctx *TaskContext) error {
	if ctx.State == nil {
		return fmt.Errorf("engine: session window requires state")
	}
	if o.gap <= 0 {
		return fmt.Errorf("engine: invalid session gap %d", o.gap)
	}
	o.ctx = ctx
	o.open = make(map[string][2]int64)
	return nil
}

func (o *sessionWindowOp) Process(rec Record, _ int, emit Emit) error {
	sess, ok := o.open[rec.Key]
	if ok && rec.Time-sess[1] > o.gap {
		o.close(rec.Key, sess, emit)
		ok = false
	}
	if !ok {
		sess = [2]int64{rec.Time, rec.Time}
	}
	if rec.Time > sess[1] {
		sess[1] = rec.Time
	}
	o.open[rec.Key] = sess
	acc, _ := o.ctx.State.Get(rec.Key)
	o.ctx.State.Put(rec.Key, o.agg(acc, rec))

	// Expire idle sessions as the watermark advances.
	wm := watermarkFor(o.ctx, &o.maxTime, rec.Time)
	for k, s := range o.open {
		if k != rec.Key && wm-s[1] > o.gap {
			o.close(k, s, emit)
		}
	}
	return nil
}

func (o *sessionWindowOp) close(key string, sess [2]int64, emit Emit) {
	if acc, ok := o.ctx.State.Get(key); ok {
		emit(o.result(key, sess[0], sess[1], acc))
		o.ctx.State.Delete(key)
	}
	delete(o.open, key)
}

func (o *sessionWindowOp) Close(emit Emit) error {
	keys := make([]string, 0, len(o.open))
	for k := range o.open {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		o.close(k, o.open[k], emit)
	}
	return nil
}

// JoinFunc combines a left and right record that share a key and window.
type JoinFunc func(left, right Record) (Record, bool)

// tumblingJoinOp implements a keyed tumbling-window two-input join: records
// from inputs 0 and 1 are buffered in list state per (key, window); when a
// window closes, the cross product of matching pairs is emitted.
type tumblingJoinOp struct {
	size    int64
	fn      JoinFunc
	ctx     *TaskContext
	ends    map[int64]map[string]bool
	maxTime int64
}

// NewTumblingWindowJoin creates a keyed tumbling-window join with the given
// window size in milliseconds.
func NewTumblingWindowJoin(sizeMS int64, fn JoinFunc) Operator {
	return &tumblingJoinOp{size: sizeMS, fn: fn}
}

func (o *tumblingJoinOp) Open(ctx *TaskContext) error {
	if ctx.State == nil {
		return fmt.Errorf("engine: window join requires state")
	}
	if o.size <= 0 {
		return fmt.Errorf("engine: invalid join window %d", o.size)
	}
	o.ctx = ctx
	o.ends = make(map[int64]map[string]bool)
	return nil
}

type joinEntry struct {
	Side int `json:"s"`
	Rec  struct {
		Key  string `json:"k"`
		Val  any    `json:"v"`
		Time int64  `json:"t"`
		Size int    `json:"z"`
	} `json:"r"`
}

func (o *tumblingJoinOp) Process(rec Record, in int, emit Emit) error {
	start := rec.Time - rec.Time%o.size
	sk := winKey(rec.Key, start)
	var e joinEntry
	e.Side = in
	e.Rec.Key, e.Rec.Val, e.Rec.Time, e.Rec.Size = rec.Key, rec.Value, rec.Time, rec.Size
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("engine: join marshal: %w", err)
	}
	o.ctx.State.Append(sk, buf)
	end := start + o.size
	if o.ends[end] == nil {
		o.ends[end] = make(map[string]bool)
	}
	o.ends[end][rec.Key] = true
	o.fire(watermarkFor(o.ctx, &o.maxTime, rec.Time), emit)
	return nil
}

func (o *tumblingJoinOp) fire(watermark int64, emit Emit) {
	var fired []int64
	for end := range o.ends {
		if end <= watermark {
			fired = append(fired, end)
		}
	}
	sort.Slice(fired, func(i, j int) bool { return fired[i] < fired[j] })
	for _, end := range fired {
		keys := make([]string, 0, len(o.ends[end]))
		for k := range o.ends[end] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			sk := winKey(key, end-o.size)
			var lefts, rights []Record
			for _, buf := range o.ctx.State.List(sk) {
				var e joinEntry
				if json.Unmarshal(buf, &e) != nil {
					continue
				}
				r := Record{Key: e.Rec.Key, Value: e.Rec.Val, Time: e.Rec.Time, Size: e.Rec.Size}
				if e.Side == 0 {
					lefts = append(lefts, r)
				} else {
					rights = append(rights, r)
				}
			}
			for _, l := range lefts {
				for _, r := range rights {
					if out, ok := o.fn(l, r); ok {
						emit(out)
					}
				}
			}
			o.ctx.State.ClearList(sk)
		}
		delete(o.ends, end)
	}
}

func (o *tumblingJoinOp) Close(emit Emit) error {
	o.fire(1<<62, emit)
	return nil
}

// ProcessFunc is a general stateful per-record function with state access.
type ProcessFunc func(ctx *TaskContext, rec Record, emit Emit) error

type processOp struct {
	fn  ProcessFunc
	ctx *TaskContext
}

func (o *processOp) Open(ctx *TaskContext) error { o.ctx = ctx; return nil }
func (o *processOp) Process(rec Record, _ int, emit Emit) error {
	return o.fn(o.ctx, rec, emit)
}
func (o *processOp) Close(Emit) error { return nil }

// NewProcess wraps a stateful per-record function as an Operator.
func NewProcess(fn ProcessFunc) Operator { return &processOp{fn: fn} }

// --- Sources ---------------------------------------------------------------

// GeneratorFunc produces the i-th record of a source task.
type GeneratorFunc func(task, i int64) (Record, bool)

type funcSource struct {
	fn   GeneratorFunc
	task int64
}

func (s *funcSource) Open(ctx *TaskContext) error {
	s.task = int64(ctx.Index)
	return nil
}
func (s *funcSource) Next(i int64) (Record, bool) { return s.fn(s.task, i) }

// NewSource wraps fn as a Source; fn receives the task index and the record
// sequence number.
func NewSource(fn GeneratorFunc) Source { return &funcSource{fn: fn} }
