package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"capsys/internal/dataflow"
)

// joinGraph builds left + right sources into an incremental join and a sink.
func joinGraph(t *testing.T, joinPar int) *dataflow.LogicalGraph {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "left", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "right", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "join", Kind: dataflow.KindJoin, Parallelism: joinPar, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	} {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{{From: "left", To: "join"}, {From: "right", To: "join"}, {From: "join", To: "sink"}} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestIncrementalJoinMatchesAllPairs(t *testing.T) {
	g := joinGraph(t, 2)
	var joined atomic.Int64
	// Left emits keys k0..k4 twice; right emits each key three times:
	// every (key) yields 2x3 = 6 pairs, 5 keys -> 30 pairs.
	factories := map[dataflow.OperatorID]Factory{
		"left": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				if i >= 10 {
					return Record{}, false
				}
				return Record{Key: fmt.Sprintf("k%d", i%5), Value: i, Time: i}, true
			}), nil
		},
		"right": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				if i >= 15 {
					return Record{}, false
				}
				return Record{Key: fmt.Sprintf("k%d", i%5), Value: 100 + i, Time: i}, true
			}), nil
		},
		"join": func(*TaskContext) (any, error) {
			return NewIncrementalJoin(func(l, r Record) (Record, bool) {
				return Record{Key: l.Key, Value: [2]any{l.Value, r.Value}, Time: l.Time}, true
			}, 0), nil
		},
		"sink": func(*TaskContext) (any, error) {
			return NewSink(func(Record) { joined.Add(1) }), nil
		},
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 2), bigWorkers(2, 3), factories, JobOptions{
		RecordsPerSource: 100, // sources stop themselves earlier
		Stateful:         map[dataflow.OperatorID]bool{"join": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if joined.Load() != 30 {
		t.Errorf("joined %d pairs, want 30", joined.Load())
	}
}

func TestIncrementalJoinPerKeyCap(t *testing.T) {
	g := joinGraph(t, 1)
	var joined atomic.Int64
	factories := map[dataflow.OperatorID]Factory{
		"left": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				if i >= 10 {
					return Record{}, false
				}
				return Record{Key: "k", Value: i, Time: i}, true
			}), nil
		},
		"right": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{}, false // right side empty
			}), nil
		},
		"join": func(*TaskContext) (any, error) {
			return NewIncrementalJoin(func(l, r Record) (Record, bool) {
				return l, true
			}, 3), nil
		},
		"sink": func(*TaskContext) (any, error) {
			return NewSink(func(Record) { joined.Add(1) }), nil
		},
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 4), factories, JobOptions{
		RecordsPerSource: 100,
		Stateful:         map[dataflow.OperatorID]bool{"join": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if joined.Load() != 0 {
		t.Errorf("joined %d with empty right side", joined.Load())
	}
	_ = res
}

func TestIncrementalJoinRequiresState(t *testing.T) {
	g := joinGraph(t, 1)
	factories := map[dataflow.OperatorID]Factory{
		"left": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) { return Record{}, false }), nil
		},
		"right": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) { return Record{}, false }), nil
		},
		"join": func(*TaskContext) (any, error) {
			return NewIncrementalJoin(func(l, r Record) (Record, bool) { return l, true }, 0), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 4), factories, JobOptions{
		RecordsPerSource: 1, // Stateful not set
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err == nil {
		t.Error("incremental join without state ran")
	}
}
