package engine

import (
	"sync"

	"capsys/internal/dataflow"
)

// Snapshotter is implemented by operators (or sources) that keep auxiliary
// in-memory state outside their statebackend namespace — window end indexes,
// session bounds, watermark high-water marks. SnapshotState must return a
// deterministic byte image (same logical state → same bytes) so recovered
// runs stay byte-identical; RestoreState replaces the operator's state with
// a previously snapshotted image.
type Snapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState([]byte) error
}

// taskSnapshot is one task's contribution to a checkpoint epoch. Besides
// operator state it captures the task's progress counters and per-edge
// round-robin positions: restoring those makes the *final* job counters
// invariant to which epoch the restore happens from (the counters count the
// whole stream exactly once, and rebalanced routing resumes mid-cycle
// instead of resetting).
type taskSnapshot struct {
	epoch      int64
	recordsIn  int64
	recordsOut int64
	bytesOut   int64
	srcOffset  int64  // next record index for source tasks
	rr         []int  // round-robin position per out-edge
	opState    []byte // Snapshotter image, nil if the operator has none
	nsState    []byte // statebackend namespace image, nil if stateless
}

// coordinator is the attempt's view of checkpoint coordination. In-process
// runs use checkpointCoordinator directly; distributed workers use a
// remoteCoordinator that forwards snapshots to the controller as frames and
// serves restores from the deploy-shipped snapshot set (see distrun.go).
type coordinator interface {
	noteStarted(epoch int64) bool
	record(t dataflow.TaskID, s *taskSnapshot) int64
	lastCompleteEpoch() int64
	snapshotFor(t dataflow.TaskID, epoch int64) *taskSnapshot
	snapshotsTaken() int64
}

// checkpointCoordinator collects per-task snapshots into global checkpoint
// epochs, mirroring Flink's JobManager-side checkpoint coordinator. It
// models durable remote storage: snapshots survive worker loss, so a task
// re-placed onto a different worker can still restore its state. An epoch is
// globally complete once every task has contributed; completed epochs below
// the newest complete one are pruned.
type checkpointCoordinator struct {
	mu           sync.Mutex
	numTasks     int                                         // guarded by mu; changes only in applyRescale
	snaps        map[dataflow.TaskID]map[int64]*taskSnapshot // guarded by mu
	lastComplete int64                                       // guarded by mu
	taken        int64                                       // guarded by mu
	started      map[int64]bool                              // guarded by mu
}

func newCheckpointCoordinator(numTasks int) *checkpointCoordinator {
	return &checkpointCoordinator{
		numTasks: numTasks,
		snaps:    make(map[dataflow.TaskID]map[int64]*taskSnapshot),
		started:  make(map[int64]bool),
	}
}

// noteStarted marks an epoch's barrier as injected and reports whether this
// was the first injection (replayed barriers after a restart return false),
// so the epoch-start trace event fires exactly once.
func (c *checkpointCoordinator) noteStarted(epoch int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started[epoch] {
		return false
	}
	c.started[epoch] = true
	return true
}

// record stores (or overwrites — replayed epochs after a restart re-snapshot)
// one task's snapshot and advances the globally complete epoch when every
// task has reported it. It returns the newly completed epoch, or 0 when this
// snapshot did not complete one.
func (c *checkpointCoordinator) record(t dataflow.TaskID, s *taskSnapshot) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	byEpoch := c.snaps[t]
	if byEpoch == nil {
		byEpoch = make(map[int64]*taskSnapshot)
		c.snaps[t] = byEpoch
	}
	if _, replay := byEpoch[s.epoch]; !replay {
		c.taken++
	}
	byEpoch[s.epoch] = s
	count := 0
	for _, m := range c.snaps {
		if _, ok := m[s.epoch]; ok {
			count++
		}
	}
	if count == c.numTasks && s.epoch > c.lastComplete {
		c.lastComplete = s.epoch
		for _, m := range c.snaps {
			for e := range m {
				if e < c.lastComplete {
					delete(m, e)
				}
			}
		}
		return s.epoch
	}
	return 0
}

// applyRescale rewrites the coordinator's durable snapshot set for a
// parallelism change resuming from epoch: every epoch beyond the resume
// point is discarded (they are partial — the rescale aborted the attempt
// mid-stream — and the old and new task sets must never mix within one
// epoch), removed tasks' histories are dropped, the repartitioned snapshots
// are installed at the resume epoch, and the completion quorum becomes the
// new task count.
func (c *checkpointCoordinator) applyRescale(epoch int64, removed []dataflow.TaskID, repartitioned map[dataflow.TaskID]*taskSnapshot, numTasks int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.snaps {
		for e := range m {
			if e > epoch {
				delete(m, e)
			}
		}
	}
	for _, t := range removed {
		delete(c.snaps, t)
	}
	for t, s := range repartitioned {
		byEpoch := c.snaps[t]
		if byEpoch == nil {
			byEpoch = make(map[int64]*taskSnapshot)
			c.snaps[t] = byEpoch
		}
		byEpoch[epoch] = s
	}
	c.numTasks = numTasks
	if epoch > c.lastComplete {
		c.lastComplete = epoch
	}
}

// lastCompleteEpoch returns the newest epoch every task has snapshotted,
// or 0 if none has completed yet.
func (c *checkpointCoordinator) lastCompleteEpoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastComplete
}

// snapshotFor returns task t's snapshot at exactly the given epoch, or nil.
// Epoch 0 is the empty initial state and always returns nil.
func (c *checkpointCoordinator) snapshotFor(t dataflow.TaskID, epoch int64) *taskSnapshot {
	if epoch <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.snaps[t]; m != nil {
		return m[epoch]
	}
	return nil
}

// snapshotsTaken counts distinct (task, epoch) snapshots recorded.
func (c *checkpointCoordinator) snapshotsTaken() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.taken
}
