package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"capsys/internal/dataflow"
	"capsys/internal/statebackend"
	"capsys/internal/telemetry"
)

// Live rescaling: change one operator's parallelism on a running job without
// replaying the stream from the start. The protocol is
// checkpoint→repartition→resume: the job drains to the next barrier-aligned
// epoch (every task snapshots, exactly as for fault recovery), the affected
// operator's per-task snapshots are split/merged along key-group boundaries
// (statebackend.Repartition), the coordinator's durable snapshot set is
// rewritten for the new task count, and the job redeploys resuming from that
// epoch. Records between the epoch barrier and the drain are re-read from
// the sources' snapshotted offsets — bounded by one epoch interval, never a
// full replay — and nothing is lost, because every record either reached a
// snapshot or is replayed past the restore point.

// DefaultKeyGroups re-exports the statebackend default so callers sizing a
// job's key-group space (the distributed coordinator, CLIs) need not import
// the state layer.
const DefaultKeyGroups = statebackend.DefaultKeyGroups

// RescalePlan schedules one parallelism change.
type RescalePlan struct {
	// Op is the operator to rescale. Sources cannot be rescaled (their
	// count fixes the input partitioning); any other operator can.
	Op dataflow.OperatorID
	// Parallelism is the new task count, in [1, KeyGroups].
	Parallelism int
	// AtEpoch triggers the rescale at the first globally complete checkpoint
	// epoch >= AtEpoch (0 = the next one to complete).
	AtEpoch int64
}

// RescaleEvent describes an applied rescale, passed to the OnRescale
// re-placement hook and mirrored in the rescale.start trace event.
type RescaleEvent struct {
	Op             dataflow.OperatorID
	OldParallelism int
	NewParallelism int
	// Epoch is the checkpoint epoch the job resumes from.
	Epoch int64
	// MovedBytes counts the stored state bytes whose owning task changed.
	MovedBytes int64
	// DeadWorkers lists workers lost to earlier faults (their slots are
	// unavailable to the re-placement).
	DeadWorkers []int
	// Attempt is the attempt number that drained for this rescale.
	Attempt int
}

// rescaleAux is the combined JSON envelope of the engine's built-in
// Snapshotter images (windowAux and sessionAux in opsnapshot.go): it
// marshals byte-identically to either, so operator aux state can be split
// and merged generically. Decoding rejects unknown fields, so an operator
// with a custom Snapshotter image fails the rescale loudly instead of
// silently dropping state.
type rescaleAux struct {
	Max  int64               `json:"max"`
	Ends map[int64][]string  `json:"ends,omitempty"`
	Open map[string][2]int64 `json:"open,omitempty"`
}

func decodeRescaleAux(buf []byte) (*rescaleAux, error) {
	aux := &rescaleAux{}
	if len(buf) == 0 {
		return aux, nil
	}
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(aux); err != nil {
		return nil, fmt.Errorf("operator snapshot is not splittable (custom Snapshotter image?): %w", err)
	}
	return aux, nil
}

// splitOpStates repartitions the per-task Snapshotter images of one
// operator. Entries move with their key's key-group; the watermark fallback
// Max of a new task is the max over the old tasks whose key-group ranges
// overlap its own, which reproduces the old image exactly when the
// parallelism does not change.
func splitOpStates(states [][]byte, oldP, newP, numGroups int) ([][]byte, error) {
	any := false
	for _, s := range states {
		if len(s) > 0 {
			any = true
		}
	}
	if !any {
		return make([][]byte, newP), nil
	}
	auxes := make([]*rescaleAux, oldP)
	for i, s := range states {
		aux, err := decodeRescaleAux(s)
		if err != nil {
			return nil, fmt.Errorf("task %d: %w", i, err)
		}
		auxes[i] = aux
	}
	out := make([][]byte, newP)
	for i := 0; i < newP; i++ {
		r := statebackend.RangeFor(i, newP, numGroups)
		merged := rescaleAux{}
		for j, aux := range auxes {
			if statebackend.RangeFor(j, oldP, numGroups).End > r.Start &&
				statebackend.RangeFor(j, oldP, numGroups).Start < r.End &&
				aux.Max > merged.Max {
				merged.Max = aux.Max
			}
			for end, keys := range aux.Ends {
				for _, k := range keys {
					if r.Contains(statebackend.KeyGroupOf(k, numGroups)) {
						if merged.Ends == nil {
							merged.Ends = make(map[int64][]string)
						}
						merged.Ends[end] = append(merged.Ends[end], k)
					}
				}
			}
			for k, bounds := range aux.Open {
				if r.Contains(statebackend.KeyGroupOf(k, numGroups)) {
					if merged.Open == nil {
						merged.Open = make(map[string][2]int64)
					}
					merged.Open[k] = bounds
				}
			}
		}
		for end := range merged.Ends {
			sort.Strings(merged.Ends[end])
		}
		buf, err := json.Marshal(merged)
		if err != nil {
			return nil, err
		}
		out[i] = buf
	}
	return out, nil
}

// repartitionTaskSnapshots converts one operator's oldP snapshots at a
// completed epoch into newP snapshots for the rescaled operator. State moves
// along key-group boundaries; progress counters are preserved in aggregate
// (survivor tasks keep theirs, removed tasks' counters fold onto task 0) so
// job-level totals — sink records, reprocessing accounting — stay exact
// across the rescale. Per-task round-robin cursors carry over for surviving
// tasks and start fresh for new ones.
func repartitionTaskSnapshots(snaps []*taskSnapshot, oldP, newP, numGroups int) ([]*taskSnapshot, int64, error) {
	epoch := int64(0)
	nsStates := make([][]byte, oldP)
	opStates := make([][]byte, oldP)
	anyNS := false
	for i, s := range snaps {
		if s == nil {
			return nil, 0, fmt.Errorf("engine: rescale: task %d has no snapshot at the drain epoch", i)
		}
		if i == 0 {
			epoch = s.epoch
		} else if s.epoch != epoch {
			return nil, 0, fmt.Errorf("engine: rescale: task %d snapshot at epoch %d, want %d", i, s.epoch, epoch)
		}
		nsStates[i] = s.nsState
		opStates[i] = s.opState
		if len(s.nsState) > 0 {
			anyNS = true
		}
	}
	var newNS [][]byte
	var moved int64
	if anyNS {
		var err error
		newNS, moved, err = statebackend.Repartition(nsStates, oldP, newP, numGroups)
		if err != nil {
			return nil, 0, fmt.Errorf("engine: rescale: %w", err)
		}
	} else {
		newNS = make([][]byte, newP)
	}
	newOp, err := splitOpStates(opStates, oldP, newP, numGroups)
	if err != nil {
		return nil, 0, fmt.Errorf("engine: rescale: %w", err)
	}
	out := make([]*taskSnapshot, newP)
	for i := range out {
		ns := &taskSnapshot{epoch: epoch, nsState: newNS[i], opState: newOp[i]}
		if i < oldP {
			old := snaps[i]
			ns.recordsIn = old.recordsIn
			ns.recordsOut = old.recordsOut
			ns.bytesOut = old.bytesOut
			ns.srcOffset = old.srcOffset
			ns.rr = append([]int(nil), old.rr...)
		}
		out[i] = ns
	}
	for i := newP; i < oldP; i++ {
		out[0].recordsIn += snaps[i].recordsIn
		out[0].recordsOut += snaps[i].recordsOut
		out[0].bytesOut += snaps[i].bytesOut
	}
	return out, moved, nil
}

// Rescale requests a live parallelism change for op: the job drains to the
// next complete checkpoint epoch, repartitions the operator's key-groups,
// and resumes from that epoch. Safe to call from any goroutine (including
// telemetry callbacks) while the job runs; the change applies at the next
// epoch boundary. Returns an error if the request can never apply —
// unknown or source operator, parallelism out of [1, KeyGroups], snapshots
// disabled, or a Forward-edge peer pinning the operator's parallelism.
func (j *Job) Rescale(op dataflow.OperatorID, parallelism int) error {
	return j.schedule(RescalePlan{Op: op, Parallelism: parallelism})
}

func (j *Job) schedule(p RescalePlan) error {
	if j.opts.SnapshotInterval <= 0 {
		return fmt.Errorf("engine: rescale needs checkpoints; set SnapshotInterval > 0")
	}
	j.rescaleMu.Lock()
	defer j.rescaleMu.Unlock()
	o := j.graph.Operator(p.Op)
	if o == nil {
		return fmt.Errorf("engine: rescale of unknown operator %q", p.Op)
	}
	if len(j.graph.Upstream(p.Op)) == 0 {
		return fmt.Errorf("engine: cannot rescale source %q (source count fixes the input partitioning)", p.Op)
	}
	if p.Parallelism <= 0 {
		return fmt.Errorf("engine: rescale of %q to non-positive parallelism %d", p.Op, p.Parallelism)
	}
	if p.Parallelism > j.opts.KeyGroups {
		return fmt.Errorf("engine: rescale of %q to %d exceeds %d key-groups", p.Op, p.Parallelism, j.opts.KeyGroups)
	}
	if p.AtEpoch < 0 {
		return fmt.Errorf("engine: rescale of %q at negative epoch %d", p.Op, p.AtEpoch)
	}
	// A Forward-edge peer would be left at the old parallelism; reject now
	// rather than fail the drain later.
	if _, err := j.graph.Rescale(map[dataflow.OperatorID]int{p.Op: p.Parallelism}); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	j.pendingRescales = append(j.pendingRescales, p)
	return nil
}

// dueRescale returns the first pending rescale due at the given completed
// epoch, without removing it: the plan stays pending until applied, so a
// fault racing the drain simply re-triggers it at the next complete epoch.
func (j *Job) dueRescale(epoch int64) *RescalePlan {
	j.rescaleMu.Lock()
	defer j.rescaleMu.Unlock()
	for i := range j.pendingRescales {
		if epoch >= j.pendingRescales[i].AtEpoch {
			p := j.pendingRescales[i]
			return &p
		}
	}
	return nil
}

// dropRescale removes the applied plan from the pending list.
func (j *Job) dropRescale(p *RescalePlan) {
	j.rescaleMu.Lock()
	defer j.rescaleMu.Unlock()
	for i := range j.pendingRescales {
		if j.pendingRescales[i] == *p {
			j.pendingRescales = append(j.pendingRescales[:i], j.pendingRescales[i+1:]...)
			return
		}
	}
}

// applyRescale executes one drained rescale between attempts: repartition
// the operator's snapshots at the drain epoch, rewrite the coordinator's
// snapshot set, swap in the rescaled graph, and re-place tasks. It returns
// the plan for the next attempt. Caller (Run) owns j's graph fields — no
// task goroutines are alive here.
func (j *Job) applyRescale(p *RescalePlan, epoch int64, coord *checkpointCoordinator, plan *dataflow.Plan, dead map[int]bool, attemptNo int) (*dataflow.Plan, *RescaleEvent, error) {
	oldP := j.graph.Operator(p.Op).Parallelism
	newP := p.Parallelism
	oldSnaps := make([]*taskSnapshot, oldP)
	for i := 0; i < oldP; i++ {
		oldSnaps[i] = coord.snapshotFor(dataflow.TaskID{Op: p.Op, Index: i}, epoch)
	}
	newSnaps, moved, err := repartitionTaskSnapshots(oldSnaps, oldP, newP, j.opts.KeyGroups)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: rescale %q %d→%d: %w", p.Op, oldP, newP, err)
	}
	newGraph, err := j.graph.Rescale(map[dataflow.OperatorID]int{p.Op: newP})
	if err != nil {
		return nil, nil, fmt.Errorf("engine: rescale %q: %w", p.Op, err)
	}
	newPhys, err := dataflow.Expand(newGraph)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: rescale %q: %w", p.Op, err)
	}
	var removed []dataflow.TaskID
	for i := newP; i < oldP; i++ {
		removed = append(removed, dataflow.TaskID{Op: p.Op, Index: i})
	}
	repart := make(map[dataflow.TaskID]*taskSnapshot, newP)
	for i, s := range newSnaps {
		repart[dataflow.TaskID{Op: p.Op, Index: i}] = s
	}
	coord.applyRescale(epoch, removed, repart, newPhys.NumTasks())
	// rescaleMu: Job.Rescale validates against j.graph from other
	// goroutines; Run's goroutine is the only writer.
	j.rescaleMu.Lock()
	j.graph = newGraph
	j.phys = newPhys
	j.fuseNext = fusionMap(newGraph, j.opts.DisableFusion)
	j.rescaleMu.Unlock()

	ev := &RescaleEvent{
		Op:             p.Op,
		OldParallelism: oldP,
		NewParallelism: newP,
		Epoch:          epoch,
		MovedBytes:     moved,
		DeadWorkers:    deadList(dead),
		Attempt:        attemptNo,
	}
	var newPlan *dataflow.Plan
	if j.opts.OnRescale != nil {
		newPlan, err = j.opts.OnRescale(*ev, plan, newPhys)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: rescale re-placement for %q: %w", p.Op, err)
		}
	} else {
		newPlan, err = defaultRescalePlan(plan, newPhys, j.spec, dead)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: rescale %q: %w", p.Op, err)
		}
	}
	if err := j.validateRecoveryPlan(newPlan, dead); err != nil {
		return nil, nil, err
	}
	return newPlan, ev, nil
}

// defaultRescalePlan keeps every surviving task where it is and packs new
// tasks onto the lowest-index live workers with free slots — deterministic,
// so distributed coordinator and tests agree on placement without a search.
func defaultRescalePlan(prev *dataflow.Plan, phys *dataflow.PhysicalGraph, spec ClusterSpec, dead map[int]bool) (*dataflow.Plan, error) {
	plan := dataflow.NewPlanSized(phys.NumTasks())
	slotUse := make([]int, len(spec.Workers))
	var fresh []dataflow.TaskID
	for _, t := range phys.Tasks() {
		if w, ok := prev.Worker(t); ok {
			plan.Assign(t, w)
			if w >= 0 && w < len(slotUse) {
				slotUse[w]++
			}
			continue
		}
		fresh = append(fresh, t)
	}
	for _, t := range fresh {
		placed := false
		for w := range spec.Workers {
			if !dead[w] && slotUse[w] < spec.Workers[w].Slots {
				plan.Assign(t, w)
				slotUse[w]++
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("no free slot for new task %v (need OnRescale or more capacity)", t)
		}
	}
	return plan, nil
}

// fusionMap recomputes the fusion successor map for a (possibly rescaled)
// graph; NewJob and applyRescale share it so an attempt after a rescale
// fuses by exactly the same rule as the first.
func fusionMap(g *dataflow.LogicalGraph, disabled bool) map[dataflow.OperatorID]dataflow.OperatorID {
	fuseNext := make(map[dataflow.OperatorID]dataflow.OperatorID)
	if disabled {
		return fuseNext
	}
	for _, op := range g.Operators() {
		if next, ok := dataflow.PipelinedSuccessor(g, op.ID); ok {
			fuseNext[op.ID] = next
		}
	}
	return fuseNext
}

// maybeTriggerRescale aborts the attempt for a pending rescale once epoch
// completes. Called from snapshotTask on task goroutines; the failure event,
// if any, wins the race (the rescale stays pending and re-arms).
func (a *attempt) maybeTriggerRescale(epoch int64) {
	if a.dist != nil {
		// Distributed workers drain under coordinator control (the store
		// lives coordinator-side and remote record() never completes epochs),
		// so this path is in-process only.
		return
	}
	p := a.j.dueRescale(epoch)
	if p == nil {
		return
	}
	a.mu.Lock()
	if a.failEv == nil && a.rescaleEpoch == 0 {
		a.rescaleEpoch = epoch
		a.rescaleAt = a.clk()
	}
	a.mu.Unlock()
	a.doAbort()
}

// takeRescale reports the epoch a rescale drained at, or 0. A concurrent
// failure event takes precedence: the caller handles the fault and the
// still-pending rescale re-triggers next epoch.
func (a *attempt) takeRescale() (int64, time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failEv != nil {
		return 0, time.Time{}
	}
	return a.rescaleEpoch, a.rescaleAt
}

func emitRescaleStart(tel *telemetry.Telemetry, ev *RescaleEvent) {
	tel.Tracer().Emit(telemetry.Event{
		Kind:  telemetry.EventRescaleStart,
		Op:    string(ev.Op),
		Epoch: ev.Epoch,
		Attrs: map[string]any{
			"from":              ev.OldParallelism,
			"to":                ev.NewParallelism,
			"state_moved_bytes": ev.MovedBytes,
		},
	})
}

func emitRescaleComplete(tel *telemetry.Telemetry, ev *RescaleEvent, downtime time.Duration) {
	tel.Tracer().Emit(telemetry.Event{
		Kind:  telemetry.EventRescaleComplete,
		Op:    string(ev.Op),
		Epoch: ev.Epoch,
		Attrs: map[string]any{
			"from":        ev.OldParallelism,
			"to":          ev.NewParallelism,
			"downtime_ms": downtime.Seconds() * 1e3,
		},
	})
}
