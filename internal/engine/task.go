package engine

import (
	"context"
	"fmt"
	"time"

	"capsys/internal/dataflow"
	"capsys/internal/telemetry"
)

// taskRuntime is one deployed task: its identity, placement, exchange
// endpoints and the mutable state of its processing loop. Every field is
// owned by the task's goroutine except inbox (senders write) and the
// resources/attempt pointers (internally synchronized).
type taskRuntime struct {
	id      dataflow.TaskID
	worker  int
	res     *WorkerResources
	att     *attempt
	inbox   chan message
	numIn   int
	outs    []*downstreamEdge
	senders []edgeSender
	// emitFn is the bound emit method, materialized once at wiring time so
	// per-record Process calls don't allocate a fresh method value.
	emitFn func(Record)
	// gate is this task's receive-side credit gate (nil under the unary
	// transport); dequeuing a batch from the inbox releases its credits.
	gate    *creditGate
	op      any // Operator or Source
	ctx     *TaskContext
	cpuCost float64
	isSink  bool

	// cpuShard/netShard are this task's private shards of the worker's CPU
	// and network meters. Only this task's goroutine strikes them (a fused
	// member is driven by its chain head's goroutine, preserving the
	// single-writer contract).
	cpuShard *MeterShard
	netShard *MeterShard

	// fusedIn marks a task that runs inline on its chain head's goroutine
	// (it gets no goroutine of its own); fused lists this task's directly
	// fused downstream members, and fusedOut counts records this task handed
	// to fused members without an exchange hop.
	fusedIn  bool
	fused    []*taskRuntime
	fusedOut int64

	// chanWM holds the max event time seen per incoming channel; the
	// task's watermark is their minimum. EOF lifts a channel to +inf.
	chanWM    []int64
	watermark int64

	// Barrier alignment state: chanEOF marks exhausted channels (an EOF'd
	// channel counts as aligned), chanSeen marks channels whose barrier for
	// the in-flight epoch has arrived, alignBuf holds messages that arrived
	// on already-aligned channels (they belong to the next epoch), and
	// queue holds released messages awaiting processing.
	chanEOF    []bool
	chanSeen   []bool
	aligning   bool
	alignEpoch int64
	alignBuf   []message
	queue      []message

	// epoch is the last snapshot epoch this task completed.
	epoch int64
	// killEpoch/killIdx arm a worker-kill fault for this task (-1 = none).
	killEpoch int64
	killIdx   int
	// srcOffset is the restored source position (next record index).
	srcOffset int64
	// restore carries the snapshot to apply during wiring (rr positions).
	restore *taskSnapshot

	// dead marks a degraded task: it drains and discards its input.
	dead bool
	// aborted marks that this attempt is being torn down for recovery.
	aborted bool
	// failure holds the first genuine operator error.
	failure error

	// serviceDebt accumulates per-record CPU service time that has not yet
	// been slept off; sleeps are batched to keep timer overhead low.
	serviceDebt float64

	// lat is the task's end-to-end latency histogram (nil when telemetry is
	// off or the task is a source). ingestNS is the source stamp inherited
	// from the message currently being processed; emitted records carry it
	// downstream, and Close-time flushes reuse the last stamp seen.
	lat      *telemetry.Histogram
	ingestNS int64
	// batchSizeH observes flushed batch sizes (nil when telemetry is off or
	// the transport is unary).
	batchSizeH *telemetry.Histogram

	recordsIn, recordsOut, bytesOut int64
	busy, bp                        time.Duration
	// Exchange counters (batched transport): batches flushed, records they
	// carried, and credit-gate stalls (count and time waited).
	batches, batchRecords, creditStalls int64
	creditStallT                        time.Duration
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// observe updates the per-channel watermark state for an arriving message.
func (rt *taskRuntime) observe(msg message) {
	if msg.eof {
		rt.chanWM[msg.ch] = maxInt64
	} else if msg.rec.Time > rt.chanWM[msg.ch] {
		rt.chanWM[msg.ch] = msg.rec.Time
	} else {
		return
	}
	rt.refreshWatermark()
}

// refreshWatermark recomputes the task watermark as the minimum over its
// per-channel watermarks.
func (rt *taskRuntime) refreshWatermark() {
	wm := int64(maxInt64)
	for _, w := range rt.chanWM {
		if w < wm {
			wm = w
		}
	}
	rt.watermark = wm
}

// emit fans one record out to every out-edge through the transport's
// sender endpoints.
func (rt *taskRuntime) emit(rec Record) {
	for _, s := range rt.senders {
		if rt.aborted {
			return
		}
		s.send(rec)
	}
}

// forwardBarrier flushes pending batches and broadcasts a checkpoint
// barrier on every out-edge.
func (rt *taskRuntime) forwardBarrier(epoch int64) {
	for _, s := range rt.senders {
		if rt.aborted {
			return
		}
		s.barrier(epoch)
	}
}

// processBatch runs a batch message through the operator entry by entry,
// without materializing per-record messages. The batch's credits were
// already released when the message left the inbox (see runOperator), so
// upstream senders make progress while the entries are processed. Busy time
// is clocked once around the whole batch — amortizing the timer reads is
// part of the batched transport's per-record saving.
func (a *attempt) processBatch(rt *taskRuntime, opr Operator, msg message) {
	t0 := a.clk()
	bpBefore := rt.bp
	for i := range msg.batch {
		e := &msg.batch[i]
		rt.observe(message{rec: e.rec, ch: msg.ch})
		if rt.failure != nil {
			continue // drain-and-discard after a failure
		}
		if rt.dead {
			a.lost.Add(1)
			continue
		}
		a.processRecord(rt, opr, e.rec, msg.in, e.ingest, false)
		if rt.aborted {
			return
		}
	}
	rt.busy += a.clk.Since(t0) - (rt.bp - bpBefore)
	// One coalesced draw pays the whole batch's striked CPU cost.
	rt.cpuShard.Draw()
	putBatch(msg.batch)
}

// processRecord runs one input record through the operator: fault hooks,
// the CPU service charge, the operator itself, and busy/latency accounting.
// Callers have already updated watermarks and drain gating state. timed
// selects per-record busy clocking (unary path); batch callers clock the
// whole batch instead.
func (a *attempt) processRecord(rt *taskRuntime, opr Operator, rec Record, in int, ingest int64, timed bool) {
	rt.recordsIn++
	if d := a.faults.stallFor(rt.id, rt.recordsIn); d > 0 {
		time.Sleep(d)
	}
	var t0 time.Time
	var bpBefore time.Duration
	if timed {
		t0 = a.clk()
		bpBefore = rt.bp
	}
	if ingest > 0 {
		rt.ingestNS = ingest
	}
	rt.chargeCPU(rt.cpuCost)
	if err := opr.Process(rec, in, rt.emitFn); err != nil {
		rt.failure = err
		return
	}
	if timed {
		// Useful time excludes downstream backpressure accumulated inside
		// emit, matching how Flink separates busy from backpressured time.
		rt.busy += a.clk.Since(t0) - (rt.bp - bpBefore)
	}
	if ingest > 0 && rt.lat != nil {
		// End-to-end latency: source emission to the end of this
		// operator's processing (including any backpressure en route).
		rt.lat.Observe(float64(a.clk().UnixNano()-ingest) / 1e9)
	}
	if rt.aborted {
		return
	}
	if a.faults.shouldCrash(rt.id, rt.recordsIn) {
		if a.trigger(FaultCrashTask, rt, rt.epoch, rt.recordsIn, -1) {
			rt.aborted = true
			return
		}
		rt.dead = true
	}
}

// serviceSleepBatch is the minimum accumulated service time before the task
// actually sleeps; smaller values are more faithful but timer-bound.
const serviceSleepBatch = 100e-6 // seconds

// chargeCPU models the per-record compute cost: the record occupies this
// task's thread for cost seconds (service time), and the cost is drawn from
// the worker's shared CPU meter so that co-located tasks whose aggregate
// demand exceeds the worker's cores experience additional slowdown — the
// contention effect CAPS placement avoids.
func (rt *taskRuntime) chargeCPU(cost float64) {
	if cost <= 0 {
		return
	}
	// Strike the task's private shard (one plain add, one atomic store) and
	// coalesce the bucket draw with the batched service sleep, so the meter
	// mutex leaves the per-record path entirely.
	rt.cpuShard.Strike(cost)
	rt.serviceDebt += cost
	if rt.serviceDebt >= serviceSleepBatch {
		d := time.Duration(rt.serviceDebt * float64(time.Second))
		rt.serviceDebt = 0
		rt.cpuShard.Draw()
		time.Sleep(d)
	}
}

// runSource drives a source task at its configured rate, injecting
// checkpoint barriers every SnapshotInterval records. A restored source
// fast-forwards its generator through the replayed prefix so the generator's
// internal state — and therefore the rest of the stream — matches the
// original run exactly. Rate pacing always follows the wall clock; the
// attempt clock only stamps statistics.
func (a *attempt) runSource(ctx context.Context, rt *taskRuntime, src Source) error {
	op := a.j.graph.Operator(rt.id.Op)
	rate := 0.0
	if r, ok := a.j.opts.SourceRate[rt.id.Op]; ok && r > 0 {
		rate = r / float64(op.Parallelism)
	}
	interval := a.j.opts.SnapshotInterval
	for i := int64(0); i < rt.srcOffset; i++ {
		if _, ok := src.Next(i); !ok {
			break
		}
	}
	// With telemetry attached every record takes its own clock stamp — it
	// doubles as the ingest time end-to-end latency is measured from. With
	// telemetry off, busy time is instead clocked over contiguous runs of
	// records: a span opens lazily at the first record after an
	// interruption (pacing wait, stall, barrier) and closes at the next
	// one, which telescopes to the same total while keeping the per-record
	// hot path free of clock reads.
	stamped := a.j.opts.Telemetry != nil
	var runT0 time.Time
	var runBP time.Duration
	closeRun := func() {
		if !runT0.IsZero() {
			rt.busy += a.clk.Since(runT0) - (rt.bp - runBP)
			runT0 = time.Time{}
		}
	}
	defer closeRun()
	start := time.Now()
	for i := rt.srcOffset; i < a.j.opts.RecordsPerSource; i++ {
		if ctx.Err() != nil || rt.aborted {
			break
		}
		if rate > 0 {
			due := start.Add(time.Duration(float64(i-rt.srcOffset) / rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				closeRun()
				select {
				case <-time.After(d):
				case <-ctx.Done():
				case <-rt.att.abort:
					rt.aborted = true
				}
			}
		}
		if rt.aborted {
			return nil
		}
		rec, ok := src.Next(i)
		if !ok {
			break
		}
		if d := a.faults.stallFor(rt.id, i+1); d > 0 {
			closeRun()
			time.Sleep(d)
		}
		if stamped {
			t0 := a.clk()
			rt.ingestNS = t0.UnixNano()
			rt.chargeCPU(rt.cpuCost)
			bpBefore := rt.bp
			rt.emit(rec)
			rt.busy += a.clk.Since(t0) - (rt.bp - bpBefore)
		} else {
			if runT0.IsZero() {
				runT0 = a.clk()
				runBP = rt.bp
			}
			rt.chargeCPU(rt.cpuCost)
			rt.emit(rec)
		}
		if rt.aborted {
			return nil
		}
		if interval > 0 && (i+1)%interval == 0 {
			closeRun()
			epoch := (i + 1) / interval
			if a.coord.noteStarted(epoch) {
				a.j.opts.Telemetry.Tracer().Emit(telemetry.Event{
					Kind:  telemetry.EventCheckpointStart,
					Epoch: epoch,
					Op:    string(rt.id.Op),
				})
			}
			if err := a.snapshotTask(rt, epoch, i+1); err != nil {
				return err
			}
			rt.forwardBarrier(epoch)
			rt.epoch = epoch
			if rt.aborted {
				return nil
			}
			if rt.killEpoch >= 0 && epoch >= rt.killEpoch {
				if a.trigger(FaultKillWorker, rt, epoch, i+1, rt.killIdx) {
					rt.aborted = true
					return nil
				}
				// Degraded: this source stops emitting; the rest of its
				// records are lost throughput.
				a.lost.Add(a.j.opts.RecordsPerSource - (i + 1))
				rt.dead = true
				break
			}
		}
	}
	if rt.aborted {
		return nil
	}
	rt.finish(nil)
	return nil
}

// alignmentComplete reports whether every live channel has delivered the
// in-flight barrier (EOF'd channels count as aligned).
func (rt *taskRuntime) alignmentComplete() bool {
	for i := range rt.chanSeen {
		if !rt.chanSeen[i] && !rt.chanEOF[i] {
			return false
		}
	}
	return true
}

// completeAlignment fires when the in-flight barrier has arrived on every
// live channel: snapshot, forward the barrier downstream, release held-back
// messages, then honor any epoch-aligned worker kill.
func (a *attempt) completeAlignment(rt *taskRuntime) error {
	epoch := rt.alignEpoch
	rt.aligning = false
	for i := range rt.chanSeen {
		rt.chanSeen[i] = false
	}
	// Held-back messages arrived after older queued ones; keep FIFO order
	// per channel by appending them behind the existing queue.
	rt.queue = append(rt.queue, rt.alignBuf...)
	rt.alignBuf = nil
	if !rt.dead && rt.failure == nil {
		if err := a.snapshotTask(rt, epoch, 0); err != nil {
			return err
		}
	}
	rt.epoch = epoch
	rt.forwardBarrier(epoch)
	if rt.aborted {
		return nil
	}
	if rt.killEpoch >= 0 && epoch >= rt.killEpoch && !rt.dead {
		if a.trigger(FaultKillWorker, rt, epoch, rt.recordsIn, rt.killIdx) {
			rt.aborted = true
			return nil
		}
		rt.dead = true
	}
	return nil
}

// runOperator drives a non-source task: consume the inbox until every
// upstream channel has delivered EOF, aligning on checkpoint barriers along
// the way. Batch messages release their credits the moment they leave the
// inbox — the same point a unary record frees its inbox slot, and the only
// release point that cannot deadlock alignment, since every sender to this
// task shares one gate and a pre-barrier flush must be able to acquire —
// and are then either processed inline or held whole in the alignment
// buffer. After an operator failure — or once the task is degraded by an
// unrecovered fault — the task keeps draining (and discarding) its inbox so
// upstream senders blocked on the full channel cannot deadlock the job;
// barriers are still forwarded so live tasks keep checkpointing around the
// corpse.
func (a *attempt) runOperator(rt *taskRuntime) error {
	opr, ok := rt.op.(Operator)
	if !ok {
		return fmt.Errorf("unexpected instance type %T", rt.op)
	}
	remaining := rt.numIn
	for remaining > 0 {
		var msg message
		if len(rt.queue) > 0 {
			msg, rt.queue = rt.queue[0], rt.queue[1:]
		} else {
			select {
			case msg = <-rt.inbox:
			case <-rt.att.abort:
				rt.aborted = true
				return nil
			}
			if rt.gate != nil && len(msg.batch) > 0 {
				rt.gate.release(int64(len(msg.batch)))
			}
		}
		if rt.aligning && rt.chanSeen[msg.ch] {
			// This channel already delivered the in-flight barrier:
			// anything after it belongs to the next epoch. Batch messages
			// are held whole (their credits are already back).
			rt.alignBuf = append(rt.alignBuf, msg)
			continue
		}
		if len(msg.batch) > 0 {
			a.processBatch(rt, opr, msg)
			if rt.aborted {
				return nil
			}
			continue
		}
		if msg.barrier {
			if !rt.aligning {
				rt.aligning = true
				rt.alignEpoch = msg.epoch
			}
			rt.chanSeen[msg.ch] = true
			if rt.alignmentComplete() {
				if err := a.completeAlignment(rt); err != nil {
					rt.failure = err
				}
				if rt.aborted {
					return nil
				}
			}
			continue
		}
		if msg.eof {
			rt.chanEOF[msg.ch] = true
			remaining--
			rt.observe(msg)
			if rt.aligning && rt.alignmentComplete() {
				if err := a.completeAlignment(rt); err != nil {
					rt.failure = err
				}
				if rt.aborted {
					return nil
				}
			}
			continue
		}
		rt.observe(msg)
		if rt.failure != nil {
			continue // drain-and-discard after a failure
		}
		if rt.dead {
			a.lost.Add(1)
			continue
		}
		a.processRecord(rt, opr, msg.rec, msg.in, msg.ingest, true)
		if rt.aborted {
			return nil
		}
	}
	if rt.aborted {
		return nil
	}
	if rt.failure != nil {
		rt.finish(nil)
		return rt.failure
	}
	if rt.dead {
		rt.finish(nil)
		return nil
	}
	rt.finish(opr)
	return nil
}

// finish flushes the operator (if any), then flushes pending batches and
// propagates EOF downstream.
func (rt *taskRuntime) finish(opr Operator) {
	rt.cpuShard.Draw() // settle any CPU cost striked since the last draw
	if opr != nil {
		clk := rt.att.clk
		t0 := clk()
		_ = opr.Close(rt.emitFn)
		rt.busy += clk.Since(t0)
	}
	for _, s := range rt.senders {
		if rt.aborted {
			return
		}
		s.eof()
	}
}
