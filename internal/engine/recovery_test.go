package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"capsys/internal/dataflow"
)

// canonicalTaskCounters serializes the deterministic portion of a JobResult:
// per-task record/byte counters plus the job-level record totals. Wall-clock
// fields (busy, backpressure, downtime) and restore-point-dependent fields
// (RecordsReprocessed, SnapshotsTaken, RestoredEpoch) are deliberately
// excluded — the *restore epoch* depends on goroutine timing, but the final
// counters must not.
func canonicalTaskCounters(res *JobResult) string {
	ids := make([]dataflow.TaskID, 0, len(res.Tasks))
	for id := range res.Tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Op != ids[j].Op {
			return ids[i].Op < ids[j].Op
		}
		return ids[i].Index < ids[j].Index
	})
	var sb strings.Builder
	for _, id := range ids {
		st := res.Tasks[id]
		fmt.Fprintf(&sb, "%v in=%d out=%d bytes=%d\n", id, st.RecordsIn, st.RecordsOut, st.BytesOut)
	}
	fmt.Fprintf(&sb, "sink=%d source=%d\n", res.SinkRecords, res.SourceRecords)
	return sb.String()
}

// canonicalOutcome extends the counters with the fault outcome, which must
// also replay identically.
func canonicalOutcome(res *JobResult) string {
	return canonicalTaskCounters(res) +
		fmt.Sprintf("lost=%d recoveries=%d failed=%v faults=%d\n",
			res.LostRecords, res.Recoveries, res.Failed, len(res.Faults))
}

// winPipeline builds the shared stateful test topology:
//
//	src(2) -> win(2, keyed tumbling count) -> sink(1)
//
// placed explicitly as w0:{src[0],win[0]}, w1:{src[1],win[1]}, w2:{sink[0]}
// on three workers, with snapshots every 100 records per source.
func winPipeline(t *testing.T, fault FaultPlan, withRecovery bool, muts ...func(*JobOptions)) *Job {
	t.Helper()
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 2, Selectivity: 0.01},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	phys, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	base := dataflow.NewPlan()
	base.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	base.Assign(dataflow.TaskID{Op: "src", Index: 1}, 1)
	base.Assign(dataflow.TaskID{Op: "win", Index: 0}, 0)
	base.Assign(dataflow.TaskID{Op: "win", Index: 1}, 1)
	base.Assign(dataflow.TaskID{Op: "sink", Index: 0}, 2)
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Key: fmt.Sprintf("k%d", i%7), Value: i, Time: i}, true
			}), nil
		},
		"win": func(*TaskContext) (any, error) {
			return NewSlidingWindow(100, 100, countAgg, countResult), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	opts := JobOptions{
		RecordsPerSource: 1000,
		SnapshotInterval: 100,
		Stateful:         map[dataflow.OperatorID]bool{"win": true},
		FaultPlan:        fault,
	}
	if withRecovery {
		opts.OnFailure = func(ev FailureEvent) (*dataflow.Plan, error) {
			dead := make(map[int]bool)
			for _, w := range ev.DeadWorkers {
				dead[w] = true
			}
			np := dataflow.NewPlan()
			for _, task := range phys.Tasks() {
				w := base.MustWorker(task)
				if dead[w] {
					w = 2 // deterministic survivor with free slots
				}
				np.Assign(task, w)
			}
			return np, nil
		}
	}
	for _, mut := range muts {
		mut(&opts)
	}
	job, err := NewJob(g, base, bigWorkers(3, 4), factories, opts)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// runningSumSource is a *stateful* generator: each Next call advances an
// internal accumulator, so the value of record i depends on every call
// before it. Correct recovery must fast-forward the generator through the
// replayed prefix — restarting it cold would change the stream.
type runningSumSource struct{ sum int64 }

func (s *runningSumSource) Open(*TaskContext) error { return nil }
func (s *runningSumSource) Next(i int64) (Record, bool) {
	s.sum += i + 1
	// Key "" -> round-robin partitioning, exercising rr position restore.
	return Record{Value: s.sum, Time: i}, true
}

// sumPipeline: src(2, stateful running-sum) -> check(2) -> sink(1). The
// check operator forwards only records whose value CONTRADICTS the closed
// form sum(1..i+1), so any sink record is proof of a replay bug.
func sumPipeline(t *testing.T, fault FaultPlan, withRecovery bool, muts ...func(*JobOptions)) *Job {
	t.Helper()
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "check", Kind: dataflow.KindFilter, Parallelism: 2, Selectivity: 0},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	phys, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	base := dataflow.NewPlan()
	base.Assign(dataflow.TaskID{Op: "src", Index: 0}, 0)
	base.Assign(dataflow.TaskID{Op: "src", Index: 1}, 1)
	base.Assign(dataflow.TaskID{Op: "check", Index: 0}, 0)
	base.Assign(dataflow.TaskID{Op: "check", Index: 1}, 1)
	base.Assign(dataflow.TaskID{Op: "sink", Index: 0}, 2)
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) { return &runningSumSource{}, nil },
		"check": func(*TaskContext) (any, error) {
			return NewFilter(func(r Record) bool {
				i := r.Time
				return r.Value.(int64) != (i+1)*(i+2)/2
			}), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	opts := JobOptions{
		RecordsPerSource: 1000,
		SnapshotInterval: 100,
		FaultPlan:        fault,
	}
	if withRecovery {
		opts.OnFailure = func(ev FailureEvent) (*dataflow.Plan, error) {
			dead := make(map[int]bool)
			for _, w := range ev.DeadWorkers {
				dead[w] = true
			}
			np := dataflow.NewPlan()
			for _, task := range phys.Tasks() {
				w := base.MustWorker(task)
				if dead[w] {
					w = 2
				}
				np.Assign(task, w)
			}
			return np, nil
		}
	}
	for _, mut := range muts {
		mut(&opts)
	}
	job, err := NewJob(g, base, bigWorkers(3, 4), factories, opts)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// TestDeterministicRecoveryBattery is the core fault battery: every case is
// run three times and must produce byte-identical counters, and recovered
// cases must match a clean (fault-free) run exactly — zero records lost,
// zero duplicated, despite the mid-run failure.
func TestDeterministicRecoveryBattery(t *testing.T) {
	cases := []struct {
		name           string
		build          func(t *testing.T) *Job
		clean          func(t *testing.T) *Job // nil: no clean-run comparison
		wantRecoveries int
		wantFailed     bool
		wantLost       bool
		verify         func(t *testing.T, res *JobResult)
	}{
		{
			name: "kill-worker-recover",
			build: func(t *testing.T) *Job {
				return winPipeline(t, FaultPlan{KillWorkers: []WorkerKill{{Worker: 1, AtEpoch: 3}}}, true)
			},
			clean:          func(t *testing.T) *Job { return winPipeline(t, FaultPlan{}, false) },
			wantRecoveries: 1,
		},
		{
			name: "kill-worker-stateful-source-recover",
			build: func(t *testing.T) *Job {
				return sumPipeline(t, FaultPlan{KillWorkers: []WorkerKill{{Worker: 1, AtEpoch: 4}}}, true)
			},
			clean:          func(t *testing.T) *Job { return sumPipeline(t, FaultPlan{}, false) },
			wantRecoveries: 1,
			verify: func(t *testing.T, res *JobResult) {
				if res.SinkRecords != 0 {
					t.Errorf("check operator flagged %d replayed records with wrong values", res.SinkRecords)
				}
				if res.SourceRecords != 2000 {
					t.Errorf("SourceRecords = %d, want 2000", res.SourceRecords)
				}
			},
		},
		{
			name: "crash-task-recover",
			build: func(t *testing.T) *Job {
				return winPipeline(t, FaultPlan{CrashTasks: []TaskCrash{
					{Task: dataflow.TaskID{Op: "win", Index: 0}, AfterRecords: 250},
				}}, false)
			},
			clean:          func(t *testing.T) *Job { return winPipeline(t, FaultPlan{}, false) },
			wantRecoveries: 1,
		},
		{
			name: "kill-worker-degraded",
			build: func(t *testing.T) *Job {
				return winPipeline(t, FaultPlan{KillWorkers: []WorkerKill{{Worker: 1, AtEpoch: 3}}}, false)
			},
			wantFailed: true,
			wantLost:   true,
		},
		{
			name: "stall-task",
			build: func(t *testing.T) *Job {
				return winPipeline(t, FaultPlan{StallTasks: []TaskStall{
					{Task: dataflow.TaskID{Op: "win", Index: 0}, AfterRecords: 100, Stall: 20 * time.Millisecond},
				}}, false)
			},
			clean: func(t *testing.T) *Job { return winPipeline(t, FaultPlan{}, false) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var canon []string
			var last *JobResult
			for run := 0; run < 3; run++ {
				res, err := tc.build(t).Run(context.Background())
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				canon = append(canon, canonicalOutcome(res))
				last = res
			}
			for i := 1; i < len(canon); i++ {
				if canon[i] != canon[0] {
					t.Fatalf("run %d diverged from run 0:\n--- run 0 ---\n%s--- run %d ---\n%s", i, canon[0], i, canon[i])
				}
			}
			if last.Recoveries != tc.wantRecoveries {
				t.Errorf("Recoveries = %d, want %d", last.Recoveries, tc.wantRecoveries)
			}
			if last.Failed != tc.wantFailed {
				t.Errorf("Failed = %v, want %v", last.Failed, tc.wantFailed)
			}
			if tc.wantLost && last.LostRecords == 0 {
				t.Error("expected lost records, got none")
			}
			if !tc.wantLost && last.LostRecords != 0 {
				t.Errorf("LostRecords = %d, want 0", last.LostRecords)
			}
			if tc.wantRecoveries > 0 {
				if last.Downtime <= 0 {
					t.Error("recovered run reports zero downtime")
				}
				if last.SnapshotsTaken == 0 {
					t.Error("recovered run reports zero snapshots")
				}
				recovered := false
				for _, f := range last.Faults {
					if f.Recovered {
						recovered = true
					}
				}
				if !recovered {
					t.Errorf("no fault marked recovered: %+v", last.Faults)
				}
			}
			if tc.clean != nil {
				cres, err := tc.clean(t).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if got, want := canonicalTaskCounters(last), canonicalTaskCounters(cres); got != want {
					t.Errorf("recovered counters differ from clean run (exactly-once violated):\n--- recovered ---\n%s--- clean ---\n%s", got, want)
				}
			}
			if tc.verify != nil {
				tc.verify(t, last)
			}
		})
	}
}

// A recovered run must expose the recovery in the metrics registry too.
func TestRecoveryMetricsExported(t *testing.T) {
	job := winPipeline(t, FaultPlan{KillWorkers: []WorkerKill{{Worker: 1, AtEpoch: 3}}}, true)
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Metrics.Snapshot()
	if snap["job.recoveries"] != 1 {
		t.Errorf("job.recoveries = %v, want 1", snap["job.recoveries"])
	}
	if snap["job.downtime_seconds"] <= 0 {
		t.Error("job.downtime_seconds not positive")
	}
	if snap["job.snapshots"] <= 0 {
		t.Error("job.snapshots not positive")
	}
	// Tasks moved off the dead worker must report their new home.
	for _, id := range []dataflow.TaskID{{Op: "src", Index: 1}, {Op: "win", Index: 1}} {
		if w := res.Tasks[id].Worker; w == 1 {
			t.Errorf("task %v still reported on dead worker 1", id)
		}
	}
}

// Faults referencing nonexistent workers/tasks, and kills without a snapshot
// clock, must be rejected up front.
func TestFaultPlanValidation(t *testing.T) {
	mk := func(fault FaultPlan, interval int64) error {
		g := chainGraph(t, []dataflow.Operator{
			{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
			{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
		})
		factories := map[dataflow.OperatorID]Factory{
			"src": func(*TaskContext) (any, error) {
				return NewSource(func(task, i int64) (Record, bool) { return Record{}, false }), nil
			},
			"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
		}
		_, err := NewJob(g, roundRobinPlan(t, g, 1), bigWorkers(1, 2), factories, JobOptions{
			RecordsPerSource: 10,
			SnapshotInterval: interval,
			FaultPlan:        fault,
		})
		return err
	}
	if err := mk(FaultPlan{KillWorkers: []WorkerKill{{Worker: 5, AtEpoch: 1}}}, 10); err == nil {
		t.Error("kill of nonexistent worker accepted")
	}
	if err := mk(FaultPlan{KillWorkers: []WorkerKill{{Worker: 0, AtEpoch: 1}}}, 0); err == nil {
		t.Error("worker kill without snapshot interval accepted")
	}
	if err := mk(FaultPlan{CrashTasks: []TaskCrash{{Task: dataflow.TaskID{Op: "nope", Index: 0}, AfterRecords: 1}}}, 10); err == nil {
		t.Error("crash of unknown task accepted")
	}
	if err := mk(FaultPlan{StallTasks: []TaskStall{{Task: dataflow.TaskID{Op: "nope", Index: 0}}}}, 10); err == nil {
		t.Error("stall of unknown task accepted")
	}
	if err := mk(FaultPlan{}, 10); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// A recovery plan that re-uses the dead worker, drops tasks, or overloads a
// survivor must fail the run loudly, never deploy silently.
func TestRecoveryPlanValidated(t *testing.T) {
	bad := []struct {
		name string
		plan func(phys *dataflow.PhysicalGraph, ev FailureEvent) *dataflow.Plan
	}{
		{"dead-worker", func(phys *dataflow.PhysicalGraph, ev FailureEvent) *dataflow.Plan {
			np := dataflow.NewPlan()
			for _, task := range phys.Tasks() {
				np.Assign(task, ev.Worker) // everything onto the corpse
			}
			return np
		}},
		{"partial", func(phys *dataflow.PhysicalGraph, ev FailureEvent) *dataflow.Plan {
			np := dataflow.NewPlan()
			np.Assign(phys.Tasks()[0], 0)
			return np
		}},
		{"nil", func(*dataflow.PhysicalGraph, FailureEvent) *dataflow.Plan { return nil }},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			g := chainGraph(t, []dataflow.Operator{
				{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
				{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2},
			})
			phys, err := dataflow.Expand(g)
			if err != nil {
				t.Fatal(err)
			}
			factories := map[dataflow.OperatorID]Factory{
				"src": func(*TaskContext) (any, error) {
					return NewSource(func(task, i int64) (Record, bool) {
						return Record{Value: i, Time: i}, true
					}), nil
				},
				"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
			}
			opts := JobOptions{
				RecordsPerSource: 500,
				SnapshotInterval: 50,
				FaultPlan:        FaultPlan{KillWorkers: []WorkerKill{{Worker: 1, AtEpoch: 2}}},
				OnFailure: func(ev FailureEvent) (*dataflow.Plan, error) {
					return tc.plan(phys, ev), nil
				},
			}
			job, err := NewJob(g, roundRobinPlan(t, g, 2), bigWorkers(2, 4), factories, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := job.Run(context.Background()); err == nil {
				t.Error("invalid recovery plan accepted")
			}
		})
	}
}

// Snapshots alone (no faults) must not change results, and clean runs with
// and without snapshots must agree — the barrier machinery is supposed to
// be invisible when nothing fails.
func TestSnapshotsDoNotPerturbResults(t *testing.T) {
	with, err := winPipeline(t, FaultPlan{}, false).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g := chainGraph(t, []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 2, Selectivity: 0.01},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	})
	factories := map[dataflow.OperatorID]Factory{
		"src": func(*TaskContext) (any, error) {
			return NewSource(func(task, i int64) (Record, bool) {
				return Record{Key: fmt.Sprintf("k%d", i%7), Value: i, Time: i}, true
			}), nil
		},
		"win": func(*TaskContext) (any, error) {
			return NewSlidingWindow(100, 100, countAgg, countResult), nil
		},
		"sink": func(*TaskContext) (any, error) { return NewSink(nil), nil },
	}
	job, err := NewJob(g, roundRobinPlan(t, g, 3), bigWorkers(3, 4), factories, JobOptions{
		RecordsPerSource: 1000,
		Stateful:         map[dataflow.OperatorID]bool{"win": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	without, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if with.SinkRecords != without.SinkRecords {
		t.Errorf("snapshots changed sink output: %d vs %d", with.SinkRecords, without.SinkRecords)
	}
	if with.SourceRecords != without.SourceRecords {
		t.Errorf("snapshots changed source output: %d vs %d", with.SourceRecords, without.SourceRecords)
	}
	if with.SnapshotsTaken == 0 {
		t.Error("no snapshots recorded despite SnapshotInterval")
	}
}
