package engine

import (
	"encoding/json"
	"fmt"
)

// incrementalJoinOp is a two-input streaming hash join: records from both
// inputs are kept in per-key list state, and each arriving record
// immediately joins against all buffered records of the opposite side (the
// "incremental join" of Nexmark Q3 / the paper's Q4-join). State grows with
// the stream; an optional per-key cap bounds it like a TTL would.
type incrementalJoinOp struct {
	fn        JoinFunc
	perKeyCap int
	ctx       *TaskContext
}

// NewIncrementalJoin creates an incremental two-input join. perKeyCap
// bounds the number of records buffered per (key, side); 0 means unbounded.
func NewIncrementalJoin(fn JoinFunc, perKeyCap int) Operator {
	return &incrementalJoinOp{fn: fn, perKeyCap: perKeyCap}
}

func (o *incrementalJoinOp) Open(ctx *TaskContext) error {
	if ctx.State == nil {
		return fmt.Errorf("engine: incremental join requires state")
	}
	o.ctx = ctx
	return nil
}

func sideKey(key string, side int) string {
	return fmt.Sprintf("%s\x00s%d", key, side)
}

type joinRec struct {
	Key  string `json:"k"`
	Val  any    `json:"v"`
	Time int64  `json:"t"`
	Size int    `json:"z"`
}

func (o *incrementalJoinOp) Process(rec Record, in int, emit Emit) error {
	if in != 0 && in != 1 {
		return fmt.Errorf("engine: incremental join input %d out of range", in)
	}
	// Join against the opposite side's buffer.
	other := o.ctx.State.List(sideKey(rec.Key, 1-in))
	for _, buf := range other {
		var jr joinRec
		if json.Unmarshal(buf, &jr) != nil {
			continue
		}
		peer := Record{Key: jr.Key, Value: jr.Val, Time: jr.Time, Size: jr.Size}
		var out Record
		var ok bool
		if in == 0 {
			out, ok = o.fn(rec, peer)
		} else {
			out, ok = o.fn(peer, rec)
		}
		if ok {
			emit(out)
		}
	}
	// Buffer this record for future matches.
	mine := sideKey(rec.Key, in)
	if o.perKeyCap > 0 && len(o.ctx.State.List(mine)) >= o.perKeyCap {
		return nil // bounded state: drop the oldest semantics simplified to drop-new
	}
	buf, err := json.Marshal(joinRec{Key: rec.Key, Val: rec.Value, Time: rec.Time, Size: rec.Size})
	if err != nil {
		return fmt.Errorf("engine: incremental join marshal: %w", err)
	}
	o.ctx.State.Append(mine, buf)
	return nil
}

func (o *incrementalJoinOp) Close(Emit) error { return nil }
