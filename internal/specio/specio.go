// Package specio serializes query specifications and cluster descriptions
// to/from JSON, the interchange format of the command-line tools: a user can
// describe their own dataflow (operators, edges, profiled unit costs, target
// rates) and cluster in a file and feed it to capsysctl or capsim.
package specio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
)

// OperatorSpec is the JSON form of one logical operator.
type OperatorSpec struct {
	ID          string  `json:"id"`
	Kind        string  `json:"kind,omitempty"`
	Parallelism int     `json:"parallelism"`
	Selectivity float64 `json:"selectivity"`
	// CPU is CPU-seconds per record, IO state bytes per record, Net output
	// bytes per record.
	CPU float64 `json:"cpu_per_record,omitempty"`
	IO  float64 `json:"io_bytes_per_record,omitempty"`
	Net float64 `json:"net_bytes_per_record,omitempty"`
}

// EdgeSpec is the JSON form of one logical edge.
type EdgeSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Mode is "all-to-all" (default) or "forward".
	Mode string `json:"mode,omitempty"`
}

// QueryFile is the JSON form of a full query specification.
type QueryFile struct {
	Name      string         `json:"name"`
	Operators []OperatorSpec `json:"operators"`
	Edges     []EdgeSpec     `json:"edges"`
	// SourceRates maps source operator IDs to target records/second.
	SourceRates map[string]float64 `json:"source_rates"`
}

// ClusterFile is the JSON form of a worker cluster.
type ClusterFile struct {
	Workers int     `json:"workers"`
	Slots   int     `json:"slots"`
	Cores   float64 `json:"cores"`
	IOBps   float64 `json:"io_bytes_per_sec"`
	NetBps  float64 `json:"net_bytes_per_sec"`
}

var kindNames = map[string]dataflow.OperatorKind{
	"":          dataflow.KindMap,
	"source":    dataflow.KindSource,
	"sink":      dataflow.KindSink,
	"map":       dataflow.KindMap,
	"filter":    dataflow.KindFilter,
	"flatmap":   dataflow.KindFlatMap,
	"window":    dataflow.KindWindow,
	"join":      dataflow.KindJoin,
	"process":   dataflow.KindProcess,
	"inference": dataflow.KindInference,
}

// ToQuerySpec converts the JSON form into a validated QuerySpec.
func (qf *QueryFile) ToQuerySpec() (nexmark.QuerySpec, error) {
	if qf.Name == "" {
		return nexmark.QuerySpec{}, fmt.Errorf("specio: query has no name")
	}
	g := dataflow.NewLogicalGraph()
	for _, os := range qf.Operators {
		kind, ok := kindNames[os.Kind]
		if !ok {
			return nexmark.QuerySpec{}, fmt.Errorf("specio: operator %q has unknown kind %q", os.ID, os.Kind)
		}
		if err := g.AddOperator(dataflow.Operator{
			ID:          dataflow.OperatorID(os.ID),
			Kind:        kind,
			Parallelism: os.Parallelism,
			Selectivity: os.Selectivity,
			Cost:        dataflow.UnitCost{CPU: os.CPU, IO: os.IO, Net: os.Net},
		}); err != nil {
			return nexmark.QuerySpec{}, fmt.Errorf("specio: %w", err)
		}
	}
	for _, es := range qf.Edges {
		mode := dataflow.AllToAll
		switch es.Mode {
		case "", "all-to-all":
		case "forward":
			mode = dataflow.Forward
		default:
			return nexmark.QuerySpec{}, fmt.Errorf("specio: unknown edge mode %q", es.Mode)
		}
		if err := g.AddEdge(dataflow.Edge{
			From: dataflow.OperatorID(es.From),
			To:   dataflow.OperatorID(es.To),
			Mode: mode,
		}); err != nil {
			return nexmark.QuerySpec{}, fmt.Errorf("specio: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nexmark.QuerySpec{}, fmt.Errorf("specio: %w", err)
	}
	rates := make(map[dataflow.OperatorID]float64, len(qf.SourceRates))
	for k, v := range qf.SourceRates {
		rates[dataflow.OperatorID(k)] = v
	}
	spec := nexmark.QuerySpec{Name: qf.Name, Graph: g, SourceRates: rates}
	if _, err := dataflow.PropagateRates(g, rates); err != nil {
		return nexmark.QuerySpec{}, fmt.Errorf("specio: %w", err)
	}
	return spec, nil
}

// FromQuerySpec converts a QuerySpec into its JSON form.
func FromQuerySpec(spec nexmark.QuerySpec) *QueryFile {
	qf := &QueryFile{Name: spec.Name, SourceRates: make(map[string]float64)}
	for _, op := range spec.Graph.Operators() {
		qf.Operators = append(qf.Operators, OperatorSpec{
			ID:          string(op.ID),
			Kind:        op.Kind.String(),
			Parallelism: op.Parallelism,
			Selectivity: op.Selectivity,
			CPU:         op.Cost.CPU,
			IO:          op.Cost.IO,
			Net:         op.Cost.Net,
		})
	}
	for _, e := range spec.Graph.Edges() {
		qf.Edges = append(qf.Edges, EdgeSpec{From: string(e.From), To: string(e.To), Mode: e.Mode.String()})
	}
	for k, v := range spec.SourceRates {
		qf.SourceRates[string(k)] = v
	}
	return qf
}

// ToCluster converts the JSON form into a cluster.
func (cf *ClusterFile) ToCluster() (*cluster.Cluster, error) {
	return cluster.Homogeneous(cf.Workers, cf.Slots, cf.Cores, cf.IOBps, cf.NetBps)
}

// LoadQuery reads a QueryFile from path ("-" = stdin) and converts it.
func LoadQuery(path string) (nexmark.QuerySpec, error) {
	data, err := readFile(path)
	if err != nil {
		return nexmark.QuerySpec{}, err
	}
	var qf QueryFile
	if err := json.Unmarshal(data, &qf); err != nil {
		return nexmark.QuerySpec{}, fmt.Errorf("specio: parsing %s: %w", path, err)
	}
	return qf.ToQuerySpec()
}

// LoadCluster reads a ClusterFile from path ("-" = stdin) and converts it.
func LoadCluster(path string) (*cluster.Cluster, error) {
	data, err := readFile(path)
	if err != nil {
		return nil, err
	}
	var cf ClusterFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("specio: parsing %s: %w", path, err)
	}
	return cf.ToCluster()
}

func readFile(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// PlanJSON is the JSON rendering of a placement plan: worker index ->
// task names.
type PlanJSON map[string][]string

// RenderPlan converts a plan for the given graph into its JSON form.
func RenderPlan(plan *dataflow.Plan, phys *dataflow.PhysicalGraph, numWorkers int) PlanJSON {
	out := make(PlanJSON)
	for w := 0; w < numWorkers; w++ {
		tasks := plan.TasksOn(w)
		if len(tasks) == 0 {
			continue
		}
		names := make([]string, len(tasks))
		for i, t := range tasks {
			names[i] = t.String()
		}
		out[fmt.Sprintf("worker-%d", w)] = names
	}
	return out
}
