package specio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
)

func TestRoundTrip(t *testing.T) {
	orig := nexmark.Q2Join()
	qf := FromQuerySpec(orig)
	data, err := json.Marshal(qf)
	if err != nil {
		t.Fatal(err)
	}
	var back QueryFile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	spec, err := back.ToQuerySpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != orig.Name {
		t.Errorf("name %q != %q", spec.Name, orig.Name)
	}
	if spec.Graph.TotalTasks() != orig.Graph.TotalTasks() {
		t.Errorf("tasks %d != %d", spec.Graph.TotalTasks(), orig.Graph.TotalTasks())
	}
	for _, op := range orig.Graph.Operators() {
		got := spec.Graph.Operator(op.ID)
		if got == nil {
			t.Fatalf("operator %s lost", op.ID)
		}
		if got.Cost != op.Cost || got.Parallelism != op.Parallelism || got.Selectivity != op.Selectivity {
			t.Errorf("operator %s changed: %+v vs %+v", op.ID, got, op)
		}
	}
	if len(spec.Graph.Edges()) != len(orig.Graph.Edges()) {
		t.Error("edges lost")
	}
	if spec.TotalRate() != orig.TotalRate() {
		t.Errorf("rates %v != %v", spec.TotalRate(), orig.TotalRate())
	}
}

func TestToQuerySpecValidation(t *testing.T) {
	cases := []struct {
		name string
		qf   QueryFile
	}{
		{"no name", QueryFile{}},
		{"bad kind", QueryFile{Name: "q", Operators: []OperatorSpec{{ID: "a", Kind: "zap", Parallelism: 1}}}},
		{"bad op", QueryFile{Name: "q", Operators: []OperatorSpec{{ID: "a", Parallelism: 0}}}},
		{"bad edge mode", QueryFile{Name: "q",
			Operators: []OperatorSpec{{ID: "a", Kind: "source", Parallelism: 1, Selectivity: 1}, {ID: "b", Kind: "sink", Parallelism: 1}},
			Edges:     []EdgeSpec{{From: "a", To: "b", Mode: "warp"}}}},
		{"dangling edge", QueryFile{Name: "q",
			Operators: []OperatorSpec{{ID: "a", Kind: "source", Parallelism: 1, Selectivity: 1}},
			Edges:     []EdgeSpec{{From: "a", To: "zz"}}}},
		{"missing rate", QueryFile{Name: "q",
			Operators: []OperatorSpec{{ID: "a", Kind: "source", Parallelism: 1, Selectivity: 1}}}},
	}
	for _, tc := range cases {
		if _, err := tc.qf.ToQuerySpec(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLoadQueryAndCluster(t *testing.T) {
	dir := t.TempDir()
	qpath := filepath.Join(dir, "q.json")
	qf := FromQuerySpec(nexmark.Q1Sliding())
	data, _ := json.Marshal(qf)
	if err := os.WriteFile(qpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadQuery(qpath)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "Q1-sliding" {
		t.Errorf("loaded %q", spec.Name)
	}

	cpath := filepath.Join(dir, "c.json")
	if err := os.WriteFile(cpath, []byte(`{"workers":4,"slots":4,"cores":4,"io_bytes_per_sec":2e8,"net_bytes_per_sec":1.25e9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCluster(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumWorkers() != 4 || c.TotalSlots() != 16 {
		t.Errorf("cluster %d workers %d slots", c.NumWorkers(), c.TotalSlots())
	}

	if _, err := LoadQuery(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(qpath, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadQuery(qpath); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := os.WriteFile(cpath, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCluster(cpath); err == nil {
		t.Error("bad cluster JSON accepted")
	}
}

func TestRenderPlan(t *testing.T) {
	spec := nexmark.Q1Sliding()
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	plan := dataflow.NewPlan()
	for i, task := range phys.Tasks() {
		plan.Assign(task, i%4)
	}
	rendered := RenderPlan(plan, phys, 4)
	if len(rendered) != 4 {
		t.Fatalf("rendered %d workers", len(rendered))
	}
	total := 0
	for _, names := range rendered {
		total += len(names)
	}
	if total != phys.NumTasks() {
		t.Errorf("rendered %d tasks, want %d", total, phys.NumTasks())
	}
}
