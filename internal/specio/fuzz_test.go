package specio

import (
	"encoding/json"
	"testing"

	"capsys/internal/nexmark"
)

// specsEquivalent compares two query specs semantically: same name, same
// operators (identity, kind, parallelism, selectivity, unit costs) in the
// same order, same edges, same source rates. Operators() and Edges() are
// insertion-ordered, and FromQuerySpec preserves that order, so slice
// comparison is exact.
func specsEquivalent(t *testing.T, a, b nexmark.QuerySpec) {
	t.Helper()
	if a.Name != b.Name {
		t.Fatalf("name changed across round trip: %q vs %q", a.Name, b.Name)
	}
	aops, bops := a.Graph.Operators(), b.Graph.Operators()
	if len(aops) != len(bops) {
		t.Fatalf("operator count changed: %d vs %d", len(aops), len(bops))
	}
	for i := range aops {
		if aops[i].ID != bops[i].ID || aops[i].Kind != bops[i].Kind ||
			aops[i].Parallelism != bops[i].Parallelism ||
			aops[i].Selectivity != bops[i].Selectivity ||
			aops[i].Cost != bops[i].Cost {
			t.Fatalf("operator %d changed: %+v vs %+v", i, aops[i], bops[i])
		}
	}
	aes, bes := a.Graph.Edges(), b.Graph.Edges()
	if len(aes) != len(bes) {
		t.Fatalf("edge count changed: %d vs %d", len(aes), len(bes))
	}
	for i := range aes {
		if aes[i] != bes[i] {
			t.Fatalf("edge %d changed: %+v vs %+v", i, aes[i], bes[i])
		}
	}
	if len(a.SourceRates) != len(b.SourceRates) {
		t.Fatalf("source rate count changed: %d vs %d", len(a.SourceRates), len(b.SourceRates))
	}
	for k, v := range a.SourceRates {
		if b.SourceRates[k] != v {
			t.Fatalf("source rate %q changed: %v vs %v", k, v, b.SourceRates[k])
		}
	}
}

// FuzzSpecRoundTrip feeds arbitrary bytes through parse -> encode -> parse:
// any input that parses into a valid QuerySpec must survive encoding back to
// JSON and re-parsing with identical semantics. This pins both directions of
// the specio mapping — every kind name and edge mode the parser accepts must
// be reproduced by the encoder, and no field may be dropped.
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add([]byte(`{"name":"q","operators":[` +
		`{"id":"src","kind":"source","parallelism":2,"selectivity":1},` +
		`{"id":"agg","kind":"window","parallelism":3,"selectivity":0.5,"cpu_per_record":1e-5,"io_bytes_per_record":128,"net_bytes_per_record":64},` +
		`{"id":"out","kind":"sink","parallelism":1,"selectivity":1}],` +
		`"edges":[{"from":"src","to":"agg"},{"from":"agg","to":"out","mode":"forward"}],` +
		`"source_rates":{"src":10000}}`))
	f.Add([]byte(`{"name":"min","operators":[` +
		`{"id":"s","kind":"source","parallelism":1,"selectivity":1},` +
		`{"id":"k","kind":"sink","parallelism":1,"selectivity":1}],` +
		`"edges":[{"from":"s","to":"k","mode":"all-to-all"}],` +
		`"source_rates":{"s":1}}`))
	f.Add([]byte(`{"name":"bad"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var qf QueryFile
		if err := json.Unmarshal(data, &qf); err != nil {
			return // not JSON at all
		}
		spec, err := qf.ToQuerySpec()
		if err != nil {
			return // structurally invalid query: rejection is fine
		}
		encoded, err := json.Marshal(FromQuerySpec(spec))
		if err != nil {
			t.Fatalf("encoding a valid spec failed: %v", err)
		}
		var qf2 QueryFile
		if err := json.Unmarshal(encoded, &qf2); err != nil {
			t.Fatalf("encoder produced invalid JSON: %v\n%s", err, encoded)
		}
		spec2, err := qf2.ToQuerySpec()
		if err != nil {
			t.Fatalf("re-parsing an encoded valid spec failed: %v\n%s", err, encoded)
		}
		specsEquivalent(t, spec, spec2)
	})
}
