package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
)

// ExtSkew reproduces the technical report's skew study (paper §5.2): with a
// skewed key distribution, some tasks of an operator are "hot". CAPS with
// placement groups (SplitForSkew) treats the hot tasks as a separate layer
// with their true per-task load; skew-unaware CAPS assumes uniform tasks,
// so whether the hot tasks land together is luck. The experiment reports
// the skew-aware plan against the unaware plan's best and worst hot-task
// outcomes.
func ExtSkew(ctx context.Context) (*Report, error) {
	spec := nexmark.Q1Sliding()
	c := nexmark.ReferenceCluster()
	cfg := simulator.DefaultConfig()

	// 2 hot window tasks receive 30% of the stream (1.2x a fair share
	// each, within a single thread's capacity); 6 cold tasks share the
	// rest.
	sr, err := dataflow.SplitForSkew(spec.Graph, "slide-win", []dataflow.SkewGroup{
		{Tasks: 2, RateShare: 0.3},
		{Tasks: 6, RateShare: 0.7},
	})
	if err != nil {
		return nil, err
	}
	splitSpec := nexmark.QuerySpec{Name: spec.Name, Graph: sr.Graph, SourceRates: spec.SourceRates}
	splitPhys, err := dataflow.Expand(sr.Graph)
	if err != nil {
		return nil, err
	}
	splitUsage, err := usageOf(splitSpec)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:     "EXT-SKEW",
		Title:  "Skew-aware placement groups vs uniform assumption (Q1-sliding, 2 hot window tasks)",
		Header: []string{"plan", "throughput(rec/s)", "backpressure(%)"},
	}

	// Skew-aware: CAPS over the split graph (each group its own layer).
	awarePlan, err := (placement.CAPS{}).Place(ctx, splitPhys, c, splitUsage, 0)
	if err != nil {
		return nil, err
	}
	aware, err := evalPlan(splitSpec, splitPhys, awarePlan, c, cfg)
	if err != nil {
		return nil, err
	}
	r.AddRow("caps skew-aware", aware.Throughput, aware.Backpressure*100)

	// Skew-unaware: CAPS on the uniform graph; then the two hot tasks land
	// on workers by luck. Evaluate the best and worst luck by choosing
	// which window tasks are hot.
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	u, err := usageOf(spec)
	if err != nil {
		return nil, err
	}
	unawarePlan, err := (placement.CAPS{}).Place(ctx, phys, c, u, 0)
	if err != nil {
		return nil, err
	}
	winTasks := phys.TasksOf("slide-win")
	evalMapping := func(hotA, hotB int) (simulator.QueryMetrics, error) {
		split := dataflow.NewPlan()
		// Non-window tasks keep their worker.
		for _, t := range phys.Tasks() {
			if t.Op != "slide-win" {
				split.Assign(t, unawarePlan.MustWorker(t))
			}
		}
		hotIdx := 0
		coldIdx := 0
		for i, t := range winTasks {
			w := unawarePlan.MustWorker(t)
			if i == hotA || i == hotB {
				split.Assign(dataflow.TaskID{Op: sr.Groups[0], Index: hotIdx}, w)
				hotIdx++
			} else {
				split.Assign(dataflow.TaskID{Op: sr.Groups[1], Index: coldIdx}, w)
				coldIdx++
			}
		}
		return evalPlan(splitSpec, splitPhys, split, c, cfg)
	}
	// Best luck: hot tasks on distinct workers; worst: hot pair
	// co-located (if the plan co-locates any window pair).
	bestA, bestB, worstA, worstB := -1, -1, -1, -1
	for i := range winTasks {
		for j := i + 1; j < len(winTasks); j++ {
			wi := unawarePlan.MustWorker(winTasks[i])
			wj := unawarePlan.MustWorker(winTasks[j])
			if wi != wj && bestA == -1 {
				bestA, bestB = i, j
			}
			if wi == wj && worstA == -1 {
				worstA, worstB = i, j
			}
		}
	}
	if bestA >= 0 {
		qm, err := evalMapping(bestA, bestB)
		if err != nil {
			return nil, err
		}
		r.AddRow("caps unaware (hot tasks apart)", qm.Throughput, qm.Backpressure*100)
	}
	if worstA >= 0 {
		qm, err := evalMapping(worstA, worstB)
		if err != nil {
			return nil, err
		}
		r.AddRow("caps unaware (hot tasks together)", qm.Throughput, qm.Backpressure*100)
	}
	r.Notes = append(r.Notes,
		"expected shape: skew-aware groups meet or beat the unaware plan's best luck and clearly beat its worst luck")
	return r, nil
}

// ExtChain demonstrates that CAPS works as-is with operator chaining
// (paper §6.1): a chainable pipeline is collapsed with dataflow.Chain, the
// chained graph has fewer layers and a smaller search space, and the
// chained plan expands back to a valid placement of the original graph.
func ExtChain(ctx context.Context) (*Report, error) {
	// A chainable variant of Q1-sliding: source and timestamp-extractor
	// are 1:1 forward-connected, as in the paper's chaining setting.
	g := dataflow.NewLogicalGraph()
	ops := []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 4, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 2e-5, Net: 120}},
		{ID: "ts", Kind: dataflow.KindMap, Parallelism: 4, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 2e-5, Net: 120}},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 8, Selectivity: 0.25,
			Cost: dataflow.UnitCost{CPU: 4.5e-4, IO: 50000, Net: 40}},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2, Selectivity: 0,
			Cost: dataflow.UnitCost{CPU: 5e-6}},
	}
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			return nil, err
		}
	}
	for _, e := range []dataflow.Edge{
		{From: "src", To: "ts", Mode: dataflow.Forward},
		{From: "ts", To: "win"},
		{From: "win", To: "sink"},
	} {
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	rates := map[dataflow.OperatorID]float64{"src": 14000}
	// The unchained graph has 18 tasks; use a 20-slot cluster so both
	// variants fit and only the search space differs.
	big, err := clusterFor(5, 4)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:     "EXT-CHAIN",
		Title:  "Operator chaining: search effort and plan equivalence",
		Header: []string{"variant", "operators", "tasks", "plans", "nodes", "feasible"},
	}
	search := func(name string, graph *dataflow.LogicalGraph) (*caps.Result, error) {
		phys, err := dataflow.Expand(graph)
		if err != nil {
			return nil, err
		}
		rp, err := dataflow.PropagateRates(graph, sourceRatesFor(graph, rates))
		if err != nil {
			return nil, err
		}
		u := costmodel.FromRates(graph, rp)
		res, err := caps.Search(ctx, phys, big, u, caps.Options{Alpha: caps.Unbounded, Mode: caps.Exhaustive})
		if err != nil {
			return nil, err
		}
		r.AddRow(name, graph.NumOperators(), graph.TotalTasks(), res.Stats.Plans, res.Stats.Nodes, res.Feasible)
		return res, nil
	}
	if _, err := search("unchained", g); err != nil {
		return nil, err
	}
	cr, err := dataflow.Chain(g)
	if err != nil {
		return nil, err
	}
	chainedRes, err := search("chained", cr.Graph)
	if err != nil {
		return nil, err
	}
	// The chained plan expands back onto the original graph: every
	// original task is assigned and chain members are co-located (they
	// share a slot pipeline, so per-worker slot usage is counted in
	// chained tasks, not original tasks).
	expanded, err := dataflow.ExpandChainedPlan(cr, chainedRes.Plan)
	if err != nil {
		return nil, err
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		return nil, err
	}
	if expanded.Len() != phys.NumTasks() {
		return nil, fmt.Errorf("expanded plan covers %d of %d tasks", expanded.Len(), phys.NumTasks())
	}
	for idx := 0; idx < g.Operator("src").Parallelism; idx++ {
		a := expanded.MustWorker(dataflow.TaskID{Op: "src", Index: idx})
		b := expanded.MustWorker(dataflow.TaskID{Op: "ts", Index: idx})
		if a != b {
			return nil, fmt.Errorf("chain members src[%d]/ts[%d] split across workers %d/%d", idx, idx, a, b)
		}
	}
	r.Notes = append(r.Notes,
		"expected shape: chaining shrinks operators/tasks and the search space; the chained plan expands to a valid original placement")
	return r, nil
}

// clusterFor builds a reference-style cluster with the given shape.
func clusterFor(workers, slots int) (*cluster.Cluster, error) {
	return cluster.Homogeneous(workers, slots, 4.0, 200e6, 1.25e9)
}

// sourceRatesFor maps the base rates onto the (possibly chained) graph's
// source operator IDs by prefix match. Base IDs are scanned in sorted order:
// when several match the same chained source, the winner must not depend on
// map iteration order.
func sourceRatesFor(g *dataflow.LogicalGraph, base map[dataflow.OperatorID]float64) map[dataflow.OperatorID]float64 {
	ids := make([]dataflow.OperatorID, 0, len(base))
	for id := range base {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make(map[dataflow.OperatorID]float64)
	for _, src := range g.Sources() {
		for _, id := range ids {
			if src.ID == id || hasPrefix(string(src.ID), string(id)+"+") {
				out[src.ID] = base[id]
			}
		}
	}
	return out
}

func hasPrefix(s, p string) bool { return strings.HasPrefix(s, p) }
