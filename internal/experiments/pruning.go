package experiments

import (
	"context"
	"fmt"
	"math"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
)

// Tab2 reproduces the paper's Table 2: the number of discovered plans and
// search-tree nodes for Q3-inf on an 8-worker, 4-slot cluster under various
// compute threshold factors alpha_cpu, with and without search-tree
// exploration reordering.
func Tab2(ctx context.Context) (*Report, error) {
	spec := nexmark.Q3Inf()
	c, err := cluster.Homogeneous(8, 4, 4.0, 200e6, 1.25e9)
	if err != nil {
		return nil, err
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	u, err := usageOf(spec)
	if err != nil {
		return nil, err
	}
	alphas := []float64{math.Inf(1), 0.5, 0.2, 0.1, 0.05, 0.03, 0.01}
	r := &Report{
		ID:     "TAB2",
		Title:  "Plans and search-tree size vs alpha_cpu (Q3-inf, 8 workers x 4 slots)",
		Header: []string{"alpha_cpu", "plans", "nodes", "nodes w/ reordering"},
	}
	var loosePlans, tightPlans int64 = -1, -1
	var looseNodes, tightNodesReord int64 = -1, -1
	for _, a := range alphas {
		opts := caps.Options{
			Alpha: costmodel.Vector{CPU: a, IO: math.Inf(1), Net: math.Inf(1)},
			Mode:  caps.Exhaustive,
		}
		plain, err := caps.Search(ctx, phys, c, u, opts)
		if err != nil {
			return nil, err
		}
		opts.Reorder = true
		reord, err := caps.Search(ctx, phys, c, u, opts)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%.2f", a)
		if math.IsInf(a, 1) {
			label = "inf"
		}
		r.AddRow(label, plain.Stats.Plans, plain.Stats.Nodes, reord.Stats.Nodes)
		if loosePlans < 0 {
			loosePlans, looseNodes = plain.Stats.Plans, plain.Stats.Nodes
		}
		tightPlans, tightNodesReord = plain.Stats.Plans, reord.Stats.Nodes
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("pruning shrinks plans %dx and reordering shrinks nodes %dx at the tightest threshold",
			ratioOrMax(loosePlans, tightPlans), ratioOrMax(looseNodes, tightNodesReord)))
	return r, nil
}

func ratioOrMax(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return a / b
}
