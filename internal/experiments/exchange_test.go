package experiments

import (
	"context"
	"strconv"
	"testing"
	"time"

	"capsys/internal/engine"
)

func TestExchangeStudy(t *testing.T) {
	cfg := defaultExchangeConfig()
	// Keep the engine runs light for the test battery.
	cfg.Records = 2000
	cfg.BatchSizes = []int{8, 32}
	cfg.ChainRecords = 2000
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := exchangeStudy(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Q3-inf: unary baseline + one row per batch size + the network row;
	// chain section: three unfused transports + one fused row.
	q3Rows := 2 + len(cfg.BatchSizes)
	if want := q3Rows + 4; len(rep.Rows) != want {
		t.Fatalf("expected %d rows, got %d", want, len(rep.Rows))
	}
	if rep.Rows[0][1] != engine.TransportUnary {
		t.Fatalf("first row should be the unary baseline: %v", rep.Rows[0])
	}
	if rep.Rows[q3Rows-1][1] != engine.TransportNetwork {
		t.Fatalf("row %d should be the network transport: %v", q3Rows-1, rep.Rows[q3Rows-1])
	}
	sink := rep.Rows[0][7]
	for i, row := range rep.Rows[:q3Rows] {
		if row[0] != cfg.Query {
			t.Errorf("row %d: pipeline %q, want %q", i, row[0], cfg.Query)
		}
		if row[3] != "-" {
			t.Errorf("row %d: fuse cell %q; Q3-inf has nothing to chain", i, row[3])
		}
		if row[7] != sink {
			t.Errorf("row %d: sink records %s != unary baseline %s", i, row[7], sink)
		}
		batches, err := strconv.ParseFloat(row[8], 64)
		if err != nil {
			t.Fatalf("row %d: unparseable batches %q", i, row[8])
		}
		if row[1] == engine.TransportUnary && batches != 0 {
			t.Errorf("unary row counted %v batches", batches)
		}
		if row[1] != engine.TransportUnary && batches == 0 {
			t.Errorf("%s row %v counted no batches", row[1], row)
		}
	}
	chain := rep.Rows[q3Rows:]
	chainSink := chain[0][7]
	fused := 0
	for i, row := range chain {
		if row[0] != "fwd-chain" {
			t.Errorf("chain row %d: pipeline %q, want fwd-chain", i, row[0])
		}
		if row[7] != chainSink {
			t.Errorf("chain row %d: sink records %s != chain baseline %s", i, row[7], chainSink)
		}
		if row[3] == "on" {
			fused++
			if batches, _ := strconv.ParseFloat(row[8], 64); batches != 0 {
				t.Errorf("fused chain row counted %v batches; a fused chain must bypass the exchange", batches)
			}
		}
	}
	if fused != 1 {
		t.Errorf("chain section has %d fused rows, want 1", fused)
	}
}
