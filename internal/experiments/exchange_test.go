package experiments

import (
	"context"
	"strconv"
	"testing"
	"time"

	"capsys/internal/engine"
)

func TestExchangeStudy(t *testing.T) {
	cfg := defaultExchangeConfig()
	// Keep the engine runs light for the test battery.
	cfg.Records = 2000
	cfg.BatchSizes = []int{8, 32}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := exchangeStudy(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Unary baseline + one row per batch size + the network row.
	if len(rep.Rows) != 2+len(cfg.BatchSizes) {
		t.Fatalf("expected %d rows, got %d", 2+len(cfg.BatchSizes), len(rep.Rows))
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last[0] != engine.TransportNetwork {
		t.Fatalf("last row should be the network transport: %v", last)
	}
	if rep.Rows[0][0] != engine.TransportUnary {
		t.Fatalf("first row should be the unary baseline: %v", rep.Rows[0])
	}
	sink := rep.Rows[0][5]
	for i, row := range rep.Rows {
		if row[5] != sink {
			t.Errorf("row %d: sink records %s != unary baseline %s", i, row[5], sink)
		}
		batches, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("row %d: unparseable batches %q", i, row[6])
		}
		if row[0] == engine.TransportUnary && batches != 0 {
			t.Errorf("unary row counted %v batches", batches)
		}
		if row[0] != engine.TransportUnary && batches == 0 {
			t.Errorf("%s row %v counted no batches", row[0], row)
		}
	}
}
