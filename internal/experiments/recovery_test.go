package experiments

import (
	"context"
	"testing"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/odrp"
)

func TestRecoveryStudy(t *testing.T) {
	cfg := defaultRecoveryConfig()
	// Keep the engine runs light for the test battery.
	cfg.Records = 500
	cfg.SnapshotInterval = 100
	cfg.KillAtEpoch = 2
	cfg.SearchNodes = 50_000
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := recoveryStudy(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("expected 4 strategies, got %d rows", len(rep.Rows))
	}
	seen := map[string]bool{}
	for _, row := range rep.Rows {
		seen[row[0]] = true
		if row[3] != "yes" {
			t.Errorf("%s did not recover: %v", row[0], row)
		}
		if row[6] != "0" {
			t.Errorf("%s lost records after recovery: %v", row[0], row)
		}
	}
	for _, want := range []string{"caps", "default", "evenly", "odrp"} {
		if !seen[want] {
			t.Errorf("strategy %s missing from report", want)
		}
	}
}

// The ODRP projection must always produce a complete plan for the fixed
// graph that respects slot capacities, whatever parallelism ODRP chose.
func TestODRPStrategyProjectionValid(t *testing.T) {
	spec, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		t.Fatal(err)
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Homogeneous(4, 6, 8, 500e6, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	strat := odrpStrategy{spec: spec, opts: odrp.Options{Weights: odrp.WeightedWeights(), MaxNodes: 50_000}}
	plan, err := strat.Place(context.Background(), phys, c, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != phys.NumTasks() {
		t.Fatalf("projected plan covers %d of %d tasks", plan.Len(), phys.NumTasks())
	}
	if err := plan.Validate(phys, c.NumWorkers(), 6); err != nil {
		t.Fatalf("projected plan invalid: %v", err)
	}
}
