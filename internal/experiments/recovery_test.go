package experiments

import (
	"context"
	"testing"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/odrp"
)

func TestRecoveryStudy(t *testing.T) {
	cfg := defaultRecoveryConfig()
	// Keep the engine runs light for the test battery.
	cfg.Records = 500
	cfg.SnapshotInterval = 100
	cfg.KillAtEpoch = 2
	cfg.SearchNodes = 50_000
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := recoveryStudy(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * len(engine.TransportNames()); len(rep.Rows) != want {
		t.Fatalf("expected 4 strategies x %d transports = %d rows, got %d",
			len(engine.TransportNames()), want, len(rep.Rows))
	}
	seen := map[string]bool{}
	transports := map[string]bool{}
	sinks := map[string]map[string]string{}
	for _, row := range rep.Rows {
		strategy, transport := row[0], row[1]
		seen[strategy] = true
		transports[transport] = true
		if row[4] != "yes" {
			t.Errorf("%s/%s did not recover: %v", strategy, transport, row)
		}
		if row[7] != "0" {
			t.Errorf("%s/%s lost records after recovery: %v", strategy, transport, row)
		}
		if sinks[strategy] == nil {
			sinks[strategy] = map[string]string{}
		}
		sinks[strategy][transport] = row[8]
	}
	for _, want := range []string{"caps", "default", "evenly", "odrp"} {
		if !seen[want] {
			t.Errorf("strategy %s missing from report", want)
		}
	}
	for _, want := range engine.TransportNames() {
		if !transports[want] {
			t.Errorf("transport %s missing from report", want)
		}
	}
	// Exactly-once accounting is transport-invariant: each strategy must
	// deliver the same sink records under every exchange discipline,
	// including the TCP data plane.
	for strategy, byTransport := range sinks {
		base := byTransport[engine.TransportUnary]
		for _, transport := range engine.TransportNames() {
			if byTransport[transport] != base {
				t.Errorf("%s: sink records diverge across transports: %v", strategy, byTransport)
				break
			}
		}
	}
}

// The ODRP projection must always produce a complete plan for the fixed
// graph that respects slot capacities, whatever parallelism ODRP chose.
func TestODRPStrategyProjectionValid(t *testing.T) {
	spec, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		t.Fatal(err)
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Homogeneous(4, 6, 8, 500e6, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	strat := odrpStrategy{spec: spec, opts: odrp.Options{Weights: odrp.WeightedWeights(), MaxNodes: 50_000}}
	plan, err := strat.Place(context.Background(), phys, c, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != phys.NumTasks() {
		t.Fatalf("projected plan covers %d of %d tasks", plan.Len(), phys.NumTasks())
	}
	if err := plan.Validate(phys, c.NumWorkers(), 6); err != nil {
		t.Fatalf("projected plan invalid: %v", err)
	}
}
