//go:build race

package experiments

// raceEnabled relaxes wall-clock assertions: race instrumentation slows the
// search by an order of magnitude.
const raceEnabled = true
