package experiments

import (
	"context"
	"fmt"
	"sort"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/simulator"
)

// planOutcome pairs a plan's model cost with its simulated performance.
type planOutcome struct {
	plan       *dataflow.Plan
	cost       costmodel.Vector
	throughput float64
	backpress  float64
}

// enumerateOutcomes exhaustively enumerates all canonical plans of a query
// on the cluster and evaluates each in the simulator.
func enumerateOutcomes(ctx context.Context, spec nexmark.QuerySpec, c *cluster.Cluster, cfg simulator.Config) ([]planOutcome, error) {
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	u, err := usageOf(spec)
	if err != nil {
		return nil, err
	}
	plans, err := caps.EnumeratePlans(ctx, phys, c, u)
	if err != nil {
		return nil, err
	}
	out := make([]planOutcome, 0, len(plans))
	for _, fe := range plans {
		qm, err := evalPlan(spec, phys, fe.Plan, c, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, planOutcome{
			plan:       fe.Plan,
			cost:       fe.Cost,
			throughput: qm.Throughput,
			backpress:  qm.Backpressure,
		})
	}
	return out, nil
}

// Fig2 reproduces the paper's Figure 2: the exhaustive placement study of
// Q1-sliding on the 4-worker, 16-slot reference cluster, reporting the
// three best and three worst plans by throughput.
func Fig2(ctx context.Context) (*Report, error) {
	spec := nexmark.Q1Sliding()
	c := nexmark.ReferenceCluster()
	outcomes, err := enumerateOutcomes(ctx, spec, c, simulator.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sort.SliceStable(outcomes, func(i, j int) bool { return outcomes[i].throughput > outcomes[j].throughput })

	r := &Report{
		ID:     "FIG2",
		Title:  "Best and worst placement plans for Q1-sliding (exhaustive study)",
		Header: []string{"plan", "throughput(rec/s)", "backpressure(%)"},
	}
	n := len(outcomes)
	pick := []int{0, 1, 2, n - 3, n - 2, n - 1}
	for i, idx := range pick {
		o := outcomes[idx]
		r.AddRow(fmt.Sprintf("P%d", i+1), o.throughput, o.backpress*100)
	}
	target := spec.TotalRate()
	meet := 0
	for _, o := range outcomes {
		if o.throughput >= 0.99*target {
			meet++
		}
	}
	best, worst := outcomes[0], outcomes[n-1]
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d canonical plans enumerated; %d meet the %.0f rec/s target", n, meet, target),
		fmt.Sprintf("best/worst throughput gap: %.2fx; worst backpressure %.1f%%",
			best.throughput/worst.throughput, worst.backpress*100),
	)
	return r, nil
}

// colocationStudy is the shared machinery behind Figure 3: deploy a query
// with controlled co-location degrees of one operator and report the
// performance per contention level.
func colocationStudy(id, title string, spec nexmark.QuerySpec, c *cluster.Cluster, op dataflow.OperatorID, cfg simulator.Config) (*Report, error) {
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	slots, err := c.SlotsPerWorker()
	if err != nil {
		return nil, err
	}
	par := spec.Graph.Operator(op).Parallelism
	low := (par + c.NumWorkers() - 1) / c.NumWorkers()
	high := slots
	if par < high {
		high = par
	}
	medium := (low + high) / 2
	if medium <= low {
		medium = low + 1
	}
	if medium > high {
		medium = high
	}
	levels := []struct {
		name  string
		group int
	}{
		{"low (spread)", low},
		{"medium", medium},
		{"high (packed)", high},
	}
	r := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"contention", "tasks/worker", "throughput(rec/s)", "backpressure(%)"},
	}
	var lowTp, highTp float64
	for i, lv := range levels {
		plan := nexmark.ColocationPlan(phys, c.NumWorkers(), slots, op, lv.group)
		qm, err := evalPlan(spec, phys, plan, c, cfg)
		if err != nil {
			return nil, err
		}
		r.AddRow(lv.name, lv.group, qm.Throughput, qm.Backpressure*100)
		if i == 0 {
			lowTp = qm.Throughput
		}
		if i == len(levels)-1 {
			highTp = qm.Throughput
		}
	}
	if highTp > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("low-contention over high-contention throughput: %.2fx", lowTp/highTp))
	}
	return r, nil
}

// Fig3a reproduces Figure 3a: co-locating the compute-intensive inference
// tasks of Q3-inf.
func Fig3a(_ context.Context) (*Report, error) {
	return colocationStudy("FIG3a",
		"Co-locating compute-intensive tasks (Q3-inf inference)",
		nexmark.Q3Inf(), nexmark.ReferenceCluster(), "inference", simulator.DefaultConfig())
}

// Fig3b reproduces Figure 3b: co-locating the I/O-intensive tumbling window
// join tasks of Q2-join.
func Fig3b(_ context.Context) (*Report, error) {
	return colocationStudy("FIG3b",
		"Co-locating I/O-intensive tasks (Q2-join tumbling window join)",
		nexmark.Q2Join(), nexmark.ReferenceCluster(), "tumble-join", simulator.DefaultConfig())
}

// Fig3c reproduces Figure 3c: co-locating network-intensive tasks of Q3-inf
// with per-worker outbound bandwidth capped at 1 Gbit/s.
func Fig3c(_ context.Context) (*Report, error) {
	// The reference cluster throttled to 1 Gbit/s outbound per worker.
	c, err := cluster.Homogeneous(4, 4, 4.0, 200e6, 125e6)
	if err != nil {
		return nil, err
	}
	// decode emits the large decoded tensors; co-locating decode tasks (and
	// with them the upstream source traffic) concentrates outbound traffic.
	return colocationStudy("FIG3c",
		"Co-locating network-intensive tasks (Q3-inf, 1 Gbit/s per worker)",
		nexmark.Q3Inf(), c, "decode", simulator.DefaultConfig())
}

// Fig5 reproduces Figure 5: the relationship between a plan's cost vector
// and its simulated throughput for Q1-sliding, demonstrating that a cost
// threshold separates high-performing plans.
func Fig5(ctx context.Context) (*Report, error) {
	spec := nexmark.Q1Sliding()
	c := nexmark.ReferenceCluster()
	outcomes, err := enumerateOutcomes(ctx, spec, c, simulator.DefaultConfig())
	if err != nil {
		return nil, err
	}
	// Bucket plans by IO cost (the dominant dimension for Q1-sliding) and
	// report mean throughput per bucket.
	r := &Report{
		ID:     "FIG5",
		Title:  "Plan cost vs throughput for Q1-sliding (threshold separability)",
		Header: []string{"C_io bucket", "plans", "mean throughput(rec/s)", "mean C_cpu", "mean C_net"},
	}
	buckets := []struct {
		lo, hi float64
	}{{0, 0.1}, {0.1, 0.2}, {0.2, 0.4}, {0.4, 0.7}, {0.7, 1.01}}
	for _, bk := range buckets {
		var tps, cpus, nets []float64
		for _, o := range outcomes {
			if o.cost.IO >= bk.lo && o.cost.IO < bk.hi {
				tps = append(tps, o.throughput)
				cpus = append(cpus, o.cost.CPU)
				nets = append(nets, o.cost.Net)
			}
		}
		if len(tps) == 0 {
			continue
		}
		_, meanTp, _ := summarize(tps)
		_, meanCPU, _ := summarize(cpus)
		_, meanNet, _ := summarize(nets)
		r.AddRow(fmt.Sprintf("[%.1f,%.1f)", bk.lo, bk.hi), len(tps), meanTp, meanCPU, meanNet)
	}
	// Shape check data: mean throughput below vs above an IO-cost
	// threshold of 0.2.
	var below, above []float64
	for _, o := range outcomes {
		if o.cost.IO <= 0.2 {
			below = append(below, o.throughput)
		} else {
			above = append(above, o.throughput)
		}
	}
	_, mb, _ := summarize(below)
	_, ma, _ := summarize(above)
	r.Notes = append(r.Notes, fmt.Sprintf(
		"plans with C_io<=0.2 average %.0f rec/s vs %.0f rec/s above: low cost <=> high throughput", mb, ma))
	return r, nil
}
