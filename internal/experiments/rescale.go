package experiments

import (
	"context"
	"fmt"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/telemetry"
)

// rescaleConfig parameterizes the live-rescaling study.
type rescaleConfig struct {
	Workers          int
	Records          int64 // per source task
	SnapshotInterval int64
	AtEpoch          int64
	SourceRate       float64 // per source task, records/s
	Seed             int64
}

func defaultRescaleConfig() rescaleConfig {
	return rescaleConfig{
		Workers:          4,
		Records:          2000,
		SnapshotInterval: 250,
		AtEpoch:          3,
		SourceRate:       20000,
		Seed:             11,
	}
}

// Rescale is the elasticity study: a chainable Q1-sliding variant runs on
// the live engine under a sustained source rate, and at a checkpoint epoch
// the window operator's parallelism is changed in place — drain to a
// barrier-aligned epoch, repartition the operator's key-groups, re-place,
// resume. The recovery-SLO questions are the rows: what does a live rescale
// cost in downtime and reprocessing (never a full replay), does delivery
// stay exactly-once, and is the answer the same fused and unfused and under
// every exchange transport. A no-rescale baseline per fusion/transport pair
// anchors the p99 latency dip the drain causes.
func Rescale(ctx context.Context) (*Report, error) {
	return rescaleStudy(ctx, defaultRescaleConfig())
}

// fusibleQ1 is Q1-sliding with the source and map 1:1 forward-connected at
// equal parallelism, so operator fusion has a chain to collapse and the
// fused/unfused dimension is real. The operator IDs, costs and rates match
// the stock query, so the standard engine binding applies.
func fusibleQ1() (nexmark.QuerySpec, error) {
	stock, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		return nexmark.QuerySpec{}, err
	}
	g := dataflow.NewLogicalGraph()
	for _, op := range stock.Graph.Operators() {
		o := *op
		if o.ID == "map" {
			o.Parallelism = stock.Graph.Operator("src").Parallelism
		}
		if err := g.AddOperator(o); err != nil {
			return nexmark.QuerySpec{}, err
		}
	}
	for _, e := range []dataflow.Edge{
		{From: "src", To: "map", Mode: dataflow.Forward},
		{From: "map", To: "slide-win"},
		{From: "slide-win", To: "sink"},
	} {
		if err := g.AddEdge(e); err != nil {
			return nexmark.QuerySpec{}, err
		}
	}
	return nexmark.QuerySpec{Name: stock.Name, Graph: g, SourceRates: stock.SourceRates}, nil
}

// chainEven places forward-pair tasks (src[i], map[i]) on the same worker —
// guaranteeing the fused rows actually fuse — and fills everything else onto
// the emptiest worker. Deterministic, slot-respecting, parallelism-agnostic
// (the rescaled graph re-places through the same rule).
type chainEven struct{}

func (chainEven) Name() string { return "chain-even" }

func (chainEven) Place(_ context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, _ *costmodel.Usage, _ int64) (*dataflow.Plan, error) {
	slots, err := c.SlotsPerWorker()
	if err != nil {
		return nil, err
	}
	used := make([]int, c.NumWorkers())
	plan := dataflow.NewPlan()
	place := func(t dataflow.TaskID, w int) error {
		if used[w] >= slots {
			return fmt.Errorf("experiments: chain-even out of slots on worker %d", w)
		}
		plan.Assign(t, w)
		used[w]++
		return nil
	}
	for _, t := range p.Tasks() {
		w := -1
		switch t.Op {
		case "src", "map":
			w = t.Index % c.NumWorkers()
		default:
			for i := range used {
				if used[i] < slots && (w == -1 || used[i] < used[w]) {
					w = i
				}
			}
			if w == -1 {
				return nil, fmt.Errorf("experiments: chain-even out of slots")
			}
		}
		if err := place(t, w); err != nil {
			return nil, err
		}
	}
	return plan, nil
}

func rescaleStudy(ctx context.Context, cfg rescaleConfig) (*Report, error) {
	spec, err := fusibleQ1()
	if err != nil {
		return nil, err
	}
	winFrom := spec.Graph.Operator("slide-win").Parallelism
	directions := []int{winFrom + 4, winFrom / 2}
	// Slots sized for the scaled-up graph with headroom.
	maxTasks := spec.Graph.TotalTasks() - winFrom + directions[0]
	c, err := cluster.Homogeneous(cfg.Workers, maxTasks/cfg.Workers+2, 8, 500e6, 2e9)
	if err != nil {
		return nil, err
	}
	srcTasks := int64(spec.Graph.Operator("src").Parallelism)
	strat := chainEven{}

	rep := &Report{
		ID: "RESCALE",
		Title: fmt.Sprintf("live rescaling on %s: drain to epoch %d, repartition key-groups, resume (window %d→{%d,%d})",
			spec.Name, cfg.AtEpoch, winFrom, directions[0], directions[1]),
		Header: []string{"fusion", "transport", "win_to", "downtime_ms", "replace_ms", "reprocessed",
			"lost", "moved_kb", "moved_tasks", "fused_chains", "p99_ms", "base_p99_ms", "sink_records"},
	}

	// Exactly-once delivery and fusion transparency together mean every
	// run — any transport, fused or not, either rescale direction — must
	// deliver the same sink records.
	baseSink := int64(-1)
	for _, fused := range []bool{true, false} {
		label := "fused"
		if !fused {
			label = "unfused"
		}
		for _, transport := range engine.TransportNames() {
			// No-rescale baseline anchors the p99 the drain disturbs.
			baseTel := telemetry.New()
			base, err := rescaleBaseline(ctx, spec, c, strat, cfg, transport, fused, baseTel)
			if err != nil {
				return nil, fmt.Errorf("experiments: rescale baseline %s/%s: %w", label, transport, err)
			}
			baseP99 := mergedLatencyQuantile(baseTel, 0.99) * 1e3
			if fused && base.Metrics.Snapshot()["engine.fuse.chains"] <= 0 {
				return nil, fmt.Errorf("experiments: rescale %s/%s: chain-even placement fused no chains", label, transport)
			}
			for _, to := range directions {
				tel := telemetry.New()
				out, err := controller.RunRescale(ctx, spec, c, strat, controller.RescaleOptions{
					Seed:             cfg.Seed,
					RecordsPerSource: cfg.Records,
					SnapshotInterval: cfg.SnapshotInterval,
					SourceRate:       map[dataflow.OperatorID]float64{"src": cfg.SourceRate},
					Rescales:         []engine.RescalePlan{{Op: "slide-win", Parallelism: to, AtEpoch: cfg.AtEpoch}},
					Transport:        transport,
					DisableFusion:    !fused,
					Telemetry:        tel,
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: rescale %s/%s→%d: %w", label, transport, to, err)
				}
				res := out.Result
				if res.Rescales != 1 || res.Failed {
					return nil, fmt.Errorf("experiments: rescale %s/%s→%d: rescales=%d failed=%v",
						label, transport, to, res.Rescales, res.Failed)
				}
				if res.LostRecords != 0 {
					return nil, fmt.Errorf("experiments: rescale %s/%s→%d lost %d records",
						label, transport, to, res.LostRecords)
				}
				// Reprocessing must be resume-from-checkpoint, never a
				// replay of the whole stream.
				if res.RecordsReprocessed >= srcTasks*cfg.Records {
					return nil, fmt.Errorf("experiments: rescale %s/%s→%d reprocessed %d/%d records — full replay",
						label, transport, to, res.RecordsReprocessed, srcTasks*cfg.Records)
				}
				if baseSink < 0 {
					baseSink = res.SinkRecords
				} else if res.SinkRecords != baseSink {
					return nil, fmt.Errorf("experiments: rescale %s/%s→%d: sink records diverge: %d, expected %d",
						label, transport, to, res.SinkRecords, baseSink)
				}
				rep.AddRow(label, out.Transport, to,
					float64(res.RescaleDowntime.Microseconds())/1000,
					float64(out.ReplaceTime.Microseconds())/1000,
					res.RecordsReprocessed,
					res.LostRecords,
					float64(res.RescaleMovedBytes)/1024,
					out.MovedTasks,
					res.Metrics.Snapshot()["engine.fuse.chains"],
					mergedLatencyQuantile(tel, 0.99)*1e3,
					baseP99,
					res.SinkRecords,
				)
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"every rescale delivers exactly the baseline's sink records: draining to a barrier-aligned epoch and repartitioning key-groups loses nothing and is invisible to delivery",
		fmt.Sprintf("reprocessing stays bounded by the records emitted past the drain epoch (budget: %d/source/epoch), never a replay of the stream", cfg.SnapshotInterval),
		"re-placement decision time (replace_ms) sits inside the measured downtime: the scheduler is on the rescale's critical path, as it is on recovery's",
		"the p99 dip against base_p99_ms is the latency cost of the drain; fused and unfused rows pay it alike under all three transports")
	return rep, nil
}

// rescaleBaseline runs the same job with no rescale scheduled, for the
// latency comparison rows.
func rescaleBaseline(ctx context.Context, spec nexmark.QuerySpec, c *cluster.Cluster, strat placement.Strategy, cfg rescaleConfig, transport string, fused bool, tel *telemetry.Telemetry) (*engine.JobResult, error) {
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	rates, err := dataflow.PropagateRates(spec.Graph, spec.SourceRates)
	if err != nil {
		return nil, err
	}
	u := costmodel.FromRates(spec.Graph, rates)
	plan, err := strat.Place(ctx, phys, c, u, cfg.Seed)
	if err != nil {
		return nil, err
	}
	binding, err := nexmark.BindEngine(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	job, err := engine.NewJob(spec.Graph, plan, controller.EngineCluster(c), binding.Factories, engine.JobOptions{
		Transport:        transport,
		DisableFusion:    !fused,
		RecordsPerSource: cfg.Records,
		SourceRate:       map[dataflow.OperatorID]float64{"src": cfg.SourceRate},
		PerRecordCPU:     binding.PerRecordCPU,
		Stateful:         binding.Stateful,
		SnapshotInterval: cfg.SnapshotInterval,
		Telemetry:        tel,
	})
	if err != nil {
		return nil, err
	}
	return job.Run(ctx)
}
