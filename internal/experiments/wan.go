package experiments

import (
	"context"
	"fmt"

	"capsys/internal/caps"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/wan"
)

// ExtWAN demonstrates the paper's §7 future-work direction: extending CAPS
// toward wide-area deployments where network links carry real propagation
// delays. CAPS produces its Pareto front over the three resource
// dimensions; the wan package then chooses the front entry (and the worker
// relabeling, which preserves resource costs exactly) that minimizes the
// dataflow's critical-path delay across a two-site topology.
func ExtWAN(ctx context.Context) (*Report, error) {
	spec := nexmark.Q1Sliding()
	// Two sites of 4 workers each (1 ms within a site, 80 ms across).
	c, err := clusterFor(8, 4)
	if err != nil {
		return nil, err
	}
	m, err := wan.Sites([]int{0, 0, 0, 0, 1, 1, 1, 1}, 0.001, 0.080)
	if err != nil {
		return nil, err
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	u, err := usageOf(spec)
	if err != nil {
		return nil, err
	}
	res, err := caps.Search(ctx, phys, c, u, caps.Options{
		Alpha: caps.Unbounded, Mode: caps.Exhaustive, Reorder: true,
		FrontCap: 128, MaxNodes: 2_000_000,
	})
	if err != nil {
		return nil, err
	}
	if !res.Feasible {
		return nil, fmt.Errorf("experiments: no feasible plan")
	}

	r := &Report{
		ID:     "EXT-WAN",
		Title:  "Delay-aware plan selection on a two-site WAN (Q1-sliding, 1ms intra / 80ms inter)",
		Header: []string{"plan", "path delay(ms)", "C_cpu", "C_io", "C_net"},
	}
	rawDelay, err := wan.PathDelay(phys, res.Plan, m)
	if err != nil {
		return nil, err
	}
	r.AddRow("caps (delay-oblivious)", rawDelay*1000, res.Cost.CPU, res.Cost.IO, res.Cost.Net)

	sel, err := wan.SelectMinDelay(res, phys, m)
	if err != nil {
		return nil, err
	}
	r.AddRow("caps + min-delay selection", sel.DelaySec*1000,
		sel.ResourceCost.CPU, sel.ResourceCost.IO, sel.ResourceCost.Net)

	// Hierarchical (site-aware) placement: the 16-task query fits inside
	// one 16-slot site, so CAPS restricted to that site avoids cross-site
	// hops entirely.
	hier, err := wan.PlaceHierarchical(ctx, phys, c, u, m, []int{0, 0, 0, 0, 1, 1, 1, 1}, caps.Options{
		Alpha: caps.Unbounded, Reorder: true, MaxNodes: 2_000_000,
	})
	if err != nil {
		return nil, err
	}
	r.AddRow("caps hierarchical (site-local)", hier.DelaySec*1000,
		hier.ResourceCost.CPU, hier.ResourceCost.IO, hier.ResourceCost.Net)
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d Pareto-front plans considered; worker relabeling preserves resource costs exactly", sel.Considered),
		"expected shape: min-delay selection improves on the oblivious plan; hierarchical placement eliminates cross-site hops entirely (~1ms)")
	return r, nil
}
