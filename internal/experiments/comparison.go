package experiments

import (
	"context"
	"fmt"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/odrp"
	"capsys/internal/placement"
	"capsys/internal/simulator"
)

// BaselineRuns is the number of seeded repetitions for the randomized Flink
// baselines, matching the paper's 10 runs per strategy.
const BaselineRuns = 10

// Fig7 reproduces Figure 7: each of the six queries deployed in isolation on
// the reference cluster under CAPS, Flink default and Flink evenly, with the
// baselines repeated over 10 seeds to expose their run-to-run variance.
func Fig7(ctx context.Context) (*Report, error) {
	r := &Report{
		ID:    "FIG7",
		Title: "Single-query performance per placement strategy (10 runs for randomized baselines)",
		Header: []string{"query", "strategy", "tput min", "tput mean", "tput max",
			"bp mean(%)", "latency mean(ms)", "target"},
	}
	cfg := simulator.DefaultConfig()
	c := nexmark.ReferenceCluster()
	for _, spec := range nexmark.AllQueries() {
		for _, strat := range []placement.Strategy{placement.CAPS{}, placement.FlinkDefault{}, placement.FlinkEvenly{}} {
			runs := BaselineRuns
			if strat.Name() == "caps" {
				runs = 1 // deterministic
			}
			var tputs, bps, lats []float64
			for seed := 0; seed < runs; seed++ {
				_, res, err := controller.DeploySingle(ctx, spec, c, strat, int64(seed), cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", spec.Name, strat.Name(), err)
				}
				qm := res.Queries[spec.Name]
				tputs = append(tputs, qm.Throughput)
				bps = append(bps, qm.Backpressure*100)
				lats = append(lats, qm.LatencySec*1000)
			}
			tMin, tMean, tMax := summarize(tputs)
			_, bpMean, _ := summarize(bps)
			_, latMean, _ := summarize(lats)
			r.AddRow(spec.Name, strat.Name(), tMin, tMean, tMax, bpMean, latMean, spec.TotalRate())
		}
	}
	r.Notes = append(r.Notes,
		"CAPS is deterministic (single run); baselines vary across seeds",
		"expected shape: CAPS >= baselines on throughput with lower backpressure and variance")
	return r, nil
}

// Fig8 reproduces Figure 8: all six queries deployed concurrently on the
// 18-worker, 144-slot multi-tenant cluster. CAPS places the whole workload
// jointly; the baselines deploy queries sequentially in randomized
// submission order.
func Fig8(ctx context.Context) (*Report, error) {
	r := &Report{
		ID:     "FIG8",
		Title:  "Multi-tenant deployment: all six queries on one 144-slot cluster",
		Header: []string{"query", "strategy", "tput mean", "target frac mean", "target frac min", "bp mean(%)"},
	}
	cfg := simulator.DefaultConfig()
	c := nexmark.MultiTenantCluster()
	// Each query's single-run target saturates 4 dedicated workers; six
	// queries share 18 workers here (not 24), so the jointly attainable
	// targets are 70% of the single-query saturation rates — matching the
	// paper's setting where all six targets are simultaneously feasible
	// and the question is which strategy actually reaches them.
	var specs []nexmark.QuerySpec
	for _, s := range nexmark.AllQueries() {
		specs = append(specs, s.Scaled(0.7))
	}
	type agg struct{ fracs, tputs, bps []float64 }
	for _, strat := range []placement.Strategy{placement.CAPS{}, placement.FlinkDefault{}, placement.FlinkEvenly{}} {
		runs := BaselineRuns
		if strat.Name() == "caps" {
			runs = 1
		}
		per := make(map[string]*agg, len(specs))
		for _, s := range specs {
			per[s.Name] = &agg{}
		}
		for seed := 0; seed < runs; seed++ {
			_, res, err := controller.DeployAll(ctx, specs, c, strat, int64(seed), cfg)
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", strat.Name(), seed, err)
			}
			for _, s := range specs {
				qm := res.Queries[s.Name]
				a := per[s.Name]
				a.tputs = append(a.tputs, qm.Throughput)
				a.fracs = append(a.fracs, qm.Throughput/s.TotalRate())
				a.bps = append(a.bps, qm.Backpressure*100)
			}
		}
		for _, s := range specs {
			a := per[s.Name]
			_, tMean, _ := summarize(a.tputs)
			fMin, fMean, _ := summarize(a.fracs)
			_, bpMean, _ := summarize(a.bps)
			r.AddRow(s.Name, strat.Name(), tMean, fMean, fMin, bpMean)
		}
	}
	r.Notes = append(r.Notes,
		"expected shape: only CAPS reaches the target for all six queries")
	return r, nil
}

// Tab3 reproduces Table 3: the comparison with ODRP on Q3-inf using the
// paper's three weight configurations, reporting quality metrics and
// decision time.
func Tab3(ctx context.Context) (*Report, error) {
	spec := nexmark.Q3Inf()
	// The paper uses 4 c5d.4xlarge workers with 8 slots each.
	c, err := cluster.Homogeneous(4, 8, 8.0, 400e6, 1.25e9)
	if err != nil {
		return nil, err
	}
	cfg := simulator.DefaultConfig()
	r := &Report{
		ID:    "TAB3",
		Title: "Comparison with ODRP on Q3-inf",
		Header: []string{"policy", "backpressure(%)", "throughput(rec/s)", "latency(ms)",
			"slots", "decision time(s)"},
	}

	// CAPSys: auto-tuned thresholds + exhaustive bounded search, measured
	// end to end like the paper's 0.2s figure.
	capsStart := time.Now() //capslint:allow determinism wall-clock effort measurement for the report, not part of plan selection
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	u, err := usageOf(spec)
	if err != nil {
		return nil, err
	}
	capsPlan, err := (placement.CAPS{}).Place(ctx, phys, c, u, 0)
	if err != nil {
		return nil, err
	}
	capsTime := time.Since(capsStart) //capslint:allow determinism wall-clock effort measurement for the report, not part of plan selection
	qm, err := evalPlan(spec, phys, capsPlan, c, cfg)
	if err != nil {
		return nil, err
	}
	r.AddRow("CAPSys", qm.Backpressure*100, qm.Throughput, qm.LatencySec*1000,
		spec.Graph.TotalTasks(), capsTime.Seconds())

	configs := []struct {
		name string
		w    odrp.Weights
	}{
		{"ODRP-Default", odrp.DefaultWeights()},
		{"ODRP-Weighted", odrp.WeightedWeights()},
		{"ODRP-Latency", odrp.LatencyWeights()},
	}
	var capsDecision = capsTime
	var worstODRP time.Duration
	for _, cfgW := range configs {
		res, err := odrp.Solve(ctx, spec, c, odrp.Options{
			Weights:        cfgW.w,
			MaxParallelism: 8,
			Timeout:        10 * time.Minute,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfgW.name, err)
		}
		if res.Elapsed > worstODRP {
			worstODRP = res.Elapsed
		}
		physO, err := dataflow.Expand(res.Graph)
		if err != nil {
			return nil, err
		}
		specO := spec
		specO.Graph = res.Graph
		qmO, err := evalPlan(specO, physO, res.Plan, c, cfg)
		if err != nil {
			return nil, err
		}
		r.AddRow(cfgW.name, qmO.Backpressure*100, qmO.Throughput, qmO.LatencySec*1000,
			res.SlotsUsed, res.Elapsed.Seconds())
	}
	if capsDecision > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"ODRP worst-case decision time is %.0fx CAPSys'", float64(worstODRP)/float64(capsDecision)))
	}
	r.Notes = append(r.Notes,
		"expected shape: ODRP-Default/Weighted under-provision (high backpressure); only CAPSys meets the target cheaply and fast")
	return r, nil
}
