package experiments

import (
	"context"
	"fmt"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
)

// scalingCluster mirrors the paper's §6.4 r5d pool with room to scale.
func scalingCluster() (*cluster.Cluster, error) {
	return cluster.Homogeneous(8, 8, 4.0, 200e6, 1.25e9)
}

func autoscaleStrategies() []placement.Strategy {
	return []placement.Strategy{placement.CAPS{}, placement.FlinkDefault{}, placement.FlinkEvenly{}}
}

// Tab4 reproduces Table 4: auto-scaling accuracy over four rate steps
// (x2, x2, /2, /2). The deployment starts from an optimal configuration;
// after each rate change DS2 takes one scaling decision and we record
// whether the target was met and whether the query was over-provisioned.
func Tab4(ctx context.Context) (*Report, error) {
	spec := nexmark.Q3Inf()
	c, err := scalingCluster()
	if err != nil {
		return nil, err
	}
	// Start at a quarter of the saturation rate with the ideal parallelism
	// for that rate (the paper hand-tunes the starting configuration).
	baseFactor := 0.25
	initialRates := map[dataflow.OperatorID]float64{}
	for k, v := range spec.SourceRates {
		initialRates[k] = v * baseFactor
	}
	initial := controller.IdealParallelism(spec.Graph, initialRates)

	// Four steps: x2, x2, /2, /2.
	phases := []controller.Phase{
		{Ticks: 4, RateFactor: 0.25},
		{Ticks: 4, RateFactor: 0.5},
		{Ticks: 4, RateFactor: 1.0},
		{Ticks: 4, RateFactor: 0.5},
		{Ticks: 4, RateFactor: 0.25},
	}
	r := &Report{
		ID:     "TAB4",
		Title:  "Auto-scaling accuracy over rate steps x2, x2, /2, /2 (Q3-inf)",
		Header: []string{"strategy", "step", "target", "throughput", "met", "overprovisioned"},
	}
	for _, strat := range autoscaleStrategies() {
		res, err := controller.RunTimeline(ctx, spec, c, strat, phases, controller.TimelineOptions{
			InitialParallelism: initial,
			ActivationTicks:    2,
			MaxParallelism:     16,
			Seed:               7,
			SimConfig:          simulator.DefaultConfig(),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", strat.Name(), err)
		}
		// Inspect the last tick of each post-change phase (steps 1-4).
		tick := 0
		for step := 1; step < len(phases); step++ {
			tick += phases[step-1].Ticks
			last := res.Ticks[tick+phases[step].Ticks-1]
			met := last.Throughput >= 0.97*last.TargetRate
			r.AddRow(strat.Name(), step, last.TargetRate, last.Throughput, met, last.Overprovisioned)
		}
	}
	r.Notes = append(r.Notes,
		"expected shape: CAPS meets every target without over-provisioning; baselines miss targets and/or over-provision")
	return r, nil
}

// Fig9 reproduces Figure 9: auto-scaling convergence under a variable
// workload that alternates between a low and a high rate. It reports the
// number of scaling actions per strategy and a sampled timeline.
func Fig9(ctx context.Context) (*Report, error) {
	spec := nexmark.Q3Inf()
	c, err := scalingCluster()
	if err != nil {
		return nil, err
	}
	initial := map[dataflow.OperatorID]int{}
	for _, op := range spec.Graph.Operators() {
		initial[op.ID] = 1
	}
	phases := []controller.Phase{
		{Ticks: 10, RateFactor: 0.3},
		{Ticks: 10, RateFactor: 0.9},
		{Ticks: 10, RateFactor: 0.3},
		{Ticks: 10, RateFactor: 0.9},
	}
	r := &Report{
		ID:     "FIG9",
		Title:  "Auto-scaling convergence under variable workload (Q3-inf)",
		Header: []string{"strategy", "tick", "target", "throughput", "tasks", "action"},
	}
	summary := map[string][3]float64{} // actions, atTargetFraction, finalTasks
	for _, strat := range autoscaleStrategies() {
		res, err := controller.RunTimeline(ctx, spec, c, strat, phases, controller.TimelineOptions{
			InitialParallelism: initial,
			ActivationTicks:    2,
			MaxParallelism:     16,
			Seed:               11,
			SimConfig:          simulator.DefaultConfig(),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", strat.Name(), err)
		}
		atTarget := 0
		for i, tk := range res.Ticks {
			if tk.Throughput >= 0.97*tk.TargetRate {
				atTarget++
			}
			if i%4 == 3 || tk.ScalingAction {
				r.AddRow(strat.Name(), tk.Tick, tk.TargetRate, tk.Throughput, tk.TotalTasks, tk.ScalingAction)
			}
		}
		summary[strat.Name()] = [3]float64{
			float64(res.ScalingActions),
			float64(atTarget) / float64(len(res.Ticks)),
			float64(res.Ticks[len(res.Ticks)-1].TotalTasks),
		}
	}
	for _, name := range []string{"caps", "default", "evenly"} {
		s := summary[name]
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: %d scaling actions, at-target %.0f%% of ticks, final tasks %d",
			name, int(s[0]), s[1]*100, int(s[2])))
	}
	r.Notes = append(r.Notes,
		"expected shape: CAPS converges with fewer scaling actions than default and stays at target more often")
	return r, nil
}
