package experiments

import (
	"context"
	"strconv"
	"testing"
	"time"

	"capsys/internal/engine"
)

func TestRescaleStudy(t *testing.T) {
	cfg := defaultRescaleConfig()
	// Keep the engine runs light for the test battery.
	cfg.Records = 800
	cfg.SnapshotInterval = 100
	cfg.AtEpoch = 2
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := rescaleStudy(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// fused/unfused x transports x two directions.
	if want := 2 * len(engine.TransportNames()) * 2; len(rep.Rows) != want {
		t.Fatalf("expected %d rows, got %d", want, len(rep.Rows))
	}
	fusions := map[string]bool{}
	transports := map[string]bool{}
	sinks := map[string]bool{}
	for _, row := range rep.Rows {
		fusion, transport := row[0], row[1]
		fusions[fusion] = true
		transports[transport] = true
		if row[6] != "0" {
			t.Errorf("%s/%s lost records: %v", fusion, transport, row)
		}
		reproc, err := strconv.ParseInt(row[5], 10, 64)
		if err != nil || reproc <= 0 || reproc >= 2*cfg.Records {
			t.Errorf("%s/%s reprocessed %q records — want (0, full replay): %v", fusion, transport, row[5], row)
		}
		chains, _ := strconv.ParseFloat(row[9], 64)
		if fusion == "fused" && chains <= 0 {
			t.Errorf("fused row fused no chains: %v", row)
		}
		if fusion == "unfused" && chains != 0 {
			t.Errorf("unfused row fused %v chains: %v", chains, row)
		}
		sinks[row[len(row)-1]] = true
	}
	if !fusions["fused"] || !fusions["unfused"] {
		t.Errorf("fusion dimensions missing: %v", fusions)
	}
	for _, want := range engine.TransportNames() {
		if !transports[want] {
			t.Errorf("transport %s missing from report", want)
		}
	}
	// Exactly-once + fusion transparency: one sink count across all rows.
	if len(sinks) != 1 {
		t.Errorf("sink records diverge across rows: %v", sinks)
	}
}
