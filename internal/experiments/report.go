// Package experiments regenerates every table and figure of the CAPSys
// paper's evaluation (§3 empirical study and §6 evaluation) on top of the
// repository's substrates: the CAPS search, the baselines, the DS2
// controller and the contention simulator.
//
// Each experiment returns a Report — a text table plus notes — so the same
// code path serves the capbench CLI, the benchmark suite and the regression
// tests that pin the paper's qualitative claims (who wins, by roughly what
// factor, where the crossovers fall).
package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Report is one experiment's regenerated table/figure data.
type Report struct {
	// ID is the experiment identifier (e.g. "FIG2", "TAB3").
	ID string
	// Title describes what the paper's table/figure shows.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the table body.
	Rows [][]string
	// Notes carries qualitative observations (e.g. the shape claims).
	Notes []string
}

// AddRow appends a row, stringifying the values.
func (r *Report) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = formatFloat(x)
		case int:
			row[i] = fmt.Sprintf("%d", x)
		case int64:
			row[i] = fmt.Sprintf("%d", x)
		case bool:
			if x {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10:
		return fmt.Sprintf("%.1f", x)
	case x >= 0.01:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%.3g", x)
	}
}

// CSV renders the report as comma-separated values: a header row followed
// by the body. Notes are emitted as trailing comment lines ("# ...").
func (r *Report) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(r.Header)
	for _, row := range r.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
