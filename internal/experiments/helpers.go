package experiments

import (
	"fmt"
	"math"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/simulator"
	"capsys/internal/telemetry"
)

// mergedLatencyQuantile merges every per-operator latency histogram on the
// hub (they share one bucket layout) and returns the p-quantile in seconds,
// or 0 when the hub recorded no samples.
func mergedLatencyQuantile(tel *telemetry.Telemetry, p float64) float64 {
	var merged telemetry.HistogramSnapshot
	first := true
	for _, name := range tel.HistogramNames() {
		snap := tel.Histogram(name).Snapshot() //capslint:allow metricnames iterates names already registered on the hub
		if first {
			merged = snap
			first = false
			continue
		}
		if err := merged.Merge(snap); err != nil {
			return 0
		}
	}
	if first || merged.Count == 0 {
		return 0
	}
	return merged.Quantile(p)
}

// evalPlan runs one (query, plan) pair through the simulator and returns its
// query metrics.
func evalPlan(spec nexmark.QuerySpec, phys *dataflow.PhysicalGraph, plan *dataflow.Plan, c *cluster.Cluster, cfg simulator.Config) (simulator.QueryMetrics, error) {
	res, err := simulator.Evaluate([]simulator.QueryDeployment{{
		Name: spec.Name, Phys: phys, Plan: plan, SourceRates: spec.SourceRates,
	}}, c, cfg)
	if err != nil {
		return simulator.QueryMetrics{}, err
	}
	return res.Queries[spec.Name], nil
}

// usageOf derives the cost-model usage for a query spec.
func usageOf(spec nexmark.QuerySpec) (*costmodel.Usage, error) {
	rates, err := dataflow.PropagateRates(spec.Graph, spec.SourceRates)
	if err != nil {
		return nil, err
	}
	return costmodel.FromRates(spec.Graph, rates), nil
}

// summarize computes min/mean/max of a sample.
func summarize(xs []float64) (min, mean, max float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	min, max = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, sum / float64(len(xs)), max
}

// scaleQuery returns a copy of spec whose operator parallelisms are scaled
// so the total task count equals totalTasks, with source rates scaled
// proportionally (keeping per-task load roughly constant). Rounding residue
// is absorbed by the largest operator.
func scaleQuery(spec nexmark.QuerySpec, totalTasks int) (nexmark.QuerySpec, error) {
	base := spec.Graph.TotalTasks()
	if totalTasks < spec.Graph.NumOperators() {
		return nexmark.QuerySpec{}, fmt.Errorf("experiments: %d tasks below one per operator", totalTasks)
	}
	factor := float64(totalTasks) / float64(base)
	out := spec.Scaled(factor)
	out.Name = spec.Name

	ops := out.Graph.Operators()
	newPar := make(map[dataflow.OperatorID]int, len(ops))
	assigned := 0
	largest := ops[0]
	for _, op := range ops {
		p := int(math.Round(float64(op.Parallelism) * factor))
		if p < 1 {
			p = 1
		}
		newPar[op.ID] = p
		assigned += p
		if op.Parallelism > largest.Parallelism {
			largest = op
		}
	}
	// Absorb rounding drift in the largest operator.
	newPar[largest.ID] += totalTasks - assigned
	if newPar[largest.ID] < 1 {
		return nexmark.QuerySpec{}, fmt.Errorf("experiments: cannot scale %s to %d tasks", spec.Name, totalTasks)
	}
	g, err := out.Graph.Rescale(newPar)
	if err != nil {
		return nexmark.QuerySpec{}, err
	}
	out.Graph = g
	return out, nil
}

// heaviestOperator returns the non-source operator with the largest
// parallelism, the usual contention subject (window/join/inference).
func heaviestOperator(g *dataflow.LogicalGraph) dataflow.OperatorID {
	var best *dataflow.Operator
	for _, op := range g.Operators() {
		if len(g.Upstream(op.ID)) == 0 {
			continue
		}
		if best == nil || op.Parallelism > best.Parallelism {
			best = op
		}
	}
	if best == nil {
		return g.Operators()[0].ID
	}
	return best.ID
}
