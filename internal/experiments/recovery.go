package experiments

import (
	"context"
	"fmt"
	"sort"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/odrp"
	"capsys/internal/placement"
	"capsys/internal/telemetry"
)

// recoveryConfig parameterizes the fault-injection study.
type recoveryConfig struct {
	Query            string
	Workers          int
	Records          int64 // per source task
	SnapshotInterval int64
	KillAtEpoch      int64
	Seed             int64
	SearchNodes      int64 // node budget for CAPS and ODRP
}

func defaultRecoveryConfig() recoveryConfig {
	return recoveryConfig{
		Query:            "Q1-sliding",
		Workers:          4,
		Records:          2000,
		SnapshotInterval: 250,
		KillAtEpoch:      3,
		Seed:             11,
		SearchNodes:      200_000,
	}
}

// Recovery is the fault-tolerance study: each strategy deploys the query on
// the live engine, the busiest worker is killed at a checkpoint epoch, and
// the controller reconciles — re-running the same strategy over the
// survivors and restarting from the last complete snapshot. The placement
// strategy is on recovery's critical path twice: its decision time adds to
// the outage, and its survivor placement decides the post-recovery
// backpressure on the shrunken cluster (the paper's §7 failure-handling
// discussion; decision-time asymmetry echoes §6.3's CAPS-vs-ODRP result).
func Recovery(ctx context.Context) (*Report, error) {
	return recoveryStudy(ctx, defaultRecoveryConfig())
}

// RecoveryStrategies returns the study's strategy lineup: CAPS, the two
// Flink baselines and ODRP (adapted onto the fixed graph). Shared with the
// capsysctl -recovery mode.
func RecoveryStrategies(spec nexmark.QuerySpec, nodes int64) []placement.Strategy {
	return []placement.Strategy{
		placement.CAPS{Search: caps.Options{MaxNodes: nodes}},
		placement.FlinkDefault{},
		placement.FlinkEvenly{},
		odrpStrategy{spec: spec, opts: odrp.Options{Weights: odrp.WeightedWeights(), MaxNodes: nodes}},
	}
}

func recoveryStudy(ctx context.Context, cfg recoveryConfig) (*Report, error) {
	spec, err := nexmark.ByName(cfg.Query)
	if err != nil {
		return nil, err
	}
	if cfg.Workers < 2 {
		return nil, fmt.Errorf("experiments: recovery needs >= 2 workers")
	}
	// Size slots so the survivors can still host the whole graph after one
	// worker dies.
	tasks := spec.Graph.TotalTasks()
	slots := tasks/(cfg.Workers-1) + 1
	c, err := cluster.Homogeneous(cfg.Workers, slots, 8, 500e6, 2e9)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:    "RECOVERY",
		Title: fmt.Sprintf("fault injection on %s: kill busiest worker at epoch %d, recover from checkpoint", cfg.Query, cfg.KillAtEpoch),
		Header: []string{"strategy", "transport", "place_ms", "replace_ms", "recovered",
			"downtime_ms", "reprocessed", "lost", "sink_records", "moved_tasks", "peak_bp", "p99_ms", "events"},
	}
	var outcomes []*controller.RecoveryOutcome
	for _, strat := range RecoveryStrategies(spec, cfg.SearchNodes) {
		// Per-strategy recovered-record accounting across transports: the
		// exchange discipline must be invisible to exactly-once delivery.
		// Which epoch the restore starts from (and hence the reprocessed
		// count) legitimately depends on scheduling, but the delivered sink
		// records may not: a divergence would be an exactly-once violation
		// in one of the transports.
		baseSink := int64(-1)
		for _, transport := range engine.TransportNames() {
			// One hub per run keeps latency histograms and trace events
			// attributable to a single strategy/transport pair.
			tel := telemetry.New()
			out, err := controller.RunRecovery(ctx, spec, c, strat, controller.RecoveryOptions{
				Seed:             cfg.Seed,
				RecordsPerSource: cfg.Records,
				SnapshotInterval: cfg.SnapshotInterval,
				KillWorker:       -1,
				KillAtEpoch:      cfg.KillAtEpoch,
				Transport:        transport,
				Telemetry:        tel,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: recovery under %s/%s: %w", strat.Name(), transport, err)
			}
			outcomes = append(outcomes, out)
			if baseSink < 0 {
				baseSink = out.Result.SinkRecords
			} else if out.Result.SinkRecords != baseSink {
				return nil, fmt.Errorf("experiments: recovery under %s: sink records diverge across transports: %s delivered %d, expected %d",
					strat.Name(), transport, out.Result.SinkRecords, baseSink)
			}
			rep.AddRow(out.Strategy,
				out.Transport,
				float64(out.PlacementTime.Microseconds())/1000,
				float64(out.ReplaceTime.Microseconds())/1000,
				out.Recovered,
				float64(out.Result.Downtime.Microseconds())/1000,
				out.Result.RecordsReprocessed,
				out.Result.LostRecords,
				out.Result.SinkRecords,
				out.MovedTasks,
				out.Backpressure,
				mergedLatencyQuantile(tel, 0.99)*1e3,
				tel.Tracer().Len(),
			)
		}
	}
	for _, out := range outcomes {
		if out.Result.LostRecords != 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s/%s lost %d records after recovery (checkpoint restore incomplete)",
				out.Strategy, out.Transport, out.Result.LostRecords))
		}
	}
	rep.Notes = append(rep.Notes,
		"re-placement decision time is part of the outage: the scheduler sits on recovery's critical path",
		"every recovered run reprocesses only the records after its last complete checkpoint and loses none",
		"recovered-record accounting (sink records, zero lost) is identical under the unary, batched and network transports for every strategy")
	return rep, nil
}

// odrpStrategy adapts the ODRP solver to the placement.Strategy interface.
// ODRP jointly re-decides parallelism, so its plan covers a *rescaled* graph;
// for a like-for-like comparison on the fixed physical graph, each
// operator's tasks inherit ODRP's worker multiset for that operator
// round-robin (sorted for determinism), and slot overflows introduced by the
// projection spill to the emptiest worker.
type odrpStrategy struct {
	spec nexmark.QuerySpec
	opts odrp.Options
}

func (s odrpStrategy) Name() string { return "odrp" }

func (s odrpStrategy) Place(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, _ *costmodel.Usage, _ int64) (*dataflow.Plan, error) {
	res, err := odrp.Solve(ctx, s.spec, c, s.opts)
	if err != nil {
		return nil, err
	}
	slots, err := c.SlotsPerWorker()
	if err != nil {
		return nil, err
	}
	// Desired worker per task: operator's ODRP replica workers, sorted,
	// assigned round-robin over the fixed parallelism.
	desired := make(map[dataflow.TaskID]int, p.NumTasks())
	for _, op := range s.spec.Graph.Operators() {
		var ws []int
		for i := 0; i < res.Parallelism[op.ID]; i++ {
			if w, ok := res.Plan.Worker(dataflow.TaskID{Op: op.ID, Index: i}); ok {
				ws = append(ws, w)
			}
		}
		if len(ws) == 0 {
			return nil, fmt.Errorf("experiments: odrp plan missing operator %s", op.ID)
		}
		sort.Ints(ws)
		for _, t := range p.TasksOf(op.ID) {
			desired[t] = ws[t.Index%len(ws)]
		}
	}
	// Enforce slot capacities: tasks in graph order keep their desired
	// worker when it has room, otherwise spill to the emptiest worker
	// (ties to the lowest index) so the projection stays deterministic.
	used := make([]int, c.NumWorkers())
	plan := dataflow.NewPlan()
	for _, t := range p.Tasks() {
		w, ok := desired[t]
		if !ok {
			return nil, fmt.Errorf("experiments: odrp projection missing task %v", t)
		}
		if used[w] >= slots {
			w = -1
			for i := range used {
				if used[i] < slots && (w == -1 || used[i] < used[w]) {
					w = i
				}
			}
			if w == -1 {
				return nil, fmt.Errorf("experiments: odrp projection out of slots")
			}
		}
		plan.Assign(t, w)
		used[w]++
	}
	return plan, nil
}
