package experiments

import (
	"context"
	"fmt"

	"capsys/internal/cluster"
	"capsys/internal/controller"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
)

// exchangeConfig parameterizes the data-plane throughput study.
type exchangeConfig struct {
	Query      string
	Workers    int
	Records    int64 // per source task
	Seed       int64
	BatchSizes []int // one batched row per size, after the unary baseline
	// ChainRecords is the per-source record budget for the pipelined-chain
	// section (fused vs unfused rows); 0 skips the section.
	ChainRecords int64
}

func defaultExchangeConfig() exchangeConfig {
	return exchangeConfig{
		// Q3-inf is a stateless map pipeline: every sourced record reaches
		// the sink, so delivered counts are exactly determined by the record
		// budget and any cross-transport divergence is a transport bug —
		// unlike the windowed queries, whose emissions at window boundaries
		// are sensitive to cross-channel arrival order.
		Query:        "Q3-inf",
		Workers:      4,
		Records:      20_000,
		Seed:         7,
		BatchSizes:   []int{8, 32, 64},
		ChainRecords: 20_000,
	}
}

// Exchange is the data-plane study: the same query, plan and record budget
// run on the live engine under each exchange transport, so the table
// isolates what the transport itself costs. Per-record operator CPU charges
// are zeroed — with metered operator work dominating, every transport looks
// alike; without it, the per-record channel handshakes and token-bucket
// draws that batching amortizes become the bottleneck under measure.
// Exactly-once delivery must be transport-invariant: the study fails if any
// row's sink records diverge from the unary baseline.
func Exchange(ctx context.Context) (*Report, error) {
	return exchangeStudy(ctx, defaultExchangeConfig())
}

func exchangeStudy(ctx context.Context, cfg exchangeConfig) (*Report, error) {
	spec, err := nexmark.ByName(cfg.Query)
	if err != nil {
		return nil, err
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	u, err := usageOf(spec)
	if err != nil {
		return nil, err
	}
	slots := spec.Graph.TotalTasks()/cfg.Workers + 1
	// Worker meters are provisioned well above the pipeline's data rate for
	// the same reason operator CPU is zeroed: a bandwidth-bound run paces
	// every transport to the same token-bucket rate (batching coalesces
	// meter draws but moves the same bytes), hiding the per-record exchange
	// overhead this study exists to measure.
	c, err := cluster.Homogeneous(cfg.Workers, slots, 8, 8e9, 64e9)
	if err != nil {
		return nil, err
	}
	// The plan is fixed across rows: placement is held constant so the
	// transport is the only variable.
	strat := placement.FlinkEvenly{}
	plan, err := strat.Place(ctx, phys, c, u, cfg.Seed)
	if err != nil {
		return nil, err
	}
	binding, err := nexmark.BindEngine(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}

	type runSpec struct {
		transport string
		batchSize int
	}
	runs := []runSpec{{transport: engine.TransportUnary}}
	for _, size := range cfg.BatchSizes {
		runs = append(runs, runSpec{transport: engine.TransportBatched, batchSize: size})
	}
	// One network row at the default batch size: the same batched senders
	// feed loopback TCP sockets, so the delta over the batched row at the
	// same size is the framing + socket cost.
	runs = append(runs, runSpec{transport: engine.TransportNetwork, batchSize: engine.DefaultBatchSize})

	rep := &Report{
		ID:    "EXCHANGE",
		Title: fmt.Sprintf("data-plane transports on %s: same plan, %d records/source, operator CPU cost zeroed", cfg.Query, cfg.Records),
		Header: []string{"pipeline", "transport", "batch_size", "fuse", "sourced", "elapsed_ms", "rec_per_s",
			"sink_records", "batches", "batch_mean", "credit_stalls", "speedup"},
	}
	var unaryRate float64
	var unarySinks int64
	bestRate, bestSize := 0.0, 0
	for _, r := range runs {
		job, err := engine.NewJob(spec.Graph, plan, controller.EngineCluster(c), binding.Factories, engine.JobOptions{
			RecordsPerSource: cfg.Records,
			Stateful:         binding.Stateful,
			Transport:        r.transport,
			BatchSize:        r.batchSize,
		})
		if err != nil {
			return nil, err
		}
		res, err := job.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiments: exchange under %s: %w", r.transport, err)
		}
		rate := 0.0
		if res.Elapsed > 0 {
			rate = float64(res.SourceRecords) / res.Elapsed.Seconds()
		}
		snap := res.Metrics.Snapshot()
		batchMean := 0.0
		if b := snap["exchange.batches"]; b > 0 {
			batchMean = snap["exchange.batch_records"] / b
		}
		sizeCell := "-"
		speedup := 1.0
		if r.transport == engine.TransportUnary {
			unaryRate = rate
			unarySinks = res.SinkRecords
		} else {
			sizeCell = fmt.Sprintf("%d", r.batchSize)
			if unaryRate > 0 {
				speedup = rate / unaryRate
			}
			if r.transport == engine.TransportBatched && rate > bestRate {
				bestRate, bestSize = rate, r.batchSize
			}
			if res.SinkRecords != unarySinks {
				return nil, fmt.Errorf("experiments: exchange: batched(size %d) delivered %d sink records, unary %d",
					r.batchSize, res.SinkRecords, unarySinks)
			}
		}
		rep.AddRow(cfg.Query, r.transport, sizeCell, "-",
			res.SourceRecords,
			float64(res.Elapsed.Microseconds())/1000,
			rate,
			res.SinkRecords,
			snap["exchange.batches"],
			batchMean,
			snap["exchange.credit_stalls"],
			speedup,
		)
	}
	if unaryRate > 0 && bestRate > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"batching amortizes channel handshakes and meter draws: batch size %d sustains %.2fx the unary throughput",
			bestSize, bestRate/unaryRate))
	}
	rep.Notes = append(rep.Notes,
		"sink records are identical across every transport and batch size: the exchange layer is invisible to delivery semantics",
		"credit stalls replace per-record channel blocking as the batched transport's backpressure signal",
		"the network row pushes the same batches through loopback TCP with demand-driven wire credits; its delta over batched at the same size is the framing and socket cost")
	if cfg.ChainRecords > 0 {
		if err := exchangeChainSection(ctx, rep, cfg); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// exchangeChainSection appends the fused-vs-unfused rows: Q3-inf's edges all
// repartition, so fusion has nothing to chain there — these rows instead run
// a co-located linear Forward chain (src=>fwd=>sink, one chain per worker),
// where the exchange is pure overhead that fusion removes entirely. Unfused
// rows cover all three transports; the fused row runs once, since a fully
// fused chain never touches a transport.
func exchangeChainSection(ctx context.Context, rep *Report, cfg exchangeConfig) error {
	const pipeline = "fwd-chain"
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: cfg.Workers, Selectivity: 1},
		{ID: "fwd", Kind: dataflow.KindMap, Parallelism: cfg.Workers, Selectivity: 1},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: cfg.Workers},
	} {
		if err := g.AddOperator(op); err != nil {
			return err
		}
	}
	for _, e := range []dataflow.Edge{
		{From: "src", To: "fwd", Mode: dataflow.Forward},
		{From: "fwd", To: "sink", Mode: dataflow.Forward},
	} {
		if err := g.AddEdge(e); err != nil {
			return err
		}
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		return err
	}
	// Chain i lives entirely on worker i: every Forward pair is co-located,
	// so with fusion on nothing crosses the exchange.
	plan := dataflow.NewPlan()
	for _, t := range phys.Tasks() {
		plan.Assign(t, t.Index)
	}
	workers := make([]engine.WorkerSpec, cfg.Workers)
	for i := range workers {
		workers[i] = engine.WorkerSpec{
			ID: fmt.Sprintf("w%d", i), Slots: 4, Cores: 1e6, IOBps: 1e12, NetBps: 1e15,
		}
	}
	factories := map[dataflow.OperatorID]engine.Factory{
		"src": func(*engine.TaskContext) (any, error) {
			return engine.NewSource(func(task, i int64) (engine.Record, bool) {
				return engine.Record{Key: "k", Value: float64(i), Time: i}, true
			}), nil
		},
		"fwd": func(*engine.TaskContext) (any, error) {
			return engine.NewMap(func(r engine.Record) engine.Record { return r }), nil
		},
		"sink": func(*engine.TaskContext) (any, error) { return engine.NewSink(nil), nil },
	}
	type chainRun struct {
		transport string
		fuse      bool
	}
	runs := []chainRun{
		{transport: engine.TransportUnary},
		{transport: engine.TransportBatched},
		{transport: engine.TransportNetwork},
		{transport: engine.TransportBatched, fuse: true},
	}
	var unaryRate, fusedRate float64
	var unarySinks int64
	for _, r := range runs {
		job, err := engine.NewJob(g, plan, engine.ClusterSpec{Workers: workers}, factories, engine.JobOptions{
			RecordsPerSource: cfg.ChainRecords,
			Transport:        r.transport,
			DisableFusion:    !r.fuse,
		})
		if err != nil {
			return err
		}
		res, err := job.Run(ctx)
		if err != nil {
			return fmt.Errorf("experiments: exchange chain under %s: %w", r.transport, err)
		}
		rate := 0.0
		if res.Elapsed > 0 {
			rate = float64(res.SourceRecords) / res.Elapsed.Seconds()
		}
		snap := res.Metrics.Snapshot()
		batchMean := 0.0
		if b := snap["exchange.batches"]; b > 0 {
			batchMean = snap["exchange.batch_records"] / b
		}
		fuse, transport, speedup := "off", r.transport, 1.0
		if r.fuse {
			fuse, transport = "on", "-"
			fusedRate = rate
		}
		if r.transport == engine.TransportUnary && !r.fuse {
			unaryRate = rate
			unarySinks = res.SinkRecords
		} else if unaryRate > 0 {
			speedup = rate / unaryRate
		}
		if unarySinks != 0 && res.SinkRecords != unarySinks {
			return fmt.Errorf("experiments: exchange chain (%s, fuse=%s) delivered %d sink records, unary %d",
				r.transport, fuse, res.SinkRecords, unarySinks)
		}
		rep.AddRow(pipeline, transport, "-", fuse,
			res.SourceRecords,
			float64(res.Elapsed.Microseconds())/1000,
			rate,
			res.SinkRecords,
			snap["exchange.batches"],
			batchMean,
			snap["exchange.credit_stalls"],
			speedup,
		)
	}
	if unaryRate > 0 && fusedRate > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"operator fusion removes the exchange from co-located Forward chains entirely: the fused row sustains %.2fx the chain's unary throughput with zero batches on any transport",
			fusedRate/unaryRate))
	}
	return nil
}
