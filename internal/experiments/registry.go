package experiments

import (
	"context"
	"fmt"
	"sort"
)

// Func runs one experiment.
type Func func(context.Context) (*Report, error)

// registry maps experiment IDs (lowercase) to their functions.
var registry = map[string]Func{
	"fig2":   Fig2,
	"fig3a":  Fig3a,
	"fig3b":  Fig3b,
	"fig3c":  Fig3c,
	"fig5":   Fig5,
	"tab2":   Tab2,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"tab3":   Tab3,
	"tab4":   Tab4,
	"fig9":   Fig9,
	"fig10a": Fig10a,
	"fig10b": Fig10b,
	// Extensions beyond the paper's main evaluation: the technical
	// report's skew study and the chaining compatibility demonstration.
	"ext-skew":  ExtSkew,
	"ext-chain": ExtChain,
	"ext-wan":   ExtWAN,
	// Fault-tolerance study: kill a worker mid-run, reconcile, restart
	// from the last complete checkpoint under each strategy and each
	// exchange transport.
	"recovery": Recovery,
	// Elasticity study: live rescale of the stateful window operator —
	// drain to a checkpoint epoch, repartition key-groups, re-place,
	// resume — measured fused/unfused under every transport.
	"rescale": Rescale,
	// Data-plane study: unary vs batched exchange transports on the live
	// engine, same plan and record budget.
	"exchange": Exchange,
	// Search-efficiency study: incremental vs from-scratch cost
	// evaluation and cold vs warm-started search.
	"searchperf": SearchPerf,
}

// IDs returns all experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(ctx context.Context, id string) (*Report, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return f(ctx)
}
