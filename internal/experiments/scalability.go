package experiments

import (
	"context"
	"fmt"
	"time"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
)

// fig10Alphas are the three empirically obtained threshold vectors used in
// the paper's Figure 10a.
func fig10Alphas() []struct {
	name  string
	alpha costmodel.Vector
} {
	return []struct {
		name  string
		alpha costmodel.Vector
	}{
		{"a1", costmodel.Vector{CPU: 0.08, IO: 0.15, Net: 0.6}},
		{"a2", costmodel.Vector{CPU: 0.15, IO: 0.25, Net: 0.8}},
		{"a3", costmodel.Vector{CPU: 0.25, IO: 0.3, Net: 0.9}},
	}
}

// Fig10a reproduces Figure 10a: the time CAPS needs to find the first plan
// satisfying the thresholds as the problem grows from 16 to 256 tasks
// (Q2-join scaled, tasks == slots).
func Fig10a(ctx context.Context) (*Report, error) {
	r := &Report{
		ID:     "FIG10a",
		Title:  "CAPS search time to first satisfying plan vs problem size (Q2-join)",
		Header: []string{"tasks", "workers", "alpha", "time(ms)", "nodes", "feasible"},
	}
	base := nexmark.Q2Join()
	for _, tasks := range []int{16, 32, 64, 128, 256} {
		workers := tasks / 8
		if workers < 2 {
			workers = 2
		}
		slots := tasks / workers
		if workers*slots < tasks {
			slots++
		}
		c, err := cluster.Homogeneous(workers, slots, 4.0*float64(slots)/4, 200e6*float64(slots)/4, 1.25e9)
		if err != nil {
			return nil, err
		}
		spec, err := scaleQuery(base, tasks)
		if err != nil {
			return nil, err
		}
		phys, err := dataflow.Expand(spec.Graph)
		if err != nil {
			return nil, err
		}
		u, err := usageOf(spec)
		if err != nil {
			return nil, err
		}
		for _, a := range fig10Alphas() {
			start := time.Now() //capslint:allow determinism wall-clock effort measurement for the report, not part of plan selection
			res, err := caps.Search(ctx, phys, c, u, caps.Options{
				Alpha:       a.alpha,
				Mode:        caps.FirstFeasible,
				Reorder:     true,
				Parallelism: 4,
				Timeout:     30 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			r.AddRow(tasks, workers, a.name, float64(time.Since(start).Microseconds())/1000, res.Stats.Nodes, res.Feasible) //capslint:allow determinism wall-clock effort measurement for the report, not part of plan selection
		}
	}
	r.Notes = append(r.Notes,
		"expected shape: first satisfying plan found within tens of milliseconds even at 256 tasks; tighter alphas cost more")
	return r, nil
}

// Fig10b reproduces Figure 10b: threshold auto-tuning runtime across
// cluster shapes (8 and 16 workers x 4..64 slots, 32..1024 tasks).
func Fig10b(ctx context.Context) (*Report, error) {
	r := &Report{
		ID:     "FIG10b",
		Title:  "Threshold auto-tuning runtime vs deployment size (Q2-join)",
		Header: []string{"workers", "slots", "tasks", "time(s)", "probes", "alpha_cpu", "alpha_io", "alpha_net"},
	}
	base := nexmark.Q2Join()
	for _, workers := range []int{8, 16} {
		for _, slots := range []int{4, 8, 16, 32, 64} {
			tasks := workers * slots
			c, err := cluster.Homogeneous(workers, slots, 4.0*float64(slots)/4, 200e6*float64(slots)/4, 1.25e9)
			if err != nil {
				return nil, err
			}
			spec, err := scaleQuery(base, tasks)
			if err != nil {
				return nil, err
			}
			phys, err := dataflow.Expand(spec.Graph)
			if err != nil {
				return nil, err
			}
			u, err := usageOf(spec)
			if err != nil {
				return nil, err
			}
			opts := caps.DefaultAutoTuneOptions()
			opts.Timeout = 30 * time.Second
			opts.SearchParallelism = 4
			start := time.Now() //capslint:allow determinism wall-clock effort measurement for the report, not part of plan selection
			res, err := caps.AutoTune(ctx, phys, c, u, opts)
			if err != nil && err != caps.ErrAutoTuneTimeout {
				return nil, err
			}
			timedOut := ""
			if err == caps.ErrAutoTuneTimeout {
				timedOut = " (timeout)"
			}
			r.AddRow(workers, slots, tasks,
				fmt.Sprintf("%.3f%s", time.Since(start).Seconds(), timedOut), //capslint:allow determinism wall-clock effort measurement for the report, not part of plan selection
				res.Probes, res.Alpha.CPU, res.Alpha.IO, res.Alpha.Net)
		}
	}
	r.Notes = append(r.Notes,
		"expected shape: sub-second for small/medium deployments, growing with task count; acceptable because auto-tuning runs offline")
	return r, nil
}
