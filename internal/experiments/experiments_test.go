package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"capsys/internal/nexmark"
)

// These tests pin the qualitative claims of every reproduced table/figure:
// who wins, by roughly what factor, and where crossovers fall. They are the
// executable form of EXPERIMENTS.md.

func cellFloat(t *testing.T, r *Report, row, col int) float64 {
	t.Helper()
	s := r.Rows[row][col]
	s = strings.TrimSuffix(strings.Fields(s)[0], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q not numeric: %v", row, col, s, err)
	}
	return v
}

func run(t *testing.T, id string) *Report {
	t.Helper()
	r, err := Run(context.Background(), id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(r.Rows) == 0 {
		t.Fatalf("%s: empty report", id)
	}
	return r
}

func TestRegistry(t *testing.T) {
	if len(IDs()) != 20 {
		t.Errorf("IDs = %v, want 20 experiments", IDs())
	}
	if _, err := Run(context.Background(), "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// FIG2: best plans meet the target; worst plans are far behind.
func TestFig2Shape(t *testing.T) {
	r := run(t, "fig2")
	best := cellFloat(t, r, 0, 1)
	worst := cellFloat(t, r, len(r.Rows)-1, 1)
	if best < 1.5*worst {
		t.Errorf("best/worst gap %.2fx below 1.5x (best=%v worst=%v)", best/worst, best, worst)
	}
	bestBP := cellFloat(t, r, 0, 2)
	worstBP := cellFloat(t, r, len(r.Rows)-1, 2)
	if worstBP <= bestBP {
		t.Errorf("worst plan backpressure %v%% <= best %v%%", worstBP, bestBP)
	}
}

// FIG3: performance degrades monotonically with co-location degree, for all
// three resource dimensions.
func TestFig3Shape(t *testing.T) {
	for _, id := range []string{"fig3a", "fig3b", "fig3c"} {
		r := run(t, id)
		if len(r.Rows) != 3 {
			t.Fatalf("%s: %d rows", id, len(r.Rows))
		}
		low := cellFloat(t, r, 0, 2)
		med := cellFloat(t, r, 1, 2)
		high := cellFloat(t, r, 2, 2)
		if !(low >= med && med >= high) {
			t.Errorf("%s: throughput not monotone in contention: %v %v %v", id, low, med, high)
		}
		if low <= high {
			t.Errorf("%s: no contention effect (low %v <= high %v)", id, low, high)
		}
	}
}

// FIG5: plans below the cost threshold outperform plans above it.
func TestFig5Shape(t *testing.T) {
	r := run(t, "fig5")
	// First bucket (lowest C_io) must have the highest mean throughput.
	first := cellFloat(t, r, 0, 2)
	last := cellFloat(t, r, len(r.Rows)-1, 2)
	if first <= last {
		t.Errorf("low-cost bucket %v not faster than high-cost bucket %v", first, last)
	}
}

// TAB2: pruning monotonically shrinks plans and nodes; reordering shrinks
// nodes further at tight thresholds.
func TestTab2Shape(t *testing.T) {
	r := run(t, "tab2")
	prevPlans := int64(1 << 62)
	for i := range r.Rows {
		plans := int64(cellFloat(t, r, i, 1))
		if plans > prevPlans {
			t.Errorf("plans not monotone at row %d: %d > %d", i, plans, prevPlans)
		}
		prevPlans = plans
	}
	loosePlans := cellFloat(t, r, 0, 1)
	tightPlans := cellFloat(t, r, len(r.Rows)-1, 1)
	if loosePlans < 1000*max1(tightPlans) {
		t.Errorf("pruning reduced plans only from %v to %v", loosePlans, tightPlans)
	}
	// Reordering helps at the tightest threshold (orders of magnitude).
	lastPlain := cellFloat(t, r, len(r.Rows)-1, 2)
	lastReord := cellFloat(t, r, len(r.Rows)-1, 3)
	if lastReord > lastPlain {
		t.Errorf("reordering expanded nodes at tight threshold: %v > %v", lastReord, lastPlain)
	}
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}

// FIG7: CAPS mean throughput >= each baseline's mean, with lower mean
// backpressure, for every query; and CAPS has no variance.
func TestFig7Shape(t *testing.T) {
	r := run(t, "fig7")
	type row struct{ tputMean, bpMean, tputMin, tputMax float64 }
	got := map[string]map[string]row{}
	for i := range r.Rows {
		q, s := r.Rows[i][0], r.Rows[i][1]
		if got[q] == nil {
			got[q] = map[string]row{}
		}
		got[q][s] = row{
			tputMean: cellFloat(t, r, i, 3),
			bpMean:   cellFloat(t, r, i, 5),
			tputMin:  cellFloat(t, r, i, 2),
			tputMax:  cellFloat(t, r, i, 4),
		}
	}
	for q, by := range got {
		caps := by["caps"]
		for _, base := range []string{"default", "evenly"} {
			b := by[base]
			if caps.tputMean < b.tputMean {
				t.Errorf("%s: caps mean tput %v < %s %v", q, caps.tputMean, base, b.tputMean)
			}
			if caps.bpMean > b.bpMean+1e-9 {
				t.Errorf("%s: caps backpressure %v%% > %s %v%%", q, caps.bpMean, base, b.bpMean)
			}
			if b.tputMax-b.tputMin < 0 {
				t.Errorf("%s: %s has negative variance?!", q, base)
			}
		}
		if caps.tputMax != caps.tputMin {
			t.Errorf("%s: caps not deterministic", q)
		}
	}
}

// FIG8: CAPS reaches >= 99%% of target for all queries; each baseline
// misses at least one.
func TestFig8Shape(t *testing.T) {
	r := run(t, "fig8")
	minFrac := map[string]float64{"caps": 2, "default": 2, "evenly": 2}
	for i := range r.Rows {
		s := r.Rows[i][1]
		f := cellFloat(t, r, i, 3)
		if f < minFrac[s] {
			minFrac[s] = f
		}
	}
	if minFrac["caps"] < 0.99 {
		t.Errorf("caps worst target fraction %v < 0.99", minFrac["caps"])
	}
	for _, base := range []string{"default", "evenly"} {
		if minFrac[base] >= 0.99 {
			t.Errorf("%s met every target (worst %v); expected at least one miss", base, minFrac[base])
		}
	}
}

// TAB3: CAPSys meets the target; ODRP-Default under-provisions badly; the
// worst ODRP decision time is orders of magnitude above CAPSys'.
func TestTab3Shape(t *testing.T) {
	r := run(t, "tab3")
	byName := map[string]int{}
	for i := range r.Rows {
		byName[r.Rows[i][0]] = i
	}
	capsRow, ok := byName["CAPSys"]
	if !ok {
		t.Fatal("no CAPSys row")
	}
	capsTput := cellFloat(t, r, capsRow, 2)
	capsBP := cellFloat(t, r, capsRow, 1)
	if capsBP > 1 {
		t.Errorf("CAPSys backpressure %v%% > 1%%", capsBP)
	}
	defRow := byName["ODRP-Default"]
	if bp := cellFloat(t, r, defRow, 1); bp < 30 {
		t.Errorf("ODRP-Default backpressure %v%%; expected severe under-provisioning", bp)
	}
	if tput := cellFloat(t, r, defRow, 2); tput >= capsTput {
		t.Errorf("ODRP-Default throughput %v >= CAPSys %v", tput, capsTput)
	}
	capsTime := cellFloat(t, r, capsRow, 5)
	worst := 0.0
	for _, name := range []string{"ODRP-Default", "ODRP-Weighted", "ODRP-Latency"} {
		if v := cellFloat(t, r, byName[name], 5); v > worst {
			worst = v
		}
	}
	if worst < 50*capsTime {
		t.Errorf("worst ODRP decision time %vs not >> CAPSys %vs", worst, capsTime)
	}
	// ODRP-Latency buys performance with more slots than ODRP-Default.
	if cellFloat(t, r, byName["ODRP-Latency"], 4) <= cellFloat(t, r, defRow, 4) {
		t.Error("ODRP-Latency did not use more slots than ODRP-Default")
	}
}

// TAB4: CAPS meets every step's target without over-provisioning; at least
// one baseline fails at least one step.
func TestTab4Shape(t *testing.T) {
	r := run(t, "tab4")
	fails := map[string]int{}
	for i := range r.Rows {
		s := r.Rows[i][0]
		met := r.Rows[i][4] == "yes"
		over := r.Rows[i][5] == "yes"
		if !met || over {
			fails[s]++
		}
	}
	if fails["caps"] != 0 {
		t.Errorf("caps failed %d steps", fails["caps"])
	}
	if fails["default"]+fails["evenly"] == 0 {
		t.Error("both baselines passed every step; expected at least one failure")
	}
}

// FIG9: CAPS needs no more scaling actions than default and is at target at
// least as often.
func TestFig9Shape(t *testing.T) {
	r := run(t, "fig9")
	stats := map[string][2]float64{} // actions, at-target%
	for _, n := range r.Notes {
		fields := strings.Fields(n)
		if len(fields) < 6 || !strings.HasSuffix(fields[0], ":") {
			continue
		}
		name := strings.TrimSuffix(fields[0], ":")
		if name != "caps" && name != "default" && name != "evenly" {
			continue
		}
		actions, err1 := strconv.ParseFloat(fields[1], 64)
		at, err2 := strconv.ParseFloat(strings.TrimSuffix(fields[5], "%"), 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable note %q", n)
		}
		stats[name] = [2]float64{actions, at}
	}
	caps, def := stats["caps"], stats["default"]
	if caps[0] > def[0] {
		t.Errorf("caps scaling actions %v > default %v", caps[0], def[0])
	}
	if caps[1] < def[1] {
		t.Errorf("caps at-target %v%% < default %v%%", caps[1], def[1])
	}
}

// FIG10a: the first satisfying plan is found within 100ms even at 256
// tasks, the paper's headline for online practicality.
func TestFig10aShape(t *testing.T) {
	r := run(t, "fig10a")
	limit := 100.0
	if raceEnabled {
		limit = 2000 // race instrumentation slows the search ~10x
	}
	for i := range r.Rows {
		ms := cellFloat(t, r, i, 3)
		if ms > limit {
			t.Errorf("row %v: search took %vms > %vms", r.Rows[i], ms, limit)
		}
		if r.Rows[i][5] != "yes" {
			t.Errorf("row %v: infeasible", r.Rows[i])
		}
	}
}

// FIG10b: auto-tuning completes for all sizes and runtime grows with task
// count within each worker group.
func TestFig10bShape(t *testing.T) {
	r := run(t, "fig10b")
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		if strings.Contains(r.Rows[i][3], "timeout") && !raceEnabled {
			// Race instrumentation slows the search ~10x, so the largest
			// configurations can legitimately exhaust the 30s auto-tune
			// budget; ErrAutoTuneTimeout is an expected outcome there.
			t.Errorf("row %v timed out", r.Rows[i])
		}
	}
	// Largest configuration costs more than the smallest within the
	// 8-worker group.
	small := cellFloat(t, r, 0, 3)
	large := cellFloat(t, r, 4, 3)
	if large <= small {
		t.Errorf("auto-tune runtime not growing: %v <= %v", large, small)
	}
}

func TestScaleQuery(t *testing.T) {
	spec, err := scaleQuery(nexmark.Q2Join(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Graph.TotalTasks(); got != 64 {
		t.Errorf("scaled tasks = %d, want 64", got)
	}
	// Rates scale with the factor.
	if spec.SourceRates["src-person"] <= nexmark.Q2Join().SourceRates["src-person"] {
		t.Error("rates not scaled up")
	}
	if _, err := scaleQuery(nexmark.Q2Join(), 2); err == nil {
		t.Error("scaling below one task per operator accepted")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "X", Title: "test", Header: []string{"a", "bb"}}
	r.AddRow("v", 3.14159)
	r.AddRow(12, true)
	r.AddRow(int64(5), false)
	r.Notes = append(r.Notes, "a note")
	s := r.String()
	for _, want := range []string{"== X: test ==", "a note", "3.14", "yes", "no"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

// EXT-SKEW: the skew-aware plan matches the unaware plan's best luck and
// beats its worst luck.
func TestExtSkewShape(t *testing.T) {
	r := run(t, "ext-skew")
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	aware := cellFloat(t, r, 0, 1)
	best := cellFloat(t, r, 1, 1)
	worst := cellFloat(t, r, 2, 1)
	if aware < best {
		t.Errorf("skew-aware %v below unaware best-luck %v", aware, best)
	}
	if aware <= worst {
		t.Errorf("skew-aware %v does not beat unaware worst-luck %v", aware, worst)
	}
}

// EXT-CHAIN: chaining shrinks tasks, plans and nodes.
func TestExtChainShape(t *testing.T) {
	r := run(t, "ext-chain")
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for col := 1; col <= 4; col++ {
		un := cellFloat(t, r, 0, col)
		ch := cellFloat(t, r, 1, col)
		if ch >= un {
			t.Errorf("column %s not reduced by chaining: %v >= %v", r.Header[col], ch, un)
		}
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{ID: "X", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("v,1", 2)
	r.Notes = append(r.Notes, "note")
	out := r.CSV()
	for _, want := range []string{"a,b", `"v,1",2`, "# note"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

// EXT-WAN: delay-aware selection achieves strictly lower path delay without
// worsening any resource-cost dimension beyond the Pareto front.
func TestExtWANShape(t *testing.T) {
	r := run(t, "ext-wan")
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	raw := cellFloat(t, r, 0, 1)
	sel := cellFloat(t, r, 1, 1)
	hier := cellFloat(t, r, 2, 1)
	if sel > raw {
		t.Errorf("delay-aware selection %vms worse than oblivious %vms", sel, raw)
	}
	if hier > 5 { // the query fits in one site: ~1-3ms achievable
		t.Errorf("hierarchical path delay %vms; expected intra-site", hier)
	}
}
