package experiments

import (
	"context"
	"fmt"
	"time"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/telemetry"
)

// SearchPerf measures the incremental cost evaluator and warm start against
// their ablations. For each query/mode it runs the same search with the
// evaluator variants (scratch recomputation, incremental without memo,
// incremental with memo) and — in first-feasible mode — cold versus seeded
// with the previous plan, reporting effort counters and wall-clock.
//
// This is the `go test -bench BenchmarkSearch ./internal/caps` battery in
// experiment form: the benchmark writes BENCH_caps.json, this prints the
// comparison as a table and also exercises the telemetry export path the
// controller uses in production.
func SearchPerf(ctx context.Context) (*Report, error) {
	r := &Report{
		ID:     "SEARCHPERF",
		Title:  "CAPS search effort: scratch vs incremental evaluation, cold vs warm start",
		Header: []string{"query", "tasks", "workers", "mode", "variant", "time(ms)", "nodes", "cost_evals", "memo_prunes", "budget_prunes", "plans"},
	}
	hub := telemetry.New()

	type searchCase struct {
		query string
		phys  *dataflow.PhysicalGraph
		c     *cluster.Cluster
		u     *costmodel.Usage
	}
	alpha := costmodel.Vector{CPU: 0.15, IO: 0.25, Net: 0.8}

	q3 := nexmark.Q3Inf()
	q3c, err := cluster.Homogeneous(8, 4, 4.0, 200e6, 1.25e9)
	if err != nil {
		return nil, err
	}
	q3phys, err := dataflow.Expand(q3.Graph)
	if err != nil {
		return nil, err
	}
	q3u, err := usageOf(q3)
	if err != nil {
		return nil, err
	}
	cases := []searchCase{{"q3inf", q3phys, q3c, q3u}}

	// Doubled Q3Inf on a 32-worker cluster: the exhaustive search where the
	// per-node evaluation cost dominates and the incremental evaluator's
	// advantage shows in wall-clock, not just counters.
	x2 := nexmark.Q3Inf().Scaled(2)
	x2per := make(map[dataflow.OperatorID]int)
	for _, op := range x2.Graph.Operators() {
		x2per[op.ID] = op.Parallelism * 2
	}
	x2g, err := x2.Graph.Rescale(x2per)
	if err != nil {
		return nil, err
	}
	x2c, err := cluster.Homogeneous(32, 4, 4.0, 200e6, 1.25e9)
	if err != nil {
		return nil, err
	}
	x2phys, err := dataflow.Expand(x2g)
	if err != nil {
		return nil, err
	}
	x2rates, err := dataflow.PropagateRates(x2g, x2.SourceRates)
	if err != nil {
		return nil, err
	}
	cases = append(cases, searchCase{"q3inf-x2", x2phys, x2c, costmodel.FromRates(x2g, x2rates)})

	base := nexmark.Q2Join()
	for _, tasks := range []int{32, 64} {
		workers := tasks / 8
		slots := (tasks + workers - 1) / workers
		c, err := cluster.Homogeneous(workers, slots, 4.0*float64(slots)/4, 200e6*float64(slots)/4, 1.25e9)
		if err != nil {
			return nil, err
		}
		spec, err := scaleQuery(base, tasks)
		if err != nil {
			return nil, err
		}
		phys, err := dataflow.Expand(spec.Graph)
		if err != nil {
			return nil, err
		}
		u, err := usageOf(spec)
		if err != nil {
			return nil, err
		}
		cases = append(cases, searchCase{fmt.Sprintf("q2join-%d", tasks), phys, c, u})
	}

	run := func(sc searchCase, mode caps.Mode, variant string, opts caps.Options) (*caps.Result, error) {
		opts.Alpha = alpha
		opts.Mode = mode
		opts.Reorder = true
		opts.Timeout = 30 * time.Second
		opts.Telemetry = hub
		start := time.Now() //capslint:allow determinism wall-clock effort measurement for the report, not part of plan selection
		res, err := caps.Search(ctx, sc.phys, sc.c, sc.u, opts)
		if err != nil {
			return nil, err
		}
		modeName := "exhaustive"
		if mode == caps.FirstFeasible {
			modeName = "first-feasible"
		}
		r.AddRow(sc.query, sc.phys.NumTasks(), sc.c.NumWorkers(), modeName, variant,
			float64(time.Since(start).Microseconds())/1000, //capslint:allow determinism wall-clock effort measurement for the report, not part of plan selection
			res.Stats.Nodes, res.Stats.CostEvals, res.Stats.MemoPrunes, res.Stats.BudgetPrunes, res.Stats.Plans)
		return res, nil
	}

	var evalRatio, warmRatio float64
	for _, sc := range cases {
		// Evaluator ablation on the exhaustive search — the Q3Inf instances
		// only; the scaled q2join instances are first-feasible territory (the
		// paper runs them online, and exhaustively enumerating 64 tasks with
		// 8-way operators is hours).
		if sc.query == "q3inf" || sc.query == "q3inf-x2" {
			scratch, err := run(sc, caps.Exhaustive, "scratch", caps.Options{ScratchEval: true})
			if err != nil {
				return nil, err
			}
			if _, err := run(sc, caps.Exhaustive, "no-memo", caps.Options{DisableMemo: true}); err != nil {
				return nil, err
			}
			incr, err := run(sc, caps.Exhaustive, "incremental", caps.Options{})
			if err != nil {
				return nil, err
			}
			if sc.query == "q3inf-x2" && incr.Stats.CostEvals > 0 {
				evalRatio = float64(scratch.Stats.CostEvals) / float64(incr.Stats.CostEvals)
			}
		}
		// Warm start on the online (first-feasible) decision: seed with the
		// plan a cold search just produced, the controller's steady state.
		cold, err := run(sc, caps.FirstFeasible, "cold", caps.Options{})
		if err != nil {
			return nil, err
		}
		warm, err := run(sc, caps.FirstFeasible, "warm", caps.Options{Warm: cold.Plan})
		if err != nil {
			return nil, err
		}
		if sc.query == "q3inf" && warm.Stats.Nodes > 0 {
			warmRatio = float64(cold.Stats.Nodes) / float64(warm.Stats.Nodes)
		}
	}

	snap := hub.Registry().Snapshot()
	r.Notes = append(r.Notes,
		fmt.Sprintf("scratch/incremental cost evaluations on q3inf-x2 exhaustive: %.2fx (>=2x expected)", evalRatio),
		fmt.Sprintf("cold/warm nodes on q3inf first-feasible: %.2fx (>1x expected: warm replays the still-feasible previous plan)", warmRatio),
		fmt.Sprintf("telemetry totals across all runs: runs=%.0f nodes=%.0f cost_evals=%.0f memo_prunes=%.0f budget_prunes=%.0f warm_runs=%.0f",
			snap["caps.search.runs"], snap["caps.search.nodes"], snap["caps.search.cost_evals"],
			snap["caps.search.memo_prunes"], snap["caps.search.budget_prunes"], snap["caps.search.warm_runs"]),
	)
	return r, nil
}
