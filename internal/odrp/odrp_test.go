package odrp

import (
	"context"
	"testing"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/simulator"
)

// odrpCluster mirrors the paper's §6.3 setup: 4 c5d.4xlarge workers with 8
// slots each.
func odrpCluster(t testing.TB) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Homogeneous(4, 8, 8.0, 400e6, 1.25e9)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func solve(t testing.TB, w Weights, maxPar int, budget int64) *Result {
	t.Helper()
	res, err := Solve(context.Background(), nexmark.Q3Inf(), odrpCluster(t), Options{
		Weights:        w,
		MaxParallelism: maxPar,
		MaxNodes:       budget,
		Timeout:        30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustPhys(t testing.TB, res *Result) *dataflow.PhysicalGraph {
	t.Helper()
	pg, err := dataflow.Expand(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestSolveProducesValidPlan(t *testing.T) {
	res := solve(t, DefaultWeights(), 4, 2_000_000)
	c := odrpCluster(t)
	pg := mustPhys(t, res)
	slots, _ := c.SlotsPerWorker()
	if err := res.Plan.Validate(pg, c.NumWorkers(), slots); err != nil {
		t.Errorf("invalid plan: %v", err)
	}
	if res.Objective < 0 || res.Nodes == 0 {
		t.Errorf("suspicious result: obj=%v nodes=%d", res.Objective, res.Nodes)
	}
	if res.SlotsUsed < res.Graph.NumOperators() {
		t.Errorf("slots used %d below one per operator", res.SlotsUsed)
	}
	if res.SortedParallelism() == "" {
		t.Error("empty parallelism rendering")
	}
}

func TestLatencyWeightsUseMoreResources(t *testing.T) {
	def := solve(t, DefaultWeights(), 4, 2_000_000)
	lat := solve(t, LatencyWeights(), 4, 2_000_000)
	if lat.SlotsUsed <= def.SlotsUsed {
		t.Errorf("latency config slots %d <= default %d (latency should buy parallelism)",
			lat.SlotsUsed, def.SlotsUsed)
	}
}

func TestDefaultUnderProvisions(t *testing.T) {
	spec := nexmark.Q3Inf()
	c := odrpCluster(t)
	def := solve(t, DefaultWeights(), 4, 2_000_000)
	sim, err := simulator.Evaluate([]simulator.QueryDeployment{{
		Name: spec.Name, Phys: mustPhys(t, def), Plan: def.Plan, SourceRates: spec.SourceRates,
	}}, c, simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := sim.Queries[spec.Name]
	if q.Backpressure < 0.1 {
		t.Errorf("ODRP-Default backpressure %v; expected under-provisioning (no rate-sustain objective)", q.Backpressure)
	}
}

func TestSolverBudgetAndTimeout(t *testing.T) {
	res := solve(t, DefaultWeights(), 6, 5_000)
	if !res.TimedOut {
		t.Skip("search finished within tiny budget; nothing to assert")
	}
	if res.Plan == nil {
		t.Error("budgeted solve returned no incumbent")
	}
}

func TestSolveValidation(t *testing.T) {
	c := odrpCluster(t)
	if _, err := Solve(context.Background(), nexmark.Q3Inf(), c, Options{Weights: Weights{}}); err == nil {
		t.Error("zero weights accepted")
	}
	if _, err := Solve(context.Background(), nexmark.Q3Inf(), c, Options{
		Weights: Weights{ResponseTime: -1, NetworkUsage: 2}}); err == nil {
		t.Error("negative weight accepted")
	}
	het, err := cluster.New([]cluster.Worker{
		{ID: "a", Slots: 8, CPU: 8, IOBandwidth: 1, NetBandwidth: 1},
		{ID: "b", Slots: 4, CPU: 8, IOBandwidth: 1, NetBandwidth: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(context.Background(), nexmark.Q3Inf(), het, Options{Weights: DefaultWeights()}); err == nil {
		t.Error("heterogeneous cluster accepted")
	}
}

// The solver must be deterministic: same inputs, same plan.
func TestSolveDeterministic(t *testing.T) {
	a := solve(t, WeightedWeights(), 4, 500_000)
	b := solve(t, WeightedWeights(), 4, 500_000)
	if a.Objective != b.Objective || !a.Plan.Equal(b.Plan) {
		t.Error("solver not deterministic")
	}
}
