// Package odrp implements the Optimal DSP Replication and Placement (ODRP)
// baseline of Cardellini et al. (SIGMETRICS PER 2017), which the CAPSys
// paper compares against in §6.3.
//
// ODRP jointly decides each operator's parallelism (replication) and the
// placement of its replicas by minimizing a weighted multi-objective
// function over response time, network usage, resource cost and
// availability. The original work solves an ILP with an exhaustive solver;
// this implementation is an exact branch-and-bound over the same decision
// space with monotone partial objectives for admissible pruning. Like the
// original, it explores a combinatorially large space — the CAPSys paper's
// point is precisely that ODRP's decision time is orders of magnitude larger
// than CAPS's — so Solve supports a node budget and timeout and returns the
// best incumbent when cut short.
//
// Faithful to the original formulation (and to the paper's critique), the
// objective has no "sustain the input rate" term: configurations that
// under-provision the query are perfectly feasible, and the Default weight
// profile tends to select them.
package odrp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"capsys/internal/clock"
	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
)

// Weights is the multi-objective weight vector. All weights must be
// non-negative; they are normalized internally.
type Weights struct {
	// ResponseTime weights the end-to-end response time objective.
	ResponseTime float64
	// NetworkUsage weights the cross-worker traffic objective.
	NetworkUsage float64
	// ResourceCost weights the number of occupied slots.
	ResourceCost float64
	// Availability weights the number of distinct workers used (the
	// availability product a^k turns into a penalty on k under logs).
	Availability float64
}

// DefaultWeights assigns equal weight to all objectives (the paper's
// ODRP-Default configuration).
func DefaultWeights() Weights {
	return Weights{ResponseTime: 0.25, NetworkUsage: 0.25, ResourceCost: 0.25, Availability: 0.25}
}

// WeightedWeights is the paper's hand-tuned ODRP-Weighted configuration,
// emphasizing response time (which drives parallelism up) while still
// charging for resources.
func WeightedWeights() Weights {
	return Weights{ResponseTime: 0.6, NetworkUsage: 0.15, ResourceCost: 0.2, Availability: 0.05}
}

// LatencyWeights is the paper's ODRP-Latency configuration: only the
// response-time objective is enabled.
func LatencyWeights() Weights {
	return Weights{ResponseTime: 1}
}

// Options configures the solver.
type Options struct {
	Weights Weights
	// MaxParallelism caps per-operator replication (0 = slots per worker).
	MaxParallelism int
	// MaxNodes bounds the number of branch-and-bound nodes (0 = unlimited).
	MaxNodes int64
	// Timeout bounds the solve wall-clock time (0 = unlimited).
	Timeout time.Duration
	// NetworkDelaySec is the per-hop network delay used in the response
	// time term (the model's uniform link latency).
	NetworkDelaySec float64
	// MaxUtilization caps queueing utilization in the latency term.
	MaxUtilization float64
	// Now is the time source for the deadline check and the Elapsed stat
	// (nil = system clock). The solver's decisions are deterministic given
	// the same inputs and budget; injecting a fixed clock makes the timing
	// fields reproducible too.
	Now clock.Clock
}

// Result is the solver outcome.
type Result struct {
	// Parallelism is the chosen replication per operator.
	Parallelism map[dataflow.OperatorID]int
	// Plan places every replica (of the rescaled graph) on a worker.
	Plan *dataflow.Plan
	// Graph is the rescaled logical graph matching Plan.
	Graph *dataflow.LogicalGraph
	// Objective is the achieved weighted objective value.
	Objective float64
	// SlotsUsed is the total number of occupied slots.
	SlotsUsed int
	// Stats reports solver effort.
	Nodes    int64
	Elapsed  time.Duration
	TimedOut bool
}

type opModel struct {
	id       dataflow.OperatorID
	execTime float64 // seconds per record (inverse of true processing rate)
	inRate   float64 // offered records/s at the target rate
	outBytes float64 // bytes emitted per input record
	upstream []int
}

type solver struct {
	ops        []opModel
	numWorkers int
	slots      int
	maxPar     int
	w          Weights
	delay      float64
	maxUtil    float64

	// normalization bounds
	rMin, rMax float64
	nMax       float64
	cMin, cMax float64

	now      clock.Clock
	deadline time.Time
	maxNodes int64
	nodes    int64
	timedOut bool

	// incumbent
	best       float64
	bestPar    []int
	bestCounts [][]int

	// search state
	par    []int
	counts [][]int
	free   []int
	dist   []float64 // longest-path completion time per op index
}

// Solve runs ODRP for the given query spec on the cluster.
func Solve(ctx context.Context, spec nexmark.QuerySpec, c *cluster.Cluster, opts Options) (*Result, error) {
	slots, err := c.SlotsPerWorker()
	if err != nil {
		return nil, fmt.Errorf("odrp: %w", err)
	}
	wsum := opts.Weights.ResponseTime + opts.Weights.NetworkUsage + opts.Weights.ResourceCost + opts.Weights.Availability
	if wsum <= 0 {
		return nil, fmt.Errorf("odrp: all weights zero")
	}
	if opts.Weights.ResponseTime < 0 || opts.Weights.NetworkUsage < 0 ||
		opts.Weights.ResourceCost < 0 || opts.Weights.Availability < 0 {
		return nil, fmt.Errorf("odrp: negative weight")
	}
	w := Weights{
		ResponseTime: opts.Weights.ResponseTime / wsum,
		NetworkUsage: opts.Weights.NetworkUsage / wsum,
		ResourceCost: opts.Weights.ResourceCost / wsum,
		Availability: opts.Weights.Availability / wsum,
	}
	maxPar := opts.MaxParallelism
	if maxPar <= 0 {
		maxPar = slots
	}
	maxUtil := opts.MaxUtilization
	if maxUtil <= 0 || maxUtil >= 1 {
		maxUtil = 0.99
	}
	delay := opts.NetworkDelaySec
	if delay <= 0 {
		delay = 0.001
	}

	g := spec.Graph
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rates, err := dataflow.PropagateRates(g, spec.SourceRates)
	if err != nil {
		return nil, err
	}
	layerOf := make(map[dataflow.OperatorID]int, len(order))
	ops := make([]opModel, len(order))
	for i, id := range order {
		layerOf[id] = i
		op := g.Operator(id)
		ops[i] = opModel{
			id:       id,
			execTime: op.Cost.CPU,
			inRate:   rates.In[id],
			outBytes: op.Cost.Net,
		}
		for _, u := range g.Upstream(id) {
			ops[i].upstream = append(ops[i].upstream, layerOf[u])
		}
	}

	s := &solver{
		ops:        ops,
		numWorkers: c.NumWorkers(),
		slots:      slots,
		maxPar:     maxPar,
		w:          w,
		delay:      delay,
		maxUtil:    maxUtil,
		now:        opts.Now.OrSystem(),
		maxNodes:   opts.MaxNodes,
		best:       math.Inf(1),
		par:        make([]int, len(ops)),
		counts:     make([][]int, len(ops)),
		free:       make([]int, c.NumWorkers()),
		dist:       make([]float64, len(ops)),
	}
	for i := range s.counts {
		s.counts[i] = make([]int, c.NumWorkers())
	}
	for i := range s.free {
		s.free[i] = slots
	}
	s.computeBounds()
	if opts.Timeout > 0 {
		s.deadline = s.now().Add(opts.Timeout)
	}

	start := s.now()
	s.branch(ctx, 0, 0, 0)
	elapsed := s.now().Sub(start)

	if s.bestPar == nil {
		return nil, fmt.Errorf("odrp: no feasible configuration (cluster too small?)")
	}
	parMap := make(map[dataflow.OperatorID]int, len(ops))
	for i, p := range s.bestPar {
		parMap[ops[i].id] = p
	}
	rg, err := g.Rescale(parMap)
	if err != nil {
		return nil, err
	}
	plan := dataflow.NewPlan()
	slotsUsed := 0
	for i, op := range ops {
		idx := 0
		for wk := 0; wk < s.numWorkers; wk++ {
			for k := 0; k < s.bestCounts[i][wk]; k++ {
				plan.Assign(dataflow.TaskID{Op: op.id, Index: idx}, wk)
				idx++
			}
		}
		slotsUsed += s.bestPar[i]
	}
	return &Result{
		Parallelism: parMap,
		Plan:        plan,
		Graph:       rg,
		Objective:   s.best,
		SlotsUsed:   slotsUsed,
		Nodes:       s.nodes,
		Elapsed:     elapsed,
		TimedOut:    s.timedOut,
	}, nil
}

// computeBounds derives normalization bounds for the objective terms.
func (s *solver) computeBounds() {
	// Response time: best case every operator at max parallelism with no
	// queueing and no network hops; worst case single replica at capped
	// utilization plus a network hop per stage.
	for i := range s.ops {
		s.rMin += s.ops[i].execTime
		s.rMax += s.opLatency(i, 1) + s.delay
	}
	// Network usage: worst case all traffic crosses workers.
	for _, op := range s.ops {
		s.nMax += op.inRate * op.outBytes
	}
	if s.nMax == 0 {
		s.nMax = 1
	}
	s.cMin = float64(len(s.ops))
	s.cMax = float64(len(s.ops) * s.maxPar)
	if s.cMax == s.cMin {
		s.cMax = s.cMin + 1
	}
	if s.rMax <= s.rMin {
		s.rMax = s.rMin + 1e-9
	}
}

// opLatency is the queueing-aware per-record latency of one operator with k
// replicas: exec / (1 - rho), rho = inRate/k * exec per replica, capped.
func (s *solver) opLatency(i, k int) float64 {
	op := s.ops[i]
	if op.execTime == 0 {
		return 0
	}
	rho := op.inRate / float64(k) * op.execTime
	if rho > s.maxUtil {
		rho = s.maxUtil
	}
	return op.execTime / (1 - rho)
}

// objective assembles the weighted normalized objective from raw terms.
func (s *solver) objective(resp, netBytes float64, slotsUsed, workersUsed int) float64 {
	r := (resp - s.rMin) / (s.rMax - s.rMin)
	n := netBytes / s.nMax
	cst := (float64(slotsUsed) - s.cMin) / (s.cMax - s.cMin)
	a := 0.0
	if s.numWorkers > 1 {
		a = float64(workersUsed-1) / float64(s.numWorkers-1)
	}
	return s.w.ResponseTime*r + s.w.NetworkUsage*n + s.w.ResourceCost*cst + s.w.Availability*a
}

func (s *solver) stop(ctx context.Context) bool {
	if s.timedOut {
		return true
	}
	if s.maxNodes > 0 && s.nodes >= s.maxNodes {
		s.timedOut = true
		return true
	}
	if s.nodes&0x3FF == 0 {
		if !s.deadline.IsZero() && s.now().After(s.deadline) {
			s.timedOut = true
			return true
		}
		select {
		case <-ctx.Done():
			s.timedOut = true
			return true
		default:
		}
	}
	return false
}

// branch decides operator i's parallelism and placement. Accumulated raw
// terms: netBytes, slotsUsed; workersUsed derived from free[].
func (s *solver) branch(ctx context.Context, i int, netBytes float64, slotsUsed int) {
	if s.stop(ctx) {
		return
	}
	if i == len(s.ops) {
		resp := 0.0
		for _, d := range s.dist {
			if d > resp {
				resp = d
			}
		}
		obj := s.objective(resp, netBytes, slotsUsed, s.workersUsed())
		if obj < s.best {
			s.best = obj
			s.bestPar = append([]int(nil), s.par...)
			s.bestCounts = make([][]int, len(s.counts))
			for j := range s.counts {
				s.bestCounts[j] = append([]int(nil), s.counts[j]...)
			}
		}
		return
	}
	freeTotal := 0
	for _, f := range s.free {
		freeTotal += f
	}
	for k := 1; k <= s.maxPar && k <= freeTotal; k++ {
		s.par[i] = k
		s.placeOp(ctx, i, 0, k, -1, netBytes, slotsUsed+k)
		s.par[i] = 0
		if s.stop(ctx) {
			return
		}
	}
}

// placeOp distributes the k replicas of operator i over workers starting at
// index w, with canonical symmetry breaking across equal-history workers.
func (s *solver) placeOp(ctx context.Context, i, w, remaining, prevCount int, netBytes float64, slotsUsed int) {
	if remaining == 0 {
		s.finishOp(ctx, i, netBytes, slotsUsed)
		return
	}
	if w == s.numWorkers || s.stop(ctx) {
		return
	}
	capAfter := 0
	for j := w + 1; j < s.numWorkers; j++ {
		capAfter += s.free[j]
	}
	lo := remaining - capAfter
	if lo < 0 {
		lo = 0
	}
	hi := s.free[w]
	if remaining < hi {
		hi = remaining
	}
	if prevCount >= 0 && s.equalHistory(i, w) && prevCount < hi {
		hi = prevCount
	}
	for c := lo; c <= hi; c++ {
		s.nodes++
		s.counts[i][w] += c
		s.free[w] -= c
		s.placeOp(ctx, i, w+1, remaining-c, c, netBytes, slotsUsed)
		s.counts[i][w] -= c
		s.free[w] += c
		if s.stop(ctx) {
			return
		}
	}
}

func (s *solver) equalHistory(layer, w int) bool {
	if w == 0 {
		return false
	}
	for l := 0; l < layer; l++ {
		if s.counts[l][w] != s.counts[l][w-1] {
			return false
		}
	}
	return true
}

// finishOp computes operator i's contribution to the response time and
// network terms, applies admissible pruning, and recurses.
func (s *solver) finishOp(ctx context.Context, i int, netBytes float64, slotsUsed int) {
	op := s.ops[i]
	k := s.par[i]

	// Network: traffic from upstream operators to this one; all-to-all
	// partitioning sends each upstream task's output uniformly to all k
	// replicas, so the remote fraction is the fraction of replica pairs on
	// different workers.
	addBytes := 0.0
	hop := false
	for _, ui := range op.upstream {
		uop := s.ops[ui]
		traffic := uop.inRate * uop.outBytes
		if traffic == 0 {
			continue
		}
		remote := 0.0
		for uw := 0; uw < s.numWorkers; uw++ {
			if s.counts[ui][uw] == 0 {
				continue
			}
			fracHere := float64(s.counts[i][uw]) / float64(k)
			remote += float64(s.counts[ui][uw]) / float64(s.par[ui]) * (1 - fracHere)
		}
		if remote > 1e-12 {
			hop = true
		}
		addBytes += traffic * remote
	}

	// Longest-path response time through this operator.
	upDist := 0.0
	for _, ui := range op.upstream {
		if s.dist[ui] > upDist {
			upDist = s.dist[ui]
		}
	}
	lat := s.opLatency(i, k)
	if hop {
		lat += s.delay
	}
	oldDist := s.dist[i]
	s.dist[i] = upDist + lat

	// Admissible bound: remaining operators add at least their minimal
	// latency (at max parallelism, no hops), at least one slot each, and no
	// network bytes.
	resp := 0.0
	for j := 0; j <= i; j++ {
		if s.dist[j] > resp {
			resp = s.dist[j]
		}
	}
	minFuture := 0
	respFuture := 0.0
	for j := i + 1; j < len(s.ops); j++ {
		minFuture++
		respFuture += s.ops[j].execTime
	}
	lb := s.objective(resp+respFuture, netBytes+addBytes, slotsUsed+minFuture, s.workersUsed())
	if lb < s.best {
		s.branch(ctx, i+1, netBytes+addBytes, slotsUsed)
	}
	s.dist[i] = oldDist
}

func (s *solver) workersUsed() int {
	n := 0
	for w := 0; w < s.numWorkers; w++ {
		if s.free[w] < s.slots {
			n++
		}
	}
	return n
}

// SortedParallelism renders the parallelism map deterministically for
// reports.
func (r *Result) SortedParallelism() string {
	ids := make([]string, 0, len(r.Parallelism))
	for id := range r.Parallelism {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", id, r.Parallelism[dataflow.OperatorID(id)])
	}
	return out
}
