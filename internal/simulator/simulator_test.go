package simulator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
)

// windowQuery builds a Q1-sliding-like query: source(2) -> map(2) ->
// window(8, IO+CPU heavy) -> sink(2), all-to-all.
func windowQuery(t testing.TB) *dataflow.LogicalGraph {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	ops := []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 2e-5, Net: 120}},
		{ID: "map", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 4e-5, Net: 120}},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 8, Selectivity: 0.2,
			Cost: dataflow.UnitCost{CPU: 9e-4, IO: 2200, Net: 60}},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2, Selectivity: 0,
			Cost: dataflow.UnitCost{CPU: 1e-6}},
	}
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{{From: "src", To: "map"}, {From: "map", To: "win"}, {From: "win", To: "sink"}} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func testCluster(t testing.TB) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Homogeneous(4, 4, 2.0, 8e6, 5e6)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// spreadPlan balances each operator's tasks round-robin over workers,
// assigning operator-by-operator so windows end up 2 per worker.
func spreadPlan(p *dataflow.PhysicalGraph, numWorkers int) *dataflow.Plan {
	pl := dataflow.NewPlan()
	counts := make([]int, numWorkers)
	for _, op := range p.Logical.Operators() {
		for _, task := range p.TasksOf(op.ID) {
			best := 0
			for w := 1; w < numWorkers; w++ {
				if counts[w] < counts[best] {
					best = w
				}
			}
			pl.Assign(task, best)
			counts[best]++
		}
	}
	return pl
}

// packedWindowPlan co-locates as many window tasks as possible on the first
// workers (high contention).
func packedWindowPlan(p *dataflow.PhysicalGraph, slots int) *dataflow.Plan {
	pl := dataflow.NewPlan()
	// Windows first, packed.
	next := 0
	free := map[int]int{}
	place := func(task dataflow.TaskID) {
		for free[next] >= slots {
			next++
		}
		pl.Assign(task, next)
		free[next]++
	}
	for _, task := range p.TasksOf("win") {
		place(task)
	}
	for _, op := range p.Logical.Operators() {
		if op.ID == "win" {
			continue
		}
		for _, task := range p.TasksOf(op.ID) {
			place(task)
		}
	}
	return pl
}

func deploy(t testing.TB, g *dataflow.LogicalGraph, pl *dataflow.Plan, rate float64) QueryDeployment {
	t.Helper()
	p, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	return QueryDeployment{
		Name:        "q",
		Phys:        p,
		Plan:        pl,
		SourceRates: map[dataflow.OperatorID]float64{"src": rate},
	}
}

func TestEvaluateMeetsTargetWhenUnderloaded(t *testing.T) {
	g := windowQuery(t)
	p, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t)
	d := deploy(t, g, spreadPlan(p, c.NumWorkers()), 100) // tiny load
	res, err := Evaluate([]QueryDeployment{d}, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := res.Queries["q"]
	if q.Admission != 1 || q.Backpressure != 0 {
		t.Errorf("underloaded query throttled: %+v", q)
	}
	if q.Throughput != 100 {
		t.Errorf("throughput = %v, want 100", q.Throughput)
	}
	if q.BottleneckWorker != -1 {
		t.Errorf("bottleneck = %d, want -1", q.BottleneckWorker)
	}
	if q.LatencySec <= 0 {
		t.Error("latency should be positive")
	}
}

func TestEvaluateThrottlesWhenOverloaded(t *testing.T) {
	g := windowQuery(t)
	p, _ := dataflow.Expand(g)
	c := testCluster(t)
	d := deploy(t, g, spreadPlan(p, c.NumWorkers()), 1e7) // absurd load
	res, err := Evaluate([]QueryDeployment{d}, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := res.Queries["q"]
	if q.Admission >= 1 {
		t.Errorf("overloaded query not throttled: %+v", q)
	}
	if q.Backpressure <= 0.5 {
		t.Errorf("backpressure = %v, want > 0.5", q.Backpressure)
	}
	if q.BottleneckWorker < 0 {
		t.Error("no bottleneck reported for throttled query")
	}
	// No worker may exceed effective capacity post-admission.
	for w, u := range res.WorkerUtilization {
		if u.CPU > 1+1e-6 || u.IO > 1+1e-6 || u.Net > 1+1e-6 {
			t.Errorf("worker %d over capacity: %v", w, u)
		}
	}
}

// The paper's central observation: spreading the IO/CPU-heavy window tasks
// outperforms packing them, for the same query, rate and cluster.
func TestSpreadBeatsPacked(t *testing.T) {
	g := windowQuery(t)
	p, _ := dataflow.Expand(g)
	c := testCluster(t)
	slots, _ := c.SlotsPerWorker()

	// Pick a rate that saturates the packed plan but not the spread one.
	rate := 7000.0
	spread := deploy(t, g, spreadPlan(p, c.NumWorkers()), rate)
	packed := deploy(t, g, packedWindowPlan(p, slots), rate)

	rs, err := Evaluate([]QueryDeployment{spread}, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Evaluate([]QueryDeployment{packed}, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs, qp := rs.Queries["q"], rp.Queries["q"]
	if qs.Throughput <= qp.Throughput {
		t.Errorf("spread throughput %v <= packed %v", qs.Throughput, qp.Throughput)
	}
	if qs.Backpressure >= qp.Backpressure {
		t.Errorf("spread backpressure %v >= packed %v", qs.Backpressure, qp.Backpressure)
	}
}

// Contention inflates useful time and deflates DS2's true-rate estimate.
func TestContentionDegradesTrueRate(t *testing.T) {
	g := windowQuery(t)
	p, _ := dataflow.Expand(g)
	c := testCluster(t)
	slots, _ := c.SlotsPerWorker()
	rate := 7000.0

	rs, err := Evaluate([]QueryDeployment{deploy(t, g, spreadPlan(p, c.NumWorkers()), rate)}, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Evaluate([]QueryDeployment{deploy(t, g, packedWindowPlan(p, slots), rate)}, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	avgTrue := func(r *Result) float64 {
		sum, n := 0.0, 0
		for k, tm := range r.Tasks {
			if k.Task.Op == "win" {
				sum += tm.TrueProcessingRate
				n++
			}
		}
		return sum / float64(n)
	}
	if avgTrue(rp) >= avgTrue(rs) {
		t.Errorf("packed true rate %v >= spread %v (contention should deflate it)", avgTrue(rp), avgTrue(rs))
	}
	for k, tm := range rp.Tasks {
		if tm.Slowdown < 1 {
			t.Errorf("task %v slowdown %v < 1", k, tm.Slowdown)
		}
		if tm.UsefulFraction < 0 || tm.UsefulFraction > 1 {
			t.Errorf("task %v useful fraction %v outside [0,1]", k, tm.UsefulFraction)
		}
	}
}

// Multi-tenant max-min fairness: a query placed on uncontended workers keeps
// its target even when another query saturates its own workers.
func TestMultiTenantIsolation(t *testing.T) {
	g1 := windowQuery(t)
	g2 := windowQuery(t)
	c, err := cluster.Homogeneous(8, 4, 2.0, 8e6, 5e6)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := dataflow.Expand(g1)
	p2, _ := dataflow.Expand(g2)
	// q1 on workers 0-3, q2 on workers 4-7 (least-loaded within the range).
	rangePlan := func(p *dataflow.PhysicalGraph, lo, hi int) *dataflow.Plan {
		pl := dataflow.NewPlan()
		counts := make(map[int]int)
		for _, op := range p.Logical.Operators() {
			for _, task := range p.TasksOf(op.ID) {
				best := lo
				for w := lo; w < hi; w++ {
					if counts[w] < counts[best] {
						best = w
					}
				}
				pl.Assign(task, best)
				counts[best]++
			}
		}
		return pl
	}
	plan1 := rangePlan(p1, 0, 4)
	plan2 := rangePlan(p2, 4, 8)
	deps := []QueryDeployment{
		{Name: "light", Phys: p1, Plan: plan1, SourceRates: map[dataflow.OperatorID]float64{"src": 500}},
		{Name: "heavy", Phys: p2, Plan: plan2, SourceRates: map[dataflow.OperatorID]float64{"src": 1e7}},
	}
	res, err := Evaluate(deps, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries["light"].Admission != 1 {
		t.Errorf("isolated light query throttled: %+v", res.Queries["light"])
	}
	if res.Queries["heavy"].Admission >= 1 {
		t.Errorf("heavy query not throttled: %+v", res.Queries["heavy"])
	}
	if len(res.SortedQueryNames()) != 2 || res.SortedQueryNames()[0] != "heavy" {
		t.Errorf("SortedQueryNames = %v", res.SortedQueryNames())
	}
}

// Queries sharing a saturated worker are throttled together (max-min).
func TestMultiTenantSharedBottleneck(t *testing.T) {
	g1 := windowQuery(t)
	g2 := windowQuery(t)
	p1, _ := dataflow.Expand(g1)
	p2, _ := dataflow.Expand(g2)
	// Both queries spread over the same 4 workers, interleaved with an
	// offset; the shared cluster needs 28 slots so use 4 workers x 8 slots.
	mk := func(p *dataflow.PhysicalGraph, off int) *dataflow.Plan {
		pl := dataflow.NewPlan()
		i := 0
		for _, op := range p.Logical.Operators() {
			for _, task := range p.TasksOf(op.ID) {
				pl.Assign(task, (off+i)%4)
				i++
			}
		}
		return pl
	}
	deps := []QueryDeployment{
		{Name: "a", Phys: p1, Plan: mk(p1, 0), SourceRates: map[dataflow.OperatorID]float64{"src": 1e6}},
		{Name: "b", Phys: p2, Plan: mk(p2, 2), SourceRates: map[dataflow.OperatorID]float64{"src": 1e6}},
	}
	// 14 + 14 = 28 tasks on 16 slots: invalid. Use a bigger cluster.
	big, err := cluster.Homogeneous(4, 8, 2.0, 8e6, 5e6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(deps, big, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Queries["a"], res.Queries["b"]
	if a.Admission >= 1 || b.Admission >= 1 {
		t.Fatalf("both queries should be throttled: a=%v b=%v", a.Admission, b.Admission)
	}
	if math.Abs(a.Admission-b.Admission) > 0.25 {
		t.Errorf("symmetric queries throttled asymmetrically: a=%v b=%v", a.Admission, b.Admission)
	}
}

func TestEvaluateValidation(t *testing.T) {
	g := windowQuery(t)
	p, _ := dataflow.Expand(g)
	c := testCluster(t)
	good := deploy(t, g, spreadPlan(p, c.NumWorkers()), 100)

	if _, err := Evaluate(nil, c, DefaultConfig()); err == nil {
		t.Error("empty deployments accepted")
	}
	if _, err := Evaluate([]QueryDeployment{good}, c, Config{}); err == nil {
		t.Error("zero config accepted")
	}
	bad := good
	bad.Name = ""
	if _, err := Evaluate([]QueryDeployment{bad}, c, DefaultConfig()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := Evaluate([]QueryDeployment{good, good}, c, DefaultConfig()); err == nil {
		t.Error("duplicate names accepted")
	}
	noPlan := good
	noPlan.Name = "x"
	noPlan.Plan = dataflow.NewPlan()
	if _, err := Evaluate([]QueryDeployment{noPlan}, c, DefaultConfig()); err == nil {
		t.Error("incomplete plan accepted")
	}
	overW := good
	overW.Name = "y"
	overW.Plan = good.Plan.Clone()
	overW.Plan.Assign(dataflow.TaskID{Op: "win", Index: 0}, 99)
	if _, err := Evaluate([]QueryDeployment{overW}, c, DefaultConfig()); err == nil {
		t.Error("out-of-range worker accepted")
	}
	// Slot overflow: all tasks on worker 0 exceeds 4 slots.
	packed := dataflow.NewPlan()
	for _, task := range p.Tasks() {
		packed.Assign(task, 0)
	}
	overS := good
	overS.Name = "z"
	overS.Plan = packed
	if _, err := Evaluate([]QueryDeployment{overS}, c, DefaultConfig()); err == nil {
		t.Error("slot overflow accepted")
	}
}

// Property: admission factors are in [0,1], throughput = admission*target,
// and no worker exceeds effective capacity, for random valid plans and rates.
func TestEvaluateInvariantsProperty(t *testing.T) {
	g := windowQuery(t)
	p, _ := dataflow.Expand(g)
	c := testCluster(t)
	tasks := p.Tasks()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var slotList []int
		for w := 0; w < c.NumWorkers(); w++ {
			for s := 0; s < 4; s++ {
				slotList = append(slotList, w)
			}
		}
		rng.Shuffle(len(slotList), func(i, j int) { slotList[i], slotList[j] = slotList[j], slotList[i] })
		pl := dataflow.NewPlan()
		for i, task := range tasks {
			pl.Assign(task, slotList[i])
		}
		rate := math.Exp(rng.Float64()*10) + 1 // 1 .. ~22000
		d := QueryDeployment{Name: "q", Phys: p, Plan: pl,
			SourceRates: map[dataflow.OperatorID]float64{"src": rate}}
		res, err := Evaluate([]QueryDeployment{d}, c, DefaultConfig())
		if err != nil {
			return false
		}
		q := res.Queries["q"]
		if q.Admission < 0 || q.Admission > 1 {
			return false
		}
		if math.Abs(q.Throughput-q.Admission*rate) > 1e-6*rate {
			return false
		}
		if math.Abs(q.Backpressure-(1-q.Admission)) > 1e-9 {
			return false
		}
		for _, u := range res.WorkerUtilization {
			if u.CPU > 1+1e-6 || u.IO > 1+1e-6 || u.Net > 1+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Conservation: task observed output rates x selectivity flow downstream
// consistently (records are neither created nor destroyed beyond
// selectivity).
func TestRateConservation(t *testing.T) {
	g := windowQuery(t)
	p, _ := dataflow.Expand(g)
	c := testCluster(t)
	d := deploy(t, g, spreadPlan(p, c.NumWorkers()), 5000)
	res, err := Evaluate([]QueryDeployment{d}, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sumIn := make(map[dataflow.OperatorID]float64)
	sumOut := make(map[dataflow.OperatorID]float64)
	for k, tm := range res.Tasks {
		sumIn[k.Task.Op] += tm.ObservedInRate
		sumOut[k.Task.Op] += tm.ObservedOutRate
	}
	// map output == win input; win output == sink input.
	if math.Abs(sumOut["map"]-sumIn["win"]) > 1e-6*sumOut["map"] {
		t.Errorf("map out %v != win in %v", sumOut["map"], sumIn["win"])
	}
	if math.Abs(sumOut["win"]-sumIn["sink"]) > 1e-6*math.Max(1, sumOut["win"]) {
		t.Errorf("win out %v != sink in %v", sumOut["win"], sumIn["sink"])
	}
	// Selectivity respected.
	if math.Abs(sumOut["win"]-0.2*sumIn["win"]) > 1e-6*math.Max(1, sumIn["win"]) {
		t.Errorf("win selectivity violated: in=%v out=%v", sumIn["win"], sumOut["win"])
	}
}

// Max-min fairness property: raising one query's target rate never
// increases any other query's admitted throughput, and all invariants hold
// at every load level.
func TestMaxMinFairnessMonotonicity(t *testing.T) {
	g1 := windowQuery(t)
	g2 := windowQuery(t)
	p1, _ := dataflow.Expand(g1)
	p2, _ := dataflow.Expand(g2)
	big, err := cluster.Homogeneous(4, 8, 2.0, 8e6, 5e6)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p *dataflow.PhysicalGraph, off int) *dataflow.Plan {
		pl := dataflow.NewPlan()
		i := 0
		for _, op := range p.Logical.Operators() {
			for _, task := range p.TasksOf(op.ID) {
				pl.Assign(task, (off+i)%4)
				i++
			}
		}
		return pl
	}
	plan1, plan2 := mk(p1, 0), mk(p2, 2)
	prevOther := math.Inf(1)
	for _, rate := range []float64{1000, 3000, 9000, 27000, 81000} {
		deps := []QueryDeployment{
			{Name: "hog", Phys: p1, Plan: plan1, SourceRates: map[dataflow.OperatorID]float64{"src": rate}},
			{Name: "victim", Phys: p2, Plan: plan2, SourceRates: map[dataflow.OperatorID]float64{"src": 3000}},
		}
		res, err := Evaluate(deps, big, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		v := res.Queries["victim"].Throughput
		if v > prevOther+1e-6 {
			t.Errorf("victim throughput rose from %v to %v when hog target grew to %v", prevOther, v, rate)
		}
		prevOther = v
		for w, u := range res.WorkerUtilization {
			if u.CPU > 1+1e-6 || u.IO > 1+1e-6 || u.Net > 1+1e-6 {
				t.Errorf("rate %v: worker %d over capacity %v", rate, w, u)
			}
		}
	}
}
